package job

import (
	"testing"

	"repro/internal/swf"
)

func rec() *swf.Job {
	return &swf.Job{
		JobNumber:      7,
		SubmitTime:     100,
		RunTime:        50,
		RequestedProcs: 4,
		AllocatedProcs: 3,
		RequestedTime:  200,
		UserID:         11,
	}
}

func TestFromSWF(t *testing.T) {
	r := rec()
	j := FromSWF(r)
	if j.ID != 7 || j.User != 11 || j.Submit != 100 || j.Runtime != 50 {
		t.Fatalf("identity fields wrong: %+v", j)
	}
	if j.Procs != 4 {
		t.Fatalf("Procs = %d, want the requested count 4", j.Procs)
	}
	if j.Request != 200 {
		t.Fatalf("Request = %d, want 200", j.Request)
	}
	if j.Record != r {
		t.Fatal("Record must point at the source SWF record")
	}
	if j.Started || j.Finished || j.Canceled {
		t.Fatal("fresh job must carry no schedule state")
	}

	// Fallbacks: allocated procs when no request, runtime as the
	// clairvoyant request when the log has no estimates.
	r2 := rec()
	r2.RequestedProcs = 0
	r2.RequestedTime = 0
	j2 := FromSWF(r2)
	if j2.Procs != 3 {
		t.Fatalf("Procs fallback = %d, want allocated 3", j2.Procs)
	}
	if j2.Request != 50 {
		t.Fatalf("Request fallback = %d, want runtime 50", j2.Request)
	}
}

func TestWait(t *testing.T) {
	j := FromSWF(rec())
	if w := j.Wait(); w != -1 {
		t.Fatalf("Wait before start = %d, want -1", w)
	}
	j.Started = true
	j.Start = 130
	if w := j.Wait(); w != 30 {
		t.Fatalf("Wait = %d, want 30", w)
	}
}

func TestPredictedEndAndArea(t *testing.T) {
	j := FromSWF(rec())
	j.Started = true
	j.Start = 120
	j.Prediction = 40
	if e := j.PredictedEnd(); e != 160 {
		t.Fatalf("PredictedEnd = %d, want 160", e)
	}
	if a := j.Area(); a != 50*4 {
		t.Fatalf("Area = %d, want %d", a, 50*4)
	}
}

func TestClampPrediction(t *testing.T) {
	j := FromSWF(rec()) // Request = 200
	cases := []struct{ in, want int64 }{
		{-5, 1}, // below one second is meaningless
		{0, 1},  // zero too
		{1, 1},  // lower edge passes
		{150, 150},
		{200, 200}, // upper edge passes
		{201, 200}, // the system kills at the request
		{1 << 40, 200},
	}
	for _, c := range cases {
		if got := j.ClampPrediction(c.in); got != c.want {
			t.Errorf("ClampPrediction(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestStateTransitions walks the canonical lifecycle and the two cancel
// variants, checking the invariants the engine relies on.
func TestStateTransitions(t *testing.T) {
	// Normal life: submit -> start -> finish.
	j := FromSWF(rec())
	j.Prediction = j.ClampPrediction(25)
	j.Started = true
	j.Start = 150
	if j.Wait() != 50 || j.PredictedEnd() != 175 {
		t.Fatalf("started state wrong: wait %d, predicted end %d", j.Wait(), j.PredictedEnd())
	}
	// A correction extends the prediction but never past the request.
	j.Prediction = j.ClampPrediction(500)
	j.Corrections++
	if j.Prediction != j.Request || j.Corrections != 1 {
		t.Fatalf("correction state wrong: %+v", j)
	}
	j.Finished = true
	j.End = 200
	if !j.Started || !j.Finished || j.Canceled {
		t.Fatalf("finished state wrong: %+v", j)
	}

	// Canceled before running: Started stays false.
	q := FromSWF(rec())
	q.Canceled = true
	if q.Started || q.Finished {
		t.Fatalf("queue-canceled job must not carry a schedule: %+v", q)
	}

	// Killed while running: Finished set, runtime truncated to the time
	// actually executed.
	k := FromSWF(rec())
	k.Started = true
	k.Start = 100
	k.Canceled = true
	k.Finished = true
	k.End = 120
	k.Runtime = k.End - k.Start
	if k.Runtime != 20 || k.Wait() != 0 {
		t.Fatalf("killed job state wrong: %+v", k)
	}
}
