// Package job defines the runtime job representation shared by the
// simulator, the schedulers, the predictors and the correction
// mechanisms. It is the leaf package of the scheduling stack: everything
// imports it, it imports only the SWF record it wraps.
package job

import "repro/internal/swf"

// Job is one job instance inside a simulation. The immutable fields are
// fixed at construction from the SWF record; the mutable fields track the
// scheduling state as the simulation progresses.
type Job struct {
	// ID is the job's identifier (SWF job number).
	ID int64
	// User is the submitting user.
	User int64
	// Procs is the rigid resource requirement qj.
	Procs int64
	// Submit is the release date rj in seconds.
	Submit int64
	// Runtime is the actual running time pj. Scheduling policies must not
	// read it: only the Clairvoyant predictor and the engine (to schedule
	// the completion event) may.
	Runtime int64
	// Request is the user-requested running time p̃j (kill bound), pj <= p̃j.
	Request int64

	// Prediction is the current predicted running time used by the
	// scheduler. Set by a predictor at submission and updated by a
	// correction mechanism each time the job outlives it.
	Prediction int64
	// Corrections counts how many times the prediction expired while the
	// job was running.
	Corrections int
	// SubmitPrediction is the prediction made at submission time, before
	// any correction. Kept for the prediction-accuracy analyses
	// (Table 8, Figures 4 and 5).
	SubmitPrediction int64

	// Started/Finished/Start/End record the realized schedule.
	Started  bool
	Finished bool
	Start    int64
	End      int64
	// Canceled marks a job removed by a scenario cancellation: dropped
	// before submission or pulled from the queue (Started stays false,
	// the job never runs) or killed while running (Finished is set and
	// Runtime is truncated to the time actually executed).
	Canceled bool
	// Cluster is the index of the federated cluster the job was routed
	// to at submission. Always 0 on single-machine runs, and for jobs a
	// scenario canceled before they were ever routed.
	Cluster int
	// Client is the index of the traffic source that generated the job
	// in a multi-client workload, derived from the SWF Partition field
	// (partition 1+index). 0 for single-population synthetics; negative
	// or out-of-range values (archive logs with exotic partition
	// numbering) are ignored by the per-client collectors.
	Client int

	// Record points at the original SWF record, which carries the extra
	// descriptive fields (executable, queue, ...) used by learning.
	Record *swf.Job
}

// FromSWF builds the runtime job from an SWF record.
func FromSWF(r *swf.Job) *Job {
	j := new(Job)
	FromSWFInto(j, r)
	return j
}

// FromSWFInto initializes dst in place from an SWF record, overwriting
// every field. It is the allocation-free core of FromSWF, used by slab
// and arena allocation (see Arena and the sim drivers).
func FromSWFInto(dst *Job, r *swf.Job) {
	*dst = Job{
		ID:      r.JobNumber,
		User:    r.UserID,
		Procs:   r.Procs(),
		Submit:  r.SubmitTime,
		Runtime: r.RunTime,
		Request: r.Request(),
		Client:  int(r.Partition) - 1,
		Record:  r,
	}
}

// Wait returns the waiting time of a started job.
func (j *Job) Wait() int64 {
	if !j.Started {
		return -1
	}
	return j.Start - j.Submit
}

// PredictedEnd returns the completion instant implied by the current
// prediction for a started job.
func (j *Job) PredictedEnd() int64 { return j.Start + j.Prediction }

// Area returns the job's rectangle pj*qj in processor-seconds.
func (j *Job) Area() int64 { return j.Runtime * j.Procs }

// ClampPrediction bounds a raw predicted value into the valid range
// [1, Request]: predictions below one second are meaningless and the
// system kills any job at its requested time, so no useful prediction
// exceeds it.
func (j *Job) ClampPrediction(p int64) int64 {
	if p < 1 {
		return 1
	}
	if p > j.Request {
		return j.Request
	}
	return p
}
