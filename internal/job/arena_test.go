package job

import (
	"testing"

	"repro/internal/swf"
)

func TestArenaNewCopiesRecordAndRecycles(t *testing.T) {
	var a Arena
	rec := swf.Job{JobNumber: 7, SubmitTime: 10, RunTime: 50, RequestedTime: 100, RequestedProcs: 4, UserID: 3, Status: 1}
	j := a.New(&rec)
	if j.ID != 7 || j.Procs != 4 || j.Submit != 10 {
		t.Fatalf("New built %+v from %+v", j, rec)
	}
	if j.Record == &rec {
		t.Fatal("New aliased the caller's record instead of copying it")
	}
	// The caller may reuse its record immediately; the job must not see it.
	rec.JobNumber = 999
	if j.Record.JobNumber != 7 {
		t.Fatalf("job's record changed to %d after caller reuse", j.Record.JobNumber)
	}

	// A recycled slot is handed out again, fully reinitialized from the
	// new record — pointer identity proves the free list is live.
	a.Recycle(j)
	rec2 := swf.Job{JobNumber: 8, SubmitTime: 20, RunTime: 5, RequestedTime: 9, RequestedProcs: 2, UserID: 4}
	j2 := a.New(&rec2)
	if j2 != j {
		t.Fatal("New did not reuse the recycled slot")
	}
	if j2.ID != 8 || j2.Procs != 2 || j2.Record.JobNumber != 8 {
		t.Fatalf("recycled slot not reinitialized: %+v", j2)
	}
}

func TestArenaSteadyStateAllocatesNothing(t *testing.T) {
	var a Arena
	rec := swf.Job{JobNumber: 1, SubmitTime: 1, RunTime: 1, RequestedTime: 1, RequestedProcs: 1}
	// Warm up one chunk.
	warm := make([]*Job, arenaChunk)
	for i := range warm {
		rec.JobNumber = int64(i)
		warm[i] = a.New(&rec)
	}
	for _, j := range warm {
		a.Recycle(j)
	}
	if got := testing.AllocsPerRun(10, func() {
		for i := 0; i < arenaChunk; i++ {
			rec.JobNumber = int64(i)
			a.Recycle(a.New(&rec))
		}
	}); got != 0 {
		t.Fatalf("steady-state New/Recycle allocated %v times per run", got)
	}
}

func TestArenaGrowsByChunks(t *testing.T) {
	var a Arena
	rec := swf.Job{JobNumber: 1, RequestedProcs: 1, RunTime: 1, RequestedTime: 1}
	seen := make(map[*Job]bool, 3*arenaChunk)
	for i := 0; i < 3*arenaChunk; i++ {
		rec.JobNumber = int64(i)
		j := a.New(&rec)
		if seen[j] {
			t.Fatalf("New handed out slot %p twice without a Recycle", j)
		}
		seen[j] = true
	}
}
