package job

import "repro/internal/swf"

// arenaChunk is how many slots an Arena allocates at a time. Large
// enough that chunk allocation is negligible against the jobs simulated,
// small enough that an idle arena wastes little.
const arenaChunk = 1024

// slot pairs a runtime job with the SWF record it was built from, so one
// arena allocation covers both: the streaming admit path needs the
// record to outlive the source's buffer (Job.Record points at it), and
// keeping the pair adjacent preserves the pairing across recycling.
type slot struct {
	job Job
	rec swf.Job
}

// Arena is a slab allocator with a free list for the streaming engine's
// live-job window: New hands out a job built from an SWF record, Recycle
// returns a retired job's slot for reuse. After the warm-up chunks are
// in place a steady-state stream allocates nothing per job — peak arena
// size is the peak live-job count, not the trace length.
//
// The contract mirrors any free list: a recycled job must be completely
// out of the system — no queued event, no scheduler or predictor
// structure, and no sink may still hold the pointer — because its slot
// (including the paired SWF record) is overwritten by a later New. The
// sim package only recycles a job after its natural completion has
// retired it and its last queued event has been popped; see
// sim.JobSink's no-retention rule.
//
// The zero value is ready to use. An Arena is not safe for concurrent
// use; the sharded driver gives each shard its own.
type Arena struct {
	free  []*Job
	chunk []slot
	next  int
}

// New returns a job initialized from r. The record is copied into the
// job's slot and dst.Record points at that copy, so r may be reused by
// the caller immediately.
func (a *Arena) New(r *swf.Job) *Job {
	var j *Job
	var rec *swf.Job
	if n := len(a.free); n > 0 {
		j = a.free[n-1]
		a.free = a.free[:n-1]
		// A job built by New keeps pointing at its slot's record for
		// life (nothing reassigns Job.Record), so the paired record is
		// recoverable from the job itself.
		rec = j.Record
	} else {
		if a.next == len(a.chunk) {
			a.chunk = make([]slot, arenaChunk)
			a.next = 0
		}
		s := &a.chunk[a.next]
		a.next++
		j, rec = &s.job, &s.rec
	}
	*rec = *r
	FromSWFInto(j, rec)
	return j
}

// Recycle returns a job obtained from New to the free list. The caller
// asserts nothing in the system references j (or j.Record) anymore.
func (a *Arena) Recycle(j *Job) {
	a.free = append(a.free, j)
}
