package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/sim"
)

// CellRecord is the journal form of one completed grid cell. It carries
// everything a report needs (so a resumed campaign reproduces the exact
// tables of an uninterrupted one) plus the run's performance counters,
// keyed by enough identity — kind, workload, job count, intensity,
// triple name and derived cell seed — that stale journals from a grid
// run with different parameters can never be mistaken for progress.
type CellRecord struct {
	// Kind is "campaign" or "robustness".
	Kind string `json:"kind"`
	// Workload and JobCount identify the input trace.
	Workload string `json:"workload"`
	JobCount int    `json:"job_count"`
	// Triple is the heuristic triple's canonical name.
	Triple string `json:"triple"`
	// Intensity is the disruption level (robustness cells only).
	Intensity string `json:"intensity,omitempty"`
	// Seed is the cell's deterministic derived seed. It is a pure
	// function of the grid's base seed and the cell's position, so it
	// doubles as a fingerprint of both in the cell key.
	Seed uint64 `json:"seed"`
	// Federation and Topology identify the platform of a federated cell:
	// the federation's name (usually its routing policy) and the
	// canonical cluster-shape fingerprint (platform.Topology). Both are
	// empty on classic single-machine cells, whose keys are unchanged.
	Federation string `json:"federation,omitempty"`
	Topology   string `json:"topology,omitempty"`

	AVEbsld     float64 `json:"avebsld"`
	MaxBsld     float64 `json:"max_bsld"`
	MeanWait    float64 `json:"mean_wait"`
	Utilization float64 `json:"utilization"`
	Corrections int     `json:"corrections"`
	Canceled    int     `json:"canceled"`
	MAE         float64 `json:"mae"`
	MeanELoss   float64 `json:"mean_eloss"`

	// Drains and CancelEvents summarize the disruption script
	// (robustness cells only).
	Drains       int `json:"drains,omitempty"`
	CancelEvents int `json:"cancel_events,omitempty"`

	// Clusters carries the per-cluster metrics of a federated cell.
	Clusters []ClusterMetrics `json:"clusters,omitempty"`

	// PerClient carries the per-traffic-source decomposition of a
	// multi-client cell. Purely additive payload: it is not part of the
	// cell key, so journals from before the clients axis existed still
	// resume.
	PerClient []ClientMetrics `json:"per_client,omitempty"`

	// Perf holds the simulation's performance counters, making every
	// journal a performance record of the engine itself.
	Perf sim.Perf `json:"perf"`
}

// Key returns the identity a resumed grid matches cells on. Federated
// cells append their platform identity; single-machine cells keep the
// historical key shape, so journals from before the federation axis
// existed still resume.
func (r CellRecord) Key() string {
	parts := []string{
		r.Kind, r.Workload, strconv.Itoa(r.JobCount), r.Intensity, r.Triple,
		strconv.FormatUint(r.Seed, 16),
	}
	if r.Federation != "" || r.Topology != "" {
		parts = append(parts, r.Federation, r.Topology)
	}
	return strings.Join(parts, "|")
}

// newCellRecord journals one completed cell.
func newCellRecord(kind, intensity string, jobCount int, rr RunResult, seed uint64, drains, cancels int) CellRecord {
	return CellRecord{
		Kind:      kind,
		Workload:  rr.Workload,
		JobCount:  jobCount,
		Triple:    rr.Triple.Name(),
		Intensity: intensity,
		Seed:      seed,

		AVEbsld:     rr.AVEbsld,
		MaxBsld:     rr.MaxBsld,
		MeanWait:    rr.MeanWait,
		Utilization: rr.Utilization,
		Corrections: rr.Corrections,
		Canceled:    rr.Canceled,
		MAE:         rr.MAE,
		MeanELoss:   rr.MeanELoss,

		Drains:       drains,
		CancelEvents: cancels,
		PerClient:    rr.Clients,
		Perf:         rr.Perf,
	}
}

// runResult reconstitutes the in-memory result, re-attaching the live
// Triple value (interfaces do not survive JSON, so journals store the
// canonical name and the resuming grid supplies the value).
func (r CellRecord) runResult(tr core.Triple) RunResult {
	return RunResult{
		Workload:    r.Workload,
		Triple:      tr,
		AVEbsld:     r.AVEbsld,
		MaxBsld:     r.MaxBsld,
		MeanWait:    r.MeanWait,
		Utilization: r.Utilization,
		Corrections: r.Corrections,
		Canceled:    r.Canceled,
		MAE:         r.MAE,
		MeanELoss:   r.MeanELoss,
		Clients:     r.PerClient,
		Perf:        r.Perf,
	}
}

// Journal is the result journal both grid harnesses append to.
type Journal = journal.Writer[CellRecord]

// OpenJournal opens (creating or appending to) a result journal.
func OpenJournal(path string) (*Journal, error) {
	return journal.OpenWriter[CellRecord](path)
}

// LoadJournal reads a result journal back as a Resume map keyed by
// CellRecord.Key. A truncated final line (interrupted append) is
// tolerated; dropped reports whether one was discarded.
func LoadJournal(path string) (done map[string]CellRecord, dropped bool, err error) {
	recs, stats, err := journal.Load[CellRecord](path)
	if err != nil {
		return nil, false, fmt.Errorf("campaign: %w", err)
	}
	done = make(map[string]CellRecord, len(recs))
	for _, r := range recs {
		done[r.Key()] = r
	}
	return done, stats.Dropped > 0, nil
}
