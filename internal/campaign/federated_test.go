package campaign_test

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/report"
)

func testFederations() []campaign.Federation {
	return []campaign.Federation{
		{Routing: "round-robin", Clusters: []platform.Cluster{{Procs: 100}, {Procs: 100}}},
		{Routing: "least-loaded", Clusters: []platform.Cluster{
			{Name: "big", Procs: 100}, {Name: "slow", Procs: 64, Speed: 0.5},
		}},
	}
}

// TestFederatedCampaignGrid runs a small workloads x federations x
// triples grid and checks the result shape: grid order, per-cluster
// splits consistent with the global counters, and the rendered table.
func TestFederatedCampaignGrid(t *testing.T) {
	c := &campaign.FederatedCampaign{
		Workloads:   testWorkloads(t, 200, "KTH-SP2"),
		Federations: testFederations(),
		Triples:     []core.Triple{core.EASY(), core.EASYPlusPlus()},
		Seed:        3,
	}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1*2*2 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		wantFed := testFederations()[(i/2)%2]
		if r.Federation != wantFed.Routing {
			t.Fatalf("result %d federation %q, want %q (grid order broken)", i, r.Federation, wantFed.Routing)
		}
		if r.Topology == "" || len(r.Clusters) != 2 {
			t.Fatalf("result %d missing platform identity: %+v", i, r)
		}
		finished := 0
		for _, cm := range r.Clusters {
			finished += cm.Finished
		}
		if finished == 0 {
			t.Fatalf("result %d: no cluster finished any job", i)
		}
	}
	table := report.FederatedTable(results)
	for _, want := range []string{"KTH-SP2", "routing=round-robin", "routing=least-loaded", "topology=100+64x0.5", "big", "slow"} {
		if !strings.Contains(table, want) {
			t.Fatalf("federated table missing %q:\n%s", want, table)
		}
	}
}

// TestFederatedResumeEquivalence journals a federated grid, then re-runs
// it entirely from the journal: the resumed run must recompute nothing
// and render byte-identical tables.
func TestFederatedResumeEquivalence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fed.jsonl")
	build := func(j *campaign.Journal, resume map[string]campaign.CellRecord) *campaign.FederatedCampaign {
		return &campaign.FederatedCampaign{
			Workloads:   testWorkloads(t, 200, "KTH-SP2"),
			Federations: testFederations(),
			Triples:     []core.Triple{core.EASY(), core.PaperBest()},
			Seed:        11,
			Journal:     j,
			Resume:      resume,
		}
	}

	j, err := campaign.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := build(j, nil).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	done, dropped, err := campaign.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped {
		t.Fatal("journal unexpectedly truncated")
	}
	if len(done) != len(want) {
		t.Fatalf("journal holds %d cells, want %d", len(done), len(want))
	}

	recomputed := 0
	c := build(nil, done)
	c.Progress = func(doneN, total int) { recomputed = total } // called for skips too
	got, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if recomputed != len(want) {
		t.Fatalf("progress saw total %d, want %d", recomputed, len(want))
	}
	if report.FederatedTable(got) != report.FederatedTable(want) {
		t.Fatalf("resumed federated tables differ:\n%s\nvs\n%s",
			report.FederatedTable(got), report.FederatedTable(want))
	}
}

// TestFederatedCellKeysDisjoint pins journal-key hygiene: the same
// (workload, triple, seed) cell under two different federations — or
// under none — must never collide in a shared journal.
func TestFederatedCellKeysDisjoint(t *testing.T) {
	base := campaign.CellRecord{Kind: "campaign", Workload: "w", JobCount: 10, Triple: "t", Seed: 5}
	fedA := base
	fedA.Federation, fedA.Topology = "round-robin", "100+100"
	fedB := base
	fedB.Federation, fedB.Topology = "least-loaded", "100+100"
	keys := map[string]bool{base.Key(): true, fedA.Key(): true, fedB.Key(): true}
	if len(keys) != 3 {
		t.Fatalf("cell keys collide: %q %q %q", base.Key(), fedA.Key(), fedB.Key())
	}
	if !strings.HasPrefix(fedA.Key(), base.Key()) {
		t.Fatalf("federated key %q does not extend the legacy key %q", fedA.Key(), base.Key())
	}
}

// TestFederatedPerfCounters pins the per-cluster performance split of a
// federated grid: every cell's ClusterMetrics carries the cluster's
// event and Pick-call counters, the Pick calls sum to the cell's global
// counter, and the rendered -perf summary includes the per-cluster
// table. Progress must fire for every federated cell with the right
// total — the regression test for the grid's stderr progress lines.
func TestFederatedPerfCounters(t *testing.T) {
	var mu sync.Mutex
	var lastDone, sawTotal, calls int
	c := &campaign.FederatedCampaign{
		Workloads:   testWorkloads(t, 200, "KTH-SP2"),
		Federations: testFederations(),
		Triples:     []core.Triple{core.EASY(), core.EASYPlusPlus()},
		Seed:        3,
		Profile:     true,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			sawTotal = total
			if done > lastDone {
				lastDone = done
			}
		},
	}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(results); calls != want || lastDone != want || sawTotal != want {
		t.Fatalf("progress saw calls=%d done=%d total=%d, want all %d", calls, lastDone, sawTotal, want)
	}
	for i, r := range results {
		var events, picks int64
		for _, cm := range r.Clusters {
			if cm.Events <= 0 || cm.PickCalls <= 0 {
				t.Fatalf("result %d cluster %s: counters not populated: %+v", i, cm.Name, cm)
			}
			events += cm.Events
			picks += cm.PickCalls
		}
		// Every Pick call and almost every event binds to a cluster (the
		// few that do not are unbound streaming cancels, absent here).
		if picks != r.Perf.PickCalls {
			t.Fatalf("result %d: cluster Pick calls sum %d != global %d", i, picks, r.Perf.PickCalls)
		}
		if events > r.Perf.Events {
			t.Fatalf("result %d: cluster events sum %d exceeds global %d", i, events, r.Perf.Events)
		}
		if len(r.Perf.Stages) == 0 {
			t.Fatalf("result %d: Profile did not populate Perf.Stages", i)
		}
	}
	out := report.FederatedPerfSummary(results)
	for _, want := range []string{"per federation cluster", "round-robin", "least-loaded", "big", "slow", "Stage latency histograms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("federated perf summary missing %q:\n%s", want, out)
		}
	}
}

// TestFederatedCampaignTracer pins the flight-recorder threading of the
// federated grid: every cell's events arrive stamped with the cell's
// workload and triple, and route events name the cell's routing policy.
func TestFederatedCampaignTracer(t *testing.T) {
	col := &obs.Collector{}
	c := &campaign.FederatedCampaign{
		Workloads:   testWorkloads(t, 150, "KTH-SP2"),
		Federations: testFederations()[:1],
		Triples:     []core.Triple{core.EASY(), core.EASYPlusPlus()},
		Seed:        7,
		Tracer:      col,
	}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	perTriple := map[string]int{}
	for _, ev := range col.Events() {
		if err := obs.ValidateEvent(&ev); err != nil {
			t.Fatalf("invalid traced event %+v: %v", ev, err)
		}
		if ev.Workload != "KTH-SP2" || ev.Triple == "" {
			t.Fatalf("event not stamped with its cell: %+v", ev)
		}
		if ev.Kind == obs.KindPick {
			perTriple[ev.Triple]++
		}
	}
	for _, r := range results {
		if got := perTriple[r.Triple.Name()]; int64(got) != r.Perf.PickCalls {
			t.Fatalf("triple %s: %d pick events, want %d", r.Triple.Name(), got, r.Perf.PickCalls)
		}
	}
}

// TestFederatedCampaignStream holds the streaming federated grid to the
// preloading one's tables (decision identity is proven at the engine
// layer; this pins the harness plumbing).
func TestFederatedCampaignStream(t *testing.T) {
	build := func(stream bool) *campaign.FederatedCampaign {
		return &campaign.FederatedCampaign{
			Workloads:   testWorkloads(t, 150, "SDSC-SP2"),
			Federations: testFederations()[:1],
			Triples:     []core.Triple{core.EASYPlusPlus()},
			Seed:        1,
			Stream:      stream,
		}
	}
	mem, err := build(false).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	str, err := build(true).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.FederatedTable(mem) != report.FederatedTable(str) {
		t.Fatalf("streamed federated campaign diverges:\n%s\nvs\n%s",
			report.FederatedTable(mem), report.FederatedTable(str))
	}
}
