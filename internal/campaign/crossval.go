package campaign

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// learnedOnly filters a campaign's results down to the non-clairvoyant,
// non-reference triples eligible for selection (the paper selects among
// predictive-corrective heuristics, excluding the clairvoyant bound; the
// plain requested-time EASY baselines stay eligible, as in the paper's
// framing where EASY itself is one heuristic triple).
func selectable(r RunResult) bool {
	return r.Triple.Predictor != core.PredClairvoyant
}

// CrossValidation is the leave-one-out selection of Section 6.3.3: for
// each held-out workload, the triple minimizing the sum of AVEbsld over
// the other workloads is selected and evaluated on the held-out one.
type CrossValidation struct {
	// HeldOut is the evaluation workload.
	HeldOut string
	// Selected is the winning triple on the other workloads.
	Selected core.Triple
	// Score is the selected triple's AVEbsld on the held-out workload.
	Score float64
}

// LeaveOneOut runs the cross-validation over every workload present in
// the results.
func LeaveOneOut(results []RunResult) ([]CrossValidation, error) {
	byWorkload := ByWorkload(results)
	if len(byWorkload) < 2 {
		return nil, fmt.Errorf("campaign: cross-validation needs >= 2 workloads, have %d", len(byWorkload))
	}
	var names []string
	for n := range byWorkload {
		names = append(names, n)
	}
	sort.Strings(names)

	// Sum each triple's AVEbsld per workload for fast exclusion.
	type key = string
	perTriple := make(map[key]map[string]float64) // triple -> workload -> score
	tripleOf := make(map[key]core.Triple)
	for _, r := range results {
		if !selectable(r) {
			continue
		}
		n := r.Triple.Name()
		if perTriple[n] == nil {
			perTriple[n] = make(map[string]float64)
		}
		perTriple[n][r.Workload] = r.AVEbsld
		tripleOf[n] = r.Triple
	}

	var out []CrossValidation
	for _, held := range names {
		bestName := ""
		bestSum := 0.0
		// Deterministic iteration over triples.
		var tripleNames []string
		for n := range perTriple {
			tripleNames = append(tripleNames, n)
		}
		sort.Strings(tripleNames)
		for _, tn := range tripleNames {
			scores := perTriple[tn]
			sum := 0.0
			complete := true
			for _, w := range names {
				if w == held {
					continue
				}
				s, ok := scores[w]
				if !ok {
					complete = false
					break
				}
				sum += s
			}
			if !complete {
				continue
			}
			if bestName == "" || sum < bestSum {
				bestName, bestSum = tn, sum
			}
		}
		if bestName == "" {
			return nil, fmt.Errorf("campaign: no complete triple covers all training workloads for %s", held)
		}
		score, ok := perTriple[bestName][held]
		if !ok {
			return nil, fmt.Errorf("campaign: selected triple %s missing on held-out %s", bestName, held)
		}
		out = append(out, CrossValidation{HeldOut: held, Selected: tripleOf[bestName], Score: score})
	}
	return out, nil
}
