package campaign

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// RobustnessResult is one cell of the robustness grid: a (workload,
// disruption-intensity, triple) simulation.
type RobustnessResult struct {
	RunResult
	// Intensity names the disruption level ("none", "light", ...).
	Intensity string
	// Scenario summarizes the script the cell ran under.
	Drains       int
	CancelEvents int
}

// Robustness is the disruption-sweep harness: it runs every triple over
// every workload under every disruption intensity, with one shared
// deterministic script per (workload, intensity) pair so triples stay
// comparable within a column.
type Robustness struct {
	// Workloads are the inputs.
	Workloads []*trace.Workload
	// Triples is the heuristic-triple set (defaults to
	// DefaultRobustnessTriples when empty).
	Triples []core.Triple
	// Intensities is the disruption ladder (defaults to
	// scenario.Intensities when empty).
	Intensities []scenario.Intensity
	// Seed drives the deterministic script generation.
	Seed uint64
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after every completed
	// simulation (concurrently; must be goroutine-safe).
	Progress func(done, total int)
}

// DefaultRobustnessTriples is the compact comparison set of the
// robustness table: the production baseline, Tsafrir's EASY++, the
// paper's best learning triple, the clairvoyant bound and the
// conservative related-work baseline.
func DefaultRobustnessTriples() []core.Triple {
	return []core.Triple{
		core.EASY(),
		core.EASYPlusPlus(),
		core.PaperBest(),
		core.ClairvoyantSJBF(),
		core.ConservativeBF(),
	}
}

// Run executes the grid. Results are ordered workload-major,
// intensity-middle, triple-minor regardless of completion order.
func (r *Robustness) Run() ([]RobustnessResult, error) {
	triples := r.Triples
	if len(triples) == 0 {
		triples = DefaultRobustnessTriples()
	}
	intensities := r.Intensities
	if len(intensities) == 0 {
		intensities = scenario.Intensities
	}
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	// One script per (workload, intensity), shared by every triple in
	// the cell so the disruption sequence is identical across policies.
	scripts := make([]*scenario.Script, len(r.Workloads)*len(intensities))
	for wi, w := range r.Workloads {
		for ii, in := range intensities {
			seed := r.Seed ^ (uint64(wi)*0x9e3779b97f4a7c15 + uint64(ii)*0xbf58476d1ce4e5b9)
			scripts[wi*len(intensities)+ii] = scenario.Generate(w, in, seed)
		}
	}

	type task struct{ wi, ii, ti int }
	tasks := make(chan task)
	results := make([]RobustnessResult, len(r.Workloads)*len(intensities)*len(triples))
	errs := make([]error, len(results))
	var done atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				idx := (tk.wi*len(intensities)+tk.ii)*len(triples) + tk.ti
				script := scripts[tk.wi*len(intensities)+tk.ii]
				run, err := runOne(r.Workloads[tk.wi], triples[tk.ti], script)
				drains, _, cancels := script.Counts()
				results[idx] = RobustnessResult{
					RunResult:    run,
					Intensity:    intensities[tk.ii].Name,
					Drains:       drains,
					CancelEvents: cancels,
				}
				errs[idx] = err
				if r.Progress != nil {
					r.Progress(int(done.Add(1)), len(results))
				}
			}
		}()
	}
	for wi := range r.Workloads {
		for ii := range intensities {
			for ti := range triples {
				tasks <- task{wi, ii, ti}
			}
		}
	}
	close(tasks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
