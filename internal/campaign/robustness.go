package campaign

import (
	"context"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// RobustnessResult is one cell of the robustness grid: a (workload,
// disruption-intensity, triple) simulation.
type RobustnessResult struct {
	RunResult
	// Intensity names the disruption level ("none", "light", ...).
	Intensity string
	// Scenario summarizes the script the cell ran under.
	Drains       int
	CancelEvents int
}

// Scenario is one column of the robustness grid. A column is either a
// generated disruption level — a scenario.Intensity, from which one
// deterministic script is derived per workload — or a fixed
// scenario.Script replayed identically on every workload (how spec
// files express inline event scripts). Either way every triple within a
// (workload, column) cell faces the same disruption sequence, keeping
// the column comparable across policies.
type Scenario struct {
	// Intensity generates the column's per-workload scripts when Script
	// is nil. Custom levels beyond the named scenario.Intensities ladder
	// are allowed; Intensity.Name labels the column.
	Intensity scenario.Intensity
	// Script, when non-nil, is the column's fixed disruption script,
	// shared verbatim by every workload. Its Name labels the column.
	Script *scenario.Script
}

// Name returns the column label used in results and journal keys.
func (s Scenario) Name() string {
	if s.Script != nil {
		return s.Script.Name
	}
	return s.Intensity.Name
}

// Robustness is the disruption-sweep harness: it runs every triple over
// every workload under every disruption scenario column, with one shared
// deterministic script per (workload, column) pair so triples stay
// comparable within a column.
type Robustness struct {
	// Workloads are the inputs.
	Workloads []*trace.Workload
	// Triples is the heuristic-triple set (defaults to
	// DefaultRobustnessTriples when empty).
	Triples []core.Triple
	// Scenarios are the grid's columns. Empty falls back to Intensities.
	Scenarios []Scenario
	// Intensities is the disruption ladder used when Scenarios is empty
	// (defaults to scenario.Intensities when both are empty).
	Intensities []scenario.Intensity
	// Seed drives the deterministic script generation.
	Seed uint64
	// Stream runs every cell on the bounded-memory engine; see
	// Campaign.Stream.
	Stream bool
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after every settled cell
	// (concurrently; must be goroutine-safe).
	Progress func(done, total int)
	// Journal, when non-nil, receives every completed cell as it
	// finishes (see Campaign.Journal).
	Journal *Journal
	// Resume holds journaled cells from a previous run, keyed by
	// CellRecord.Key (see LoadJournal).
	Resume map[string]CellRecord
	// Tracer and Profile enable the flight recorder and stage
	// histograms per cell; see Campaign.Tracer and Campaign.Profile.
	Tracer  obs.Tracer
	Profile bool
}

// DefaultRobustnessTriples is the compact comparison set of the
// robustness table: the production baseline, Tsafrir's EASY++, the
// paper's best learning triple, the clairvoyant bound and the
// conservative related-work baseline.
func DefaultRobustnessTriples() []core.Triple {
	return []core.Triple{
		core.EASY(),
		core.EASYPlusPlus(),
		core.PaperBest(),
		core.ClairvoyantSJBF(),
		core.ConservativeBF(),
	}
}

// Run executes the grid on the shared cancellable executor. Results are
// ordered workload-major, intensity-middle, triple-minor regardless of
// completion order. Cancelling ctx stops the grid gracefully; on error
// Run returns every completed cell (in grid order) plus the joined
// error — see Campaign.Run.
func (r *Robustness) Run(ctx context.Context) ([]RobustnessResult, error) {
	triples := r.Triples
	if len(triples) == 0 {
		triples = DefaultRobustnessTriples()
	}
	scenarios := r.Scenarios
	if len(scenarios) == 0 {
		intensities := r.Intensities
		if len(intensities) == 0 {
			intensities = scenario.Intensities
		}
		scenarios = make([]Scenario, len(intensities))
		for i, in := range intensities {
			scenarios[i] = Scenario{Intensity: in}
		}
	}

	// One script per (workload, column), shared by every triple in the
	// cell so the disruption sequence is identical across policies.
	// Generated-column script seeds derive from r.Seed exactly as
	// before, independent of the per-cell grid seeds; cell keys still
	// fingerprint r.Seed (via the derived cell seed), so a journal from
	// a different -seed run can never satisfy a resume.
	scripts := make([]*scenario.Script, len(r.Workloads)*len(scenarios))
	for wi, w := range r.Workloads {
		for ii, sc := range scenarios {
			if sc.Script != nil {
				scripts[wi*len(scenarios)+ii] = sc.Script
				continue
			}
			seed := r.Seed ^ (uint64(wi)*0x9e3779b97f4a7c15 + uint64(ii)*0xbf58476d1ce4e5b9)
			scripts[wi*len(scenarios)+ii] = scenario.Generate(w, sc.Intensity, seed)
		}
	}

	results := make([]RobustnessResult, len(r.Workloads)*len(scenarios)*len(triples))
	completed := make([]bool, len(results))
	split := func(i int) (wi, ii, ti int) {
		ti = i % len(triples)
		ii = (i / len(triples)) % len(scenarios)
		wi = i / (len(triples) * len(scenarios))
		return
	}
	for i := range results {
		wi, ii, ti := split(i)
		key := CellRecord{
			Kind: "robustness", Workload: r.Workloads[wi].Name,
			JobCount: len(r.Workloads[wi].Jobs), Triple: triples[ti].Name(),
			Intensity: scenarios[ii].Name(), Seed: cellSeed(r.Seed, i),
		}.Key()
		if rec, ok := r.Resume[key]; ok {
			results[i] = RobustnessResult{
				RunResult:    rec.runResult(triples[ti]),
				Intensity:    rec.Intensity,
				Drains:       rec.Drains,
				CancelEvents: rec.CancelEvents,
			}
			completed[i] = true
		}
	}

	g := grid{
		total:       len(results),
		parallelism: r.Parallelism,
		seed:        r.Seed,
		progress:    r.Progress,
		skip:        func(i int) bool { return completed[i] },
	}
	err := g.run(ctx, func(i int, seed uint64) error {
		wi, ii, ti := split(i)
		script := scripts[wi*len(scenarios)+ii]
		run, err := runOne(r.Workloads[wi], triples[ti], script, r.Stream, r.Tracer, r.Profile)
		if err != nil {
			return err
		}
		drains, _, cancels := script.Counts()
		results[i] = RobustnessResult{
			RunResult:    run,
			Intensity:    scenarios[ii].Name(),
			Drains:       drains,
			CancelEvents: cancels,
		}
		completed[i] = true
		if r.Journal != nil {
			rec := newCellRecord("robustness", scenarios[ii].Name(),
				len(r.Workloads[wi].Jobs), run, seed, drains, cancels)
			if jerr := r.Journal.Append(rec); jerr != nil {
				return jerr
			}
		}
		return nil
	})
	if err != nil {
		return compact(results, completed), err
	}
	return results, nil
}
