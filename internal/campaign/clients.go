package campaign

import (
	"repro/internal/job"
	"repro/internal/metrics"
)

// ClientMetrics is the per-traffic-source slice of one cell's result:
// the decomposition of a multi-client workload's AVEbsld and waiting
// time by generating client. Journaled alongside the cell (see
// CellRecord.PerClient) so resumed campaigns reproduce the per-client
// tables exactly.
type ClientMetrics struct {
	// Name is the client's name from the workload's clients block.
	Name string `json:"name"`
	// Finished counts the client's jobs that ran to completion.
	Finished int `json:"finished"`
	// Share is the client's realized fraction of all finished jobs.
	Share float64 `json:"share"`
	// AVEbsld, MaxBsld and MeanWait are the client's slice of the
	// paper's objective and waiting-time summaries.
	AVEbsld  float64 `json:"avebsld"`
	MaxBsld  float64 `json:"max_bsld"`
	MeanWait float64 `json:"mean_wait"`
}

// perClientMetrics flattens a per-client sink into journalable records,
// in client-index order.
func perClientMetrics(pc *metrics.PerClient) []ClientMetrics {
	total := pc.Overall().Finished()
	names := pc.Names()
	out := make([]ClientMetrics, len(names))
	for i, name := range names {
		c := pc.Client(i)
		share := 0.0
		if total > 0 {
			share = float64(c.Finished()) / float64(total)
		}
		out[i] = ClientMetrics{
			Name:     name,
			Finished: c.Finished(),
			Share:    share,
			AVEbsld:  c.AVEbsld(),
			MaxBsld:  c.MaxBsld(),
			MeanWait: c.MeanWait(),
		}
	}
	return out
}

// perClientFromJobs folds a preloading run's retained jobs through a
// per-client sink, observing exactly the population the streaming sink
// sees: finished jobs only (jobs a scenario canceled before they ever
// ran have no realized schedule).
func perClientFromJobs(names []string, jobs []*job.Job) *metrics.PerClient {
	pc := metrics.NewPerClient(names)
	for _, j := range jobs {
		if j.Finished {
			pc.Observe(j)
		}
	}
	return pc
}
