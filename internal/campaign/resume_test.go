// Resume/cancellation/partial-failure behavior of the grid executor,
// exercised through the exported API (external test package: the
// equivalence assertions render report tables, and report imports
// campaign).
package campaign_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/ml"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testTriples() []core.Triple {
	return []core.Triple{
		core.EASY(),
		core.ClairvoyantEASY(),
		core.ClairvoyantSJBF(),
		core.EASYPlusPlus(),
		core.PaperBest(),
		{Predictor: core.PredLearning, Loss: ml.SquaredLoss, Corrector: correct.Incremental{}, Backfill: sched.FCFSOrder},
	}
}

func testWorkloads(t *testing.T, jobs int, names ...string) []*trace.Workload {
	t.Helper()
	var out []*trace.Workload
	for _, n := range names {
		cfg, err := workload.Scaled(n, jobs)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

// tables renders the report output the equivalence property is stated
// over: an interrupted-then-resumed campaign must reproduce these
// byte-identically.
func tables(results []campaign.RunResult) string {
	return report.Table1(results) + "\n" + report.Table6(results)
}

// TestResumeEquivalence is the tentpole property: run a campaign to
// completion; run the same campaign again but cancel it mid-grid while
// journaling, then resume from the journal; the resumed run's report
// tables must be byte-identical to the uninterrupted run's.
func TestResumeEquivalence(t *testing.T) {
	const jobs = 300
	names := []string{"KTH-SP2", "CTC-SP2"}
	triples := testTriples()
	path := filepath.Join(t.TempDir(), "grid.jsonl")

	// Uninterrupted reference run.
	ref := &campaign.Campaign{Workloads: testWorkloads(t, jobs, names...), Triples: triples, Seed: 7}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantTables := tables(want)

	// Interrupted run: cancel once a few cells have completed. Workers
	// may finish in-flight cells after the cancel — that is the point:
	// everything completed must be journaled, everything else re-run.
	j, err := campaign.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	interrupted := &campaign.Campaign{
		Workloads: testWorkloads(t, jobs, names...),
		Triples:   triples,
		Seed:      7,
		Journal:   j,
		Progress: func(done, total int) {
			if done >= 3 {
				once.Do(cancel)
			}
		},
	}
	partial, err := interrupted.Run(ctx)
	if err == nil {
		t.Fatal("cancelled campaign reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign error = %v, want context.Canceled in the join", err)
	}
	if len(partial) == 0 || len(partial) >= len(want) {
		t.Fatalf("interrupted run completed %d cells, want some but not all of %d", len(partial), len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: journaled cells must be skipped, not recomputed.
	done, dropped, err := campaign.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped {
		t.Fatal("clean journal reported a dropped line")
	}
	if len(done) != len(partial) {
		t.Fatalf("journal holds %d cells, interrupted run completed %d", len(done), len(partial))
	}
	j2, err := campaign.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &campaign.Campaign{
		Workloads: testWorkloads(t, jobs, names...),
		Triples:   triples,
		Seed:      7,
		Journal:   j2,
		Resume:    done,
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed run returned %d cells, want %d", len(got), len(want))
	}
	if gotTables := tables(got); gotTables != wantTables {
		t.Errorf("resumed tables differ from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", wantTables, gotTables)
	}

	// The completed journal now covers the whole grid; a second resume
	// simulates nothing.
	done, _, err = campaign.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != len(want) {
		t.Fatalf("final journal holds %d distinct cells, want %d", len(done), len(want))
	}
	replay := &campaign.Campaign{
		Workloads: testWorkloads(t, jobs, names...),
		Triples:   triples,
		Seed:      7,
		Resume:    done,
	}
	got2, err := replay.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotTables := tables(got2); gotTables != wantTables {
		t.Error("journal-only replay tables differ from uninterrupted run")
	}
}

// TestResumeIgnoresForeignJournal: records from a grid with a different
// base seed (hence different derived cell seeds) must not satisfy a
// resume.
func TestResumeIgnoresForeignJournal(t *testing.T) {
	ws := testWorkloads(t, 200, "KTH-SP2")
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus()}
	path := filepath.Join(t.TempDir(), "grid.jsonl")

	j, err := campaign.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first := &campaign.Campaign{Workloads: ws, Triples: triples, Seed: 1, Journal: j}
	if _, err := first.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	j.Close()

	done, _, err := campaign.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	second := &campaign.Campaign{
		Workloads: testWorkloads(t, 200, "KTH-SP2"),
		Triples:   triples,
		Seed:      2, // different base seed: the journal must be ignored
		Resume:    done,
		Progress:  func(d, tot int) { ran++ },
	}
	if _, err := second.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran != len(triples) {
		t.Fatalf("settled %d cells, want all %d re-run under a different seed", ran, len(triples))
	}
}

// TestPartialFailureReturnsCompletedCells: one broken workload must not
// throw away the other workloads' completed cells.
func TestPartialFailureReturnsCompletedCells(t *testing.T) {
	ws := testWorkloads(t, 200, "KTH-SP2", "CTC-SP2")
	// Shrink the second machine so every one of its cells fails setup.
	ws[1].MaxProcs = 1
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus()}
	c := &campaign.Campaign{Workloads: ws, Triples: triples}
	results, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("campaign with a broken workload reported success")
	}
	if !strings.Contains(err.Error(), "wider") {
		t.Fatalf("joined error does not name the cause: %v", err)
	}
	if len(results) != len(triples) {
		t.Fatalf("got %d completed cells, want the %d from the healthy workload", len(results), len(triples))
	}
	for _, r := range results {
		if r.Workload != "KTH-SP2" {
			t.Errorf("completed cell from broken workload: %+v", r)
		}
	}
}

// TestRobustnessResume: the disruption sweep shares the executor, so it
// resumes the same way — and the resumed cells keep their script
// summaries (drain/cancel counts).
func TestRobustnessResume(t *testing.T) {
	const jobs = 250
	triples := []core.Triple{core.EASY(), core.PaperBest()}
	path := filepath.Join(t.TempDir(), "rgrid.jsonl")

	ref := &campaign.Robustness{Workloads: testWorkloads(t, jobs, "CTC-SP2"), Triples: triples, Seed: 3}
	want, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantTable := report.RobustnessTable(want)

	j, err := campaign.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	interrupted := &campaign.Robustness{
		Workloads: testWorkloads(t, jobs, "CTC-SP2"),
		Triples:   triples,
		Seed:      3,
		Journal:   j,
		Progress: func(done, total int) {
			if done >= 2 {
				once.Do(cancel)
			}
		},
	}
	if _, err := interrupted.Run(ctx); err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	j.Close()

	done, _, err := campaign.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) == 0 {
		t.Fatal("nothing journaled before cancellation")
	}
	resumed := &campaign.Robustness{
		Workloads: testWorkloads(t, jobs, "CTC-SP2"),
		Triples:   triples,
		Seed:      3,
		Resume:    done,
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotTable := report.RobustnessTable(got); gotTable != wantTable {
		t.Errorf("resumed robustness table differs:\n--- want ---\n%s\n--- got ---\n%s", wantTable, gotTable)
	}
}
