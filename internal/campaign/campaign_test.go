package campaign

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/ml"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// miniTriples is a reduced grid for fast tests: the named baselines plus
// two learning configurations under both orders.
func miniTriples() []core.Triple {
	return []core.Triple{
		core.EASY(),
		core.ClairvoyantEASY(),
		core.ClairvoyantSJBF(),
		core.EASYPlusPlus(),
		core.PaperBest(),
		{Predictor: core.PredLearning, Loss: ml.SquaredLoss, Corrector: correct.Incremental{}, Backfill: sched.FCFSOrder},
	}
}

func miniWorkloads(t *testing.T, jobs int, names ...string) []*trace.Workload {
	t.Helper()
	var out []*trace.Workload
	for _, n := range names {
		cfg, err := workload.Scaled(n, jobs)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

func TestCampaignRun(t *testing.T) {
	ws := miniWorkloads(t, 400, "KTH-SP2", "CTC-SP2")
	c := &Campaign{Workloads: ws, Triples: miniTriples()}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(miniTriples()) {
		t.Fatalf("got %d results, want %d", len(results), 2*len(miniTriples()))
	}
	for _, r := range results {
		if r.AVEbsld < 1 {
			t.Errorf("%s on %s: AVEbsld %v < 1", r.Triple.Name(), r.Workload, r.AVEbsld)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s on %s: utilization %v out of (0,1]", r.Triple.Name(), r.Workload, r.Utilization)
		}
	}
}

func TestCampaignResultOrderDeterministic(t *testing.T) {
	ws := miniWorkloads(t, 300, "KTH-SP2")
	c := &Campaign{Workloads: ws, Triples: miniTriples(), Parallelism: 4}
	a, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fresh workloads (the sim mutates job state in place).
	c.Workloads = miniWorkloads(t, 300, "KTH-SP2")
	b, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].AVEbsld != b[i].AVEbsld || a[i].Triple.Name() != b[i].Triple.Name() {
			t.Fatalf("result %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScoreLookup(t *testing.T) {
	ws := miniWorkloads(t, 300, "KTH-SP2")
	c := &Campaign{Workloads: ws, Triples: []core.Triple{core.EASY()}}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Score(results, "KTH-SP2", core.EASY().Name()); !ok {
		t.Fatal("Score lookup failed")
	}
	if _, ok := Score(results, "nope", core.EASY().Name()); ok {
		t.Fatal("Score found a missing workload")
	}
}

func TestByWorkload(t *testing.T) {
	ws := miniWorkloads(t, 300, "KTH-SP2", "CTC-SP2")
	c := &Campaign{Workloads: ws, Triples: []core.Triple{core.EASY(), core.EASYPlusPlus()}}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	grouped := ByWorkload(results)
	if len(grouped) != 2 || len(grouped["KTH-SP2"]) != 2 {
		t.Fatalf("grouping wrong: %v", grouped)
	}
}

func TestLeaveOneOut(t *testing.T) {
	ws := miniWorkloads(t, 400, "KTH-SP2", "CTC-SP2", "SDSC-SP2")
	c := &Campaign{Workloads: ws, Triples: miniTriples()}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cv, err := LeaveOneOut(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv) != 3 {
		t.Fatalf("got %d cross-validation rows, want 3", len(cv))
	}
	for _, c := range cv {
		if c.Selected.Predictor == core.PredClairvoyant {
			t.Errorf("%s: clairvoyant triple selected — it must be excluded", c.HeldOut)
		}
		if c.Score <= 0 {
			t.Errorf("%s: non-positive score %v", c.HeldOut, c.Score)
		}
	}
}

func TestLeaveOneOutNeedsTwoWorkloads(t *testing.T) {
	ws := miniWorkloads(t, 300, "KTH-SP2")
	c := &Campaign{Workloads: ws, Triples: []core.Triple{core.EASY()}}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LeaveOneOut(results); err == nil {
		t.Fatal("cross-validation with one workload accepted")
	}
}

func TestDefaultWorkloads(t *testing.T) {
	ws, err := DefaultWorkloads(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("got %d workloads, want 6", len(ws))
	}
	for _, w := range ws {
		if len(w.Jobs) != 200 {
			t.Errorf("%s has %d jobs, want 200", w.Name, len(w.Jobs))
		}
	}
}
