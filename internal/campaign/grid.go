package campaign

// This file holds the generic grid executor shared by the campaign and
// robustness harnesses: one bounded worker pool that is cancellable,
// derives a deterministic seed per cell, skips cells a previous
// (journaled) run already completed, and — unlike the old per-harness
// pools — survives individual cell failures, returning every completed
// cell plus a joined error instead of throwing the whole grid away.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// grid describes one executor invocation. The zero value of every field
// except total is usable.
type grid struct {
	// total is the number of cells.
	total int
	// parallelism bounds concurrent cells (<=0 means GOMAXPROCS).
	parallelism int
	// seed is the base seed every per-cell seed is derived from.
	seed uint64
	// progress, when non-nil, is called after every settled cell
	// (completed, failed, or skipped-as-already-done) with the running
	// count; it may be called from worker goroutines concurrently.
	progress func(done, total int)
	// skip, when non-nil, reports cells a previous run already
	// completed; they are counted as done without invoking cell.
	skip func(i int) bool
}

// cellSeed derives the deterministic seed of cell i from the base seed
// via rng.DeriveSeed (the repository's shared SplitMix64 child-seed
// scheme — this used to be an inline copy of its arithmetic). Cells get
// statistically independent seeds, yet the mapping is a pure function
// of (base, i), so an interrupted and resumed grid sees identical
// seeds, and journals keyed by derived seeds stay valid.
func cellSeed(base uint64, i int) uint64 {
	return rng.DeriveSeed(base, uint64(i))
}

// run executes cell(i, seed) for every non-skipped i on a bounded
// worker pool. Cancellation of ctx stops dispatching new cells and is
// reported in the returned error; cells that fail do not stop the rest
// of the grid. The returned error joins every cell error (and the
// context error, if any); nil means every cell settled successfully.
func (g grid) run(ctx context.Context, cell func(i int, seed uint64) error) error {
	par := g.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	errs := make([]error, g.total)
	var done atomic.Int64
	settle := func(i int, err error) {
		errs[i] = err
		if g.progress != nil {
			g.progress(int(done.Add(1)), g.total)
		}
	}

	tasks := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if ctx.Err() != nil {
					// Canceled while queued: leave the cell unrun so a
					// resume picks it up.
					continue
				}
				settle(i, cell(i, cellSeed(g.seed, i)))
			}
		}()
	}

dispatch:
	for i := 0; i < g.total; i++ {
		if g.skip != nil && g.skip(i) {
			settle(i, nil)
			continue
		}
		select {
		case tasks <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(tasks)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
