package campaign

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// multiClientWorkload generates a small three-client workload for grid
// tests.
func multiClientWorkload(t *testing.T, jobs int) *trace.Workload {
	t.Helper()
	cfg, err := workload.Scaled("KTH-SP2", jobs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.GenerateMulti(cfg, []workload.Client{
		{Name: "steady", Fraction: 0.6},
		{Name: "bursty", Fraction: 0.3, Arrival: "gamma"},
		{Name: "tidal", Fraction: 0.1, Arrival: "weibull"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestCampaignPerClientStreamAndPreloadAgree: both grid engines attach
// the same per-client decomposition to every cell — the streaming sink
// and the preloading fold observe the identical finished population.
func TestCampaignPerClientStreamAndPreloadAgree(t *testing.T) {
	ws := []*trace.Workload{multiClientWorkload(t, 300)}
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus()}

	mem := &Campaign{Workloads: ws, Triples: triples, Seed: 3}
	memResults, err := mem.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	str := &Campaign{Workloads: ws, Triples: triples, Seed: 3, Stream: true}
	strResults, err := str.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range memResults {
		m, s := memResults[i], strResults[i]
		if len(m.Clients) != 3 || len(s.Clients) != 3 {
			t.Fatalf("cell %d: client decompositions missing: %d vs %d entries", i, len(m.Clients), len(s.Clients))
		}
		for k := range m.Clients {
			mc, sc := m.Clients[k], s.Clients[k]
			// The two engines observe retirements in different orders, so
			// the float AVEbsld sum may differ in the last ulp (exactly as
			// in the single-population stream tests); everything else is
			// order-independent and must match exactly.
			if rel := (mc.AVEbsld - sc.AVEbsld) / mc.AVEbsld; rel < -1e-12 || rel > 1e-12 {
				t.Fatalf("cell %d client %s: AVEbsld diverges: %v vs %v", i, mc.Name, mc.AVEbsld, sc.AVEbsld)
			}
			mc.AVEbsld, sc.AVEbsld = 0, 0
			if mc != sc {
				t.Fatalf("cell %d client %s: per-client metrics diverge:\n mem: %+v\n str: %+v", i, mc.Name, m.Clients[k], s.Clients[k])
			}
		}
		var share float64
		finished := 0
		for _, c := range m.Clients {
			share += c.Share
			finished += c.Finished
		}
		if share < 0.999 || share > 1.001 {
			t.Fatalf("cell %d: client shares sum to %v", i, share)
		}
		if finished != 300 {
			t.Fatalf("cell %d: per-client finishes sum to %d, want 300", i, finished)
		}
	}
}

// TestCampaignSinglePopulationHasNoClients: workloads without a clients
// decomposition must not grow one.
func TestCampaignSinglePopulationHasNoClients(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 200)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{Workloads: []*trace.Workload{w}, Triples: []core.Triple{core.EASY()}}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Clients != nil {
		t.Fatalf("single-population cell grew a client decomposition: %+v", results[0].Clients)
	}
}

// TestPerClientJournalRoundTrip: the per-client payload survives the
// JSONL journal and reconstitutes, while the cell key ignores it — so
// journals written before the clients axis existed still resume.
func TestPerClientJournalRoundTrip(t *testing.T) {
	rr := RunResult{
		Workload: "KTH-SP2", Triple: core.EASY(),
		AVEbsld: 12.5, MeanWait: 340,
		Clients: []ClientMetrics{
			{Name: "steady", Finished: 180, Share: 0.6, AVEbsld: 10, MaxBsld: 90, MeanWait: 300},
			{Name: "bursty", Finished: 120, Share: 0.4, AVEbsld: 16, MaxBsld: 200, MeanWait: 400},
		},
	}
	rec := newCellRecord("campaign", "", 300, rr, 0xabc, 0, 0)
	bare := rec
	bare.PerClient = nil
	if rec.Key() != bare.Key() {
		t.Fatal("per-client payload leaked into the cell key")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back CellRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	got := back.runResult(core.EASY())
	if !reflect.DeepEqual(got.Clients, rr.Clients) {
		t.Fatalf("per-client metrics did not round-trip:\n in:  %+v\n out: %+v", rr.Clients, got.Clients)
	}
	// Absent payloads stay absent (and omit the JSON key entirely).
	b2, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) == string(b) {
		t.Fatal("per_client field not serialized")
	}
	var back2 CellRecord
	if err := json.Unmarshal(b2, &back2); err != nil {
		t.Fatal(err)
	}
	if back2.runResult(core.EASY()).Clients != nil {
		t.Fatal("nil per-client payload resurrected as non-nil")
	}
}
