// Package campaign is the experiment harness of Section 6: it runs every
// heuristic triple over every workload, aggregates AVEbsld scores, and
// implements the leave-one-out cross-validation triple selection of
// Section 6.3.3. All paper tables and figure series are derived from a
// campaign's Results.
package campaign

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunResult is the outcome of one (workload, triple) simulation.
type RunResult struct {
	Workload string
	Triple   core.Triple
	// AVEbsld is the average bounded slowdown (the paper's objective).
	AVEbsld float64
	// MaxBsld is the worst job's bounded slowdown.
	MaxBsld float64
	// MeanWait is the mean waiting time in seconds.
	MeanWait float64
	// Utilization is work/capacity over the makespan.
	Utilization float64
	// Corrections is the number of prediction corrections performed.
	Corrections int
	// Canceled is the number of jobs removed by scenario cancellations
	// (always 0 for the undisrupted campaign).
	Canceled int
	// MAE and MeanELoss judge the submission-time predictions.
	MAE       float64
	MeanELoss float64
	// Clients decomposes the cell by traffic source when the workload
	// carries a multi-client clients block (trace.Workload.Clients).
	// Nil for single-population workloads and federated cells (whose
	// decomposition axis is the cluster).
	Clients []ClientMetrics
	// Perf holds the simulation's performance counters.
	Perf sim.Perf
}

// Campaign holds the workloads and triple set to evaluate.
type Campaign struct {
	// Workloads are the inputs, typically the six Table-4 presets.
	Workloads []*trace.Workload
	// Triples is the heuristic-triple grid (defaults to
	// core.CampaignTriples when empty).
	Triples []core.Triple
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
	// Seed is the base seed each cell's deterministic seed is derived
	// from (recorded in the journal; the undisrupted campaign itself is
	// seed-independent).
	Seed uint64
	// Stream runs every cell on the bounded-memory engine
	// (sim.RunStream + metrics.Collector) instead of the preloading one.
	// Decisions and metrics are identical (enforced by the differential
	// tests in internal/sim). The win is per-cell simulation state: a
	// preloading cell materializes runtime job state, a trace-sized
	// event queue and a fully retained Result.Jobs — multiplied by the
	// number of cells in flight — while a streamed cell holds only its
	// live-job window. The input traces in Workloads stay materialized
	// either way (scripts, journal keys and reports need them); the
	// fully bounded O(live jobs + window) paths are the ones fed by
	// lazy sources, e.g. simsched/gentrace -stream. Per-schedule
	// validation (sim.ValidateResult) is skipped: it needs the retained
	// schedule, and the streaming engine's equivalence to the validated
	// path is exactly what the differential layer proves.
	Stream bool
	// Progress, when non-nil, is called after every settled cell
	// (completed, failed, or skipped via Resume) with the number done
	// so far and the grid total. It is invoked from worker goroutines
	// and must be safe for concurrent use.
	Progress func(done, total int)
	// Journal, when non-nil, receives every completed cell as it
	// finishes, making the grid durable: an interrupted run can be
	// resumed from the journal without recomputing finished cells.
	Journal *Journal
	// Resume holds journaled cells from a previous run, keyed by
	// CellRecord.Key (see LoadJournal). Matching cells are not re-run
	// (or re-journaled); their recorded results are returned in place.
	Resume map[string]CellRecord
	// Tracer, when non-nil, receives the flight-recorder event stream of
	// every simulated cell, each event tagged with the cell's workload
	// and triple (obs.Tagged). Cells run concurrently, so the tracer
	// must be safe for concurrent use — obs.JSONL is. Resumed cells are
	// not re-traced (they are not re-run).
	Tracer obs.Tracer
	// Profile collects per-stage latency histograms into each cell's
	// Perf (rendered by report.PerfSummary).
	Profile bool
}

// DefaultWorkloads generates the six paper presets scaled to jobsPerLog
// jobs each (0 = full Table-4 sizes).
func DefaultWorkloads(jobsPerLog int) ([]*trace.Workload, error) {
	var out []*trace.Workload
	for _, name := range workload.PresetNames() {
		cfg, err := workload.Scaled(name, jobsPerLog)
		if err != nil {
			return nil, err
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Run executes the full grid on the shared cancellable executor.
// Results are ordered (workload-major, triple-minor) regardless of
// completion order, keeping reports deterministic. Cancelling ctx stops
// the grid gracefully after in-flight cells finish. On error — cell
// failures or cancellation — Run returns every completed cell (still in
// grid order) together with the joined error, so journaled progress and
// partial results survive instead of being thrown away.
func (c *Campaign) Run(ctx context.Context) ([]RunResult, error) {
	triples := c.Triples
	if len(triples) == 0 {
		triples = core.CampaignTriples()
	}
	results := make([]RunResult, len(c.Workloads)*len(triples))
	completed := make([]bool, len(results))

	// Pre-fill cells a previous journaled run already finished.
	keys := make([]string, len(results))
	for wi, w := range c.Workloads {
		for ti, tr := range triples {
			i := wi*len(triples) + ti
			keys[i] = CellRecord{
				Kind: "campaign", Workload: w.Name, JobCount: len(w.Jobs),
				Triple: tr.Name(), Seed: cellSeed(c.Seed, i),
			}.Key()
			if rec, ok := c.Resume[keys[i]]; ok {
				results[i] = rec.runResult(tr)
				completed[i] = true
			}
		}
	}

	g := grid{
		total:       len(results),
		parallelism: c.Parallelism,
		seed:        c.Seed,
		progress:    c.Progress,
		skip:        func(i int) bool { return completed[i] },
	}
	err := g.run(ctx, func(i int, seed uint64) error {
		wi, ti := i/len(triples), i%len(triples)
		rr, err := runOne(c.Workloads[wi], triples[ti], nil, c.Stream, c.Tracer, c.Profile)
		if err != nil {
			return err
		}
		results[i] = rr
		completed[i] = true
		if c.Journal != nil {
			rec := newCellRecord("campaign", "", len(c.Workloads[wi].Jobs), rr, seed, 0, 0)
			if jerr := c.Journal.Append(rec); jerr != nil {
				return jerr
			}
		}
		return nil
	})
	if err != nil {
		return compact(results, completed), err
	}
	return results, nil
}

// compact keeps the completed cells of a partially-run grid, preserving
// grid order.
func compact[T any](results []T, completed []bool) []T {
	out := results[:0]
	for i, ok := range completed {
		if ok {
			out = append(out, results[i])
		}
	}
	return out
}

// runOne simulates one (workload, triple) cell, optionally under a
// disruption script. The preloading path validates the realized
// schedule; the streaming path computes its metrics one-pass without
// ever retaining the schedule (equivalence to the validated path is the
// differential layer's burden).
func runOne(w *trace.Workload, tr core.Triple, script *scenario.Script, stream bool, tracer obs.Tracer, profile bool) (RunResult, error) {
	cfg := tr.Config()
	cfg.Script = script
	if tracer != nil {
		cfg.Tracer = obs.Tagged{Tracer: tracer, Workload: w.Name, Triple: tr.Name()}
	}
	cfg.Profile = profile
	if stream {
		// Multi-client workloads swap in a per-client sink; its Overall
		// collector accumulates exactly what the plain Collector would.
		var clients *metrics.PerClient
		col := metrics.NewCollector()
		cfg.Sink = col
		if len(w.Clients) > 0 {
			clients = metrics.NewPerClient(w.Clients)
			cfg.Sink = clients
			col = clients.Overall()
		}
		res, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), cfg)
		if err != nil {
			return RunResult{}, fmt.Errorf("campaign: %s on %s (stream): %w", tr.Name(), w.Name, err)
		}
		rr := RunResult{
			Workload:    w.Name,
			Triple:      tr,
			AVEbsld:     col.AVEbsld(),
			MaxBsld:     col.MaxBsld(),
			MeanWait:    col.MeanWait(),
			Utilization: col.Utilization(res.Makespan, res.MaxProcs),
			Corrections: res.Corrections,
			Canceled:    res.Canceled,
			MAE:         col.MAE(),
			MeanELoss:   col.MeanELoss(),
			Perf:        res.Perf,
		}
		if clients != nil {
			rr.Clients = perClientMetrics(clients)
		}
		return rr, nil
	}
	res, err := sim.Run(w, cfg)
	if err != nil {
		return RunResult{}, fmt.Errorf("campaign: %s on %s: %w", tr.Name(), w.Name, err)
	}
	if verrs := sim.ValidateResult(res); len(verrs) != 0 {
		return RunResult{}, fmt.Errorf("campaign: %s on %s: invalid schedule: %v", tr.Name(), w.Name, verrs[0])
	}
	rr := RunResult{
		Workload:    w.Name,
		Triple:      tr,
		AVEbsld:     metrics.AVEbsld(res),
		MaxBsld:     metrics.MaxBsld(res),
		MeanWait:    metrics.MeanWait(res),
		Utilization: metrics.Utilization(res),
		Corrections: res.Corrections,
		Canceled:    res.Canceled,
		MAE:         metrics.MAE(res.Jobs),
		MeanELoss:   metrics.MeanELoss(res.Jobs),
		Perf:        res.Perf,
	}
	if len(w.Clients) > 0 {
		rr.Clients = perClientMetrics(perClientFromJobs(w.Clients, res.Jobs))
	}
	return rr, nil
}

// Score looks up the AVEbsld of a (workload, triple-name) pair.
func Score(results []RunResult, workloadName, tripleName string) (float64, bool) {
	for i := range results {
		if results[i].Workload == workloadName && results[i].Triple.Name() == tripleName {
			return results[i].AVEbsld, true
		}
	}
	return 0, false
}

// ByWorkload groups results per workload, preserving triple order.
func ByWorkload(results []RunResult) map[string][]RunResult {
	out := make(map[string][]RunResult)
	for _, r := range results {
		out[r.Workload] = append(out[r.Workload], r)
	}
	return out
}
