// Package campaign is the experiment harness of Section 6: it runs every
// heuristic triple over every workload, aggregates AVEbsld scores, and
// implements the leave-one-out cross-validation triple selection of
// Section 6.3.3. All paper tables and figure series are derived from a
// campaign's Results.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RunResult is the outcome of one (workload, triple) simulation.
type RunResult struct {
	Workload string
	Triple   core.Triple
	// AVEbsld is the average bounded slowdown (the paper's objective).
	AVEbsld float64
	// MaxBsld is the worst job's bounded slowdown.
	MaxBsld float64
	// MeanWait is the mean waiting time in seconds.
	MeanWait float64
	// Utilization is work/capacity over the makespan.
	Utilization float64
	// Corrections is the number of prediction corrections performed.
	Corrections int
	// Canceled is the number of jobs removed by scenario cancellations
	// (always 0 for the undisrupted campaign).
	Canceled int
	// MAE and MeanELoss judge the submission-time predictions.
	MAE       float64
	MeanELoss float64
}

// Campaign holds the workloads and triple set to evaluate.
type Campaign struct {
	// Workloads are the inputs, typically the six Table-4 presets.
	Workloads []*trace.Workload
	// Triples is the heuristic-triple grid (defaults to
	// core.CampaignTriples when empty).
	Triples []core.Triple
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after every completed
	// simulation with the number done so far and the grid total. It is
	// invoked from worker goroutines and must be safe for concurrent
	// use.
	Progress func(done, total int)
}

// DefaultWorkloads generates the six paper presets scaled to jobsPerLog
// jobs each (0 = full Table-4 sizes).
func DefaultWorkloads(jobsPerLog int) ([]*trace.Workload, error) {
	var out []*trace.Workload
	for _, name := range workload.PresetNames() {
		cfg, err := workload.Scaled(name, jobsPerLog)
		if err != nil {
			return nil, err
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Run executes the full grid. Simulations are independent, so they run on
// a bounded worker pool; results are ordered (workload-major, triple-minor)
// regardless of completion order, keeping reports deterministic.
func (c *Campaign) Run() ([]RunResult, error) {
	triples := c.Triples
	if len(triples) == 0 {
		triples = core.CampaignTriples()
	}
	par := c.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	type task struct {
		wi, ti int
	}
	tasks := make(chan task)
	results := make([]RunResult, len(c.Workloads)*len(triples))
	errs := make([]error, len(results))
	var done atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < par; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				idx := tk.wi*len(triples) + tk.ti
				results[idx], errs[idx] = runOne(c.Workloads[tk.wi], triples[tk.ti], nil)
				if c.Progress != nil {
					c.Progress(int(done.Add(1)), len(results))
				}
			}
		}()
	}
	for wi := range c.Workloads {
		for ti := range triples {
			tasks <- task{wi, ti}
		}
	}
	close(tasks)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runOne simulates one (workload, triple) cell, optionally under a
// disruption script, and validates the realized schedule.
func runOne(w *trace.Workload, tr core.Triple, script *scenario.Script) (RunResult, error) {
	cfg := tr.Config()
	cfg.Script = script
	res, err := sim.Run(w, cfg)
	if err != nil {
		return RunResult{}, fmt.Errorf("campaign: %s on %s: %w", tr.Name(), w.Name, err)
	}
	if verrs := sim.ValidateResult(res); len(verrs) != 0 {
		return RunResult{}, fmt.Errorf("campaign: %s on %s: invalid schedule: %v", tr.Name(), w.Name, verrs[0])
	}
	return RunResult{
		Workload:    w.Name,
		Triple:      tr,
		AVEbsld:     metrics.AVEbsld(res),
		MaxBsld:     metrics.MaxBsld(res),
		MeanWait:    metrics.MeanWait(res),
		Utilization: metrics.Utilization(res),
		Corrections: res.Corrections,
		Canceled:    res.Canceled,
		MAE:         metrics.MAE(res.Jobs),
		MeanELoss:   metrics.MeanELoss(res.Jobs),
	}, nil
}

// Score looks up the AVEbsld of a (workload, triple-name) pair.
func Score(results []RunResult, workloadName, tripleName string) (float64, bool) {
	for i := range results {
		if results[i].Workload == workloadName && results[i].Triple.Name() == tripleName {
			return results[i].AVEbsld, true
		}
	}
	return 0, false
}

// ByWorkload groups results per workload, preserving triple order.
func ByWorkload(results []RunResult) map[string][]RunResult {
	out := make(map[string][]RunResult)
	for _, r := range results {
		out[r.Workload] = append(out[r.Workload], r)
	}
	return out
}
