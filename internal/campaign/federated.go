package campaign

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Federation is one point on a campaign's platform axis: a cluster
// topology plus the routing policy in front of it.
type Federation struct {
	// Name labels the federation in journals and reports. Empty defaults
	// to the routing policy's name.
	Name string
	// Clusters describes the platform (normalized per run).
	Clusters []platform.Cluster
	// Routing names the routing policy (sched.NewRouter vocabulary).
	// Empty defaults to round-robin.
	Routing string
}

// label resolves the display/journal name.
func (f Federation) label() string {
	if f.Name != "" {
		return f.Name
	}
	return f.router()
}

// router resolves the routing policy name.
func (f Federation) router() string {
	if f.Routing != "" {
		return f.Routing
	}
	return "round-robin"
}

// ClusterMetrics is one cluster's slice of a federated cell: its
// identity, how the router loaded it, and its local metric values.
type ClusterMetrics struct {
	Name        string  `json:"name"`
	Procs       int64   `json:"procs"`
	Speed       float64 `json:"speed"`
	Routed      int     `json:"routed"`
	Finished    int     `json:"finished"`
	AVEbsld     float64 `json:"avebsld"`
	MeanWait    float64 `json:"mean_wait"`
	Utilization float64 `json:"utilization"`
	// Events and PickCalls are the cluster's slice of the run's perf
	// counters (sim.ClusterResult), rolled into report.PerfSummary so
	// -perf covers federated grids cluster by cluster. omitempty keeps
	// journals from pre-counter runs loading (and writing) unchanged.
	Events    int64 `json:"events,omitempty"`
	PickCalls int64 `json:"pick_calls,omitempty"`
}

// FederatedResult is the outcome of one (workload, federation, triple)
// cell: the familiar global metrics plus the per-cluster split.
type FederatedResult struct {
	RunResult
	// Federation and Topology identify the platform the cell ran on.
	Federation string
	Topology   string
	// Routing names the routing policy.
	Routing string
	// Clusters holds the per-cluster metrics in platform order.
	Clusters []ClusterMetrics
}

// FederatedCampaign evaluates a triple grid across workloads AND
// federated platforms: the grid is workloads x federations x triples,
// journaled and resumable exactly like Campaign (federated cells carry
// their platform identity in the journal key, so mixed journals are
// safe).
type FederatedCampaign struct {
	// Workloads are the input traces.
	Workloads []*trace.Workload
	// Federations is the platform axis; at least one is required.
	Federations []Federation
	// Triples is the heuristic-triple grid (defaults to
	// core.CampaignTriples when empty).
	Triples []core.Triple
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
	// Seed is the base seed each cell's deterministic seed derives from.
	Seed uint64
	// Stream runs every cell on the bounded-memory federated engine (see
	// Campaign.Stream; per-cluster validation is then the differential
	// layer's burden).
	Stream bool
	// Shards runs each streaming cell on the parallel sharded federated
	// driver with this many per-cluster event-loop goroutines (see
	// sim.FederatedConfig.Shards; results are byte-identical to the
	// sequential engine for every shard count). 0 keeps the sequential
	// driver. Requires Stream and conflicts with Profile (the sharded
	// driver does not collect stage histograms).
	Shards int
	// Progress, Journal and Resume behave exactly as on Campaign.
	Progress func(done, total int)
	Journal  *Journal
	Resume   map[string]CellRecord
	// Tracer and Profile enable the flight recorder and stage
	// histograms per cell; see Campaign.Tracer and Campaign.Profile.
	Tracer  obs.Tracer
	Profile bool
}

// Run executes the grid on the shared cancellable executor. Results are
// ordered workload-major, federation-mid, triple-minor regardless of
// completion order. On error it returns every completed cell (in grid
// order) with the joined error, like Campaign.Run.
func (c *FederatedCampaign) Run(ctx context.Context) ([]FederatedResult, error) {
	if len(c.Federations) == 0 {
		return nil, fmt.Errorf("campaign: federated campaign needs at least one federation")
	}
	if c.Shards != 0 {
		if c.Shards < 0 {
			return nil, fmt.Errorf("campaign: shards must be >= 0, got %d", c.Shards)
		}
		if !c.Stream {
			return nil, fmt.Errorf("campaign: shards requires the streaming engine (set Stream)")
		}
		if c.Profile {
			return nil, fmt.Errorf("campaign: shards conflicts with stage profiling (the sharded driver collects no histograms)")
		}
	}
	triples := c.Triples
	if len(triples) == 0 {
		triples = core.CampaignTriples()
	}
	// Validate the platform axis up front: one bad topology should fail
	// fast, not per cell inside the pool.
	topologies := make([]string, len(c.Federations))
	for fi, fed := range c.Federations {
		norm, err := platform.Normalize(fed.Clusters)
		if err != nil {
			return nil, fmt.Errorf("campaign: federation %s: %w", fed.label(), err)
		}
		if _, err := sched.NewRouter(fed.router()); err != nil {
			return nil, fmt.Errorf("campaign: federation %s: %w", fed.label(), err)
		}
		topologies[fi] = platform.Topology(norm)
	}

	nf, nt := len(c.Federations), len(triples)
	results := make([]FederatedResult, len(c.Workloads)*nf*nt)
	completed := make([]bool, len(results))

	for wi, w := range c.Workloads {
		for fi, fed := range c.Federations {
			for ti, tr := range triples {
				i := (wi*nf+fi)*nt + ti
				key := CellRecord{
					Kind: "campaign", Workload: w.Name, JobCount: len(w.Jobs),
					Triple: tr.Name(), Seed: cellSeed(c.Seed, i),
					Federation: fed.label(), Topology: topologies[fi],
				}.Key()
				if rec, ok := c.Resume[key]; ok {
					results[i] = rec.federatedResult(tr, fed.router())
					completed[i] = true
				}
			}
		}
	}

	g := grid{
		total:       len(results),
		parallelism: c.Parallelism,
		seed:        c.Seed,
		progress:    c.Progress,
		skip:        func(i int) bool { return completed[i] },
	}
	err := g.run(ctx, func(i int, seed uint64) error {
		wi, fi, ti := i/(nf*nt), (i/nt)%nf, i%nt
		fed := c.Federations[fi]
		fr, err := runOneFederated(c.Workloads[wi], fed, topologies[fi], triples[ti], c.Stream, c.Shards, c.Tracer, c.Profile)
		if err != nil {
			return err
		}
		results[i] = fr
		completed[i] = true
		if c.Journal != nil {
			rec := newCellRecord("campaign", "", len(c.Workloads[wi].Jobs), fr.RunResult, seed, 0, 0)
			rec.Federation = fr.Federation
			rec.Topology = fr.Topology
			rec.Clusters = fr.Clusters
			if jerr := c.Journal.Append(rec); jerr != nil {
				return jerr
			}
		}
		return nil
	})
	if err != nil {
		return compact(results, completed), err
	}
	return results, nil
}

// federatedResult reconstitutes a journaled federated cell.
func (r CellRecord) federatedResult(tr core.Triple, routing string) FederatedResult {
	return FederatedResult{
		RunResult:  r.runResult(tr),
		Federation: r.Federation,
		Topology:   r.Topology,
		Routing:    routing,
		Clusters:   r.Clusters,
	}
}

// runOneFederated simulates one (workload, federation, triple) cell.
// The preloading path validates the realized schedule cluster by
// cluster; the streaming path trusts the differential layer, as the
// single-machine harness does.
func runOneFederated(w *trace.Workload, fed Federation, topology string, tr core.Triple, stream bool, shards int, tracer obs.Tracer, profile bool) (FederatedResult, error) {
	clusters, err := platform.Normalize(fed.Clusters)
	if err != nil {
		return FederatedResult{}, fmt.Errorf("campaign: federation %s: %w", fed.label(), err)
	}
	router, err := sched.NewRouter(fed.router())
	if err != nil {
		return FederatedResult{}, fmt.Errorf("campaign: federation %s: %w", fed.label(), err)
	}
	col := metrics.NewFederated(len(clusters))
	cfg := sim.FederatedConfig{
		Clusters: clusters,
		Router:   router,
		Session:  tr.Config,
		Sink:     col,
		Profile:  profile,
	}
	if tracer != nil {
		cfg.Tracer = obs.Tagged{Tracer: tracer, Workload: w.Name, Triple: tr.Name()}
	}
	var res *sim.Result
	if stream {
		cfg.Shards = shards
		res, err = sim.RunFederatedStream(w.Name, workload.FromWorkload(w), cfg)
	} else {
		res, err = sim.RunFederated(w, cfg)
	}
	if err != nil {
		return FederatedResult{}, fmt.Errorf("campaign: %s on %s/%s: %w", tr.Name(), w.Name, fed.label(), err)
	}
	if !stream {
		if verrs := sim.ValidateResult(res); len(verrs) != 0 {
			return FederatedResult{}, fmt.Errorf("campaign: %s on %s/%s: invalid schedule: %v", tr.Name(), w.Name, fed.label(), verrs[0])
		}
	}

	cm := make([]ClusterMetrics, len(res.Clusters))
	for ci := range res.Clusters {
		cr := &res.Clusters[ci]
		cc := col.Clusters[ci]
		cm[ci] = ClusterMetrics{
			Name:        cr.Name,
			Procs:       cr.MaxProcs,
			Speed:       cr.Speed,
			Routed:      cr.Routed,
			Finished:    cr.Finished,
			AVEbsld:     cc.AVEbsld(),
			MeanWait:    cc.MeanWait(),
			Utilization: cc.Utilization(cr.Makespan, cr.MaxProcs),
			Events:      cr.Events,
			PickCalls:   cr.PickCalls,
		}
	}
	g := col.Global()
	return FederatedResult{
		RunResult: RunResult{
			Workload:    w.Name,
			Triple:      tr,
			AVEbsld:     g.AVEbsld(),
			MaxBsld:     g.MaxBsld(),
			MeanWait:    g.MeanWait(),
			Utilization: g.Utilization(res.Makespan, res.MaxProcs),
			Corrections: res.Corrections,
			Canceled:    res.Canceled,
			MAE:         g.MAE(),
			MeanELoss:   g.MeanELoss(),
			Perf:        res.Perf,
		},
		Federation: fed.label(),
		Topology:   topology,
		Routing:    res.Routing,
		Clusters:   cm,
	}, nil
}
