package campaign

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// AverageRobustness merges repeated robustness sweeps — the same grid
// run under different base seeds, so each repeat faces freshly drawn
// disruption scripts — into one cell-averaged result set, the variance
// reduction a spec's `repeats:` dimension asks for. Every run must have
// the same shape (same workloads, scenario columns and triples in the
// same order); cells are matched positionally and that identity is
// verified. Quality metrics (AVEbsld, MaxBsld, MeanWait, Utilization,
// MAE, MeanELoss) are arithmetic means; event counts (Corrections,
// Canceled, Drains, CancelEvents) are rounded means, so the report
// footers read as "per-repeat" volumes; Perf counters are summed — the
// merged set is also the performance record of all the work actually
// done.
func AverageRobustness(runs [][]RobustnessResult) ([]RobustnessResult, error) {
	if len(runs) == 0 {
		return nil, nil
	}
	base := runs[0]
	for r, run := range runs[1:] {
		if len(run) != len(base) {
			return nil, fmt.Errorf("campaign: repeat %d has %d cells, repeat 0 has %d", r+1, len(run), len(base))
		}
	}
	out := make([]RobustnessResult, len(base))
	n := float64(len(runs))
	for i := range base {
		// acc keeps the cell's identity fields from repeat 0; every
		// metric is zeroed and re-accumulated over all repeats.
		acc := base[i]
		name := acc.Triple.Name()
		acc.AVEbsld, acc.MaxBsld, acc.MeanWait, acc.Utilization, acc.MAE, acc.MeanELoss = 0, 0, 0, 0, 0, 0
		acc.Perf = sim.Perf{}
		var corrections, canceled, drains, cancelEvents float64
		for _, run := range runs {
			c := run[i]
			if c.Workload != base[i].Workload || c.Intensity != base[i].Intensity || c.Triple.Name() != name {
				return nil, fmt.Errorf("campaign: repeats disagree at cell %d: %s/%s/%s vs %s/%s/%s",
					i, base[i].Workload, base[i].Intensity, name, c.Workload, c.Intensity, c.Triple.Name())
			}
			acc.AVEbsld += c.AVEbsld
			acc.MaxBsld += c.MaxBsld
			acc.MeanWait += c.MeanWait
			acc.Utilization += c.Utilization
			acc.MAE += c.MAE
			acc.MeanELoss += c.MeanELoss
			acc.Perf.Events += c.Perf.Events
			acc.Perf.PickCalls += c.Perf.PickCalls
			acc.Perf.WallNanos += c.Perf.WallNanos
			corrections += float64(c.Corrections)
			canceled += float64(c.Canceled)
			drains += float64(c.Drains)
			cancelEvents += float64(c.CancelEvents)
		}
		acc.AVEbsld /= n
		acc.MaxBsld /= n
		acc.MeanWait /= n
		acc.Utilization /= n
		acc.MAE /= n
		acc.MeanELoss /= n
		acc.Corrections = int(math.Round(corrections / n))
		acc.Canceled = int(math.Round(canceled / n))
		acc.Drains = int(math.Round(drains / n))
		acc.CancelEvents = int(math.Round(cancelEvents / n))
		out[i] = acc
	}
	return out, nil
}
