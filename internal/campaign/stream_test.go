package campaign_test

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// streamTestWorkloads builds a small two-preset grid input.
func streamTestWorkloads(t *testing.T, jobs int) []*trace.Workload {
	t.Helper()
	var ws []*trace.Workload
	for _, name := range []string{"KTH-SP2", "CTC-SP2"} {
		cfg, err := workload.Scaled(name, jobs)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

// TestStreamCampaignTableIdentical renders the campaign overview from a
// streamed grid and a preloaded grid and requires byte-identical tables
// — the metric-table half of the streaming acceptance criteria.
func TestStreamCampaignTableIdentical(t *testing.T) {
	ws := streamTestWorkloads(t, 250)
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus(), core.ClairvoyantSJBF()}

	mem := &campaign.Campaign{Workloads: ws, Triples: triples, Seed: 3}
	memResults, err := mem.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	str := &campaign.Campaign{Workloads: ws, Triples: triples, Seed: 3, Stream: true}
	strResults, err := str.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := report.Table6(strResults), report.Table6(memResults); got != want {
		t.Fatalf("streamed Table 6 differs from preloaded:\n%s\nvs\n%s", got, want)
	}
	if got, want := report.Table1(strResults), report.Table1(memResults); got != want {
		t.Fatalf("streamed Table 1 differs from preloaded:\n%s\nvs\n%s", got, want)
	}
	for i := range memResults {
		m, s := memResults[i], strResults[i]
		if m.Workload != s.Workload || m.Triple.Name() != s.Triple.Name() {
			t.Fatalf("cell %d identity differs: %s/%s vs %s/%s", i, m.Workload, m.Triple.Name(), s.Workload, s.Triple.Name())
		}
		if m.Corrections != s.Corrections || m.Canceled != s.Canceled ||
			m.MeanWait != s.MeanWait || m.Utilization != s.Utilization || m.MaxBsld != s.MaxBsld {
			t.Fatalf("cell %d metrics differ: %+v vs %+v", i, m, s)
		}
	}
}

// TestStreamRobustnessTableIdentical does the same for the disruption
// sweep (shared scripts per cell on both engines).
func TestStreamRobustnessTableIdentical(t *testing.T) {
	ws := streamTestWorkloads(t, 200)
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus()}
	moderate, ok := scenario.IntensityByName("moderate")
	if !ok {
		t.Fatal("moderate intensity missing")
	}
	scenarios := []campaign.Scenario{
		{Intensity: scenario.Intensity{Name: "none"}},
		{Intensity: moderate},
	}

	mem := &campaign.Robustness{Workloads: ws, Triples: triples, Scenarios: scenarios, Seed: 7}
	memResults, err := mem.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	str := &campaign.Robustness{Workloads: ws, Triples: triples, Scenarios: scenarios, Seed: 7, Stream: true}
	strResults, err := str.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report.RobustnessTable(strResults), report.RobustnessTable(memResults); got != want {
		t.Fatalf("streamed robustness table differs:\n%s\nvs\n%s", got, want)
	}
}
