package campaign

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

func TestRobustnessRun(t *testing.T) {
	ws := miniWorkloads(t, 300, "KTH-SP2")
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus(), core.ConservativeBF()}
	r := &Robustness{Workloads: ws, Triples: triples, Seed: 11}
	results, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := len(ws) * len(scenario.Intensities) * len(triples)
	if len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	sawDisruption := false
	for _, res := range results {
		if res.AVEbsld < 1 {
			t.Errorf("%s/%s: AVEbsld %v < 1", res.Triple.Name(), res.Intensity, res.AVEbsld)
		}
		if res.Intensity == "none" {
			if res.Canceled != 0 || res.Drains != 0 {
				t.Errorf("undisrupted cell reports %d cancels, %d drains", res.Canceled, res.Drains)
			}
		}
		if res.Intensity == "heavy" && (res.Canceled > 0 || res.Drains > 0) {
			sawDisruption = true
		}
	}
	if !sawDisruption {
		t.Fatal("heavy intensity produced no disruptions at all")
	}
}

// TestRobustnessSharedScriptsAcrossTriples: within one (workload,
// intensity) column every triple faces the same disruption volume.
func TestRobustnessSharedScriptsAcrossTriples(t *testing.T) {
	ws := miniWorkloads(t, 250, "CTC-SP2")
	r := &Robustness{Workloads: ws, Triples: []core.Triple{core.EASY(), core.PaperBest()}, Seed: 3}
	results, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byIntensity := map[string]map[int]bool{}
	for _, res := range results {
		if byIntensity[res.Intensity] == nil {
			byIntensity[res.Intensity] = map[int]bool{}
		}
		byIntensity[res.Intensity][res.CancelEvents] = true
	}
	for in, set := range byIntensity {
		if len(set) != 1 {
			t.Errorf("%s: cancel-event counts differ across triples: %v", in, set)
		}
	}
}

func TestCampaignProgressCallback(t *testing.T) {
	ws := miniWorkloads(t, 200, "KTH-SP2")
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus()}
	var mu sync.Mutex
	calls := 0
	last := 0
	c := &Campaign{Workloads: ws, Triples: triples, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > last {
			last = done
		}
		if total != len(ws)*len(triples) {
			t.Errorf("total = %d, want %d", total, len(ws)*len(triples))
		}
	}}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != len(ws)*len(triples) || last != calls {
		t.Fatalf("progress called %d times (last done %d), want %d", calls, last, len(ws)*len(triples))
	}
}
