package campaign

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

func TestRobustnessRun(t *testing.T) {
	ws := miniWorkloads(t, 300, "KTH-SP2")
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus(), core.ConservativeBF()}
	r := &Robustness{Workloads: ws, Triples: triples, Seed: 11}
	results, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := len(ws) * len(scenario.Intensities) * len(triples)
	if len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	sawDisruption := false
	for _, res := range results {
		if res.AVEbsld < 1 {
			t.Errorf("%s/%s: AVEbsld %v < 1", res.Triple.Name(), res.Intensity, res.AVEbsld)
		}
		if res.Intensity == "none" {
			if res.Canceled != 0 || res.Drains != 0 {
				t.Errorf("undisrupted cell reports %d cancels, %d drains", res.Canceled, res.Drains)
			}
		}
		if res.Intensity == "heavy" && (res.Canceled > 0 || res.Drains > 0) {
			sawDisruption = true
		}
	}
	if !sawDisruption {
		t.Fatal("heavy intensity produced no disruptions at all")
	}
}

// TestRobustnessSharedScriptsAcrossTriples: within one (workload,
// intensity) column every triple faces the same disruption volume.
func TestRobustnessSharedScriptsAcrossTriples(t *testing.T) {
	ws := miniWorkloads(t, 250, "CTC-SP2")
	r := &Robustness{Workloads: ws, Triples: []core.Triple{core.EASY(), core.PaperBest()}, Seed: 3}
	results, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byIntensity := map[string]map[int]bool{}
	for _, res := range results {
		if byIntensity[res.Intensity] == nil {
			byIntensity[res.Intensity] = map[int]bool{}
		}
		byIntensity[res.Intensity][res.CancelEvents] = true
	}
	for in, set := range byIntensity {
		if len(set) != 1 {
			t.Errorf("%s: cancel-event counts differ across triples: %v", in, set)
		}
	}
}

// TestRobustnessScenarioColumns mixes the three column kinds — a named
// intensity, a custom generated intensity, and a fixed inline script —
// and checks labels, script sharing, and that the fixed script's
// disruption volume is identical across workloads.
func TestRobustnessScenarioColumns(t *testing.T) {
	ws := miniWorkloads(t, 250, "KTH-SP2", "CTC-SP2")
	fixed := scenario.NewBuilder("mid-maintenance").
		Maintenance(3600, 7200, 8).
		MustBuild()
	cols := []Scenario{
		{Intensity: scenario.Intensity{Name: "none"}},
		{Intensity: scenario.Intensity{Name: "squeeze", Windows: 3, MaxDrainFrac: 0.3, CancelFrac: 0.05}},
		{Script: fixed},
	}
	r := &Robustness{
		Workloads: ws,
		Triples:   []core.Triple{core.EASY()},
		Scenarios: cols,
		Seed:      9,
	}
	results, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ws) * len(cols); len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	seen := map[string]int{}
	for _, res := range results {
		seen[res.Intensity]++
		switch res.Intensity {
		case "none":
			if res.Drains != 0 || res.CancelEvents != 0 {
				t.Errorf("none column reports %d drains, %d cancels", res.Drains, res.CancelEvents)
			}
		case "mid-maintenance":
			if res.Drains != 1 {
				t.Errorf("fixed script column reports %d drains, want 1", res.Drains)
			}
		case "squeeze":
			if res.Drains == 0 {
				t.Errorf("custom intensity produced no drains")
			}
		default:
			t.Errorf("unexpected column label %q", res.Intensity)
		}
	}
	for _, name := range []string{"none", "squeeze", "mid-maintenance"} {
		if seen[name] != len(ws) {
			t.Errorf("column %q has %d cells, want %d", name, seen[name], len(ws))
		}
	}
}

// TestAverageRobustness checks the repeats merge: metric means, summed
// perf counters, and shape verification.
func TestAverageRobustness(t *testing.T) {
	ws := miniWorkloads(t, 250, "KTH-SP2")
	triples := []core.Triple{core.EASY()}
	var runs [][]RobustnessResult
	for r := 0; r < 2; r++ {
		h := &Robustness{Workloads: ws, Triples: triples, Seed: 11 + uint64(r)}
		res, err := h.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, res)
	}
	avg, err := AverageRobustness(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(avg) != len(runs[0]) {
		t.Fatalf("averaged %d cells, want %d", len(avg), len(runs[0]))
	}
	for i := range avg {
		want := (runs[0][i].AVEbsld + runs[1][i].AVEbsld) / 2
		if diff := avg[i].AVEbsld - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("cell %d: AVEbsld %v, want %v", i, avg[i].AVEbsld, want)
		}
		if got, want := avg[i].Perf.Events, runs[0][i].Perf.Events+runs[1][i].Perf.Events; got != want {
			t.Errorf("cell %d: summed events %d, want %d", i, got, want)
		}
	}
	// Mismatched shapes must be rejected.
	if _, err := AverageRobustness([][]RobustnessResult{runs[0], runs[1][:1]}); err == nil {
		t.Fatal("mismatched repeat shapes not rejected")
	}
}

// TestRobustnessPinnedValidationCell pins the ROADMAP's latent
// ValidateResult edge case: `campaign -robustness -jobs 250 -seed 5`
// failed two CTC-SP2 cells ("capacity exceeded at t: 29 > 28") because
// the validator applied a same-instant capacity step — a pending drain
// absorbing releases — before counting the releases it absorbed. The
// exact failing cells were EASY and EASY++ under the heavy intensity;
// this reruns precisely that (workload, seed, triple) slice.
func TestRobustnessPinnedValidationCell(t *testing.T) {
	ws := miniWorkloads(t, 250, "CTC-SP2")
	r := &Robustness{
		Workloads: ws,
		Triples:   []core.Triple{core.EASY(), core.EASYPlusPlus()},
		Seed:      5,
	}
	if _, err := r.Run(context.Background()); err != nil {
		t.Fatalf("pinned robustness cells failed validation: %v", err)
	}
}

func TestCampaignProgressCallback(t *testing.T) {
	ws := miniWorkloads(t, 200, "KTH-SP2")
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus()}
	var mu sync.Mutex
	calls := 0
	last := 0
	c := &Campaign{Workloads: ws, Triples: triples, Progress: func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > last {
			last = done
		}
		if total != len(ws)*len(triples) {
			t.Errorf("total = %d, want %d", total, len(ws)*len(triples))
		}
	}}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != len(ws)*len(triples) || last != calls {
		t.Fatalf("progress called %d times (last done %d), want %d", calls, last, len(ws)*len(triples))
	}
}
