// Package journal provides a durable, append-only JSONL result journal
// for long-running experiment grids. Each record is one JSON object on
// one line; a Writer appends records as they complete, and Load replays
// them on restart so an interrupted campaign can resume where it left
// off instead of recomputing finished cells.
//
// Durability model: appends go through a single write(2) on a file
// opened with O_APPEND, serialized by a mutex, so concurrent workers
// never interleave bytes within a line and a crash can only lose (or
// truncate) the final record. Load is tolerant of exactly that failure
// mode — an unparsable or unterminated final line is dropped and
// reported in the stats rather than poisoning the whole journal.
// Corruption anywhere else is a hard error: it means something other
// than an interrupted append wrote to the file.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Writer appends records of type T to a JSONL journal file. It is safe
// for concurrent use by multiple goroutines.
type Writer[T any] struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenWriter opens (creating if necessary) the journal at path for
// appending. An existing journal is never truncated — new records are
// added after the old ones, which is what a resumed campaign wants.
func OpenWriter[T any](path string) (*Writer[T], error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer[T]{f: f, path: path}, nil
}

// Path returns the journal file path.
func (w *Writer[T]) Path() string { return w.path }

// Append marshals rec and appends it as one line. The line is written
// with a single Write call so concurrent appends never interleave and a
// crash mid-append leaves at most one truncated final line.
func (w *Writer[T]) Append(rec T) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: marshal: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("journal: append to %s: %w", w.path, err)
	}
	return nil
}

// Sync flushes the journal to stable storage.
func (w *Writer[T]) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the journal file.
func (w *Writer[T]) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// LoadStats describes what Load found.
type LoadStats struct {
	// Records is the number of records successfully decoded.
	Records int
	// Dropped is 1 if a truncated or corrupt final line was discarded,
	// 0 otherwise.
	Dropped int
}

// Load reads every record from the journal at path. A truncated or
// corrupt final line — the signature of a run killed mid-append — is
// dropped and counted in the stats; corruption before the final line is
// an error. A missing file is an error the caller can detect with
// errors.Is(err, os.ErrNotExist).
func Load[T any](path string) ([]T, LoadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, LoadStats{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	var out []T
	var stats LoadStats
	r := bufio.NewReader(f)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		atEOF := err == io.EOF
		if err != nil && !atEOF {
			return nil, LoadStats{}, fmt.Errorf("journal: read %s: %w", path, err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var rec T
			if jerr := json.Unmarshal(trimmed, &rec); jerr != nil {
				if atEOF {
					// Interrupted final append: tolerate and report.
					stats.Dropped = 1
					break
				}
				return nil, LoadStats{}, fmt.Errorf("journal: %s line %d: %w", path, lineNo, jerr)
			}
			// A parsable line without its terminating newline is still a
			// complete record; keep it.
			out = append(out, rec)
			stats.Records++
		}
		if atEOF {
			break
		}
	}
	return out, stats, nil
}
