package journal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type rec struct {
	ID    int     `json:"id"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := OpenWriter[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{{1, "a", 1.5}, {2, "b", 0.25}, {3, "c", 1e300}}
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Load[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(want) || stats.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d records, 0 dropped", stats, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAppendToExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	for round := 0; round < 2; round++ {
		w, err := OpenWriter[rec](path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec{ID: round}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := Load[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("reopened journal lost records: %+v", got)
	}
}

func TestTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := OpenWriter[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(rec{ID: i, Name: "record"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: chop the file partway through the
	// final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Load[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || stats.Records != 2 || stats.Dropped != 1 {
		t.Fatalf("got %d records (stats %+v), want 2 records, 1 dropped", len(got), stats)
	}
	for i, r := range got {
		if r.ID != i || r.Name != "record" {
			t.Fatalf("surviving record %d corrupted: %+v", i, r)
		}
	}
}

func TestFinalLineWithoutNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"id\":1}\n{\"id\":2}"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := Load[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || stats.Dropped != 0 {
		t.Fatalf("complete-but-unterminated final record mishandled: %d records, stats %+v", len(got), stats)
	}
}

func TestMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"id\":1}\ngarbage\n{\"id\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load[rec](path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestMissingFile(t *testing.T) {
	_, _, err := Load[rec](filepath.Join(t.TempDir(), "absent.jsonl"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := OpenWriter[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := w.Append(rec{ID: i, Name: "concurrent-append-payload-padding"}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range got {
		seen[r.ID] = true
	}
	if len(got) != n || len(seen) != n {
		t.Fatalf("concurrent appends lost or interleaved records: %d lines, %d distinct", len(got), len(seen))
	}
}
