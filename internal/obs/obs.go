// Package obs is the simulator's flight recorder: structured tracing of
// every scheduling decision plus per-stage latency profiling, designed
// so that observation can never perturb the system it observes.
//
// A Tracer receives one Event per decision in the lifecycle of a job —
// submission, routing (with the candidate set the router chose from),
// every policy Pick (including declines, with the machine context the
// decision saw), start, finish (predicted-vs-actual runtime and the
// job's bounded slowdown, the raw material of the calibrate loop),
// cancellation, prediction correction — and per capacity change. Events
// are written as JSONL through internal/journal's atomic append writer,
// so concurrent campaign cells can share one trace file without
// interleaving bytes within a line.
//
// The contract the differential tests enforce: tracing is observation
// only. A traced run makes byte-identical decisions, counters and
// capacity timelines to an untraced one, and a nil Tracer costs nothing
// on the hot path (the zero-alloc Pick baselines in BENCH_baseline.json
// hold with tracing compiled in).
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/journal"
)

// Event kinds, one per decision point in the engine. ValidateEvent
// rejects anything else.
const (
	KindSubmit   = "submit"   // job entered the system (post-routing)
	KindRoute    = "route"    // router dispatched a job to a cluster
	KindPick     = "pick"     // one policy Pick call, chosen job or decline
	KindStart    = "start"    // job began running
	KindFinish   = "finish"   // job completed (normally or killed)
	KindCancel   = "cancel"   // scenario cancellation removed a job
	KindCapacity = "capacity" // in-service or eventual capacity changed
	KindCorrect  = "correct"  // prediction-expiry correction
)

// Event is one flight-recorder record. A single flat struct covers
// every kind; fields irrelevant to a kind stay zero and are omitted
// from the JSON line. T is simulation time (seconds since the trace
// epoch), never wall clock, so traces are reproducible.
type Event struct {
	// T is the simulation instant of the decision.
	T int64 `json:"t"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Workload and Triple tag the originating run; campaign grids stamp
	// them (via Tagged) so concurrent cells sharing one file stay
	// attributable.
	Workload string `json:"workload,omitempty"`
	Triple   string `json:"triple,omitempty"`
	// Job is the SWF job number of the subject job.
	Job int64 `json:"job,omitempty"`
	// Cluster names the affected cluster; empty on single-machine runs.
	Cluster string `json:"cluster,omitempty"`
	// Procs is the job's width (submit), or the drained/restored
	// processor count (capacity).
	Procs int64 `json:"procs,omitempty"`
	// Request is the job's requested (kill-bound) runtime.
	Request int64 `json:"request,omitempty"`
	// Prediction is the current runtime prediction: the submit-time
	// estimate on submit events, the corrected estimate on correct
	// events.
	Prediction int64 `json:"prediction,omitempty"`
	// Router and Eligible describe a routing decision: the policy's name
	// and the candidate clusters it was allowed to choose from (Cluster
	// holds its choice).
	Router   string   `json:"router,omitempty"`
	Eligible []string `json:"eligible,omitempty"`
	// Policy names the deciding policy of a pick event.
	Policy string `json:"policy,omitempty"`
	// Picked is the job the policy chose; 0 means it declined to start
	// anything at this instant.
	Picked int64 `json:"picked,omitempty"`
	// QueueLen, Free and Eventual are the decision context of a pick:
	// waiting jobs, free processors, and eventual capacity (nominal
	// minus pending drains — what shadow reservations plan against).
	QueueLen int   `json:"queue_len,omitempty"`
	Free     int64 `json:"free,omitempty"`
	Eventual int64 `json:"eventual,omitempty"`
	// Nanos is the wall-clock latency of the decision (pick events).
	// Unlike everything else it is nondeterministic; consumers that
	// diff traces must ignore it (the differential tests strip it).
	Nanos int64 `json:"ns,omitempty"`
	// Wait is the job's queueing delay (start events).
	Wait int64 `json:"wait,omitempty"`
	// Runtime, Predicted, PredErr and Bsld describe a finish: realized
	// runtime, the submit-time prediction, Predicted-Runtime, and the
	// job's bounded slowdown.
	Runtime   int64   `json:"runtime,omitempty"`
	Predicted int64   `json:"predicted,omitempty"`
	PredErr   int64   `json:"pred_err,omitempty"`
	Bsld      float64 `json:"bsld,omitempty"`
	// Corrections is the job's prediction-correction count so far.
	Corrections int `json:"corrections,omitempty"`
	// Capacity and (for capacity events) Eventual give the cluster's
	// in-service and eventual processor counts after a change.
	Capacity int64 `json:"capacity,omitempty"`
	// Started marks a cancellation that killed a running job (rather
	// than removing a waiting or unsubmitted one).
	Started bool `json:"started,omitempty"`
}

// Tracer receives flight-recorder events. Implementations must be safe
// for concurrent use when shared across campaign cells, and must not
// retain ev past the call — the engine reuses the backing storage.
type Tracer interface {
	Trace(ev *Event)
}

// Tagged wraps a Tracer, stamping every event with a workload and
// triple label before forwarding. Campaign grids wrap the shared file
// tracer once per cell so interleaved events stay attributable.
type Tagged struct {
	Tracer   Tracer
	Workload string
	Triple   string
}

// Trace implements Tracer.
func (t Tagged) Trace(ev *Event) {
	ev.Workload, ev.Triple = t.Workload, t.Triple
	t.Tracer.Trace(ev)
}

// JSONL writes events as JSON lines through the journal package's
// atomic append writer: one write(2) per event, mutex-serialized, so
// concurrent simulations can share a file. Append errors are sticky —
// the first one is reported by Err and Close rather than interrupting
// the simulation mid-run.
type JSONL struct {
	w *journal.Writer[Event]

	mu  sync.Mutex
	err error
}

// OpenJSONL opens (creating or appending to) a JSONL trace at path.
func OpenJSONL(path string) (*JSONL, error) {
	w, err := journal.OpenWriter[Event](path)
	if err != nil {
		return nil, err
	}
	return &JSONL{w: w}, nil
}

// Trace implements Tracer.
func (l *JSONL) Trace(ev *Event) {
	if err := l.w.Append(*ev); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
	}
}

// Err returns the first append error, if any.
func (l *JSONL) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Path returns the trace file path.
func (l *JSONL) Path() string { return l.w.Path() }

// Close flushes and closes the trace, returning the first append error
// if one occurred.
func (l *JSONL) Close() error {
	cerr := l.w.Close()
	if err := l.Err(); err != nil {
		return err
	}
	return cerr
}

// Collector is an in-memory Tracer for tests: it records every event,
// concurrency-safe.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Trace implements Tracer.
func (c *Collector) Trace(ev *Event) {
	cp := *ev
	if len(ev.Eligible) > 0 {
		// The engine reuses the candidate-set buffer across routes.
		cp.Eligible = append([]string(nil), ev.Eligible...)
	}
	c.mu.Lock()
	c.events = append(c.events, cp)
	c.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// validKinds is the closed vocabulary ValidateEvent accepts.
var validKinds = map[string]bool{
	KindSubmit: true, KindRoute: true, KindPick: true, KindStart: true,
	KindFinish: true, KindCancel: true, KindCapacity: true, KindCorrect: true,
}

// ValidateEvent checks an event against the trace schema: a known kind,
// a nonnegative instant, and the identity fields that kind cannot omit.
// It is the contract cmd/tracestat -check and the CI trace smoke
// enforce on every emitted line.
func ValidateEvent(ev *Event) error {
	if !validKinds[ev.Kind] {
		return fmt.Errorf("obs: unknown event kind %q", ev.Kind)
	}
	if ev.T < 0 {
		return fmt.Errorf("obs: %s event at negative instant %d", ev.Kind, ev.T)
	}
	switch ev.Kind {
	case KindSubmit, KindStart, KindFinish, KindCancel, KindCorrect:
		if ev.Job <= 0 {
			return fmt.Errorf("obs: %s event without a job id", ev.Kind)
		}
	case KindRoute:
		if ev.Job <= 0 {
			return fmt.Errorf("obs: route event without a job id")
		}
		if ev.Router == "" {
			return fmt.Errorf("obs: route event without a router name")
		}
		if ev.Cluster == "" {
			return fmt.Errorf("obs: route event without a destination cluster")
		}
	case KindPick:
		if ev.Policy == "" {
			return fmt.Errorf("obs: pick event without a policy name")
		}
	}
	switch ev.Kind {
	case KindSubmit:
		if ev.Procs <= 0 {
			return fmt.Errorf("obs: submit event for job %d without a width", ev.Job)
		}
	case KindFinish:
		if ev.Runtime < 0 {
			return fmt.Errorf("obs: finish event for job %d with negative runtime %d", ev.Job, ev.Runtime)
		}
		if ev.Bsld < 1 {
			return fmt.Errorf("obs: finish event for job %d with bounded slowdown %g < 1", ev.Job, ev.Bsld)
		}
	}
	return nil
}

// MarshalLine renders one event as a JSONL line — the exact bytes
// JSONL appends and ReadFile decodes, newline included. The live event
// stream (internal/schedd) uses it so daemon output round-trips
// through cmd/tracestat's reader, a property FuzzEventStream pins.
func MarshalLine(ev *Event) ([]byte, error) {
	b, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("obs: marshal %s event: %w", ev.Kind, err)
	}
	return append(b, '\n'), nil
}

// ReadFile streams the trace at path line by line, strictly decoding
// each (unknown JSON fields are an error) and calling fn with the line
// number and event. fn returning an error stops the read. The final
// line may be truncated by an interrupted run; like journal.Load, a
// garbled final line is tolerated silently.
func ReadFile(path string, fn func(line int, ev Event) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if derr := dec.Decode(&ev); derr != nil {
			if !sc.Scan() {
				// Interrupted final append, same tolerance as journal.Load.
				return sc.Err()
			}
			return fmt.Errorf("obs: %s line %d: %w", path, lineNo, derr)
		}
		if err := fn(lineNo, ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: read %s: %w", path, err)
	}
	return nil
}

// bsldTau is the bounded-slowdown runtime floor, duplicated from
// metrics.Tau because metrics sits above sim in the import graph; a
// test in internal/metrics pins the two formulas equal.
const bsldTau = 10

// Bsld is the bounded slowdown of a realized (wait, runtime) pair —
// identical to metrics.Bsld, re-stated here so the engine can stamp
// finish events without an import cycle.
func Bsld(wait, runtime int64) float64 {
	den := runtime
	if den < bsldTau {
		den = bsldTau
	}
	v := float64(wait+runtime) / float64(den)
	if v < 1 {
		return 1
	}
	return v
}
