package obs

import "repro/internal/stats"

// Stage identifies one instrumented section of the engine's event loop.
type Stage uint8

const (
	// StagePop is one event-queue pop (the loop's heartbeat).
	StagePop Stage = iota
	// StagePick is one policy Pick call (the scheduler hot path).
	StagePick
	// StageProfileUpdate is one predictor observation at job finish
	// (the learning hot path).
	StageProfileUpdate

	numStages
)

// String names the stage as it appears in reports and JSON.
func (s Stage) String() string {
	switch s {
	case StagePop:
		return "eventq-pop"
	case StagePick:
		return "pick"
	case StageProfileUpdate:
		return "profile-update"
	}
	return "unknown"
}

// StageProfile accumulates per-stage latency samples into bounded
// quantile sketches (stats.Sketch), so a million-event run profiles in
// a few kilobytes per stage. It is single-goroutine like the engine
// that feeds it; each run gets its own profile.
type StageProfile struct {
	sketches [numStages]*stats.Sketch
	counts   [numStages]int64
	totals   [numStages]int64
	maxs     [numStages]int64
}

// NewStageProfile returns an empty profile.
func NewStageProfile() *StageProfile { return &StageProfile{} }

// Observe records one latency sample, in nanoseconds, for a stage.
func (p *StageProfile) Observe(s Stage, nanos int64) {
	if s >= numStages {
		return
	}
	if p.sketches[s] == nil {
		p.sketches[s] = stats.NewSketch()
	}
	p.sketches[s].Add(float64(nanos))
	p.counts[s]++
	p.totals[s] += nanos
	if nanos > p.maxs[s] {
		p.maxs[s] = nanos
	}
}

// StagePerf is the bounded summary of one stage's latency distribution,
// the form carried on sim.Perf and through result journals.
type StagePerf struct {
	// Stage names the instrumented section (Stage.String).
	Stage string `json:"stage"`
	// Count is the number of samples.
	Count int64 `json:"count"`
	// TotalNanos is the summed latency, for mean and share-of-run math.
	TotalNanos int64 `json:"total_ns"`
	// P50/P90/P99 are approximate latency quantiles in nanoseconds
	// (sketch-accurate, see stats.Sketch).
	P50 float64 `json:"p50_ns"`
	P90 float64 `json:"p90_ns"`
	P99 float64 `json:"p99_ns"`
	// MaxNanos is the exact worst sample.
	MaxNanos int64 `json:"max_ns"`
}

// Summaries renders every stage with at least one sample, in stage
// order.
func (p *StageProfile) Summaries() []StagePerf {
	var out []StagePerf
	for s := Stage(0); s < numStages; s++ {
		if p.counts[s] == 0 {
			continue
		}
		sk := p.sketches[s]
		out = append(out, StagePerf{
			Stage:      s.String(),
			Count:      p.counts[s],
			TotalNanos: p.totals[s],
			P50:        sk.Quantile(0.50),
			P90:        sk.Quantile(0.90),
			P99:        sk.Quantile(0.99),
			MaxNanos:   p.maxs[s],
		})
	}
	return out
}

// MergeStages folds per-run stage summaries (e.g. one per campaign
// cell) into one row per stage: counts and totals sum, the max is the
// max, and the quantiles are count-weighted averages of the per-run
// quantiles — an aggregate view, not a true pooled quantile, which is
// the honest best available once the raw samples are gone. Rows come
// back in first-seen order.
func MergeStages(lists ...[]StagePerf) []StagePerf {
	type acc struct {
		StagePerf
		wp50, wp90, wp99 float64
	}
	var order []string
	byStage := make(map[string]*acc)
	for _, list := range lists {
		for _, sp := range list {
			a := byStage[sp.Stage]
			if a == nil {
				a = &acc{StagePerf: StagePerf{Stage: sp.Stage}}
				byStage[sp.Stage] = a
				order = append(order, sp.Stage)
			}
			a.Count += sp.Count
			a.TotalNanos += sp.TotalNanos
			if sp.MaxNanos > a.MaxNanos {
				a.MaxNanos = sp.MaxNanos
			}
			w := float64(sp.Count)
			a.wp50 += w * sp.P50
			a.wp90 += w * sp.P90
			a.wp99 += w * sp.P99
		}
	}
	out := make([]StagePerf, 0, len(order))
	for _, name := range order {
		a := byStage[name]
		if a.Count > 0 {
			a.P50 = a.wp50 / float64(a.Count)
			a.P90 = a.wp90 / float64(a.Count)
			a.P99 = a.wp99 / float64(a.Count)
		}
		out = append(out, a.StagePerf)
	}
	return out
}
