package obs

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestValidateEvent(t *testing.T) {
	valid := []Event{
		{T: 0, Kind: KindSubmit, Job: 1, Procs: 4},
		{T: 5, Kind: KindRoute, Job: 1, Router: "round-robin", Cluster: "a", Eligible: []string{"a", "b"}},
		{T: 5, Kind: KindPick, Policy: "easy-sjbf", Picked: 3, QueueLen: 2, Nanos: 120},
		{T: 5, Kind: KindPick, Policy: "easy-sjbf"}, // decline
		{T: 6, Kind: KindStart, Job: 1, Wait: 1},
		{T: 9, Kind: KindFinish, Job: 1, Runtime: 3, Predicted: 4, PredErr: 1, Bsld: 1},
		{T: 9, Kind: KindFinish, Job: 2, Runtime: 0, Bsld: 2.5}, // killed at start instant
		{T: 4, Kind: KindCancel, Job: 7, Started: true},
		{T: 4, Kind: KindCapacity, Cluster: "a", Capacity: 96, Procs: 32},
		{T: 8, Kind: KindCorrect, Job: 1, Prediction: 100, Corrections: 2},
	}
	for i, ev := range valid {
		if err := ValidateEvent(&ev); err != nil {
			t.Errorf("valid[%d] (%s) rejected: %v", i, ev.Kind, err)
		}
	}

	invalid := []struct {
		ev   Event
		want string
	}{
		{Event{T: 0, Kind: "warp"}, "unknown event kind"},
		{Event{T: -1, Kind: KindSubmit, Job: 1, Procs: 1}, "negative instant"},
		{Event{T: 0, Kind: KindSubmit, Procs: 1}, "without a job id"},
		{Event{T: 0, Kind: KindSubmit, Job: 1}, "without a width"},
		{Event{T: 0, Kind: KindRoute, Job: 1, Cluster: "a"}, "without a router"},
		{Event{T: 0, Kind: KindRoute, Job: 1, Router: "rr"}, "without a destination"},
		{Event{T: 0, Kind: KindPick}, "without a policy"},
		{Event{T: 0, Kind: KindFinish, Job: 1, Runtime: -2, Bsld: 1}, "negative runtime"},
		{Event{T: 0, Kind: KindFinish, Job: 1, Runtime: 2, Bsld: 0.5}, "bounded slowdown"},
		{Event{T: 0, Kind: KindCancel}, "without a job id"},
	}
	for i, tc := range invalid {
		err := ValidateEvent(&tc.ev)
		if err == nil {
			t.Errorf("invalid[%d] (%s) accepted", i, tc.ev.Kind)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("invalid[%d]: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestTaggedStampsContext(t *testing.T) {
	var col Collector
	tr := Tagged{Tracer: &col, Workload: "KTH-SP2", Triple: "easy++"}
	tr.Trace(&Event{T: 1, Kind: KindSubmit, Job: 1, Procs: 2})
	evs := col.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Workload != "KTH-SP2" || evs[0].Triple != "easy++" {
		t.Fatalf("context not stamped: %+v", evs[0])
	}
}

// TestJSONLRoundTrip writes events concurrently through the JSONL
// tracer and reads them back strictly: every line must decode, validate
// and account for every write — the atomic-append property campaign
// grids rely on when concurrent cells share one trace file.
func TestJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	l, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tagged := Tagged{Tracer: l, Workload: "w", Triple: "t"}
			for i := 0; i < perWorker; i++ {
				tagged.Trace(&Event{
					T: int64(i), Kind: KindSubmit,
					Job: int64(w*perWorker + i + 1), Procs: 1,
				})
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	seen := make(map[int64]bool)
	err = ReadFile(path, func(line int, ev Event) error {
		if verr := ValidateEvent(&ev); verr != nil {
			t.Fatalf("line %d invalid: %v", line, verr)
		}
		if ev.Workload != "w" || ev.Triple != "t" {
			t.Fatalf("line %d lost its tag: %+v", line, ev)
		}
		if seen[ev.Job] {
			t.Fatalf("job %d traced twice", ev.Job)
		}
		seen[ev.Job] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("read back %d events, want %d", len(seen), workers*perWorker)
	}
}

func TestReadFileRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	lines := `{"t":1,"kind":"submit","job":1,"procs":2}
{"t":2,"kind":"submit","job":2,"procs":2,"bogus":true}
{"t":3,"kind":"submit","job":3,"procs":2}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	err := ReadFile(path, func(int, Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("unknown field not rejected with position: %v", err)
	}
}

func TestReadFileToleratesTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	lines := `{"t":1,"kind":"submit","job":1,"procs":2}
{"t":2,"kind":"sub`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := ReadFile(path, func(int, Event) error { n++; return nil }); err != nil {
		t.Fatalf("truncated final line not tolerated: %v", err)
	}
	if n != 1 {
		t.Fatalf("got %d events, want 1", n)
	}
}

func TestStageProfileSummaries(t *testing.T) {
	p := NewStageProfile()
	for i := 1; i <= 1000; i++ {
		p.Observe(StagePick, int64(i))
	}
	p.Observe(StagePop, 5)

	sum := p.Summaries()
	if len(sum) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(sum), sum)
	}
	// Stage order, not observation order.
	if sum[0].Stage != StagePop.String() || sum[1].Stage != StagePick.String() {
		t.Fatalf("stage order wrong: %+v", sum)
	}
	pick := sum[1]
	if pick.Count != 1000 || pick.TotalNanos != 500500 || pick.MaxNanos != 1000 {
		t.Fatalf("exact counters wrong: %+v", pick)
	}
	if pick.P50 < 400 || pick.P50 > 600 {
		t.Fatalf("p50 %v implausible for uniform 1..1000", pick.P50)
	}
	if pick.P99 < pick.P50 || pick.P99 > 1000 {
		t.Fatalf("p99 %v out of order", pick.P99)
	}
}

func TestMergeStages(t *testing.T) {
	a := []StagePerf{{Stage: "pick", Count: 100, TotalNanos: 1000, P50: 10, P90: 20, P99: 30, MaxNanos: 50}}
	b := []StagePerf{
		{Stage: "pick", Count: 300, TotalNanos: 6000, P50: 20, P90: 40, P99: 60, MaxNanos: 90},
		{Stage: "eventq-pop", Count: 10, TotalNanos: 100, P50: 10, P90: 10, P99: 10, MaxNanos: 10},
	}
	m := MergeStages(a, b)
	if len(m) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(m), m)
	}
	pick := m[0]
	if pick.Stage != "pick" || pick.Count != 400 || pick.TotalNanos != 7000 || pick.MaxNanos != 90 {
		t.Fatalf("pick merge wrong: %+v", pick)
	}
	// Count-weighted p50: (100*10 + 300*20) / 400 = 17.5.
	if pick.P50 != 17.5 {
		t.Fatalf("weighted p50 = %v, want 17.5", pick.P50)
	}
	if m[1].Stage != "eventq-pop" || m[1].Count != 10 {
		t.Fatalf("pop row wrong: %+v", m[1])
	}
}

func TestBsldFloorsAtOne(t *testing.T) {
	if got := Bsld(0, 10000); got != 1 {
		t.Fatalf("Bsld(0,10000) = %v, want 1", got)
	}
	if got := Bsld(90, 10); got != 10 {
		t.Fatalf("Bsld(90,10) = %v, want 10", got)
	}
	// Short jobs are bounded by tau, not their runtime.
	if got := Bsld(15, 5); got != 2 {
		t.Fatalf("Bsld(15,5) = %v, want 2", got)
	}
}
