package swf

import (
	"fmt"
	"sort"
)

// ValidationIssue describes one problem found in a trace.
type ValidationIssue struct {
	JobNumber int64
	Message   string
}

func (v ValidationIssue) String() string {
	return fmt.Sprintf("job %d: %s", v.JobNumber, v.Message)
}

// Validate checks the structural invariants a scheduling simulation
// relies on and returns every violation found. maxProcs <= 0 means "use
// the header's machine size"; if that is also absent, per-job capacity
// checks are skipped.
func Validate(tr *Trace, maxProcs int64) []ValidationIssue {
	if maxProcs <= 0 {
		maxProcs = tr.Header.Procs()
	}
	var issues []ValidationIssue
	add := func(j *Job, format string, args ...interface{}) {
		issues = append(issues, ValidationIssue{JobNumber: j.JobNumber, Message: fmt.Sprintf(format, args...)})
	}
	prevSubmit := int64(-1)
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.SubmitTime < 0 {
			add(j, "negative submit time %d", j.SubmitTime)
		}
		if j.SubmitTime < prevSubmit {
			add(j, "submit time %d before previous job's %d (trace not sorted)", j.SubmitTime, prevSubmit)
		}
		prevSubmit = j.SubmitTime
		if j.RunTime < 0 {
			add(j, "negative run time %d", j.RunTime)
		}
		if j.Procs() <= 0 {
			add(j, "no processor requirement (requested %d, allocated %d)", j.RequestedProcs, j.AllocatedProcs)
		}
		if maxProcs > 0 && j.Procs() > maxProcs {
			add(j, "requires %d processors but machine has %d", j.Procs(), maxProcs)
		}
		if j.RequestedTime > 0 && j.RunTime > j.RequestedTime {
			add(j, "run time %d exceeds requested time %d", j.RunTime, j.RequestedTime)
		}
	}
	return issues
}

// CleanJob applies Clean's per-job rules to a single record: it reports
// whether a simulation can use the job and returns the (possibly
// repaired) record. It is the per-job core of Clean, shared with the
// streaming job sources so the two paths can never drift. maxProcs <= 0
// skips the capacity check.
func CleanJob(j *Job, maxProcs int64) (keep bool, out Job) {
	out = *j
	if j.RunTime <= 0 || j.Procs() <= 0 || j.SubmitTime < 0 {
		return false, out
	}
	if maxProcs > 0 && j.Procs() > maxProcs {
		return false, out
	}
	if out.RequestedTime > 0 && out.RunTime > out.RequestedTime {
		out.RunTime = out.RequestedTime
	}
	if out.RequestedTime <= 0 {
		out.RequestedTime = out.RunTime
	}
	return true, out
}

// Clean returns a copy of the trace with jobs a simulation cannot use
// removed or repaired: jobs with non-positive runtime or processor count
// are dropped, runtimes are capped at the requested time (real systems
// kill jobs at the estimate), jobs wider than the machine are dropped,
// and jobs are sorted by submit time with stable job-number tie-breaking.
func Clean(tr *Trace, maxProcs int64) *Trace {
	if maxProcs <= 0 {
		maxProcs = tr.Header.Procs()
	}
	out := &Trace{Header: tr.Header}
	for i := range tr.Jobs {
		if keep, j := CleanJob(&tr.Jobs[i], maxProcs); keep {
			out.Jobs = append(out.Jobs, j)
		}
	}
	sort.SliceStable(out.Jobs, func(a, b int) bool {
		if out.Jobs[a].SubmitTime != out.Jobs[b].SubmitTime {
			return out.Jobs[a].SubmitTime < out.Jobs[b].SubmitTime
		}
		return out.Jobs[a].JobNumber < out.Jobs[b].JobNumber
	})
	return out
}
