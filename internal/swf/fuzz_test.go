package swf

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// fuzzSeeds is the shared corpus: well-formed traces, the edge cases the
// unit tests pin, and structurally hostile inputs.
var fuzzSeeds = []string{
	scanFixture,
	"",
	";\n",
	"; MaxProcs: 64\n",
	"; MaxProcs: not-a-number\n",
	";UnixStartTime:123\n1 0 -1 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1\n",
	"1 0 -1 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1",
	"1 0 -1 10 1 3.5 -1 1 20 -1 1 1 1 1 1 1 -1 -1\n", // float field 6
	"1 0 -1 10 1\n", // short row
	"1 0 -1 10 1 -1 -1 1 20 -1 1 1 1 1 1 1 -1 -1 99 99\n", // overlong row
	"-1 -2 -3 -4 -5 -6 -7 -8 -9 -10 -11 -12 -13 -14 -15 -16 -17 -18\n",
	"9223372036854775807 0 0 1 1 0 0 1 1 0 1 1 1 1 1 1 0 0\n",
	"not a job line\n",
	"\n\n  \n\t\n",
}

// drainScanner collects every record until EOF or error, mirroring what
// Parse does internally.
func drainScanner(r io.Reader) ([]Job, Header, error) {
	sc := NewScanner(r)
	var jobs []Job
	for {
		j, err := sc.Next()
		if err == io.EOF {
			return jobs, *sc.Header(), nil
		}
		if err != nil {
			return jobs, *sc.Header(), err
		}
		jobs = append(jobs, j)
	}
}

// FuzzParse is the differential fuzz target: Parse and Scanner share the
// line parsers and must accept exactly the same inputs with exactly the
// same results, and every accepted trace must round-trip through Write.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		tr, perr := Parse(strings.NewReader(data))
		jobs, header, serr := drainScanner(strings.NewReader(data))

		if (perr != nil) != (serr != nil) {
			t.Fatalf("Parse err %v but Scanner err %v", perr, serr)
		}
		if perr != nil {
			if perr.Error() != serr.Error() {
				t.Fatalf("error texts differ:\n Parse:   %v\n Scanner: %v", perr, serr)
			}
			return
		}
		if len(tr.Jobs) != len(jobs) || (len(jobs) > 0 && !reflect.DeepEqual(tr.Jobs, jobs)) {
			t.Fatalf("job streams differ: Parse %d jobs, Scanner %d", len(tr.Jobs), len(jobs))
		}
		if !reflect.DeepEqual(tr.Header, header) {
			t.Fatalf("headers differ:\n Parse:   %+v\n Scanner: %+v", tr.Header, header)
		}

		// Round trip: what Write emits, Parse accepts, bit-identically.
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write rejected a parsed trace: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-Parse of Write output failed: %v", err)
		}
		if len(back.Jobs) != len(tr.Jobs) || (len(tr.Jobs) > 0 && !reflect.DeepEqual(back.Jobs, tr.Jobs)) {
			t.Fatalf("round trip changed the jobs")
		}
	})
}

// FuzzScanner hammers the incremental reader alone: no panics on any
// byte soup, errors are sticky, and the reported line number never runs
// past the input.
func FuzzScanner(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		sc := NewScanner(strings.NewReader(data))
		lines := strings.Count(data, "\n") + 1
		var firstErr error
		for i := 0; i < len(data)+2; i++ {
			_, err := sc.Next()
			if err == nil {
				continue
			}
			if firstErr == nil {
				firstErr = err
			} else if err != firstErr {
				t.Fatalf("error not sticky: %v then %v", firstErr, err)
			}
			if sc.Line() > lines {
				t.Fatalf("line %d beyond input's %d", sc.Line(), lines)
			}
			if i > 0 && err == io.EOF {
				break
			}
		}
	})
}
