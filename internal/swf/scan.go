package swf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Scanner is an iterator-style SWF reader: it yields one job record at a
// time without materializing the trace, so a multi-year archive log (or
// a generated million-job file) can be replayed in bounded memory. It
// shares the line parsers with Parse, so the two accept exactly the same
// inputs; a differential fuzz test (fuzz_test.go) holds them to that.
//
// Header directives are accumulated as they are encountered. SWF files
// place the header before the first job, so Header() is complete by the
// time the first Next returns — but mid-file comment directives (which
// some archive logs contain) are folded in as they are reached.
type Scanner struct {
	sc     *bufio.Scanner
	header Header
	lineNo int
	err    error
}

// NewScanner returns a streaming reader over r. The reader tolerates the
// same line lengths as Parse (up to 4 MiB).
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &Scanner{sc: sc}
}

// Header returns the directives seen so far. It is stable (and normally
// complete) once the first job has been returned.
func (s *Scanner) Header() *Header { return &s.header }

// Line returns the line number of the most recently parsed line.
func (s *Scanner) Line() int { return s.lineNo }

// Next returns the next job record. It returns io.EOF after the last
// job, and a positional parse error (matching Parse's) on malformed
// data; once an error is returned every further call repeats it.
func (s *Scanner) Next() (Job, error) {
	if s.err != nil {
		return Job{}, s.err
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeaderLine(&s.header, line)
			continue
		}
		job, err := parseJobLine(line)
		if err != nil {
			s.err = fmt.Errorf("swf: line %d: %w", s.lineNo, err)
			return Job{}, s.err
		}
		return job, nil
	}
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("swf: read: %w", err)
		return Job{}, s.err
	}
	s.err = io.EOF
	return Job{}, io.EOF
}

// Writer serializes an SWF trace incrementally: a header followed by one
// job per WriteJob call, so a trace can be generated straight to disk
// without ever holding it in memory. Write (swf.go's whole-trace form)
// is built on it.
type Writer struct {
	bw        *bufio.Writer
	err       error
	wroteJobs bool
}

// NewWriter returns a buffered streaming writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// WriteHeader emits the header directives. With explicit Fields they are
// written verbatim; otherwise the structural directives (MaxProcs,
// MaxNodes, MaxJobs, UnixStartTime) that are set are emitted so the
// output is self-describing. Must be called before the first WriteJob.
func (w *Writer) WriteHeader(h *Header) error {
	if w.err != nil {
		return w.err
	}
	if w.wroteJobs {
		w.err = fmt.Errorf("swf: WriteHeader after WriteJob")
		return w.err
	}
	for _, f := range h.Fields {
		if _, err := fmt.Fprintf(w.bw, "; %s: %s\n", f.Key, f.Value); err != nil {
			w.err = err
			return err
		}
	}
	if len(h.Fields) == 0 {
		directives := []struct {
			key string
			val int64
		}{
			{"MaxProcs", h.MaxProcs},
			{"MaxNodes", h.MaxNodes},
			{"MaxJobs", h.MaxJobs},
			{"UnixStartTime", h.UnixStartTime},
		}
		for _, d := range directives {
			if d.val <= 0 {
				continue
			}
			if _, err := fmt.Fprintf(w.bw, "; %s: %d\n", d.key, d.val); err != nil {
				w.err = err
				return err
			}
		}
	}
	return nil
}

// WriteJob emits one 18-field data line.
func (w *Writer) WriteJob(j *Job) error {
	if w.err != nil {
		return w.err
	}
	w.wroteJobs = true
	_, err := fmt.Fprintf(w.bw, "%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
		j.JobNumber, j.SubmitTime, j.WaitTime, j.RunTime, j.AllocatedProcs,
		j.AvgCPUTime, j.UsedMemory, j.RequestedProcs, j.RequestedTime,
		j.RequestedMemory, j.Status, j.UserID, j.GroupID, j.Executable,
		j.Queue, j.Partition, j.PrecedingJob, j.ThinkTime)
	if err != nil {
		w.err = err
	}
	return err
}

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}
