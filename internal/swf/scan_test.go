package swf

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

const scanFixture = `; Version: 2.2
; MaxProcs: 64
; MaxJobs: 3
1 0 -1 100 4 -1 -1 4 200 -1 1 7 1 3 1 1 -1 -1
; a mid-file comment directive
; UnixStartTime: 123
2 5 -1 50 1 -1 -1 1 60 -1 1 8 1 3 1 1 -1 -1
3 9 -1 10 2 -1 -1 2 20 -1 0 7 1 4 1 1 -1 -1
`

// TestScannerMatchesParse holds the streaming reader to Parse's output on
// a fixture with header directives, mid-file comments and blank lines.
func TestScannerMatchesParse(t *testing.T) {
	want, err := Parse(strings.NewReader(scanFixture))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(scanFixture))
	var jobs []Job
	for {
		j, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if !reflect.DeepEqual(jobs, want.Jobs) {
		t.Fatalf("scanner jobs differ from Parse:\n%v\nvs\n%v", jobs, want.Jobs)
	}
	if !reflect.DeepEqual(*sc.Header(), want.Header) {
		t.Fatalf("scanner header %+v != Parse header %+v", *sc.Header(), want.Header)
	}
	if sc.Header().MaxProcs != 64 || sc.Header().UnixStartTime != 123 {
		t.Fatalf("header directives not folded in: %+v", sc.Header())
	}
}

// TestScannerHeaderBeforeFirstJob checks the usual contract: a top-placed
// header is complete by the time the first job is returned.
func TestScannerHeaderBeforeFirstJob(t *testing.T) {
	sc := NewScanner(strings.NewReader(scanFixture))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	if sc.Header().MaxProcs != 64 {
		t.Fatalf("MaxProcs = %d before first job, want 64", sc.Header().MaxProcs)
	}
}

// TestScannerErrorSticks verifies a parse error is positional, matches
// Parse's, and repeats on further calls.
func TestScannerErrorSticks(t *testing.T) {
	bad := "1 0 -1 100 4 -1 -1 4 200 -1 1 7 1 3 1 1 -1 -1\nnot a job line\n"
	_, perr := Parse(strings.NewReader(bad))
	if perr == nil {
		t.Fatal("Parse accepted malformed input")
	}
	sc := NewScanner(strings.NewReader(bad))
	if _, err := sc.Next(); err != nil {
		t.Fatalf("first record should parse: %v", err)
	}
	_, err1 := sc.Next()
	if err1 == nil || err1.Error() != perr.Error() {
		t.Fatalf("scanner error %v, want Parse's %v", err1, perr)
	}
	if _, err2 := sc.Next(); err2 != err1 {
		t.Fatalf("error did not stick: %v then %v", err1, err2)
	}
}

// TestWriterStreamsRoundTrip writes a trace job-by-job and re-parses it.
func TestWriterStreamsRoundTrip(t *testing.T) {
	src, err := Parse(strings.NewReader(scanFixture))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(&src.Header); err != nil {
		t.Fatal(err)
	}
	for i := range src.Jobs {
		if err := w.WriteJob(&src.Jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// The streaming writer must produce exactly what the whole-trace
	// Write produces.
	var whole bytes.Buffer
	if err := Write(&whole, src); err != nil {
		t.Fatal(err)
	}
	if buf.String() != whole.String() {
		t.Fatalf("streaming writer output differs from Write:\n%q\nvs\n%q", buf.String(), whole.String())
	}

	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Jobs, src.Jobs) {
		t.Fatalf("round trip changed jobs:\n%v\nvs\n%v", back.Jobs, src.Jobs)
	}
}

// TestWriterHeaderAfterJobs rejects late headers.
func TestWriterHeaderAfterJobs(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteJob(&Job{JobNumber: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(&Header{MaxProcs: 4}); err == nil {
		t.Fatal("WriteHeader after WriteJob should fail")
	}
}

// TestWriterStructuralHeader checks the directive fallback when no raw
// fields are present.
func TestWriterStructuralHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(&Header{MaxProcs: 32, MaxJobs: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "; MaxProcs: 32") || !strings.Contains(out, "; MaxJobs: 7") {
		t.Fatalf("structural directives missing:\n%s", out)
	}
}
