package swf

import "testing"

// statusTrace mixes the four status populations: completed, failed
// after running, cancelled after running, cancelled before running.
func statusTrace() *Trace {
	return &Trace{
		Header: Header{MaxProcs: 64},
		Jobs: []Job{
			{JobNumber: 1, SubmitTime: 0, RunTime: 100, RequestedProcs: 4, RequestedTime: 200, Status: StatusCompleted},
			{JobNumber: 2, SubmitTime: 10, RunTime: 50, RequestedProcs: 2, RequestedTime: 300, Status: StatusFailed},
			{JobNumber: 3, SubmitTime: 20, RunTime: 80, RequestedProcs: 8, RequestedTime: 400, Status: StatusCancelled},
			{JobNumber: 4, SubmitTime: 30, RunTime: -1, WaitTime: 60, RequestedProcs: 4, RequestedTime: 500, Status: StatusCancelled},
			{JobNumber: 5, SubmitTime: 40, RunTime: 0, WaitTime: -1, RequestedProcs: 2, RequestedTime: 0, Status: StatusCancelled},
			{JobNumber: 6, SubmitTime: 50, RunTime: 0, RequestedProcs: 2, RequestedTime: 100, Status: StatusFailed},
		},
	}
}

func ids(tr *Trace) []int64 {
	var out []int64
	for i := range tr.Jobs {
		out = append(out, tr.Jobs[i].JobNumber)
	}
	return out
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestApplyStatusKeep(t *testing.T) {
	in := statusTrace()
	out := ApplyStatus(in, StatusKeep)
	if !eq(ids(out), []int64{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("keep dropped jobs: %v", ids(out))
	}
	// Keep must copy, not alias.
	out.Jobs[0].RunTime = 1
	if in.Jobs[0].RunTime != 100 {
		t.Fatal("ApplyStatus(keep) aliased the input jobs")
	}
}

func TestApplyStatusSkip(t *testing.T) {
	out := ApplyStatus(statusTrace(), StatusSkip)
	if !eq(ids(out), []int64{1}) {
		t.Fatalf("skip kept %v, want only the completed job", ids(out))
	}
}

func TestApplyStatusTruncate(t *testing.T) {
	out := ApplyStatus(statusTrace(), StatusTruncate)
	// Jobs 2 and 3 occupied the machine (positive runtime); 4, 5, 6
	// never ran and are dropped.
	if !eq(ids(out), []int64{1, 2, 3}) {
		t.Fatalf("truncate kept %v, want [1 2 3]", ids(out))
	}
	if out.Jobs[2].RunTime != 80 {
		t.Fatal("truncate must keep the logged (truncated) runtime")
	}
}

func TestApplyStatusReplay(t *testing.T) {
	out := ApplyStatus(statusTrace(), StatusReplay)
	// Job 4 (cancelled, never ran) is repaired with its requested time;
	// job 5 has no usable request and is dropped; failed jobs replay
	// as-is (6 has zero runtime and will be cleaned later regardless).
	if !eq(ids(out), []int64{1, 2, 3, 4, 6}) {
		t.Fatalf("replay kept %v, want [1 2 3 4 6]", ids(out))
	}
	var j4 *Job
	for i := range out.Jobs {
		if out.Jobs[i].JobNumber == 4 {
			j4 = &out.Jobs[i]
		}
	}
	if j4.RunTime != 500 {
		t.Fatalf("replay runtime = %d, want the requested 500", j4.RunTime)
	}
}

func TestParseStatusMode(t *testing.T) {
	for _, m := range []StatusMode{StatusKeep, StatusSkip, StatusTruncate, StatusReplay} {
		got, err := ParseStatusMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip %v failed: %v %v", m, got, err)
		}
	}
	if _, err := ParseStatusMode("bogus"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
