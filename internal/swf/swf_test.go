package swf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sampleSWF = `; Version: 2.2
; Computer: IBM SP2
; MaxJobs: 3
; MaxProcs: 100
; UnixStartTime: 820454400
1 0 10 3600 4 -1 -1 4 7200 -1 1 5 1 3 1 1 -1 -1
2 60 0 120 1 -1 -1 1 600 -1 1 6 1 2 1 1 -1 -1
3 120 -1 86400 100 -1 -1 100 90000 -1 0 5 1 3 1 1 -1 -1
`

func TestParseHeader(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.MaxProcs != 100 {
		t.Errorf("MaxProcs = %d, want 100", tr.Header.MaxProcs)
	}
	if tr.Header.MaxJobs != 3 {
		t.Errorf("MaxJobs = %d, want 3", tr.Header.MaxJobs)
	}
	if tr.Header.UnixStartTime != 820454400 {
		t.Errorf("UnixStartTime = %d", tr.Header.UnixStartTime)
	}
	if len(tr.Header.Fields) != 5 {
		t.Errorf("got %d header fields, want 5", len(tr.Header.Fields))
	}
}

func TestParseJobs(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(tr.Jobs))
	}
	j := tr.Jobs[0]
	if j.JobNumber != 1 || j.SubmitTime != 0 || j.WaitTime != 10 ||
		j.RunTime != 3600 || j.RequestedProcs != 4 || j.RequestedTime != 7200 ||
		j.UserID != 5 || j.Executable != 3 {
		t.Errorf("job 1 parsed incorrectly: %+v", j)
	}
	if tr.Jobs[2].WaitTime != -1 {
		t.Errorf("missing value should parse as -1, got %d", tr.Jobs[2].WaitTime)
	}
}

func TestParseFloatField(t *testing.T) {
	line := "1 0 10 3600 4 123.5 -1 4 7200 -1 1 5 1 3 1 1 -1 -1\n"
	tr, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].AvgCPUTime != 123 {
		t.Errorf("float field truncated to %d, want 123", tr.Jobs[0].AvgCPUTime)
	}
}

func TestParseShortLineFails(t *testing.T) {
	_, err := Parse(strings.NewReader("1 2 3\n"))
	if err == nil {
		t.Fatal("expected error for short line")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestParseGarbageFieldFails(t *testing.T) {
	_, err := Parse(strings.NewReader("1 x 10 3600 4 -1 -1 4 7200 -1 1 5 1 3 1 1 -1 -1\n"))
	if err == nil {
		t.Fatal("expected error for non-numeric field")
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	tr, err := Parse(strings.NewReader("\n\n" + sampleSWF + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(tr.Jobs))
	}
}

func TestRoundTrip(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip lost jobs: %d -> %d", len(tr.Jobs), len(tr2.Jobs))
	}
	for i := range tr.Jobs {
		if tr.Jobs[i] != tr2.Jobs[i] {
			t.Errorf("job %d changed: %+v -> %+v", i, tr.Jobs[i], tr2.Jobs[i])
		}
	}
	if tr2.Header.MaxProcs != tr.Header.MaxProcs {
		t.Errorf("header MaxProcs changed")
	}
}

func TestWriteSynthesizedHeader(t *testing.T) {
	tr := &Trace{Header: Header{MaxProcs: 64, MaxJobs: 1}}
	tr.Jobs = append(tr.Jobs, Job{JobNumber: 1, RunTime: 10, RequestedProcs: 1, RequestedTime: 20, UserID: 1})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "; MaxProcs: 64") {
		t.Errorf("synthesized header missing MaxProcs: %q", out)
	}
}

func TestProcsFallback(t *testing.T) {
	j := Job{RequestedProcs: -1, AllocatedProcs: 8}
	if j.Procs() != 8 {
		t.Errorf("Procs fallback = %d, want 8", j.Procs())
	}
	j = Job{RequestedProcs: 16, AllocatedProcs: 8}
	if j.Procs() != 16 {
		t.Errorf("Procs = %d, want requested 16", j.Procs())
	}
}

func TestRequestFallback(t *testing.T) {
	j := Job{RequestedTime: -1, RunTime: 100}
	if j.Request() != 100 {
		t.Errorf("Request fallback = %d, want 100", j.Request())
	}
}

func TestValidateDetectsProblems(t *testing.T) {
	tr := &Trace{Header: Header{MaxProcs: 10}}
	tr.Jobs = []Job{
		{JobNumber: 1, SubmitTime: 100, RunTime: 50, RequestedProcs: 4, RequestedTime: 60},
		{JobNumber: 2, SubmitTime: 50, RunTime: -5, RequestedProcs: 20, RequestedTime: 10},
		{JobNumber: 3, SubmitTime: 60, RunTime: 100, RequestedProcs: 2, RequestedTime: 50},
	}
	issues := Validate(tr, 0)
	if len(issues) < 4 {
		t.Fatalf("expected >=4 issues (unsorted, negative runtime, too wide, runtime>request), got %d: %v", len(issues), issues)
	}
}

func TestValidateCleanTrace(t *testing.T) {
	tr := &Trace{Header: Header{MaxProcs: 10}}
	tr.Jobs = []Job{
		{JobNumber: 1, SubmitTime: 0, RunTime: 50, RequestedProcs: 4, RequestedTime: 60},
		{JobNumber: 2, SubmitTime: 50, RunTime: 5, RequestedProcs: 10, RequestedTime: 10},
	}
	if issues := Validate(tr, 0); len(issues) != 0 {
		t.Fatalf("clean trace reported issues: %v", issues)
	}
}

func TestClean(t *testing.T) {
	tr := &Trace{Header: Header{MaxProcs: 10}}
	tr.Jobs = []Job{
		{JobNumber: 3, SubmitTime: 100, RunTime: 120, RequestedProcs: 4, RequestedTime: 60},
		{JobNumber: 1, SubmitTime: 200, RunTime: 0, RequestedProcs: 4, RequestedTime: 60},
		{JobNumber: 2, SubmitTime: 50, RunTime: 10, RequestedProcs: 99, RequestedTime: 20},
		{JobNumber: 4, SubmitTime: 10, RunTime: 30, RequestedProcs: 2, RequestedTime: -1},
	}
	out := Clean(tr, 0)
	if len(out.Jobs) != 2 {
		t.Fatalf("Clean kept %d jobs, want 2", len(out.Jobs))
	}
	if out.Jobs[0].JobNumber != 4 {
		t.Errorf("Clean did not sort by submit time: first job %d", out.Jobs[0].JobNumber)
	}
	if out.Jobs[0].RequestedTime != 30 {
		t.Errorf("Clean should backfill missing request with runtime, got %d", out.Jobs[0].RequestedTime)
	}
	if out.Jobs[1].RunTime != 60 {
		t.Errorf("Clean should cap runtime at request, got %d", out.Jobs[1].RunTime)
	}
	if issues := Validate(out, 0); len(issues) != 0 {
		t.Errorf("Clean output still invalid: %v", issues)
	}
}

func TestQuickCleanProducesValidTraces(t *testing.T) {
	f := func(submits []int64, runs []int64, procs []int64) bool {
		n := len(submits)
		if len(runs) < n {
			n = len(runs)
		}
		if len(procs) < n {
			n = len(procs)
		}
		tr := &Trace{Header: Header{MaxProcs: 128}}
		for i := 0; i < n; i++ {
			tr.Jobs = append(tr.Jobs, Job{
				JobNumber:      int64(i + 1),
				SubmitTime:     submits[i] % 1000000,
				RunTime:        runs[i] % 100000,
				RequestedProcs: procs[i] % 256,
				RequestedTime:  runs[i]%100000 + 10,
			})
		}
		return len(Validate(Clean(tr, 0), 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
