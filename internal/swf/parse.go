package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads an SWF trace from r. Malformed data lines produce an error
// naming the line number; unknown header directives are preserved
// verbatim in Header.Fields.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	tr := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			parseHeaderLine(&tr.Header, line)
			continue
		}
		job, err := parseJobLine(line)
		if err != nil {
			return nil, fmt.Errorf("swf: line %d: %w", lineNo, err)
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	return tr, nil
}

func parseHeaderLine(h *Header, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	idx := strings.Index(body, ":")
	if idx < 0 {
		return
	}
	key := strings.TrimSpace(body[:idx])
	value := strings.TrimSpace(body[idx+1:])
	if key == "" {
		return
	}
	h.Fields = append(h.Fields, HeaderField{Key: key, Value: value})
	n, err := strconv.ParseInt(strings.Fields(value + " 0")[0], 10, 64)
	if err != nil {
		return
	}
	switch key {
	case "MaxNodes":
		h.MaxNodes = n
	case "MaxProcs":
		h.MaxProcs = n
	case "MaxJobs":
		h.MaxJobs = n
	case "UnixStartTime":
		h.UnixStartTime = n
	}
}

func parseJobLine(line string) (Job, error) {
	fields := strings.Fields(line)
	if len(fields) < 18 {
		return Job{}, fmt.Errorf("expected 18 fields, got %d", len(fields))
	}
	var vals [18]int64
	for i := 0; i < 18; i++ {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			// Some archive logs use floats in field 6 (avg CPU time).
			f, ferr := strconv.ParseFloat(fields[i], 64)
			if ferr != nil {
				return Job{}, fmt.Errorf("field %d %q: %v", i+1, fields[i], err)
			}
			v = int64(f)
		}
		vals[i] = v
	}
	return Job{
		JobNumber:       vals[0],
		SubmitTime:      vals[1],
		WaitTime:        vals[2],
		RunTime:         vals[3],
		AllocatedProcs:  vals[4],
		AvgCPUTime:      vals[5],
		UsedMemory:      vals[6],
		RequestedProcs:  vals[7],
		RequestedTime:   vals[8],
		RequestedMemory: vals[9],
		Status:          vals[10],
		UserID:          vals[11],
		GroupID:         vals[12],
		Executable:      vals[13],
		Queue:           vals[14],
		Partition:       vals[15],
		PrecedingJob:    vals[16],
		ThinkTime:       vals[17],
	}, nil
}

// Write serializes the trace to w in SWF format, emitting header
// directives first and then one line per job.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, f := range tr.Header.Fields {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", f.Key, f.Value); err != nil {
			return err
		}
	}
	if len(tr.Header.Fields) == 0 {
		// Emit the structural directives so the output is self-describing.
		if tr.Header.MaxProcs > 0 {
			fmt.Fprintf(bw, "; MaxProcs: %d\n", tr.Header.MaxProcs)
		}
		if tr.Header.MaxNodes > 0 {
			fmt.Fprintf(bw, "; MaxNodes: %d\n", tr.Header.MaxNodes)
		}
		if tr.Header.MaxJobs > 0 {
			fmt.Fprintf(bw, "; MaxJobs: %d\n", tr.Header.MaxJobs)
		}
		if tr.Header.UnixStartTime > 0 {
			fmt.Fprintf(bw, "; UnixStartTime: %d\n", tr.Header.UnixStartTime)
		}
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
			j.JobNumber, j.SubmitTime, j.WaitTime, j.RunTime, j.AllocatedProcs,
			j.AvgCPUTime, j.UsedMemory, j.RequestedProcs, j.RequestedTime,
			j.RequestedMemory, j.Status, j.UserID, j.GroupID, j.Executable,
			j.Queue, j.Partition, j.PrecedingJob, j.ThinkTime)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
