package swf

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads an SWF trace from r, materializing every record. Malformed
// data lines produce an error naming the line number; unknown header
// directives are preserved verbatim in Header.Fields. For bounded-memory
// iteration over huge logs use Scanner (scan.go), which Parse is built on.
func Parse(r io.Reader) (*Trace, error) {
	sc := NewScanner(r)
	tr := &Trace{}
	for {
		job, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tr.Jobs = append(tr.Jobs, job)
	}
	tr.Header = *sc.Header()
	return tr, nil
}

func parseHeaderLine(h *Header, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	idx := strings.Index(body, ":")
	if idx < 0 {
		return
	}
	key := strings.TrimSpace(body[:idx])
	value := strings.TrimSpace(body[idx+1:])
	if key == "" {
		return
	}
	h.Fields = append(h.Fields, HeaderField{Key: key, Value: value})
	n, err := strconv.ParseInt(strings.Fields(value + " 0")[0], 10, 64)
	if err != nil {
		return
	}
	switch key {
	case "MaxNodes":
		h.MaxNodes = n
	case "MaxProcs":
		h.MaxProcs = n
	case "MaxJobs":
		h.MaxJobs = n
	case "UnixStartTime":
		h.UnixStartTime = n
	}
}

func parseJobLine(line string) (Job, error) {
	fields := strings.Fields(line)
	if len(fields) < 18 {
		return Job{}, fmt.Errorf("expected 18 fields, got %d", len(fields))
	}
	var vals [18]int64
	for i := 0; i < 18; i++ {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			// Some archive logs use floats in field 6 (avg CPU time).
			f, ferr := strconv.ParseFloat(fields[i], 64)
			if ferr != nil {
				return Job{}, fmt.Errorf("field %d %q: %v", i+1, fields[i], err)
			}
			v = int64(f)
		}
		vals[i] = v
	}
	return Job{
		JobNumber:       vals[0],
		SubmitTime:      vals[1],
		WaitTime:        vals[2],
		RunTime:         vals[3],
		AllocatedProcs:  vals[4],
		AvgCPUTime:      vals[5],
		UsedMemory:      vals[6],
		RequestedProcs:  vals[7],
		RequestedTime:   vals[8],
		RequestedMemory: vals[9],
		Status:          vals[10],
		UserID:          vals[11],
		GroupID:         vals[12],
		Executable:      vals[13],
		Queue:           vals[14],
		Partition:       vals[15],
		PrecedingJob:    vals[16],
		ThinkTime:       vals[17],
	}, nil
}

// Write serializes the trace to w in SWF format, emitting header
// directives first and then one line per job. It is the whole-trace form
// of the streaming Writer (scan.go).
func Write(w io.Writer, tr *Trace) error {
	sw := NewWriter(w)
	if err := sw.WriteHeader(&tr.Header); err != nil {
		return err
	}
	for i := range tr.Jobs {
		if err := sw.WriteJob(&tr.Jobs[i]); err != nil {
			return err
		}
	}
	return sw.Flush()
}
