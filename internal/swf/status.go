package swf

import "fmt"

// Completion-status values of SWF field 11.
const (
	// StatusFailed marks a job that failed (possibly re-submitted later).
	StatusFailed int64 = 0
	// StatusCompleted marks a normally completed job.
	StatusCompleted int64 = 1
	// StatusCancelled marks a job cancelled by the user or the system,
	// whether before or after it started running.
	StatusCancelled int64 = 5
)

// StatusMode selects how the completion status of cancelled/failed jobs
// is honored when a real log is loaded for simulation.
type StatusMode int

const (
	// StatusKeep ignores the status field: every structurally usable job
	// is replayed with its logged runtime (the historical behavior).
	StatusKeep StatusMode = iota
	// StatusSkip drops cancelled and failed jobs entirely — the
	// counterfactual workload where the kills never happened.
	StatusSkip
	// StatusTruncate keeps cancelled/failed jobs that actually occupied
	// the machine (their logged runtime is the truncated run) and drops
	// the ones that never ran.
	StatusTruncate
	// StatusReplay keeps every cancelled job: jobs killed before ever
	// running get their requested time as the hypothetical runtime, so
	// a scenario.Script derived from the same log (see
	// scenario.CancellationsFromSWF) can remove them at the instant the
	// real system did.
	StatusReplay
)

// String names the mode (the cmd/simsched flag values).
func (m StatusMode) String() string {
	switch m {
	case StatusKeep:
		return "keep"
	case StatusSkip:
		return "skip"
	case StatusTruncate:
		return "truncate"
	case StatusReplay:
		return "replay"
	}
	return "unknown"
}

// ParseStatusMode parses a cmd-line status-mode name.
func ParseStatusMode(s string) (StatusMode, error) {
	for _, m := range []StatusMode{StatusKeep, StatusSkip, StatusTruncate, StatusReplay} {
		if m.String() == s {
			return m, nil
		}
	}
	return StatusKeep, fmt.Errorf("swf: unknown status mode %q (keep|skip|truncate|replay)", s)
}

// interrupted reports whether the job's status marks it cancelled or
// failed.
func interrupted(j *Job) bool {
	return j.Status == StatusCancelled || j.Status == StatusFailed
}

// ApplyStatusJob applies the completion-status policy to a single
// record: it reports whether the job survives and returns the (possibly
// repaired) record. It is the per-job core of ApplyStatus, shared with
// the streaming job sources so the two paths can never drift.
func ApplyStatusJob(j *Job, mode StatusMode) (keep bool, out Job) {
	out = *j
	switch mode {
	case StatusSkip:
		if interrupted(j) {
			return false, out
		}
	case StatusTruncate:
		if interrupted(j) && j.RunTime <= 0 {
			return false, out
		}
	case StatusReplay:
		if j.Status == StatusCancelled && j.RunTime <= 0 {
			if j.Request() <= 0 {
				return false, out // no usable runtime even hypothetically
			}
			out.RunTime = j.Request()
		}
	}
	return true, out
}

// ApplyStatus returns a copy of the trace with the completion-status
// policy applied; the input is not modified. Apply it before Clean —
// Clean drops zero-runtime jobs, which is exactly the population
// StatusReplay repairs.
func ApplyStatus(tr *Trace, mode StatusMode) *Trace {
	out := &Trace{Header: tr.Header}
	if mode == StatusKeep {
		out.Jobs = append([]Job(nil), tr.Jobs...)
		return out
	}
	for i := range tr.Jobs {
		if keep, j := ApplyStatusJob(&tr.Jobs[i], mode); keep {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}
