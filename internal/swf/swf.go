// Package swf implements the Standard Workload Format (SWF) version 2.2
// used by the Parallel Workloads Archive. Every log the paper evaluates
// (KTH-SP2, CTC-SP2, SDSC-SP2, SDSC-BLUE, Curie, Metacentrum) is
// distributed in this format; the package parses and serializes it so
// that real archive logs can be fed to the simulator unchanged, and so
// that the synthetic generators can emit interoperable traces.
//
// An SWF file is a sequence of lines. Comment/header lines start with
// ';' and may carry "; Key: Value" directives (MaxNodes, MaxProcs, ...).
// Data lines carry 18 whitespace-separated integer fields per job; a
// value of -1 means "unknown / not applicable".
package swf

// Job is one record of an SWF trace: the 18 standard fields.
// Times are in seconds; -1 denotes a missing value.
type Job struct {
	// JobNumber is the 1-based job identifier (field 1).
	JobNumber int64
	// SubmitTime is the submission (release) time in seconds from the
	// start of the log (field 2).
	SubmitTime int64
	// WaitTime is the recorded time spent in the queue (field 3).
	WaitTime int64
	// RunTime is the actual running time pj (field 4).
	RunTime int64
	// AllocatedProcs is the number of processors the job actually used
	// (field 5).
	AllocatedProcs int64
	// AvgCPUTime is the average CPU time used (field 6).
	AvgCPUTime int64
	// UsedMemory is the average used memory in KB per node (field 7).
	UsedMemory int64
	// RequestedProcs is the requested processor count qj (field 8).
	RequestedProcs int64
	// RequestedTime is the user's requested running time p̃j, an upper
	// bound on RunTime (field 9).
	RequestedTime int64
	// RequestedMemory is the requested memory in KB per node (field 10).
	RequestedMemory int64
	// Status is the completion status (field 11): 1 completed, 0 failed,
	// 5 cancelled, -1 unknown.
	Status int64
	// UserID identifies the submitting user (field 12).
	UserID int64
	// GroupID identifies the submitting group (field 13).
	GroupID int64
	// Executable identifies the application (field 14).
	Executable int64
	// Queue identifies the submission queue (field 15).
	Queue int64
	// Partition identifies the machine partition (field 16).
	Partition int64
	// PrecedingJob is the job this one depends on (field 17).
	PrecedingJob int64
	// ThinkTime is the delay after the preceding job (field 18).
	ThinkTime int64
}

// Procs returns the effective processor requirement of the job: the
// requested count if present, otherwise the allocated count. This is the
// qj the schedulers use.
func (j *Job) Procs() int64 {
	if j.RequestedProcs > 0 {
		return j.RequestedProcs
	}
	return j.AllocatedProcs
}

// Request returns the effective requested running time: the user estimate
// if present, otherwise the actual running time (clairvoyant fallback used
// by the archive for logs without estimates).
func (j *Job) Request() int64 {
	if j.RequestedTime > 0 {
		return j.RequestedTime
	}
	return j.RunTime
}

// Header carries the standard SWF header directives that matter to
// scheduling simulations, plus all raw directives for round-tripping.
type Header struct {
	// MaxNodes is the node count declared by the log, or 0 if absent.
	MaxNodes int64
	// MaxProcs is the processor count declared by the log, or 0 if absent.
	MaxProcs int64
	// MaxJobs is the number of jobs declared by the log, or 0 if absent.
	MaxJobs int64
	// UnixStartTime is the epoch time of the first instant of the log.
	UnixStartTime int64
	// Fields holds every "; Key: Value" directive in order of appearance.
	Fields []HeaderField
}

// HeaderField is one raw header directive.
type HeaderField struct {
	Key   string
	Value string
}

// Procs returns the best-effort machine size declared by the header:
// MaxProcs if set, else MaxNodes.
func (h *Header) Procs() int64 {
	if h.MaxProcs > 0 {
		return h.MaxProcs
	}
	return h.MaxNodes
}

// Trace is a fully parsed SWF log.
type Trace struct {
	Header Header
	Jobs   []Job
}
