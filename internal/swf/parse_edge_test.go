package swf

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// Edge cases of the SWF grammar as real archive files exhibit them:
// header comments appearing after data lines, rows with too few or too
// many fields, negative runtimes, and writer/parser round-trips.

const edgeRow = "1 0 5 100 4 -1 -1 4 200 -1 1 7 3 2 1 -1 -1 -1"

func TestParseHeaderCommentMidFile(t *testing.T) {
	in := "; MaxProcs: 64\n" +
		edgeRow + "\n" +
		"; Note: maintenance window logged here\n" +
		"; MaxJobs: 2\n" +
		"2 10 0 50 2 -1 -1 2 60 -1 1 8 3 2 1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("parsed %d jobs, want 2", len(tr.Jobs))
	}
	if tr.Header.MaxProcs != 64 || tr.Header.MaxJobs != 2 {
		t.Fatalf("mid-file directives not honored: %+v", tr.Header)
	}
	// All directives are preserved in order, including the free-text one.
	if len(tr.Header.Fields) != 3 || tr.Header.Fields[1].Key != "Note" {
		t.Fatalf("directives lost: %+v", tr.Header.Fields)
	}
}

func TestParseShortRowReportsLineNumber(t *testing.T) {
	in := "; MaxProcs: 8\n" + edgeRow + "\n1 2 3\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected error for a 3-field row")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error should name line 3: %v", err)
	}
	if !strings.Contains(err.Error(), "18 fields") {
		t.Fatalf("error should name the expected field count: %v", err)
	}
}

func TestParseSeventeenFieldRowFails(t *testing.T) {
	row := strings.Join(strings.Fields(edgeRow)[:17], " ")
	if _, err := Parse(strings.NewReader(row + "\n")); err == nil {
		t.Fatal("expected error for a 17-field row")
	}
}

func TestParseOverlongRowIgnoresExtras(t *testing.T) {
	// Some archive exports append site-specific columns; the 18
	// standard fields are taken and the rest ignored.
	tr, err := Parse(strings.NewReader(edgeRow + " 999 888\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].ThinkTime != -1 {
		t.Fatalf("overlong row mangled: %+v", tr.Jobs)
	}
}

func TestParseNegativeRuntime(t *testing.T) {
	// -1 (unknown) runtimes parse fine; Clean is what drops them.
	in := "1 0 -1 -1 4 -1 -1 4 200 -1 5 7 3 2 1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].RunTime != -1 {
		t.Fatalf("runtime = %d, want -1", tr.Jobs[0].RunTime)
	}
	if issues := Validate(tr, 8); len(issues) == 0 {
		t.Fatal("Validate should flag the negative runtime")
	}
	if clean := Clean(tr, 8); len(clean.Jobs) != 0 {
		t.Fatal("Clean should drop the unusable job")
	}
}

func TestWriterParserRoundTripPreservesEverything(t *testing.T) {
	orig := &Trace{
		Header: Header{
			MaxNodes:      16,
			MaxProcs:      64,
			MaxJobs:       2,
			UnixStartTime: 123456789,
			Fields: []HeaderField{
				{Key: "MaxNodes", Value: "16"},
				{Key: "MaxProcs", Value: "64"},
				{Key: "MaxJobs", Value: "2"},
				{Key: "UnixStartTime", Value: "123456789"},
				{Key: "Computer", Value: "IBM SP2"},
			},
		},
		Jobs: []Job{
			{JobNumber: 1, SubmitTime: 0, WaitTime: 5, RunTime: 100, AllocatedProcs: 4,
				AvgCPUTime: 90, UsedMemory: 1024, RequestedProcs: 4, RequestedTime: 200,
				RequestedMemory: 2048, Status: StatusCompleted, UserID: 7, GroupID: 3,
				Executable: 2, Queue: 1, Partition: 1, PrecedingJob: -1, ThinkTime: -1},
			{JobNumber: 2, SubmitTime: 10, WaitTime: -1, RunTime: -1, AllocatedProcs: -1,
				AvgCPUTime: -1, UsedMemory: -1, RequestedProcs: 2, RequestedTime: 60,
				RequestedMemory: -1, Status: StatusCancelled, UserID: 8, GroupID: 3,
				Executable: -1, Queue: -1, Partition: -1, PrecedingJob: 1, ThinkTime: 30},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Jobs, orig.Jobs) {
		t.Fatalf("jobs changed across round-trip:\n got %+v\nwant %+v", back.Jobs, orig.Jobs)
	}
	if !reflect.DeepEqual(back.Header, orig.Header) {
		t.Fatalf("header changed across round-trip:\n got %+v\nwant %+v", back.Header, orig.Header)
	}
	// A second round-trip is a fixed point.
	var buf2 bytes.Buffer
	if err := Write(&buf2, back); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, back) {
		t.Fatal("round-trip is not a fixed point")
	}
}
