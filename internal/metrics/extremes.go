package metrics

import (
	"sort"

	"repro/internal/sim"
)

// WaitStats summarizes the waiting-time distribution of a schedule,
// including the tail measures the paper's Section 6.5 discussion calls
// for: prediction-based heuristics occasionally produce extreme bounded
// slowdowns on ~0.1 % of jobs, which averages hide.
type WaitStats struct {
	// Mean and Max waiting time, seconds.
	Mean float64
	Max  int64
	// P50/P95/P99 waiting-time percentiles, seconds.
	P50, P95, P99 int64
}

// ComputeWaitStats derives the waiting-time distribution summary.
func ComputeWaitStats(res *sim.Result) WaitStats {
	if len(res.Jobs) == 0 {
		return WaitStats{}
	}
	waits := make([]int64, 0, len(res.Jobs))
	var sum int64
	for _, j := range res.Jobs {
		if !j.Finished {
			continue // canceled before running: no realized wait
		}
		w := j.Wait()
		waits = append(waits, w)
		sum += w
	}
	if len(waits) == 0 {
		return WaitStats{}
	}
	sort.Slice(waits, func(a, b int) bool { return waits[a] < waits[b] })
	pick := func(q float64) int64 {
		i := int(q * float64(len(waits)))
		if i >= len(waits) {
			i = len(waits) - 1
		}
		return waits[i]
	}
	return WaitStats{
		Mean: float64(sum) / float64(len(waits)),
		Max:  waits[len(waits)-1],
		P50:  pick(0.50),
		P95:  pick(0.95),
		P99:  pick(0.99),
	}
}

// ExtremeStats quantifies the extreme-slowdown tail of Section 6.5.
type ExtremeStats struct {
	// Threshold is the bounded-slowdown cutoff used.
	Threshold float64
	// Count is how many jobs exceed it; Fraction is Count/total.
	Count    int
	Fraction float64
	// Worst is the largest bounded slowdown observed.
	Worst float64
	// ContributionToAVE is how much the extreme jobs add to AVEbsld:
	// AVEbsld(all) − AVEbsld(jobs below the threshold, over all jobs).
	ContributionToAVE float64
}

// ComputeExtremes reports the jobs whose bounded slowdown exceeds the
// threshold and their contribution to the average. The paper observes
// roughly 0.1 % of jobs reaching extreme values under every
// prediction-based heuristic and argues evaluation measures should
// expose them; this function does.
func ComputeExtremes(res *sim.Result, threshold float64) ExtremeStats {
	s := ExtremeStats{Threshold: threshold}
	if len(res.Jobs) == 0 {
		return s
	}
	var totalSum, cappedSum float64
	finished := 0
	for _, j := range res.Jobs {
		if !j.Finished {
			continue // canceled before running: no realized schedule
		}
		finished++
		b := Bsld(j.Wait(), j.Runtime)
		totalSum += b
		if b > threshold {
			s.Count++
			if b > s.Worst {
				s.Worst = b
			}
		} else {
			cappedSum += b
		}
	}
	if finished == 0 {
		return s
	}
	n := float64(finished)
	s.Fraction = float64(s.Count) / n
	s.ContributionToAVE = (totalSum - cappedSum) / n
	return s
}
