package metrics

import (
	"math"
	"testing"

	"repro/internal/job"
)

// fedJob builds a minimal finished job routed to the given cluster.
func fedJob(id int64, cluster int, submit, start, runtime, procs int64) *job.Job {
	return &job.Job{
		ID:               id,
		Submit:           submit,
		Runtime:          runtime,
		Procs:            procs,
		Cluster:          cluster,
		Start:            start,
		End:              start + runtime,
		Started:          true,
		Finished:         true,
		SubmitPrediction: runtime + 60,
	}
}

// TestFederatedObserveIsClusterLocal pins the shard-safety contract:
// Observe touches only the destination cluster's collector, and
// ClusterObserver hands out exactly that collector.
func TestFederatedObserveIsClusterLocal(t *testing.T) {
	f := NewFederated(3)
	f.Observe(fedJob(1, 1, 0, 10, 100, 4))
	f.Observe(fedJob(2, 1, 5, 20, 50, 2))
	f.Observe(fedJob(3, 2, 0, 0, 200, 8))
	if got := []int{f.Clusters[0].Finished(), f.Clusters[1].Finished(), f.Clusters[2].Finished()}; got[0] != 0 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("per-cluster finished = %v, want [0 2 1]", got)
	}
	for ci := range f.Clusters {
		if f.ClusterObserver(ci) != any(f.Clusters[ci]) {
			t.Fatalf("ClusterObserver(%d) is not the cluster's collector", ci)
		}
	}
	// Out-of-range stamps (never produced by a correct run) are dropped,
	// not observed into some arbitrary collector.
	f.Observe(fedJob(4, -1, 0, 0, 10, 1))
	f.Observe(fedJob(5, 3, 0, 0, 10, 1))
	if f.Global().Finished() != 3 {
		t.Fatalf("out-of-range cluster stamps leaked into the global view")
	}
}

// TestFederatedGlobalMergesDeterministically holds Global() to the
// bit-identical-merge contract: the same per-cluster observations give
// the same global accumulators no matter how many times the fold runs,
// and the integer/max metrics equal a single collector over all jobs.
func TestFederatedGlobalMergesDeterministically(t *testing.T) {
	f := NewFederated(2)
	whole := NewCollector()
	for i := int64(0); i < 500; i++ {
		j := fedJob(i, int(i%2), i, i+10*(i%7), 30+i%300, 1+i%16)
		f.Observe(j)
		whole.Observe(j)
	}
	a, b := f.Global(), f.Global()
	if a.Finished() != b.Finished() || a.AVEbsld() != b.AVEbsld() || a.MaxBsld() != b.MaxBsld() ||
		a.MeanWait() != b.MeanWait() || a.MAE() != b.MAE() || a.MeanELoss() != b.MeanELoss() {
		t.Fatal("Global() is not deterministic across calls")
	}
	if a.Finished() != whole.Finished() {
		t.Fatalf("merged Finished = %d, want %d", a.Finished(), whole.Finished())
	}
	// Integer-summed and max-based metrics survive any regrouping
	// exactly; float sums only up to summation order.
	if a.MeanWait() != whole.MeanWait() || a.MaxBsld() != whole.MaxBsld() ||
		a.Utilization(1000, 64) != whole.Utilization(1000, 64) {
		t.Fatal("integer/max metrics differ between merged and direct collectors")
	}
	for _, m := range [][2]float64{
		{a.AVEbsld(), whole.AVEbsld()},
		{a.MAE(), whole.MAE()},
		{a.MeanELoss(), whole.MeanELoss()},
	} {
		if math.Abs(m[0]-m[1]) > 1e-9*(1+math.Abs(m[1])) {
			t.Fatalf("float metric drifted beyond summation-order tolerance: %v vs %v", m[0], m[1])
		}
	}
	if a.BsldSketch().Count() != whole.BsldSketch().Count() ||
		a.WaitSketch().Count() != whole.WaitSketch().Count() {
		t.Fatal("merged sketches lost samples")
	}
}
