package metrics

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// PerClient is the sink of a multi-client run: one Collector per
// traffic source, split by the client index the workload generator
// stamped on each job (job.Job.Client, from the SWF Partition field),
// plus an overall collector fed every observation. The overall
// collector therefore accumulates exactly what a plain Collector in the
// same run would — the per-client decomposition rides along for free in
// the same single pass, reusing the stats.Sketch machinery.
type PerClient struct {
	names   []string
	overall *Collector
	clients []*Collector
}

// NewPerClient returns an empty sink for the named clients (index order
// must match the generator's client indices).
func NewPerClient(names []string) *PerClient {
	p := &PerClient{
		names:   append([]string(nil), names...),
		overall: NewCollector(),
		clients: make([]*Collector, len(names)),
	}
	for i := range p.clients {
		p.clients[i] = NewCollector()
	}
	return p
}

// Observe implements sim.JobSink. Every job feeds the overall
// collector; jobs whose client stamp falls outside the declared client
// list (archive logs with exotic partition numbering) skip the
// per-client split.
func (p *PerClient) Observe(j *job.Job) {
	p.overall.Observe(j)
	if j.Client >= 0 && j.Client < len(p.clients) {
		p.clients[j.Client].Observe(j)
	}
}

// Overall returns the collector over every observed job — identical to
// what a plain Collector sink would have accumulated.
func (p *PerClient) Overall() *Collector { return p.overall }

// Names returns the client names in index order.
func (p *PerClient) Names() []string { return p.names }

// Client returns the collector of the i-th client.
func (p *PerClient) Client(i int) *Collector { return p.clients[i] }

var _ sim.JobSink = (*PerClient)(nil)
