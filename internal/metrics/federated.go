package metrics

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// Federated is the sink of a federated run: one Collector per cluster,
// split by the destination the router stamped on each job, plus a
// merged global view over the whole platform. Observations touch only
// the destination cluster's collector, which makes the sink shard-safe:
// the parallel federated driver hands each cluster's collector to the
// goroutine that owns that cluster (via ClusterObserver) and no two
// goroutines ever write the same accumulator. The global figures are
// assembled on demand by merging the per-cluster collectors in platform
// order — a deterministic fold, so the sequential and sharded drivers
// produce bit-identical global metrics.
type Federated struct {
	// Clusters holds one collector per cluster, in platform order.
	Clusters []*Collector
}

// NewFederated returns an empty federated sink for n clusters.
func NewFederated(n int) *Federated {
	f := &Federated{Clusters: make([]*Collector, n)}
	for i := range f.Clusters {
		f.Clusters[i] = NewCollector()
	}
	return f
}

// Observe implements sim.JobSink. Jobs whose cluster stamp falls outside
// the platform (which a correct run never produces) are dropped.
func (f *Federated) Observe(j *job.Job) {
	if j.Cluster >= 0 && j.Cluster < len(f.Clusters) {
		f.Clusters[j.Cluster].Observe(j)
	}
}

// ClusterObserver implements sim.ClusterSink: it exposes the one
// collector the given cluster's shard may observe into.
func (f *Federated) ClusterObserver(cluster int) any { return f.Clusters[cluster] }

// Global merges the per-cluster collectors, in platform order, into a
// fresh platform-wide collector. The fold order is fixed, so the result
// is deterministic and independent of which driver (sequential or
// sharded) filled the per-cluster collectors.
func (f *Federated) Global() *Collector {
	g := NewCollector()
	for _, c := range f.Clusters {
		g.Merge(c)
	}
	return g
}

// statically assert the sink contracts.
var (
	_ sim.JobSink     = (*Federated)(nil)
	_ sim.ClusterSink = (*Federated)(nil)
)
