package metrics

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// Federated is the sink of a federated run: one global Collector over
// every finished job plus one Collector per cluster, split by the
// destination the router stamped on each job. Global figures therefore
// aggregate the whole platform while the per-cluster collectors expose
// the load imbalance a routing policy produced.
type Federated struct {
	// Global observes every finished job.
	Global *Collector
	// Clusters holds one collector per cluster, in platform order.
	Clusters []*Collector
}

// NewFederated returns an empty federated sink for n clusters.
func NewFederated(n int) *Federated {
	f := &Federated{Global: NewCollector(), Clusters: make([]*Collector, n)}
	for i := range f.Clusters {
		f.Clusters[i] = NewCollector()
	}
	return f
}

// Observe implements sim.JobSink.
func (f *Federated) Observe(j *job.Job) {
	f.Global.Observe(j)
	if j.Cluster >= 0 && j.Cluster < len(f.Clusters) {
		f.Clusters[j.Cluster].Observe(j)
	}
}

// statically assert the sink contract.
var _ sim.JobSink = (*Federated)(nil)
