package metrics

import (
	"math"
	"testing"

	"repro/internal/job"
)

func TestComputeWaitStats(t *testing.T) {
	var jobs []*job.Job
	// Waits: 0, 10, 20, ..., 990 (100 jobs).
	for i := 0; i < 100; i++ {
		jobs = append(jobs, done(int64(i+1), 0, int64(i*10), 100, 1))
	}
	s := ComputeWaitStats(mkResult(jobs...))
	if math.Abs(s.Mean-495) > 1e-9 {
		t.Fatalf("mean wait = %v, want 495", s.Mean)
	}
	if s.Max != 990 {
		t.Fatalf("max wait = %d, want 990", s.Max)
	}
	if s.P50 != 500 {
		t.Fatalf("P50 = %d, want 500", s.P50)
	}
	if s.P99 != 990 {
		t.Fatalf("P99 = %d, want 990", s.P99)
	}
}

func TestComputeWaitStatsEmpty(t *testing.T) {
	s := ComputeWaitStats(mkResult())
	if s.Mean != 0 || s.Max != 0 {
		t.Fatal("empty schedule should give zero stats")
	}
}

func TestComputeExtremes(t *testing.T) {
	jobs := []*job.Job{
		done(1, 0, 0, 100, 1),    // bsld 1
		done(2, 0, 100, 100, 1),  // bsld 2
		done(3, 0, 99990, 10, 1), // bsld (99990+10)/10 = 10000
		done(4, 0, 9990, 10, 1),  // bsld 1000
	}
	s := ComputeExtremes(mkResult(jobs...), 100)
	if s.Count != 2 {
		t.Fatalf("extreme count = %d, want 2", s.Count)
	}
	if math.Abs(s.Fraction-0.5) > 1e-9 {
		t.Fatalf("fraction = %v, want 0.5", s.Fraction)
	}
	if s.Worst != 10000 {
		t.Fatalf("worst = %v, want 10000", s.Worst)
	}
	// Contribution: (1+2+10000+1000)/4 - (1+2)/4 = 11000/4.
	if math.Abs(s.ContributionToAVE-2750) > 1e-9 {
		t.Fatalf("contribution = %v, want 2750", s.ContributionToAVE)
	}
}

func TestComputeExtremesNoneAboveThreshold(t *testing.T) {
	jobs := []*job.Job{done(1, 0, 0, 100, 1)}
	s := ComputeExtremes(mkResult(jobs...), 100)
	if s.Count != 0 || s.Worst != 0 || s.ContributionToAVE != 0 {
		t.Fatalf("unexpected extremes: %+v", s)
	}
}

func TestComputeExtremesEmpty(t *testing.T) {
	s := ComputeExtremes(mkResult(), 100)
	if s.Count != 0 || s.Fraction != 0 {
		t.Fatal("empty schedule should give zero extremes")
	}
}
