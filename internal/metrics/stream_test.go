package metrics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestCollectorMatchesBatchMetrics runs one simulation with a collector
// attached and holds every streaming accumulator to the batch function
// over the retained result: integer-summed metrics exactly, float-summed
// ones to summation-order tolerance.
func TestCollectorMatchesBatchMetrics(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 800)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []core.Triple{core.EASY(), core.EASYPlusPlus()} {
		c := NewCollector()
		sc := tr.Config()
		sc.Sink = c
		res, err := sim.Run(w, sc)
		if err != nil {
			t.Fatal(err)
		}

		finished := 0
		for _, j := range res.Jobs {
			if j.Finished {
				finished++
			}
		}
		if c.Finished() != finished || res.Finished != finished {
			t.Fatalf("%s: collector observed %d jobs (result says %d), want %d",
				tr.Name(), c.Finished(), res.Finished, finished)
		}

		exact := func(name string, got, want float64) {
			if got != want {
				t.Errorf("%s: %s = %v, batch %v (must be exact)", tr.Name(), name, got, want)
			}
		}
		near := func(name string, got, want float64) {
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("%s: %s = %v, batch %v", tr.Name(), name, got, want)
			}
		}
		exact("MeanWait", c.MeanWait(), MeanWait(res))
		exact("Utilization", c.Utilization(res.Makespan, res.MaxProcs), Utilization(res))
		exact("MaxBsld", c.MaxBsld(), MaxBsld(res))
		near("AVEbsld", c.AVEbsld(), AVEbsld(res))
		near("MAE", c.MAE(), MAE(res.Jobs))
		near("MeanELoss", c.MeanELoss(), MeanELoss(res.Jobs))
	}
}

// TestCollectorEmpty pins the zero-job behavior of every accessor.
func TestCollectorEmpty(t *testing.T) {
	c := NewCollector()
	if c.Finished() != 0 || c.AVEbsld() != 0 || c.MaxBsld() != 0 || c.MeanWait() != 0 ||
		c.MAE() != 0 || c.MeanELoss() != 0 || c.Utilization(100, 10) != 0 {
		t.Fatal("empty collector must report zeros")
	}
	if got := (WaitStats{}); c.WaitStats() != got {
		t.Fatalf("empty WaitStats = %+v", c.WaitStats())
	}
	if c.WaitSketch().Count() != 0 || c.BsldSketch().Count() != 0 {
		t.Fatal("empty sketches must be empty")
	}
}

// TestCollectorSketchTracksDistribution sanity-checks the sketch-backed
// distribution views against the exact batch percentiles.
func TestCollectorSketchTracksDistribution(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 800)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector()
	sc := core.EASY().Config()
	sc.Sink = c
	res, err := sim.Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	exactStats := ComputeWaitStats(res)
	got := c.WaitStats()
	if got.Mean != exactStats.Mean || got.Max != exactStats.Max {
		t.Fatalf("wait mean/max: streaming %v/%v, exact %v/%v", got.Mean, got.Max, exactStats.Mean, exactStats.Max)
	}
	// Percentiles are approximate; at 800 samples the sketch has not
	// compacted much, so they should sit close to exact.
	for _, pair := range [][2]int64{{got.P50, exactStats.P50}, {got.P95, exactStats.P95}} {
		lo, hi := float64(pair[1])*0.8-1, float64(pair[1])*1.2+1
		if float64(pair[0]) < lo || float64(pair[0]) > hi {
			t.Fatalf("sketch percentile %d too far from exact %d", pair[0], pair[1])
		}
	}
	if n := c.BsldSketch().Count(); n != int64(c.Finished()) {
		t.Fatalf("bsld sketch saw %d samples, want %d", n, c.Finished())
	}
}
