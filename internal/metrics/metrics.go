// Package metrics computes the objective functions of Section 5.3 and
// the prediction-quality measures of Section 6.4: the bounded slowdown
// and its average (AVEbsld, the paper's sole scheduling objective),
// waiting-time and utilization summaries, and the MAE / mean-E-Loss pair
// of Table 8.
package metrics

import (
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/ml"
	"repro/internal/sim"
)

// Tau is the bounded-slowdown threshold τ: the literature (and the
// paper) set it to 10 seconds to keep tiny jobs from dominating.
const Tau = 10

// Bsld returns the bounded slowdown of one job:
//
//	max( (wait + p) / max(p, τ), 1 )
func Bsld(wait, runtime int64) float64 {
	denom := runtime
	if denom < Tau {
		denom = Tau
	}
	v := float64(wait+runtime) / float64(denom)
	if v < 1 {
		return 1
	}
	return v
}

// AVEbsld returns the average bounded slowdown of a realized schedule.
// Jobs a scenario canceled before they ever ran are excluded (they have
// no realized schedule); killed jobs count with their truncated runtime.
func AVEbsld(res *sim.Result) float64 {
	var sum float64
	n := 0
	for _, j := range res.Jobs {
		if !j.Finished {
			continue
		}
		sum += Bsld(j.Wait(), j.Runtime)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxBsld returns the worst bounded slowdown (the extreme values the
// paper's discussion in Section 6.5 worries about).
func MaxBsld(res *sim.Result) float64 {
	var worst float64
	for _, j := range res.Jobs {
		if !j.Finished {
			continue
		}
		if b := Bsld(j.Wait(), j.Runtime); b > worst {
			worst = b
		}
	}
	return worst
}

// MeanWait returns the average waiting time in seconds over the jobs
// that ran.
func MeanWait(res *sim.Result) float64 {
	var sum int64
	n := 0
	for _, j := range res.Jobs {
		if !j.Finished {
			continue
		}
		sum += j.Wait()
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Utilization returns consumed work divided by nominal machine capacity
// over the schedule's makespan. Under a disruption scenario the nominal
// capacity overstates what was actually in service, so this is a lower
// bound on the in-service utilization.
func Utilization(res *sim.Result) float64 {
	if res.Makespan <= 0 || res.MaxProcs <= 0 {
		return 0
	}
	var work int64
	for _, j := range res.Jobs {
		if !j.Finished {
			continue
		}
		work += j.Runtime * j.Procs
	}
	return float64(work) / (float64(res.Makespan) * float64(res.MaxProcs))
}

// PredictionError returns pred − actual per job (positive means
// over-prediction), using the prediction made at submission.
func PredictionError(jobs []*job.Job) []float64 {
	errs := make([]float64, len(jobs))
	for i, j := range jobs {
		errs[i] = float64(j.SubmitPrediction - j.Runtime)
	}
	return errs
}

// MAE returns the mean absolute error of submission-time predictions, in
// seconds (Table 8's first column). Jobs without a realized runtime
// (canceled before running) are excluded.
func MAE(jobs []*job.Job) float64 {
	var sum float64
	n := 0
	for _, j := range jobs {
		if !j.Finished {
			continue
		}
		sum += math.Abs(float64(j.SubmitPrediction - j.Runtime))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanELoss returns the mean E-Loss of submission-time predictions
// (Table 8's second column).
func MeanELoss(jobs []*job.Job) float64 {
	var sum float64
	n := 0
	for _, j := range jobs {
		if !j.Finished {
			continue
		}
		sum += ml.ELoss.Eval(float64(j.SubmitPrediction), float64(j.Runtime), float64(j.Procs))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ECDF is an empirical cumulative distribution function: for each sorted
// sample value, the fraction of samples at or below it.
type ECDF struct {
	values []float64
}

// NewECDF builds the ECDF of the given samples (which it copies and sorts).
func NewECDF(samples []float64) *ECDF {
	v := append([]float64(nil), samples...)
	sort.Float64s(v)
	return &ECDF{values: v}
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.values) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.values) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.values, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.values))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.values) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.values[0]
	}
	if q >= 1 {
		return e.values[len(e.values)-1]
	}
	idx := int(q * float64(len(e.values)))
	if idx >= len(e.values) {
		idx = len(e.values) - 1
	}
	return e.values[idx]
}

// Series samples the ECDF at n evenly spaced points across [lo, hi],
// returning (x, P(X<=x)) pairs — the plottable form of Figures 4 and 5.
func (e *ECDF) Series(lo, hi float64, n int) (xs, ps []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = x
		ps[i] = e.At(x)
	}
	return xs, ps
}
