package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestBsld(t *testing.T) {
	cases := []struct {
		wait, runtime int64
		want          float64
	}{
		{0, 100, 1},      // no wait -> 1
		{100, 100, 2},    // wait == runtime -> 2
		{90, 10, 10},     // (90+10)/10
		{90, 1, 9.1},     // tiny job bounded by tau: (90+1)/10
		{0, 1, 1},        // bounded below by 1
		{1000, 5, 100.5}, // (1000+5)/10
		{3600, 3600, 2},  // hour wait, hour run
		{7200, 3600, 3},  // two-hour wait
	}
	for _, c := range cases {
		if got := Bsld(c.wait, c.runtime); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Bsld(%d,%d) = %v, want %v", c.wait, c.runtime, got, c.want)
		}
	}
}

func TestBsldNeverBelowOne(t *testing.T) {
	f := func(wait, runtime uint32) bool {
		return Bsld(int64(wait), int64(runtime)) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBsldMatchesObs pins the duplicated formula: obs.Bsld (which the
// flight recorder stamps on finish events — it cannot import this
// package without a cycle) must agree with Bsld everywhere.
func TestBsldMatchesObs(t *testing.T) {
	f := func(wait, runtime uint32) bool {
		return Bsld(int64(wait), int64(runtime)) == obs.Bsld(int64(wait), int64(runtime))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int64{{0, 0}, {0, 5}, {100, 0}, {100, 10}, {7, 3}} {
		if got, want := obs.Bsld(c[0], c[1]), Bsld(c[0], c[1]); got != want {
			t.Fatalf("obs.Bsld(%d,%d)=%v, metrics.Bsld=%v", c[0], c[1], got, want)
		}
	}
}

func mkResult(jobs ...*job.Job) *sim.Result {
	var makespan int64
	for _, j := range jobs {
		if j.End > makespan {
			makespan = j.End
		}
	}
	return &sim.Result{Jobs: jobs, MaxProcs: 100, Makespan: makespan}
}

func done(id, submit, start, runtime, procs int64) *job.Job {
	return &job.Job{
		ID: id, Submit: submit, Start: start, End: start + runtime,
		Runtime: runtime, Procs: procs, Started: true, Finished: true,
		SubmitPrediction: runtime, Request: runtime * 2,
	}
}

func TestAVEbsld(t *testing.T) {
	res := mkResult(
		done(1, 0, 0, 100, 10),   // bsld 1
		done(2, 0, 100, 100, 10), // bsld 2
	)
	if got := AVEbsld(res); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("AVEbsld = %v, want 1.5", got)
	}
}

func TestAVEbsldEmpty(t *testing.T) {
	if got := AVEbsld(&sim.Result{}); got != 0 {
		t.Fatalf("empty AVEbsld = %v", got)
	}
}

func TestMaxBsld(t *testing.T) {
	res := mkResult(
		done(1, 0, 0, 100, 10),
		done(2, 0, 990, 10, 1), // bsld (990+10)/10 = 100
	)
	if got := MaxBsld(res); math.Abs(got-100) > 1e-9 {
		t.Fatalf("MaxBsld = %v, want 100", got)
	}
}

func TestMeanWait(t *testing.T) {
	res := mkResult(done(1, 0, 50, 10, 1), done(2, 10, 20, 10, 1))
	if got := MeanWait(res); math.Abs(got-30) > 1e-9 {
		t.Fatalf("MeanWait = %v, want 30", got)
	}
}

func TestUtilization(t *testing.T) {
	// One job: 100 procs x 100s on a 100-proc machine, makespan 100.
	res := mkResult(done(1, 0, 0, 100, 100))
	if got := Utilization(res); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Utilization = %v, want 1", got)
	}
}

func TestMAEAndPredictionError(t *testing.T) {
	j1 := done(1, 0, 0, 100, 1)
	j1.SubmitPrediction = 150 // over by 50
	j2 := done(2, 0, 0, 100, 1)
	j2.SubmitPrediction = 80 // under by 20
	jobs := []*job.Job{j1, j2}
	if got := MAE(jobs); math.Abs(got-35) > 1e-9 {
		t.Fatalf("MAE = %v, want 35", got)
	}
	errs := PredictionError(jobs)
	if errs[0] != 50 || errs[1] != -20 {
		t.Fatalf("PredictionError = %v", errs)
	}
}

func TestMeanELossPenalizesOverPrediction(t *testing.T) {
	over := done(1, 0, 0, 1000, 8)
	over.SubmitPrediction = 3000
	under := done(2, 0, 0, 1000, 8)
	under.SubmitPrediction = 1 // maximally under
	overLoss := MeanELoss([]*job.Job{over})
	underLoss := MeanELoss([]*job.Job{under})
	if overLoss <= underLoss {
		t.Fatalf("E-Loss should punish over-prediction harder: over=%v under=%v", overLoss, underLoss)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatal("Len wrong")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	if got := e.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := e.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	if got := e.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v", got)
	}
}

func TestECDFSeries(t *testing.T) {
	e := NewECDF([]float64{0, 10})
	xs, ps := e.Series(0, 10, 3)
	if len(xs) != 3 || xs[0] != 0 || xs[2] != 10 {
		t.Fatalf("xs = %v", xs)
	}
	if ps[0] != 0.5 || ps[2] != 1 {
		t.Fatalf("ps = %v", ps)
	}
	if !monotone(ps) {
		t.Fatal("ECDF series must be monotone")
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if got := e.At(5); got != 0 {
		t.Fatalf("empty ECDF At = %v", got)
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuickECDFMonotone(t *testing.T) {
	f := func(samples []float64) bool {
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
		}
		e := NewECDF(samples)
		prev := -1.0
		for _, x := range []float64{-1e12, -1, 0, 1, 1e12} {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func monotone(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}
