package metrics

import (
	"math"

	"repro/internal/job"
	"repro/internal/ml"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Collector is the streaming counterpart of this package's batch
// functions: a sim.JobSink that folds every finished job into one-pass
// accumulators, so a bounded-memory run produces the same metric table
// without retaining a single job. Integer-summed metrics (MeanWait,
// Utilization) and max-based ones (MaxBsld) match the batch functions
// bit-for-bit; float-summed ones (AVEbsld, MAE, MeanELoss) match them up
// to summation order. Fed the same event sequence — as the preloading
// and streaming engines are, by construction — two Collectors agree
// exactly.
//
// Beyond the scalar metrics, the collector keeps bounded-memory quantile
// sketches (stats.Sketch) of the bounded-slowdown and waiting-time
// distributions — the streaming stand-in for the exact ECDFs of the
// batch path.
type Collector struct {
	finished int
	sumBsld  float64
	maxBsld  float64
	sumWait  int64
	work     int64
	sumAbs   float64
	sumELoss float64
	bsld     *stats.Sketch
	wait     *stats.Sketch
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{bsld: stats.NewSketch(), wait: stats.NewSketch()}
}

// Observe implements sim.JobSink.
func (c *Collector) Observe(j *job.Job) {
	c.finished++
	w := j.Wait()
	b := Bsld(w, j.Runtime)
	c.sumBsld += b
	if b > c.maxBsld {
		c.maxBsld = b
	}
	c.sumWait += w
	c.work += j.Runtime * j.Procs
	c.sumAbs += math.Abs(float64(j.SubmitPrediction - j.Runtime))
	c.sumELoss += ml.ELoss.Eval(float64(j.SubmitPrediction), float64(j.Runtime), float64(j.Procs))
	c.bsld.Add(b)
	c.wait.Add(float64(w))
}

// Merge folds another collector into c: integer counters and work sums
// add, MaxBsld takes the maximum, float accumulators add in call order,
// and the quantile sketches merge weight-preservingly (stats.Sketch's
// Merge). Merging the same collectors in the same order is fully
// deterministic, which is how a federated sink assembles its global view
// from per-cluster collectors with bit-identical results on the
// sequential and sharded drivers. o is left untouched.
func (c *Collector) Merge(o *Collector) {
	c.finished += o.finished
	c.sumBsld += o.sumBsld
	if o.maxBsld > c.maxBsld {
		c.maxBsld = o.maxBsld
	}
	c.sumWait += o.sumWait
	c.work += o.work
	c.sumAbs += o.sumAbs
	c.sumELoss += o.sumELoss
	c.bsld.Merge(o.bsld)
	c.wait.Merge(o.wait)
}

// Finished returns how many jobs were observed.
func (c *Collector) Finished() int { return c.finished }

// AVEbsld returns the streaming average bounded slowdown.
func (c *Collector) AVEbsld() float64 {
	if c.finished == 0 {
		return 0
	}
	return c.sumBsld / float64(c.finished)
}

// MaxBsld returns the worst bounded slowdown observed.
func (c *Collector) MaxBsld() float64 { return c.maxBsld }

// MeanWait returns the streaming mean waiting time in seconds.
func (c *Collector) MeanWait() float64 {
	if c.finished == 0 {
		return 0
	}
	return float64(c.sumWait) / float64(c.finished)
}

// Utilization returns consumed work over nominal capacity across the
// given makespan, as the batch Utilization does.
func (c *Collector) Utilization(makespan, maxProcs int64) float64 {
	if makespan <= 0 || maxProcs <= 0 {
		return 0
	}
	return float64(c.work) / (float64(makespan) * float64(maxProcs))
}

// MAE returns the streaming mean absolute prediction error in seconds.
func (c *Collector) MAE() float64 {
	if c.finished == 0 {
		return 0
	}
	return c.sumAbs / float64(c.finished)
}

// MeanELoss returns the streaming mean E-Loss of submission predictions.
func (c *Collector) MeanELoss() float64 {
	if c.finished == 0 {
		return 0
	}
	return c.sumELoss / float64(c.finished)
}

// BsldSketch returns the bounded-slowdown distribution sketch.
func (c *Collector) BsldSketch() *stats.Sketch { return c.bsld }

// WaitSketch returns the waiting-time distribution sketch.
func (c *Collector) WaitSketch() *stats.Sketch { return c.wait }

// WaitStats renders the sketch-backed waiting-time summary, the
// streaming analogue of ComputeWaitStats (percentiles are approximate,
// mean and max exact).
func (c *Collector) WaitStats() WaitStats {
	if c.finished == 0 {
		return WaitStats{}
	}
	return WaitStats{
		Mean: c.MeanWait(),
		Max:  int64(c.wait.Max()),
		P50:  int64(c.wait.Quantile(0.50)),
		P95:  int64(c.wait.Quantile(0.95)),
		P99:  int64(c.wait.Quantile(0.99)),
	}
}

// statically assert the sink contract.
var _ sim.JobSink = (*Collector)(nil)
