package trace

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/swf"
)

func sampleTrace() *swf.Trace {
	return &swf.Trace{
		Header: swf.Header{MaxProcs: 100},
		Jobs: []swf.Job{
			{JobNumber: 1, SubmitTime: 0, RunTime: 100, RequestedProcs: 50, RequestedTime: 200, UserID: 1},
			{JobNumber: 2, SubmitTime: 10, RunTime: 50, RequestedProcs: 100, RequestedTime: 100, UserID: 2},
			{JobNumber: 3, SubmitTime: 20, RunTime: 200, RequestedProcs: 25, RequestedTime: 400, UserID: 1},
		},
	}
}

func TestFromSWF(t *testing.T) {
	w, err := FromSWF("test", sampleTrace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxProcs != 100 {
		t.Errorf("MaxProcs = %d, want 100 from header", w.MaxProcs)
	}
	if len(w.Jobs) != 3 {
		t.Errorf("got %d jobs", len(w.Jobs))
	}
}

func TestFromSWFOverride(t *testing.T) {
	w, err := FromSWF("test", sampleTrace(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxProcs != 200 {
		t.Errorf("MaxProcs = %d, want override 200", w.MaxProcs)
	}
}

func TestFromSWFNoMachineSize(t *testing.T) {
	tr := sampleTrace()
	tr.Header.MaxProcs = 0
	if _, err := FromSWF("test", tr, 0); err == nil {
		t.Fatal("expected error when machine size unknown")
	}
}

func TestDurationAndWork(t *testing.T) {
	w, _ := FromSWF("test", sampleTrace(), 0)
	// Last completion lower bound: job3 submits at 20, runs 200 -> 220.
	if d := w.Duration(); d != 220 {
		t.Errorf("Duration = %d, want 220", d)
	}
	want := int64(100*50 + 50*100 + 200*25)
	if got := w.TotalWork(); got != want {
		t.Errorf("TotalWork = %d, want %d", got, want)
	}
}

func TestOfferedLoad(t *testing.T) {
	w, _ := FromSWF("test", sampleTrace(), 0)
	load := w.OfferedLoad()
	want := float64(15000) / (220.0 * 100.0)
	if diff := load - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("OfferedLoad = %v, want %v", load, want)
	}
}

func TestUsers(t *testing.T) {
	w, _ := FromSWF("test", sampleTrace(), 0)
	users := w.Users()
	if len(users) != 2 || users[0] != 1 || users[1] != 2 {
		t.Errorf("Users = %v, want [1 2]", users)
	}
}

func TestComputeStats(t *testing.T) {
	w, _ := FromSWF("test", sampleTrace(), 0)
	s := ComputeStats(w)
	if s.Jobs != 3 || s.Users != 2 {
		t.Errorf("stats jobs/users = %d/%d", s.Jobs, s.Users)
	}
	if s.MedianRunTime != 100 {
		t.Errorf("MedianRunTime = %d, want 100", s.MedianRunTime)
	}
	if s.MaxProcsPerJob != 100 {
		t.Errorf("MaxProcsPerJob = %d, want 100", s.MaxProcsPerJob)
	}
	if s.MeanOverestim < 2.0 || s.MeanOverestim > 2.1 {
		// ratios: 2, 2, 2 -> mean 2
		t.Errorf("MeanOverestim = %v, want 2", s.MeanOverestim)
	}
}

func TestSlice(t *testing.T) {
	w, _ := FromSWF("test", sampleTrace(), 0)
	s := w.Slice(2)
	if len(s.Jobs) != 2 {
		t.Errorf("Slice(2) has %d jobs", len(s.Jobs))
	}
	s.Jobs[0].RunTime = 999
	if w.Jobs[0].RunTime == 999 {
		t.Error("Slice should copy, not alias")
	}
	if got := w.Slice(0); len(got.Jobs) != 3 {
		t.Errorf("Slice(0) should keep all jobs, got %d", len(got.Jobs))
	}
	if got := w.Slice(100); len(got.Jobs) != 3 {
		t.Errorf("Slice(100) should keep all jobs, got %d", len(got.Jobs))
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	content := "; MaxProcs: 10\n1 0 0 60 2 -1 -1 2 120 -1 1 1 1 1 1 1 -1 -1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadFile("disk", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.MaxProcs != 10 {
		t.Errorf("loaded workload wrong: %d jobs, %d procs", len(w.Jobs), w.MaxProcs)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("x", "/nonexistent/file.swf", 0); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestValidateCleanWorkload(t *testing.T) {
	w, _ := FromSWF("test", sampleTrace(), 0)
	if issues := w.Validate(); len(issues) != 0 {
		t.Errorf("clean workload has issues: %v", issues)
	}
}
