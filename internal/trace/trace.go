// Package trace provides the in-memory workload model shared by the
// simulator, the predictors and the experiment harness. It wraps an SWF
// trace with the machine size and derived statistics (utilization,
// per-user activity, estimate accuracy) that the paper reports when
// describing its testbed (Table 4).
package trace

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/swf"
)

// Workload is a scheduling problem instance: a machine of MaxProcs
// identical processors and a submit-time-ordered list of jobs.
type Workload struct {
	// Name identifies the workload (e.g. "Curie").
	Name string
	// MaxProcs is the machine size m.
	MaxProcs int64
	// Jobs is ordered by submit time.
	Jobs []swf.Job
	// Clients names the traffic sources of a multi-client workload in
	// client-index order (the SWF Partition field carries 1+index). Nil
	// for single-population workloads and archive logs.
	Clients []string
}

// FromSWF builds a Workload from a parsed trace, cleaning it first.
// maxProcs overrides the header machine size when positive.
func FromSWF(name string, tr *swf.Trace, maxProcs int64) (*Workload, error) {
	if maxProcs <= 0 {
		maxProcs = tr.Header.Procs()
	}
	if maxProcs <= 0 {
		return nil, fmt.Errorf("trace: %s: machine size unknown (no MaxProcs/MaxNodes header)", name)
	}
	clean := swf.Clean(tr, maxProcs)
	if len(clean.Jobs) == 0 {
		return nil, fmt.Errorf("trace: %s: no usable jobs after cleaning", name)
	}
	return &Workload{Name: name, MaxProcs: maxProcs, Jobs: clean.Jobs}, nil
}

// LoadFile parses an SWF file from disk and builds a Workload.
func LoadFile(name, path string, maxProcs int64) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := swf.Parse(f)
	if err != nil {
		return nil, err
	}
	return FromSWF(name, tr, maxProcs)
}

// Duration returns the span from the first submission to the last
// completion assuming zero waiting (a lower bound on the log duration).
func (w *Workload) Duration() int64 {
	var end int64
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if t := j.SubmitTime + j.RunTime; t > end {
			end = t
		}
	}
	if len(w.Jobs) == 0 {
		return 0
	}
	return end - w.Jobs[0].SubmitTime
}

// TotalWork returns the sum of processor-seconds consumed by all jobs.
func (w *Workload) TotalWork() int64 {
	var work int64
	for i := range w.Jobs {
		j := &w.Jobs[i]
		work += j.RunTime * j.Procs()
	}
	return work
}

// OfferedLoad returns total work divided by machine capacity over the
// trace duration — the utilization the machine would need to clear the
// workload with no idling. Values near (or above) 1 indicate a saturated
// system, the regime the paper selects its logs from.
func (w *Workload) OfferedLoad() float64 {
	d := w.Duration()
	if d <= 0 || w.MaxProcs <= 0 {
		return 0
	}
	return float64(w.TotalWork()) / (float64(d) * float64(w.MaxProcs))
}

// Users returns the distinct user IDs in the workload, sorted.
func (w *Workload) Users() []int64 {
	set := make(map[int64]bool)
	for i := range w.Jobs {
		set[w.Jobs[i].UserID] = true
	}
	users := make([]int64, 0, len(set))
	for u := range set {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
	return users
}

// Stats summarizes a workload for reporting.
type Stats struct {
	Name            string
	MaxProcs        int64
	Jobs            int
	Users           int
	DurationSec     int64
	OfferedLoad     float64
	MeanRunTime     float64
	MeanRequested   float64
	MeanOverestim   float64 // mean of requested/actual ratio
	MedianRunTime   int64
	MaxProcsPerJob  int64
	MeanProcsPerJob float64
}

// ComputeStats derives the summary statistics of the workload.
func ComputeStats(w *Workload) Stats {
	s := Stats{Name: w.Name, MaxProcs: w.MaxProcs, Jobs: len(w.Jobs), Users: len(w.Users())}
	s.DurationSec = w.Duration()
	s.OfferedLoad = w.OfferedLoad()
	if len(w.Jobs) == 0 {
		return s
	}
	runtimes := make([]int64, 0, len(w.Jobs))
	var sumRun, sumReq, sumRatio, sumProcs float64
	for i := range w.Jobs {
		j := &w.Jobs[i]
		runtimes = append(runtimes, j.RunTime)
		sumRun += float64(j.RunTime)
		sumReq += float64(j.Request())
		if j.RunTime > 0 {
			sumRatio += float64(j.Request()) / float64(j.RunTime)
		}
		sumProcs += float64(j.Procs())
		if j.Procs() > s.MaxProcsPerJob {
			s.MaxProcsPerJob = j.Procs()
		}
	}
	n := float64(len(w.Jobs))
	s.MeanRunTime = sumRun / n
	s.MeanRequested = sumReq / n
	s.MeanOverestim = sumRatio / n
	s.MeanProcsPerJob = sumProcs / n
	sort.Slice(runtimes, func(a, b int) bool { return runtimes[a] < runtimes[b] })
	s.MedianRunTime = runtimes[len(runtimes)/2]
	return s
}

// Slice returns a copy of the workload restricted to the first n jobs
// (or all jobs if n is zero or exceeds the length). Useful for scaled-down
// benchmark runs.
func (w *Workload) Slice(n int) *Workload {
	if n <= 0 || n >= len(w.Jobs) {
		n = len(w.Jobs)
	}
	jobs := make([]swf.Job, n)
	copy(jobs, w.Jobs[:n])
	return &Workload{Name: w.Name, MaxProcs: w.MaxProcs, Jobs: jobs}
}

// Validate reports invariant violations in the workload.
func (w *Workload) Validate() []swf.ValidationIssue {
	tr := &swf.Trace{Header: swf.Header{MaxProcs: w.MaxProcs}, Jobs: w.Jobs}
	return swf.Validate(tr, w.MaxProcs)
}
