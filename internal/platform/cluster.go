package platform

// This file describes federated platforms: a list of Cluster descriptors
// — heterogeneous processor counts and per-processor speed factors —
// that the simulation engine instantiates as independent Machines, one
// capacity step function each, behind a routing stage (sched.Router).
// A single-cluster description is exactly the classic one-machine world.

import (
	"fmt"
	"strconv"
	"strings"
)

// Cluster describes one member of a federated platform.
type Cluster struct {
	// Name labels the cluster in reports, journal keys and scenario
	// scripts. Empty names are auto-filled as c0, c1, ... by Normalize.
	Name string
	// Procs is the cluster's nominal processor count.
	Procs int64
	// Speed is the relative per-processor speed factor: a job routed to
	// the cluster runs (and is bounded) for ceil(time/Speed) seconds.
	// Zero means 1.0 (reference speed).
	Speed float64
}

// SpeedFactor resolves the zero-value default.
func (c Cluster) SpeedFactor() float64 {
	if c.Speed == 0 {
		return 1.0
	}
	return c.Speed
}

// Validate rejects a structurally impossible descriptor.
func (c Cluster) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("platform: cluster %q: %d processors must be positive", c.Name, c.Procs)
	}
	if c.Speed < 0 {
		return fmt.Errorf("platform: cluster %q: speed factor %v must be positive", c.Name, c.Speed)
	}
	if strings.ContainsAny(c.Name, "|+,= \t") {
		return fmt.Errorf("platform: cluster name %q contains reserved separator characters", c.Name)
	}
	return nil
}

// String renders the descriptor in the flag syntax ParseClusters reads.
func (c Cluster) String() string {
	s := strconv.FormatInt(c.Procs, 10)
	if sp := c.SpeedFactor(); sp != 1.0 {
		s += "x" + strconv.FormatFloat(sp, 'g', -1, 64)
	}
	if c.Name != "" {
		s = c.Name + "=" + s
	}
	return s
}

// Normalize validates a federated platform description and fills in
// default cluster names (c0, c1, ...), rejecting duplicates. It returns
// a copy; the input is not mutated.
func Normalize(clusters []Cluster) ([]Cluster, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("platform: a federated platform needs at least one cluster")
	}
	out := make([]Cluster, len(clusters))
	copy(out, clusters)
	seen := make(map[string]bool, len(out))
	for i := range out {
		if out[i].Name == "" {
			out[i].Name = "c" + strconv.Itoa(i)
		}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
		if seen[out[i].Name] {
			return nil, fmt.Errorf("platform: duplicate cluster name %q", out[i].Name)
		}
		seen[out[i].Name] = true
	}
	return out, nil
}

// ClustersTotal sums the nominal processor counts.
func ClustersTotal(clusters []Cluster) int64 {
	var total int64
	for _, c := range clusters {
		total += c.Procs
	}
	return total
}

// Topology renders a canonical fingerprint of the platform shape —
// "100+64x1.5+32" — used in journal keys and report headers. Names are
// deliberately excluded: two platforms with the same sizes and speeds
// in the same order are the same topology.
func Topology(clusters []Cluster) string {
	parts := make([]string, len(clusters))
	for i, c := range clusters {
		parts[i] = Cluster{Procs: c.Procs, Speed: c.Speed}.String()
	}
	return strings.Join(parts, "+")
}

// ParseClusters reads the -clusters flag / spec shorthand syntax: a
// comma-separated list of PROCS[xSPEED] entries, each optionally
// prefixed NAME= — e.g. "100,64x1.5,slow=32x0.5". Unnamed clusters are
// auto-named c0, c1, ... by position.
func ParseClusters(s string) ([]Cluster, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("platform: empty cluster list")
	}
	var out []Cluster
	for _, entry := range strings.Split(s, ",") {
		c, err := ParseClusterEntry(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return Normalize(out)
}

// ParseClusterEntry reads one NAME=PROCS[xSPEED] entry without
// normalizing (auto-naming happens against the whole platform, so
// callers collecting entries one by one — the spec decoder — keep
// positional names consistent).
func ParseClusterEntry(entry string) (Cluster, error) {
	entry = strings.TrimSpace(entry)
	var c Cluster
	if i := strings.IndexByte(entry, '='); i >= 0 {
		c.Name = strings.TrimSpace(entry[:i])
		if c.Name == "" {
			return Cluster{}, fmt.Errorf("platform: cluster entry %q: empty name before '='", entry)
		}
		entry = strings.TrimSpace(entry[i+1:])
	}
	spec := entry
	if i := strings.IndexByte(entry, 'x'); i >= 0 {
		speed, err := strconv.ParseFloat(entry[i+1:], 64)
		if err != nil || speed <= 0 {
			return Cluster{}, fmt.Errorf("platform: cluster entry %q: bad speed factor %q", entry, entry[i+1:])
		}
		c.Speed = speed
		spec = entry[:i]
	}
	procs, err := strconv.ParseInt(spec, 10, 64)
	if err != nil {
		return Cluster{}, fmt.Errorf("platform: cluster entry %q: bad processor count %q (want PROCS[xSPEED], e.g. 64 or 64x0.5)", entry, spec)
	}
	c.Procs = procs
	return c, nil
}
