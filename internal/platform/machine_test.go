package platform

import (
	"testing"

	"repro/internal/job"
)

func mkJob(id, procs, start, prediction int64) *job.Job {
	return &job.Job{ID: id, Procs: procs, Start: start, Prediction: prediction, Started: true}
}

func TestMachineStartFinish(t *testing.T) {
	m := New(10)
	if m.Free() != 10 || m.Total() != 10 {
		t.Fatal("fresh machine wrong")
	}
	j := mkJob(1, 4, 0, 100)
	m.Start(j)
	if m.Free() != 6 {
		t.Fatalf("free = %d after start, want 6", m.Free())
	}
	if m.RunningCount() != 1 {
		t.Fatal("running count wrong")
	}
	m.Finish(j)
	if m.Free() != 10 {
		t.Fatalf("free = %d after finish, want 10", m.Free())
	}
}

func TestMachineOverbookPanics(t *testing.T) {
	m := New(4)
	m.Start(mkJob(1, 3, 0, 10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overbooking")
		}
	}()
	m.Start(mkJob(2, 2, 0, 10))
}

func TestMachineDoubleStartPanics(t *testing.T) {
	m := New(10)
	j := mkJob(1, 2, 0, 10)
	m.Start(j)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double start")
		}
	}()
	m.Start(j)
}

func TestMachineFinishUnknownPanics(t *testing.T) {
	m := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on finishing unknown job")
		}
	}()
	m.Finish(mkJob(1, 2, 0, 10))
}

func TestNewInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-size machine")
		}
	}()
	New(0)
}

func TestRunningSortedByID(t *testing.T) {
	m := New(10)
	m.Start(mkJob(3, 1, 0, 10))
	m.Start(mkJob(1, 1, 0, 10))
	m.Start(mkJob(2, 1, 0, 10))
	ids := []int64{}
	for _, j := range m.Running() {
		ids = append(ids, j.ID)
	}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("Running not sorted: %v", ids)
	}
}

func TestReservationImmediate(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 4, 0, 100))
	shadow, extra := m.Reservation(0, 6)
	if shadow != 0 || extra != 0 {
		t.Fatalf("shadow=%d extra=%d, want 0,0 (fits exactly now)", shadow, extra)
	}
	shadow, extra = m.Reservation(0, 3)
	if shadow != 0 || extra != 3 {
		t.Fatalf("shadow=%d extra=%d, want 0,3", shadow, extra)
	}
}

func TestReservationAfterOneCompletion(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 6, 0, 100)) // predicted end 100
	m.Start(mkJob(2, 4, 0, 50))  // predicted end 50
	// 8 procs: need job2's 4 (free 0+4=4 at t=50, not enough) then job1's 6
	// at t=100 -> 10 available >= 8, extra 2.
	shadow, extra := m.Reservation(10, 8)
	if shadow != 100 || extra != 2 {
		t.Fatalf("shadow=%d extra=%d, want 100,2", shadow, extra)
	}
	// 4 procs: available 4 at t=50.
	shadow, extra = m.Reservation(10, 4)
	if shadow != 50 || extra != 0 {
		t.Fatalf("shadow=%d extra=%d, want 50,0", shadow, extra)
	}
}

func TestReservationSimultaneousReleases(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 5, 0, 80))
	m.Start(mkJob(2, 5, 0, 80))
	shadow, extra := m.Reservation(0, 7)
	if shadow != 80 || extra != 3 {
		t.Fatalf("shadow=%d extra=%d, want 80,3 (both release together)", shadow, extra)
	}
}

func TestReservationOverduePrediction(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 10, 0, 30)) // predicted end 30, but it is now 50
	shadow, _ := m.Reservation(50, 5)
	// The overdue job's processors are demonstrably busy at now, so the
	// release is clamped to now+1 — the same ReleaseInstant clamp
	// ProfileFromMachine applies, so the EASY and conservative
	// availability views agree.
	if shadow != 51 {
		t.Fatalf("overdue prediction should clamp to just after now: shadow=%d", shadow)
	}
}

func TestReleaseInstantSharedClamp(t *testing.T) {
	j := mkJob(1, 4, 0, 30)
	if got := ReleaseInstant(j, 10); got != 30 {
		t.Fatalf("live prediction should release at its end: %d", got)
	}
	if got := ReleaseInstant(j, 30); got != 31 {
		t.Fatalf("prediction expiring exactly now should release at now+1: %d", got)
	}
	if got := ReleaseInstant(j, 50); got != 51 {
		t.Fatalf("overdue prediction should release at now+1: %d", got)
	}
	// The two availability views must agree on the overdue release.
	m := New(10)
	m.Start(j)
	p := ProfileFromMachine(m, 50)
	shadow, _ := m.Reservation(50, 8)
	if p.AvailableAt(shadow) < 8 {
		t.Fatalf("profile and reservation disagree: only %d free at shadow %d", p.AvailableAt(shadow), shadow)
	}
	if p.AvailableAt(50) != 6 || p.AvailableAt(51) != 10 {
		t.Fatalf("profile overdue clamp wrong: %d at 50, %d at 51", p.AvailableAt(50), p.AvailableAt(51))
	}
}

func TestReservationWiderThanMachine(t *testing.T) {
	m := New(10)
	shadow, _ := m.Reservation(0, 11)
	if shadow != InfiniteTime {
		t.Fatalf("impossible job should get infinite shadow, got %d", shadow)
	}
}

func TestProfileBasics(t *testing.T) {
	p := NewProfile(0, 10)
	if p.AvailableAt(0) != 10 || p.AvailableAt(1000000) != 10 {
		t.Fatal("fresh profile should be fully available")
	}
	p.Reserve(10, 20, 4)
	if p.AvailableAt(9) != 10 || p.AvailableAt(10) != 6 || p.AvailableAt(19) != 6 || p.AvailableAt(20) != 10 {
		t.Fatal("reservation boundaries wrong")
	}
}

func TestProfileOverlappingReservations(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 100, 3)
	p.Reserve(50, 150, 3)
	if p.AvailableAt(49) != 7 || p.AvailableAt(50) != 4 || p.AvailableAt(99) != 4 ||
		p.AvailableAt(100) != 7 || p.AvailableAt(150) != 10 {
		t.Fatal("overlapping reservations wrong")
	}
}

func TestProfileOverbookPanics(t *testing.T) {
	p := NewProfile(0, 4)
	p.Reserve(0, 10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected overbooking panic")
		}
	}()
	p.Reserve(5, 15, 2)
}

func TestProfileFindStartImmediate(t *testing.T) {
	p := NewProfile(0, 10)
	if got := p.FindStart(5, 100, 10); got != 5 {
		t.Fatalf("FindStart = %d, want 5", got)
	}
}

func TestProfileFindStartAfterBusyWindow(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 100, 8)
	// 4 procs for 50s: only 2 available until t=100.
	if got := p.FindStart(0, 50, 4); got != 100 {
		t.Fatalf("FindStart = %d, want 100", got)
	}
	// 2 procs fit immediately.
	if got := p.FindStart(0, 50, 2); got != 0 {
		t.Fatalf("FindStart = %d, want 0", got)
	}
}

func TestProfileFindStartHoleTooShort(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 50, 8)
	p.Reserve(60, 200, 8)
	// A 4-wide 20s job: hole [50,60) is 10s, too short; must wait to 200.
	if got := p.FindStart(0, 20, 4); got != 200 {
		t.Fatalf("FindStart = %d, want 200", got)
	}
	// A 4-wide 10s job fits exactly in the hole.
	if got := p.FindStart(0, 10, 4); got != 50 {
		t.Fatalf("FindStart = %d, want 50", got)
	}
}

func TestProfileFindStartRespectsEarliest(t *testing.T) {
	p := NewProfile(0, 10)
	if got := p.FindStart(77, 10, 1); got != 77 {
		t.Fatalf("FindStart = %d, want 77", got)
	}
}

func TestProfileFindStartTooWide(t *testing.T) {
	p := NewProfile(0, 10)
	if got := p.FindStart(0, 10, 11); got != InfiniteTime {
		t.Fatalf("FindStart = %d, want InfiniteTime", got)
	}
}

func TestProfileFindThenReserveNeverPanics(t *testing.T) {
	p := NewProfile(0, 16)
	// Pseudo-random but deterministic job stream.
	seed := int64(12345)
	next := func(n int64) int64 {
		seed = (seed*6364136223846793005 + 1442695040888963407) & 0x7fffffff
		return seed % n
	}
	for i := 0; i < 500; i++ {
		procs := 1 + next(16)
		dur := 1 + next(1000)
		earliest := next(5000)
		start := p.FindStart(earliest, dur, procs)
		if start < earliest {
			t.Fatalf("start %d before earliest %d", start, earliest)
		}
		p.Reserve(start, start+dur, procs) // must not panic
	}
}

func TestProfileFromMachine(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 4, 0, 100))
	m.Start(mkJob(2, 2, 0, 50))
	p := ProfileFromMachine(m, 10)
	if p.AvailableAt(10) != 4 {
		t.Fatalf("available now = %d, want 4", p.AvailableAt(10))
	}
	if p.AvailableAt(60) != 6 {
		t.Fatalf("available at 60 = %d, want 6", p.AvailableAt(60))
	}
	if p.AvailableAt(150) != 10 {
		t.Fatalf("available at 150 = %d, want 10", p.AvailableAt(150))
	}
}

func TestProfileFromMachineOverdue(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 4, 0, 30)) // overdue at now=50
	p := ProfileFromMachine(m, 50)
	if p.AvailableAt(50) != 6 {
		t.Fatalf("overdue job still holds procs at now: %d", p.AvailableAt(50))
	}
	if p.AvailableAt(52) != 10 {
		t.Fatalf("overdue job should release just after now: %d", p.AvailableAt(52))
	}
}
