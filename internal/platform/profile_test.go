package platform

import "testing"

func TestProfileRelease(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(10, 100, 6)
	// The job completes at t=40, 60 seconds before its predicted end:
	// releasing the tail compresses the timeline without a rebuild.
	p.Release(40, 100, 6)
	if p.AvailableAt(10) != 4 || p.AvailableAt(39) != 4 {
		t.Fatal("live part of the reservation lost")
	}
	if p.AvailableAt(40) != 10 || p.AvailableAt(99) != 10 || p.AvailableAt(100) != 10 {
		t.Fatal("released tail not free")
	}
}

func TestProfileReleaseExceedingCapacityPanics(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 50, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when releasing beyond capacity")
		}
	}()
	p.Release(60, 80, 1) // nothing reserved there
}

func TestProfileReleaseCoalesces(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(10, 20, 4)
	p.Reserve(30, 40, 4)
	p.Release(10, 20, 4)
	p.Release(30, 40, 4)
	if p.SegmentCount() != 1 {
		times, avail := p.Segments()
		t.Fatalf("fully released profile should collapse to one segment: %v %v", times, avail)
	}
	if p.AvailableAt(15) != 10 || p.AvailableAt(35) != 10 {
		t.Fatal("released profile not fully free")
	}
}

func TestProfileAdvance(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 50, 4)
	p.Reserve(100, 200, 6)
	p.Advance(120)
	if p.Start() != 120 {
		t.Fatalf("origin = %d, want 120", p.Start())
	}
	if p.AvailableAt(120) != 4 || p.AvailableAt(199) != 4 || p.AvailableAt(200) != 10 {
		t.Fatal("advance changed live availability")
	}
	// Dead history is compacted away: only [120,200) and [200,inf) remain.
	if p.SegmentCount() != 2 {
		times, avail := p.Segments()
		t.Fatalf("advance should drop dead segments: %v %v", times, avail)
	}
	// Advancing backwards (or to the origin) is a no-op.
	p.Advance(100)
	if p.Start() != 120 {
		t.Fatal("advance moved the origin backwards")
	}
}

func TestProfileAdvancePastEverything(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 50, 4)
	p.Advance(1000)
	if p.Start() != 1000 || p.SegmentCount() != 1 || p.AvailableAt(1000) != 10 {
		t.Fatal("advance past all reservations should leave one fully-free segment")
	}
}

func TestProfileCopyFromAndReset(t *testing.T) {
	src := NewProfile(0, 10)
	src.Reserve(10, 100, 6)
	dst := NewProfile(0, 1)
	dst.CopyFrom(src)
	if dst.Total() != 10 || dst.AvailableAt(50) != 4 || dst.AvailableAt(100) != 10 {
		t.Fatal("copy does not match source")
	}
	// Mutating the copy must not touch the source (scratch semantics).
	dst.Reserve(10, 100, 4)
	if src.AvailableAt(50) != 4 {
		t.Fatal("mutating the copy leaked into the source")
	}
	dst.Reset(5, 8)
	if dst.Total() != 8 || dst.Start() != 5 || dst.AvailableAt(5) != 8 || dst.SegmentCount() != 1 {
		t.Fatal("reset profile wrong")
	}
}

func TestProfileReserveCoalescesAdjacentEqual(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(10, 20, 4)
	p.Reserve(20, 30, 4)
	// [10,20) and [20,30) hold the same availability: one breakpoint.
	if p.AvailableAt(15) != 6 || p.AvailableAt(25) != 6 || p.AvailableAt(30) != 10 {
		t.Fatal("availability wrong after adjacent reservations")
	}
	if p.SegmentCount() != 3 { // [0,10) [10,30) [30,inf)
		times, avail := p.Segments()
		t.Fatalf("adjacent equal segments not coalesced: %v %v", times, avail)
	}
}

// TestProfileIncrementalMatchesRebuild drives a random reserve/release/
// advance sequence and checks the incremental profile agrees with a
// freshly built one at every step.
func TestProfileIncrementalMatchesRebuild(t *testing.T) {
	type span struct{ from, to, procs int64 }
	p := NewProfile(0, 16)
	var live []span
	seed := int64(987654)
	next := func(n int64) int64 {
		seed = (seed*6364136223846793005 + 1442695040888963407) & 0x7fffffff
		return seed % n
	}
	var now int64
	for step := 0; step < 300; step++ {
		switch next(3) {
		case 0: // reserve a feasible span
			procs := 1 + next(8)
			dur := 1 + next(500)
			start := p.FindStart(now+next(200), dur, procs)
			if start < InfiniteTime {
				p.Reserve(start, start+dur, procs)
				live = append(live, span{start, start + dur, procs})
			}
		case 1: // release the tail of a live span
			if len(live) > 0 {
				i := next(int64(len(live)))
				s := live[i]
				if cut := s.from + (s.to-s.from)/2; cut < s.to && cut >= now {
					p.Release(cut, s.to, s.procs)
					live[i].to = cut
				}
			}
		case 2: // advance the clock
			now += next(100)
			p.Advance(now)
			for i := range live {
				if live[i].from < now {
					live[i].from = now
				}
			}
		}
		// Rebuild from the live spans and compare at probe points.
		fresh := NewProfile(now, 16)
		for _, s := range live {
			if s.to > now {
				from := s.from
				if from < now {
					from = now
				}
				fresh.Reserve(from, s.to, s.procs)
			}
		}
		for probe := int64(0); probe < 10; probe++ {
			at := now + next(1000)
			if got, want := p.AvailableAt(at), fresh.AvailableAt(at); got != want {
				t.Fatalf("step %d: availability at %d = %d, rebuild says %d", step, at, got, want)
			}
		}
	}
}
