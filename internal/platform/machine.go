// Package platform models the computing resource the jobs compete for: a
// pool of m identical processors (the paper assumes no interconnection
// topology). It tracks free capacity and the set of running jobs with
// their *predicted* completion times, and answers the two questions
// backfilling needs: "when can a job of width q start at the latest
// estimate?" (the EASY shadow time and extra processors) and "what does
// the whole future availability profile look like?" (conservative
// backfilling).
package platform

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/job"
)

// Machine is the processor pool plus running-job bookkeeping.
type Machine struct {
	total   int64
	free    int64
	running map[int64]*job.Job // keyed by job ID
}

// New creates a machine with the given processor count.
func New(totalProcs int64) *Machine {
	if totalProcs <= 0 {
		panic(fmt.Sprintf("platform: non-positive machine size %d", totalProcs))
	}
	return &Machine{total: totalProcs, free: totalProcs, running: make(map[int64]*job.Job)}
}

// Total returns the machine size m.
func (m *Machine) Total() int64 { return m.total }

// Free returns the currently idle processor count.
func (m *Machine) Free() int64 { return m.free }

// RunningCount returns the number of running jobs.
func (m *Machine) RunningCount() int { return len(m.running) }

// Start allocates the job's processors. It is the caller's responsibility
// to have set j.Start and j.Prediction. Start panics if capacity would be
// exceeded — that is a scheduler bug, not an input error.
func (m *Machine) Start(j *job.Job) {
	if j.Procs > m.free {
		panic(fmt.Sprintf("platform: job %d needs %d procs but only %d free", j.ID, j.Procs, m.free))
	}
	if _, dup := m.running[j.ID]; dup {
		panic(fmt.Sprintf("platform: job %d started twice", j.ID))
	}
	m.free -= j.Procs
	m.running[j.ID] = j
}

// Finish releases the job's processors.
func (m *Machine) Finish(j *job.Job) {
	if _, ok := m.running[j.ID]; !ok {
		panic(fmt.Sprintf("platform: job %d finished but was not running", j.ID))
	}
	delete(m.running, j.ID)
	m.free += j.Procs
	if m.free > m.total {
		panic(fmt.Sprintf("platform: free %d exceeds total %d after finishing job %d", m.free, m.total, j.ID))
	}
}

// Running returns the running jobs in deterministic (ID) order.
func (m *Machine) Running() []*job.Job {
	jobs := make([]*job.Job, 0, len(m.running))
	for _, j := range m.running {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	return jobs
}

// InfiniteTime stands in for "never" in reservation computations.
const InfiniteTime = int64(math.MaxInt64 / 4)

// ReleaseInstant returns the instant a running job's processors should be
// treated as released by availability computations: its predicted end, or
// now+1 when the prediction is overdue (the job has outlived it but is
// still running, so "any moment now" — strictly after now, since the
// processors are demonstrably not free at now). Machine.Reservation and
// ProfileFromMachine must both use this helper so the EASY and
// conservative availability views cannot drift apart.
func ReleaseInstant(j *job.Job, now int64) int64 {
	if end := j.PredictedEnd(); end > now {
		return end
	}
	return now + 1
}

// Reservation computes EASY's single reservation for a job of width
// procs: the shadow time (earliest instant the job is predicted to have
// enough processors) and the extra processors (processors free at the
// shadow time beyond the reserved job's need, usable by backfilled jobs
// that outlive the shadow time). Completion instants are taken from the
// running jobs' predictions via ReleaseInstant (an overdue prediction
// means "just after now").
func (m *Machine) Reservation(now int64, procs int64) (shadow int64, extra int64) {
	if procs <= m.free {
		return now, m.free - procs
	}
	if procs > m.total {
		return InfiniteTime, 0
	}
	type release struct {
		at    int64
		procs int64
		id    int64
	}
	releases := make([]release, 0, len(m.running))
	for _, j := range m.Running() {
		releases = append(releases, release{at: ReleaseInstant(j, now), procs: j.Procs, id: j.ID})
	}
	sort.Slice(releases, func(a, b int) bool {
		if releases[a].at != releases[b].at {
			return releases[a].at < releases[b].at
		}
		return releases[a].id < releases[b].id
	})
	avail := m.free
	for i := 0; i < len(releases); {
		t := releases[i].at
		for i < len(releases) && releases[i].at == t {
			avail += releases[i].procs
			i++
		}
		if avail >= procs {
			return t, avail - procs
		}
	}
	// Unreachable for procs <= total, since all jobs eventually release.
	return InfiniteTime, 0
}
