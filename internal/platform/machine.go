// Package platform models the computing resource the jobs compete for: a
// pool of identical processors (the paper assumes no interconnection
// topology). Unlike the paper's static testbed, the pool's capacity is a
// step function of time: node drains and maintenance windows remove
// processors from service and restores return them, so the machine tracks
// both its nominal size and the capacity currently (and eventually) in
// service. It tracks free capacity and the set of running jobs with their
// *predicted* completion times, and answers the two questions backfilling
// needs: "when can a job of width q start at the latest estimate?" (the
// EASY shadow time and extra processors) and "what does the whole future
// availability profile look like?" (conservative backfilling).
//
// Drains are graceful: a drain claims idle processors immediately and
// waits for busy ones, absorbing them as their jobs complete. Running
// jobs are never killed by a capacity change, so the invariant
// used <= Capacity() holds at every instant, and PendingDrain() > 0
// implies Free() == 0.
package platform

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"repro/internal/job"
)

// Machine is the processor pool plus running-job bookkeeping.
type Machine struct {
	total        int64              // nominal machine size m
	capacity     int64              // processors currently in service (total - applied drains)
	free         int64              // processors in service and idle
	pendingDrain int64              // drained-but-busy processors, absorbed as jobs finish
	running      map[int64]*job.Job // keyed by job ID

	// relScratch backs predictedReleases: the release list is rebuilt on
	// every availability query (the EASY hot path), so it reuses one
	// buffer instead of allocating per call. Callers must not retain it.
	relScratch []release
}

// New creates a machine with the given processor count, fully in service.
func New(totalProcs int64) *Machine {
	if totalProcs <= 0 {
		panic(fmt.Sprintf("platform: non-positive machine size %d", totalProcs))
	}
	return &Machine{total: totalProcs, capacity: totalProcs, free: totalProcs, running: make(map[int64]*job.Job)}
}

// Total returns the nominal machine size m.
func (m *Machine) Total() int64 { return m.total }

// Capacity returns the processors currently in service (drained
// processors excluded). Always >= the running jobs' usage.
func (m *Machine) Capacity() int64 { return m.capacity }

// PendingDrain returns the processors a drain has claimed but that are
// still busy; they leave service as their jobs complete.
func (m *Machine) PendingDrain() int64 { return m.pendingDrain }

// EventualCapacity returns the capacity the machine converges to once
// all pending drains are absorbed: Capacity() - PendingDrain(). This is
// the ceiling availability planning must use — absorbed processors never
// come back without a Restore.
func (m *Machine) EventualCapacity() int64 { return m.capacity - m.pendingDrain }

// Free returns the currently idle in-service processor count.
func (m *Machine) Free() int64 { return m.free }

// RunningCount returns the number of running jobs.
func (m *Machine) RunningCount() int { return len(m.running) }

// Start allocates the job's processors. It is the caller's responsibility
// to have set j.Start and j.Prediction. Start panics if capacity would be
// exceeded — that is a scheduler bug, not an input error.
func (m *Machine) Start(j *job.Job) {
	if j.Procs > m.free {
		panic(fmt.Sprintf("platform: job %d needs %d procs but only %d free", j.ID, j.Procs, m.free))
	}
	if _, dup := m.running[j.ID]; dup {
		panic(fmt.Sprintf("platform: job %d started twice", j.ID))
	}
	m.free -= j.Procs
	m.running[j.ID] = j
}

// Finish releases the job's processors. A pending drain absorbs the
// freed processors before they return to the idle pool, shrinking the
// in-service capacity.
func (m *Machine) Finish(j *job.Job) {
	if _, ok := m.running[j.ID]; !ok {
		panic(fmt.Sprintf("platform: job %d finished but was not running", j.ID))
	}
	delete(m.running, j.ID)
	freed := j.Procs
	if m.pendingDrain > 0 {
		take := m.pendingDrain
		if take > freed {
			take = freed
		}
		m.pendingDrain -= take
		m.capacity -= take
		freed -= take
	}
	m.free += freed
	if m.free > m.capacity {
		panic(fmt.Sprintf("platform: free %d exceeds capacity %d after finishing job %d", m.free, m.capacity, j.ID))
	}
}

// Drain removes up to procs processors from service (a node failure or
// the start of a maintenance window). Idle processors leave immediately;
// busy ones are marked pending and absorbed as their jobs complete. The
// request is clamped so the eventual capacity never goes negative. It
// returns the processors taken out of service immediately.
func (m *Machine) Drain(procs int64) (applied int64) {
	if procs <= 0 {
		panic(fmt.Sprintf("platform: non-positive drain %d", procs))
	}
	if eventual := m.EventualCapacity(); procs > eventual {
		procs = eventual
	}
	if procs <= 0 {
		return 0
	}
	applied = procs
	if applied > m.free {
		applied = m.free
	}
	m.free -= applied
	m.capacity -= applied
	m.pendingDrain += procs - applied
	return applied
}

// Restore returns up to procs processors to service (a node recovery or
// the end of a maintenance window). It first cancels pending drains,
// then brings drained capacity back, never exceeding the nominal size.
// It returns the processors returned to service immediately.
func (m *Machine) Restore(procs int64) (restored int64) {
	if procs <= 0 {
		panic(fmt.Sprintf("platform: non-positive restore %d", procs))
	}
	if cancel := m.pendingDrain; cancel > 0 {
		if cancel > procs {
			cancel = procs
		}
		m.pendingDrain -= cancel
		procs -= cancel
	}
	restored = m.total - m.capacity
	if restored > procs {
		restored = procs
	}
	m.capacity += restored
	m.free += restored
	return restored
}

// Running returns the running jobs in deterministic (ID) order. It
// allocates a fresh slice per call and is meant for cold paths (policy
// resyncs, tests); the availability hot paths go through
// predictedReleases, which reuses a scratch buffer instead.
func (m *Machine) Running() []*job.Job {
	jobs := make([]*job.Job, 0, len(m.running))
	for _, j := range m.running {
		jobs = append(jobs, j)
	}
	slices.SortFunc(jobs, func(a, b *job.Job) int { return cmp.Compare(a.ID, b.ID) })
	return jobs
}

// InfiniteTime stands in for "never" in reservation computations.
const InfiniteTime = int64(math.MaxInt64 / 4)

// ReleaseInstant returns the instant a running job's processors should be
// treated as released by availability computations: its predicted end, or
// now+1 when the prediction is overdue (the job has outlived it but is
// still running, so "any moment now" — strictly after now, since the
// processors are demonstrably not free at now). Machine.Reservation and
// FillAvailability must both use this helper so the EASY and conservative
// availability views cannot drift apart.
func ReleaseInstant(j *job.Job, now int64) int64 {
	if end := j.PredictedEnd(); end > now {
		return end
	}
	return now + 1
}

// release is one running job's predicted processor release.
type release struct {
	at    int64
	procs int64
	id    int64
}

// predictedReleases returns the running jobs' releases in deterministic
// (instant, ID) order — the order a pending drain is predicted to absorb
// them in. The returned slice aliases the machine's scratch buffer: it
// is valid until the next call and must not be retained. Map iteration
// order does not leak into the result because (instant, ID) is a total
// order over the running set (IDs are unique), so the sort lands on one
// canonical permutation regardless of insertion order.
func (m *Machine) predictedReleases(now int64) []release {
	releases := m.relScratch[:0]
	for _, j := range m.running {
		releases = append(releases, release{at: ReleaseInstant(j, now), procs: j.Procs, id: j.ID})
	}
	slices.SortFunc(releases, func(a, b release) int {
		if a.at != b.at {
			return cmp.Compare(a.at, b.at)
		}
		return cmp.Compare(a.id, b.id)
	})
	m.relScratch = releases
	return releases
}

// releaseBefore is the (instant, ID) total order predictedReleases sorts
// by and the release heap pops in.
func releaseBefore(a, b release) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

// heapifyReleases turns the scratch buffer into a binary min-heap under
// releaseBefore in O(n).
func heapifyReleases(h []release) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownRelease(h, i)
	}
}

func siftDownRelease(h []release, i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && releaseBefore(h[right], h[left]) {
			smallest = right
		}
		if !releaseBefore(h[smallest], h[i]) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// popRelease removes the heap minimum, returning the shrunk heap.
func popRelease(h []release) []release {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if last > 0 {
		siftDownRelease(h, 0)
	}
	return h
}

// Reservation computes EASY's single reservation for a job of width
// procs: the shadow time (earliest instant the job is predicted to have
// enough processors) and the extra processors (processors free at the
// shadow time beyond the reserved job's need, usable by backfilled jobs
// that outlive the shadow time). Completion instants are taken from the
// running jobs' predictions via ReleaseInstant (an overdue prediction
// means "just after now"); a pending drain absorbs the earliest releases,
// so their processors never rejoin the pool. A job wider than the
// eventual capacity gets (InfiniteTime, 0): it cannot start until a
// restore grows the machine.
//
// This is EASY's per-event hot path, so the releases are consumed
// through a partial heap sort instead of a full sort: heapify is O(R)
// and the loop pops only until availability covers the request —
// typically far fewer than R pops — where a full sort would pay
// O(R log R) every event. The pop order is the same (instant, ID) total
// order predictedReleases uses, so the computed reservation is
// bit-identical to the sorted scan's.
func (m *Machine) Reservation(now int64, procs int64) (shadow int64, extra int64) {
	if procs <= m.free {
		return now, m.free - procs
	}
	if procs > m.EventualCapacity() {
		return InfiniteTime, 0
	}
	releases := m.relScratch[:0]
	for _, j := range m.running {
		releases = append(releases, release{at: ReleaseInstant(j, now), procs: j.Procs, id: j.ID})
	}
	m.relScratch = releases
	heapifyReleases(releases)
	avail := m.free
	pending := m.pendingDrain
	h := releases
	for len(h) > 0 {
		t := h[0].at
		for len(h) > 0 && h[0].at == t {
			gain := h[0].procs
			h = popRelease(h)
			if pending > 0 {
				take := pending
				if take > gain {
					take = gain
				}
				pending -= take
				gain -= take
			}
			avail += gain
		}
		if avail >= procs {
			return t, avail - procs
		}
	}
	// Unreachable for procs <= EventualCapacity(): every job eventually
	// releases and pending drains never exceed the running usage.
	return InfiniteTime, 0
}

// FillAvailability resets p to the machine's predicted availability view
// from now on: capacity ceiling at the eventual capacity, the current
// idle processors free at now, and each running job's release (net of
// pending-drain absorption, in ReleaseInstant order) growing availability
// at its predicted end. It is the one construction conservative
// backfilling plans against, shared by the incremental policy and
// ProfileFromMachine so the two cannot drift apart.
func (m *Machine) FillAvailability(p *Profile, now int64) {
	p.Reset(now, m.EventualCapacity())
	pending := m.pendingDrain
	for _, r := range m.predictedReleases(now) {
		gain := r.procs
		if pending > 0 {
			take := pending
			if take > gain {
				take = gain
			}
			pending -= take
			gain -= take
		}
		if gain > 0 {
			p.Reserve(now, r.at, gain)
		}
	}
}
