package platform

import (
	"fmt"
	"sort"
)

// Profile is a piecewise-constant availability timeline: available[i]
// processors are free during [times[i], times[i+1]). The last segment
// extends to infinity. It supports the find-earliest-hole and reserve
// operations conservative backfilling needs.
type Profile struct {
	times     []int64
	available []int64
	total     int64
}

// NewProfile creates a profile with all processors free from the given
// instant onward.
func NewProfile(start int64, totalProcs int64) *Profile {
	if totalProcs <= 0 {
		panic(fmt.Sprintf("platform: non-positive profile capacity %d", totalProcs))
	}
	return &Profile{times: []int64{start}, available: []int64{totalProcs}, total: totalProcs}
}

// ProfileFromMachine builds the availability profile implied by the
// machine's running jobs and their predicted completion times.
func ProfileFromMachine(m *Machine, now int64) *Profile {
	p := NewProfile(now, m.Total())
	for _, j := range m.Running() {
		end := j.PredictedEnd()
		if end <= now {
			end = now + 1 // overdue prediction: assume it releases immediately after now
		}
		p.Reserve(now, end, j.Procs)
	}
	return p
}

// Total returns the profile's capacity.
func (p *Profile) Total() int64 { return p.total }

// segmentAt returns the index of the segment containing t (t must be >=
// the profile start).
func (p *Profile) segmentAt(t int64) int {
	// The first segment with times[i] > t, minus one.
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t })
	if i == 0 {
		panic(fmt.Sprintf("platform: time %d precedes profile start %d", t, p.times[0]))
	}
	return i - 1
}

// AvailableAt returns the free processors at instant t.
func (p *Profile) AvailableAt(t int64) int64 {
	return p.available[p.segmentAt(t)]
}

// split ensures a breakpoint exists exactly at t and returns its segment
// index.
func (p *Profile) split(t int64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.available = append(p.available, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.available[i+2:], p.available[i+1:])
	p.times[i+1] = t
	p.available[i+1] = p.available[i]
	return i + 1
}

// FindStart returns the earliest instant >= earliest at which procs
// processors are continuously free for duration seconds.
func (p *Profile) FindStart(earliest, duration, procs int64) int64 {
	if procs > p.total {
		return InfiniteTime
	}
	if duration <= 0 {
		duration = 1
	}
	start := earliest
	if start < p.times[0] {
		start = p.times[0]
	}
	i := p.segmentAt(start)
	for {
		// Check whether [start, start+duration) fits from segment i on.
		fits := true
		end := start + duration
		for k := i; k < len(p.times) && p.times[k] < end; k++ {
			if p.available[k] < procs {
				fits = false
				// Restart after this segment.
				if k+1 < len(p.times) {
					i = k + 1
					start = p.times[i]
				} else {
					// Last segment lacks capacity and lasts forever: only
					// possible if procs > total, excluded above.
					return InfiniteTime
				}
				break
			}
		}
		if fits {
			return start
		}
	}
}

// Reserve subtracts procs processors during [from, to). It panics if the
// reservation would drive availability negative — callers must use
// FindStart first.
func (p *Profile) Reserve(from, to, procs int64) {
	if from >= to {
		panic(fmt.Sprintf("platform: empty reservation [%d,%d)", from, to))
	}
	i := p.split(from)
	j := p.split(to)
	for k := i; k < j; k++ {
		p.available[k] -= procs
		if p.available[k] < 0 {
			panic(fmt.Sprintf("platform: reservation [%d,%d)x%d overbooks segment %d", from, to, procs, k))
		}
	}
}

// Segments returns a copy of the profile breakpoints, mainly for tests
// and debugging.
func (p *Profile) Segments() (times []int64, available []int64) {
	times = append(times, p.times...)
	available = append(available, p.available...)
	return times, available
}
