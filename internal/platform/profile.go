package platform

import (
	"fmt"
	"sort"
)

// Profile is a piecewise-constant availability timeline: available[i]
// processors are free during [times[i], times[i+1]). The last segment
// extends to infinity. It supports the find-earliest-hole and reserve
// operations conservative backfilling needs, plus the incremental
// operations (Release, Advance, CopyFrom) that let a scheduler keep one
// profile alive across events instead of rebuilding it from scratch.
//
// All mutating operations reuse the profile's backing arrays: Advance
// compacts in place and CopyFrom/Reset recycle previously grown capacity,
// so a long-lived profile reaches a steady state where the hot path
// allocates nothing.
type Profile struct {
	times     []int64
	available []int64
	total     int64
}

// NewProfile creates a profile with all processors free from the given
// instant onward. A zero capacity is legal — it models a machine fully
// drained for maintenance, on which nothing can be placed — but a
// negative one is a bug.
func NewProfile(start int64, totalProcs int64) *Profile {
	if totalProcs < 0 {
		panic(fmt.Sprintf("platform: negative profile capacity %d", totalProcs))
	}
	return &Profile{times: []int64{start}, available: []int64{totalProcs}, total: totalProcs}
}

// ProfileFromMachine builds the availability profile implied by the
// machine's running jobs and their predicted completion times (overdue
// predictions release at ReleaseInstant), net of pending-drain
// absorption. See Machine.FillAvailability for the construction.
func ProfileFromMachine(m *Machine, now int64) *Profile {
	p := &Profile{}
	m.FillAvailability(p, now)
	return p
}

// Total returns the profile's capacity.
func (p *Profile) Total() int64 { return p.total }

// Start returns the first breakpoint (the profile's current origin).
func (p *Profile) Start() int64 { return p.times[0] }

// Reset reinitializes the profile to fully-free from start, keeping the
// backing arrays. Like NewProfile, a zero capacity is legal.
func (p *Profile) Reset(start, totalProcs int64) {
	if totalProcs < 0 {
		panic(fmt.Sprintf("platform: negative profile capacity %d", totalProcs))
	}
	p.times = append(p.times[:0], start)
	p.available = append(p.available[:0], totalProcs)
	p.total = totalProcs
}

// CopyFrom makes p an exact copy of src, reusing p's backing arrays. It
// is the cheap way to derive a scratch profile from a persistent one:
// one memcpy per call instead of one Reserve per running job.
func (p *Profile) CopyFrom(src *Profile) {
	p.times = append(p.times[:0], src.times...)
	p.available = append(p.available[:0], src.available...)
	p.total = src.total
}

// segmentAt returns the index of the segment containing t (t must be >=
// the profile start).
func (p *Profile) segmentAt(t int64) int {
	// The first segment with times[i] > t, minus one.
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t })
	if i == 0 {
		panic(fmt.Sprintf("platform: time %d precedes profile start %d", t, p.times[0]))
	}
	return i - 1
}

// AvailableAt returns the free processors at instant t.
func (p *Profile) AvailableAt(t int64) int64 {
	return p.available[p.segmentAt(t)]
}

// split ensures a breakpoint exists exactly at t and returns its segment
// index.
func (p *Profile) split(t int64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.available = append(p.available, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.available[i+2:], p.available[i+1:])
	p.times[i+1] = t
	p.available[i+1] = p.available[i]
	return i + 1
}

// coalesce merges runs of equal-availability segments in the index range
// [lo, hi], keeping the profile minimal so scan costs do not grow with
// reservation churn. Indices are clamped to the valid range.
func (p *Profile) coalesce(lo, hi int) {
	if lo < 1 {
		lo = 1 // segment 0 is the origin and is never merged away
	}
	if hi >= len(p.times) {
		hi = len(p.times) - 1
	}
	if lo > hi {
		return
	}
	w := lo
	for r := lo; r <= hi; r++ {
		if p.available[r] == p.available[w-1] {
			continue // drop breakpoint r: same availability as its left neighbor
		}
		p.times[w] = p.times[r]
		p.available[w] = p.available[r]
		w++
	}
	if w <= hi {
		n := copy(p.times[w:], p.times[hi+1:])
		copy(p.available[w:], p.available[hi+1:])
		p.times = p.times[:w+n]
		p.available = p.available[:w+n]
	}
}

// Advance drops the part of the timeline strictly before now, moving the
// profile origin forward. History can never be queried again (the
// simulator's clock is monotone), so advancing keeps the segment count
// proportional to live reservations instead of total reservations ever
// made. The compaction reuses the backing arrays in place.
func (p *Profile) Advance(now int64) {
	if now <= p.times[0] {
		return
	}
	i := p.segmentAt(now)
	if i > 0 {
		n := copy(p.times, p.times[i:])
		copy(p.available, p.available[i:])
		p.times = p.times[:n]
		p.available = p.available[:n]
	}
	p.times[0] = now
}

// FindStart returns the earliest instant >= earliest at which procs
// processors are continuously free for duration seconds.
func (p *Profile) FindStart(earliest, duration, procs int64) int64 {
	if procs > p.total {
		return InfiniteTime
	}
	if duration <= 0 {
		duration = 1
	}
	start := earliest
	if start < p.times[0] {
		start = p.times[0]
	}
	i := p.segmentAt(start)
	for {
		// Check whether [start, start+duration) fits from segment i on.
		fits := true
		end := start + duration
		for k := i; k < len(p.times) && p.times[k] < end; k++ {
			if p.available[k] < procs {
				fits = false
				// Restart after this segment.
				if k+1 < len(p.times) {
					i = k + 1
					start = p.times[i]
				} else {
					// Last segment lacks capacity and lasts forever: only
					// possible if procs > total, excluded above.
					return InfiniteTime
				}
				break
			}
		}
		if fits {
			return start
		}
	}
}

// Reserve subtracts procs processors during [from, to). It panics if the
// reservation would drive availability negative — callers must use
// FindStart first.
func (p *Profile) Reserve(from, to, procs int64) {
	if from >= to {
		panic(fmt.Sprintf("platform: empty reservation [%d,%d)", from, to))
	}
	i := p.split(from)
	j := p.split(to)
	for k := i; k < j; k++ {
		p.available[k] -= procs
		if p.available[k] < 0 {
			panic(fmt.Sprintf("platform: reservation [%d,%d)x%d overbooks segment %d", from, to, procs, k))
		}
	}
	p.coalesce(i, j)
}

// Release adds procs processors back during [from, to) — the inverse of
// Reserve. It is how a persistent profile learns that a job completed
// earlier than predicted: releasing the tail of its reservation
// compresses the availability timeline without a rebuild. It panics if
// the release would exceed the profile capacity (releasing processors
// that were never reserved is a scheduler bug).
func (p *Profile) Release(from, to, procs int64) {
	if from >= to {
		panic(fmt.Sprintf("platform: empty release [%d,%d)", from, to))
	}
	i := p.split(from)
	j := p.split(to)
	for k := i; k < j; k++ {
		p.available[k] += procs
		if p.available[k] > p.total {
			panic(fmt.Sprintf("platform: release [%d,%d)x%d exceeds capacity at segment %d", from, to, procs, k))
		}
	}
	p.coalesce(i, j)
}

// SegmentCount returns the number of live segments (for tests and
// instrumentation).
func (p *Profile) SegmentCount() int { return len(p.times) }

// Segments returns a copy of the profile breakpoints, mainly for tests
// and debugging.
func (p *Profile) Segments() (times []int64, available []int64) {
	times = append(times, p.times...)
	available = append(available, p.available...)
	return times, available
}
