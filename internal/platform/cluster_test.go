package platform

import "testing"

func TestParseClusters(t *testing.T) {
	cs, err := ParseClusters("100, 64x1.5, slow=32x0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Cluster{
		{Name: "c0", Procs: 100},
		{Name: "c1", Procs: 64, Speed: 1.5},
		{Name: "slow", Procs: 32, Speed: 0.5},
	}
	if len(cs) != len(want) {
		t.Fatalf("parsed %d clusters, want %d", len(cs), len(want))
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("cluster %d = %+v, want %+v", i, cs[i], want[i])
		}
	}
	if got, want := ClustersTotal(cs), int64(196); got != want {
		t.Errorf("total %d, want %d", got, want)
	}
	if got, want := Topology(cs), "100+64x1.5+32x0.5"; got != want {
		t.Errorf("topology %q, want %q", got, want)
	}
}

func TestParseClustersRejects(t *testing.T) {
	for _, s := range []string{
		"", "abc", "64x", "64x0", "64x-1", "0", "-5", "=64",
		"a=64,a=32", // duplicate names
		"c1=64,32",  // collides with the auto-name of position 1
	} {
		if _, err := ParseClusters(s); err == nil {
			t.Errorf("ParseClusters(%q) accepted", s)
		}
	}
}

func TestClusterValidate(t *testing.T) {
	if err := (Cluster{Name: "ok", Procs: 4}).Validate(); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	for _, c := range []Cluster{
		{Name: "x", Procs: 0},
		{Name: "x", Procs: -1},
		{Name: "x", Procs: 4, Speed: -0.5},
		{Name: "a|b", Procs: 4},
		{Name: "a b", Procs: 4},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

func TestSpeedFactorDefault(t *testing.T) {
	if got := (Cluster{Procs: 1}).SpeedFactor(); got != 1.0 {
		t.Fatalf("zero speed resolves to %v, want 1.0", got)
	}
	if got := (Cluster{Procs: 1, Speed: 2.5}).SpeedFactor(); got != 2.5 {
		t.Fatalf("explicit speed resolves to %v, want 2.5", got)
	}
}

func TestClusterString(t *testing.T) {
	for _, c := range []struct {
		in   Cluster
		want string
	}{
		{Cluster{Procs: 64}, "64"},
		{Cluster{Procs: 64, Speed: 0.5}, "64x0.5"},
		{Cluster{Name: "big", Procs: 128, Speed: 2}, "big=128x2"},
	} {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
