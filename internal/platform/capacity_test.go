package platform

import "testing"

// The time-varying capacity model: drains claim idle processors
// immediately and busy ones as their jobs finish, restores undo them,
// and the availability views (Reservation, ProfileFromMachine) plan
// against the eventual capacity with pending drains absorbing the
// earliest predicted releases.

func TestDrainIdleProcessors(t *testing.T) {
	m := New(10)
	if applied := m.Drain(4); applied != 4 {
		t.Fatalf("applied = %d, want 4 (all idle)", applied)
	}
	if m.Capacity() != 6 || m.Free() != 6 || m.PendingDrain() != 0 {
		t.Fatalf("capacity=%d free=%d pending=%d after idle drain", m.Capacity(), m.Free(), m.PendingDrain())
	}
	if m.EventualCapacity() != 6 {
		t.Fatalf("eventual capacity = %d, want 6", m.EventualCapacity())
	}
}

func TestDrainBusyProcessorsWaits(t *testing.T) {
	m := New(10)
	j := mkJob(1, 7, 0, 100)
	m.Start(j)
	// 3 idle, request 5: 3 applied now, 2 pending.
	if applied := m.Drain(5); applied != 3 {
		t.Fatalf("applied = %d, want 3", applied)
	}
	if m.Capacity() != 7 || m.Free() != 0 || m.PendingDrain() != 2 {
		t.Fatalf("capacity=%d free=%d pending=%d", m.Capacity(), m.Free(), m.PendingDrain())
	}
	if m.EventualCapacity() != 5 {
		t.Fatalf("eventual capacity = %d, want 5", m.EventualCapacity())
	}
	// The finish releases 7; the pending drain absorbs 2 of them.
	m.Finish(j)
	if m.Capacity() != 5 || m.Free() != 5 || m.PendingDrain() != 0 {
		t.Fatalf("after absorption: capacity=%d free=%d pending=%d", m.Capacity(), m.Free(), m.PendingDrain())
	}
}

func TestPendingDrainImpliesNoFree(t *testing.T) {
	m := New(8)
	m.Start(mkJob(1, 5, 0, 100))
	m.Drain(6) // 3 applied, 3 pending
	if m.PendingDrain() > 0 && m.Free() != 0 {
		t.Fatalf("pending=%d with free=%d violates the drain invariant", m.PendingDrain(), m.Free())
	}
}

func TestDrainClampedAtEventualCapacity(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 4, 0, 100))
	m.Drain(8) // 6 applied, 2 pending; eventual 2
	if applied := m.Drain(5); applied != 0 {
		t.Fatalf("over-drain applied %d, want 0", applied)
	}
	if m.EventualCapacity() != 0 || m.PendingDrain() != 4 {
		t.Fatalf("eventual=%d pending=%d, want 0,4 (clamped at zero)", m.EventualCapacity(), m.PendingDrain())
	}
}

func TestRestoreCancelsPendingFirst(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 7, 0, 100))
	m.Drain(5) // 3 applied, 2 pending
	if restored := m.Restore(5); restored != 3 {
		t.Fatalf("restored = %d, want 3 (2 cancel the pending drain)", restored)
	}
	if m.Capacity() != 10 || m.Free() != 3 || m.PendingDrain() != 0 {
		t.Fatalf("capacity=%d free=%d pending=%d after restore", m.Capacity(), m.Free(), m.PendingDrain())
	}
}

func TestRestoreNeverExceedsNominal(t *testing.T) {
	m := New(10)
	m.Drain(4)
	if restored := m.Restore(100); restored != 4 {
		t.Fatalf("restored = %d, want 4", restored)
	}
	if m.Capacity() != 10 || m.Free() != 10 {
		t.Fatalf("capacity=%d free=%d, want 10,10", m.Capacity(), m.Free())
	}
}

func TestReservationPendingDrainAbsorbsEarliestRelease(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 4, 0, 50))  // releases at 50
	m.Start(mkJob(2, 6, 0, 100)) // releases at 100
	m.Drain(4)                   // all busy: 4 pending
	// A 4-wide job: job 1's release at 50 is fully absorbed by the
	// pending drain; only job 2's 6 procs at t=100 count.
	shadow, extra := m.Reservation(10, 4)
	if shadow != 100 || extra != 2 {
		t.Fatalf("shadow=%d extra=%d, want 100,2", shadow, extra)
	}
	// Wider than the eventual capacity (10-4=6): never.
	if shadow, _ := m.Reservation(10, 7); shadow != InfiniteTime {
		t.Fatalf("job wider than eventual capacity got shadow %d", shadow)
	}
}

func TestReservationAfterAppliedDrain(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 6, 0, 80))
	m.Drain(4) // applied immediately (4 idle)
	// 6 procs become available only when job 1 releases at 80.
	shadow, extra := m.Reservation(0, 6)
	if shadow != 80 || extra != 0 {
		t.Fatalf("shadow=%d extra=%d, want 80,0", shadow, extra)
	}
}

func TestProfileFromMachineUnderPendingDrain(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 4, 0, 50))
	m.Start(mkJob(2, 6, 0, 100))
	m.Drain(4)
	p := ProfileFromMachine(m, 10)
	if p.Total() != 6 {
		t.Fatalf("profile capacity = %d, want eventual 6", p.Total())
	}
	if p.AvailableAt(10) != 0 {
		t.Fatalf("available now = %d, want 0", p.AvailableAt(10))
	}
	if p.AvailableAt(50) != 0 {
		t.Fatalf("available at 50 = %d, want 0 (release absorbed by drain)", p.AvailableAt(50))
	}
	if p.AvailableAt(100) != 6 {
		t.Fatalf("available at 100 = %d, want 6", p.AvailableAt(100))
	}
}

func TestProfileFromMachineFullyDrained(t *testing.T) {
	m := New(10)
	m.Start(mkJob(1, 10, 0, 50))
	m.Drain(10) // everything pending
	p := ProfileFromMachine(m, 0)
	if p.Total() != 0 {
		t.Fatalf("profile capacity = %d, want 0", p.Total())
	}
	if got := p.FindStart(0, 10, 1); got != InfiniteTime {
		t.Fatalf("FindStart on a fully drained machine = %d, want InfiniteTime", got)
	}
}

func TestZeroCapacityProfileOps(t *testing.T) {
	p := NewProfile(5, 0)
	if p.AvailableAt(1000) != 0 {
		t.Fatal("zero-capacity profile should have no availability")
	}
	p.Advance(100)
	q := NewProfile(0, 4)
	q.CopyFrom(p)
	if q.Total() != 0 || q.AvailableAt(200) != 0 {
		t.Fatal("CopyFrom of a zero-capacity profile broken")
	}
}

func TestDrainRestoreRoundTripKeepsViewsConsistent(t *testing.T) {
	m := New(12)
	a := mkJob(1, 5, 0, 40)
	b := mkJob(2, 4, 0, 90)
	m.Start(a)
	m.Start(b)
	m.Drain(6)   // 3 applied, 3 pending
	m.Restore(2) // cancels 2 pending
	m.Finish(a)  // releases 5, absorbs remaining 1 pending
	if m.PendingDrain() != 0 || m.Capacity() != 8 || m.Free() != 4 {
		t.Fatalf("capacity=%d free=%d pending=%d", m.Capacity(), m.Free(), m.PendingDrain())
	}
	// With no pending drain the profile view is the classic one at the
	// reduced capacity.
	p := ProfileFromMachine(m, 10)
	if p.Total() != 8 || p.AvailableAt(10) != 4 || p.AvailableAt(90) != 8 {
		t.Fatalf("profile total=%d now=%d at90=%d", p.Total(), p.AvailableAt(10), p.AvailableAt(90))
	}
	shadow, _ := m.Reservation(10, 8)
	if shadow != 90 {
		t.Fatalf("shadow = %d, want 90", shadow)
	}
}
