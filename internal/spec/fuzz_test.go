package spec

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecYAML throws arbitrary input at the strict YAML-subset parser
// and the schema decoder: malformed input must come back as a positional
// error, never a panic, and whatever decodes must also resolve workload
// configurations without panicking. The checked-in specs seed the
// corpus so the fuzzer starts from every accepted construct.
func FuzzSpecYAML(f *testing.F) {
	specDir := filepath.Join("..", "..", "specs")
	if entries, err := os.ReadDir(specDir); err == nil {
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".yaml" {
				continue
			}
			if b, err := os.ReadFile(filepath.Join(specDir, e.Name())); err == nil {
				f.Add(string(b))
			}
		}
	}
	for _, s := range []string{
		"",
		"kind: campaign\n",
		"kind: robustness\nscenarios:\n  - light\n",
		"workloads:\n  - preset: KTH-SP2\n    jobs: 10\n",
		"triples:\n  - predictor: ml\n    over: sq\n    under: lin\n    weight: largearea\n",
		"stream: true\njobs: 5\n",
		"output:\n  tables: [1, 6]\n  figures: [3]\n",
		"clusters:\n  - 100\n  - 64x1.5\n  - slow=32x0.5\nrouting: least-loaded\n",
		"clusters:\n  - name: big\n    procs: 200\n    speed: 2.0\nrouting:\n  - round-robin\n  - spillover\n",
		"clusters:\n  - 0x\nrouting: []\n",
		"trace:\n  file: run-trace.jsonl\n  profile: true\n",
		"trace:\n  file: \"\"\n",
		"trace: on\n",
		"kind: robustness\ntrace:\n  profile: false\noutput:\n  perf: true\n",
		"workloads:\n  - preset: KTH-SP2\n    clients:\n      - name: a\n        fraction: 0.5\n      - fraction: 0.5\n        arrival: gamma\n        shape: 0.7\n",
		"workloads:\n  - preset: KTH-SP2\n    clients:\n      - fraction: 1\n        envelope: [1, 0]\n        envelope_period: 3600\n        users: 3\n        runtime_log_mean: 8\n",
		"shards: 2\nstream: true\n",
		"serve:\n  addr: 127.0.0.1:9090\n  max_procs: 128\n  scale: 100\n  triple: easy\n  clients: [batch, interactive]\n",
		"serve:\n  max_procs: 64\n  triple:\n    predictor: ml\n    over: sq\n",
		"serve:\n  max_procs: 0\n",
		"a:\n - b\n -   c: [1, \"two\", 3]\n",
		"include: other.yaml\n",
		"\t\n: :\n- -\n",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		tree, err := parseYAML("fuzz.yaml", data)
		if err != nil || tree == nil {
			return
		}
		s := &Spec{Path: "fuzz.yaml"}
		if err := s.decode(tree); err != nil {
			return
		}
		// A spec that decodes must resolve (or reject) its workload set
		// without panicking; generation is deliberately not exercised.
		_, _ = s.WorkloadConfigs()
	})
}
