package spec

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestServeSpec decodes a full serve section.
func TestServeSpec(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "serve.yaml", `
serve:
  addr: 127.0.0.1:9090
  max_procs: 128
  scale: 100
  triple: easy
  clients: [batch, interactive]
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := s.Serve
	if srv == nil {
		t.Fatal("serve section not decoded")
	}
	if srv.Addr != "127.0.0.1:9090" || srv.MaxProcs != 128 || srv.Scale != 100 {
		t.Fatalf("serve decoded wrong: %+v", srv)
	}
	if srv.Triple.Name() != core.EASY().Name() {
		t.Fatalf("triple %q, want %q", srv.Triple.Name(), core.EASY().Name())
	}
	if !reflect.DeepEqual(srv.Clients, []string{"batch", "interactive"}) {
		t.Fatalf("clients %v", srv.Clients)
	}
}

// TestServeSpecDefaults checks the minimal section: only max_procs is
// required.
func TestServeSpecDefaults(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "serve.yaml", "serve:\n  max_procs: 64\n")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := s.Serve
	if srv.Addr != "localhost:8080" || srv.Scale != 0 || srv.Clients != nil {
		t.Fatalf("defaults wrong: %+v", srv)
	}
	if srv.Triple.Name() != core.EASYPlusPlus().Name() {
		t.Fatalf("default triple %q", srv.Triple.Name())
	}
}

// TestServeSpecStructuredTriple reuses the structured-triple decoder.
func TestServeSpecStructuredTriple(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "serve.yaml", `
serve:
  max_procs: 64
  triple:
    predictor: ml
    over: sq
    under: lin
    weight: largearea
    corrector: incremental
    backfill: sjbf
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Serve.Triple.Name() != core.PaperBest().Name() {
		t.Fatalf("structured triple %q, want %q", s.Serve.Triple.Name(), core.PaperBest().Name())
	}
}

// TestServeSpecErrors pins the section's rejection surface.
func TestServeSpecErrors(t *testing.T) {
	loadErr(t, "serve:\n  addr: x\n", "serve needs max_procs", "")
	loadErr(t, "serve:\n  max_procs: 0\n", "max_procs must be positive", "2")
	loadErr(t, "serve:\n  max_procs: 64\n  scale: -1\n", "scale must be >= 0", "3")
	loadErr(t, "serve:\n  max_procs: 64\n  triple: campaign-grid\n", "serve needs exactly one", "3")
	loadErr(t, "serve:\n  max_procs: 64\n  triple: eazy\n", `unknown triple "eazy"`, "3")
	loadErr(t, "serve:\n  max_procs: 64\n  clients: []\n", "clients must be a non-empty list", "3")
	loadErr(t, "serve:\n  max_procs: 64\n  clients: [a, a]\n", `duplicate client "a"`, "3")
	loadErr(t, "serve:\n  max_procs: 64\n  port: 80\n", `unknown field "port"`, "3")
}
