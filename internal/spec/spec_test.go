package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// writeSpec drops a spec file into a temp dir and returns its path.
func writeSpec(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadErr loads a one-off spec and returns the error, which must be
// non-nil and positional (name:line).
func loadErr(t *testing.T, content, wantSub string, wantLine string) {
	t.Helper()
	path := writeSpec(t, t.TempDir(), "bad.yaml", content)
	_, err := Load(path)
	if err == nil {
		t.Fatalf("spec accepted:\n%s", content)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Errorf("error %q does not mention %q", err, wantSub)
	}
	if wantLine != "" && !strings.Contains(err.Error(), "bad.yaml:"+wantLine+":") {
		t.Errorf("error %q not positioned at bad.yaml:%s", err, wantLine)
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	loadErr(t, "kind: campaign\nworklads: []\n", `unknown field "worklads"`, "2")
	loadErr(t, "output:\n  journel: x.jsonl\n", `unknown field "journel"`, "2")
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    job: 10\n", `unknown field "job"`, "3")
	loadErr(t, `
kind: robustness
scenarios:
  - name: s
    windows: 1
    drain_frac: 0.5
`, `unknown field "drain_frac"`, "6")
}

func TestBadNamesArePositional(t *testing.T) {
	loadErr(t, "kind: robustness\nscenarios:\n  - extreme\n", `unknown intensity "extreme"`, "3")
	loadErr(t, `
kind: robustness
scenarios:
  - intensity: hvy
`, `unknown intensity "hvy"`, "4")
	loadErr(t, "triples:\n  - eazy\n", `unknown triple "eazy"`, "2")
	loadErr(t, "triples:\n  - predictor: psychic\n", `unknown predictor "psychic"`, "2")
	loadErr(t, `
triples:
  - predictor: ml
    corrector: wishful
`, `unknown corrector "wishful"`, "4")
	loadErr(t, "workloads:\n  - preset: KTH-SP3\n", `unknown preset "KTH-SP3"`, "2")
	loadErr(t, "kind: tournament\n", `unknown kind "tournament"`, "1")
}

func TestValueValidation(t *testing.T) {
	loadErr(t, "jobs: -5\n", "jobs must be >= 0", "1")
	loadErr(t, "seed: many\n", "unsigned integer", "1")
	loadErr(t, "repeats: 3\n", "repeats only applies to robustness", "1")
	loadErr(t, "scenarios:\n  - light\n", "scenarios only apply to robustness", "2")
	loadErr(t, "output:\n  tables: [2]\n", "unknown tables entry 2", "2")
	loadErr(t, "kind: robustness\noutput:\n  tables: [1]\n", "tables only apply to campaign", "3")
	loadErr(t, `
kind: robustness
scenarios:
  - name: broken
    events:
      - at: 10
        action: melt
        procs: 4
`, `unknown action "melt"`, "7")
}

func TestTraceBlock(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "traced.yaml", `
kind: campaign
jobs: 100
trace:
  file: run-trace.jsonl
  profile: true
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trace.File != "run-trace.jsonl" || !s.Trace.Profile {
		t.Fatalf("trace block misdecoded: %+v", s.Trace)
	}
	// The -trace flag is the outermost override layer.
	override := "elsewhere.jsonl"
	s.Apply(Overrides{Trace: &override})
	if s.Trace.File != "elsewhere.jsonl" || !s.Trace.Profile {
		t.Fatalf("trace override misapplied: %+v", s.Trace)
	}
}

func TestTraceBlockValidation(t *testing.T) {
	loadErr(t, "trace:\n  flie: x.jsonl\n", `unknown field "flie"`, "2")
	loadErr(t, "trace:\n  file: \"\"\n", "expected a non-empty string", "2")
	loadErr(t, "trace:\n  profile: yes-please\n", "expected true or false", "2")
	loadErr(t, "trace: on\n", "trace must be a mapping", "1")
}

// TestUnbalancedScriptRejected: the balance check needs the resolved
// machines, so it fires in WorkloadConfigs, naming scenario and machine.
func TestUnbalancedScriptRejected(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "unbalanced.yaml", `
kind: robustness
jobs: 100
workloads:
  - KTH-SP2
scenarios:
  - name: blackout
    events:
      - at: 10
        action: drain
        procs: 4
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.WorkloadConfigs()
	if err == nil || !strings.Contains(err.Error(), "does not restore its drains") {
		t.Fatalf("unbalanced script not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), "blackout") || !strings.Contains(err.Error(), "KTH-SP2") {
		t.Errorf("error %q does not name scenario and machine", err)
	}
}

func TestIncludeCycleDetected(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "a.yaml", "include: b.yaml\n")
	writeSpec(t, dir, "b.yaml", "include: a.yaml\n")
	_, err := Load(filepath.Join(dir, "a.yaml"))
	if err == nil || !strings.Contains(err.Error(), "include cycle") {
		t.Fatalf("cycle not detected: %v", err)
	}
	// Self-include is the smallest cycle.
	writeSpec(t, dir, "self.yaml", "include: self.yaml\n")
	_, err = Load(filepath.Join(dir, "self.yaml"))
	if err == nil || !strings.Contains(err.Error(), "include cycle") {
		t.Fatalf("self-cycle not detected: %v", err)
	}
}

// TestOverridePrecedence pins the chain flags > spec > include on a
// field-by-field basis, including nested output merging and wholesale
// list replacement.
func TestOverridePrecedence(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "base.yaml", `
kind: robustness
seed: 7
jobs: 1000
triples:
  - easy
  - easy++
output:
  journal: base.jsonl
  perf: true
`)
	path := writeSpec(t, dir, "top.yaml", `
include: base.yaml
jobs: 300
triples:
  - paper-best
output:
  journal: top.jsonl
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Spec beats include; untouched include fields survive.
	if s.Jobs != 300 {
		t.Errorf("jobs = %d, want 300 (spec over include)", s.Jobs)
	}
	if s.Seed != 7 {
		t.Errorf("seed = %d, want 7 (inherited from include)", s.Seed)
	}
	if len(s.Triples) != 1 || s.Triples[0].Name() != core.PaperBest().Name() {
		t.Errorf("triples not replaced wholesale: %d entries", len(s.Triples))
	}
	if s.Output.Journal != "top.jsonl" {
		t.Errorf("journal = %q, want top.jsonl", s.Output.Journal)
	}
	if !s.Output.Perf {
		t.Error("perf lost in nested output merge")
	}
	// Flags beat both.
	jobs, seed := 50, uint64(99)
	s.Apply(Overrides{Jobs: &jobs, Seed: &seed})
	if s.Jobs != 50 || s.Seed != 99 {
		t.Errorf("flag overrides not applied: jobs=%d seed=%d", s.Jobs, s.Seed)
	}
}

// TestFlagJobsOverridesPerWorkloadScaling: -jobs rescales even entries
// that pinned their own jobs in the spec, matching flag-only behaviour.
func TestFlagJobsOverridesPerWorkloadScaling(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "s.yaml", `
workloads:
  - preset: KTH-SP2
    jobs: 500
  - preset: CTC-SP2
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := 120
	s.Apply(Overrides{Jobs: &jobs})
	cfgs, err := s.WorkloadConfigs()
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if cfg.Jobs != 120 {
			t.Errorf("%s scaled to %d jobs, want 120", cfg.Name, cfg.Jobs)
		}
	}
}

func TestIncludeChainPositions(t *testing.T) {
	// An error in an included file must point into that file.
	dir := t.TempDir()
	writeSpec(t, dir, "broken-base.yaml", "kind: robustness\ntriples:\n  - nope\n")
	path := writeSpec(t, dir, "top.yaml", "include: broken-base.yaml\njobs: 10\n")
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "broken-base.yaml:3:") {
		t.Fatalf("error not positioned in the included file: %v", err)
	}
}

func TestDefaultsAndCounts(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "minimal.yaml", "kind: robustness\njobs: 100\n")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 1 || s.Repeats != 1 {
		t.Errorf("defaults: seed=%d repeats=%d", s.Seed, s.Repeats)
	}
	if s.TripleCount() != 5 || s.ScenarioCount() != 4 {
		t.Errorf("default axes: triples=%d scenarios=%d", s.TripleCount(), s.ScenarioCount())
	}
	cfgs, err := s.WorkloadConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 6 {
		t.Errorf("default workloads = %d, want the six presets", len(cfgs))
	}
}

// TestCheckedInSpecsResolve keeps every file under specs/ loadable and
// resolvable — the same guarantee the CI spec-smoke step enforces with
// `campaign -spec ... -validate`.
func TestCheckedInSpecsResolve(t *testing.T) {
	matches, err := filepath.Glob("../../specs/*.yaml")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checked-in specs found: %v", err)
	}
	for _, path := range matches {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := s.WorkloadConfigs(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// TestNightlyIncludesRobustness pins the checked-in include chain.
func TestNightlyIncludesRobustness(t *testing.T) {
	s, err := Load("../../specs/nightly.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "robustness" {
		t.Errorf("kind = %q", s.Kind)
	}
	if s.Jobs != 800 || s.Repeats != 2 {
		t.Errorf("overrides not applied: jobs=%d repeats=%d", s.Jobs, s.Repeats)
	}
	if len(s.Triples) != 5 {
		t.Errorf("inherited triples = %d, want 5", len(s.Triples))
	}
	if s.Output.Journal == "" || !s.Output.Resume {
		t.Errorf("nightly journal settings missing: %+v", s.Output)
	}
}
