package spec

import (
	"reflect"
	"testing"
)

// The clients: block — schema decoding on both workload forms,
// validation surfaced positionally, and passthrough into resolution
// and generation. docs/WORKLOADS.md documents the schema these tests
// pin.

const clientsSpec = `
kind: campaign
jobs: 120
workloads:
  - preset: KTH-SP2
    clients:
      - name: web
        fraction: 0.75
        arrival: poisson
      - fraction: 0.25
        arrival: gamma
        shape: 0.4
        envelope: [1, 0.5, 0]
        envelope_period: 7200
        users: 9
        runtime_log_mean: 8.5
        runtime_log_sigma: 1.2
        class_sigma: 0.3
        serial_fraction: 0.5
        max_job_procs_fraction: 0.25
`

func TestClientsDecode(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "clients.yaml", clientsSpec)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads) != 1 || len(s.Workloads[0].Clients) != 2 {
		t.Fatalf("decoded %d workloads / clients %v", len(s.Workloads), s.Workloads)
	}
	c0, c1 := s.Workloads[0].Clients[0], s.Workloads[0].Clients[1]
	if c0.Name != "web" || c0.Fraction != 0.75 || c0.Arrival != "poisson" {
		t.Fatalf("first client decoded as %+v", c0)
	}
	if c1.Name != "" || c1.Fraction != 0.25 || c1.Arrival != "gamma" || c1.Shape != 0.4 {
		t.Fatalf("second client decoded as %+v", c1)
	}
	if !reflect.DeepEqual(c1.Envelope, []float64{1, 0.5, 0}) || c1.EnvelopePeriod != 7200 || c1.Users != 9 {
		t.Fatalf("second client envelope decoded as %+v", c1)
	}
	for name, p := range map[string]*float64{
		"runtime_log_mean": c1.RuntimeLogMean, "runtime_log_sigma": c1.RuntimeLogSigma,
		"class_sigma": c1.ClassSigma, "serial_fraction": c1.SerialFraction,
		"max_job_procs_fraction": c1.MaxJobProcsFraction,
	} {
		if p == nil {
			t.Fatalf("override %s not decoded", name)
		}
	}
	if *c1.RuntimeLogMean != 8.5 || *c1.SerialFraction != 0.5 || *c1.MaxJobProcsFraction != 0.25 {
		t.Fatalf("override values wrong: %+v", c1)
	}
	// The overrides must be distinct allocations, not five views of one
	// loop variable.
	if c1.RuntimeLogMean == c1.RuntimeLogSigma || *c1.RuntimeLogSigma != 1.2 || *c1.ClassSigma != 0.3 {
		t.Fatalf("override pointers alias: %+v", c1)
	}
}

func TestClientsDecodeErrors(t *testing.T) {
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    clients: 3\n", "clients must be a list", "3")
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    clients: []\n", "must not be empty", "3")
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    clients:\n      - arrival: poisson\n", "needs a fraction", "4")
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    clients:\n      - fraction: 1\n        burst: 2\n", `unknown field "burst"`, "")
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    clients:\n      - name: x\n        fraction: 1\n      - name: x\n        fraction: 1\n", "duplicate client name", "4")
	loadErr(t, "workloads:\n  - preset: KTH-SP2\n    clients:\n      - fraction: 1\n        arrival: fractal\n", "unknown arrival process", "4")
}

// TestClientsOnConfigForm: the clients block rides on inline config
// workloads exactly as on presets.
func TestClientsOnConfigForm(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "inline.yaml", `
kind: campaign
workloads:
  - name: micro
    config:
      max_procs: 48
      jobs: 150
      users: 24
      user_zipf_exponent: 1.1
      classes_per_user: 3
      runtime_log_mean: 7.6
      runtime_log_sigma: 1.5
      class_sigma: 0.4
      max_runtime: 43200
      serial_fraction: 0.3
      max_job_procs_fraction: 1.0
      target_load: 1.0
      default_walltime: 14400
      default_walltime_frac: 0.1
      overestimate_shape: 2.0
      min_request: 1800
      kill_fraction: 0.05
      crash_fraction: 0.03
      session_stickiness: 0.4
      burst_fraction: 0.5
      burst_gap: 120
      class_stickiness: 0.6
      seed: 0x5eed
    clients:
      - name: a
        fraction: 2
      - name: b
        fraction: 1
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.ResolvedWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Clients) != 2 || rs[0].Config.Name != "micro" {
		t.Fatalf("resolved %+v", rs)
	}
	ws, err := s.GenerateWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || !reflect.DeepEqual(ws[0].Clients, []string{"a", "b"}) {
		t.Fatalf("generated workload clients %v, want [a b]", ws[0].Clients)
	}
	if len(ws[0].Jobs) != 150 {
		t.Fatalf("generated %d jobs, want 150", len(ws[0].Jobs))
	}
}

// TestResolvedWorkloadsCarriesClients: resolution keeps the clients
// attached to their entry while WorkloadConfigs (the configs-only view)
// still resolves the same set.
func TestResolvedWorkloadsCarriesClients(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "clients.yaml", clientsSpec)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := s.ResolvedWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Clients) != 2 {
		t.Fatalf("resolved %+v", rs)
	}
	if rs[0].Config.Jobs != 120 {
		t.Fatalf("spec scaling ignored: %d jobs", rs[0].Config.Jobs)
	}
	cfgs, err := s.WorkloadConfigs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || cfgs[0].Name != rs[0].Config.Name {
		t.Fatalf("WorkloadConfigs diverged from ResolvedWorkloads: %+v", cfgs)
	}
}

// TestShardsTopLevel: regression — shards: was read by the resolver but
// missing from the top-level key whitelist, so any spec using it was
// rejected as an unknown field.
func TestShardsTopLevel(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "sharded.yaml", `
kind: campaign
jobs: 50
stream: true
shards: 2
clusters:
  - 100
  - 64x1.5
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards != 2 {
		t.Fatalf("shards decoded as %d, want 2", s.Shards)
	}
}
