package spec

import (
	"strings"
	"testing"
)

// TestClustersDecode covers both entry forms — flag-syntax scalars and
// mappings — plus normalization (auto-names, validation).
func TestClustersDecode(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "fed.yaml", `
clusters:
  - 100
  - 64x1.5
  - slow=32x0.5
  - name: tiny
    procs: 16
    speed: 2.0
routing:
  - round-robin
  - least-loaded
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Federated() {
		t.Fatal("spec not federated")
	}
	if len(s.Clusters) != 4 {
		t.Fatalf("got %d clusters, want 4", len(s.Clusters))
	}
	wantNames := []string{"c0", "c1", "slow", "tiny"}
	wantProcs := []int64{100, 64, 32, 16}
	wantSpeed := []float64{1.0, 1.5, 0.5, 2.0}
	for i, c := range s.Clusters {
		if c.Name != wantNames[i] || c.Procs != wantProcs[i] || c.SpeedFactor() != wantSpeed[i] {
			t.Errorf("cluster %d = %+v, want %s=%dx%v", i, c, wantNames[i], wantProcs[i], wantSpeed[i])
		}
	}
	feds := s.Federations()
	if len(feds) != 2 {
		t.Fatalf("got %d federations, want 2", len(feds))
	}
	if feds[0].Routing != "round-robin" || feds[1].Routing != "least-loaded" {
		t.Errorf("routing axis = %q, %q", feds[0].Routing, feds[1].Routing)
	}
}

// TestRoutingScalarAndDefault: a bare routing scalar works, and a
// clusters-only spec defaults to one round-robin federation.
func TestRoutingScalarAndDefault(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "scalar.yaml", "clusters:\n  - 100\nrouting: spillover\n")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Routings) != 1 || s.Routings[0] != "spillover" {
		t.Fatalf("routings = %v", s.Routings)
	}

	path = writeSpec(t, t.TempDir(), "default.yaml", "clusters:\n  - 100\n  - 50\n")
	s, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	feds := s.Federations()
	if len(feds) != 1 || feds[0].Routing != "round-robin" {
		t.Fatalf("default federation = %+v, want one round-robin", feds)
	}
}

// TestClustersValidation pins the positional rejections of the
// federation keys.
func TestClustersValidation(t *testing.T) {
	loadErr(t, "kind: robustness\nclusters:\n  - 100\n", "clusters only apply to campaign", "3")
	loadErr(t, "routing: round-robin\n", "routing needs clusters", "1")
	loadErr(t, "clusters: []\n", "clusters must not be empty", "1")
	loadErr(t, "clusters:\n  - 100\nrouting: shortest-queue-first\n", `unknown routing policy "shortest-queue-first"`, "3")
	loadErr(t, "clusters:\n  - 100\nrouting:\n  - spillover\n  - spillover\n", `duplicate routing policy "spillover"`, "5")
	loadErr(t, "clusters:\n  - 0\n", "must be positive", "2")
	loadErr(t, "clusters:\n  - 100xfast\n", "bad speed factor", "2")
	loadErr(t, "clusters:\n  - a=100\n  - a=50\n", `duplicate cluster name "a"`, "2")
	loadErr(t, "clusters:\n  - name: x\n", "needs procs", "2")
	loadErr(t, "clusters:\n  - procs: 100\n    nodes: 4\n", `unknown field "nodes"`, "3")
	loadErr(t, "clusters:\n  - procs: 100\n    speed: -1\n", "speed factor -1 must be positive", "3")
}

// TestClustersIncludeMerge: the federation axes obey the same wholesale
// list-replacement semantics as every other spec list.
func TestClustersIncludeMerge(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "base.yaml", "clusters:\n  - 100\n  - 100\nrouting:\n  - round-robin\n  - spillover\n")
	path := writeSpec(t, dir, "top.yaml", "include: base.yaml\nclusters:\n  - big=200\n")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Clusters) != 1 || s.Clusters[0].Name != "big" {
		t.Fatalf("clusters not replaced wholesale: %+v", s.Clusters)
	}
	if len(s.Routings) != 2 {
		t.Fatalf("inherited routings = %v, want 2 from the include", s.Routings)
	}
}

// TestCheckedInFederatedSpec pins the walkthrough spec's shape.
func TestCheckedInFederatedSpec(t *testing.T) {
	s, err := Load("../../specs/federated.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Federated() {
		t.Fatal("specs/federated.yaml is not federated")
	}
	if len(s.Federations()) < 2 {
		t.Errorf("want at least two routing policies, got %v", s.Routings)
	}
	var widest int64
	for _, c := range s.Clusters {
		if c.Procs > widest {
			widest = c.Procs
		}
	}
	if widest < 100 {
		t.Errorf("widest cluster %d procs; the KTH-SP2 preset needs >= 100", widest)
	}
	if s.Output.Journal == "" || !s.Output.Resume {
		t.Errorf("federated spec should journal and resume: %+v", s.Output)
	}
	fc := s.FederatedCampaign(nil)
	if len(fc.Federations) != len(s.Routings) || fc.Seed != s.Seed {
		t.Errorf("FederatedCampaign wiring: %+v", fc)
	}
	if !strings.Contains(s.Path, "federated.yaml") {
		t.Errorf("path = %q", s.Path)
	}
}
