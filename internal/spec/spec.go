// Package spec is the declarative experiment-spec subsystem: one YAML
// file describes a full experiment — workloads (named presets, scaled,
// or inline generator configs), heuristic triples, disruption scenarios,
// grid dimensions (seed, repeats) and output settings — and resolves
// into the existing campaign/workload/scenario structures without
// duplicating their logic. Specs compose: `include` pulls in a base
// spec (the nightly spec extends the default robustness sweep this
// way), with the including file's fields overriding the included ones;
// command-line flags override both. Validation is strict — unknown
// fields, bad names and malformed values are rejected with
// file:line-positional errors.
//
// The accepted format is a strict YAML subset parsed by this package
// (see yaml.go); the workload and clients schema is documented in
// docs/WORKLOADS.md, the rest in the repository README, and both are
// exercised by the canonical files under specs/.
package spec

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Spec is a loaded, validated experiment spec, still cheap: workloads
// are held as generator configurations, not generated traces, so a
// dry-run validation (or gentrace) never pays for trace generation.
// The scaling fields (Jobs, Seed, Parallelism, Output) may be
// overridden by command-line flags between Load and Workloads.
type Spec struct {
	// Path is the file the spec was loaded from.
	Path string
	// Kind selects the grid: "campaign" (the paper tables) or
	// "robustness" (the disruption sweep).
	Kind string
	// Seed is the grid base seed.
	Seed uint64
	// Repeats reruns the robustness grid under derived seeds and
	// averages cells (always 1 for campaign grids).
	Repeats int
	// Jobs is the default per-preset scaling (0 = full Table-4 sizes).
	Jobs int
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Stream runs every cell on the bounded-memory engine (see
	// campaign.Campaign.Stream): same tables, O(live jobs) per cell.
	Stream bool
	// Shards runs each streaming federated cell on the parallel sharded
	// driver with this many per-cluster event loops (see
	// campaign.FederatedCampaign.Shards). 0 = sequential; requires
	// stream: true and a federated (clusters) grid.
	Shards int
	// Workloads are the grid's inputs.
	Workloads []WorkloadSpec
	// Triples is the heuristic-triple set (nil = the kind's default).
	Triples []core.Triple
	// Scenarios are the robustness columns (nil = the default ladder).
	Scenarios []campaign.Scenario
	// Clusters describes a federated platform (campaign kind only;
	// nil = classic single-machine runs on each workload's own machine).
	Clusters []platform.Cluster
	// Routings lists the routing policies to grid over when Clusters is
	// set (nil = round-robin).
	Routings []string
	// Output carries journaling and report settings.
	Output Output
	// Trace carries the flight-recorder settings.
	Trace Trace
	// Serve carries the live-daemon settings (nil = no serve section).
	Serve *Serve
}

// Serve is the spec's serve section: the configuration cmd/schedd
// -spec reads to start a live scheduling daemon.
type Serve struct {
	// Addr is the HTTP listen address (default "localhost:8080").
	Addr string
	// MaxProcs is the machine size (required).
	MaxProcs int64
	// Scale is the time mode: 0 = virtual time (clients state instants),
	// >0 = scaled wall time, Scale virtual seconds per wall second.
	Scale float64
	// Triple is the heuristic triple the daemon schedules with
	// (default easy++). A named entry must expand to exactly one triple.
	Triple core.Triple
	// Clients names the traffic sources for the per-client metric split.
	Clients []string
}

// Trace is the spec's trace section: the flight-recorder destination
// and the per-stage latency profiling switch (see cmd/campaign -trace
// and the README Observability section).
type Trace struct {
	// File is the structured decision-trace JSONL destination ("" = off).
	File string
	// Profile collects the per-stage latency histograms rendered by the
	// -perf summary (output.perf implies it at the CLI layer).
	Profile bool
}

// WorkloadSpec is one workload entry: a preset reference (optionally
// rescaled or reseeded) or an inline generator config.
type WorkloadSpec struct {
	// Preset names a Table-4 preset; empty means Config is inline.
	Preset string
	// Jobs overrides the spec-level scaling for this entry (-1 = inherit).
	Jobs int
	// Seed overrides the preset's generator seed (0 = keep).
	Seed uint64
	// Config is the inline generator configuration (Preset == "").
	Config *workload.Config
	// Clients is the entry's multi-client decomposition (nil = a single
	// homogeneous population). See docs/WORKLOADS.md for the schema.
	Clients []workload.Client
}

// Output is the spec's output section plus rendering selections.
type Output struct {
	// Journal is the JSONL result-journal path ("" = none).
	Journal string
	// Resume skips cells already recorded in the journal.
	Resume bool
	// Perf prints the per-workload performance counters.
	Perf bool
	// Tables and Figures select paper tables/figures (campaign kind;
	// both empty = all).
	Tables  []int
	Figures []int
}

// Overrides carries command-line overrides applied on top of a loaded
// spec — the outermost layer of the precedence chain flags > spec >
// include. Nil pointer fields leave the spec's value in place.
type Overrides struct {
	Jobs        *int
	Seed        *uint64
	Parallelism *int
	Stream      *bool
	Shards      *int
	Journal     *string
	Resume      *bool
	Perf        *bool
	Tables      []int
	Figures     []int
	// Clusters and Routings replace the spec's federation axis wholesale
	// (non-nil slices override, matching the list-merge semantics).
	Clusters []platform.Cluster
	Routings []string
	// Trace overrides the spec's trace.file destination.
	Trace *string
}

// Apply overlays the overrides onto the spec.
func (s *Spec) Apply(o Overrides) {
	if o.Jobs != nil {
		s.Jobs = *o.Jobs
		// The spec-level scaling now speaks for every preset entry:
		// a -jobs flag rescales the whole grid, as it does without -spec.
		for i := range s.Workloads {
			if s.Workloads[i].Preset != "" {
				s.Workloads[i].Jobs = -1
			}
		}
	}
	if o.Seed != nil {
		s.Seed = *o.Seed
	}
	if o.Parallelism != nil {
		s.Parallelism = *o.Parallelism
	}
	if o.Stream != nil {
		s.Stream = *o.Stream
	}
	if o.Shards != nil {
		s.Shards = *o.Shards
	}
	if o.Journal != nil {
		s.Output.Journal = *o.Journal
	}
	if o.Resume != nil {
		s.Output.Resume = *o.Resume
	}
	if o.Perf != nil {
		s.Output.Perf = *o.Perf
	}
	if len(o.Tables) > 0 {
		s.Output.Tables = o.Tables
	}
	if len(o.Figures) > 0 {
		s.Output.Figures = o.Figures
	}
	if len(o.Clusters) > 0 {
		s.Clusters = o.Clusters
	}
	if len(o.Routings) > 0 {
		s.Routings = o.Routings
	}
	if o.Trace != nil {
		s.Trace.File = *o.Trace
	}
}

// Load reads, composes (resolving includes) and validates a spec file.
func Load(path string) (*Spec, error) {
	tree, err := loadTree(path, nil)
	if err != nil {
		return nil, err
	}
	s := &Spec{Path: path}
	if err := s.decode(tree); err != nil {
		return nil, err
	}
	return s, nil
}

// loadTree parses path and merges its include chain, detecting cycles.
// stack holds the absolute paths currently being loaded.
func loadTree(path string, stack []string) (*node, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	for _, seen := range stack {
		if seen == abs {
			return nil, fmt.Errorf("spec: include cycle: %s includes itself (chain: %s)", path, chain(stack, abs))
		}
	}
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	tree, err := parseYAML(path, string(content))
	if err != nil {
		return nil, err
	}

	inc := tree.at("include")
	if inc == nil {
		return tree, nil
	}
	var paths []*node
	switch inc.kind {
	case kindScalar:
		paths = []*node{inc}
	case kindList:
		paths = inc.items
	default:
		return nil, inc.errf("include must be a path or a list of paths")
	}
	// Later includes override earlier ones; the including file
	// overrides them all.
	var base *node
	for _, p := range paths {
		if p.kind != kindScalar || p.scalar == "" {
			return nil, p.errf("include entries must be file paths")
		}
		child, err := loadTree(filepath.Join(filepath.Dir(path), p.scalar), append(stack, abs))
		if err != nil {
			return nil, err
		}
		base = mergeTree(base, child)
	}
	delete(tree.fields, "include")
	tree.keys = deleteKey(tree.keys, "include")
	return mergeTree(base, tree), nil
}

func chain(stack []string, last string) string {
	s := ""
	for _, p := range stack {
		s += filepath.Base(p) + " -> "
	}
	return s + filepath.Base(last)
}

func deleteKey(keys []string, key string) []string {
	out := keys[:0]
	for _, k := range keys {
		if k != key {
			out = append(out, k)
		}
	}
	return out
}

// mergeTree overlays over on base: mappings merge key-wise
// (recursively), everything else — scalars and lists — is replaced
// wholesale. Replacing lists keeps override semantics predictable: an
// overriding spec states its full workload/triple/scenario set rather
// than appending to an invisible one.
func mergeTree(base, over *node) *node {
	if base == nil {
		return over
	}
	if over == nil {
		return base
	}
	if base.kind != kindMap || over.kind != kindMap {
		return over
	}
	merged := &node{file: over.file, line: over.line, kind: kindMap,
		fields: map[string]*node{}, keyLines: map[string]int{}}
	for _, k := range base.keys {
		merged.keys = append(merged.keys, k)
		merged.fields[k] = base.fields[k]
		merged.keyLines[k] = base.keyLines[k]
	}
	for _, k := range over.keys {
		if prev, ok := merged.fields[k]; ok {
			merged.fields[k] = mergeTree(prev, over.fields[k])
		} else {
			merged.keys = append(merged.keys, k)
			merged.fields[k] = over.fields[k]
		}
		merged.keyLines[k] = over.keyLines[k]
	}
	return merged
}

// ResolvedWorkload pairs a resolved generator configuration with its
// multi-client decomposition (nil Clients = single population).
type ResolvedWorkload struct {
	Config  workload.Config
	Clients []workload.Client
}

// ResolvedWorkloads resolves the workload entries into generator
// configurations plus their clients blocks, applying the spec-level
// scaling (after any flag overrides), and cross-validates the scenario
// scripts against each machine they will run on.
func (s *Spec) ResolvedWorkloads() ([]ResolvedWorkload, error) {
	entries := s.Workloads
	if len(entries) == 0 {
		// Default: every Table-4 preset at the spec's scaling.
		for _, name := range workload.PresetNames() {
			entries = append(entries, WorkloadSpec{Preset: name, Jobs: -1})
		}
	}
	rs := make([]ResolvedWorkload, len(entries))
	for i, e := range entries {
		rs[i].Clients = e.Clients
		if e.Preset == "" {
			cfg := *e.Config
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("spec: %s: workload %q: %w", s.Path, cfg.Name, err)
			}
			rs[i].Config = cfg
			continue
		}
		jobs := e.Jobs
		if jobs < 0 {
			jobs = s.Jobs
		}
		cfg, err := workload.Scaled(e.Preset, jobs)
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", s.Path, err)
		}
		if e.Seed != 0 {
			cfg.Seed = e.Seed
		}
		rs[i].Config = cfg
	}
	seen := map[string]bool{}
	for _, r := range rs {
		if seen[r.Config.Name] {
			return nil, fmt.Errorf("spec: %s: duplicate workload name %q", s.Path, r.Config.Name)
		}
		seen[r.Config.Name] = true
	}
	// A fixed script that drains more than it restores would leave jobs
	// stranded and fail mid-grid; reject it per machine up front.
	for _, sc := range s.Scenarios {
		if sc.Script == nil {
			continue
		}
		for _, r := range rs {
			if !sc.Script.Balanced(r.Config.MaxProcs) {
				return nil, fmt.Errorf("spec: %s: scenario %q does not restore its drains on %s (%d processors)",
					s.Path, sc.Script.Name, r.Config.Name, r.Config.MaxProcs)
			}
		}
	}
	return rs, nil
}

// WorkloadConfigs resolves the workload entries into bare generator
// configurations — ResolvedWorkloads without the clients axis, kept for
// callers that only need the configs (validation, gentrace -preset).
func (s *Spec) WorkloadConfigs() ([]workload.Config, error) {
	rs, err := s.ResolvedWorkloads()
	if err != nil {
		return nil, err
	}
	cfgs := make([]workload.Config, len(rs))
	for i := range rs {
		cfgs[i] = rs[i].Config
	}
	return cfgs, nil
}

// GenerateWorkloads resolves and generates the spec's workloads — the
// expensive step a validate-only run skips. Entries with a clients
// block generate through the multi-client merge and carry the client
// names on the returned workload.
func (s *Spec) GenerateWorkloads() ([]*trace.Workload, error) {
	rs, err := s.ResolvedWorkloads()
	if err != nil {
		return nil, err
	}
	ws := make([]*trace.Workload, len(rs))
	for i, r := range rs {
		var w *trace.Workload
		if len(r.Clients) > 0 {
			w, err = workload.GenerateMulti(r.Config, r.Clients)
		} else {
			w, err = workload.Generate(r.Config)
		}
		if err != nil {
			return nil, fmt.Errorf("spec: %s: %w", s.Path, err)
		}
		ws[i] = w
	}
	return ws, nil
}

// Campaign builds the paper-table harness from the spec.
func (s *Spec) Campaign(ws []*trace.Workload) *campaign.Campaign {
	return &campaign.Campaign{
		Workloads:   ws,
		Triples:     s.Triples,
		Parallelism: s.Parallelism,
		Seed:        s.Seed,
		Stream:      s.Stream,
	}
}

// Federated reports whether the spec describes a federated platform.
func (s *Spec) Federated() bool {
	return len(s.Clusters) > 0
}

// Federations expands the clusters/routing axes into the campaign's
// federation axis: one federation per routing policy, all sharing the
// spec's cluster topology. Nil when the spec is single-machine.
func (s *Spec) Federations() []campaign.Federation {
	if !s.Federated() {
		return nil
	}
	routings := s.Routings
	if len(routings) == 0 {
		routings = []string{"round-robin"}
	}
	out := make([]campaign.Federation, len(routings))
	for i, r := range routings {
		out[i] = campaign.Federation{Clusters: s.Clusters, Routing: r}
	}
	return out
}

// FederatedCampaign builds the federated paper-table harness from the
// spec. Callers guard on Federated().
func (s *Spec) FederatedCampaign(ws []*trace.Workload) *campaign.FederatedCampaign {
	return &campaign.FederatedCampaign{
		Workloads:   ws,
		Federations: s.Federations(),
		Triples:     s.Triples,
		Parallelism: s.Parallelism,
		Seed:        s.Seed,
		Stream:      s.Stream,
		Shards:      s.Shards,
	}
}

// Robustness builds the disruption-sweep harness from the spec for one
// repeat (repeat 0 runs at Seed, repeat r at Seed+r).
func (s *Spec) Robustness(ws []*trace.Workload, repeat int) *campaign.Robustness {
	return &campaign.Robustness{
		Workloads:   ws,
		Triples:     s.Triples,
		Scenarios:   s.Scenarios,
		Seed:        s.Seed + uint64(repeat),
		Parallelism: s.Parallelism,
		Stream:      s.Stream,
	}
}

// TripleCount returns the grid's triple-axis size (resolving defaults).
func (s *Spec) TripleCount() int {
	if len(s.Triples) > 0 {
		return len(s.Triples)
	}
	if s.Kind == "robustness" {
		return len(campaign.DefaultRobustnessTriples())
	}
	return len(core.CampaignTriples())
}

// ScenarioCount returns the scenario-axis size (1 for campaign grids).
func (s *Spec) ScenarioCount() int {
	if s.Kind != "robustness" {
		return 1
	}
	if len(s.Scenarios) > 0 {
		return len(s.Scenarios)
	}
	return len(scenario.Intensities)
}
