package spec

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, content string) *node {
	t.Helper()
	n, err := parseYAML("test.yaml", content)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseBasicMapping(t *testing.T) {
	n := mustParse(t, `
kind: robustness
seed: 42
jobs: 1000   # trailing comment
name: "quoted # not a comment"
`)
	cases := map[string]string{
		"kind": "robustness",
		"seed": "42",
		"jobs": "1000",
		"name": "quoted # not a comment",
	}
	for key, want := range cases {
		child := n.at(key)
		if child == nil || child.scalar != want {
			t.Errorf("%s = %+v, want scalar %q", key, child, want)
		}
	}
	if n.at("seed").line != 3 {
		t.Errorf("seed line = %d, want 3", n.at("seed").line)
	}
}

func TestParseNestedBlocks(t *testing.T) {
	n := mustParse(t, `
output:
  journal: out.jsonl
  tables: [1, 6]
workloads:
  - KTH-SP2
  - preset: CTC-SP2
    jobs: 500
  - name: inline
    config:
      max_procs: 64
`)
	if got := n.at("output").at("journal").scalar; got != "out.jsonl" {
		t.Errorf("journal = %q", got)
	}
	tables := n.at("output").at("tables")
	if tables.kind != kindList || len(tables.items) != 2 || tables.items[1].scalar != "6" {
		t.Errorf("tables = %+v", tables)
	}
	ws := n.at("workloads")
	if ws.kind != kindList || len(ws.items) != 3 {
		t.Fatalf("workloads = %+v", ws)
	}
	if ws.items[0].kind != kindScalar || ws.items[0].scalar != "KTH-SP2" {
		t.Errorf("item 0 = %+v", ws.items[0])
	}
	if got := ws.items[1].at("jobs").scalar; got != "500" {
		t.Errorf("item 1 jobs = %q", got)
	}
	if got := ws.items[2].at("config").at("max_procs").scalar; got != "64" {
		t.Errorf("item 2 max_procs = %q", got)
	}
}

func TestParseDeepSequenceItems(t *testing.T) {
	n := mustParse(t, `
scenarios:
  - name: maint
    events:
      - at: 3600
        action: drain
        procs: 8
      - at: 7200
        action: restore
        procs: 8
`)
	events := n.at("scenarios").items[0].at("events")
	if len(events.items) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if got := events.items[1].at("action").scalar; got != "restore" {
		t.Errorf("second action = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, content, wantErr string
	}{
		{"tab", "kind:\tcampaign", "tabs are not allowed"},
		{"flow map", "grid: {a: 1}", "flow mappings"},
		{"block scalar", "doc: |\n  text", "block scalars"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"single quote", "a: 'x'", "single-quoted"},
		{"unterminated", `a: "x`, "unterminated"},
		{"top-level list", "- a\n- b", "top level must be a mapping"},
		{"seq in map", "a: 1\n- b", "sequence item in a mapping"},
		{"bad indent", "a:\n    b: 1\n  c: 2", "unexpected indentation"},
		{"no key", "just words", "expected \"key: value\""},
		{"empty seq item", "a:\n  -", "empty sequence item"},
	}
	for _, c := range cases {
		_, err := parseYAML("bad.yaml", c.content)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
		if !strings.Contains(err.Error(), "bad.yaml:") {
			t.Errorf("%s: error %q lacks a file:line position", c.name, err)
		}
	}
}

func TestParseQuotedEscapes(t *testing.T) {
	n := mustParse(t, `a: "line\nbreak \"quoted\" \\ done"`)
	want := "line\nbreak \"quoted\" \\ done"
	if got := n.at("a").scalar; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestStripComment(t *testing.T) {
	cases := map[string]string{
		"plain # comment":     "plain ",
		"no comment":          "no comment",
		`"a # b": x # real`:   `"a # b": x `,
		"value#notcomment":    "value#notcomment",
		"# full line":         "",
		`key: "x # y" # tail`: `key: "x # y" `,
	}
	for in, want := range cases {
		if got := stripComment(in); got != want {
			t.Errorf("stripComment(%q) = %q, want %q", in, got, want)
		}
	}
}
