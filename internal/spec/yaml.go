package spec

// This file is a hand-rolled parser for the strict YAML subset the
// experiment specs are written in. Supporting full YAML would drag in a
// heavyweight dependency for features specs never use; the subset is
// exactly what the schema needs, and staying hand-rolled lets every
// node carry its file:line position so schema errors point at the
// offending line of the offending file (includes span files).
//
// The subset:
//
//   - block mappings:      key: value   /   key:\n  <indented block>
//   - block sequences:     - value      /   - key: value\n    <more keys>
//   - flow sequences:      [a, b, c]    (scalars only, one line)
//   - scalars:             unquoted (trimmed) or double-quoted with
//     \\ \" \n \t escapes; type conversion happens at decode time
//   - comments:            # to end of line (outside quotes, preceded
//     by start-of-line or whitespace)
//   - indentation:         spaces only; tabs are an error
//
// Not supported (rejected with a positional error where detectable):
// flow mappings {..}, anchors/aliases, multi-document streams, block
// scalars (| and >), and single-quoted strings.

import (
	"fmt"
	"strings"
)

// node is one parsed YAML value. Exactly one of scalar/items/fields is
// meaningful, per kind.
type node struct {
	file string
	line int
	kind nodeKind

	scalar string  // kindScalar
	items  []*node // kindList

	keys     []string         // kindMap, insertion order
	fields   map[string]*node // kindMap
	keyLines map[string]int   // kindMap, line of each key
}

type nodeKind int

const (
	kindScalar nodeKind = iota
	kindList
	kindMap
)

func (k nodeKind) String() string {
	switch k {
	case kindScalar:
		return "scalar"
	case kindList:
		return "list"
	case kindMap:
		return "mapping"
	}
	return "unknown"
}

// errf formats an error anchored at this node's position.
func (n *node) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", n.file, n.line, fmt.Sprintf(format, args...))
}

// at returns the child node of a mapping key, or nil.
func (n *node) at(key string) *node {
	if n == nil || n.kind != kindMap {
		return nil
	}
	return n.fields[key]
}

// srcLine is one logical (non-blank, comment-stripped) input line.
type srcLine struct {
	indent int
	text   string // content after indentation, comments stripped
	num    int    // 1-based line number
}

// parseYAML parses one file's content into a node tree. The top level
// must be a mapping. file is used only for error positions.
func parseYAML(file, content string) (*node, error) {
	lines, err := splitLines(file, content)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return &node{file: file, line: 1, kind: kindMap, fields: map[string]*node{}, keyLines: map[string]int{}}, nil
	}
	p := &parser{file: file, lines: lines}
	root, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%s:%d: unexpected indentation", file, l.num)
	}
	if root.kind != kindMap {
		return nil, root.errf("top level must be a mapping, got a %s", root.kind)
	}
	return root, nil
}

// splitLines strips comments and blanks and records indentation.
func splitLines(file, content string) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(content, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("%s:%d: tabs are not allowed; indent with spaces", file, num)
		}
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		indent := len(text) - len(strings.TrimLeft(text, " "))
		out = append(out, srcLine{indent: indent, text: strings.TrimRight(text[indent:], " "), num: num})
	}
	return out, nil
}

// stripComment removes a trailing # comment that is outside double
// quotes and preceded by whitespace or the start of the line.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped character
			}
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote && (i == 0 || s[i-1] == ' ') {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	file  string
	lines []srcLine
	pos   int
}

// parseBlock parses the run of lines at exactly the given indentation
// (deeper lines belong to children) into a mapping or sequence node.
func (p *parser) parseBlock(indent int) (*node, error) {
	first := p.lines[p.pos]
	if first.indent != indent {
		return nil, fmt.Errorf("%s:%d: unexpected indentation", p.file, first.num)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *parser) parseMapping(indent int) (*node, error) {
	n := &node{file: p.file, line: p.lines[p.pos].num, kind: kindMap,
		fields: map[string]*node{}, keyLines: map[string]int{}}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%s:%d: unexpected indentation", p.file, l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("%s:%d: sequence item in a mapping block", p.file, l.num)
		}
		key, rest, err := splitKey(p.file, l)
		if err != nil {
			return nil, err
		}
		if _, dup := n.fields[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q (first at line %d)", p.file, l.num, key, n.keyLines[key])
		}
		p.pos++
		var val *node
		if rest != "" {
			val, err = p.inlineValue(rest, l.num)
			if err != nil {
				return nil, err
			}
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			val, err = p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
		} else {
			// "key:" with no value and no indented block: empty scalar.
			val = &node{file: p.file, line: l.num, kind: kindScalar}
		}
		n.keys = append(n.keys, key)
		n.fields[key] = val
		n.keyLines[key] = l.num
	}
	return n, nil
}

func (p *parser) parseSequence(indent int) (*node, error) {
	n := &node{file: p.file, line: p.lines[p.pos].num, kind: kindList}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%s:%d: unexpected indentation", p.file, l.num)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, fmt.Errorf("%s:%d: expected a \"- \" sequence item", p.file, l.num)
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		itemIndent := l.indent + 2 // content column of "- x"
		var item *node
		var err error
		switch {
		case rest == "":
			// "-" alone: the item is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("%s:%d: empty sequence item", p.file, l.num)
			}
			item, err = p.parseBlock(p.lines[p.pos].indent)
		case isKeyLine(rest):
			// "- key: value": a mapping whose first key shares the dash
			// line; further keys sit at the content column.
			item, err = p.parseInlineMapItem(l, rest, itemIndent)
		default:
			p.pos++
			item, err = p.inlineValue(rest, l.num)
		}
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// parseInlineMapItem handles "- key: value" (plus any following lines
// indented to the item's content column) as one mapping item.
func (p *parser) parseInlineMapItem(dash srcLine, rest string, itemIndent int) (*node, error) {
	// Rewrite the dash line as a plain mapping line at the content
	// column and let parseMapping consume it plus the following keys.
	p.lines[p.pos] = srcLine{indent: itemIndent, text: rest, num: dash.num}
	return p.parseMapping(itemIndent)
}

// inlineValue parses the value part of "key: value" or "- value": a
// flow sequence or a scalar.
func (p *parser) inlineValue(text string, num int) (*node, error) {
	if strings.HasPrefix(text, "[") {
		return p.flowSequence(text, num)
	}
	if strings.HasPrefix(text, "{") {
		return nil, fmt.Errorf("%s:%d: flow mappings {..} are not supported; use an indented block", p.file, num)
	}
	if strings.HasPrefix(text, "|") || strings.HasPrefix(text, ">") {
		return nil, fmt.Errorf("%s:%d: block scalars (| and >) are not supported", p.file, num)
	}
	s, err := unquote(p.file, num, text)
	if err != nil {
		return nil, err
	}
	return &node{file: p.file, line: num, kind: kindScalar, scalar: s}, nil
}

// flowSequence parses a one-line "[a, b, c]" list of scalars.
func (p *parser) flowSequence(text string, num int) (*node, error) {
	if !strings.HasSuffix(text, "]") {
		return nil, fmt.Errorf("%s:%d: flow sequence must close on the same line", p.file, num)
	}
	n := &node{file: p.file, line: num, kind: kindList}
	inner := strings.TrimSpace(text[1 : len(text)-1])
	if inner == "" {
		return n, nil
	}
	for _, part := range splitFlow(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%s:%d: empty element in flow sequence", p.file, num)
		}
		s, err := unquote(p.file, num, part)
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, &node{file: p.file, line: num, kind: kindScalar, scalar: s})
	}
	return n, nil
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// isKeyLine reports whether text looks like "key:" or "key: value" with
// the colon outside quotes.
func isKeyLine(text string) bool {
	_, _, err := keyColon(text)
	return err == nil
}

// keyColon locates the key/value split: a ':' outside quotes that ends
// the line or is followed by a space.
func keyColon(text string) (key, rest string, err error) {
	inQuote := false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ':':
			if inQuote {
				continue
			}
			if i+1 == len(text) {
				return strings.TrimSpace(text[:i]), "", nil
			}
			if text[i+1] == ' ' {
				return strings.TrimSpace(text[:i]), strings.TrimSpace(text[i+1:]), nil
			}
		}
	}
	return "", "", fmt.Errorf("no key separator")
}

// splitKey applies keyColon to a mapping line with positional errors.
func splitKey(file string, l srcLine) (key, rest string, err error) {
	key, rest, err = keyColon(l.text)
	if err != nil {
		return "", "", fmt.Errorf("%s:%d: expected \"key: value\", got %q", file, l.num, l.text)
	}
	if key == "" {
		return "", "", fmt.Errorf("%s:%d: empty key", file, l.num)
	}
	if strings.HasPrefix(key, "\"") {
		key, err = unquote(file, l.num, key)
		if err != nil {
			return "", "", err
		}
	}
	return key, rest, nil
}

// unquote resolves a scalar token: double-quoted strings lose their
// quotes and escapes; anything else is returned as-is (already
// trimmed). Type interpretation (int, float, bool) is the decoder's
// job, where the expected type is known.
func unquote(file string, num int, s string) (string, error) {
	if strings.HasPrefix(s, "'") {
		return "", fmt.Errorf("%s:%d: single-quoted strings are not supported; use double quotes", file, num)
	}
	if !strings.HasPrefix(s, "\"") {
		return s, nil
	}
	if len(s) < 2 || !strings.HasSuffix(s, "\"") {
		return "", fmt.Errorf("%s:%d: unterminated string %s", file, num, s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			if c == '"' {
				return "", fmt.Errorf("%s:%d: unescaped quote inside string %s", file, num, s)
			}
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("%s:%d: dangling escape in string %s", file, num, s)
		}
		switch body[i] {
		case '\\', '"':
			b.WriteByte(body[i])
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Errorf("%s:%d: unsupported escape \\%c in string %s", file, num, body[i], s)
		}
	}
	return b.String(), nil
}
