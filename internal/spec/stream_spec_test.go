package spec

import (
	"testing"
)

// TestStreamField covers the spec's stream knob: parsing, default,
// validation, carry-through to the harnesses, and the flag override.
func TestStreamField(t *testing.T) {
	dir := t.TempDir()

	path := writeSpec(t, dir, "s.yaml", "kind: campaign\nstream: true\njobs: 50\n")
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stream {
		t.Fatal("stream: true not decoded")
	}
	if c := s.Campaign(nil); !c.Stream {
		t.Fatal("Campaign() dropped Stream")
	}
	if r := s.Robustness(nil, 0); !r.Stream {
		t.Fatal("Robustness() dropped Stream")
	}

	off := false
	s.Apply(Overrides{Stream: &off})
	if s.Stream {
		t.Fatal("flag override -stream=false did not win over the spec")
	}

	path = writeSpec(t, dir, "d.yaml", "kind: campaign\njobs: 50\n")
	s, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stream {
		t.Fatal("stream should default to false")
	}

	loadErr(t, "stream: sometimes\n", "expected true or false", "1")
}

// TestStreamFieldMergesThroughInclude pins include-chain semantics: the
// including file's stream value overrides the included one.
func TestStreamFieldMergesThroughInclude(t *testing.T) {
	dir := t.TempDir()
	writeSpec(t, dir, "base.yaml", "kind: campaign\nstream: true\n")
	top := writeSpec(t, dir, "top.yaml", "include: base.yaml\nstream: false\njobs: 10\n")
	s, err := Load(top)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stream {
		t.Fatal("including file's stream: false should override the include")
	}

	top2 := writeSpec(t, dir, "top2.yaml", "include: base.yaml\njobs: 10\n")
	s, err = Load(top2)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stream {
		t.Fatal("included stream: true should survive when not overridden")
	}
}
