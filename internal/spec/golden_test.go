package spec

import (
	"context"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// flagWorkloads builds workloads exactly as the flag path does:
// workload.Scaled(preset, jobs) then Generate.
func flagWorkloads(t *testing.T, jobs int, names ...string) []*trace.Workload {
	t.Helper()
	var out []*trace.Workload
	for _, n := range names {
		cfg, err := workload.Scaled(n, jobs)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

// TestPaperSpecEqualsFlagInvocation proves `campaign -spec
// specs/paper.yaml` is the same experiment as `campaign -jobs 3000`:
// identical workload configurations (so identical generated traces),
// identical triple grid, identical seed. Byte-identical tables follow
// because report rendering is a pure function of the run results, which
// TestSpecGolden* checks end-to-end at a size CI can afford.
func TestPaperSpecEqualsFlagInvocation(t *testing.T) {
	s, err := Load("../../specs/paper.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "campaign" || s.Seed != 1 || s.Jobs != 3000 {
		t.Fatalf("paper spec drifted from flag defaults: kind=%s seed=%d jobs=%d", s.Kind, s.Seed, s.Jobs)
	}
	cfgs, err := s.WorkloadConfigs()
	if err != nil {
		t.Fatal(err)
	}
	names := workload.PresetNames()
	if len(cfgs) != len(names) {
		t.Fatalf("spec resolves %d workloads, flags use %d", len(cfgs), len(names))
	}
	for i, name := range names {
		want, err := workload.Scaled(name, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if cfgs[i] != want {
			t.Errorf("workload %d: spec config %+v != flag config %+v", i, cfgs[i], want)
		}
	}
	grid := core.CampaignTriples()
	if len(s.Triples) != len(grid) {
		t.Fatalf("spec resolves %d triples, flag grid has %d", len(s.Triples), len(grid))
	}
	for i := range grid {
		if s.Triples[i].Name() != grid[i].Name() {
			t.Errorf("triple %d: %s != %s", i, s.Triples[i].Name(), grid[i].Name())
		}
	}
	if len(s.Output.Tables) != 4 || len(s.Output.Figures) != 3 {
		t.Errorf("paper spec output selection drifted: %+v", s.Output)
	}
}

// TestSpecGoldenCampaignTables runs the same small campaign twice —
// once resolved from a spec file, once built the way the flag path
// builds it — and demands byte-identical rendered tables.
func TestSpecGoldenCampaignTables(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "golden.yaml", `
kind: campaign
seed: 1
jobs: 200
workloads:
  - KTH-SP2
  - CTC-SP2
triples:
  - easy
  - easy++
  - clairvoyant-sjbf
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.GenerateWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	specResults, err := s.Campaign(ws).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	flagC := &campaign.Campaign{
		Workloads: flagWorkloads(t, 200, "KTH-SP2", "CTC-SP2"),
		Triples:   []core.Triple{core.EASY(), core.EASYPlusPlus(), core.ClairvoyantSJBF()},
		Seed:      1,
	}
	flagResults, err := flagC.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := report.Table1(specResults), report.Table1(flagResults); got != want {
		t.Errorf("Table1 differs:\nspec:\n%s\nflags:\n%s", got, want)
	}
	if got, want := report.Table6(specResults), report.Table6(flagResults); got != want {
		t.Errorf("Table6 differs:\nspec:\n%s\nflags:\n%s", got, want)
	}
}

// TestSpecGoldenRobustnessTable does the same for the disruption sweep,
// whose scripts depend on the grid seed — the most fingerprint-sensitive
// path.
func TestSpecGoldenRobustnessTable(t *testing.T) {
	path := writeSpec(t, t.TempDir(), "golden-rob.yaml", `
kind: robustness
seed: 5
jobs: 250
workloads:
  - CTC-SP2
triples:
  - easy
  - easy++
`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.GenerateWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	specResults, err := s.Robustness(ws, 0).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	flagR := &campaign.Robustness{
		Workloads: flagWorkloads(t, 250, "CTC-SP2"),
		Triples:   []core.Triple{core.EASY(), core.EASYPlusPlus()},
		Seed:      5,
	}
	flagResults, err := flagR.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got, want := report.RobustnessTable(specResults), report.RobustnessTable(flagResults); got != want {
		t.Errorf("RobustnessTable differs:\nspec:\n%s\nflags:\n%s", got, want)
	}
}
