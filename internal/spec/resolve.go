package spec

// This file decodes the merged node tree into the typed Spec,
// validating names and values against the vocabularies of the core,
// scenario and workload packages. Every error is positional
// (file:line), including bad triple/intensity names — the line points
// into whichever file of an include chain contributed the node.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/ml"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/workload"
)

// decode fills the Spec from the merged tree.
func (s *Spec) decode(tree *node) error {
	if err := tree.checkKeys("kind", "seed", "repeats", "jobs", "parallelism",
		"stream", "shards", "workloads", "triples", "scenarios", "clusters",
		"routing", "output", "trace", "serve"); err != nil {
		return err
	}

	s.Kind = "campaign"
	if n := tree.at("kind"); n != nil {
		v, err := n.str()
		if err != nil {
			return err
		}
		if v != "campaign" && v != "robustness" {
			return n.errf("unknown kind %q (have campaign, robustness)", v)
		}
		s.Kind = v
	}
	if n := tree.at("seed"); n != nil {
		v, err := n.toUint64()
		if err != nil {
			return err
		}
		s.Seed = v
	} else {
		s.Seed = 1
	}
	s.Repeats = 1
	if n := tree.at("repeats"); n != nil {
		v, err := n.toInt()
		if err != nil {
			return err
		}
		if v < 1 {
			return n.errf("repeats must be >= 1, got %d", v)
		}
		if v > 1 && s.Kind != "robustness" {
			return n.errf("repeats only applies to robustness grids (the undisrupted campaign is seed-independent)")
		}
		s.Repeats = v
	}
	if n := tree.at("jobs"); n != nil {
		v, err := n.toInt()
		if err != nil {
			return err
		}
		if v < 0 {
			return n.errf("jobs must be >= 0 (0 = full Table-4 sizes), got %d", v)
		}
		s.Jobs = v
	}
	if n := tree.at("parallelism"); n != nil {
		v, err := n.toInt()
		if err != nil {
			return err
		}
		if v < 0 {
			return n.errf("parallelism must be >= 0 (0 = GOMAXPROCS), got %d", v)
		}
		s.Parallelism = v
	}
	if n := tree.at("stream"); n != nil {
		v, err := n.toBool()
		if err != nil {
			return err
		}
		s.Stream = v
	}
	if n := tree.at("shards"); n != nil {
		v, err := n.toInt()
		if err != nil {
			return err
		}
		if v < 0 {
			return n.errf("shards must be >= 0 (0 = sequential), got %d", v)
		}
		if s.Kind != "campaign" {
			return n.errf("shards only applies to campaign grids (the sharded driver is federated)")
		}
		s.Shards = v
	}

	if n := tree.at("workloads"); n != nil {
		if err := s.decodeWorkloads(n); err != nil {
			return err
		}
	}
	if n := tree.at("triples"); n != nil {
		if err := s.decodeTriples(n); err != nil {
			return err
		}
	}
	if n := tree.at("scenarios"); n != nil {
		if s.Kind != "robustness" {
			return n.errf("scenarios only apply to robustness grids (set kind: robustness)")
		}
		if err := s.decodeScenarios(n); err != nil {
			return err
		}
	}
	if n := tree.at("clusters"); n != nil {
		if s.Kind != "campaign" {
			return n.errf("clusters only apply to campaign grids (the robustness sweep is single-machine)")
		}
		if err := s.decodeClusters(n); err != nil {
			return err
		}
	}
	if n := tree.at("routing"); n != nil {
		if tree.at("clusters") == nil {
			return n.errf("routing needs clusters (a single-machine run has nothing to route)")
		}
		if err := s.decodeRouting(n); err != nil {
			return err
		}
	}
	if n := tree.at("output"); n != nil {
		if err := s.decodeOutput(n); err != nil {
			return err
		}
	}
	if n := tree.at("trace"); n != nil {
		if err := s.decodeTrace(n); err != nil {
			return err
		}
	}
	if n := tree.at("serve"); n != nil {
		if err := s.decodeServe(n); err != nil {
			return err
		}
	}
	return nil
}

// decodeServe reads the serve section: the live-daemon configuration
// cmd/schedd -spec consumes. The triple entry reuses the grid
// vocabulary but must resolve to exactly one triple — a daemon
// schedules with a single heuristic bundle.
func (s *Spec) decodeServe(n *node) error {
	if n.kind != kindMap {
		return n.errf("serve must be a mapping")
	}
	if err := n.checkKeys("addr", "max_procs", "scale", "triple", "clients"); err != nil {
		return err
	}
	srv := &Serve{Addr: "localhost:8080", Triple: core.EASYPlusPlus()}
	var err error
	if an := n.at("addr"); an != nil {
		if srv.Addr, err = an.str(); err != nil {
			return err
		}
	}
	mp := n.at("max_procs")
	if mp == nil {
		return n.errf("serve needs max_procs (the machine size)")
	}
	if srv.MaxProcs, err = mp.toInt64(); err != nil {
		return err
	}
	if srv.MaxProcs <= 0 {
		return mp.errf("max_procs must be positive, got %d", srv.MaxProcs)
	}
	if sn := n.at("scale"); sn != nil {
		if srv.Scale, err = sn.toFloat(); err != nil {
			return err
		}
		if srv.Scale < 0 {
			return sn.errf("scale must be >= 0 (0 = virtual time), got %v", srv.Scale)
		}
	}
	if tn := n.at("triple"); tn != nil {
		switch tn.kind {
		case kindScalar:
			set, ok := namedTripleSets[norm(tn.scalar)]
			if !ok {
				return tn.errf("unknown triple %q (have %s, or a structured mapping)", tn.scalar, tripleNames)
			}
			ts := set()
			if len(ts) != 1 {
				return tn.errf("triple %q expands to %d triples; serve needs exactly one", tn.scalar, len(ts))
			}
			srv.Triple = ts[0]
		case kindMap:
			if srv.Triple, err = decodeStructuredTriple(tn); err != nil {
				return err
			}
		default:
			return tn.errf("triple must be a name or a mapping")
		}
	}
	if cn := n.at("clients"); cn != nil {
		if cn.kind != kindList || len(cn.items) == 0 {
			return cn.errf("clients must be a non-empty list of names (omit the key for no split)")
		}
		seen := map[string]bool{}
		for _, item := range cn.items {
			name, err := item.str()
			if err != nil {
				return err
			}
			if seen[name] {
				return item.errf("duplicate client %q", name)
			}
			seen[name] = true
			srv.Clients = append(srv.Clients, name)
		}
	}
	s.Serve = srv
	return nil
}

// decodeTrace reads the flight-recorder section: the JSONL destination
// and the per-stage profiling switch.
func (s *Spec) decodeTrace(n *node) error {
	if n.kind != kindMap {
		return n.errf("trace must be a mapping")
	}
	if err := n.checkKeys("file", "profile"); err != nil {
		return err
	}
	if fn := n.at("file"); fn != nil {
		// str rejects empty scalars, so "file:" cannot silently disable
		// tracing — omit the key instead.
		v, err := fn.str()
		if err != nil {
			return err
		}
		s.Trace.File = v
	}
	if pn := n.at("profile"); pn != nil {
		v, err := pn.toBool()
		if err != nil {
			return err
		}
		s.Trace.Profile = v
	}
	return nil
}

// decodeClusters reads the federated platform: a list whose entries are
// either flag-syntax scalars ("64", "64x0.5", "slow=32x0.5") or
// mappings (name / procs / speed). Validation — positive sizes, unique
// names — is platform.Normalize's, surfaced at the list's position.
func (s *Spec) decodeClusters(n *node) error {
	if n.kind != kindList {
		return n.errf("clusters must be a list")
	}
	if len(n.items) == 0 {
		return n.errf("clusters must not be empty (omit the key for single-machine runs)")
	}
	clusters := make([]platform.Cluster, 0, len(n.items))
	for _, item := range n.items {
		switch item.kind {
		case kindScalar:
			c, err := platform.ParseClusterEntry(item.scalar)
			if err != nil {
				return item.errf("%v", err)
			}
			clusters = append(clusters, c)
		case kindMap:
			if err := item.checkKeys("name", "procs", "speed"); err != nil {
				return err
			}
			pn := item.at("procs")
			if pn == nil {
				return item.errf("cluster entry needs procs")
			}
			var c platform.Cluster
			procs, err := pn.toInt64()
			if err != nil {
				return err
			}
			c.Procs = procs
			if nn := item.at("name"); nn != nil {
				if c.Name, err = nn.str(); err != nil {
					return err
				}
			}
			if sn := item.at("speed"); sn != nil {
				if c.Speed, err = sn.toFloat(); err != nil {
					return err
				}
				if c.Speed <= 0 {
					return sn.errf("speed factor %v must be positive", c.Speed)
				}
			}
			clusters = append(clusters, c)
		default:
			return item.errf("cluster entries must be PROCS[xSPEED] scalars or mappings")
		}
	}
	norm, err := platform.Normalize(clusters)
	if err != nil {
		return n.errf("%v", err)
	}
	s.Clusters = norm
	return nil
}

// decodeRouting reads the routing axis: a policy name or a list of
// them, validated against the sched.NewRouter vocabulary.
func (s *Spec) decodeRouting(n *node) error {
	var items []*node
	switch n.kind {
	case kindScalar:
		items = []*node{n}
	case kindList:
		if len(n.items) == 0 {
			return n.errf("routing must not be empty (omit the key for round-robin)")
		}
		items = n.items
	default:
		return n.errf("routing must be a policy name or a list of them (have %s)", sched.RouterNames)
	}
	seen := map[string]bool{}
	for _, item := range items {
		name, err := item.str()
		if err != nil {
			return err
		}
		if _, err := sched.NewRouter(name); err != nil {
			return item.errf("unknown routing policy %q (have %s)", name, sched.RouterNames)
		}
		if seen[name] {
			return item.errf("duplicate routing policy %q", name)
		}
		seen[name] = true
		s.Routings = append(s.Routings, name)
	}
	return nil
}

func (s *Spec) decodeWorkloads(n *node) error {
	if n.kind != kindList {
		return n.errf("workloads must be a list")
	}
	if len(n.items) == 0 {
		return n.errf("workloads must not be empty (omit the key for the default preset set)")
	}
	for _, item := range n.items {
		w, err := s.decodeWorkload(item)
		if err != nil {
			return err
		}
		s.Workloads = append(s.Workloads, w)
	}
	return nil
}

func (s *Spec) decodeWorkload(n *node) (WorkloadSpec, error) {
	if n.kind == kindScalar {
		// Shorthand: a bare preset name.
		if _, err := workload.Preset(n.scalar); err != nil {
			return WorkloadSpec{}, n.errf("unknown preset %q (have %s)", n.scalar, strings.Join(workload.PresetNames(), ", "))
		}
		return WorkloadSpec{Preset: n.scalar, Jobs: -1}, nil
	}
	if n.kind != kindMap {
		return WorkloadSpec{}, n.errf("workload entries must be preset names or mappings")
	}
	if n.at("config") != nil {
		if err := n.checkKeys("name", "config", "clients"); err != nil {
			return WorkloadSpec{}, err
		}
		nameNode := n.at("name")
		if nameNode == nil {
			return WorkloadSpec{}, n.errf("inline workload needs a name")
		}
		name, err := nameNode.str()
		if err != nil {
			return WorkloadSpec{}, err
		}
		cfg, err := decodeWorkloadConfig(n.at("config"), name)
		if err != nil {
			return WorkloadSpec{}, err
		}
		w := WorkloadSpec{Config: cfg, Jobs: -1}
		if cn := n.at("clients"); cn != nil {
			if w.Clients, err = decodeClients(cn); err != nil {
				return WorkloadSpec{}, err
			}
		}
		return w, nil
	}
	if err := n.checkKeys("preset", "jobs", "seed", "clients"); err != nil {
		return WorkloadSpec{}, err
	}
	presetNode := n.at("preset")
	if presetNode == nil {
		return WorkloadSpec{}, n.errf("workload entry needs a preset (or an inline config)")
	}
	preset, err := presetNode.str()
	if err != nil {
		return WorkloadSpec{}, err
	}
	if _, err := workload.Preset(preset); err != nil {
		return WorkloadSpec{}, presetNode.errf("unknown preset %q (have %s)", preset, strings.Join(workload.PresetNames(), ", "))
	}
	w := WorkloadSpec{Preset: preset, Jobs: -1}
	if jn := n.at("jobs"); jn != nil {
		v, err := jn.toInt()
		if err != nil {
			return WorkloadSpec{}, err
		}
		if v < 0 {
			return WorkloadSpec{}, jn.errf("jobs must be >= 0, got %d", v)
		}
		w.Jobs = v
	}
	if sn := n.at("seed"); sn != nil {
		v, err := sn.toUint64()
		if err != nil {
			return WorkloadSpec{}, err
		}
		w.Seed = v
	}
	if cn := n.at("clients"); cn != nil {
		clients, err := decodeClients(cn)
		if err != nil {
			return WorkloadSpec{}, err
		}
		w.Clients = clients
	}
	return w, nil
}

// decodeClients reads a clients block: the multi-client decomposition
// of one workload entry (see docs/WORKLOADS.md for the schema).
// Cross-client validity — unique names, fraction sums, arrival
// vocabulary, envelope shape — is workload.ValidateClients's job,
// surfaced at the list's position.
func decodeClients(n *node) ([]workload.Client, error) {
	if n.kind != kindList {
		return nil, n.errf("clients must be a list")
	}
	if len(n.items) == 0 {
		return nil, n.errf("clients must not be empty (omit the key for a single population)")
	}
	out := make([]workload.Client, 0, len(n.items))
	for _, item := range n.items {
		c, err := decodeClient(item)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if err := workload.ValidateClients(out); err != nil {
		return nil, n.errf("%v", err)
	}
	return out, nil
}

func decodeClient(n *node) (workload.Client, error) {
	if n.kind != kindMap {
		return workload.Client{}, n.errf("client entries must be mappings")
	}
	if err := n.checkKeys("name", "fraction", "arrival", "shape", "envelope",
		"envelope_period", "users", "runtime_log_mean", "runtime_log_sigma",
		"class_sigma", "serial_fraction", "max_job_procs_fraction"); err != nil {
		return workload.Client{}, err
	}
	var c workload.Client
	var err error
	if nn := n.at("name"); nn != nil {
		if c.Name, err = nn.str(); err != nil {
			return workload.Client{}, err
		}
	}
	fn := n.at("fraction")
	if fn == nil {
		return workload.Client{}, n.errf("client needs a fraction (its share of the job stream)")
	}
	if c.Fraction, err = fn.toFloat(); err != nil {
		return workload.Client{}, err
	}
	if an := n.at("arrival"); an != nil {
		if c.Arrival, err = an.str(); err != nil {
			return workload.Client{}, err
		}
	}
	if sn := n.at("shape"); sn != nil {
		if c.Shape, err = sn.toFloat(); err != nil {
			return workload.Client{}, err
		}
	}
	if en := n.at("envelope"); en != nil {
		if c.Envelope, err = en.toFloatList(); err != nil {
			return workload.Client{}, err
		}
	}
	if pn := n.at("envelope_period"); pn != nil {
		if c.EnvelopePeriod, err = pn.toInt64(); err != nil {
			return workload.Client{}, err
		}
	}
	if un := n.at("users"); un != nil {
		if c.Users, err = un.toInt(); err != nil {
			return workload.Client{}, err
		}
	}
	// Distribution overrides: a present key overrides the base config
	// even at zero, hence the pointer fields.
	for _, o := range []struct {
		key string
		dst **float64
	}{
		{"runtime_log_mean", &c.RuntimeLogMean},
		{"runtime_log_sigma", &c.RuntimeLogSigma},
		{"class_sigma", &c.ClassSigma},
		{"serial_fraction", &c.SerialFraction},
		{"max_job_procs_fraction", &c.MaxJobProcsFraction},
	} {
		on := n.at(o.key)
		if on == nil {
			continue
		}
		v, err := on.toFloat()
		if err != nil {
			return workload.Client{}, err
		}
		*o.dst = &v
	}
	return c, nil
}

// configFields maps the snake_case spec schema onto workload.Config.
// Field validity (positivity, ranges) is workload.Config.Validate's
// job; this only converts and rejects unknown fields.
func decodeWorkloadConfig(n *node, name string) (*workload.Config, error) {
	if n.kind != kindMap {
		return nil, n.errf("config must be a mapping")
	}
	cfg := &workload.Config{Name: name}
	type field struct {
		i64 *int64
		i   *int
		f   *float64
		u64 *uint64
	}
	fields := map[string]field{
		"max_procs":              {i64: &cfg.MaxProcs},
		"jobs":                   {i: &cfg.Jobs},
		"users":                  {i: &cfg.Users},
		"user_zipf_exponent":     {f: &cfg.UserZipfExponent},
		"classes_per_user":       {i: &cfg.ClassesPerUser},
		"runtime_log_mean":       {f: &cfg.RuntimeLogMean},
		"runtime_log_sigma":      {f: &cfg.RuntimeLogSigma},
		"class_sigma":            {f: &cfg.ClassSigma},
		"max_runtime":            {i64: &cfg.MaxRuntime},
		"serial_fraction":        {f: &cfg.SerialFraction},
		"max_job_procs_fraction": {f: &cfg.MaxJobProcsFraction},
		"target_load":            {f: &cfg.TargetLoad},
		"default_walltime":       {i64: &cfg.DefaultWalltime},
		"default_walltime_frac":  {f: &cfg.DefaultWalltimeFrac},
		"overestimate_shape":     {f: &cfg.OverestimateShape},
		"min_request":            {i64: &cfg.MinRequest},
		"kill_fraction":          {f: &cfg.KillFraction},
		"crash_fraction":         {f: &cfg.CrashFraction},
		"session_stickiness":     {f: &cfg.SessionStickiness},
		"burst_fraction":         {f: &cfg.BurstFraction},
		"burst_gap":              {i64: &cfg.BurstGap},
		"class_stickiness":       {f: &cfg.ClassStickiness},
		"seed":                   {u64: &cfg.Seed},
	}
	allowed := make([]string, 0, len(fields))
	for k := range fields {
		allowed = append(allowed, k)
	}
	sort.Strings(allowed)
	if err := n.checkKeys(allowed...); err != nil {
		return nil, err
	}
	for _, key := range n.keys {
		child := n.fields[key]
		f := fields[key]
		var err error
		switch {
		case f.i64 != nil:
			var v int64
			v, err = child.toInt64()
			*f.i64 = v
		case f.i != nil:
			var v int
			v, err = child.toInt()
			*f.i = v
		case f.f != nil:
			var v float64
			v, err = child.toFloat()
			*f.f = v
		case f.u64 != nil:
			var v uint64
			v, err = child.toUint64()
			*f.u64 = v
		}
		if err != nil {
			return nil, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, n.errf("%v", err)
	}
	return cfg, nil
}

// norm canonicalizes a vocabulary name: lowercase with separators
// stripped, so "paper-best", "PaperBest" and "paper_best" all match.
func norm(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		if r == '-' || r == '_' || r == ' ' {
			return -1
		}
		return r
	}, s)
}

// namedTripleSets are the scalar triple entries. A name may expand to
// several triples (the full campaign grid).
var namedTripleSets = map[string]func() []core.Triple{
	"easy":              func() []core.Triple { return []core.Triple{core.EASY()} },
	"easy++":            func() []core.Triple { return []core.Triple{core.EASYPlusPlus()} },
	"paperbest":         func() []core.Triple { return []core.Triple{core.PaperBest()} },
	"clairvoyanteasy":   func() []core.Triple { return []core.Triple{core.ClairvoyantEASY()} },
	"clairvoyantsjbf":   func() []core.Triple { return []core.Triple{core.ClairvoyantSJBF()} },
	"conservative":      func() []core.Triple { return []core.Triple{core.ConservativeBF()} },
	"campaigngrid":      core.CampaignTriples,
	"robustnessdefault": campaign.DefaultRobustnessTriples,
}

const tripleNames = "easy, easy++, paper-best, clairvoyant-easy, clairvoyant-sjbf, conservative, campaign-grid, robustness-default"

func (s *Spec) decodeTriples(n *node) error {
	if n.kind != kindList {
		return n.errf("triples must be a list")
	}
	if len(n.items) == 0 {
		return n.errf("triples must not be empty (omit the key for the kind's default set)")
	}
	for _, item := range n.items {
		switch item.kind {
		case kindScalar:
			set, ok := namedTripleSets[norm(item.scalar)]
			if !ok {
				return item.errf("unknown triple %q (have %s, or a structured mapping)", item.scalar, tripleNames)
			}
			s.Triples = append(s.Triples, set()...)
		case kindMap:
			tr, err := decodeStructuredTriple(item)
			if err != nil {
				return err
			}
			s.Triples = append(s.Triples, tr)
		default:
			return item.errf("triple entries must be names or mappings")
		}
	}
	return nil
}

// decodeStructuredTriple builds a core.Triple from its axes:
//
//	predictor: requested | clairvoyant | ave2 | ml
//	over, under: lin | sq        (ml only; loss branches)
//	weight: const | shortwide | longnarrow | smallarea | largearea
//	corrector: requested-time | incremental | recursive-doubling
//	policy: easy | fcfs | conservative   (default easy)
//	backfill: fcfs | sjbf                (easy only; scan order)
func decodeStructuredTriple(n *node) (core.Triple, error) {
	if err := n.checkKeys("predictor", "over", "under", "weight", "corrector", "policy", "backfill"); err != nil {
		return core.Triple{}, err
	}
	var tr core.Triple

	pn := n.at("predictor")
	if pn == nil {
		return core.Triple{}, n.errf("structured triple needs a predictor")
	}
	pname, err := pn.str()
	if err != nil {
		return core.Triple{}, err
	}
	isML := false
	switch norm(pname) {
	case "requested", "requestedtime":
		tr.Predictor = core.PredRequested
	case "clairvoyant":
		tr.Predictor = core.PredClairvoyant
	case "ave2":
		tr.Predictor = core.PredAve2
	case "ml", "learning":
		tr.Predictor = core.PredLearning
		isML = true
	default:
		return core.Triple{}, pn.errf("unknown predictor %q (have requested, clairvoyant, ave2, ml)", pname)
	}

	tr.Loss = ml.ELoss
	for _, key := range []string{"over", "under", "weight"} {
		ln := n.at(key)
		if ln == nil {
			continue
		}
		if !isML {
			return core.Triple{}, ln.errf("%s only applies to the ml predictor", key)
		}
		v, err := ln.str()
		if err != nil {
			return core.Triple{}, err
		}
		switch key {
		case "over", "under":
			var b ml.Branch
			switch norm(v) {
			case "lin", "linear":
				b = ml.Linear
			case "sq", "squared":
				b = ml.Squared
			default:
				return core.Triple{}, ln.errf("unknown loss branch %q (have lin, sq)", v)
			}
			if key == "over" {
				tr.Loss.Over = b
			} else {
				tr.Loss.Under = b
			}
		case "weight":
			found := false
			for _, w := range ml.Weightings {
				if norm(v) == norm(w.String()) {
					tr.Loss.Weight = w
					found = true
					break
				}
			}
			if !found {
				return core.Triple{}, ln.errf("unknown weighting %q (have const, shortwide, longnarrow, smallarea, largearea)", v)
			}
		}
	}

	tr.Corrector = correct.RequestedTime{}
	if cn := n.at("corrector"); cn != nil {
		v, err := cn.str()
		if err != nil {
			return core.Triple{}, err
		}
		switch norm(v) {
		case "requestedtime":
			tr.Corrector = correct.RequestedTime{}
		case "incremental":
			tr.Corrector = correct.Incremental{}
		case "recursivedoubling":
			tr.Corrector = correct.RecursiveDoubling{}
		default:
			return core.Triple{}, cn.errf("unknown corrector %q (have requested-time, incremental, recursive-doubling)", v)
		}
	}

	policy := "easy"
	if on := n.at("policy"); on != nil {
		v, err := on.str()
		if err != nil {
			return core.Triple{}, err
		}
		policy = norm(v)
	}
	switch policy {
	case "easy":
	case "fcfs":
		tr.NoBackfill = true
	case "conservative":
		tr.Conservative = true
	default:
		return core.Triple{}, n.at("policy").errf("unknown policy %q (have easy, fcfs, conservative)", policy)
	}

	if bn := n.at("backfill"); bn != nil {
		if policy != "easy" {
			return core.Triple{}, bn.errf("backfill order only applies to the easy policy")
		}
		v, err := bn.str()
		if err != nil {
			return core.Triple{}, err
		}
		switch norm(v) {
		case "fcfs":
			tr.Backfill = sched.FCFSOrder
		case "sjbf":
			tr.Backfill = sched.SJBFOrder
		default:
			return core.Triple{}, bn.errf("unknown backfill order %q (have fcfs, sjbf)", v)
		}
	}
	return tr, nil
}

func (s *Spec) decodeScenarios(n *node) error {
	if n.kind != kindList {
		return n.errf("scenarios must be a list")
	}
	if len(n.items) == 0 {
		return n.errf("scenarios must not be empty (omit the key for the default ladder)")
	}
	seen := map[string]bool{}
	for _, item := range n.items {
		sc, err := decodeScenario(item)
		if err != nil {
			return err
		}
		if seen[sc.Name()] {
			return item.errf("duplicate scenario %q", sc.Name())
		}
		seen[sc.Name()] = true
		s.Scenarios = append(s.Scenarios, sc)
	}
	return nil
}

func intensityNames() string {
	names := make([]string, len(scenario.Intensities))
	for i, in := range scenario.Intensities {
		names[i] = in.Name
	}
	return strings.Join(names, ", ")
}

// decodeScenario handles the three column forms: a named intensity
// (scalar or `intensity:` mapping), a custom generated intensity
// (windows / max_drain_frac / cancel_frac), or a fixed inline script
// (`events:`).
func decodeScenario(n *node) (campaign.Scenario, error) {
	if n.kind == kindScalar {
		in, ok := scenario.IntensityByName(n.scalar)
		if !ok {
			return campaign.Scenario{}, n.errf("unknown intensity %q (have %s)", n.scalar, intensityNames())
		}
		return campaign.Scenario{Intensity: in}, nil
	}
	if n.kind != kindMap {
		return campaign.Scenario{}, n.errf("scenario entries must be intensity names or mappings")
	}
	if in := n.at("intensity"); in != nil {
		if err := n.checkKeys("intensity"); err != nil {
			return campaign.Scenario{}, err
		}
		v, err := in.str()
		if err != nil {
			return campaign.Scenario{}, err
		}
		named, ok := scenario.IntensityByName(v)
		if !ok {
			return campaign.Scenario{}, in.errf("unknown intensity %q (have %s)", v, intensityNames())
		}
		return campaign.Scenario{Intensity: named}, nil
	}

	nameNode := n.at("name")
	if nameNode == nil {
		return campaign.Scenario{}, n.errf("scenario needs a name (or an intensity)")
	}
	name, err := nameNode.str()
	if err != nil {
		return campaign.Scenario{}, err
	}

	if ev := n.at("events"); ev != nil {
		if err := n.checkKeys("name", "events"); err != nil {
			return campaign.Scenario{}, err
		}
		script, err := decodeScript(ev, name)
		if err != nil {
			return campaign.Scenario{}, err
		}
		return campaign.Scenario{Script: script}, nil
	}

	// Custom generated intensity.
	if err := n.checkKeys("name", "windows", "max_drain_frac", "cancel_frac"); err != nil {
		return campaign.Scenario{}, err
	}
	in := scenario.Intensity{Name: name}
	if wn := n.at("windows"); wn != nil {
		v, err := wn.toInt()
		if err != nil {
			return campaign.Scenario{}, err
		}
		if v < 0 {
			return campaign.Scenario{}, wn.errf("windows must be >= 0, got %d", v)
		}
		in.Windows = v
	}
	if fn := n.at("max_drain_frac"); fn != nil {
		v, err := fn.toFloat()
		if err != nil {
			return campaign.Scenario{}, err
		}
		if v < 0 || v > 1 {
			return campaign.Scenario{}, fn.errf("max_drain_frac %v out of [0,1]", v)
		}
		in.MaxDrainFrac = v
	}
	if fn := n.at("cancel_frac"); fn != nil {
		v, err := fn.toFloat()
		if err != nil {
			return campaign.Scenario{}, err
		}
		if v < 0 || v > 1 {
			return campaign.Scenario{}, fn.errf("cancel_frac %v out of [0,1]", v)
		}
		in.CancelFrac = v
	}
	return campaign.Scenario{Intensity: in}, nil
}

// decodeScript builds a fixed scenario.Script from inline events.
func decodeScript(n *node, name string) (*scenario.Script, error) {
	if n.kind != kindList || len(n.items) == 0 {
		return nil, n.errf("events must be a non-empty list")
	}
	b := scenario.NewBuilder(name)
	for _, item := range n.items {
		if item.kind != kindMap {
			return nil, item.errf("events must be mappings (at / action / procs / job_id)")
		}
		if err := item.checkKeys("at", "action", "procs", "job_id"); err != nil {
			return nil, err
		}
		atNode, actNode := item.at("at"), item.at("action")
		if atNode == nil || actNode == nil {
			return nil, item.errf("event needs at and action")
		}
		at, err := atNode.toInt64()
		if err != nil {
			return nil, err
		}
		action, err := actNode.str()
		if err != nil {
			return nil, err
		}
		procs := int64(0)
		if pn := item.at("procs"); pn != nil {
			if procs, err = pn.toInt64(); err != nil {
				return nil, err
			}
		}
		jobID := int64(0)
		if jn := item.at("job_id"); jn != nil {
			if jobID, err = jn.toInt64(); err != nil {
				return nil, err
			}
		}
		switch norm(action) {
		case "drain":
			b.Drain(at, procs)
		case "restore":
			b.Restore(at, procs)
		case "cancel":
			if item.at("job_id") == nil {
				return nil, item.errf("cancel event needs job_id")
			}
			b.Cancel(at, jobID)
		default:
			return nil, actNode.errf("unknown action %q (have drain, restore, cancel)", action)
		}
	}
	script, err := b.Build()
	if err != nil {
		return nil, n.errf("%v", err)
	}
	return script, nil
}

func (s *Spec) decodeOutput(n *node) error {
	if n.kind != kindMap {
		return n.errf("output must be a mapping")
	}
	if err := n.checkKeys("journal", "resume", "perf", "tables", "figures"); err != nil {
		return err
	}
	if jn := n.at("journal"); jn != nil {
		v, err := jn.str()
		if err != nil {
			return err
		}
		s.Output.Journal = v
	}
	if rn := n.at("resume"); rn != nil {
		v, err := rn.toBool()
		if err != nil {
			return err
		}
		s.Output.Resume = v
	}
	if pn := n.at("perf"); pn != nil {
		v, err := pn.toBool()
		if err != nil {
			return err
		}
		s.Output.Perf = v
	}
	for _, sel := range []struct {
		key   string
		valid []int
		dst   *[]int
	}{
		{"tables", []int{1, 6, 7, 8}, &s.Output.Tables},
		{"figures", []int{3, 4, 5}, &s.Output.Figures},
	} {
		tn := n.at(sel.key)
		if tn == nil {
			continue
		}
		if s.Kind != "campaign" {
			return tn.errf("%s only apply to campaign grids (robustness renders its own table)", sel.key)
		}
		vals, err := tn.toIntList()
		if err != nil {
			return err
		}
		for _, v := range vals {
			ok := false
			for _, want := range sel.valid {
				if v == want {
					ok = true
				}
			}
			if !ok {
				return tn.errf("unknown %s entry %d (have %v)", sel.key, v, sel.valid)
			}
		}
		*sel.dst = vals
	}
	return nil
}

// ---- node conversion helpers ----

// checkKeys rejects the first key outside the allowed set, pointing at
// its line.
func (n *node) checkKeys(allowed ...string) error {
	if n.kind != kindMap {
		return n.errf("expected a mapping, got a %s", n.kind)
	}
	for _, k := range n.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s:%d: unknown field %q (have %s)", n.file, n.keyLines[k], k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

func (n *node) str() (string, error) {
	if n.kind != kindScalar {
		return "", n.errf("expected a string, got a %s", n.kind)
	}
	if n.scalar == "" {
		return "", n.errf("expected a non-empty string")
	}
	return n.scalar, nil
}

func (n *node) toInt() (int, error) {
	v, err := n.toInt64()
	return int(v), err
}

func (n *node) toInt64() (int64, error) {
	if n.kind != kindScalar {
		return 0, n.errf("expected an integer, got a %s", n.kind)
	}
	v, err := strconv.ParseInt(n.scalar, 10, 64)
	if err != nil {
		return 0, n.errf("expected an integer, got %q", n.scalar)
	}
	return v, nil
}

func (n *node) toUint64() (uint64, error) {
	if n.kind != kindScalar {
		return 0, n.errf("expected an unsigned integer, got a %s", n.kind)
	}
	// Accept 0x hex for seeds, matching the presets' notation.
	v, err := strconv.ParseUint(strings.TrimPrefix(n.scalar, "0x"), base16or10(n.scalar), 64)
	if err != nil {
		return 0, n.errf("expected an unsigned integer, got %q", n.scalar)
	}
	return v, nil
}

func base16or10(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func (n *node) toFloat() (float64, error) {
	if n.kind != kindScalar {
		return 0, n.errf("expected a number, got a %s", n.kind)
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		return 0, n.errf("expected a number, got %q", n.scalar)
	}
	return v, nil
}

func (n *node) toBool() (bool, error) {
	if n.kind == kindScalar {
		switch n.scalar {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
	}
	return false, n.errf("expected true or false")
}

func (n *node) toFloatList() ([]float64, error) {
	if n.kind != kindList {
		return nil, n.errf("expected a list")
	}
	out := make([]float64, len(n.items))
	for i, item := range n.items {
		v, err := item.toFloat()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (n *node) toIntList() ([]int, error) {
	if n.kind != kindList {
		return nil, n.errf("expected a list")
	}
	out := make([]int, len(n.items))
	for i, item := range n.items {
		v, err := item.toInt()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
