// Package scenario describes timed platform and workload disruptions —
// node drains and failures, maintenance windows (time-varying capacity),
// node restores, and job cancellations — as data the simulation engine
// injects into its discrete-event loop. A Script is a time-sorted list
// of disruption events; sim.Config.Script replays one against any
// workload and heuristic triple, which is how the robustness campaign
// measures how much of the paper's learned-prediction advantage survives
// platform churn.
//
// Scripts come from three sources: the composable Builder (hand-written
// scenarios, e.g. a maintenance window in examples/resilience), the
// deterministic Generate function (randomized disruption scripts seeded
// via internal/rng, scaled by named Intensity levels), and the real
// status fields of SWF archive logs (CancellationsFromSWF replays the
// kills a production system recorded).
package scenario

import (
	"fmt"
	"sort"
)

// Action is the kind of one disruption event.
type Action int

const (
	// Drain removes processors from service: a node failure or the
	// start of a maintenance window. Idle processors leave immediately,
	// busy ones as their jobs complete (graceful drain).
	Drain Action = iota
	// Restore returns drained processors to service: a node recovery or
	// the end of a maintenance window.
	Restore
	// Cancel removes one job from the system: dropped before
	// submission, pulled from the waiting queue, or killed while
	// running — whichever state the job is in when the event fires.
	Cancel
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Drain:
		return "drain"
	case Restore:
		return "restore"
	case Cancel:
		return "cancel"
	}
	return "unknown"
}

// Event is one timed disruption.
type Event struct {
	// Time is the absolute simulation instant the disruption fires at.
	Time int64
	// Action classifies the disruption.
	Action Action
	// Procs is the processor count of a Drain or Restore.
	Procs int64
	// JobID is the target of a Cancel (the SWF job number).
	JobID int64
	// Cluster optionally names the federated cluster a Drain or Restore
	// targets. Empty means the first cluster; single-machine runs reject
	// any other value. Cancellations identify their job by ID alone and
	// ignore this field.
	Cluster string
}

// Script is a named, time-sorted disruption sequence. The zero value
// and nil both mean "no disruptions".
type Script struct {
	// Name identifies the scenario in reports.
	Name string
	// Events is sorted by Time (stable in insertion order at equal
	// instants).
	Events []Event
}

// Empty reports whether the script carries no disruptions.
func (s *Script) Empty() bool { return s == nil || len(s.Events) == 0 }

// Counts returns the number of drains, restores and cancellations.
func (s *Script) Counts() (drains, restores, cancels int) {
	if s == nil {
		return 0, 0, 0
	}
	for _, e := range s.Events {
		switch e.Action {
		case Drain:
			drains++
		case Restore:
			restores++
		case Cancel:
			cancels++
		}
	}
	return drains, restores, cancels
}

// MinEventualCapacity replays the script's drain/restore bookkeeping
// (with the same clamping the machine applies) on a machine of the given
// nominal size and returns the lowest eventual capacity reached — the
// tightest squeeze the scenario puts on the platform.
func (s *Script) MinEventualCapacity(total int64) int64 {
	lowest, _ := s.replayCapacity(total)
	return lowest
}

// Balanced reports whether every drained processor is eventually
// restored (the script ends with the machine back at full capacity), the
// property that guarantees every non-canceled job can eventually start.
func (s *Script) Balanced(total int64) bool {
	_, final := s.replayCapacity(total)
	return final == total
}

// replayCapacity runs the drain/restore state machine once, returning
// the lowest and final eventual capacity.
func (s *Script) replayCapacity(total int64) (lowest, final int64) {
	capacity := total
	lowest = total
	if s == nil {
		return lowest, capacity
	}
	for _, e := range s.Events {
		switch e.Action {
		case Drain:
			capacity -= e.Procs
			if capacity < 0 {
				capacity = 0
			}
		case Restore:
			capacity += e.Procs
			if capacity > total {
				capacity = total
			}
		}
		if capacity < lowest {
			lowest = capacity
		}
	}
	return lowest, capacity
}

// Retarget returns a copy of the script whose drain and restore events
// all target the named federated cluster. Cancellations are untouched
// (they identify their job by ID, not by placement). It is how a
// single-machine disruption script — e.g. one from Generate, sized to
// one cluster — is aimed at a member of a federated platform before
// merging the per-cluster scripts.
func Retarget(s *Script, cluster string) *Script {
	if s == nil {
		return nil
	}
	out := &Script{Name: s.Name, Events: append([]Event(nil), s.Events...)}
	for i := range out.Events {
		if out.Events[i].Action == Drain || out.Events[i].Action == Restore {
			out.Events[i].Cluster = cluster
		}
	}
	return out
}

// Merge combines scripts into one time-sorted script under a new name.
func Merge(name string, scripts ...*Script) *Script {
	out := &Script{Name: name}
	for _, s := range scripts {
		if s == nil {
			continue
		}
		out.Events = append(out.Events, s.Events...)
	}
	sortEvents(out.Events)
	return out
}

// sortEvents orders events by time, keeping the relative order of
// equal-instant events (the engine's event queue breaks remaining ties
// by kind and insertion sequence).
func sortEvents(events []Event) {
	sort.SliceStable(events, func(a, b int) bool { return events[a].Time < events[b].Time })
}

// Builder accumulates disruptions in any order and validates them into a
// Script. Methods chain; errors are collected and reported by Build.
type Builder struct {
	name   string
	events []Event
	errs   []string
}

// NewBuilder starts an empty scenario with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

func (b *Builder) errf(format string, args ...interface{}) {
	b.errs = append(b.errs, fmt.Sprintf(format, args...))
}

// Drain schedules a drain of procs processors at the given instant.
func (b *Builder) Drain(at, procs int64) *Builder {
	if at < 0 {
		b.errf("drain at negative instant %d", at)
	}
	if procs <= 0 {
		b.errf("drain of %d processors at %d", procs, at)
	}
	b.events = append(b.events, Event{Time: at, Action: Drain, Procs: procs})
	return b
}

// Restore schedules a restore of procs processors at the given instant.
func (b *Builder) Restore(at, procs int64) *Builder {
	if at < 0 {
		b.errf("restore at negative instant %d", at)
	}
	if procs <= 0 {
		b.errf("restore of %d processors at %d", procs, at)
	}
	b.events = append(b.events, Event{Time: at, Action: Restore, Procs: procs})
	return b
}

// DrainOn schedules a drain of procs processors on the named federated
// cluster at the given instant.
func (b *Builder) DrainOn(cluster string, at, procs int64) *Builder {
	b.Drain(at, procs)
	b.events[len(b.events)-1].Cluster = cluster
	return b
}

// RestoreOn schedules a restore of procs processors on the named
// federated cluster at the given instant.
func (b *Builder) RestoreOn(cluster string, at, procs int64) *Builder {
	b.Restore(at, procs)
	b.events[len(b.events)-1].Cluster = cluster
	return b
}

// Maintenance schedules a maintenance window: procs processors drained
// during [from, to) and restored at to.
func (b *Builder) Maintenance(from, to, procs int64) *Builder {
	if to <= from {
		b.errf("maintenance window [%d,%d) is empty", from, to)
		return b
	}
	return b.Drain(from, procs).Restore(to, procs)
}

// Cancel schedules the cancellation of the job with the given ID at the
// given instant. Canceling an already-completed job is a no-op at
// simulation time, so the instant may safely land anywhere in the job's
// life.
func (b *Builder) Cancel(at, jobID int64) *Builder {
	if at < 0 {
		b.errf("cancel at negative instant %d", at)
	}
	b.events = append(b.events, Event{Time: at, Action: Cancel, JobID: jobID})
	return b
}

// Build validates and returns the time-sorted script.
func (b *Builder) Build() (*Script, error) {
	if len(b.errs) != 0 {
		return nil, fmt.Errorf("scenario %q: %s", b.name, b.errs[0])
	}
	s := &Script{Name: b.name, Events: append([]Event(nil), b.events...)}
	sortEvents(s.Events)
	return s, nil
}

// MustBuild is Build for programmatically-correct scenarios; it panics
// on a validation error.
func (b *Builder) MustBuild() *Script {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
