package scenario

import "repro/internal/swf"

// CancellationsFromSWF derives Cancel events from a real log's status
// fields: every job the archive records as cancelled before it ever ran
// (Status 5 with no recorded runtime) is killed at its logged
// queue-departure instant, submit + wait (or at submission when the wait
// is unknown). Jobs cancelled after running are not derived — their
// logged runtime already ends at the kill, so replaying them as ordinary
// jobs reproduces the cancellation.
//
// Combine with swf.ApplyStatus(tr, swf.StatusReplay), which gives those
// never-ran jobs their requested time as the hypothetical runtime: the
// derived events then remove them exactly when the real system did,
// wherever they are in the simulated schedule at that instant.
func CancellationsFromSWF(name string, tr *swf.Trace) *Script {
	b := NewBuilder(name)
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.Status != swf.StatusCancelled || j.RunTime > 0 || j.SubmitTime < 0 {
			continue
		}
		wait := j.WaitTime
		if wait < 0 {
			wait = 0
		}
		b.Cancel(j.SubmitTime+wait, j.JobNumber)
	}
	return b.MustBuild()
}
