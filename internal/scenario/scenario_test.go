package scenario

import (
	"reflect"
	"testing"

	"repro/internal/swf"
	"repro/internal/trace"
)

func TestBuilderSortsAndValidates(t *testing.T) {
	s, err := NewBuilder("t").
		Restore(100, 4).
		Cancel(30, 7).
		Drain(50, 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	times := []int64{}
	for _, e := range s.Events {
		times = append(times, e.Time)
	}
	if !reflect.DeepEqual(times, []int64{30, 50, 100}) {
		t.Fatalf("events not time-sorted: %v", times)
	}
}

func TestBuilderRejectsBadEvents(t *testing.T) {
	cases := []*Builder{
		NewBuilder("neg-time").Drain(-1, 2),
		NewBuilder("zero-procs").Drain(0, 0),
		NewBuilder("neg-restore").Restore(5, -3),
		NewBuilder("empty-window").Maintenance(10, 10, 2),
		NewBuilder("neg-cancel").Cancel(-5, 1),
	}
	for _, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected validation error", b.name)
		}
	}
}

func TestMaintenanceIsBalanced(t *testing.T) {
	s := NewBuilder("mw").Maintenance(10, 50, 6).Maintenance(20, 30, 4).MustBuild()
	if !s.Balanced(16) {
		t.Fatal("maintenance windows must restore what they drain")
	}
	if got := s.MinEventualCapacity(16); got != 6 {
		t.Fatalf("min eventual capacity = %d, want 6 (16-6-4)", got)
	}
	drains, restores, cancels := s.Counts()
	if drains != 2 || restores != 2 || cancels != 0 {
		t.Fatalf("counts = %d,%d,%d", drains, restores, cancels)
	}
}

func TestMinEventualCapacityClampsAtZero(t *testing.T) {
	s := NewBuilder("deep").Drain(0, 100).MustBuild()
	if got := s.MinEventualCapacity(10); got != 0 {
		t.Fatalf("min eventual capacity = %d, want 0 (clamped)", got)
	}
	if s.Balanced(10) {
		t.Fatal("unrestored drain must not be balanced")
	}
}

func TestMergePreservesOrder(t *testing.T) {
	a := NewBuilder("a").Drain(10, 2).Restore(40, 2).MustBuild()
	b := NewBuilder("b").Cancel(25, 3).MustBuild()
	m := Merge("ab", a, b, nil)
	times := []int64{}
	for _, e := range m.Events {
		times = append(times, e.Time)
	}
	if !reflect.DeepEqual(times, []int64{10, 25, 40}) {
		t.Fatalf("merged order wrong: %v", times)
	}
}

func TestEmptyScript(t *testing.T) {
	var nilScript *Script
	if !nilScript.Empty() || !(&Script{}).Empty() {
		t.Fatal("nil and zero scripts must be empty")
	}
	if nilScript.MinEventualCapacity(8) != 8 || !nilScript.Balanced(8) {
		t.Fatal("nil script should leave the machine untouched")
	}
}

func genWorkload() *trace.Workload {
	jobs := make([]swf.Job, 60)
	for i := range jobs {
		jobs[i] = swf.Job{
			JobNumber:      int64(i + 1),
			SubmitTime:     int64(i * 50),
			RunTime:        120,
			RequestedProcs: 4,
			RequestedTime:  300,
			Status:         swf.StatusCompleted,
		}
	}
	return &trace.Workload{Name: "gen", MaxProcs: 32, Jobs: jobs}
}

func TestGenerateDeterministic(t *testing.T) {
	w := genWorkload()
	in, _ := IntensityByName("moderate")
	a := Generate(w, in, 42)
	b := Generate(w, in, 42)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed must generate the same script")
	}
	c := Generate(w, in, 43)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds should diverge")
	}
}

func TestGenerateBalancedAndScaled(t *testing.T) {
	w := genWorkload()
	for _, in := range Intensities {
		s := Generate(w, in, 7)
		if !s.Balanced(w.MaxProcs) {
			t.Fatalf("%s: generated script not balanced", in.Name)
		}
		drains, restores, _ := s.Counts()
		if drains != in.Windows || restores != in.Windows {
			t.Fatalf("%s: %d drains %d restores, want %d windows", in.Name, drains, restores, in.Windows)
		}
		if in.Name == "none" && !s.Empty() {
			t.Fatal("none intensity must be empty")
		}
	}
	// The ladder is monotone: heavier levels disrupt at least as much.
	light := Generate(w, Intensities[1], 7)
	heavy := Generate(w, Intensities[3], 7)
	if len(heavy.Events) <= len(light.Events) {
		t.Fatalf("heavy (%d events) should out-disrupt light (%d)", len(heavy.Events), len(light.Events))
	}
}

// TestGenerateAnchorsWindowsAtFirstSubmission: real logs start at an
// arbitrary offset; maintenance windows must overlap the submission
// span, not the absolute origin.
func TestGenerateAnchorsWindowsAtFirstSubmission(t *testing.T) {
	w := genWorkload()
	offset := int64(1_000_000)
	for i := range w.Jobs {
		w.Jobs[i].SubmitTime += offset
	}
	in, _ := IntensityByName("heavy")
	s := Generate(w, in, 5)
	for _, e := range s.Events {
		if e.Action == Drain && e.Time < offset {
			t.Fatalf("drain at %d lands before the first submission %d", e.Time, offset)
		}
	}
}

func TestCancellationsFromSWF(t *testing.T) {
	tr := &swf.Trace{Jobs: []swf.Job{
		{JobNumber: 1, SubmitTime: 100, WaitTime: 30, RunTime: -1, Status: swf.StatusCancelled},
		{JobNumber: 2, SubmitTime: 200, WaitTime: -1, RunTime: 0, Status: swf.StatusCancelled},
		{JobNumber: 3, SubmitTime: 300, WaitTime: 10, RunTime: 50, Status: swf.StatusCancelled}, // ran: not derived
		{JobNumber: 4, SubmitTime: 400, WaitTime: 5, RunTime: 60, Status: swf.StatusCompleted},
		{JobNumber: 5, SubmitTime: -7, WaitTime: 5, RunTime: 0, Status: swf.StatusCancelled}, // unusable submit
	}}
	s := CancellationsFromSWF("log", tr)
	want := []Event{
		{Time: 130, Action: Cancel, JobID: 1},
		{Time: 200, Action: Cancel, JobID: 2},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("derived events = %+v, want %+v", s.Events, want)
	}
}
