package scenario

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Intensity is a named disruption level for the robustness campaign:
// how many maintenance windows hit the platform over the trace span, how
// much of the machine a single window may take down, and what fraction
// of the jobs get cancelled.
type Intensity struct {
	// Name identifies the level in reports ("none", "light", ...).
	Name string
	// Windows is the number of maintenance windows over the trace span.
	Windows int
	// MaxDrainFrac bounds a single window's width as a fraction of the
	// machine.
	MaxDrainFrac float64
	// CancelFrac is the probability that any given job is cancelled at
	// a random point of its life.
	CancelFrac float64
}

// Intensities is the default disruption ladder of the robustness
// campaign, from the paper's static testbed ("none") to a heavily
// churning platform.
var Intensities = []Intensity{
	{Name: "none"},
	{Name: "light", Windows: 2, MaxDrainFrac: 0.15, CancelFrac: 0.02},
	{Name: "moderate", Windows: 5, MaxDrainFrac: 0.30, CancelFrac: 0.08},
	{Name: "heavy", Windows: 10, MaxDrainFrac: 0.50, CancelFrac: 0.20},
}

// IntensityByName looks an intensity level up in the default ladder.
func IntensityByName(name string) (Intensity, bool) {
	for _, in := range Intensities {
		if in.Name == name {
			return in, true
		}
	}
	return Intensity{}, false
}

// Generate derives a deterministic disruption script for the workload
// from the intensity level and seed: maintenance windows placed
// uniformly over the submission span (every drain paired with a restore,
// so the script is Balanced and the simulation always terminates) plus
// per-job cancellations at a random offset within twice the job's
// requested time — early enough to hit queued jobs, late enough that
// some land after completion and exercise the stale-cancel path.
func Generate(w *trace.Workload, in Intensity, seed uint64) *Script {
	b := NewBuilder(fmt.Sprintf("%s/%s#%d", w.Name, in.Name, seed))
	src := rng.New(seed)
	winSrc := src.Split(1)
	cancelSrc := src.Split(2)

	// Windows are anchored at the first submission: real logs start at
	// an arbitrary offset, and a window placed before any job exists
	// would drain and restore an empty machine.
	first, horizon := int64(0), int64(1)
	if n := len(w.Jobs); n > 0 {
		first = w.Jobs[0].SubmitTime
		if span := w.Jobs[n-1].SubmitTime - first; span > horizon {
			horizon = span
		}
	}
	maxDrain := int64(in.MaxDrainFrac * float64(w.MaxProcs))
	if maxDrain < 1 && in.Windows > 0 {
		maxDrain = 1
	}
	for i := 0; i < in.Windows; i++ {
		start := first + winSrc.Int63n(horizon)
		length := 1 + winSrc.Int63n(maxInt64(1, horizon/8))
		procs := 1 + winSrc.Int63n(maxDrain)
		b.Maintenance(start, start+length, procs)
	}
	if in.CancelFrac > 0 {
		for i := range w.Jobs {
			if !cancelSrc.Bernoulli(in.CancelFrac) {
				continue
			}
			j := &w.Jobs[i]
			window := maxInt64(1, 2*j.Request())
			b.Cancel(j.SubmitTime+cancelSrc.Int63n(window), j.JobNumber)
		}
	}
	return b.MustBuild()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
