package stats

import (
	"math"
	"testing"
)

func TestSketchExactWhenSmall(t *testing.T) {
	s := NewSketch()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d, want 100", s.Count())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("extremes %v..%v, want 1..100", s.Min(), s.Max())
	}
	// Under one buffer's worth of data nothing has been compacted, so
	// quantiles are exact.
	if q := s.Quantile(0.5); math.Abs(q-50) > 1 {
		t.Fatalf("median %v, want ~50", q)
	}
	if p := s.At(25); math.Abs(p-0.25) > 0.01 {
		t.Fatalf("At(25) = %v, want 0.25", p)
	}
}

func TestSketchBoundedMemoryAndAccuracy(t *testing.T) {
	const n = 1_000_000
	s := NewSketch()
	for i := 0; i < n; i++ {
		// Deterministic pseudo-shuffled uniform values over [0, 1).
		s.Add(float64((i*2654435761)%n) / n)
	}
	if s.Count() != n {
		t.Fatalf("Count = %d, want %d", s.Count(), n)
	}
	// Memory: k per level, ~log2(n/k) levels.
	if got := s.Stored(); got > 16*defaultSketchK {
		t.Fatalf("sketch stores %d samples for n=%d, want bounded by %d", got, n, 16*defaultSketchK)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		if got := s.Quantile(q); math.Abs(got-q) > 0.03 {
			t.Fatalf("Quantile(%v) = %v, want within 0.03", q, got)
		}
	}
	for _, x := range []float64{0.2, 0.5, 0.8} {
		if got := s.At(x); math.Abs(got-x) > 0.03 {
			t.Fatalf("At(%v) = %v, want within 0.03", x, got)
		}
	}
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Fatalf("extreme quantiles not anchored: %v/%v vs %v/%v",
			s.Quantile(0), s.Quantile(1), s.Min(), s.Max())
	}
}

func TestSketchDeterministic(t *testing.T) {
	build := func() *Sketch {
		s := NewSketchK(64)
		for i := 0; i < 50_000; i++ {
			s.Add(float64((i * 48271) % 9973))
		}
		return s
	}
	a, b := build(), build()
	for _, q := range []float64{0.01, 0.3, 0.5, 0.77, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("sketch not deterministic at q=%v: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

// TestSketchMerge holds the merge to its contract: exact count and
// extremes, deterministic ladders, quantile accuracy comparable to a
// single sketch over the union, and no-op merges of empty sketches.
func TestSketchMerge(t *testing.T) {
	const n = 200_000
	const shards = 4
	whole := NewSketch()
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch()
	}
	for i := 0; i < n; i++ {
		v := float64((i*2654435761)%n) / n
		whole.Add(v)
		parts[i%shards].Add(v)
	}
	build := func() *Sketch {
		m := NewSketch()
		for _, p := range parts {
			m.Merge(p)
		}
		return m
	}
	a, b := build(), build()
	if a.Count() != n || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged count/extremes %d %v..%v, want %d %v..%v",
			a.Count(), a.Min(), a.Max(), n, whole.Min(), whole.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("merge not deterministic at q=%v: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
		// Uniform values over [0, 1): the q-quantile is ~q. Merging must
		// not degrade accuracy beyond the single-sketch error budget.
		if got := a.Quantile(q); math.Abs(got-q) > 0.05 {
			t.Errorf("merged Quantile(%v) = %v, want ~%v", q, got, q)
		}
	}
	if got := a.Stored(); got > 16*defaultSketchK {
		t.Fatalf("merged sketch stores %d samples, want bounded", got)
	}
	empty := NewSketch()
	a.Merge(empty)
	a.Merge(nil)
	if a.Count() != n {
		t.Fatalf("empty/nil merges changed count to %d", a.Count())
	}
	empty.Merge(b)
	if empty.Count() != b.Count() || empty.Min() != b.Min() || empty.Max() != b.Max() {
		t.Fatal("merging into an empty sketch must adopt the source stream")
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Count() != 0 || s.At(1) != 0 || s.Quantile(0.5) != 0 || s.Stored() != 0 {
		t.Fatal("empty sketch should report zeros")
	}
}
