package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("constant StdDev = %v", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("StdDev = %v, want 1", got)
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty stddev should be NaN")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation r = %v", r)
	}
	neg := []float64{40, 30, 20, 10}
	r, _ = Pearson(xs, neg)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation r = %v", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, -1, 1, -1}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.5 {
		t.Fatalf("noise correlation r = %v too strong", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0, 1, 2, 3, 9.9, -5, 100}, 0, 10, 10)
	if bins[0] != 3 { // 0, 1 (0<=x<1 -> bin0; 1 -> bin1?) check: 0->0, 1->1, -5 clamps to 0
		// 0 -> bin0, -5 -> bin0 (clamped), 1 -> bin1
		t.Logf("bins: %v", bins)
	}
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != 7 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	if bins[9] < 2 { // 9.9 and clamped 100
		t.Fatalf("edge bin = %d, want >= 2", bins[9])
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid histogram")
		}
	}()
	Histogram(nil, 5, 5, 10)
}

func TestQuickPearsonRange(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 3 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = float64(i)
			}
			// Clamp into a range where products cannot overflow.
			xs[i] = math.Mod(xs[i], 1e12)
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = xs[i]*2 + float64(i%3)
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true // degenerate input
		}
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
