// Package stats provides the descriptive statistics used by the result
// analysis: Pearson correlation (Section 6.3.2's cross-log comparison),
// means, standard deviations and histograms.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or NaN for empty input.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It errors on mismatched lengths, fewer than two points, or a
// zero-variance side.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, have %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// MinMax returns the smallest and largest values. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Histogram counts samples into n equal-width bins over [lo, hi]; values
// outside the range clamp into the edge bins.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	bins := make([]int, n)
	width := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}
