package stats

import "sort"

// Sketch is a bounded-memory quantile summary: a deterministic KLL-style
// compactor ladder. Samples land in a level-0 buffer; when a buffer
// fills, it is sorted and every other element is promoted to the next
// level with doubled weight. Memory is O(k log(n/k)) for n samples —
// a few kilobytes for a million-job trace — and the construction is
// fully deterministic (the compaction offset alternates per level
// instead of being randomized), so streaming runs stay reproducible.
//
// Rank error grows with the number of compactions; with the default
// buffer size the mid-quantiles of million-sample streams land within a
// percent or two of exact — the fidelity needed for ECDF plots and tail
// summaries, not for exact order statistics. Exact paths should keep
// using ECDF/sorting.
type Sketch struct {
	k      int
	levels [][]float64 // levels[i] carries weight 1<<i per element
	odd    []bool      // per-level compaction-offset parity
	n      int64
	min    float64
	max    float64
}

// defaultSketchK is the level buffer size: error/memory trade-off.
const defaultSketchK = 256

// NewSketch returns a sketch with the default accuracy budget.
func NewSketch() *Sketch { return NewSketchK(defaultSketchK) }

// NewSketchK returns a sketch with level buffers of size k (minimum 8).
func NewSketchK(k int) *Sketch {
	if k < 8 {
		k = 8
	}
	return &Sketch{k: k}
}

// Add observes one sample.
func (s *Sketch) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	if len(s.levels) == 0 {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.odd = append(s.odd, false)
	}
	s.levels[0] = append(s.levels[0], x)
	for lvl := 0; len(s.levels[lvl]) >= s.k; lvl++ {
		s.compact(lvl)
	}
}

// compact halves level lvl into lvl+1.
func (s *Sketch) compact(lvl int) {
	buf := s.levels[lvl]
	sort.Float64s(buf)
	if lvl+1 >= len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.odd = append(s.odd, false)
	}
	start := 0
	if s.odd[lvl] {
		start = 1
	}
	s.odd[lvl] = !s.odd[lvl]
	for i := start; i < len(buf); i += 2 {
		s.levels[lvl+1] = append(s.levels[lvl+1], buf[i])
	}
	s.levels[lvl] = buf[:0]
}

// Merge folds another sketch into s, preserving every sample weight: an
// element stored at level i of o carries weight 1<<i, so it enters s at
// the same level and compacts upward from there exactly as if s had
// produced it. The merge is deterministic — elements stream in level
// order, then stored order — so merging the same sketches in the same
// order always yields the same ladder. Merging a sketch into itself is
// not supported. o is left untouched.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	for lvl := len(s.levels); lvl < len(o.levels); lvl++ {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.odd = append(s.odd, false)
	}
	for lvl, buf := range o.levels {
		for _, v := range buf {
			s.levels[lvl] = append(s.levels[lvl], v)
			for l := lvl; l < len(s.levels) && len(s.levels[l]) >= s.k; l++ {
				s.compact(l)
			}
		}
	}
}

// Count returns the number of samples observed (exact).
func (s *Sketch) Count() int64 { return s.n }

// Min and Max return the exact extremes of the stream.
func (s *Sketch) Min() float64 { return s.min }
func (s *Sketch) Max() float64 { return s.max }

// weighted flattens the ladder into sorted (value, weight) pairs.
func (s *Sketch) weighted() (vals []float64, weights []int64) {
	total := 0
	for _, l := range s.levels {
		total += len(l)
	}
	type vw struct {
		v float64
		w int64
	}
	pairs := make([]vw, 0, total)
	for lvl, l := range s.levels {
		w := int64(1) << uint(lvl)
		for _, v := range l {
			pairs = append(pairs, vw{v, w})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
	vals = make([]float64, len(pairs))
	weights = make([]int64, len(pairs))
	for i, p := range pairs {
		vals[i] = p.v
		weights[i] = p.w
	}
	return vals, weights
}

// At returns the approximate P(X <= x).
func (s *Sketch) At(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	vals, weights := s.weighted()
	var below, total int64
	for i, v := range vals {
		total += weights[i]
		if v <= x {
			below += weights[i]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(below) / float64(total)
}

// Quantile returns the approximate q-quantile (0 <= q <= 1). The exact
// stream extremes anchor q = 0 and q = 1.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	vals, weights := s.weighted()
	var total int64
	for _, w := range weights {
		total += w
	}
	target := int64(q * float64(total))
	var acc int64
	for i, v := range vals {
		acc += weights[i]
		if acc > target {
			return v
		}
	}
	return s.max
}

// Stored returns how many samples the sketch currently retains — the
// memory bound tests pin.
func (s *Sketch) Stored() int {
	total := 0
	for _, l := range s.levels {
		total += len(l)
	}
	return total
}
