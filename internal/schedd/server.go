package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/swf"
)

// maxBodyBytes bounds every request body; the largest legitimate
// request is a what-if script, far below this.
const maxBodyBytes = 1 << 20

// JobSpec is the wire form of a submission: the SWF fields a live
// client states. Runtime is the simulated job's actual running time —
// the oracle the event core needs to schedule its finish; a real
// deployment would learn it at completion instead.
type JobSpec struct {
	Number  int64 `json:"number"`
	Submit  int64 `json:"submit"`
	Procs   int64 `json:"procs"`
	Request int64 `json:"request"`
	Runtime int64 `json:"runtime"`
	User    int64 `json:"user,omitempty"`
	// Partition overrides the session's client stamp (1-based client
	// index; 0 means inherit).
	Partition int64 `json:"partition,omitempty"`
}

func (s *JobSpec) record() swf.Job {
	return swf.Job{
		JobNumber:      s.Number,
		SubmitTime:     s.Submit,
		RunTime:        s.Runtime,
		AllocatedProcs: s.Procs,
		RequestedProcs: s.Procs,
		RequestedTime:  s.Request,
		UserID:         s.User,
		Partition:      s.Partition,
	}
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Session string  `json:"session"`
	Job     JobSpec `json:"job"`
}

type sessionRequest struct {
	Session string `json:"session"`
	Client  string `json:"client,omitempty"`
}

type cancelRequest struct {
	Session string `json:"session"`
	T       int64  `json:"t"`
	Job     int64  `json:"job"`
}

type capacityRequest struct {
	Session string `json:"session"`
	T       int64  `json:"t"`
	Procs   int64  `json:"procs"`
}

type advanceRequest struct {
	Session string `json:"session"`
	T       int64  `json:"t"`
}

type whatIfRequest struct {
	Events []WhatIfEvent `json:"events"`
}

// decodeStrict decodes one JSON value from r, rejecting unknown
// fields, trailing data, and oversized bodies — the contract
// FuzzSubmitRequest pins on the submission decoder.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "schedd: bad request body: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, "schedd: trailing data after request body")
	}
	return nil
}

// ParseSubmitRequest decodes and validates a POST /v1/jobs body: the
// fuzz entry point. A nil error means the request would enqueue
// (session permitting): positive job number, width, and requested
// time, nonnegative instants.
func ParseSubmitRequest(body []byte) (*SubmitRequest, error) {
	var req SubmitRequest
	if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
		return nil, err
	}
	if req.Session == "" {
		return nil, errf(http.StatusBadRequest, "schedd: submit without a session")
	}
	j := &req.Job
	if j.Number <= 0 {
		return nil, errf(http.StatusBadRequest, "schedd: job number %d must be positive", j.Number)
	}
	if j.Procs <= 0 {
		return nil, errf(http.StatusBadRequest, "schedd: job %d requests %d processors", j.Number, j.Procs)
	}
	if j.Request <= 0 {
		return nil, errf(http.StatusBadRequest, "schedd: job %d has no requested time", j.Number)
	}
	if j.Runtime < 0 {
		return nil, errf(http.StatusBadRequest, "schedd: job %d has negative runtime %d", j.Number, j.Runtime)
	}
	if j.Submit < 0 {
		return nil, errf(http.StatusBadRequest, "schedd: job %d submits at negative instant %d", j.Number, j.Submit)
	}
	if j.Partition < 0 {
		return nil, errf(http.StatusBadRequest, "schedd: job %d has negative partition %d", j.Number, j.Partition)
	}
	return &req, nil
}

// writeError renders an error on the wire: typed *Error with its
// status, anything else as a 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var api *Error
	if errors.As(err, &api) {
		status = api.Status
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Handler returns the daemon's HTTP surface. All state lives in the
// daemon; the handler is stateless and safe for concurrent use.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()

	post := func(pattern string, fn func(body []byte) error) {
		mux.HandleFunc("POST "+pattern, func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
			if err != nil {
				writeError(w, errf(http.StatusRequestEntityTooLarge, "schedd: %v", err))
				return
			}
			if err := fn(body); err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, map[string]bool{"ok": true})
		})
	}

	post("/v1/sessions", func(body []byte) error {
		var req sessionRequest
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			return err
		}
		return d.OpenSession(req.Session, req.Client)
	})
	post("/v1/sessions/close", func(body []byte) error {
		var req sessionRequest
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			return err
		}
		return d.CloseSession(req.Session)
	})
	post("/v1/jobs", func(body []byte) error {
		req, err := ParseSubmitRequest(body)
		if err != nil {
			return err
		}
		return d.Submit(req.Session, req.Job.record())
	})
	post("/v1/cancel", func(body []byte) error {
		var req cancelRequest
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			return err
		}
		return d.Cancel(req.Session, req.T, req.Job)
	})
	post("/v1/drain", func(body []byte) error {
		var req capacityRequest
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			return err
		}
		return d.Drain(req.Session, req.T, req.Procs)
	})
	post("/v1/restore", func(body []byte) error {
		var req capacityRequest
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			return err
		}
		return d.Restore(req.Session, req.T, req.Procs)
	})
	post("/v1/advance", func(body []byte) error {
		var req advanceRequest
		if err := decodeStrict(bytes.NewReader(body), &req); err != nil {
			return err
		}
		return d.Advance(req.Session, req.T)
	})

	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Metrics())
	})

	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		watermark, open, draining := d.seq.snapshot()
		writeJSON(w, map[string]any{
			"workload":  d.opts.Workload,
			"triple":    d.opts.Triple.Name(),
			"max_procs": d.opts.MaxProcs,
			"scale":     d.opts.Scale,
			"watermark": watermark,
			"sessions":  open,
			"draining":  draining,
		})
	})

	mux.HandleFunc("POST /v1/whatif", func(w http.ResponseWriter, r *http.Request) {
		var req whatIfRequest
		if err := decodeStrict(http.MaxBytesReader(w, r.Body, maxBodyBytes), &req); err != nil {
			writeError(w, err)
			return
		}
		proj, err := d.WhatIf(req.Events)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, proj)
	})

	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		d.serveEvents(w, r)
	})

	mux.HandleFunc("POST /v1/shutdown", func(w http.ResponseWriter, r *http.Request) {
		res, err := d.Shutdown()
		if err != nil {
			writeError(w, errf(http.StatusInternalServerError, "schedd: run failed: %v", err))
			return
		}
		writeJSON(w, map[string]any{
			"finished":    res.Finished,
			"canceled":    res.Canceled,
			"makespan":    res.Makespan,
			"corrections": res.Corrections,
			"metrics":     d.Metrics(),
		})
	})

	return mux
}

// serveEvents streams flight-recorder events live: JSONL by default
// (one obs.Event per line, the schema cmd/tracestat reads), or SSE
// ("data: <event-json>" frames) when the client asks for
// text/event-stream. The stream ends when the engine exits or the
// client disconnects.
func (d *Daemon) serveEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errf(http.StatusNotImplemented, "schedd: event stream needs a flushing writer"))
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")

	// Subscribe before the response headers go out: a client that has
	// seen the 200 is guaranteed to observe every event from then on.
	sub := d.hub.subscribe()
	stop := context.AfterFunc(r.Context(), func() { d.hub.unsubscribe(sub) })
	defer stop()
	defer d.hub.unsubscribe(sub)

	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		batch, ok := sub.Next()
		if !ok {
			return
		}
		for i := range batch {
			line, err := obs.MarshalLine(&batch[i])
			if err != nil {
				return
			}
			if sse {
				if _, err := fmt.Fprintf(w, "data: %s\n", line); err != nil {
					return
				}
			} else if _, err := w.Write(line); err != nil {
				return
			}
		}
		flusher.Flush()
	}
}
