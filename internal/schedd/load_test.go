package schedd_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schedd"
	"repro/internal/swf"
)

// jobRecord builds a minimal submission for the load tests; scaled
// mode stamps the submit instant, so it starts at zero.
func jobRecord(id, procs, runtime int64) swf.Job {
	return swf.Job{
		JobNumber:      id,
		RunTime:        runtime,
		AllocatedProcs: procs,
		RequestedProcs: procs,
		RequestedTime:  runtime * 2,
	}
}

// countingTracer tallies decision events without retaining them, so
// the load tests can assert no decision was lost or duplicated at any
// concurrency level without holding the full trace.
type countingTracer struct {
	submits  atomic.Int64
	finishes atomic.Int64
	cancels  atomic.Int64
}

func (c *countingTracer) Trace(ev *obs.Event) {
	switch ev.Kind {
	case obs.KindSubmit:
		c.submits.Add(1)
	case obs.KindFinish:
		c.finishes.Add(1)
	case obs.KindCancel:
		c.cancels.Add(1)
	}
}

// TestLoadGOMAXPROCS hammers a scaled-time daemon with thousands of
// concurrent submitters and cancellers across a GOMAXPROCS matrix:
// 1 forces full interleaving on one OS thread, 2 pits the intake
// against the engine goroutine, 8 runs everything truly concurrently
// (mirroring parallel_stress_test.go). Whatever the runtime's
// schedule, no submission or decision may be lost or duplicated:
// every accepted job is traced exactly once at submit and once at
// finish, and the sink observes each exactly once. The cancellers
// target an id range that is never submitted — the documented benign
// case — so they stress the cancel intake concurrently without making
// the accounting ambiguous (a cancel racing a finish in wall time can
// legitimately land either way; the deterministic cancel/decision
// identity is TestReplayDiffAPI's job). Under `go test -race` (the CI
// race job) this doubles as the data-race stress for the sequencer,
// hub, and metrics paths.
func TestLoadGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			loadOnce(t)
		})
	}
}

func loadOnce(t *testing.T) {
	const (
		nSubmitters = 1200
		nCancellers = 300
		jobsPer     = 3
		nJobs       = nSubmitters * jobsPer
	)
	tracer := &countingTracer{}
	d, err := schedd.New(schedd.Options{
		Workload: "load",
		MaxProcs: 512,
		Triple:   core.EASYPlusPlus(),
		Scale:    1e7, // virtual time outruns the wall clock: jobs drain as fast as the engine pops
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	var accepted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nSubmitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("sub-%d", i)
			if err := d.OpenSession(session, ""); err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < jobsPer; k++ {
				id := int64(i*jobsPer+k) + 1
				if err := d.Submit(session, jobRecord(id, 4, 60)); err != nil {
					t.Error(err)
					return
				}
				accepted.Add(1)
			}
			if err := d.CloseSession(session); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := 0; i < nCancellers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("can-%d", i)
			if err := d.OpenSession(session, ""); err != nil {
				t.Error(err)
				return
			}
			// Beyond the submitted range: always the benign absent-id
			// cancel. Scaled mode stamps the instant; 0 is ignored.
			if err := d.Cancel(session, 0, int64(nJobs+i+1)); err != nil {
				t.Error(err)
				return
			}
			if err := d.CloseSession(session); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	res, err := d.Shutdown()
	if err != nil {
		t.Fatal(err)
	}

	want := accepted.Load()
	if want != nJobs {
		t.Fatalf("accepted %d of %d submissions", want, nJobs)
	}
	if int64(res.Finished) != want {
		t.Fatalf("lost jobs: %d accepted, %d finished", want, res.Finished)
	}
	if res.Canceled != 0 {
		t.Fatalf("absent-id cancels canceled %d jobs", res.Canceled)
	}
	if got := tracer.submits.Load(); got != want {
		t.Fatalf("submit events %d != accepted %d", got, want)
	}
	if got := tracer.finishes.Load(); got != want {
		t.Fatalf("finish events %d != accepted %d", got, want)
	}
	if got := int64(d.Overall().Finished()); got != want {
		t.Fatalf("sink observed %d jobs, accepted %d", got, want)
	}
	if snap := d.Metrics(); snap.Finished != res.Finished {
		t.Fatalf("metrics snapshot finished %d != result %d", snap.Finished, res.Finished)
	}
}

// TestLoadShutdownCompletesInflight drains a daemon while submitters
// are still running — the SIGTERM path, since cmd/schedd maps the
// signal to Shutdown. Shutdown must let every command already accepted
// run to completion, and late enqueues must fail cleanly with the
// draining conflict rather than being silently dropped.
func TestLoadShutdownCompletesInflight(t *testing.T) {
	tracer := &countingTracer{}
	d, err := schedd.New(schedd.Options{
		Workload: "drain",
		MaxProcs: 256,
		Triple:   core.EASY(),
		Scale:    1e7,
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	const nSessions = 64
	var accepted, rejected atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		if err := d.OpenSession(fmt.Sprintf("s%d", i), ""); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for k := 0; k < 50; k++ {
				id := int64(i*50+k) + 1
				switch err := d.Submit(fmt.Sprintf("s%d", i), jobRecord(id, 2, 30)); {
				case err == nil:
					accepted.Add(1)
				case isConflict(err):
					rejected.Add(1)
					return // the daemon is draining; stop submitting
				default:
					t.Error(err)
					return
				}
			}
		}(i)
	}

	close(start)
	res, err := d.Shutdown() // races the submitters by design
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Shutdown closed the intake at some arbitrary point; everything
	// accepted before that point must have completed, everything after
	// must have been rejected with a conflict.
	if int64(res.Finished) != accepted.Load() {
		t.Fatalf("in-flight work lost: %d accepted, %d finished", accepted.Load(), res.Finished)
	}
	if tracer.submits.Load() != accepted.Load() {
		t.Fatalf("submit events %d != accepted %d", tracer.submits.Load(), accepted.Load())
	}
	if tracer.finishes.Load() != accepted.Load() {
		t.Fatalf("finish events %d != accepted %d", tracer.finishes.Load(), accepted.Load())
	}
}

// isConflict reports whether err is the daemon's draining/closed 409.
func isConflict(err error) bool {
	api, ok := err.(*schedd.Error)
	return ok && api.Status == 409
}
