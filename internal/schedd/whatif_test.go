package schedd_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schedd"
)

// waitFinished polls the metrics snapshot until the daemon has retired
// n jobs — the only way to detect quiescence from outside, since the
// engine goroutine consumes asynchronously.
func waitFinished(t *testing.T, d *schedd.Daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if snap := d.Metrics(); snap.Finished == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reached %d finished jobs (at %d)", n, d.Metrics().Finished)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWhatIfLeavesLiveUntouched is the fork-correctness guarantee: a
// projection must share no mutable state with the serving path. The
// daemon processes a full trace and stays live; what-if projections
// run against empty, capacity, and cancellation hypotheses; and the
// live metrics snapshot and decision trace must be bit-identical
// before and after. The empty hypothesis must project exactly the
// live run's own outcome.
func TestWhatIfLeavesLiveUntouched(t *testing.T) {
	w := genWorkload(t, "KTH-SP2", 150)
	w.Clients = nil
	triple := core.EASYPlusPlus()
	refRes, refPer, _ := runStreamRef(t, w, triple)

	daemonTrace := &obs.Collector{}
	d, err := schedd.New(schedd.Options{
		Workload: w.Name, MaxProcs: w.MaxProcs, Triple: triple, Tracer: daemonTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	// "keeper" holds the daemon live after "feed" closes; its advance
	// promise lets the engine retire every queued event.
	if err := d.OpenSession("keeper", ""); err != nil {
		t.Fatal(err)
	}
	if err := d.OpenSession("feed", ""); err != nil {
		t.Fatal(err)
	}
	for i := range w.Jobs {
		if err := d.Submit("feed", w.Jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CloseSession("feed"); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance("keeper", 1<<40); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, d, len(w.Jobs))

	snapBefore, err := json.Marshal(d.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	eventsBefore := daemonTrace.Events()

	// Empty hypothesis: the projection is the live run's own outcome.
	proj, err := d.WhatIf(nil)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Finished != len(w.Jobs) {
		t.Fatalf("empty projection finished %d, live %d", proj.Finished, len(w.Jobs))
	}
	live := d.Metrics()
	if proj.AVEbsld != live.AVEbsld || proj.MaxBsld != live.MaxBsld || proj.MeanWait != live.MeanWait {
		t.Fatalf("empty projection diverged from live metrics:\nproj %+v\nlive %+v", proj, live)
	}
	if proj.Makespan != refRes.Makespan {
		t.Fatalf("empty projection makespan %d, reference %d", proj.Makespan, refRes.Makespan)
	}
	if proj.AVEbsld != refPer.Overall().AVEbsld() {
		t.Fatalf("empty projection AVEbsld %v, reference %v", proj.AVEbsld, refPer.Overall().AVEbsld())
	}

	// Capacity hypothesis: drain half the machine across the whole
	// run. The projection must complete (drain restored) and report.
	half := w.MaxProcs / 2
	capProj, err := d.WhatIf([]schedd.WhatIfEvent{
		{Kind: "drain", T: 0, Procs: half},
		{Kind: "restore", T: refRes.Makespan + 1, Procs: half},
	})
	if err != nil {
		t.Fatal(err)
	}
	if capProj.Finished != len(w.Jobs) {
		t.Fatalf("capacity projection finished %d of %d", capProj.Finished, len(w.Jobs))
	}

	// Cancellation hypothesis: dropping a job before submission must
	// project exactly one cancellation.
	victim := w.Jobs[len(w.Jobs)/2]
	cancelProj, err := d.WhatIf([]schedd.WhatIfEvent{
		{Kind: "cancel", T: 0, Job: victim.JobNumber},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cancelProj.Canceled != 1 || cancelProj.Finished != len(w.Jobs)-1 {
		t.Fatalf("cancel projection: %d canceled, %d finished; want 1, %d",
			cancelProj.Canceled, cancelProj.Finished, len(w.Jobs)-1)
	}

	// The serving path is bit-identical: same metrics snapshot, same
	// decision trace, before and after three forks.
	snapAfter, err := json.Marshal(d.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	if string(snapBefore) != string(snapAfter) {
		t.Fatalf("projections perturbed the live metrics:\nbefore %s\nafter  %s", snapBefore, snapAfter)
	}
	eventsAfter := daemonTrace.Events()
	if len(eventsAfter) != len(eventsBefore) {
		t.Fatalf("projections emitted %d live trace events", len(eventsAfter)-len(eventsBefore))
	}
	assertSameEvents(t, eventsBefore, eventsAfter)

	if err := d.CloseSession("keeper"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, refRes, res)
	assertSameCollector(t, "overall", refPer.Overall(), d.Overall(), refRes.Makespan, w.MaxProcs)
}

// TestWhatIfConcurrentWithTraffic forks projections while submitters
// are still feeding the daemon: every projection must succeed (each
// replays a consistent history prefix), and the completed run must
// still match the offline reference byte for byte — proof the forks
// never perturb an engine that is actively scheduling.
func TestWhatIfConcurrentWithTraffic(t *testing.T) {
	const nClients = 2
	w := genWorkload(t, "SDSC-SP2", 200)
	names := stampClients(w, nClients)
	triple := core.EASY()
	refRes, refPer, refEvents := runStreamRef(t, w, triple)

	daemonTrace := &obs.Collector{}
	d, err := schedd.New(schedd.Options{
		Workload: w.Name, MaxProcs: w.MaxProcs, Triple: triple, Clients: names, Tracer: daemonTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nClients; i++ {
		if err := d.OpenSession(fmt.Sprintf("s%d", i), names[i]); err != nil {
			t.Fatal(err)
		}
	}
	var submitters sync.WaitGroup
	for i := 0; i < nClients; i++ {
		submitters.Add(1)
		go func(i int) {
			defer submitters.Done()
			for k := i; k < len(w.Jobs); k += nClients {
				if err := d.Submit(fmt.Sprintf("s%d", i), w.Jobs[k]); err != nil {
					t.Error(err)
					return
				}
			}
			if err := d.CloseSession(fmt.Sprintf("s%d", i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	stop := make(chan struct{})
	var forker sync.WaitGroup
	forker.Add(1)
	go func() {
		defer forker.Done()
		forks := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.WhatIf(nil); err != nil {
				t.Error(err)
				return
			}
			forks++
		}
	}()

	submitters.Wait()
	close(stop)
	forker.Wait()
	if t.Failed() {
		t.FailNow()
	}

	res, err := d.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, refRes, res)
	assertSameEvents(t, refEvents, daemonTrace.Events())
	assertSameCollector(t, "overall", refPer.Overall(), d.Overall(), refRes.Makespan, w.MaxProcs)
}

// TestWhatIfRejects pins the projection surface's error contract.
func TestWhatIfRejects(t *testing.T) {
	d, err := schedd.New(schedd.Options{Workload: "w", MaxProcs: 16, Triple: core.EASY()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	cases := []struct {
		name   string
		events []schedd.WhatIfEvent
		status int
	}{
		{"unknown kind", []schedd.WhatIfEvent{{Kind: "explode", T: 1}}, 400},
		{"negative instant", []schedd.WhatIfEvent{{Kind: "drain", T: -1, Procs: 4}}, 400},
		{"zero-proc drain", []schedd.WhatIfEvent{{Kind: "drain", T: 1}}, 400},
		{"zero-proc restore", []schedd.WhatIfEvent{{Kind: "restore", T: 1}}, 400},
		{"zero-id cancel", []schedd.WhatIfEvent{{Kind: "cancel", T: 1}}, 400},
		{"out of order", []schedd.WhatIfEvent{
			{Kind: "drain", T: 10, Procs: 4},
			{Kind: "restore", T: 5, Procs: 4},
		}, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := d.WhatIf(tc.events)
			api, ok := err.(*schedd.Error)
			if !ok {
				t.Fatalf("got %v, want *schedd.Error", err)
			}
			if api.Status != tc.status {
				t.Fatalf("status %d, want %d: %v", api.Status, tc.status, err)
			}
		})
	}

	// An unrestored drain strands hypothetical jobs: the replay cannot
	// complete, and the projection reports it as unprocessable.
	if err := d.OpenSession("s", ""); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit("s", jobRecord(1, 8, 100)); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance("s", 1<<40); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, d, 1)
	_, err = d.WhatIf([]schedd.WhatIfEvent{{Kind: "drain", T: 0, Procs: 16}})
	api, ok := err.(*schedd.Error)
	if !ok || api.Status != 422 {
		t.Fatalf("unrestored drain: got %v, want 422", err)
	}
}
