package schedd

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// commandLog records every command the sequencer emitted, in engine
// order — the daemon's replayable history. A what-if projection forks
// the run by replaying a snapshot of this log (plus the hypothetical
// events) through a fresh engine with fresh policy sessions, which by
// the determinism invariant reproduces the live engine's state exactly
// without touching it. Memory is O(history): one Command per emitted
// command, advances excluded (a replay needs no pacing).
type commandLog struct {
	mu   sync.Mutex
	cmds []sim.Command
}

func (l *commandLog) append(cmd sim.Command) {
	if cmd.Kind == sim.CmdAdvance {
		return
	}
	l.mu.Lock()
	l.cmds = append(l.cmds, cmd)
	l.mu.Unlock()
}

// snapshot copies the history so replay never races ongoing appends.
func (l *commandLog) snapshot() []sim.Command {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]sim.Command(nil), l.cmds...)
}

// loggingSource interposes on the sequencer: every command the engine
// pulls is recorded before it is applied, so the log is exactly the
// engine's input in engine order.
type loggingSource struct {
	next sim.CommandSource
	log  *commandLog
}

func (s *loggingSource) NextCommand() (sim.Command, error) {
	cmd, err := s.next.NextCommand()
	if err == nil {
		s.log.append(cmd)
	}
	return cmd, err
}

// WhatIfEvent is one hypothetical disruption of a projection: a drain,
// restore, or cancellation at a stated instant.
type WhatIfEvent struct {
	// Kind is "drain", "restore" or "cancel".
	Kind string `json:"kind"`
	// T is the virtual instant of the hypothetical event.
	T int64 `json:"t"`
	// Procs is the capacity delta (drain/restore).
	Procs int64 `json:"procs,omitempty"`
	// Job is the cancellation target (cancel).
	Job int64 `json:"job,omitempty"`
}

// Projection is a what-if answer: the completed hypothetical run's
// headline metrics.
type Projection struct {
	Workload    string  `json:"workload"`
	Triple      string  `json:"triple"`
	Finished    int     `json:"finished"`
	Canceled    int     `json:"canceled"`
	AVEbsld     float64 `json:"avebsld"`
	MaxBsld     float64 `json:"max_bsld"`
	MeanWait    float64 `json:"mean_wait"`
	Utilization float64 `json:"utilization"`
	Makespan    int64   `json:"makespan"`
	// Commands is how much history the projection replayed.
	Commands int `json:"commands"`
}

// lower turns a hypothetical event into a command.
func (ev *WhatIfEvent) lower() (sim.Command, error) {
	if ev.T < 0 {
		return sim.Command{}, errf(400, "schedd: what-if %s at negative instant %d", ev.Kind, ev.T)
	}
	switch ev.Kind {
	case "drain":
		if ev.Procs <= 0 {
			return sim.Command{}, errf(400, "schedd: what-if drain of %d processors", ev.Procs)
		}
		return sim.DrainCommand(ev.T, ev.Procs), nil
	case "restore":
		if ev.Procs <= 0 {
			return sim.Command{}, errf(400, "schedd: what-if restore of %d processors", ev.Procs)
		}
		return sim.RestoreCommand(ev.T, ev.Procs), nil
	case "cancel":
		if ev.Job <= 0 {
			return sim.Command{}, errf(400, "schedd: what-if cancel of job %d", ev.Job)
		}
		return sim.CancelCommand(ev.T, ev.Job), nil
	}
	return sim.Command{}, errf(400, "schedd: unknown what-if event kind %q", ev.Kind)
}

// mergeCommands interleaves the hypothetical commands (already sorted
// by the caller) into the base history by the deterministic command
// order, base first on full ties so the hypothesis perturbs the
// recorded schedule as little as possible.
func mergeCommands(base, hyp []sim.Command) []sim.Command {
	out := make([]sim.Command, 0, len(base)+len(hyp))
	i, j := 0, 0
	for i < len(base) && j < len(hyp) {
		if cmdLess(&hyp[j], &base[i], "", "") {
			out = append(out, hyp[j])
			j++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	out = append(out, base[i:]...)
	out = append(out, hyp[j:]...)
	return out
}

// WhatIf projects the run's outcome under hypothetical events: it
// replays the command history so far, merged with the hypothesis,
// through a fresh engine and fresh policy sessions, and reports the
// projected metrics. The live engine is untouched — the projection
// shares no mutable state with it (whatif_test.go proves the live
// counters and trace are bit-identical before and after). An empty
// hypothesis projects the live run's own completion.
func (d *Daemon) WhatIf(events []WhatIfEvent) (*Projection, error) {
	hyp := make([]sim.Command, 0, len(events))
	for i := range events {
		cmd, err := events[i].lower()
		if err != nil {
			return nil, err
		}
		hyp = append(hyp, cmd)
	}
	for i := 1; i < len(hyp); i++ {
		if cmdLess(&hyp[i], &hyp[i-1], "", "") {
			return nil, errf(400, "schedd: what-if events out of order: %s at %d after %d", hyp[i].Kind, hyp[i].Time, hyp[i-1].Time)
		}
	}
	base := d.log.snapshot()
	merged := mergeCommands(base, hyp)

	cfg := d.opts.Triple.Config()
	coll := metrics.NewCollector()
	cfg.Sink = coll
	res, err := sim.RunLive(d.opts.Workload+"+whatif", d.opts.MaxProcs, sim.NewSliceCommands(merged), cfg)
	if err != nil {
		return nil, errf(422, "schedd: what-if replay: %v", err)
	}
	return &Projection{
		Workload:    res.Workload,
		Triple:      res.Triple,
		Finished:    coll.Finished(),
		Canceled:    res.Canceled,
		AVEbsld:     coll.AVEbsld(),
		MaxBsld:     coll.MaxBsld(),
		MeanWait:    coll.MeanWait(),
		Utilization: coll.Utilization(res.Makespan, d.opts.MaxProcs),
		Makespan:    res.Makespan,
		Commands:    len(base),
	}, nil
}
