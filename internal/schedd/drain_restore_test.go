package schedd_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schedd"
	"repro/internal/swf"
)

// TestDrainRestoreRoundTrip walks a machine through a maintenance
// window announced over the daemon API: drain half the machine, submit
// a full-width job that cannot start while drained, restore, and check
// the in-process event subscription saw the whole story in engine
// order. This covers the direct (non-HTTP) Drain/Restore/Subscribe
// surface the wire tests reach only indirectly.
func TestDrainRestoreRoundTrip(t *testing.T) {
	d, err := schedd.New(schedd.Options{Workload: "dr", MaxProcs: 4, Triple: core.EASYPlusPlus()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	sub := d.Subscribe()

	if err := d.OpenSession("ops", ""); err != nil {
		t.Fatal(err)
	}
	// One session's commands must carry nondecreasing instants (each
	// enqueue raises its floor), so the window is announced in instant
	// order: drain, the full-width submission inside the window, restore.
	if err := d.Drain("ops", 10, 2); err != nil {
		t.Fatal(err)
	}
	// Full-width job submitted inside the window: it must wait for the
	// restore, so its start instant proves the window was honored.
	if err := d.Submit("ops", jobRecordAt(1, 20, 4, 30)); err != nil {
		t.Fatal(err)
	}
	if err := d.Restore("ops", 100, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance("ops", 1<<40); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, d, 1)
	if err := d.CloseSession("ops"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	<-d.Done()
	if want := int64(100 + 30); res.Makespan != want {
		t.Fatalf("makespan %d, want %d (start held until the restore at 100)", res.Makespan, want)
	}

	var events []obs.Event
	for {
		batch, ok := sub.Next()
		if !ok {
			break
		}
		events = append(events, batch...)
	}
	var started int64 = -1
	for _, ev := range events {
		if ev.Kind == obs.KindStart && ev.Job == 1 {
			started = ev.T
		}
	}
	if started != 100 {
		t.Fatalf("subscriber saw job 1 start at %d, want 100 (events: %d)", started, len(events))
	}
}

// TestSubmitValidation pins every rejection of the in-process Submit
// and the drain/restore guards — each is a 400 before anything reaches
// the sequencer.
func TestSubmitValidation(t *testing.T) {
	d, err := schedd.New(schedd.Options{Workload: "val", MaxProcs: 8, Triple: core.EASYPlusPlus()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if err := d.OpenSession("s", ""); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"job number", d.Submit("s", jobRecordAt(0, 1, 1, 10)), "job number 0 must be positive"},
		{"no procs", d.Submit("s", jobRecordAt(1, 1, 0, 10)), "requests 0 processors"},
		{"negative submit", d.Submit("s", jobRecordAt(1, -5, 1, 10)), "negative instant -5"},
		{"negative runtime", d.Submit("s", negRuntime()), "negative runtime -10"},
		{"zero drain", d.Drain("s", 1, 0), "drain of 0 processors"},
		{"zero restore", d.Restore("s", 1, 0), "restore of 0 processors"},
	}
	for _, tc := range cases {
		if tc.err == nil || !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, tc.err, tc.want)
		}
	}
	// Request() falls back to the logged runtime, so reaching the
	// no-requested-time rejection needs both zeroed.
	norequest := jobRecordAt(2, 1, 1, 0)
	norequest.RequestedTime = 0
	if err := d.Submit("s", norequest); err == nil || !strings.Contains(err.Error(), "no requested time") {
		t.Errorf("no-request error %v", err)
	}
}

// negRuntime is a job with a valid request but a negative logged
// runtime (jobRecord derives the request from the runtime, so the
// request must be pinned separately to reach this branch).
func negRuntime() swf.Job {
	rec := jobRecordAt(1, 1, 1, -10)
	rec.RequestedTime = 20
	return rec
}
