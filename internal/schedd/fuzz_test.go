package schedd_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// FuzzSubmitRequest fuzzes the HTTP submission decoder: it must never
// panic, must reject structurally invalid requests (unknown fields,
// trailing data, out-of-range values) with a typed 400, and every
// accepted request must survive a marshal/parse round trip unchanged —
// so nothing the daemon admits can differ from what the client sent.
func FuzzSubmitRequest(f *testing.F) {
	seeds := []string{
		`{"session":"s0","job":{"number":1,"submit":0,"procs":4,"request":600,"runtime":300}}`,
		`{"session":"s1","job":{"number":7,"submit":120,"procs":1,"request":60,"runtime":60,"user":3,"partition":2}}`,
		`{"session":"","job":{"number":1,"procs":1,"request":1}}`,
		`{"session":"s","job":{"number":-1,"procs":1,"request":1}}`,
		`{"session":"s","job":{"number":1,"procs":0,"request":1}}`,
		`{"session":"s","job":{"number":1,"procs":1,"request":1,"submit":-5}}`,
		`{"session":"s","job":{"number":1,"procs":1,"request":1},"extra":true}`,
		`{"session":"s","job":{"number":1,"procs":1,"request":1}}{"again":1}`,
		`{"session":"s","job":{"number":9223372036854775807,"procs":9223372036854775807,"request":1}}`,
		`not json at all`,
		`null`,
		`[]`,
		`{}`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := schedd.ParseSubmitRequest(data)
		if err != nil {
			api, ok := err.(*schedd.Error)
			if !ok {
				t.Fatalf("untyped decode error: %v", err)
			}
			if api.Status != 400 {
				t.Fatalf("decode rejection carried status %d: %v", api.Status, err)
			}
			return
		}
		// Accepted: the validated invariants must actually hold...
		j := req.Job
		if req.Session == "" || j.Number <= 0 || j.Procs <= 0 || j.Request <= 0 ||
			j.Runtime < 0 || j.Submit < 0 || j.Partition < 0 {
			t.Fatalf("accepted an invalid request: %+v", req)
		}
		// ...and the request must round-trip bit-stable.
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		req2, err := schedd.ParseSubmitRequest(re)
		if err != nil {
			t.Fatalf("round trip rejected %s: %v", re, err)
		}
		if *req2 != *req {
			t.Fatalf("round trip changed the request:\nbefore %+v\nafter  %+v", req, req2)
		}
	})
}

// FuzzEventStream fuzzes the daemon's event-stream encoding against
// cmd/tracestat's reader: any event the stream emits (obs.MarshalLine,
// the exact bytes GET /v1/events writes per line) must decode through
// obs.ReadFile — strict field checking included — back to the same
// event. String fields take raw fuzz bytes, so JSON escaping of
// control characters and invalid UTF-8 is on trial too.
func FuzzEventStream(f *testing.F) {
	f.Add(int64(0), "submit", int64(1), "", int64(4), int64(600), int64(300), "", int64(0), 3, int64(12), int64(100), int64(42))
	f.Add(int64(7), "pick", int64(9), "cluster-a", int64(8), int64(0), int64(0), "EASY", int64(9), 2, int64(4), int64(96), int64(0))
	f.Add(int64(1<<40), "capacity", int64(0), "c", int64(-64), int64(0), int64(0), "", int64(0), 0, int64(0), int64(0), int64(0))
	f.Add(int64(-1), "finish", int64(2), "x\x00\x7f", int64(1), int64(1), int64(1), "p\xffq", int64(2), 1, int64(1), int64(1), int64(1))
	f.Fuzz(func(t *testing.T, at int64, kind string, jobID int64, cluster string,
		procs, request, prediction int64, policy string, picked int64,
		queueLen int, free, eventual, nanos int64) {
		ev := obs.Event{
			T: at, Kind: kind, Job: jobID, Cluster: cluster,
			Procs: procs, Request: request, Prediction: prediction,
			Policy: policy, Picked: picked,
			QueueLen: queueLen, Free: free, Eventual: eventual, Nanos: nanos,
		}
		line, err := obs.MarshalLine(&ev)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.HasSuffix(line, []byte("\n")) || bytes.Count(line, []byte("\n")) != 1 {
			t.Fatalf("not a single JSONL line: %q", line)
		}

		path := filepath.Join(t.TempDir(), "stream.jsonl")
		if err := os.WriteFile(path, line, 0o644); err != nil {
			t.Fatal(err)
		}
		var got []obs.Event
		if err := obs.ReadFile(path, func(_ int, ev obs.Event) error {
			got = append(got, ev)
			return nil
		}); err != nil {
			t.Fatalf("stream line does not round-trip through the trace reader: %v\nline: %q", err, line)
		}
		if len(got) != 1 {
			t.Fatalf("one event in, %d out", len(got))
		}
		// JSON string round trips replace invalid UTF-8 with the
		// replacement rune, so compare the JSON forms, which are
		// already past that normalization.
		want, _ := json.Marshal(normalizeThroughJSON(t, ev))
		have, _ := json.Marshal(got[0])
		if !bytes.Equal(want, have) {
			t.Fatalf("event changed in flight:\nsent %s\ngot  %s", want, have)
		}
	})
}

// normalizeThroughJSON passes an event through one marshal/unmarshal so
// the comparison baseline has the same UTF-8 normalization the wire
// imposes.
func normalizeThroughJSON(t *testing.T, ev obs.Event) obs.Event {
	t.Helper()
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var out obs.Event
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}
