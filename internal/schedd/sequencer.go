// Package schedd is the scheduler-as-a-service layer: a daemon that
// accepts job submissions, cancellations and drain/restore
// announcements from many concurrent clients, advances the shared
// event core (sim.RunLive) behind a single sequencing goroutine,
// streams decisions and live per-client metrics out, and answers
// what-if queries by replaying its command log against a hypothetical
// script. The HTTP+JSON surface lives in server.go; cmd/schedd wraps
// it in a process.
//
// The daemon runs in one of two time modes. In virtual mode
// (Options.Scale == 0) clients state the virtual instant of every
// command and raise per-session floors — promises that no later
// command of theirs will carry an earlier instant — and the sequencer
// merges the sessions deterministically (below). In scaled mode
// (Scale > 0) the daemon stamps commands with a monotone virtual
// clock derived from the wall clock (Scale virtual seconds per wall
// second) and arrival order is the schedule; scaled runs are
// real-time, not reproducible.
//
// # Determinism invariants
//
// A virtual-time daemon is deterministic across any interleaving of
// its clients: the schedule depends only on the set of commands each
// session submits, never on goroutine timing. The invariants that
// guarantee it, on top of the sim package's own:
//
//   - Total command order. The sequencer emits the pending command
//     with the least (time, kind, number, session) key — submissions
//     before cancellations before drains before restores within an
//     instant, job number then session name breaking ties — so any
//     partition of a canonically tie-ordered trace (nondecreasing
//     (SubmitTime, JobNumber), the order every workload.Source
//     yields) re-merges into exactly the trace order, and the daemon
//     reproduces sim.RunStream byte for byte
//     (replay_diff_test.go).
//   - Floor discipline. A command is emitted only once every open
//     session's floor has strictly passed its instant (a session with
//     earlier commands still queued is held to those instead), so no
//     later arrival can be ordered before it; sessions opened after
//     traffic starts join at the emission watermark and cannot submit
//     into the past.
//   - Single consumer. One goroutine pulls the merged stream into
//     the engine; every observer (metrics, event stream, command
//     log) sees engine order, so collector float sums are
//     bit-identical to the offline run's.
//
// What-if projections never touch live state: they replay a snapshot
// of the command log (plus the hypothetical script) through a fresh
// engine and fresh policy sessions, trading O(history) replay work
// for zero synchronization with — and provably zero perturbation of —
// the serving path. (Deep-copying the policy sessions instead would
// require remapping their acceleration structures' pointers into live
// jobs; replay reuses the determinism invariant and needs no copy
// support from policies. See internal/sched.)
package schedd

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/sim"
)

// Error is an API error with the HTTP status the server surface maps
// it to; daemon methods return it so in-process callers and the wire
// agree on semantics.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string { return e.Msg }

func errf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// vclock maps the wall clock onto virtual seconds: scale virtual
// seconds elapse per wall second from the epoch. Monotone because the
// wall delta is.
type vclock struct {
	epoch time.Time
	scale float64
}

func (c *vclock) now() int64 {
	return int64(time.Since(c.epoch).Seconds() * c.scale)
}

// session is one client connection's intake state: its FIFO of
// pending commands and its floor — the promise that no future command
// of this session carries an earlier instant.
type session struct {
	name   string
	client int
	queue  []sim.Command
	head   int
	floor  int64
	closed bool
}

func (s *session) pending() bool { return s.head < len(s.queue) }

func (s *session) pop() sim.Command {
	cmd := s.queue[s.head]
	s.queue[s.head] = sim.Command{}
	s.head++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	return cmd
}

// cmdRank orders command kinds within one instant: submissions first,
// so a same-instant cancellation binds the job it targets (exactly
// RunStream's admit-before-pop discipline), then the remaining kinds
// in event-queue order. The event queue re-serializes the instant by
// event kind regardless.
func cmdRank(k sim.CommandKind) int {
	switch k {
	case sim.CmdSubmit:
		return 0
	case sim.CmdCancel:
		return 1
	case sim.CmdDrain:
		return 2
	case sim.CmdRestore:
		return 3
	}
	return 4
}

// cmdNum is the within-kind tie-break: job number for submissions and
// cancellations, processor count for capacity commands.
func cmdNum(c *sim.Command) int64 {
	switch c.Kind {
	case sim.CmdSubmit:
		return c.Job.JobNumber
	case sim.CmdCancel:
		return c.ID
	}
	return c.Procs
}

// cmdLess is the deterministic merge order over pending heads:
// (time, kind rank, number, session name).
func cmdLess(a, b *sim.Command, an, bn string) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if ra, rb := cmdRank(a.Kind), cmdRank(b.Kind); ra != rb {
		return ra < rb
	}
	if na, nb := cmdNum(a), cmdNum(b); na != nb {
		return na < nb
	}
	return an < bn
}

// sequencer is the single sequencing boundary between the concurrent
// client surface and the event core: producers enqueue under one
// mutex, one consumer (the engine goroutine) pulls the merged,
// nondecreasing-time command stream via NextCommand.
type sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond

	// clock is non-nil in scaled mode, where arrival stamping replaces
	// the deterministic merge.
	clock *vclock

	sessions map[string]*session
	// watermark is the largest emitted command or advance instant; new
	// sessions join at it so they cannot submit into the past.
	watermark int64
	// lastAdvance dedups synthesized advance promises.
	lastAdvance int64
	draining    bool

	// fifo is the scaled-mode global queue (arrival order is the
	// schedule, so sessions carry no ordering state).
	fifo  []sim.Command
	fhead int
	// tickPending gates scaled-mode advance synthesis on the ticker:
	// emitting an advance per NextCommand call would hot-spin the
	// engine, since the clock moves between any two reads.
	tickPending bool
}

func newSequencer(clock *vclock) *sequencer {
	s := &sequencer{
		clock:       clock,
		sessions:    make(map[string]*session),
		lastAdvance: math.MinInt64,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// open registers a session at the current watermark.
func (s *sequencer) open(name string, client int) error {
	if name == "" {
		return errf(http.StatusBadRequest, "schedd: session name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errf(http.StatusConflict, "schedd: daemon is draining")
	}
	if s.sessions[name] != nil {
		return errf(http.StatusConflict, "schedd: session %q already open", name)
	}
	s.sessions[name] = &session{name: name, client: client, floor: s.watermark}
	return nil
}

// close marks a session finished: its queued commands still drain,
// and its floor no longer constrains emission.
func (s *sequencer) close(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[name]
	if sess == nil {
		return errf(http.StatusNotFound, "schedd: unknown session %q", name)
	}
	if sess.closed {
		return errf(http.StatusConflict, "schedd: session %q already closed", name)
	}
	sess.closed = true
	s.cond.Broadcast()
	return nil
}

// enqueue appends one command to a session. In virtual mode the
// command's instant must not regress the session floor (and raises
// it); in scaled mode the instant is stamped from the clock. A
// submission with no partition stamp inherits the session's client
// index.
func (s *sequencer) enqueue(name string, cmd sim.Command) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[name]
	if sess == nil {
		return errf(http.StatusNotFound, "schedd: unknown session %q", name)
	}
	if sess.closed {
		return errf(http.StatusConflict, "schedd: session %q is closed", name)
	}
	if s.draining {
		return errf(http.StatusConflict, "schedd: daemon is draining")
	}
	if cmd.Kind == sim.CmdSubmit && cmd.Job.Partition == 0 {
		cmd.Job.Partition = int64(sess.client) + 1
	}
	if s.clock != nil {
		t := s.clock.now()
		if t < s.watermark {
			t = s.watermark
		}
		cmd.Time = t
		if cmd.Kind == sim.CmdSubmit {
			cmd.Job.SubmitTime = t
		}
		s.watermark = t
		s.fifo = append(s.fifo, cmd)
	} else {
		if cmd.Time < sess.floor {
			return errf(http.StatusConflict, "schedd: session %q: command at %d is behind the session floor %d", name, cmd.Time, sess.floor)
		}
		sess.floor = cmd.Time
		sess.queue = append(sess.queue, cmd)
	}
	s.cond.Broadcast()
	return nil
}

// advance raises a session's floor without enqueuing anything —
// virtual mode's heartbeat, letting the engine retire events up to
// the slowest client's promise.
func (s *sequencer) advance(name string, t int64) error {
	if s.clock != nil {
		return errf(http.StatusConflict, "schedd: a scaled-time daemon advances with its own clock")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[name]
	if sess == nil {
		return errf(http.StatusNotFound, "schedd: unknown session %q", name)
	}
	if sess.closed {
		return errf(http.StatusConflict, "schedd: session %q is closed", name)
	}
	if t > sess.floor {
		sess.floor = t
		s.cond.Broadcast()
	}
	return nil
}

// drain closes the intake: every session is closed, no new ones open,
// and once the queues empty NextCommand returns io.EOF — the engine
// then runs every remaining event to completion.
func (s *sequencer) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	for _, sess := range s.sessions {
		sess.closed = true
	}
	s.cond.Broadcast()
}

// wake marks a clock tick; the scaled-mode ticker calls it so the
// clock's progress turns into advance promises.
func (s *sequencer) wake() {
	s.mu.Lock()
	s.tickPending = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// snapshot reports the watermark and open-session count.
func (s *sequencer) snapshot() (watermark int64, open int, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		if !sess.closed {
			open++
		}
	}
	return s.watermark, open, s.draining
}

// NextCommand implements sim.CommandSource for the single engine
// goroutine: it blocks until a command is safely emittable, emitting
// synthesized advance promises whenever the floors (or the scaled
// clock) move past the last promise, and io.EOF once the daemon is
// draining and the queues are dry.
func (s *sequencer) NextCommand() (sim.Command, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.clock != nil {
			if s.fhead < len(s.fifo) {
				cmd := s.fifo[s.fhead]
				s.fifo[s.fhead] = sim.Command{}
				s.fhead++
				if s.fhead == len(s.fifo) {
					s.fifo = s.fifo[:0]
					s.fhead = 0
				}
				return cmd, nil
			}
			if s.draining {
				return sim.Command{}, io.EOF
			}
			if s.tickPending {
				s.tickPending = false
				t := s.clock.now()
				if t < s.watermark {
					t = s.watermark
				}
				if t > s.lastAdvance {
					s.lastAdvance = t
					s.watermark = t
					return sim.AdvanceCommand(t), nil
				}
			}
			s.cond.Wait()
			continue
		}

		// Virtual mode: deterministic k-way merge. The emitted command
		// is the least pending head, and it is emittable only once no
		// open session without pending commands could still produce one
		// ordered before it — strictly below every such floor, because
		// a command enqueued later at exactly the floor instant could
		// still win the within-instant tie-break. (A session with
		// pending commands is constrained by its head instead: its
		// floor is at least every pending instant, so any future
		// command of its sorts after them.)
		var best *session
		minOpenFloor := int64(math.MaxInt64)
		idle := true
		for _, sess := range s.sessions {
			if sess.pending() {
				idle = false
				if best == nil || cmdLess(&sess.queue[sess.head], &best.queue[best.head], sess.name, best.name) {
					best = sess
				}
			} else if !sess.closed {
				idle = false
				if sess.floor < minOpenFloor {
					minOpenFloor = sess.floor
				}
			}
		}
		if best != nil && best.queue[best.head].Time < minOpenFloor {
			cmd := best.pop()
			if cmd.Time > s.watermark {
				s.watermark = cmd.Time
			}
			return cmd, nil
		}
		if idle && s.draining {
			return sim.Command{}, io.EOF
		}
		// Emission is blocked; if the floors have collectively moved,
		// promise the progress to the engine so queued events before
		// the slowest floor can retire.
		if minOpenFloor > s.lastAdvance && minOpenFloor < math.MaxInt64 {
			s.lastAdvance = minOpenFloor
			if minOpenFloor > s.watermark {
				s.watermark = minOpenFloor
			}
			return sim.AdvanceCommand(minOpenFloor), nil
		}
		s.cond.Wait()
	}
}
