package schedd

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/swf"
)

// Options configures a daemon.
type Options struct {
	// Workload names the run (tags results and trace events).
	Workload string
	// MaxProcs is the machine size.
	MaxProcs int64
	// Triple selects the policy/predictor/corrector configuration; its
	// Config method is also the what-if fork factory (fresh sessions
	// per call).
	Triple core.Triple
	// Scale selects the time mode: 0 is virtual time (clients state
	// instants and raise floors; deterministic), >0 is scaled wall time
	// (Scale virtual seconds per wall second; the daemon stamps
	// arrival instants).
	Scale float64
	// Clients names the traffic sources for the per-client metric
	// split; a session opened with a client name outside this list
	// still schedules, its jobs just skip the split.
	Clients []string
	// Tracer, when non-nil, receives every flight-recorder event in
	// addition to the daemon's own event stream subscribers.
	Tracer obs.Tracer
	// TickEvery is the scaled-mode clock-advance period (default
	// 10ms). Virtual mode ignores it.
	TickEvery time.Duration
}

// Daemon is an in-process scheduling service: concurrent producers
// call Submit/Cancel/Drain/Restore/Advance (directly or through the
// HTTP surface in server.go), one engine goroutine consumes the
// sequenced command stream through sim.RunLive, and observers read
// metrics snapshots, subscribe to the event stream, and fork what-if
// projections. See the package comment for the determinism invariants.
type Daemon struct {
	opts Options
	seq  *sequencer
	log  *commandLog
	hub  *hub

	// mu guards the observation state fed by the engine goroutine
	// (through Observe) and read by Metrics.
	mu       sync.Mutex
	per      *metrics.PerClient
	maxEnd   int64
	finished int

	done   chan struct{}
	res    *sim.Result
	runErr error

	stopTick  chan struct{}
	tickerWG  sync.WaitGroup
	shutdown  sync.Once
	clientIdx map[string]int
}

// New starts a daemon: the engine goroutine launches immediately and
// blocks on the sequencer for traffic.
func New(opts Options) (*Daemon, error) {
	if opts.MaxProcs <= 0 {
		return nil, fmt.Errorf("schedd: machine size %d must be positive", opts.MaxProcs)
	}
	if opts.Scale < 0 {
		return nil, fmt.Errorf("schedd: time scale %g must not be negative", opts.Scale)
	}
	if opts.Workload == "" {
		opts.Workload = "live"
	}
	var clock *vclock
	if opts.Scale > 0 {
		clock = &vclock{epoch: time.Now(), scale: opts.Scale}
	}
	d := &Daemon{
		opts:      opts,
		seq:       newSequencer(clock),
		log:       &commandLog{},
		hub:       newHub(),
		per:       metrics.NewPerClient(opts.Clients),
		done:      make(chan struct{}),
		clientIdx: make(map[string]int, len(opts.Clients)),
	}
	for i, name := range opts.Clients {
		d.clientIdx[name] = i
	}

	cfg := opts.Triple.Config()
	cfg.Sink = d
	cfg.Tracer = d.tracer()

	if clock != nil {
		every := opts.TickEvery
		if every <= 0 {
			every = 10 * time.Millisecond
		}
		d.stopTick = make(chan struct{})
		d.tickerWG.Add(1)
		go func() {
			defer d.tickerWG.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					d.seq.wake()
				case <-d.stopTick:
					return
				}
			}
		}()
	}

	go func() {
		src := &loggingSource{next: d.seq, log: d.log}
		res, err := sim.RunLive(opts.Workload, opts.MaxProcs, src, cfg)
		d.res, d.runErr = res, err
		d.hub.closeAll()
		close(d.done)
	}()
	return d, nil
}

// tracer composes the event-stream hub with the configured tracer.
func (d *Daemon) tracer() obs.Tracer {
	if d.opts.Tracer == nil {
		return tagged(d.hub, d.opts)
	}
	return tagged(teeTracer{d.hub, d.opts.Tracer}, d.opts)
}

func tagged(t obs.Tracer, opts Options) obs.Tracer {
	return obs.Tagged{Tracer: t, Workload: opts.Workload, Triple: opts.Triple.Name()}
}

// teeTracer forwards each event to both tracers in order.
type teeTracer [2]obs.Tracer

func (t teeTracer) Trace(ev *obs.Event) {
	t[0].Trace(ev)
	t[1].Trace(ev)
}

// Observe implements sim.JobSink: the engine goroutine retires each
// finished job into the per-client collectors and the makespan bound.
func (d *Daemon) Observe(j *job.Job) {
	d.mu.Lock()
	d.per.Observe(j)
	d.finished++
	if j.End > d.maxEnd {
		d.maxEnd = j.End
	}
	d.mu.Unlock()
}

// OpenSession registers a client session. The client name selects the
// metric split (Options.Clients); unknown names schedule but stay out
// of the split.
func (d *Daemon) OpenSession(session, client string) error {
	idx, ok := d.clientIdx[client]
	if !ok {
		idx = -1
	}
	return d.seq.open(session, idx)
}

// CloseSession ends a session: its queued commands still drain, its
// floor stops constraining emission.
func (d *Daemon) CloseSession(session string) error {
	return d.seq.close(session)
}

// Submit enqueues one job submission on a session. In virtual mode
// rec.SubmitTime is the instant and must respect the session floor; in
// scaled mode the daemon stamps it.
func (d *Daemon) Submit(session string, rec swf.Job) error {
	if rec.JobNumber <= 0 {
		return errf(400, "schedd: job number %d must be positive", rec.JobNumber)
	}
	if rec.Procs() <= 0 {
		return errf(400, "schedd: job %d requests %d processors", rec.JobNumber, rec.Procs())
	}
	if rec.Procs() > d.opts.MaxProcs {
		return errf(400, "schedd: job %d wider (%d) than machine (%d)", rec.JobNumber, rec.Procs(), d.opts.MaxProcs)
	}
	if rec.Request() <= 0 {
		return errf(400, "schedd: job %d has no requested time", rec.JobNumber)
	}
	if rec.SubmitTime < 0 {
		return errf(400, "schedd: job %d submits at negative instant %d", rec.JobNumber, rec.SubmitTime)
	}
	if rec.RunTime < 0 {
		return errf(400, "schedd: job %d has negative runtime %d", rec.JobNumber, rec.RunTime)
	}
	return d.seq.enqueue(session, sim.SubmitCommand(rec))
}

// Cancel enqueues a cancellation of job id at instant t (scaled mode
// stamps its own instant).
func (d *Daemon) Cancel(session string, t, id int64) error {
	if id <= 0 {
		return errf(400, "schedd: cancel of job %d", id)
	}
	return d.seq.enqueue(session, sim.CancelCommand(t, id))
}

// Drain announces procs processors leaving service at instant t.
func (d *Daemon) Drain(session string, t, procs int64) error {
	if procs <= 0 {
		return errf(400, "schedd: drain of %d processors", procs)
	}
	return d.seq.enqueue(session, sim.DrainCommand(t, procs))
}

// Restore announces procs processors returning to service at instant t.
func (d *Daemon) Restore(session string, t, procs int64) error {
	if procs <= 0 {
		return errf(400, "schedd: restore of %d processors", procs)
	}
	return d.seq.enqueue(session, sim.RestoreCommand(t, procs))
}

// Advance raises a session's floor to t: the promise that no later
// command of this session carries an earlier instant, which lets the
// engine retire queued events up to the slowest open floor.
func (d *Daemon) Advance(session string, t int64) error {
	return d.seq.advance(session, t)
}

// ClientMetrics is one row of a metrics snapshot.
type ClientMetrics struct {
	Client   string  `json:"client"`
	Finished int     `json:"finished"`
	AVEbsld  float64 `json:"avebsld"`
	MaxBsld  float64 `json:"max_bsld"`
	MeanWait float64 `json:"mean_wait"`
}

// MetricsSnapshot is the live view of the run so far.
type MetricsSnapshot struct {
	Workload    string          `json:"workload"`
	Triple      string          `json:"triple"`
	MaxProcs    int64           `json:"max_procs"`
	Finished    int             `json:"finished"`
	AVEbsld     float64         `json:"avebsld"`
	MaxBsld     float64         `json:"max_bsld"`
	MeanWait    float64         `json:"mean_wait"`
	WaitP50     float64         `json:"wait_p50"`
	WaitP95     float64         `json:"wait_p95"`
	WaitP99     float64         `json:"wait_p99"`
	Utilization float64         `json:"utilization"`
	MAE         float64         `json:"mae"`
	MeanELoss   float64         `json:"mean_eloss"`
	Makespan    int64           `json:"makespan"`
	Watermark   int64           `json:"watermark"`
	Sessions    int             `json:"sessions"`
	Draining    bool            `json:"draining"`
	Clients     []ClientMetrics `json:"clients,omitempty"`
}

// Metrics snapshots the collectors mid-run: every job retired so far,
// split per client.
func (d *Daemon) Metrics() MetricsSnapshot {
	watermark, open, draining := d.seq.snapshot()
	d.mu.Lock()
	defer d.mu.Unlock()
	o := d.per.Overall()
	snap := MetricsSnapshot{
		Workload:    d.opts.Workload,
		Triple:      d.opts.Triple.Name(),
		MaxProcs:    d.opts.MaxProcs,
		Finished:    o.Finished(),
		AVEbsld:     o.AVEbsld(),
		MaxBsld:     o.MaxBsld(),
		MeanWait:    o.MeanWait(),
		WaitP50:     o.WaitSketch().Quantile(0.50),
		WaitP95:     o.WaitSketch().Quantile(0.95),
		WaitP99:     o.WaitSketch().Quantile(0.99),
		Utilization: o.Utilization(d.maxEnd, d.opts.MaxProcs),
		MAE:         o.MAE(),
		MeanELoss:   o.MeanELoss(),
		Makespan:    d.maxEnd,
		Watermark:   watermark,
		Sessions:    open,
		Draining:    draining,
	}
	for i, name := range d.per.Names() {
		c := d.per.Client(i)
		snap.Clients = append(snap.Clients, ClientMetrics{
			Client:   name,
			Finished: c.Finished(),
			AVEbsld:  c.AVEbsld(),
			MaxBsld:  c.MaxBsld(),
			MeanWait: c.MeanWait(),
		})
	}
	return snap
}

// Overall exposes the overall collector for differential tests; the
// returned collector must only be read after Shutdown returns.
func (d *Daemon) Overall() *metrics.Collector { return d.per.Overall() }

// PerClient exposes the per-client sink under the same discipline.
func (d *Daemon) PerClient() *metrics.PerClient { return d.per }

// Subscribe attaches a new event-stream subscriber; see hub.
func (d *Daemon) Subscribe() *subscriber { return d.hub.subscribe() }

// Done is closed when the engine goroutine exits.
func (d *Daemon) Done() <-chan struct{} { return d.done }

// Shutdown drains the daemon gracefully: intake closes (in-flight
// enqueues fail with 409, queued commands still run), the engine
// retires every remaining event, and the final result returns.
// Idempotent; every caller gets the same result.
func (d *Daemon) Shutdown() (*sim.Result, error) {
	d.shutdown.Do(func() {
		d.seq.drain()
		<-d.done
		if d.stopTick != nil {
			close(d.stopTick)
			d.tickerWG.Wait()
		}
	})
	<-d.done
	return d.res, d.runErr
}
