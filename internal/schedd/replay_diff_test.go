package schedd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/schedd"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// genWorkload generates a deterministic preset workload for the diffs.
func genWorkload(t *testing.T, preset string, jobs int) *trace.Workload {
	t.Helper()
	cfg, err := workload.Scaled(preset, jobs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// stampClients pre-stamps a round-robin client partition on the trace
// so the daemon run (which splits by session client) and the reference
// run (which splits by the Partition stamp) decompose identically.
func stampClients(w *trace.Workload, n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("client-%d", i)
	}
	for i := range w.Jobs {
		w.Jobs[i].Partition = int64(i%n) + 1
	}
	w.Clients = names
	return names
}

// runStreamRef runs the offline reference: sim.RunStream over the
// same trace, same triple, a per-client sink and a recording tracer.
func runStreamRef(t *testing.T, w *trace.Workload, tr core.Triple) (*sim.Result, *metrics.PerClient, []obs.Event) {
	t.Helper()
	cfg := tr.Config()
	per := metrics.NewPerClient(w.Clients)
	cfg.Sink = per
	rec := &obs.Collector{}
	cfg.Tracer = rec
	res, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, per, rec.Events()
}

// normalizeEvents strips the fields that legitimately differ between a
// daemon trace and an offline one: the Tagged workload/triple stamps
// and the wall-clock pick latencies. Everything else must be
// byte-identical.
func normalizeEvents(events []obs.Event) []obs.Event {
	out := make([]obs.Event, len(events))
	for i := range events {
		ev := events[i]
		ev.Workload, ev.Triple, ev.Nanos = "", "", 0
		out[i] = ev
	}
	return out
}

// assertSameEvents compares two decision sequences exactly.
func assertSameEvents(t *testing.T, want, got []obs.Event) {
	t.Helper()
	want, got = normalizeEvents(want), normalizeEvents(got)
	if len(want) != len(got) {
		t.Fatalf("decision sequence diverged: %d events offline, %d via daemon", len(want), len(got))
	}
	for i := range want {
		wj, _ := json.Marshal(want[i])
		gj, _ := json.Marshal(got[i])
		if !bytes.Equal(wj, gj) {
			t.Fatalf("event %d diverged:\noffline %s\ndaemon  %s", i, wj, gj)
		}
	}
}

// assertSameCollector requires exact equality — same observations in
// the same order make even the float sums bit-identical.
func assertSameCollector(t *testing.T, label string, want, got *metrics.Collector, makespan, maxProcs int64) {
	t.Helper()
	if want.Finished() != got.Finished() {
		t.Fatalf("%s: finished %d != %d", label, got.Finished(), want.Finished())
	}
	type pair struct {
		name string
		w, g float64
	}
	for _, p := range []pair{
		{"AVEbsld", want.AVEbsld(), got.AVEbsld()},
		{"MaxBsld", want.MaxBsld(), got.MaxBsld()},
		{"MeanWait", want.MeanWait(), got.MeanWait()},
		{"Utilization", want.Utilization(makespan, maxProcs), got.Utilization(makespan, maxProcs)},
		{"MAE", want.MAE(), got.MAE()},
		{"MeanELoss", want.MeanELoss(), got.MeanELoss()},
	} {
		if p.w != p.g {
			t.Fatalf("%s: %s %v != %v", label, p.name, p.g, p.w)
		}
	}
}

func assertSameResult(t *testing.T, want, got *sim.Result) {
	t.Helper()
	if want.Makespan != got.Makespan {
		t.Fatalf("makespan %d != %d", got.Makespan, want.Makespan)
	}
	if want.Finished != got.Finished {
		t.Fatalf("finished %d != %d", got.Finished, want.Finished)
	}
	if want.Canceled != got.Canceled {
		t.Fatalf("canceled %d != %d", got.Canceled, want.Canceled)
	}
	if want.Corrections != got.Corrections {
		t.Fatalf("corrections %d != %d", got.Corrections, want.Corrections)
	}
	if want.Perf.Events != got.Perf.Events {
		t.Fatalf("events %d != %d", got.Perf.Events, want.Perf.Events)
	}
	if want.Perf.PickCalls != got.Perf.PickCalls {
		t.Fatalf("pick calls %d != %d", got.Perf.PickCalls, want.Perf.PickCalls)
	}
}

// postJSON posts one request, returning an error on a non-2xx answer
// (submitters run on their own goroutines, where t.Fatal is illegal).
func postJSON(client *http.Client, url string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, msg)
	}
	return nil
}

// TestReplayDiffHTTP is the headline differential guarantee: N
// concurrent submitters replay a recorded trace through the real HTTP
// surface (one session per client, each posting its partition of the
// trace with stated virtual instants), and the daemon's decision
// sequence, counters, per-client split and collector sums come out
// byte-identical to sim.RunStream over the same trace — the PR 5/6/8
// guarantee chain extended across a real concurrency boundary.
func TestReplayDiffHTTP(t *testing.T) {
	const nClients = 4
	w := genWorkload(t, "SDSC-SP2", 300)
	names := stampClients(w, nClients)
	triple := core.EASYPlusPlus()

	refRes, refPer, refEvents := runStreamRef(t, w, triple)

	daemonTrace := &obs.Collector{}
	d, err := schedd.New(schedd.Options{
		Workload: w.Name,
		MaxProcs: w.MaxProcs,
		Triple:   triple,
		Clients:  names,
		Tracer:   daemonTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	// Every session opens before any traffic: a session joining
	// mid-run joins at the emission watermark and could no longer
	// state the early instants its partition needs.
	for i := 0; i < nClients; i++ {
		if err := postJSON(ts.Client(), ts.URL+"/v1/sessions", map[string]string{
			"session": fmt.Sprintf("s%d", i), "client": names[i],
		}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			session := fmt.Sprintf("s%d", i)
			for k := i; k < len(w.Jobs); k += nClients {
				rec := w.Jobs[k]
				err := postJSON(ts.Client(), ts.URL+"/v1/jobs", schedd.SubmitRequest{
					Session: session,
					Job: schedd.JobSpec{
						Number:    rec.JobNumber,
						Submit:    rec.SubmitTime,
						Procs:     rec.Procs(),
						Request:   rec.Request(),
						Runtime:   rec.RunTime,
						User:      rec.UserID,
						Partition: rec.Partition,
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
			if err := postJSON(ts.Client(), ts.URL+"/v1/sessions/close", map[string]string{"session": session}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	res, err := d.Shutdown()
	if err != nil {
		t.Fatal(err)
	}

	assertSameResult(t, refRes, res)
	assertSameEvents(t, refEvents, daemonTrace.Events())
	assertSameCollector(t, "overall", refPer.Overall(), d.Overall(), refRes.Makespan, w.MaxProcs)
	for i, name := range names {
		assertSameCollector(t, name, refPer.Client(i), d.PerClient().Client(i), refRes.Makespan, w.MaxProcs)
	}
}

// TestReplayDiffAPI sweeps the same differential guarantee across
// policy/predictor configurations through the in-process API, with
// concurrent submitter goroutines and interleaved cancellations.
func TestReplayDiffAPI(t *testing.T) {
	const nClients = 3
	w := genWorkload(t, "CTC-SP2", 250)
	names := stampClients(w, nClients)

	// Cancel a deterministic set of long jobs one second after
	// submission, issued by the same session that submits them.
	cancelAfter := map[int64]int64{}
	canceled := 0
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if j.RunTime >= 1000 && canceled < 20 {
			cancelAfter[j.JobNumber] = j.SubmitTime + 1
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("workload produced no cancellable jobs")
	}

	script := &scenario.Script{Name: "cancels"}
	for i := range w.Jobs {
		if at, ok := cancelAfter[w.Jobs[i].JobNumber]; ok {
			script.Events = append(script.Events, scenario.Event{
				Time: at, Action: scenario.Cancel, JobID: w.Jobs[i].JobNumber,
			})
		}
	}

	for _, triple := range []core.Triple{
		core.EASY(),
		core.EASYPlusPlus(),
		core.PaperBest(),
		core.ConservativeBF(),
	} {
		t.Run(triple.Name(), func(t *testing.T) {
			cfg := triple.Config()
			per := metrics.NewPerClient(names)
			cfg.Sink = per
			rec := &obs.Collector{}
			cfg.Tracer = rec
			cfg.Script = script
			refRes, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if refRes.Canceled == 0 {
				t.Fatal("reference run canceled nothing")
			}

			daemonTrace := &obs.Collector{}
			d, err := schedd.New(schedd.Options{
				Workload: w.Name,
				MaxProcs: w.MaxProcs,
				Triple:   triple,
				Clients:  names,
				Tracer:   daemonTrace,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < nClients; i++ {
				if err := d.OpenSession(fmt.Sprintf("s%d", i), names[i]); err != nil {
					t.Fatal(err)
				}
			}
			// Cancellations ride a session of their own: a submitter
			// issuing a cancel at submit+1 would raise its floor past a
			// same-instant successor job.
			if err := d.OpenSession("canceller", ""); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < nClients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					session := fmt.Sprintf("s%d", i)
					for k := i; k < len(w.Jobs); k += nClients {
						if err := d.Submit(session, w.Jobs[k]); err != nil {
							t.Error(err)
							return
						}
					}
					if err := d.CloseSession(session); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range w.Jobs {
					if at, ok := cancelAfter[w.Jobs[i].JobNumber]; ok {
						if err := d.Cancel("canceller", at, w.Jobs[i].JobNumber); err != nil {
							t.Error(err)
							return
						}
					}
				}
				if err := d.CloseSession("canceller"); err != nil {
					t.Error(err)
				}
			}()
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			res, err := d.Shutdown()
			if err != nil {
				t.Fatal(err)
			}

			assertSameResult(t, refRes, res)
			assertSameEvents(t, rec.Events(), daemonTrace.Events())
			assertSameCollector(t, "overall", per.Overall(), d.Overall(), refRes.Makespan, w.MaxProcs)
			for i, name := range names {
				assertSameCollector(t, name, per.Client(i), d.PerClient().Client(i), refRes.Makespan, w.MaxProcs)
			}
		})
	}
}

// TestReplayDiffSingleSession pins the degenerate case: one session
// replaying the whole trace, arbitrary (non-canonical) tie order
// preserved by the per-session FIFO.
func TestReplayDiffSingleSession(t *testing.T) {
	w := genWorkload(t, "KTH-SP2", 200)
	w.Clients = nil
	triple := core.EASYPlusPlus()
	refRes, refPer, refEvents := runStreamRef(t, w, triple)

	daemonTrace := &obs.Collector{}
	d, err := schedd.New(schedd.Options{
		Workload: w.Name, MaxProcs: w.MaxProcs, Triple: triple, Tracer: daemonTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.OpenSession("only", ""); err != nil {
		t.Fatal(err)
	}
	for i := range w.Jobs {
		if err := d.Submit("only", w.Jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CloseSession("only"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, refRes, res)
	assertSameEvents(t, refEvents, daemonTrace.Events())
	assertSameCollector(t, "overall", refPer.Overall(), d.Overall(), refRes.Makespan, w.MaxProcs)
}
