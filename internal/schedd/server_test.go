package schedd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schedd"
	"repro/internal/swf"
)

func newTestDaemon(t *testing.T) (*schedd.Daemon, *httptest.Server) {
	t.Helper()
	d, err := schedd.New(schedd.Options{
		Workload: "wire", MaxProcs: 64, Triple: core.EASYPlusPlus(), Clients: []string{"a", "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { d.Shutdown() })
	return d, ts
}

// TestWireErrors pins the error contract of every endpoint: typed
// statuses, named conflicts, strict decoding.
func TestWireErrors(t *testing.T) {
	_, ts := newTestDaemon(t)
	if err := postJSON(ts.Client(), ts.URL+"/v1/sessions", map[string]string{"session": "s", "client": "a"}); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(ts.Client(), ts.URL+"/v1/jobs", schedd.SubmitRequest{
		Session: "s", Job: schedd.JobSpec{Number: 1, Submit: 100, Procs: 2, Request: 60, Runtime: 30},
	}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, path, body string
		status           int
		wantMsg          string
	}{
		{"garbage json", "/v1/jobs", `{"session":`, 400, "bad request body"},
		{"unknown field", "/v1/jobs", `{"session":"s","job":{"number":2,"procs":1,"request":1},"x":1}`, 400, "bad request body"},
		{"trailing data", "/v1/jobs", `{"session":"s","job":{"number":2,"submit":100,"procs":1,"request":1}}{}`, 400, "trailing data"},
		{"no session", "/v1/jobs", `{"session":"nope","job":{"number":2,"submit":100,"procs":1,"request":1}}`, 404, "unknown session"},
		{"wide job", "/v1/jobs", `{"session":"s","job":{"number":2,"submit":100,"procs":65,"request":1}}`, 400, "wider"},
		{"floor regression", "/v1/jobs", `{"session":"s","job":{"number":2,"submit":99,"procs":1,"request":1}}`, 409, "behind the session floor"},
		{"double open", "/v1/sessions", `{"session":"s"}`, 409, "already open"},
		{"close unknown", "/v1/sessions/close", `{"session":"ghost"}`, 404, "unknown session"},
		{"zero drain", "/v1/drain", `{"session":"s","t":200,"procs":0}`, 400, "drain of 0"},
		{"bad cancel id", "/v1/cancel", `{"session":"s","t":200,"job":0}`, 400, "cancel of job 0"},
		{"scaled advance only", "/v1/whatif", `{"events":[{"kind":"explode","t":1}]}`, 400, "unknown what-if event kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var body struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body.Error)
			}
			if !strings.Contains(body.Error, tc.wantMsg) {
				t.Fatalf("error %q does not name the conflict %q", body.Error, tc.wantMsg)
			}
		})
	}

	// Method and route misuse map to the mux's own statuses.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: %d, want 405", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope: %d, want 404", resp.StatusCode)
	}
}

// TestWireMetricsAndStatus exercises the observation endpoints against
// a drained run.
func TestWireMetricsAndStatus(t *testing.T) {
	d, ts := newTestDaemon(t)
	if err := d.OpenSession("s", "a"); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 8; i++ {
		if err := d.Submit("s", jobRecordAt(i, (i-1)*10, 4, 120)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Advance("s", 1<<40); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, d, 8)

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap schedd.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Finished != 8 || snap.Workload != "wire" || len(snap.Clients) != 2 {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if snap.Clients[0].Finished != 8 || snap.Clients[1].Finished != 0 {
		t.Fatalf("per-client split wrong: %+v", snap.Clients)
	}

	sresp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status["workload"] != "wire" || status["sessions"].(float64) != 1 {
		t.Fatalf("unexpected status: %+v", status)
	}
}

// jobRecordAt is jobRecord with a stated submit instant (virtual mode).
func jobRecordAt(id, submit, procs, runtime int64) swf.Job {
	rec := jobRecord(id, procs, runtime)
	rec.SubmitTime = submit
	return rec
}

// TestWireEventStream subscribes to GET /v1/events before traffic and
// checks the JSONL stream: every line decodes through obs.ReadFile
// (cmd/tracestat's reader), validates against the trace schema, and
// the stream carries each job's submit.
func TestWireEventStream(t *testing.T) {
	d, ts := newTestDaemon(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	// The 200 is out, so the subscription is active: traffic from here
	// on must appear on the stream.
	if err := d.OpenSession("s", "a"); err != nil {
		t.Fatal(err)
	}
	const nJobs = 5
	for i := int64(1); i <= nJobs; i++ {
		if err := d.Submit("s", jobRecordAt(i, i*10, 2, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Advance("s", 1<<40); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, d, nJobs)

	var lines []string
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(20*time.Second, cancel)
	defer deadline.Stop()
	submits := 0
	for submits < nJobs && sc.Scan() {
		lines = append(lines, sc.Text())
		if strings.Contains(sc.Text(), `"kind":"submit"`) {
			submits++
		}
	}
	cancel()
	if submits != nJobs {
		t.Fatalf("stream carried %d submit events, want %d", submits, nJobs)
	}

	// The stream's bytes are a valid trace file: tracestat's reader
	// must accept every line and the schema checker every event.
	path := filepath.Join(t.TempDir(), "stream.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	read := 0
	if err := obs.ReadFile(path, func(line int, ev obs.Event) error {
		read++
		if ev.Workload != "wire" {
			t.Fatalf("line %d: untagged event %+v", line, ev)
		}
		return obs.ValidateEvent(&ev)
	}); err != nil {
		t.Fatal(err)
	}
	if read != len(lines) {
		t.Fatalf("reader decoded %d of %d lines", read, len(lines))
	}
}

// TestWireEventStreamSSE checks the Server-Sent-Events framing: the
// same event JSON, one "data:" frame per event.
func TestWireEventStreamSSE(t *testing.T) {
	d, ts := newTestDaemon(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	if err := d.OpenSession("s", "b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit("s", jobRecordAt(1, 0, 2, 30)); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance("s", 1<<40); err != nil {
		t.Fatal(err)
	}
	waitFinished(t, d, 1)

	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(20*time.Second, cancel)
	defer deadline.Stop()
	frames := 0
	for frames < 3 && sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("non-SSE line %q", line)
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("frame payload is not an event: %v", err)
		}
		frames++
	}
	if frames != 3 {
		t.Fatalf("read %d SSE frames", frames)
	}
}

// TestWireShutdown drains the daemon over the wire and checks the
// final report plus the post-drain conflict.
func TestWireShutdown(t *testing.T) {
	d, ts := newTestDaemon(t)
	if err := d.OpenSession("s", "a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit("s", jobRecordAt(1, 0, 2, 30)); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		Finished int                    `json:"finished"`
		Metrics  schedd.MetricsSnapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Finished != 1 || report.Metrics.Finished != 1 {
		t.Fatalf("shutdown report: %+v", report)
	}

	// Post-drain traffic gets the conflict, not a hang or a drop.
	resp2, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"session":"late"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 409 {
		t.Fatalf("post-drain open: %d, want 409", resp2.StatusCode)
	}
}
