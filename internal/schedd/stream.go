package schedd

import (
	"sync"

	"repro/internal/obs"
)

// hub fans the engine's flight-recorder events out to every live
// event-stream subscriber. It is an obs.Tracer on the engine side
// (called by the single engine goroutine) and a mailbox per subscriber
// on the consumer side: each subscriber owns a buffered queue drained
// by its own HTTP handler goroutine, so a slow or stalled consumer
// never blocks the engine — the engine appends under the subscriber
// mutex and moves on. Events are copied on ingest (including the
// Eligible slice, whose backing array the engine reuses).
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscriber is one event-stream consumer's mailbox.
type subscriber struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []obs.Event
	closed bool
}

// Trace implements obs.Tracer; the engine goroutine is the only caller.
func (h *hub) Trace(ev *obs.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) == 0 {
		return
	}
	cp := *ev
	if len(ev.Eligible) > 0 {
		cp.Eligible = append([]string(nil), ev.Eligible...)
	}
	for s := range h.subs {
		s.mu.Lock()
		if !s.closed {
			s.queue = append(s.queue, cp)
			s.cond.Signal()
		}
		s.mu.Unlock()
	}
}

// subscribe attaches a new mailbox; if the engine already exited it
// arrives pre-closed (Next drains nothing and reports done).
func (h *hub) subscribe() *subscriber {
	s := &subscriber{}
	s.cond = sync.NewCond(&s.mu)
	h.mu.Lock()
	if h.closed {
		s.closed = true
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return s
}

// unsubscribe detaches and closes a mailbox; the consumer calls it on
// disconnect (HTTP handlers via context.AfterFunc).
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
	s.close()
}

// closeAll ends every stream after the engine goroutine exits.
func (h *hub) closeAll() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*subscriber]struct{})
	h.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Next blocks for the next batch of events, swapping the whole mailbox
// out in one take. It returns ok=false once the mailbox is closed and
// drained — the stream's clean end.
func (s *subscriber) Next() ([]obs.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return nil, false
	}
	batch := s.queue
	s.queue = nil
	return batch, true
}
