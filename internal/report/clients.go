package report

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
)

// ClientTable renders the per-client decomposition of a multi-client
// campaign: one block per workload, triples as rows, one
// "AVEbsld @ wait (jobs)" column per client next to the global score,
// so a client's slice of the objective is visible beside its traffic
// share. Results without a per-client decomposition (single-population
// workloads) are skipped; an empty string means nothing to render.
func ClientTable(results []campaign.RunResult) string {
	byWorkload := map[string][]campaign.RunResult{}
	var order []string
	for _, r := range results {
		if len(r.Clients) == 0 {
			continue
		}
		if _, seen := byWorkload[r.Workload]; !seen {
			order = append(order, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	if len(order) == 0 {
		return ""
	}

	var b strings.Builder
	b.WriteString("Per-client metrics per triple (AVEbsld @ mean wait[s], share of finished jobs)\n")
	for _, w := range order {
		rs := byWorkload[w]
		fmt.Fprintf(&b, "\n%s:\n", w)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  Triple\tAVEbsld")
		for _, c := range rs[0].Clients {
			fmt.Fprintf(tw, "\t%s", c.Name)
		}
		fmt.Fprintf(tw, "\t\n")
		for _, r := range rs {
			fmt.Fprintf(tw, "  %s\t%.1f", r.Triple.Name(), r.AVEbsld)
			for _, c := range r.Clients {
				fmt.Fprintf(tw, "\t%.1f @ %.0f (%.0f%%)", c.AVEbsld, c.MeanWait, 100*c.Share)
			}
			fmt.Fprintf(tw, "\t\n")
		}
		tw.Flush()
	}
	return b.String()
}
