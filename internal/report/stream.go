package report

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// StreamRun carries the values of a completed streaming run — the
// fields StreamSummary prints. Both cmd/simsched's -stream path and
// cmd/schedd's replay client fill one, so a live daemon run and an
// offline streamed run of the same trace render byte-identical summary
// blocks (the CI smoke job diffs them).
type StreamRun struct {
	Workload    string
	Finished    int
	MaxProcs    int64
	Triple      string
	AVEbsld     float64
	MaxBsld     float64
	MeanWait    float64
	WaitP50     float64
	WaitP95     float64
	WaitP99     float64
	Utilization float64
	Corrections int
	MAE         float64
	MeanELoss   float64
}

// CollectStreamRun folds a finished collector into a StreamRun.
func CollectStreamRun(name string, maxProcs int64, triple string, makespan int64, corrections int, col *metrics.Collector) StreamRun {
	return StreamRun{
		Workload:    name,
		Finished:    col.Finished(),
		MaxProcs:    maxProcs,
		Triple:      triple,
		AVEbsld:     col.AVEbsld(),
		MaxBsld:     col.MaxBsld(),
		MeanWait:    col.MeanWait(),
		WaitP50:     col.WaitSketch().Quantile(0.50),
		WaitP95:     col.WaitSketch().Quantile(0.95),
		WaitP99:     col.WaitSketch().Quantile(0.99),
		Utilization: col.Utilization(makespan, maxProcs),
		Corrections: corrections,
		MAE:         col.MAE(),
		MeanELoss:   col.MeanELoss(),
	}
}

// ClientSplit renders the per-client lines of a multi-client run, one
// line per client in client-index order.
func ClientSplit(w io.Writer, pc *metrics.PerClient) {
	total := pc.Overall().Finished()
	for i, name := range pc.Names() {
		c := pc.Client(i)
		share := 0.0
		if total > 0 {
			share = float64(c.Finished()) / float64(total)
		}
		fmt.Fprintf(w, "client %-10s finished %6d (%4.1f%%)  AVEbsld %6.2f  mean wait %6.0f s\n",
			name, c.Finished(), 100*share, c.AVEbsld(), c.MeanWait())
	}
}

// StreamSummary renders the one-pass metric block of a streaming run.
func StreamSummary(w io.Writer, r StreamRun) {
	fmt.Fprintf(w, "workload      %s (streamed, %d jobs finished, %d procs)\n", r.Workload, r.Finished, r.MaxProcs)
	fmt.Fprintf(w, "triple        %s\n", r.Triple)
	fmt.Fprintf(w, "AVEbsld       %.2f\n", r.AVEbsld)
	fmt.Fprintf(w, "max bsld      %.1f\n", r.MaxBsld)
	fmt.Fprintf(w, "mean wait     %.0f s (p50 %.0f, p95 %.0f, p99 %.0f)\n", r.MeanWait, r.WaitP50, r.WaitP95, r.WaitP99)
	fmt.Fprintf(w, "utilization   %.3f\n", r.Utilization)
	fmt.Fprintf(w, "corrections   %d\n", r.Corrections)
	fmt.Fprintf(w, "prediction MAE %.0f s, mean E-Loss %.3g\n", r.MAE, r.MeanELoss)
}
