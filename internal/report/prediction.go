package report

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// PredictionSeries holds one technique's submission-time predictions over
// a workload, in the two views Figures 4 and 5 plot: signed errors
// (pred − actual, seconds) and the raw predicted values (seconds).
type PredictionSeries struct {
	Name      string
	Errors    []float64
	Predicted []float64
	MAE       float64
	MeanELoss float64
}

// AnalyzePredictions simulates the workload under EASY-SJBF with
// Incremental correction for each of the four prediction techniques the
// paper analyzes on the Curie log (Requested Time, AVE2, symmetric
// squared-loss regression, E-Loss regression) and collects their
// submission-time predictions. The "Actual value" series of Figure 5 is
// returned last, with empty Errors.
func AnalyzePredictions(w *trace.Workload) ([]PredictionSeries, error) {
	techniques := []struct {
		name   string
		triple core.Triple
	}{
		{"Requested Time", core.Triple{Predictor: core.PredRequested, Backfill: sched.SJBFOrder}},
		{"AVE2", core.EASYPlusPlus()},
		{"Squared Loss Regression", func() core.Triple {
			t := core.PaperBest()
			t.Loss = ml.SquaredLoss
			return t
		}()},
		{"E-Loss Regression", core.PaperBest()},
	}
	var out []PredictionSeries
	for _, tech := range techniques {
		res, err := sim.Run(w, tech.triple.Config())
		if err != nil {
			return nil, fmt.Errorf("report: %s on %s: %w", tech.name, w.Name, err)
		}
		s := PredictionSeries{
			Name:      tech.name,
			MAE:       metrics.MAE(res.Jobs),
			MeanELoss: metrics.MeanELoss(res.Jobs),
		}
		for _, j := range res.Jobs {
			s.Errors = append(s.Errors, float64(j.SubmitPrediction-j.Runtime))
			s.Predicted = append(s.Predicted, float64(j.SubmitPrediction))
		}
		out = append(out, s)
	}
	actual := PredictionSeries{Name: "Actual value"}
	for i := range w.Jobs {
		actual.Predicted = append(actual.Predicted, float64(w.Jobs[i].RunTime))
	}
	out = append(out, actual)
	return out, nil
}

// Table8 renders the MAE / mean E-Loss comparison of the paper's Table 8
// (AVE2 vs the E-Loss learner; the other techniques are shown for
// context).
func Table8(series []PredictionSeries) string {
	var b strings.Builder
	b.WriteString("Table 8: prediction error of the techniques (seconds)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Prediction Technique\tMAE\tMean E-Loss\t")
	for _, s := range series {
		if len(s.Errors) == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.3g\t\n", s.Name, s.MAE, s.MeanELoss)
	}
	tw.Flush()
	return b.String()
}

// Figure4 renders the ECDF of prediction errors sampled hourly over
// [-24h, +24h], the series of the paper's Figure 4.
func Figure4(series []PredictionSeries) string {
	var b strings.Builder
	b.WriteString("Figure 4: ECDF of prediction errors (hours)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "err(h)\t")
	var cdfs []*metrics.ECDF
	for _, s := range series {
		if len(s.Errors) == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t", s.Name)
		cdfs = append(cdfs, metrics.NewECDF(s.Errors))
	}
	fmt.Fprintln(tw)
	for h := -24; h <= 24; h += 2 {
		fmt.Fprintf(tw, "%d\t", h)
		for _, c := range cdfs {
			fmt.Fprintf(tw, "%.3f\t", c.At(float64(h)*3600))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}

// Figure5 renders the ECDF of predicted values sampled over [0, 24h]
// (including the actual-runtime reference curve), the paper's Figure 5.
func Figure5(series []PredictionSeries) string {
	var b strings.Builder
	b.WriteString("Figure 5: ECDF of predicted values (hours)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "pred(h)\t")
	var cdfs []*metrics.ECDF
	for _, s := range series {
		fmt.Fprintf(tw, "%s\t", s.Name)
		cdfs = append(cdfs, metrics.NewECDF(s.Predicted))
	}
	fmt.Fprintln(tw)
	for h := 0; h <= 24; h++ {
		fmt.Fprintf(tw, "%d\t", h)
		for _, c := range cdfs {
			fmt.Fprintf(tw, "%.3f\t", c.At(float64(h)*3600))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}
