package report

import (
	"context"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/ml"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testResults(t *testing.T) []campaign.RunResult {
	t.Helper()
	triples := []core.Triple{
		core.EASY(),
		core.ClairvoyantEASY(),
		core.ClairvoyantSJBF(),
		core.EASYPlusPlus(),
		core.PaperBest(),
		{Predictor: core.PredLearning, Loss: ml.SquaredLoss, Corrector: correct.Incremental{}, Backfill: sched.FCFSOrder},
	}
	var ws []*trace.Workload
	for _, n := range []string{"KTH-SP2", "CTC-SP2"} {
		cfg, err := workload.Scaled(n, 400)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	c := &campaign.Campaign{Workloads: ws, Triples: triples}
	results, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestTable1(t *testing.T) {
	out := Table1(testResults(t))
	if !strings.Contains(out, "KTH-SP2") || !strings.Contains(out, "CTC-SP2") {
		t.Fatalf("Table 1 missing logs:\n%s", out)
	}
	if !strings.Contains(out, "EASY-Clairvoyant") {
		t.Fatalf("Table 1 missing header:\n%s", out)
	}
	if !strings.Contains(out, "%)") {
		t.Fatalf("Table 1 missing reduction percentages:\n%s", out)
	}
}

func TestTable6(t *testing.T) {
	out := Table6(testResults(t))
	for _, col := range []string{"ClairFCFS", "ClairSJBF", "EASY", "EASY++", "ML-FCFS", "ML-SJBF"} {
		if !strings.Contains(out, col) {
			t.Fatalf("Table 6 missing column %s:\n%s", col, out)
		}
	}
	if !strings.Contains(out, " - ") {
		t.Fatalf("Table 6 missing min-max ranges:\n%s", out)
	}
}

func TestTable7(t *testing.T) {
	results := testResults(t)
	cv, err := campaign.LeaveOneOut(results)
	if err != nil {
		t.Fatal(err)
	}
	out := Table7(cv, results)
	if !strings.Contains(out, "C-V triple") {
		t.Fatalf("Table 7 header missing:\n%s", out)
	}
	if !strings.Contains(out, "KTH-SP2") {
		t.Fatalf("Table 7 missing rows:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	out := Figure3(testResults(t), "KTH-SP2", "CTC-SP2")
	if !strings.Contains(out, "Pearson(KTH-SP2, CTC-SP2)") {
		t.Fatalf("Figure 3 missing Pearson:\n%s", out)
	}
	if !strings.Contains(out, "EASY-SJBF/Clairvoyant") {
		t.Fatalf("Figure 3 missing triples:\n%s", out)
	}
}

func TestPredictionAnalysisAndFigures(t *testing.T) {
	cfg, err := workload.Scaled("Curie", 800)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, err := AnalyzePredictions(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("got %d series, want 5 (4 techniques + actual)", len(series))
	}
	if series[4].Name != "Actual value" || len(series[4].Errors) != 0 {
		t.Fatalf("last series should be the actual-value reference: %+v", series[4].Name)
	}
	for _, s := range series[:4] {
		if len(s.Errors) != len(w.Jobs) {
			t.Errorf("%s: %d errors for %d jobs", s.Name, len(s.Errors), len(w.Jobs))
		}
	}

	// Requested Time never under-predicts (runtime <= request), so its
	// error ECDF at 0- should be ~0 while AVE2's is substantial.
	var reqUnder, aveUnder int
	for i, e := range series[0].Errors {
		if e < 0 {
			reqUnder++
		}
		if series[1].Errors[i] < 0 {
			aveUnder++
		}
	}
	if reqUnder != 0 {
		t.Errorf("Requested Time under-predicted %d jobs", reqUnder)
	}
	if aveUnder == 0 {
		t.Error("AVE2 never under-predicted — locality model broken?")
	}

	t8 := Table8(series)
	if !strings.Contains(t8, "Mean E-Loss") || !strings.Contains(t8, "E-Loss Regression") {
		t.Fatalf("Table 8 malformed:\n%s", t8)
	}
	f4 := Figure4(series)
	if !strings.Contains(f4, "err(h)") || !strings.Contains(f4, "-24") {
		t.Fatalf("Figure 4 malformed:\n%s", f4)
	}
	f5 := Figure5(series)
	if !strings.Contains(f5, "Actual value") {
		t.Fatalf("Figure 5 malformed:\n%s", f5)
	}
}

func TestReductionHelper(t *testing.T) {
	if got := reduction(100, 72); got != 28 {
		t.Fatalf("reduction = %v, want 28", got)
	}
	if got := reduction(0, 10); got != 0 {
		t.Fatalf("reduction from 0 = %v, want 0", got)
	}
}
