package report

import (
	"fmt"
	"slices"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
)

// RobustnessTable renders the disruption sweep: one block per workload,
// triples as rows, disruption intensities as columns, AVEbsld in the
// cells — how much of each heuristic's advantage survives node drains,
// maintenance windows and job cancellations. A footer line per block
// reports the disruption volume (canceled jobs are identical across
// triples only up to scheduling: a job that finished before its cancel
// instant under one policy may be killed under another, so the footer
// shows the per-intensity range).
func RobustnessTable(results []campaign.RobustnessResult) string {
	var b strings.Builder
	b.WriteString("Robustness: AVEbsld per heuristic triple x disruption intensity\n")
	byWorkload := map[string][]campaign.RobustnessResult{}
	var workloads []string
	for _, r := range results {
		if _, seen := byWorkload[r.Workload]; !seen {
			workloads = append(workloads, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for _, w := range workloads {
		rs := byWorkload[w]
		var intensities, triples []string
		cells := map[string]map[string]campaign.RobustnessResult{} // triple -> intensity -> cell
		canceledLo := map[string]int{}
		canceledHi := map[string]int{}
		for _, r := range rs {
			name := r.Triple.Name()
			if cells[name] == nil {
				cells[name] = map[string]campaign.RobustnessResult{}
				triples = append(triples, name)
			}
			if _, seen := cells[name][r.Intensity]; !seen {
				cells[name][r.Intensity] = r
			}
			if !slices.Contains(intensities, r.Intensity) {
				intensities = append(intensities, r.Intensity)
			}
			if lo, ok := canceledLo[r.Intensity]; !ok || r.Canceled < lo {
				canceledLo[r.Intensity] = r.Canceled
			}
			if hi, ok := canceledHi[r.Intensity]; !ok || r.Canceled > hi {
				canceledHi[r.Intensity] = r.Canceled
			}
		}
		fmt.Fprintf(&b, "\n%s:\n", w)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "Triple\t%s\t\n", strings.Join(intensities, "\t"))
		for _, name := range triples {
			fmt.Fprintf(tw, "%s", name)
			for _, in := range intensities {
				if cell, ok := cells[name][in]; ok {
					fmt.Fprintf(tw, "\t%.1f", cell.AVEbsld)
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			fmt.Fprintf(tw, "\t\n")
		}
		fmt.Fprintf(tw, "(jobs canceled)")
		for _, in := range intensities {
			lo, hi := canceledLo[in], canceledHi[in]
			if lo == hi {
				fmt.Fprintf(tw, "\t%d", lo)
			} else {
				fmt.Fprintf(tw, "\t%d-%d", lo, hi)
			}
		}
		fmt.Fprintf(tw, "\t\n")
		tw.Flush()
	}
	return b.String()
}
