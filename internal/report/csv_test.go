package report

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteResultsCSV(t *testing.T) {
	results := testResults(t)
	var buf bytes.Buffer
	if err := WriteResultsCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(results)+1 {
		t.Fatalf("got %d rows, want %d", len(records), len(results)+1)
	}
	if records[0][0] != "workload" || records[0][2] != "avebsld" {
		t.Fatalf("header wrong: %v", records[0])
	}
	// Every AVEbsld parses back and is >= 1.
	for _, rec := range records[1:] {
		v, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 {
			t.Fatalf("AVEbsld %v < 1 in CSV", v)
		}
	}
}

func TestWriteECDFCSV(t *testing.T) {
	series := []PredictionSeries{
		{Name: "a", Errors: []float64{-100, 0, 100}, Predicted: []float64{1, 2, 3}},
		{Name: "b", Errors: []float64{-50, 50}, Predicted: []float64{10, 20}},
		{Name: "actual", Predicted: []float64{5, 6}}, // no errors
	}
	var buf bytes.Buffer
	if err := WriteECDFCSV(&buf, series, -200, 200, 5, false); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header: x + 2 series (the error view skips the actual-only series).
	if len(records[0]) != 3 {
		t.Fatalf("header = %v", records[0])
	}
	if len(records) != 6 {
		t.Fatalf("got %d rows, want 6", len(records))
	}
	if records[1][0] != "-200" || records[5][0] != "200" {
		t.Fatalf("x range wrong: %v ... %v", records[1][0], records[5][0])
	}
	// Last row must be cumulative probability 1 for both series.
	if records[5][1] != "1" || records[5][2] != "1" {
		t.Fatalf("final CDF values: %v", records[5])
	}

	// Predicted view includes all three series.
	buf.Reset()
	if err := WriteECDFCSV(&buf, series, 0, 30, 4, true); err != nil {
		t.Fatal(err)
	}
	records, _ = csv.NewReader(&buf).ReadAll()
	if len(records[0]) != 4 {
		t.Fatalf("predicted header = %v", records[0])
	}
}

func TestWriteECDFCSVValidation(t *testing.T) {
	if err := WriteECDFCSV(&bytes.Buffer{}, nil, 0, 10, 1, false); err == nil {
		t.Fatal("1 point accepted")
	}
	if err := WriteECDFCSV(&bytes.Buffer{}, nil, 10, 10, 5, false); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestWriteScatterCSV(t *testing.T) {
	results := testResults(t)
	var buf bytes.Buffer
	if err := WriteScatterCSV(&buf, results, "KTH-SP2", "CTC-SP2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "triple,KTH-SP2,CTC-SP2") {
		t.Fatalf("header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 5 {
		t.Fatalf("too few scatter rows: %d", len(records))
	}
}
