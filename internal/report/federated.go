package report

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
)

// FederatedTable renders a federated campaign: one block per workload,
// one sub-block per federation (routing policy + cluster topology),
// triples as rows. Each row carries the global AVEbsld, mean wait and
// utilization followed by one AVEbsld/jobs column per cluster, so a
// routing policy's load split is visible next to the score it buys.
func FederatedTable(results []campaign.FederatedResult) string {
	var b strings.Builder
	b.WriteString("Federated campaign: global and per-cluster metrics per triple\n")

	type fedKey struct{ workload, federation, topology string }
	groups := map[fedKey][]campaign.FederatedResult{}
	var order []fedKey
	for _, r := range results {
		k := fedKey{r.Workload, r.Federation, r.Topology}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}

	lastWorkload := ""
	for _, k := range order {
		rs := groups[k]
		if k.workload != lastWorkload {
			fmt.Fprintf(&b, "\n%s:\n", k.workload)
			lastWorkload = k.workload
		}
		fmt.Fprintf(&b, "  routing=%s topology=%s\n", rs[0].Routing, k.topology)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  Triple\tAVEbsld\twait[s]\tutil")
		for _, c := range rs[0].Clusters {
			fmt.Fprintf(tw, "\t%s", c.Name)
		}
		fmt.Fprintf(tw, "\t\n")
		for _, r := range rs {
			fmt.Fprintf(tw, "  %s\t%.1f\t%.0f\t%.3f", r.Triple.Name(), r.AVEbsld, r.MeanWait, r.Utilization)
			for _, c := range r.Clusters {
				fmt.Fprintf(tw, "\t%.1f (%d)", c.AVEbsld, c.Finished)
			}
			fmt.Fprintf(tw, "\t\n")
		}
		tw.Flush()
	}
	return b.String()
}
