package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

func clientResults() []campaign.RunResult {
	return []campaign.RunResult{
		{
			Workload: "KTH-SP2", Triple: core.EASY(), AVEbsld: 14.2,
			Clients: []campaign.ClientMetrics{
				{Name: "steady", Finished: 180, Share: 0.6, AVEbsld: 10.1, MeanWait: 300},
				{Name: "bursty", Finished: 120, Share: 0.4, AVEbsld: 20.4, MeanWait: 451},
			},
		},
		{
			Workload: "KTH-SP2", Triple: core.EASYPlusPlus(), AVEbsld: 9.8,
			Clients: []campaign.ClientMetrics{
				{Name: "steady", Finished: 180, Share: 0.6, AVEbsld: 7.0, MeanWait: 210},
				{Name: "bursty", Finished: 120, Share: 0.4, AVEbsld: 14.0, MeanWait: 330},
			},
		},
	}
}

func TestClientTable(t *testing.T) {
	out := ClientTable(clientResults())
	for _, want := range []string{
		"Per-client metrics",
		"KTH-SP2:",
		"steady", "bursty",
		core.EASY().Name(), core.EASYPlusPlus().Name(),
		"10.1 @ 300 (60%)",
		"14.0 @ 330 (40%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table misses %q:\n%s", want, out)
		}
	}
}

// TestClientTableSkipsSinglePopulation: results without a decomposition
// render nothing — no empty block, no header.
func TestClientTableSkipsSinglePopulation(t *testing.T) {
	if out := ClientTable([]campaign.RunResult{{Workload: "CTC-SP2", Triple: core.EASY()}}); out != "" {
		t.Fatalf("single-population results rendered %q", out)
	}
	if out := ClientTable(nil); out != "" {
		t.Fatalf("nil results rendered %q", out)
	}
	// A mixed set renders only the decomposed workload.
	mixed := append(clientResults(), campaign.RunResult{Workload: "CTC-SP2", Triple: core.EASY()})
	out := ClientTable(mixed)
	if strings.Contains(out, "CTC-SP2") {
		t.Fatalf("undecomposed workload leaked into the table:\n%s", out)
	}
}
