package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

func TestRobustnessTable(t *testing.T) {
	mk := func(w, in string, tr core.Triple, bsld float64, canceled int) campaign.RobustnessResult {
		return campaign.RobustnessResult{
			RunResult: campaign.RunResult{Workload: w, Triple: tr, AVEbsld: bsld, Canceled: canceled},
			Intensity: in,
		}
	}
	results := []campaign.RobustnessResult{
		mk("KTH-SP2", "none", core.EASY(), 20.0, 0),
		mk("KTH-SP2", "none", core.PaperBest(), 12.0, 0),
		mk("KTH-SP2", "heavy", core.EASY(), 55.5, 40),
		mk("KTH-SP2", "heavy", core.PaperBest(), 31.2, 38),
	}
	out := RobustnessTable(results)
	for _, want := range []string{"KTH-SP2", "none", "heavy", "55.5", "31.2", "EASY/RequestedTime", "38-40", "(jobs canceled)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// Column order follows first appearance: none before heavy.
	if strings.Index(out, "none") > strings.Index(out, "heavy") {
		t.Fatalf("intensity columns out of order:\n%s", out)
	}
}
