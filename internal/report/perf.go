package report

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/campaign"
	"repro/internal/sim"
)

// PerfSummary renders the per-workload performance counters of a
// campaign: simulations run, events processed, policy Pick calls,
// aggregate simulation wall time and event throughput. Every campaign
// carries these counters through its results (and journal), so the
// summary doubles as a quick performance record of the engine on real
// grids — the same quantities the CI perf gate tracks via benchmarks.
func PerfSummary(results []campaign.RunResult) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Workload\tsims\tevents\tPick calls\tsim wall\tMev/s\t")
	var total sim.Perf
	var totalSims int
	row := func(name string, sims int, p sim.Perf) {
		rate := 0.0
		if p.WallNanos > 0 {
			rate = float64(p.Events) / (float64(p.WallNanos) / 1e9) / 1e6
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%.2f\t\n",
			name, sims, p.Events, p.PickCalls, p.Wall().Round(time.Millisecond), rate)
	}
	for _, name := range orderedWorkloads(results) {
		var agg sim.Perf
		sims := 0
		for _, r := range results {
			if r.Workload != name {
				continue
			}
			sims++
			agg.Events += r.Perf.Events
			agg.PickCalls += r.Perf.PickCalls
			agg.WallNanos += r.Perf.WallNanos
		}
		row(name, sims, agg)
		totalSims += sims
		total.Events += agg.Events
		total.PickCalls += agg.PickCalls
		total.WallNanos += agg.WallNanos
	}
	row("total", totalSims, total)
	tw.Flush()
	return "Performance counters (per workload):\n" + b.String()
}
