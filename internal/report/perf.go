package report

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sim"
)

// PerfSummary renders the per-workload performance counters of a
// campaign: simulations run, events processed, policy Pick calls,
// aggregate simulation wall time and event throughput. Every campaign
// carries these counters through its results (and journal), so the
// summary doubles as a quick performance record of the engine on real
// grids — the same quantities the CI perf gate tracks via benchmarks.
func PerfSummary(results []campaign.RunResult) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Workload\tsims\tevents\tPick calls\tsim wall\tMev/s\t")
	var total sim.Perf
	var totalSims int
	row := func(name string, sims int, p sim.Perf) {
		rate := 0.0
		if p.WallNanos > 0 {
			rate = float64(p.Events) / (float64(p.WallNanos) / 1e9) / 1e6
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%.2f\t\n",
			name, sims, p.Events, p.PickCalls, p.Wall().Round(time.Millisecond), rate)
	}
	for _, name := range orderedWorkloads(results) {
		var agg sim.Perf
		sims := 0
		for _, r := range results {
			if r.Workload != name {
				continue
			}
			sims++
			agg.Events += r.Perf.Events
			agg.PickCalls += r.Perf.PickCalls
			agg.WallNanos += r.Perf.WallNanos
		}
		row(name, sims, agg)
		totalSims += sims
		total.Events += agg.Events
		total.PickCalls += agg.PickCalls
		total.WallNanos += agg.WallNanos
	}
	row("total", totalSims, total)
	tw.Flush()
	out := "Performance counters (per workload):\n" + b.String()
	if stages := stageSummary(results); stages != "" {
		out += "\n" + stages
	}
	return out
}

// stageSummary renders the per-stage latency histograms of a profiled
// campaign (campaign -perf on a profiling run), merged across every
// cell (obs.MergeStages). Unprofiled results render nothing, keeping
// historical -perf output byte-identical.
func stageSummary(results []campaign.RunResult) string {
	lists := make([][]obs.StagePerf, 0, len(results))
	for i := range results {
		if len(results[i].Perf.Stages) > 0 {
			lists = append(lists, results[i].Perf.Stages)
		}
	}
	if len(lists) == 0 {
		return ""
	}
	merged := obs.MergeStages(lists...)
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Stage\tcalls\tmean ns\tp50 ns\tp90 ns\tp99 ns\tmax ns\t")
	for _, sp := range merged {
		mean := 0.0
		if sp.Count > 0 {
			mean = float64(sp.TotalNanos) / float64(sp.Count)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t\n",
			sp.Stage, sp.Count, mean, sp.P50, sp.P90, sp.P99, sp.MaxNanos)
	}
	tw.Flush()
	return "Stage latency histograms (across cells; quantiles count-weighted):\n" + b.String()
}

// FederatedPerfSummary renders the performance counters of a federated
// grid: the per-workload table over the flattened cells (including
// stage histograms when profiled), then the per-cluster split of events
// and Pick calls aggregated across cells — so -perf tells both how hard
// the engine worked and where the routers sent that work.
func FederatedPerfSummary(results []campaign.FederatedResult) string {
	flat := make([]campaign.RunResult, len(results))
	for i := range results {
		flat[i] = results[i].RunResult
	}
	out := PerfSummary(flat)

	type key struct{ federation, cluster string }
	type agg struct {
		key
		routed, finished  int
		events, pickCalls int64
	}
	var order []key
	byKey := make(map[key]*agg)
	for i := range results {
		for _, cm := range results[i].Clusters {
			k := key{results[i].Federation, cm.Name}
			a := byKey[k]
			if a == nil {
				a = &agg{key: k}
				byKey[k] = a
				order = append(order, k)
			}
			a.routed += cm.Routed
			a.finished += cm.Finished
			a.events += cm.Events
			a.pickCalls += cm.PickCalls
		}
	}
	if len(order) == 0 {
		return out
	}
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Federation\tcluster\trouted\tfinished\tevents\tPick calls\t")
	for _, k := range order {
		a := byKey[k]
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t\n",
			k.federation, k.cluster, a.routed, a.finished, a.events, a.pickCalls)
	}
	tw.Flush()
	return out + "\nPerformance counters (per federation cluster, across cells):\n" + b.String()
}
