package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// WriteResultsCSV dumps campaign results as CSV (one row per simulation),
// the machine-readable companion of the text tables — convenient for
// re-plotting the paper's figures with external tools.
func WriteResultsCSV(w io.Writer, results []campaign.RunResult) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "triple", "avebsld", "maxbsld", "meanwait_s", "utilization", "corrections", "mae_s", "mean_eloss"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Workload,
			r.Triple.Name(),
			formatFloat(r.AVEbsld),
			formatFloat(r.MaxBsld),
			formatFloat(r.MeanWait),
			formatFloat(r.Utilization),
			strconv.Itoa(r.Corrections),
			formatFloat(r.MAE),
			formatFloat(r.MeanELoss),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteECDFCSV dumps the Figure-4/5 ECDF series as CSV: the first column
// is the sample point (seconds), then one cumulative-probability column
// per series. predicted selects the Figure-5 view (predicted values)
// instead of the Figure-4 view (errors).
func WriteECDFCSV(w io.Writer, series []PredictionSeries, lo, hi int64, points int, predicted bool) error {
	if points < 2 {
		return fmt.Errorf("report: need at least 2 points, got %d", points)
	}
	if hi <= lo {
		return fmt.Errorf("report: empty range [%d, %d]", lo, hi)
	}
	cw := csv.NewWriter(w)
	header := []string{"x_seconds"}
	var cdfs []*metrics.ECDF
	for _, s := range series {
		samples := s.Errors
		if predicted {
			samples = s.Predicted
		}
		if len(samples) == 0 {
			continue
		}
		header = append(header, s.Name)
		cdfs = append(cdfs, metrics.NewECDF(samples))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < points; i++ {
		x := lo + (hi-lo)*int64(i)/int64(points-1)
		rec := []string{strconv.FormatInt(x, 10)}
		for _, c := range cdfs {
			rec = append(rec, formatFloat(c.At(float64(x))))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScatterCSV dumps the Figure-3 scatter as CSV: triple name and the
// AVEbsld on each of the two logs.
func WriteScatterCSV(w io.Writer, results []campaign.RunResult, logX, logY string) error {
	byW := campaign.ByWorkload(results)
	xs, ys := map[string]float64{}, map[string]float64{}
	for _, r := range byW[logX] {
		xs[r.Triple.Name()] = r.AVEbsld
	}
	for _, r := range byW[logY] {
		ys[r.Triple.Name()] = r.AVEbsld
	}
	var names []string
	for n := range xs {
		if _, ok := ys[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"triple", logX, logY}); err != nil {
		return err
	}
	for _, n := range names {
		if err := cw.Write([]string{n, formatFloat(xs[n]), formatFloat(ys[n])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
