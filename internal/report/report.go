// Package report renders the paper's tables and figure series from
// campaign results: Table 1 (clairvoyant gain), Table 6 (campaign
// overview), Table 7 (cross-validation), Table 8 (prediction metrics),
// Figure 3 (cross-log scatter + Pearson), Figures 4 and 5 (prediction
// ECDFs). Output is plain text suitable for terminals and for diffing in
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/stats"
)

// logOrder replicates the paper's Table-4 row order.
var logOrder = []string{"KTH-SP2", "CTC-SP2", "SDSC-SP2", "SDSC-BLUE", "Curie", "Metacentrum"}

// orderedWorkloads returns the workload names present in the results in
// Table-4 order, with unknown names appended alphabetically.
func orderedWorkloads(results []campaign.RunResult) []string {
	present := map[string]bool{}
	for _, r := range results {
		present[r.Workload] = true
	}
	var out []string
	for _, n := range logOrder {
		if present[n] {
			out = append(out, n)
			delete(present, n)
		}
	}
	var rest []string
	for n := range present {
		rest = append(rest, n)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func find(results []campaign.RunResult, workload string, match func(core.Triple) bool) (campaign.RunResult, bool) {
	for _, r := range results {
		if r.Workload == workload && match(r.Triple) {
			return r, true
		}
	}
	return campaign.RunResult{}, false
}

func sameTriple(want core.Triple) func(core.Triple) bool {
	name := want.Name()
	return func(t core.Triple) bool { return t.Name() == name }
}

// Table1 renders "AVEbsld of EASY vs EASY-Clairvoyant" with the
// percentage decrease, as in the paper's Table 1.
func Table1(results []campaign.RunResult) string {
	var b strings.Builder
	b.WriteString("Table 1: AVEbsld of EASY (requested times) vs EASY-Clairvoyant (actual runtimes)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Log\tEASY\tEASY-Clairvoyant\t")
	for _, w := range orderedWorkloads(results) {
		easy, ok1 := find(results, w, sameTriple(core.EASY()))
		clair, ok2 := find(results, w, sameTriple(core.ClairvoyantEASY()))
		if !ok1 || !ok2 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f (%.0f%%)\t\n",
			w, easy.AVEbsld, clair.AVEbsld, reduction(easy.AVEbsld, clair.AVEbsld))
	}
	tw.Flush()
	return b.String()
}

// reduction returns the percentage decrease from base to v.
func reduction(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - v) / base
}

// Table6 renders the campaign overview: the clairvoyant FCFS/SJBF bounds,
// EASY, EASY++, and the min–max AVEbsld over the learning triples per
// backfill order, as in the paper's Table 6.
func Table6(results []campaign.RunResult) string {
	var b strings.Builder
	b.WriteString("Table 6: AVEbsld overview (learning columns show best - worst over losses x corrections)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Trace\tClairFCFS\tClairSJBF\tEASY\tEASY++\tML-FCFS\tML-SJBF\t")
	for _, w := range orderedWorkloads(results) {
		clairF, _ := find(results, w, sameTriple(core.ClairvoyantEASY()))
		clairS, _ := find(results, w, sameTriple(core.ClairvoyantSJBF()))
		easy, _ := find(results, w, sameTriple(core.EASY()))
		easyPP, _ := find(results, w, sameTriple(core.EASYPlusPlus()))
		minF, maxF := learningRange(results, w, false)
		minS, maxS := learningRange(results, w, true)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f - %.1f\t%.1f - %.1f\t\n",
			w, clairF.AVEbsld, clairS.AVEbsld, easy.AVEbsld, easyPP.AVEbsld,
			minF, maxF, minS, maxS)
	}
	tw.Flush()
	return b.String()
}

// learningRange returns the (min, max) AVEbsld over the learning triples
// with the given backfill order.
func learningRange(results []campaign.RunResult, workload string, sjbf bool) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, r := range results {
		if r.Workload != workload || r.Triple.Predictor != core.PredLearning {
			continue
		}
		if (r.Triple.Backfill.String() == "SJBF") != sjbf {
			continue
		}
		if r.AVEbsld < lo {
			lo = r.AVEbsld
		}
		if r.AVEbsld > hi {
			hi = r.AVEbsld
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0
	}
	return lo, hi
}

// Table7 renders the cross-validation outcome against the EASY and
// EASY++ baselines, as in the paper's Table 7.
func Table7(cv []campaign.CrossValidation, results []campaign.RunResult) string {
	var b strings.Builder
	b.WriteString("Table 7: AVEbsld of the cross-validated heuristic triple (reduction vs EASY in parentheses)\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Log\tC-V triple\tEASY\tEASY++\tSelected\t")
	byHeld := map[string]campaign.CrossValidation{}
	for _, c := range cv {
		byHeld[c.HeldOut] = c
	}
	for _, w := range orderedWorkloads(results) {
		c, ok := byHeld[w]
		if !ok {
			continue
		}
		easy, _ := find(results, w, sameTriple(core.EASY()))
		easyPP, _ := find(results, w, sameTriple(core.EASYPlusPlus()))
		fmt.Fprintf(tw, "%s\t%.1f (%.0f%%)\t%.1f\t%.1f (%.0f%%)\t%s\t\n",
			w, c.Score, reduction(easy.AVEbsld, c.Score),
			easy.AVEbsld,
			easyPP.AVEbsld, reduction(easy.AVEbsld, easyPP.AVEbsld),
			c.Selected.Name())
	}
	tw.Flush()
	return b.String()
}

// Figure3 renders the cross-log scatter of triple AVEbsld (x = logX,
// y = logY) plus the Pearson correlation over every pair of logs, as in
// the paper's Figure 3 and Section 6.3.2.
func Figure3(results []campaign.RunResult, logX, logY string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: heuristic-triple AVEbsld scatter, %s (x) vs %s (y)\n", logX, logY)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t%s\tTriple\t\n", logX, logY)
	byW := campaign.ByWorkload(results)
	xs, ys := map[string]float64{}, map[string]float64{}
	for _, r := range byW[logX] {
		xs[r.Triple.Name()] = r.AVEbsld
	}
	for _, r := range byW[logY] {
		ys[r.Triple.Name()] = r.AVEbsld
	}
	var names []string
	for n := range xs {
		if _, ok := ys[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var xv, yv []float64
	for _, n := range names {
		fmt.Fprintf(tw, "%.1f\t%.1f\t%s\t\n", xs[n], ys[n], n)
		xv = append(xv, xs[n])
		yv = append(yv, ys[n])
	}
	tw.Flush()
	if r, err := stats.Pearson(xv, yv); err == nil {
		fmt.Fprintf(&b, "Pearson(%s, %s) = %.2f\n", logX, logY, r)
	}
	b.WriteString(pearsonMatrix(results))
	return b.String()
}

// pearsonMatrix computes the Pearson coefficient between every pair of
// logs over the shared triples, reporting mean/min/max as in the paper
// ("with a mean of 0.26 (min 0.01, max 0.80)").
func pearsonMatrix(results []campaign.RunResult) string {
	byW := campaign.ByWorkload(results)
	names := orderedWorkloads(results)
	var coefs []float64
	var b strings.Builder
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, c := byW[names[i]], byW[names[j]]
			am := map[string]float64{}
			for _, r := range a {
				am[r.Triple.Name()] = r.AVEbsld
			}
			var xv, yv []float64
			for _, r := range c {
				if x, ok := am[r.Triple.Name()]; ok {
					xv = append(xv, x)
					yv = append(yv, r.AVEbsld)
				}
			}
			r, err := stats.Pearson(xv, yv)
			if err != nil {
				continue
			}
			coefs = append(coefs, math.Abs(r))
			fmt.Fprintf(&b, "  Pearson(%s, %s) = %.2f\n", names[i], names[j], r)
		}
	}
	if len(coefs) > 0 {
		lo, hi := stats.MinMax(coefs)
		fmt.Fprintf(&b, "  |Pearson| mean %.2f (min %.2f, max %.2f)\n", stats.Mean(coefs), lo, hi)
	}
	return b.String()
}
