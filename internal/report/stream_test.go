package report

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/metrics"
)

// streamJob builds a finished job for the collector (Client selects the
// per-client split bucket).
func streamJob(id int64, client int, submit, start, runtime, procs int64) *job.Job {
	return &job.Job{
		ID: id, Submit: submit, Runtime: runtime, Procs: procs, Client: client,
		Start: start, End: start + runtime, Started: true, Finished: true,
		SubmitPrediction: runtime,
	}
}

// TestStreamSummaryGolden pins the exact summary block: cmd/simsched's
// -stream path and cmd/schedd both render through StreamSummary, and
// the CI smoke job diffs their outputs byte for byte — so the format is
// a contract, not a style choice.
func TestStreamSummaryGolden(t *testing.T) {
	col := metrics.NewCollector()
	// One job with zero wait, one that waited 100s: AVEbsld = (1+2)/2.
	col.Observe(streamJob(1, 0, 0, 0, 100, 4))
	col.Observe(streamJob(2, 0, 0, 100, 100, 60))
	r := CollectStreamRun("unit", 64, "EASY", 200, 3, col)

	var b strings.Builder
	StreamSummary(&b, r)
	want := `workload      unit (streamed, 2 jobs finished, 64 procs)
triple        EASY
AVEbsld       1.50
max bsld      2.0
mean wait     50 s (p50 100, p95 100, p99 100)
utilization   0.500
corrections   3
prediction MAE 0 s, mean E-Loss 0
`
	if b.String() != want {
		t.Fatalf("summary block drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestClientSplit pins the per-client lines, including the zero-traffic
// client and the unattributed-job case (share computed over the overall
// count, so the percentages need not sum to 100).
func TestClientSplit(t *testing.T) {
	pc := metrics.NewPerClient([]string{"batch", "idle"})
	pc.Observe(streamJob(1, 0, 0, 0, 100, 4))
	pc.Observe(streamJob(2, 0, 0, 100, 100, 4))
	pc.Observe(streamJob(3, 7, 0, 0, 100, 4)) // outside the declared split

	var b strings.Builder
	ClientSplit(&b, pc)
	want := `client batch      finished      2 (66.7%)  AVEbsld   1.50  mean wait     50 s
client idle       finished      0 ( 0.0%)  AVEbsld   0.00  mean wait      0 s
`
	if b.String() != want {
		t.Fatalf("client split drifted:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestClientSplitEmpty: with nothing observed the share divides by the
// zero total without NaN.
func TestClientSplitEmpty(t *testing.T) {
	var b strings.Builder
	ClientSplit(&b, metrics.NewPerClient([]string{"a"}))
	if !strings.Contains(b.String(), "( 0.0%)") {
		t.Fatalf("empty split should render 0.0%%, got:\n%s", b.String())
	}
}
