package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

// TestFederatedTable checks the grouping structure: one block per
// workload, one sub-block per (federation, topology), triples as rows
// with a per-cluster column each.
func TestFederatedTable(t *testing.T) {
	row := func(w, triple string, tr core.Triple, ave float64) campaign.FederatedResult {
		return campaign.FederatedResult{
			RunResult:  campaign.RunResult{Workload: w, Triple: tr, AVEbsld: ave, MeanWait: 120, Utilization: 0.7},
			Federation: "fed", Topology: "2x64", Routing: "least-loaded",
			Clusters: []campaign.ClusterMetrics{
				{Name: "alpha", Finished: 10, AVEbsld: ave},
				{Name: "beta", Finished: 20, AVEbsld: ave / 2},
			},
		}
	}
	got := FederatedTable([]campaign.FederatedResult{
		row("KTH-SP2", "easy", core.EASY(), 8.0),
		row("KTH-SP2", "easy++", core.EASYPlusPlus(), 4.0),
		row("CTC-SP2", "easy", core.EASY(), 6.0),
	})
	for _, want := range []string{
		"KTH-SP2:", "CTC-SP2:",
		"routing=least-loaded topology=2x64",
		"alpha", "beta",
		core.EASYPlusPlus().Name(),
		"4.0", "2.0 (20)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	// Two workloads, each with one sub-block: the workload header must
	// not repeat for rows sharing a platform.
	if n := strings.Count(got, "KTH-SP2:"); n != 1 {
		t.Errorf("KTH-SP2 header appears %d times, want 1:\n%s", n, got)
	}
}
