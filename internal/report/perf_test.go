package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestPerfSummary(t *testing.T) {
	results := []campaign.RunResult{
		{Workload: "KTH-SP2", Triple: core.EASY(), Perf: sim.Perf{Events: 1000, PickCalls: 500, WallNanos: 2e9}},
		{Workload: "KTH-SP2", Triple: core.EASYPlusPlus(), Perf: sim.Perf{Events: 3000, PickCalls: 700, WallNanos: 1e9}},
		{Workload: "Curie", Triple: core.EASY(), Perf: sim.Perf{Events: 10, PickCalls: 5, WallNanos: 1e6}},
	}
	out := PerfSummary(results)
	for _, want := range []string{"KTH-SP2", "Curie", "total", "4000", "1205", "Pick calls"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// KTH-SP2 comes before Curie (Table-4 row order), and totals last.
	if strings.Index(out, "KTH-SP2") > strings.Index(out, "Curie") {
		t.Error("workloads out of Table-4 order")
	}
	// Zero wall time must not divide by zero.
	if out := PerfSummary([]campaign.RunResult{{Workload: "X", Triple: core.EASY()}}); !strings.Contains(out, "0.00") {
		t.Errorf("zero-wall summary malformed:\n%s", out)
	}
}
