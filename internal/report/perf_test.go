package report

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestPerfSummary(t *testing.T) {
	results := []campaign.RunResult{
		{Workload: "KTH-SP2", Triple: core.EASY(), Perf: sim.Perf{Events: 1000, PickCalls: 500, WallNanos: 2e9}},
		{Workload: "KTH-SP2", Triple: core.EASYPlusPlus(), Perf: sim.Perf{Events: 3000, PickCalls: 700, WallNanos: 1e9}},
		{Workload: "Curie", Triple: core.EASY(), Perf: sim.Perf{Events: 10, PickCalls: 5, WallNanos: 1e6}},
	}
	out := PerfSummary(results)
	for _, want := range []string{"KTH-SP2", "Curie", "total", "4000", "1205", "Pick calls"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// KTH-SP2 comes before Curie (Table-4 row order), and totals last.
	if strings.Index(out, "KTH-SP2") > strings.Index(out, "Curie") {
		t.Error("workloads out of Table-4 order")
	}
	// Zero wall time must not divide by zero.
	if out := PerfSummary([]campaign.RunResult{{Workload: "X", Triple: core.EASY()}}); !strings.Contains(out, "0.00") {
		t.Errorf("zero-wall summary malformed:\n%s", out)
	}
	// Unprofiled results must not grow a stage table: -perf output on
	// historical journals stays unchanged.
	if strings.Contains(out, "Stage latency") {
		t.Errorf("unprofiled summary grew a stage table:\n%s", out)
	}
}

func TestPerfSummaryStageHistograms(t *testing.T) {
	prof := obs.NewStageProfile()
	for i := 1; i <= 100; i++ {
		prof.Observe(obs.StagePop, int64(i))
		prof.Observe(obs.StagePick, int64(10*i))
	}
	results := []campaign.RunResult{
		{Workload: "KTH-SP2", Triple: core.EASY(),
			Perf: sim.Perf{Events: 100, PickCalls: 100, WallNanos: 1e6, Stages: prof.Summaries()}},
		{Workload: "KTH-SP2", Triple: core.EASYPlusPlus(),
			Perf: sim.Perf{Events: 50, PickCalls: 25, WallNanos: 1e6}},
	}
	out := PerfSummary(results)
	for _, want := range []string{"Stage latency histograms", "eventq-pop", "pick", "p50 ns", "p99 ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage summary missing %q:\n%s", want, out)
		}
	}
	// The pop stage observed 1..100 ns: count 100, max 100.
	if !strings.Contains(out, "100") {
		t.Errorf("stage summary missing pop counts:\n%s", out)
	}
}

func TestFederatedPerfSummary(t *testing.T) {
	results := []campaign.FederatedResult{
		{
			RunResult:  campaign.RunResult{Workload: "KTH-SP2", Triple: core.EASY(), Perf: sim.Perf{Events: 900, PickCalls: 400, WallNanos: 1e9}},
			Federation: "two-uniform", Routing: "round-robin",
			Clusters: []campaign.ClusterMetrics{
				{Name: "c0", Routed: 60, Finished: 58, Events: 500, PickCalls: 220},
				{Name: "c1", Routed: 40, Finished: 40, Events: 400, PickCalls: 180},
			},
		},
		{
			RunResult:  campaign.RunResult{Workload: "KTH-SP2", Triple: core.EASYPlusPlus(), Perf: sim.Perf{Events: 1100, PickCalls: 600, WallNanos: 1e9}},
			Federation: "two-uniform", Routing: "round-robin",
			Clusters: []campaign.ClusterMetrics{
				{Name: "c0", Routed: 60, Finished: 60, Events: 600, PickCalls: 330},
				{Name: "c1", Routed: 40, Finished: 38, Events: 500, PickCalls: 270},
			},
		},
	}
	out := FederatedPerfSummary(results)
	for _, want := range []string{
		"Performance counters (per workload)",
		"Performance counters (per federation cluster",
		"two-uniform", "c0", "c1",
		// Aggregated across the two cells: c0 events 1100, picks 550;
		// c1 events 900, picks 450; routed 120/80.
		"1100", "550", "900", "450", "120", "80",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated summary missing %q:\n%s", want, out)
		}
	}
	// No clusters recorded (old journals without per-cluster counters
	// still resume): falls back to the flat table alone.
	bare := FederatedPerfSummary([]campaign.FederatedResult{{
		RunResult: campaign.RunResult{Workload: "X", Triple: core.EASY()},
	}})
	if strings.Contains(bare, "per federation cluster") {
		t.Errorf("clusterless summary grew a cluster table:\n%s", bare)
	}
}
