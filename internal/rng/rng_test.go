package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("children with different labels produced identical first draw")
	}
	// Splitting must not disturb the parent stream.
	p1 := New(7)
	p1.Split(1)
	p1.Split(2)
	p2 := New(7)
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatalf("split disturbed parent stream at draw %d", i)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(5)
	b := New(9).Split(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(17)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(5, 1.5)
	}
	below := 0
	median := math.Exp(5.0)
	for _, v := range vals {
		if v < median {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("lognormal median fraction %v too far from 0.5", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exponential(0.25)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.1 {
		t.Fatalf("exponential mean %v too far from 4", mean)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(23)
	const n = 100000
	for _, tc := range []struct{ shape, scale float64 }{{2, 3}, {0.5, 2}, {5, 1}} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(tc.shape, tc.scale)
		}
		mean := sum / n
		want := tc.shape * tc.scale
		if math.Abs(mean-want)/want > 0.05 {
			t.Fatalf("gamma(%v,%v) mean %v, want ~%v", tc.shape, tc.scale, mean, want)
		}
	}
}

func TestWeibullPositive(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if v := r.Weibull(0.7, 100); v <= 0 {
			t.Fatalf("Weibull returned non-positive %v", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.1, 10, 1000)
		if v < 10-1e-9 || v > 1000+1e-9 {
			t.Fatalf("BoundedPareto out of [10,1000]: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	src := New(37)
	z := NewZipf(src, 100, 1.2)
	counts := make([]int, 101)
	const n = 50000
	for i := 0; i < n; i++ {
		rank := z.Draw()
		if rank < 1 || rank > 100 {
			t.Fatalf("Zipf rank out of range: %d", rank)
		}
		counts[rank]++
	}
	if counts[1] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank1=%d rank50=%d", counts[1], counts[50])
	}
	if counts[1] < n/20 {
		t.Fatalf("Zipf rank 1 drew only %d of %d", counts[1], n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestQuickFloat64Bounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitDeterministic(t *testing.T) {
	f := func(seed, label uint64) bool {
		a := New(seed).Split(label)
		b := New(seed).Split(label)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkLogNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.LogNormal(5, 1.5)
	}
}
