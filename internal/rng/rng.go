// Package rng provides a small, deterministic, splittable pseudo-random
// number generator and the distributions needed by the synthetic workload
// generators. Determinism matters here: every experiment in the repository
// must be exactly reproducible from a seed, across runs and platforms, so
// we avoid math/rand's global state and implement xoshiro256** seeded via
// SplitMix64.
package rng

import "math"

// splitMix64 advances the given state and returns the next output.
// It is used both as a seeding function and for stream splitting.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed derives a deterministic child seed from a base seed and a
// label path, folding each label through one SplitMix64 step (golden-gamma
// offset, then the finalizer New seeds its generators with). It is the
// single seed-derivation scheme of the repository — per-cell grid seeds,
// per-cluster disruption seeds — replacing ad-hoc inline arithmetic:
//
//   - children are statistically independent across labels (the SplitMix64
//     finalizer is a bijective avalanche mix, so nearby labels share no
//     structure);
//   - the mapping is a pure function of (base, labels...), so an
//     interrupted-and-resumed grid, or two processes deriving the same
//     coordinate, always agree;
//   - labels compose: DeriveSeed(base, a, b) == DeriveSeed(DeriveSeed(base, a), b),
//     so a harness may hand a subsystem a derived base and let it derive
//     further children without coordination.
//
// With a single label the mapping is exactly the historical per-cell
// formula of the campaign grid executor, so journals keyed by derived
// cell seeds stay valid.
func DeriveSeed(base uint64, labels ...uint64) uint64 {
	z := base
	for _, label := range labels {
		// splitMix64 adds one golden-gamma increment itself, so offsetting
		// by label increments here yields finalize(z + (label+1)*gamma).
		st := z + label*0x9e3779b97f4a7c15
		z = splitMix64(&st)
	}
	return z
}

// Stream returns the labeled child generator of a root seeded from seed:
// Stream(seed, label) is New(seed).Split(label) without materializing the
// root. It names the convention the workload generators share — the
// preloading and streaming generator of one config must draw, say, their
// arrival sequences from the same (seed, label) stream to stay
// comparable — so the label constants live next to the generators and
// the derivation lives here.
func Stream(seed, label uint64) *Source {
	return New(seed).Split(label)
}

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via SplitMix64, as
// recommended by the xoshiro authors to avoid correlated low-entropy states.
func New(seed uint64) *Source {
	st := seed
	var r Source
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	return &r
}

// Split derives an independent child stream. The child is a pure function
// of the parent state and the label, so splitting is itself deterministic
// and does not disturb the parent sequence.
func (r *Source) Split(label uint64) *Source {
	st := r.s[0] ^ rotl(r.s[2], 17) ^ label*0x9e3779b97f4a7c15
	var c Source
	for i := range c.s {
		c.s[i] = splitMix64(&st)
	}
	return &c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be faster, but a simple
	// modulo of a 64-bit draw has negligible bias for the small n used here.
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate using the polar Box–Muller
// (Marsaglia) method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(mu + sigma*Z) for standard normal Z.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// Exponential returns an exponential variate with the given rate (mean 1/rate).
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Gamma returns a gamma variate with the given shape and scale, using the
// Marsaglia–Tsang method (with Johnk-style boosting for shape < 1).
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull variate with the given shape and scale.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// BoundedPareto returns a bounded Pareto variate on [lo, hi] with tail
// index alpha. Used for heavy-tailed running times.
func (r *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("rng: BoundedPareto with invalid parameters")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool { return r.Float64() < p }

// Zipf draws ranks in [1, n] with probability proportional to 1/rank^s
// using precomputed cumulative weights. Construct with NewZipf.
type Zipf struct {
	src *Source
	cum []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf with invalid parameters")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{src: src, cum: cum}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
