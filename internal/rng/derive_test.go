package rng

import "testing"

// TestDeriveSeedDeterministic holds DeriveSeed to a pure function of its
// inputs: repeated calls agree, and the label path matters.
func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	if DeriveSeed(42) != 42 {
		t.Fatal("DeriveSeed with no labels must return the base unchanged")
	}
	if DeriveSeed(42, 7) == DeriveSeed(42, 8) {
		t.Fatal("sibling labels collided")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Fatal("different bases collided")
	}
	if DeriveSeed(42, 7, 0) == DeriveSeed(42, 7) {
		t.Fatal("extending the label path must change the seed")
	}
}

// TestDeriveSeedComposes pins the composition law the doc comment
// promises: handing a subsystem a derived base and letting it derive
// further children is the same as deriving the full path at once.
func TestDeriveSeedComposes(t *testing.T) {
	for _, c := range []struct{ base, a, b uint64 }{
		{1, 0, 0}, {42, 3, 9}, {^uint64(0), 17, 1 << 40},
	} {
		direct := DeriveSeed(c.base, c.a, c.b)
		staged := DeriveSeed(DeriveSeed(c.base, c.a), c.b)
		if direct != staged {
			t.Fatalf("DeriveSeed(%d, %d, %d) = %#x, staged derivation %#x",
				c.base, c.a, c.b, direct, staged)
		}
	}
}

// TestDeriveSeedMatchesHistoricalCellSeed pins the single-label mapping
// to the formula the campaign grid executor used inline before it moved
// here: one SplitMix64 output of base + (label+1) golden-gamma steps.
// Result journals key cells by derived seeds, so this mapping is part of
// the resume contract and must never drift.
func TestDeriveSeedMatchesHistoricalCellSeed(t *testing.T) {
	legacy := func(base uint64, i int) uint64 {
		st := base + (uint64(i)+1)*0x9e3779b97f4a7c15
		z := (st ^ (st >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for _, base := range []uint64{0, 1, 42, ^uint64(0)} {
		for i := 0; i < 100; i++ {
			if got, want := DeriveSeed(base, uint64(i)), legacy(base, i); got != want {
				t.Fatalf("DeriveSeed(%d, %d) = %#x, historical cell seed %#x", base, i, got, want)
			}
		}
	}
}

// TestDeriveSeedSpread is a cheap avalanche check: consecutive labels
// under one base must not produce clustered or colliding seeds.
func TestDeriveSeedSpread(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		s := DeriveSeed(99, i)
		if seen[s] {
			t.Fatalf("collision at label %d", i)
		}
		seen[s] = true
	}
}

// TestStreamMatchesSplit pins Stream's equivalence to the long-hand
// derivation the workload generators used to inline.
func TestStreamMatchesSplit(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0x5eed} {
		for _, label := range []uint64{0, 1, 3, 99} {
			a, b := Stream(seed, label), New(seed).Split(label)
			for i := 0; i < 32; i++ {
				if x, y := a.Uint64(), b.Uint64(); x != y {
					t.Fatalf("Stream(%d, %d) diverges from New().Split() at draw %d: %#x vs %#x", seed, label, i, x, y)
				}
			}
		}
	}
}
