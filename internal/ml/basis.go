package ml

// Basis implements the paper's degree-2 polynomial feature map
//
//	Φ(x) = (1, x1..xn, x1², .., xn², x1x2, .., x(n-1)xn)
//
// of dimension 1 + 2n + n(n-1)/2, matching the w ∈ R^(1+2n+C(n,2)) in
// Equation (1). The expansion is allocated once and reused to keep the
// per-prediction cost at a single O(n²) pass with no garbage.
type Basis struct {
	n      int
	degree int
	out    []float64
}

// NewBasis creates the paper's degree-2 basis expander for n raw features.
func NewBasis(n int) *Basis { return NewBasisDegree(n, 2) }

// NewBasisDegree creates a basis of the given degree: 1 gives the affine
// map (1, x1..xn) — the linear-model ablation — and 2 the paper's full
// quadratic map.
func NewBasisDegree(n, degree int) *Basis {
	if n <= 0 {
		panic("ml: basis over non-positive feature count")
	}
	if degree != 1 && degree != 2 {
		panic("ml: basis degree must be 1 or 2")
	}
	dim := 1 + n
	if degree == 2 {
		dim = BasisDim(n)
	}
	return &Basis{n: n, degree: degree, out: make([]float64, dim)}
}

// BasisDim returns the degree-2 expanded dimension for n raw features.
func BasisDim(n int) int { return 1 + 2*n + n*(n-1)/2 }

// Dim returns the expanded dimension.
func (b *Basis) Dim() int { return len(b.out) }

// Expand maps the raw vector into the polynomial basis. The returned
// slice is owned by the Basis and overwritten by the next call; callers
// that need to keep it must copy.
func (b *Basis) Expand(x []float64) []float64 {
	if len(x) != b.n {
		panic("ml: basis dimension mismatch")
	}
	out := b.out
	out[0] = 1
	copy(out[1:], x)
	if b.degree == 1 {
		return out
	}
	k := 1 + b.n
	for i := 0; i < b.n; i++ {
		out[k] = x[i] * x[i]
		k++
	}
	for i := 0; i < b.n; i++ {
		for j := i + 1; j < b.n; j++ {
			out[k] = x[i] * x[j]
			k++
		}
	}
	return out
}
