package ml

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func trainSample(m *Model, n int, seed uint64) {
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		req := 600 + src.Float64()*30000
		actual := req * 0.25
		x := make([]float64, FeatureCount)
		x[FeatRequestedTime] = req
		x[FeatProcs] = 1 + src.Float64()*31
		m.Observe(x, actual, x[FeatProcs])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewModel(DefaultConfig(ELoss))
	trainSample(m, 500, 3)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Identical predictions on fresh inputs.
	src := rng.New(99)
	for i := 0; i < 50; i++ {
		x := make([]float64, FeatureCount)
		x[FeatRequestedTime] = src.Float64() * 40000
		x[FeatProcs] = 1 + src.Float64()*15
		a, b := m.Predict(x), m2.Predict(x)
		if a != b {
			t.Fatalf("prediction diverged after reload: %v vs %v", a, b)
		}
	}
	if m2.Loss().Name() != ELoss.Name() {
		t.Fatalf("loss not restored: %s", m2.Loss().Name())
	}
}

func TestSaveLoadContinuesTraining(t *testing.T) {
	// Train, save, load, keep training: the reloaded model must behave
	// like the uninterrupted one.
	a := NewModel(DefaultConfig(SquaredLoss))
	trainSample(a, 300, 7)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trainSample(a, 300, 11)
	trainSample(b, 300, 11)
	x := make([]float64, FeatureCount)
	x[FeatRequestedTime] = 12000
	x[FeatProcs] = 8
	if pa, pb := a.Predict(x), b.Predict(x); pa != pb {
		t.Fatalf("resumed training diverged: %v vs %v", pa, pb)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"loss":"nope"}`)); err == nil {
		t.Fatal("unknown loss accepted")
	}
	if _, err := Load(strings.NewReader(`{"loss":"over=sq,under=sq,w=const","features":20,"degree":2,"w":[1,2]}`)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestLossByName(t *testing.T) {
	for _, l := range AllLosses() {
		got, err := LossByName(l.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got != l {
			t.Fatalf("round trip failed for %s", l.Name())
		}
	}
	if _, err := LossByName("bogus"); err == nil {
		t.Fatal("bogus loss resolved")
	}
}

func TestLinearBasisDegree(t *testing.T) {
	b := NewBasisDegree(3, 1)
	out := b.Expand([]float64{2, 3, 5})
	want := []float64{1, 2, 3, 5}
	if len(out) != len(want) {
		t.Fatalf("linear basis dim %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("linear basis wrong at %d: %v", i, out)
		}
	}
}

func TestBasisDegreeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree 3 accepted")
		}
	}()
	NewBasisDegree(3, 3)
}

func TestModelDegree1Config(t *testing.T) {
	cfg := DefaultConfig(SquaredLoss)
	cfg.Degree = 1
	m := NewModel(cfg)
	trainSample(m, 200, 5)
	x := make([]float64, FeatureCount)
	x[FeatRequestedTime] = 10000
	x[FeatProcs] = 4
	if p := m.Predict(x); p == 0 {
		t.Fatal("degree-1 model did not learn")
	}
}
