package ml

import (
	"fmt"
	"math"
)

// Branch selects the basis loss applied to one side of the prediction
// error (Section 4.2 considers the linear and squared losses).
type Branch int

const (
	// Linear is L(z) = z.
	Linear Branch = iota
	// Squared is L(z) = z².
	Squared
)

// String returns "lin" or "sq".
func (b Branch) String() string {
	if b == Squared {
		return "sq"
	}
	return "lin"
}

// eval computes the branch loss for z >= 0.
func (b Branch) eval(z float64) float64 {
	if b == Squared {
		return z * z
	}
	return z
}

// deriv computes dL/dz for z >= 0.
func (b Branch) deriv(z float64) float64 {
	if b == Squared {
		return 2 * z
	}
	return 1
}

// Weighting selects the per-job weighting factor γj of Table 3.
type Weighting int

const (
	// WeightConstant: γ = 1.
	WeightConstant Weighting = iota
	// WeightShortWide: γ = 5 + log(q/p) — short jobs with large resource
	// request should be well-predicted.
	WeightShortWide
	// WeightLongNarrow: γ = 5 + log(p/q) — long jobs with small resource
	// request should be well-predicted.
	WeightLongNarrow
	// WeightSmallArea: γ = 11 + log(1/(q·p)) — jobs of small area should
	// be well-predicted.
	WeightSmallArea
	// WeightLargeArea: γ = log(q·p) — jobs of large area should be
	// well-predicted. This is the E-Loss weighting.
	WeightLargeArea
)

// Weightings lists all Table-3 schemes in order.
var Weightings = []Weighting{WeightConstant, WeightShortWide, WeightLongNarrow, WeightSmallArea, WeightLargeArea}

// String names the weighting scheme.
func (w Weighting) String() string {
	switch w {
	case WeightConstant:
		return "const"
	case WeightShortWide:
		return "shortwide"
	case WeightLongNarrow:
		return "longnarrow"
	case WeightSmallArea:
		return "smallarea"
	case WeightLargeArea:
		return "largearea"
	}
	return "unknown"
}

// minGamma keeps weights strictly positive; Table 3's constants "ensure
// positivity with typical running times", and this floor guards the
// atypical ones.
const minGamma = 0.01

// Gamma evaluates the weighting factor for a job with actual running
// time p (seconds) and resource request q (processors).
func (w Weighting) Gamma(p, q float64) float64 {
	if p < 1 {
		p = 1
	}
	if q < 1 {
		q = 1
	}
	var g float64
	switch w {
	case WeightConstant:
		g = 1
	case WeightShortWide:
		g = 5 + math.Log(q/p)
	case WeightLongNarrow:
		g = 5 + math.Log(p/q)
	case WeightSmallArea:
		g = 11 + math.Log(1/(q*p))
	case WeightLargeArea:
		g = math.Log(q * p)
	default:
		g = 1
	}
	if g < minGamma {
		g = minGamma
	}
	return g
}

// Loss is one member of the paper's loss family: a basis loss per error
// direction plus a per-job weighting scheme.
//
// Direction convention (following the paper's own vocabulary in
// Section 2.2): the prediction error is err = f(x) − p. err > 0 is an
// over-prediction, err < 0 an under-prediction. The E-Loss (Equation 3)
// applies the squared branch to over-predictions and the linear branch to
// under-predictions, which is what "discourages over-prediction" in the
// analysis of Section 6.4.
type Loss struct {
	// Over is applied to over-predictions (f(x) >= p).
	Over Branch
	// Under is applied to under-predictions (f(x) < p).
	Under Branch
	// Weight is the γj scheme.
	Weight Weighting
}

// ELoss is the cross-validated winner of Section 6.3.3: squared
// over-prediction branch, linear under-prediction branch, large-area
// weighting. (The paper prints the weight as log(rj·pj), an apparent typo
// for the Table-3 "large area" factor log(qj·pj); see DESIGN.md.)
var ELoss = Loss{Over: Squared, Under: Linear, Weight: WeightLargeArea}

// SquaredLoss is the standard symmetric squared regression loss with
// constant weights, the "Squared Loss Regression" baseline of Figure 4/5.
var SquaredLoss = Loss{Over: Squared, Under: Squared, Weight: WeightConstant}

// Name returns a stable identifier such as "over=sq,under=lin,w=largearea".
func (l Loss) Name() string {
	return fmt.Sprintf("over=%s,under=%s,w=%s", l.Over, l.Under, l.Weight)
}

// Eval computes the weighted loss of predicting pred when the actual
// running time is actual, for a job requesting q processors.
func (l Loss) Eval(pred, actual, q float64) float64 {
	gamma := l.Weight.Gamma(actual, q)
	err := pred - actual
	if err >= 0 {
		return gamma * l.Over.eval(err)
	}
	return gamma * l.Under.eval(-err)
}

// Grad computes d Eval / d pred.
func (l Loss) Grad(pred, actual, q float64) float64 {
	gamma := l.Weight.Gamma(actual, q)
	err := pred - actual
	if err >= 0 {
		return gamma * l.Over.deriv(err)
	}
	return -gamma * l.Under.deriv(-err)
}

// AllLosses enumerates the paper's full 2×2×5 = 20-member loss family
// (Table 5).
func AllLosses() []Loss {
	var out []Loss
	for _, over := range []Branch{Linear, Squared} {
		for _, under := range []Branch{Linear, Squared} {
			for _, w := range Weightings {
				out = append(out, Loss{Over: over, Under: under, Weight: w})
			}
		}
	}
	return out
}
