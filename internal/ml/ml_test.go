package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/rng"
)

func TestBasisDim(t *testing.T) {
	// The paper's w lives in R^(1+2n+C(n,2)).
	if d := BasisDim(20); d != 1+2*20+190 {
		t.Fatalf("BasisDim(20) = %d, want 231", d)
	}
	if d := BasisDim(2); d != 6 {
		t.Fatalf("BasisDim(2) = %d, want 6", d)
	}
}

func TestBasisExpand(t *testing.T) {
	b := NewBasis(3)
	out := b.Expand([]float64{2, 3, 5})
	want := []float64{1, 2, 3, 5, 4, 9, 25, 6, 10, 15}
	if len(out) != len(want) {
		t.Fatalf("dim %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Φ[%d] = %v, want %v (full: %v)", i, out[i], want[i], out)
		}
	}
}

func TestBasisDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewBasis(3).Expand([]float64{1, 2})
}

func TestLossFamilySize(t *testing.T) {
	losses := AllLosses()
	if len(losses) != 20 {
		t.Fatalf("loss family has %d members, want 20 (Table 5)", len(losses))
	}
	seen := make(map[string]bool)
	for _, l := range losses {
		if seen[l.Name()] {
			t.Fatalf("duplicate loss %s", l.Name())
		}
		seen[l.Name()] = true
	}
}

func TestELossShape(t *testing.T) {
	// E-Loss: squared over-prediction, linear under-prediction, so a
	// +1000s error must cost far more than a -1000s error.
	over := ELoss.Eval(4600, 3600, 8)
	under := ELoss.Eval(2600, 3600, 8)
	if over <= under {
		t.Fatalf("E-Loss should discourage over-prediction: over=%v under=%v", over, under)
	}
	if ratio := over / under; ratio < 100 {
		t.Fatalf("squared/linear ratio %v too small for 1000s error", ratio)
	}
}

func TestLossZeroErrorIsZero(t *testing.T) {
	for _, l := range AllLosses() {
		if got := l.Eval(500, 500, 4); got != 0 {
			t.Fatalf("%s: loss at zero error = %v", l.Name(), got)
		}
	}
}

func TestLossNonNegative(t *testing.T) {
	for _, l := range AllLosses() {
		for _, pred := range []float64{-100, 0, 10, 1e6} {
			if got := l.Eval(pred, 3600, 16); got < 0 {
				t.Fatalf("%s: negative loss %v at pred=%v", l.Name(), got, pred)
			}
		}
	}
}

func TestLossGradSign(t *testing.T) {
	for _, l := range AllLosses() {
		if g := l.Grad(5000, 3600, 8); g <= 0 {
			t.Fatalf("%s: over-prediction gradient %v should be positive", l.Name(), g)
		}
		if g := l.Grad(1000, 3600, 8); g >= 0 {
			t.Fatalf("%s: under-prediction gradient %v should be negative", l.Name(), g)
		}
	}
}

func TestLossGradMatchesFiniteDifference(t *testing.T) {
	const h = 1e-4
	for _, l := range AllLosses() {
		for _, pred := range []float64{100, 3000, 9000} {
			actual, q := 3600.0, 8.0
			// Skip the kink at pred == actual.
			if math.Abs(pred-actual) < 1 {
				continue
			}
			want := (l.Eval(pred+h, actual, q) - l.Eval(pred-h, actual, q)) / (2 * h)
			got := l.Grad(pred, actual, q)
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("%s at pred=%v: grad %v, finite-diff %v", l.Name(), pred, got, want)
			}
		}
	}
}

func TestGammaPositive(t *testing.T) {
	for _, w := range Weightings {
		for _, p := range []float64{0, 1, 60, 1e6} {
			for _, q := range []float64{0, 1, 100, 1e5} {
				if g := w.Gamma(p, q); g <= 0 {
					t.Fatalf("%s: gamma(%v,%v) = %v not positive", w, p, q, g)
				}
			}
		}
	}
}

func TestGammaOrientation(t *testing.T) {
	// Large-area weighting must rank a big job above a small one.
	big := WeightLargeArea.Gamma(1e5, 1000)
	small := WeightLargeArea.Gamma(60, 1)
	if big <= small {
		t.Fatalf("largearea gamma: big=%v <= small=%v", big, small)
	}
	// Small-area is the reverse.
	if WeightSmallArea.Gamma(1e5, 1000) >= WeightSmallArea.Gamma(60, 1) {
		t.Fatal("smallarea gamma not decreasing in area")
	}
	// Short-wide favors q >> p.
	if WeightShortWide.Gamma(60, 512) <= WeightShortWide.Gamma(1e5, 1) {
		t.Fatal("shortwide gamma not favoring wide short jobs")
	}
}

func TestNAGLearnsLinearTarget(t *testing.T) {
	// y = 3*x1 - 2*x2 + 10, squared loss; NAG should drive the error down.
	src := rng.New(1)
	opt := NewNAG(3, 1.0, 0)
	opt.SetTargetScale(2000)
	var lateErr, earlyErr float64
	const n = 4000
	for i := 0; i < n; i++ {
		x := []float64{1, src.Float64() * 10, src.Float64() * 1000} // wildly different scales
		y := 10 + 3*x[1] - 2*x[2]
		pred := opt.Step(x, func(p float64) float64 { return 2 * (p - y) })
		e := math.Abs(pred - y)
		if i < 200 {
			earlyErr += e
		}
		if i >= n-200 {
			lateErr += e
		}
	}
	if lateErr >= earlyErr/4 {
		t.Fatalf("NAG did not converge: early MAE %v, late MAE %v", earlyErr/200, lateErr/200)
	}
}

func TestNAGScaleInvariance(t *testing.T) {
	// Rescaling a feature by 1e6 must not blow up learning: final error
	// should be in the same ballpark for both scalings.
	run := func(scale float64) float64 {
		src := rng.New(7)
		opt := NewNAG(2, 1.0, 0)
		opt.SetTargetScale(25)
		var late float64
		const n = 3000
		for i := 0; i < n; i++ {
			raw := src.Float64() * 5
			x := []float64{1, raw * scale}
			y := 4*raw + 2
			pred := opt.Step(x, func(p float64) float64 { return 2 * (p - y) })
			if i >= n-500 {
				late += math.Abs(pred - y)
			}
		}
		return late / 500
	}
	small, large := run(1), run(1e6)
	if large > 10*small+1 {
		t.Fatalf("scale invariance broken: err(1)=%v err(1e6)=%v", small, large)
	}
}

func TestNAGRegularizationShrinksWeights(t *testing.T) {
	src := rng.New(3)
	free := NewNAG(2, 1.0, 0)
	reg := NewNAG(2, 1.0, 0.5)
	for i := 0; i < 2000; i++ {
		x := []float64{1, src.Float64()}
		y := 100 * x[1]
		g := func(p float64) float64 { return 2 * (p - y) }
		free.Step(x, g)
		reg.Step(x, g)
	}
	if math.Abs(reg.Weights()[1]) >= math.Abs(free.Weights()[1]) {
		t.Fatalf("ℓ2 regularization did not shrink weights: %v vs %v",
			reg.Weights()[1], free.Weights()[1])
	}
}

func TestNAGInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewNAG(0, 1, 0) },
		func() { NewNAG(5, 0, 0) },
		func() { NewNAG(5, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for invalid NAG config")
				}
			}()
			f()
		}()
	}
}

func TestModelLearnsRuntimePattern(t *testing.T) {
	// Jobs whose runtime is a fixed fraction of the request: the model
	// should beat the requested-time baseline by a wide margin.
	m := NewModel(DefaultConfig(SquaredLoss))
	src := rng.New(5)
	var modelAE, requestAE float64
	const n = 3000
	count := 0
	for i := 0; i < n; i++ {
		req := 600 + src.Float64()*35000
		actual := req * 0.2
		x := make([]float64, FeatureCount)
		x[FeatRequestedTime] = req
		x[FeatProcs] = 4
		pred := m.Observe(x, actual, 4)
		if i >= n/2 {
			modelAE += math.Abs(pred - actual)
			requestAE += math.Abs(req - actual)
			count++
		}
	}
	if modelAE >= requestAE/3 {
		t.Fatalf("model MAE %v not much better than requested-time MAE %v",
			modelAE/float64(count), requestAE/float64(count))
	}
}

func TestModelELossBiasesLow(t *testing.T) {
	// Under E-Loss (squared over-prediction penalty), the trained model
	// should under-predict more often than the symmetric model — the
	// behaviour in Figure 4.
	train := func(loss Loss) float64 {
		m := NewModel(DefaultConfig(loss))
		src := rng.New(9)
		under := 0
		const n = 4000
		for i := 0; i < n; i++ {
			req := 1000 + src.Float64()*20000
			actual := req * (0.2 + 0.4*src.Float64())
			x := make([]float64, FeatureCount)
			x[FeatRequestedTime] = req
			x[FeatProcs] = 1 + src.Float64()*63
			pred := m.Observe(x, actual, x[FeatProcs])
			if i >= n/2 && pred < actual {
				under++
			}
		}
		return float64(under) / float64(n/2)
	}
	e := train(ELoss)
	s := train(SquaredLoss)
	if e <= s {
		t.Fatalf("E-Loss under-prediction rate %v should exceed symmetric %v", e, s)
	}
}

func TestTrackerFirstJobDefaults(t *testing.T) {
	tr := NewTracker()
	j := &job.Job{ID: 1, User: 7, Procs: 4, Request: 3600}
	x := tr.Features(j, 0)
	if x[FeatRequestedTime] != 3600 || x[FeatProcs] != 4 {
		t.Fatal("basic features wrong")
	}
	if x[FeatLastRuntime] != 0 || x[FeatAve2] != 0 || x[FeatAveAll] != 0 {
		t.Fatal("history features should be 0 for a new user")
	}
	if x[FeatAveHistProcs] != 4 || x[FeatProcsRatio] != 1 {
		t.Fatalf("hist procs should default to own request: %v %v",
			x[FeatAveHistProcs], x[FeatProcsRatio])
	}
	if x[FeatBreakTime] != 0 {
		t.Fatal("break time should be 0 with no completions")
	}
}

func TestTrackerHistory(t *testing.T) {
	tr := NewTracker()
	user := int64(3)
	runs := []int64{100, 200, 300, 400}
	for i, r := range runs {
		j := &job.Job{ID: int64(i + 1), User: user, Procs: 2, Request: 1000, Runtime: r}
		tr.OnSubmit(j)
		tr.OnStart(j)
		tr.OnFinish(j, int64(1000*(i+1)))
	}
	next := &job.Job{ID: 99, User: user, Procs: 8, Request: 500}
	x := tr.Features(next, 5000)
	if x[FeatLastRuntime] != 400 || x[FeatLastRuntime2] != 300 || x[FeatLastRuntime3] != 200 {
		t.Fatalf("last runtimes wrong: %v %v %v", x[FeatLastRuntime], x[FeatLastRuntime2], x[FeatLastRuntime3])
	}
	if x[FeatAve2] != 350 {
		t.Fatalf("AVE2 = %v, want 350", x[FeatAve2])
	}
	if x[FeatAve3] != 300 {
		t.Fatalf("AVE3 = %v, want 300", x[FeatAve3])
	}
	if x[FeatAveAll] != 250 {
		t.Fatalf("AVEall = %v, want 250", x[FeatAveAll])
	}
	if x[FeatAveHistProcs] != 2 {
		t.Fatalf("AveHistProcs = %v, want 2", x[FeatAveHistProcs])
	}
	if x[FeatProcsRatio] != 4 {
		t.Fatalf("ProcsRatio = %v, want 4", x[FeatProcsRatio])
	}
	if x[FeatBreakTime] != 1000 {
		t.Fatalf("BreakTime = %v, want 1000", x[FeatBreakTime])
	}
}

func TestTrackerRunningJobs(t *testing.T) {
	tr := NewTracker()
	user := int64(1)
	j1 := &job.Job{ID: 1, User: user, Procs: 4, Start: 100, Started: true}
	j2 := &job.Job{ID: 2, User: user, Procs: 2, Start: 300, Started: true}
	tr.OnStart(j1)
	tr.OnStart(j2)
	x := tr.Features(&job.Job{ID: 3, User: user, Procs: 1, Request: 60}, 500)
	if x[FeatJobsRunning] != 2 {
		t.Fatalf("JobsRunning = %v", x[FeatJobsRunning])
	}
	if x[FeatOccupiedResources] != 6 {
		t.Fatalf("OccupiedResources = %v", x[FeatOccupiedResources])
	}
	if x[FeatLongestCurrent] != 400 {
		t.Fatalf("LongestCurrent = %v, want 400", x[FeatLongestCurrent])
	}
	if x[FeatSumCurrent] != 600 {
		t.Fatalf("SumCurrent = %v, want 600", x[FeatSumCurrent])
	}
	if x[FeatAveCurrProcs] != 3 {
		t.Fatalf("AveCurrProcs = %v, want 3", x[FeatAveCurrProcs])
	}
	tr.OnFinish(j1, 600)
	x = tr.Features(&job.Job{ID: 4, User: user, Procs: 1, Request: 60}, 700)
	if x[FeatJobsRunning] != 1 || x[FeatOccupiedResources] != 2 {
		t.Fatal("finish did not remove the job from the running set")
	}
}

func TestTrackerPeriodicFeatures(t *testing.T) {
	tr := NewTracker()
	j := &job.Job{ID: 1, User: 1, Procs: 1, Request: 60}
	x := tr.Features(j, 0)
	if math.Abs(x[FeatCosDay]-1) > 1e-9 || math.Abs(x[FeatSinDay]) > 1e-9 {
		t.Fatal("midnight should give cos=1 sin=0")
	}
	x = tr.Features(j, 6*3600) // quarter day
	if math.Abs(x[FeatCosDay]) > 1e-9 || math.Abs(x[FeatSinDay]-1) > 1e-9 {
		t.Fatalf("quarter-day angle wrong: cos=%v sin=%v", x[FeatCosDay], x[FeatSinDay])
	}
	// One full day later, the day features repeat.
	y := tr.Features(j, 6*3600+daySeconds)
	if math.Abs(x[FeatCosDay]-y[FeatCosDay]) > 1e-9 {
		t.Fatal("day feature not periodic")
	}
}

func TestTrackerUsersIndependent(t *testing.T) {
	tr := NewTracker()
	a := &job.Job{ID: 1, User: 1, Procs: 2, Request: 100, Runtime: 50}
	tr.OnSubmit(a)
	tr.OnStart(a)
	tr.OnFinish(a, 100)
	x := tr.Features(&job.Job{ID: 2, User: 2, Procs: 2, Request: 100}, 200)
	if x[FeatLastRuntime] != 0 || x[FeatBreakTime] != 0 {
		t.Fatal("user 2 sees user 1's history")
	}
}

func TestQuickLossEvalGradConsistent(t *testing.T) {
	f := func(predRaw, actualRaw uint16, qRaw uint8) bool {
		pred := float64(predRaw)
		actual := float64(actualRaw) + 1
		q := float64(qRaw) + 1
		for _, l := range []Loss{ELoss, SquaredLoss} {
			if l.Eval(pred, actual, q) < 0 {
				return false
			}
			g := l.Grad(pred, actual, q)
			if pred > actual && g <= 0 {
				return false
			}
			if pred < actual && g >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBasisExpand(b *testing.B) {
	basis := NewBasis(FeatureCount)
	x := make([]float64, FeatureCount)
	for i := range x {
		x[i] = float64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		basis.Expand(x)
	}
}

func BenchmarkModelObserve(b *testing.B) {
	m := NewModel(DefaultConfig(ELoss))
	x := make([]float64, FeatureCount)
	for i := range x {
		x[i] = float64(i * 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(x, 3600, 8)
	}
}
