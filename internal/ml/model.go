package ml

import "math"

// Config parameterizes the on-line regression model.
type Config struct {
	// Loss is the (asymmetric, weighted) training loss.
	Loss Loss
	// Eta is NAG's base learning rate.
	Eta float64
	// Lambda is the ℓ2 regularization strength of Equation (2).
	Lambda float64
	// Features is the raw feature count (defaults to FeatureCount).
	Features int
	// Degree is the polynomial basis degree: 2 (the paper's model,
	// default) or 1 (linear-only ablation).
	Degree int
	// GradClip bounds the loss derivative at GradClip times the running
	// mean |target|. Squared branches produce unbounded derivatives —
	// one badly over-predicted short job otherwise yanks the model far
	// below zero and the on-line learner never recovers the conditional
	// structure. 0 disables clipping; the default is 4.
	GradClip float64
}

// DefaultConfig returns the configuration used across the experiments:
// the given loss with the repository's tuned learning rate and
// regularization. The values were selected once on synthetic data and
// kept fixed for all workloads, mirroring the paper's single
// hyper-parameter setting across logs.
func DefaultConfig(loss Loss) Config {
	return Config{Loss: loss, Eta: 1.0, Lambda: 1e-6, Features: FeatureCount, GradClip: 4}
}

// Model is the paper's prediction function f(w, x) = wᵀΦ(x) (Equation 1)
// trained on-line by NAG on the cumulative weighted loss (Equation 2).
// It is not safe for concurrent use; each simulation owns one.
type Model struct {
	cfg   Config
	basis *Basis
	opt   *NAG
	ySum  float64 // running sum of |actual| for target-scale invariance
	yN    float64
}

// NewModel builds an untrained model.
func NewModel(cfg Config) *Model {
	if cfg.Features <= 0 {
		cfg.Features = FeatureCount
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 1.0
	}
	if cfg.Degree == 0 {
		cfg.Degree = 2
	}
	basis := NewBasisDegree(cfg.Features, cfg.Degree)
	return &Model{cfg: cfg, basis: basis, opt: NewNAG(basis.Dim(), cfg.Eta, cfg.Lambda)}
}

// Loss returns the model's training loss.
func (m *Model) Loss() Loss { return m.cfg.Loss }

// Predict evaluates f(w, x) on a raw feature vector. The result is an
// unbounded regression value; callers clamp it into [1, p̃j].
func (m *Model) Predict(x []float64) float64 {
	return m.opt.Predict(m.basis.Expand(x))
}

// Observe performs one on-line training step for a completed job with
// raw features x, actual running time actual (seconds) and resource
// request q (processors). It returns the model's prediction immediately
// before the update, which tests use to measure progressive validation
// accuracy.
func (m *Model) Observe(x []float64, actual, q float64) float64 {
	// Scale steps to the mean target magnitude rather than the max: HPC
	// running times span five orders of magnitude, and a max-based scale
	// lets one multi-day job dictate step sizes for everything after it.
	m.ySum += math.Abs(actual)
	m.yN++
	m.opt.SetTargetScale(m.ySum / m.yN)
	phi := m.basis.Expand(x)
	return m.opt.Step(phi, func(pred float64) float64 {
		g := m.cfg.Loss.Grad(pred, actual, q)
		if m.cfg.GradClip > 0 {
			clip := m.cfg.GradClip * m.ySum / m.yN
			if g > clip {
				g = clip
			} else if g < -clip {
				g = -clip
			}
		}
		return g
	})
}
