package ml

import "math"

// NAG is the Normalized Adaptive Gradient optimizer of Ross, Mineiro and
// Langford ("Normalized Online Learning", UAI 2013), the algorithm the
// paper trains its regression model with. NAG is a stochastic gradient
// method that is invariant to (adversarial) per-coordinate feature
// scaling: each coordinate keeps a running maximum-magnitude scale s_i,
// weights are rescaled when a larger magnitude arrives, steps are divided
// by s_i, and a global accumulator N keeps the effective learning rate
// comparable across problems. An AdaGrad-style per-coordinate
// accumulator adapts the step to the observed gradients. This matters
// here because several Table-2 features (e.g. Break Time) are unbounded
// and cannot be normalized in advance — exactly the motivation given in
// Section 4.2.
type NAG struct {
	eta      float64   // base learning rate
	etaScale float64   // target-scale multiplier (see SetTargetScale)
	lambda   float64   // ℓ2 regularization strength
	w        []float64 // model weights
	s        []float64 // per-coordinate max |x_i| seen
	g2       []float64 // per-coordinate squared-gradient accumulator
	n        float64   // Σ_t Σ_i x_i²/s_i² (the paper's N)
	t        float64   // examples seen
}

// NewNAG creates an optimizer over dim coordinates.
func NewNAG(dim int, eta, lambda float64) *NAG {
	if dim <= 0 {
		panic("ml: NAG with non-positive dimension")
	}
	if eta <= 0 {
		panic("ml: NAG with non-positive learning rate")
	}
	if lambda < 0 {
		panic("ml: NAG with negative regularization")
	}
	return &NAG{
		eta:      eta,
		etaScale: 1,
		lambda:   lambda,
		w:        make([]float64, dim),
		s:        make([]float64, dim),
		g2:       make([]float64, dim),
	}
}

// SetTargetScale declares the magnitude of the regression targets. NAG's
// per-coordinate normalization makes each step move the prediction by
// O(eta) regardless of feature scaling; when the targets live on a much
// larger scale (running times are 10⁴–10⁵ seconds), convergence needs the
// step itself rescaled. Callers keep this updated with a running max |y|,
// which makes the optimizer invariant to target scaling the same way the
// s_i normalization makes it invariant to feature scaling. Values <= 0
// are ignored.
func (o *NAG) SetTargetScale(scale float64) {
	if scale > 0 {
		o.etaScale = scale
	}
}

// Dim returns the coordinate count.
func (o *NAG) Dim() int { return len(o.w) }

// Weights exposes the current weight vector (not a copy; read-only use).
func (o *NAG) Weights() []float64 { return o.w }

// Predict returns the current linear prediction w·x.
func (o *NAG) Predict(x []float64) float64 {
	var dot float64
	for i, xi := range x {
		if xi != 0 {
			dot += o.w[i] * xi
		}
	}
	return dot
}

// Step performs one NAG update. grad receives the model's prediction at
// the current (scale-corrected) weights and must return the loss
// derivative dL/dŷ at that prediction. Step returns that prediction.
func (o *NAG) Step(x []float64, grad func(pred float64) float64) float64 {
	o.t++
	// Scale maintenance: shrink weights whose coordinate just revealed a
	// larger magnitude, so that w_i·x_i stays calibrated.
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		a := math.Abs(xi)
		if a > o.s[i] {
			if o.s[i] > 0 {
				r := o.s[i] / a
				o.w[i] *= r * r
			}
			o.s[i] = a
		}
		o.n += (xi / o.s[i]) * (xi / o.s[i])
	}
	pred := o.Predict(x)
	if o.n == 0 {
		return pred
	}
	dLdPred := grad(pred)
	scale := o.eta * o.etaScale * math.Sqrt(o.t/o.n)
	for i, xi := range x {
		if xi == 0 && o.w[i] == 0 {
			continue
		}
		gi := dLdPred*xi + o.lambda*o.w[i]
		if gi == 0 {
			continue
		}
		o.g2[i] += gi * gi
		si := o.s[i]
		if si == 0 {
			si = 1
		}
		o.w[i] -= scale * gi / (si * math.Sqrt(o.g2[i]))
	}
	return pred
}
