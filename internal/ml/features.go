// Package ml implements the paper's prediction method: on-line
// ℓ2-regularized degree-2 polynomial regression over SWF-derived
// features, trained with the Normalized Adaptive Gradient algorithm
// under asymmetric, per-job-weighted loss functions (Section 4 of the
// paper). The package is self-contained: feature extraction (Table 2),
// basis expansion, the loss family (Table 3 weights), and the NAG
// optimizer are all here; the predictor adapter lives in internal/predict.
package ml

import (
	"math"

	"repro/internal/job"
)

// FeatureCount is the number of raw features extracted per job (Table 2).
const FeatureCount = 20

// Feature indices, in the order of Table 2.
const (
	FeatRequestedTime     = iota // p̃j
	FeatLastRuntime              // p(k)j-1
	FeatLastRuntime2             // p(k)j-2
	FeatLastRuntime3             // p(k)j-3
	FeatAve2                     // AVE(k)2(p)
	FeatAve3                     // AVE(k)3(p)
	FeatAveAll                   // AVE(k)all(p)
	FeatProcs                    // qj
	FeatAveHistProcs             // AVE(k)hist(q)
	FeatProcsRatio               // qj / AVE(k)hist(q)
	FeatAveCurrProcs             // AVE(k)curr(q)
	FeatJobsRunning              // jobs of the user currently running
	FeatLongestCurrent           // longest running time so far
	FeatSumCurrent               // sum of running times so far
	FeatOccupiedResources        // resources currently held by the user
	FeatBreakTime                // time since the user's last completion
	FeatCosDay                   // cos of time-of-day
	FeatSinDay                   // sin of time-of-day
	FeatCosWeek                  // cos of time-of-week
	FeatSinWeek                  // sin of time-of-week
)

// FeatureNames gives a stable human-readable name per index.
var FeatureNames = [FeatureCount]string{
	"requested_time", "last_runtime_1", "last_runtime_2", "last_runtime_3",
	"ave2", "ave3", "ave_all", "procs", "ave_hist_procs", "procs_ratio",
	"ave_curr_procs", "jobs_running", "longest_current", "sum_current",
	"occupied_resources", "break_time", "cos_day", "sin_day", "cos_week", "sin_week",
}

const (
	daySeconds  = 24 * 3600
	weekSeconds = 7 * daySeconds
)

// userState is the on-line per-user history the extractor maintains.
type userState struct {
	lastRuntimes   [3]float64 // most recent first
	historyCount   int
	runtimeSum     float64
	procsSum       float64
	submittedCount int
	lastCompletion int64
	hasCompletion  bool
	running        map[int64]*job.Job // currently running jobs of the user
}

// Tracker extracts Table-2 feature vectors and maintains the per-user
// and system state they depend on. It must be fed the simulation's
// lifecycle events through OnSubmit/OnStart/OnFinish in event order.
type Tracker struct {
	users map[int64]*userState
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{users: make(map[int64]*userState)}
}

func (t *Tracker) user(id int64) *userState {
	u, ok := t.users[id]
	if !ok {
		u = &userState{running: make(map[int64]*job.Job)}
		t.users[id] = u
	}
	return u
}

// Features extracts the raw feature vector for a job at its release date.
// Call before OnSubmit for the same job (the job's own request must not
// pollute its historical averages).
func (t *Tracker) Features(j *job.Job, now int64) []float64 {
	u := t.user(j.User)
	x := make([]float64, FeatureCount)
	x[FeatRequestedTime] = float64(j.Request)
	x[FeatLastRuntime] = u.lastRuntimes[0]
	x[FeatLastRuntime2] = u.lastRuntimes[1]
	x[FeatLastRuntime3] = u.lastRuntimes[2]
	x[FeatAve2] = u.average(2)
	x[FeatAve3] = u.average(3)
	if u.historyCount > 0 {
		x[FeatAveAll] = u.runtimeSum / float64(u.historyCount)
	}
	x[FeatProcs] = float64(j.Procs)
	aveHist := float64(j.Procs)
	if u.submittedCount > 0 {
		aveHist = u.procsSum / float64(u.submittedCount)
	}
	x[FeatAveHistProcs] = aveHist
	if aveHist > 0 {
		x[FeatProcsRatio] = float64(j.Procs) / aveHist
	}
	if n := len(u.running); n > 0 {
		var procsSum, runSum, longest float64
		for _, rj := range u.running {
			procsSum += float64(rj.Procs)
			elapsed := float64(now - rj.Start)
			if elapsed < 0 {
				elapsed = 0
			}
			runSum += elapsed
			if elapsed > longest {
				longest = elapsed
			}
			x[FeatOccupiedResources] += float64(rj.Procs)
		}
		x[FeatAveCurrProcs] = procsSum / float64(n)
		x[FeatJobsRunning] = float64(n)
		x[FeatLongestCurrent] = longest
		x[FeatSumCurrent] = runSum
	}
	if u.hasCompletion {
		bt := float64(now - u.lastCompletion)
		if bt < 0 {
			bt = 0
		}
		x[FeatBreakTime] = bt
	}
	day := 2 * math.Pi * float64(now%daySeconds) / daySeconds
	week := 2 * math.Pi * float64(now%weekSeconds) / weekSeconds
	x[FeatCosDay] = math.Cos(day)
	x[FeatSinDay] = math.Sin(day)
	x[FeatCosWeek] = math.Cos(week)
	x[FeatSinWeek] = math.Sin(week)
	return x
}

// average returns the mean of the user's k most recent runtimes (as many
// as are available), or 0 with no history.
func (u *userState) average(k int) float64 {
	n := u.historyCount
	if n > k {
		n = k
	}
	if n > 3 {
		n = 3
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += u.lastRuntimes[i]
	}
	return sum / float64(n)
}

// OnSubmit records that the job was submitted (updates the historical
// resource-request averages).
func (t *Tracker) OnSubmit(j *job.Job) {
	u := t.user(j.User)
	u.procsSum += float64(j.Procs)
	u.submittedCount++
}

// OnStart records that the job started running.
func (t *Tracker) OnStart(j *job.Job) {
	t.user(j.User).running[j.ID] = j
}

// OnFinish records the job's completion and folds its actual running
// time into the user's history.
func (t *Tracker) OnFinish(j *job.Job, now int64) {
	u := t.user(j.User)
	delete(u.running, j.ID)
	u.lastRuntimes[2] = u.lastRuntimes[1]
	u.lastRuntimes[1] = u.lastRuntimes[0]
	u.lastRuntimes[0] = float64(j.Runtime)
	u.historyCount++
	u.runtimeSum += float64(j.Runtime)
	u.lastCompletion = now
	u.hasCompletion = true
}
