package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelState is the JSON representation of a trained model: the
// configuration (minus the loss functions, which are identified by name)
// and the optimizer state, so a model trained on one trace can be
// reloaded and applied to another — the cross-system deployment scenario
// the paper's Section 6.3.2 correlation analysis probes.
type modelState struct {
	LossName string    `json:"loss"`
	Eta      float64   `json:"eta"`
	Lambda   float64   `json:"lambda"`
	Features int       `json:"features"`
	Degree   int       `json:"degree"`
	GradClip float64   `json:"grad_clip"`
	YSum     float64   `json:"y_sum"`
	YN       float64   `json:"y_n"`
	W        []float64 `json:"w"`
	S        []float64 `json:"s"`
	G2       []float64 `json:"g2"`
	N        float64   `json:"n"`
	T        float64   `json:"t"`
}

// Save writes the model (configuration and trained state) as JSON.
func (m *Model) Save(w io.Writer) error {
	st := modelState{
		LossName: m.cfg.Loss.Name(),
		Eta:      m.cfg.Eta,
		Lambda:   m.cfg.Lambda,
		Features: m.cfg.Features,
		Degree:   m.cfg.Degree,
		GradClip: m.cfg.GradClip,
		YSum:     m.ySum,
		YN:       m.yN,
		W:        m.opt.w,
		S:        m.opt.s,
		G2:       m.opt.g2,
		N:        m.opt.n,
		T:        m.opt.t,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&st)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("ml: load: %w", err)
	}
	loss, err := LossByName(st.LossName)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Loss: loss, Eta: st.Eta, Lambda: st.Lambda,
		Features: st.Features, Degree: st.Degree, GradClip: st.GradClip,
	}
	m := NewModel(cfg)
	if len(st.W) != m.opt.Dim() || len(st.S) != m.opt.Dim() || len(st.G2) != m.opt.Dim() {
		return nil, fmt.Errorf("ml: load: state dimension %d does not match model dimension %d",
			len(st.W), m.opt.Dim())
	}
	copy(m.opt.w, st.W)
	copy(m.opt.s, st.S)
	copy(m.opt.g2, st.G2)
	m.opt.n = st.N
	m.opt.t = st.T
	m.ySum = st.YSum
	m.yN = st.YN
	if m.yN > 0 {
		m.opt.SetTargetScale(m.ySum / m.yN)
	}
	return m, nil
}

// LossByName resolves a loss identifier produced by Loss.Name.
func LossByName(name string) (Loss, error) {
	for _, l := range AllLosses() {
		if l.Name() == name {
			return l, nil
		}
	}
	return Loss{}, fmt.Errorf("ml: unknown loss %q", name)
}
