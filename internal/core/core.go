// Package core exposes the paper's primary contribution as a small API:
// the heuristic triple (prediction technique, correction mechanism,
// backfilling variant) and the named configurations the evaluation is
// built around — plain EASY, EASY++ (Tsafrir et al.), the clairvoyant
// bounds, and the cross-validated winner "EASY-SJBF + E-Loss learning +
// Incremental correction" of Section 6.3.3.
//
// A Triple is a value describing the configuration; Config() instantiates
// the stateful pieces (fresh predictor state per simulation) so one
// Triple can be replayed across workloads.
package core

import (
	"repro/internal/correct"
	"repro/internal/ml"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PredictorKind enumerates the prediction techniques of Section 6.2.
type PredictorKind int

const (
	// PredClairvoyant uses the actual running time pj.
	PredClairvoyant PredictorKind = iota
	// PredRequested uses the user requested time p̃j.
	PredRequested
	// PredAve2 uses the average of the user's two last running times.
	PredAve2
	// PredLearning uses the Section-4 regression model.
	PredLearning
)

// String names the predictor kind.
func (k PredictorKind) String() string {
	switch k {
	case PredClairvoyant:
		return "Clairvoyant"
	case PredRequested:
		return "RequestedTime"
	case PredAve2:
		return "AVE2"
	case PredLearning:
		return "ML"
	}
	return "unknown"
}

// Triple is one heuristic triple: who predicts, who corrects, who
// schedules.
type Triple struct {
	// Predictor selects the prediction technique.
	Predictor PredictorKind
	// Loss configures the learning predictor (ignored otherwise).
	Loss ml.Loss
	// Corrector is the correction mechanism.
	Corrector correct.Corrector
	// Backfill is the EASY scan order.
	Backfill sched.Order
	// NoBackfill selects plain FCFS instead of EASY (used for the
	// clairvoyant FCFS column of Table 6).
	NoBackfill bool
	// Conservative selects conservative backfilling instead of EASY
	// (the related-work baseline; Backfill is ignored).
	Conservative bool
}

// Name renders the triple compactly, e.g.
// "EASY-SJBF/ML[over=sq,under=lin,w=largearea]/Incremental".
func (t Triple) Name() string { return t.Config().Name() }

// NewPredictor instantiates fresh predictor state.
func (t Triple) NewPredictor() predict.Predictor {
	switch t.Predictor {
	case PredClairvoyant:
		return predict.NewClairvoyant()
	case PredRequested:
		return predict.NewRequestedTime()
	case PredAve2:
		return predict.NewUserAverage(2)
	default:
		return predict.NewLearning(t.Loss)
	}
}

// Policy instantiates fresh scheduling-policy state (policies are
// stateful scheduling sessions; one instance per simulation).
func (t Triple) Policy() sched.Policy {
	if t.NoBackfill {
		return sched.NewFCFS()
	}
	if t.Conservative {
		return sched.NewConservative()
	}
	return sched.NewEASY(t.Backfill)
}

// Config builds a simulation configuration with fresh state.
func (t Triple) Config() sim.Config {
	corr := t.Corrector
	if corr == nil {
		corr = correct.RequestedTime{}
	}
	return sim.Config{Policy: t.Policy(), Predictor: t.NewPredictor(), Corrector: corr}
}

// EASY is the standard EASY backfilling baseline: requested times, FCFS
// backfill order. (Requested-time predictions never expire, so the
// corrector is irrelevant.)
func EASY() Triple {
	return Triple{Predictor: PredRequested, Corrector: correct.RequestedTime{}, Backfill: sched.FCFSOrder}
}

// EASYPlusPlus is Tsafrir et al.'s EASY++: AVE2 predictions, Incremental
// correction, SJBF backfill order.
func EASYPlusPlus() Triple {
	return Triple{Predictor: PredAve2, Corrector: correct.Incremental{}, Backfill: sched.SJBFOrder}
}

// ClairvoyantEASY is EASY with perfect running-time knowledge (Table 1's
// EASY-Clairvoyant; Table 6's "Clairvoyant FCFS" column).
func ClairvoyantEASY() Triple {
	return Triple{Predictor: PredClairvoyant, Corrector: correct.RequestedTime{}, Backfill: sched.FCFSOrder}
}

// ClairvoyantSJBF is EASY-SJBF with perfect knowledge (Table 6's
// "Clairvoyant SJBF" column) — the strongest configuration observed.
func ClairvoyantSJBF() Triple {
	return Triple{Predictor: PredClairvoyant, Corrector: correct.RequestedTime{}, Backfill: sched.SJBFOrder}
}

// PaperBest is the cross-validated winner of Section 6.3.3: the E-Loss
// learning predictor, Incremental correction and EASY-SJBF.
func PaperBest() Triple {
	return Triple{Predictor: PredLearning, Loss: ml.ELoss, Corrector: correct.Incremental{}, Backfill: sched.SJBFOrder}
}

// ConservativeBF is conservative backfilling with requested times — the
// related-work baseline of Section 5, kept in the robustness campaign to
// see how per-job reservations fare under platform churn.
func ConservativeBF() Triple {
	return Triple{Predictor: PredRequested, Corrector: correct.RequestedTime{}, Conservative: true}
}

// CampaignTriples enumerates the full experiment campaign of Section 6.2
// for one log: every learning loss (20) × correction (3) × backfill
// order (2), plus AVE2 under every correction and order, plus the
// requested-time and clairvoyant references under both orders — 130
// simulations (the paper reports 128; the delta is the two extra
// clairvoyant reference runs kept for Table 6's bound columns).
func CampaignTriples() []Triple {
	var out []Triple
	orders := []sched.Order{sched.FCFSOrder, sched.SJBFOrder}
	for _, order := range orders {
		out = append(out,
			Triple{Predictor: PredRequested, Corrector: correct.RequestedTime{}, Backfill: order},
			Triple{Predictor: PredClairvoyant, Corrector: correct.RequestedTime{}, Backfill: order},
		)
		for _, corr := range correct.All() {
			out = append(out, Triple{Predictor: PredAve2, Corrector: corr, Backfill: order})
			for _, loss := range ml.AllLosses() {
				out = append(out, Triple{Predictor: PredLearning, Loss: loss, Corrector: corr, Backfill: order})
			}
		}
	}
	return out
}
