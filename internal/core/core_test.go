package core

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNamedTriples(t *testing.T) {
	cases := []struct {
		triple Triple
		want   string
	}{
		{EASY(), "EASY/RequestedTime/RequestedTime"},
		{EASYPlusPlus(), "EASY-SJBF/AVE2/Incremental"},
		{ClairvoyantEASY(), "EASY/Clairvoyant/RequestedTime"},
		{ClairvoyantSJBF(), "EASY-SJBF/Clairvoyant/RequestedTime"},
	}
	for _, c := range cases {
		if got := c.triple.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(PaperBest().Name(), "over=sq,under=lin,w=largearea") {
		t.Errorf("PaperBest loss wrong: %s", PaperBest().Name())
	}
	if !strings.Contains(PaperBest().Name(), "Incremental") {
		t.Errorf("PaperBest corrector wrong: %s", PaperBest().Name())
	}
}

func TestCampaignEnumeration(t *testing.T) {
	triples := CampaignTriples()
	// 2 orders × (requested + clairvoyant + 3 correctors × (AVE2 + 20 losses)) = 2×(2+63) = 130.
	if len(triples) != 130 {
		t.Fatalf("campaign has %d triples, want 130", len(triples))
	}
	seen := map[string]bool{}
	for _, tr := range triples {
		n := tr.Name()
		if seen[n] {
			t.Fatalf("duplicate triple %s", n)
		}
		seen[n] = true
	}
	// The paper's named configurations must all be inside the campaign.
	for _, named := range []Triple{EASY(), EASYPlusPlus(), PaperBest(), ClairvoyantEASY()} {
		if !seen[named.Name()] {
			t.Errorf("campaign missing %s", named.Name())
		}
	}
}

func TestTripleConfigFreshState(t *testing.T) {
	// Two configs from the same triple must not share predictor state.
	tr := EASYPlusPlus()
	a := tr.Config()
	b := tr.Config()
	if a.Predictor == b.Predictor {
		t.Fatal("Config() returned shared predictor state")
	}
}

func TestNoBackfillPolicy(t *testing.T) {
	tr := Triple{Predictor: PredClairvoyant, NoBackfill: true}
	if tr.Policy().Name() != "FCFS" {
		t.Fatalf("NoBackfill policy = %s", tr.Policy().Name())
	}
}

func TestPredictorKindString(t *testing.T) {
	for k, want := range map[PredictorKind]string{
		PredClairvoyant: "Clairvoyant", PredRequested: "RequestedTime",
		PredAve2: "AVE2", PredLearning: "ML",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestEndToEndOrderingOnSharedWorkload(t *testing.T) {
	// The paper's central claim in miniature: on a locality-heavy,
	// over-estimated workload, Clairvoyant <= PaperBest < EASY on AVEbsld.
	cfg, err := workload.Scaled("KTH-SP2", 2500)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr Triple) float64 {
		res, err := sim.Run(w, tr.Config())
		if err != nil {
			t.Fatal(err)
		}
		if errs := sim.ValidateResult(res); len(errs) != 0 {
			t.Fatalf("%s invalid: %v", tr.Name(), errs[0])
		}
		return metrics.AVEbsld(res)
	}
	easy := run(EASY())
	best := run(PaperBest())
	clair := run(ClairvoyantSJBF())
	t.Logf("EASY=%.1f PaperBest=%.1f ClairvoyantSJBF=%.1f", easy, best, clair)
	if best >= easy {
		t.Errorf("PaperBest (%.2f) should beat EASY (%.2f)", best, easy)
	}
	if clair >= easy {
		t.Errorf("Clairvoyant SJBF (%.2f) should beat EASY (%.2f)", clair, easy)
	}
}
