package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/correct"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The differential-testing layer of the streaming engine: RunStream must
// be decision- and metrics-identical to Run on the same job sequence —
// every preset, every policy, disrupted or not. The comparison is strict:
// the retirement sequence (job identity and realized schedule, in event
// order), every Result counter including the deterministic Perf
// counters, the capacity timeline, and the streaming metric collectors
// must all agree exactly.

// retirement is one observed job exit, the unit of schedule comparison.
type retirement struct {
	id          int64
	start       int64
	end         int64
	runtime     int64
	wait        int64
	prediction  int64
	submitPred  int64
	corrections int
	canceled    bool
}

// recordingSink captures the retirement sequence and forwards to a
// metrics collector, so one run yields both views.
type recordingSink struct {
	seq []retirement
	col *metrics.Collector
}

func newRecordingSink() *recordingSink {
	return &recordingSink{col: metrics.NewCollector()}
}

func (r *recordingSink) Observe(j *job.Job) {
	r.seq = append(r.seq, retirement{
		id: j.ID, start: j.Start, end: j.End, runtime: j.Runtime,
		wait: j.Wait(), prediction: j.Prediction, submitPred: j.SubmitPrediction,
		corrections: j.Corrections, canceled: j.Canceled,
	})
	r.col.Observe(j)
}

// diffConfigs is the policy-triple grid the differential tests sweep:
// every policy crossed with predictors that exercise distinct engine
// paths (requested times never expire; AVE2 underpredicts and drives the
// correction machinery; clairvoyant pins the lower bound) and both
// correction styles.
func diffConfigs() []core.Triple {
	policies := []core.Triple{
		{NoBackfill: true},          // FCFS
		{Backfill: sched.FCFSOrder}, // EASY
		{Backfill: sched.SJBFOrder}, // EASY-SJBF
		{Conservative: true},        // Conservative BF
	}
	predictors := []core.PredictorKind{core.PredRequested, core.PredAve2, core.PredClairvoyant}
	correctors := []correct.Corrector{correct.Incremental{}, correct.RecursiveDoubling{}}
	var out []core.Triple
	for _, p := range policies {
		for _, pr := range predictors {
			for _, c := range correctors {
				t := p
				t.Predictor = pr
				t.Corrector = c
				out = append(out, t)
			}
		}
	}
	return out
}

// runBoth simulates the workload with both engines under fresh triple
// state and returns the two results and sinks.
func runBoth(t *testing.T, w *trace.Workload, tr core.Triple, script *scenario.Script) (mem, str *sim.Result, memSink, strSink *recordingSink) {
	t.Helper()
	memSink = newRecordingSink()
	cfg := tr.Config()
	cfg.Script = script
	cfg.Sink = memSink
	mem, err := sim.Run(w, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", tr.Name(), err)
	}

	strSink = newRecordingSink()
	cfg = tr.Config()
	cfg.Script = script
	cfg.Sink = strSink
	str, err = sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), cfg)
	if err != nil {
		t.Fatalf("RunStream(%s): %v", tr.Name(), err)
	}
	return mem, str, memSink, strSink
}

// assertIdentical compares every observable the two engines share.
func assertIdentical(t *testing.T, label string, mem, str *sim.Result, memSink, strSink *recordingSink) {
	t.Helper()
	if len(memSink.seq) != len(strSink.seq) {
		t.Fatalf("%s: retirement counts differ: %d vs %d", label, len(memSink.seq), len(strSink.seq))
	}
	for i := range memSink.seq {
		if memSink.seq[i] != strSink.seq[i] {
			t.Fatalf("%s: retirement %d differs:\n mem: %+v\n str: %+v", label, i, memSink.seq[i], strSink.seq[i])
		}
	}
	if !str.Streamed || str.Jobs != nil {
		t.Fatalf("%s: streamed result retained jobs", label)
	}
	if mem.Makespan != str.Makespan || mem.Corrections != str.Corrections ||
		mem.Canceled != str.Canceled || mem.Finished != str.Finished {
		t.Fatalf("%s: counters differ: makespan %d/%d corrections %d/%d canceled %d/%d finished %d/%d",
			label, mem.Makespan, str.Makespan, mem.Corrections, str.Corrections,
			mem.Canceled, str.Canceled, mem.Finished, str.Finished)
	}
	if len(mem.CapacitySteps) != len(str.CapacitySteps) {
		t.Fatalf("%s: capacity timelines differ in length: %d vs %d", label, len(mem.CapacitySteps), len(str.CapacitySteps))
	}
	for i := range mem.CapacitySteps {
		if mem.CapacitySteps[i] != str.CapacitySteps[i] {
			t.Fatalf("%s: capacity step %d differs: %+v vs %+v", label, i, mem.CapacitySteps[i], str.CapacitySteps[i])
		}
	}
	// Perf.Events/PickCalls are deterministic for a given input; the two
	// drivers must do exactly the same work (WallNanos is wall-clock and
	// excluded).
	if mem.Perf.Events != str.Perf.Events || mem.Perf.PickCalls != str.Perf.PickCalls {
		t.Fatalf("%s: perf counters differ: events %d/%d picks %d/%d",
			label, mem.Perf.Events, str.Perf.Events, mem.Perf.PickCalls, str.Perf.PickCalls)
	}
	// Both sinks saw the same observation sequence, so the collectors
	// must agree bit-for-bit, float sums included.
	mc, sc := memSink.col, strSink.col
	if mc.AVEbsld() != sc.AVEbsld() || mc.MaxBsld() != sc.MaxBsld() ||
		mc.MeanWait() != sc.MeanWait() || mc.MAE() != sc.MAE() || mc.MeanELoss() != sc.MeanELoss() ||
		mc.Utilization(mem.Makespan, mem.MaxProcs) != sc.Utilization(str.Makespan, str.MaxProcs) {
		t.Fatalf("%s: streaming metric collectors diverged", label)
	}
}

// TestStreamIdenticalAcrossPresets sweeps every Table-4 preset (scaled)
// across the full policy-triple grid with no disruptions.
func TestStreamIdenticalAcrossPresets(t *testing.T) {
	triples := diffConfigs()
	for _, preset := range workload.PresetNames() {
		cfg, err := workload.Scaled(preset, 220)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range triples {
			label := fmt.Sprintf("%s/%s", preset, tr.Name())
			mem, str, ms, ss := runBoth(t, w, tr, nil)
			assertIdentical(t, label, mem, str, ms, ss)
		}
	}
}

// TestStreamIdenticalUnderDisruption replays randomized disruption
// scripts — drains, maintenance windows, cancellations at every
// intensity — through both engines, across seeds.
func TestStreamIdenticalUnderDisruption(t *testing.T) {
	cfg, err := workload.Scaled("SDSC-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	triples := []core.Triple{
		core.EASY(),
		core.EASYPlusPlus(),
		core.ClairvoyantSJBF(),
		core.ConservativeBF(),
	}
	src := rng.New(0xd1ff)
	for _, in := range scenario.Intensities {
		if in.Name == "none" {
			continue
		}
		for s := 0; s < 3; s++ {
			seed := src.Uint64()
			script := scenario.Generate(w, in, seed)
			for _, tr := range triples {
				label := fmt.Sprintf("%s/seed%x/%s", in.Name, seed, tr.Name())
				mem, str, ms, ss := runBoth(t, w, tr, script)
				assertIdentical(t, label, mem, str, ms, ss)
			}
		}
	}
}

// TestStreamIdenticalWithLearning runs the paper's learning triple (the
// heaviest predictor state) through both engines.
func TestStreamIdenticalWithLearning(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 400)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.PaperBest()
	mem, str, ms, ss := runBoth(t, w, tr, nil)
	assertIdentical(t, "paper-best", mem, str, ms, ss)
}

// TestStreamIdenticalOnGenSource streams the bounded-memory generator
// directly and compares against the preloading engine fed the collected
// form of the very same stream — generator determinism makes the two
// inputs identical by construction.
func TestStreamIdenticalOnGenSource(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 500)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Collect(gen)
	if err != nil {
		t.Fatal(err)
	}
	w := &trace.Workload{Name: cfg.Name, MaxProcs: cfg.MaxProcs, Jobs: jobs}

	tr := core.EASYPlusPlus()
	memSink := newRecordingSink()
	mcfg := tr.Config()
	mcfg.Sink = memSink
	mem, err := sim.Run(w, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	gen2, err := workload.NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	strSink := newRecordingSink()
	scfg := tr.Config()
	scfg.Sink = strSink
	str, err := sim.RunStream(cfg.Name, cfg.MaxProcs, gen2, scfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "gensource", mem, str, memSink, strSink)
}

// TestStreamUnknownCancelTargetIsBenign pins the one documented Run /
// RunStream asymmetry: a script cancellation naming a job the stream
// never delivers adds benign event pops but changes no decision,
// metric or counter other than Perf.
func TestStreamUnknownCancelTargetIsBenign(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 150)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	script := &scenario.Script{Name: "ghost", Events: []scenario.Event{
		{Time: 10, Action: scenario.Cancel, JobID: 1 << 40}, // no such job
		{Time: 500, Action: scenario.Cancel, JobID: w.Jobs[20].JobNumber},
	}}
	tr := core.EASYPlusPlus()
	mem, str, ms, ss := runBoth(t, w, tr, script)
	if mem.Perf.Events+1 != str.Perf.Events {
		t.Fatalf("expected exactly one extra streamed pop, got %d vs %d", str.Perf.Events, mem.Perf.Events)
	}
	// Everything except Perf must still match exactly.
	if len(ms.seq) != len(ss.seq) {
		t.Fatalf("retirement counts differ: %d vs %d", len(ms.seq), len(ss.seq))
	}
	for i := range ms.seq {
		if ms.seq[i] != ss.seq[i] {
			t.Fatalf("retirement %d differs: %+v vs %+v", i, ms.seq[i], ss.seq[i])
		}
	}
	if mem.Canceled != str.Canceled || mem.Makespan != str.Makespan || mem.Finished != str.Finished {
		t.Fatalf("counters differ: %+v vs %+v", mem, str)
	}
}

// TestStreamRejectsUnsortedSource pins the ordering contract.
func TestStreamRejectsUnsortedSource(t *testing.T) {
	jobs := []swf.Job{
		{JobNumber: 1, SubmitTime: 100, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
		{JobNumber: 2, SubmitTime: 50, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
	}
	cfg := core.EASY().Config()
	_, err := sim.RunStream("unsorted", 4, workload.NewSliceSource(jobs), cfg)
	if err == nil {
		t.Fatal("out-of-order stream must be rejected")
	}
}

// TestStreamRejectsWideJob pins the capacity check on the lazy path.
func TestStreamRejectsWideJob(t *testing.T) {
	jobs := []swf.Job{{JobNumber: 1, SubmitTime: 0, RunTime: 10, RequestedProcs: 8, RequestedTime: 20}}
	cfg := core.EASY().Config()
	_, err := sim.RunStream("wide", 4, workload.NewSliceSource(jobs), cfg)
	if err == nil {
		t.Fatal("over-wide job must be rejected")
	}
}
