package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/correct"
	"repro/internal/ml"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// wl builds a workload from shorthand job tuples.
func wl(maxProcs int64, jobs ...[5]int64) *trace.Workload {
	tr := &swf.Trace{Header: swf.Header{MaxProcs: maxProcs}}
	for _, j := range jobs {
		tr.Jobs = append(tr.Jobs, swf.Job{
			JobNumber: j[0], SubmitTime: j[1], RunTime: j[2],
			RequestedProcs: j[3], RequestedTime: j[4], UserID: 1, Status: 1,
		})
	}
	w, err := trace.FromSWF("test", tr, maxProcs)
	if err != nil {
		panic(err)
	}
	return w
}

func mustRun(t *testing.T, w *trace.Workload, cfg Config) *Result {
	t.Helper()
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if errs := ValidateResult(res); len(errs) != 0 {
		t.Fatalf("invalid schedule: %v", errs)
	}
	return res
}

func jobByID(res *Result, id int64) *jobState { return &jobState{res, id} }

type jobState struct {
	res *Result
	id  int64
}

func (s *jobState) start(t *testing.T) int64 {
	t.Helper()
	for _, j := range s.res.Jobs {
		if j.ID == s.id {
			return j.Start
		}
	}
	t.Fatalf("job %d not found", s.id)
	return -1
}

func TestSingleJobRunsImmediately(t *testing.T) {
	w := wl(10, [5]int64{1, 5, 100, 4, 200})
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	j := res.Jobs[0]
	if j.Start != 5 || j.End != 105 {
		t.Fatalf("start=%d end=%d, want 5,105", j.Start, j.End)
	}
	if res.Makespan != 105 {
		t.Fatalf("makespan = %d", res.Makespan)
	}
}

func TestFigure2Scenario(t *testing.T) {
	// Job 1 occupies 6/10 procs for 100s. Job 2 (8 procs) must wait for
	// it. Job 3 (4 procs, 50s) backfills because it ends before job 2's
	// shadow time.
	w := wl(10,
		[5]int64{1, 0, 100, 6, 100},
		[5]int64{2, 10, 100, 8, 100},
		[5]int64{3, 20, 50, 4, 50},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	if got := jobByID(res, 3).start(t); got != 20 {
		t.Errorf("job 3 should backfill at 20, started %d", got)
	}
	if got := jobByID(res, 2).start(t); got != 100 {
		t.Errorf("job 2 should start at 100, started %d", got)
	}
}

func TestFCFSBlocksBackfill(t *testing.T) {
	w := wl(10,
		[5]int64{1, 0, 100, 6, 100},
		[5]int64{2, 10, 100, 8, 100},
		[5]int64{3, 20, 50, 4, 50},
	)
	res := mustRun(t, w, Config{Policy: sched.NewFCFS(), Predictor: predict.NewRequestedTime()})
	if got := jobByID(res, 3).start(t); got != 200 {
		t.Errorf("under FCFS job 3 must wait for job 2: started %d, want 200", got)
	}
}

func TestClairvoyantTightensBackfill(t *testing.T) {
	// With requested times job 3 (requested 90, runs 90) cannot backfill:
	// the shadow is at t=100 (job 1 requested 100) and 20+90 > 100. With
	// clairvoyant predictions job 1 is known to end at t=50 < 20+90, so
	// the shadow moves earlier... job 3 still cannot end before it; but
	// job 2 starts at 50 instead of 100.
	w := wl(10,
		[5]int64{1, 0, 50, 6, 100},
		[5]int64{2, 10, 100, 8, 100},
		[5]int64{3, 20, 90, 4, 90},
	)
	reqRes := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	clairRes := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewClairvoyant()})
	if got := jobByID(clairRes, 2).start(t); got != 50 {
		t.Errorf("clairvoyant: job 2 should start at 50, got %d", got)
	}
	if got := jobByID(reqRes, 2).start(t); got != 50 {
		// Even with requested times, job 1 actually ends at 50 and EASY
		// reacts to the completion event.
		t.Errorf("requested: job 2 should start at 50 on completion, got %d", got)
	}
}

func TestUnderPredictionTriggersCorrection(t *testing.T) {
	// AVE2 predicts from history: user's previous jobs ran 10s, so the
	// third job (runtime 1000) is predicted 10s and must be corrected.
	w := wl(4,
		[5]int64{1, 0, 10, 1, 2000},
		[5]int64{2, 0, 10, 1, 2000},
		[5]int64{3, 100, 1000, 1, 2000},
	)
	res := mustRun(t, w, Config{
		Policy:    sched.NewEASY(sched.SJBFOrder),
		Predictor: predict.NewUserAverage(2),
		Corrector: correct.Incremental{},
	})
	if res.Corrections == 0 {
		t.Fatal("under-predicted job produced no corrections")
	}
	j := res.Jobs[2]
	if j.SubmitPrediction != 10 {
		t.Fatalf("submit prediction = %d, want 10", j.SubmitPrediction)
	}
	if j.Prediction <= j.SubmitPrediction {
		t.Fatal("final prediction not extended by corrections")
	}
	if j.Corrections < 2 {
		// 10 -> +1min (70) -> +5min (370) -> +15min (1270) covers 1000s.
		t.Fatalf("expected at least 2 corrections, got %d", j.Corrections)
	}
}

func TestRecursiveDoublingCorrections(t *testing.T) {
	w := wl(4,
		[5]int64{1, 0, 100, 1, 100000},
		[5]int64{2, 0, 100, 1, 100000},
		[5]int64{3, 500, 64000, 1, 100000},
	)
	res := mustRun(t, w, Config{
		Policy:    sched.NewEASY(sched.FCFSOrder),
		Predictor: predict.NewUserAverage(2),
		Corrector: correct.RecursiveDoubling{},
	})
	j := res.Jobs[2]
	// Prediction 100 doubles until it covers 64000: ~10 corrections.
	if j.Corrections < 8 || j.Corrections > 12 {
		t.Fatalf("recursive doubling corrections = %d, want ~10", j.Corrections)
	}
}

func TestRequestedTimeCorrectionJumpsToRequest(t *testing.T) {
	w := wl(4,
		[5]int64{1, 0, 100, 1, 100000},
		[5]int64{2, 0, 100, 1, 100000},
		[5]int64{3, 500, 64000, 1, 100000},
	)
	res := mustRun(t, w, Config{
		Policy:    sched.NewEASY(sched.FCFSOrder),
		Predictor: predict.NewUserAverage(2),
		Corrector: correct.RequestedTime{},
	})
	j := res.Jobs[2]
	if j.Corrections != 1 {
		t.Fatalf("requested-time correction should fire once, got %d", j.Corrections)
	}
	if j.Prediction != j.Request {
		t.Fatalf("prediction = %d, want request %d", j.Prediction, j.Request)
	}
}

func TestNoCorrectionsWithRequestedTimePredictor(t *testing.T) {
	// Runtime never exceeds the request, so predictions never expire.
	w := wl(4,
		[5]int64{1, 0, 50, 2, 100},
		[5]int64{2, 5, 80, 2, 100},
		[5]int64{3, 10, 100, 2, 100},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	if res.Corrections != 0 {
		t.Fatalf("requested-time predictions produced %d corrections", res.Corrections)
	}
}

func TestSJBFBeatsFCFSOrderForShortJob(t *testing.T) {
	// Both backfill candidates are queued while the machine is full; the
	// backfill window (4 procs) opens at t=30. FCFS order gives it to the
	// earlier long candidate; SJBF to the shorter one.
	w := wl(10,
		[5]int64{1, 0, 130, 6, 130}, // busy until 130
		[5]int64{2, 0, 30, 4, 30},   // busy until 30
		[5]int64{3, 5, 100, 8, 100}, // head: must wait for job 1 (shadow 130)
		[5]int64{4, 6, 80, 4, 80},   // long candidate: 30+80 <= 130
		[5]int64{5, 7, 10, 4, 10},   // short candidate
	)
	fcfs := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	sjbf := mustRun(t, w, Config{Policy: sched.NewEASY(sched.SJBFOrder), Predictor: predict.NewRequestedTime()})
	if got := jobByID(fcfs, 4).start(t); got != 30 {
		t.Errorf("FCFS order: long candidate should backfill at 30, started %d", got)
	}
	if got := jobByID(fcfs, 5).start(t); got != 110 {
		t.Errorf("FCFS order: short candidate should start at 110, started %d", got)
	}
	if got := jobByID(sjbf, 5).start(t); got != 30 {
		t.Errorf("SJBF order: short candidate should backfill at 30, started %d", got)
	}
	if got := jobByID(sjbf, 4).start(t); got != 40 {
		t.Errorf("SJBF order: long candidate should follow at 40, started %d", got)
	}
}

func TestConservativeEndToEnd(t *testing.T) {
	w := wl(10,
		[5]int64{1, 0, 100, 6, 100},
		[5]int64{2, 10, 100, 8, 100},
		[5]int64{3, 20, 50, 4, 50},
		[5]int64{4, 30, 300, 2, 300},
	)
	res := mustRun(t, w, Config{Policy: sched.NewConservative(), Predictor: predict.NewRequestedTime()})
	if got := jobByID(res, 3).start(t); got != 20 {
		t.Errorf("conservative should fill the hole at 20, got %d", got)
	}
}

func TestMLTripleEndToEnd(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 600)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, w, Config{
		Policy:    sched.NewEASY(sched.SJBFOrder),
		Predictor: predict.NewLearning(ml.ELoss),
		Corrector: correct.Incremental{},
	})
	if res.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	for _, j := range res.Jobs {
		if j.SubmitPrediction < 1 || j.SubmitPrediction > j.Request {
			t.Fatalf("job %d submit prediction %d outside [1, %d]", j.ID, j.SubmitPrediction, j.Request)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg, _ := workload.Scaled("CTC-SP2", 400)
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		return Config{
			Policy:    sched.NewEASY(sched.SJBFOrder),
			Predictor: predict.NewLearning(ml.ELoss),
			Corrector: correct.Incremental{},
		}
	}
	a := mustRun(t, w, mk())
	b := mustRun(t, w, mk())
	for i := range a.Jobs {
		if a.Jobs[i].Start != b.Jobs[i].Start {
			t.Fatalf("job %d start differs across identical runs: %d vs %d",
				a.Jobs[i].ID, a.Jobs[i].Start, b.Jobs[i].Start)
		}
	}
}

func TestRunRejectsMissingPieces(t *testing.T) {
	w := wl(10, [5]int64{1, 0, 10, 1, 20})
	if _, err := Run(w, Config{Policy: sched.NewEASY(sched.FCFSOrder)}); err == nil {
		t.Fatal("missing predictor accepted")
	}
	if _, err := Run(w, Config{Predictor: predict.NewRequestedTime()}); err == nil {
		t.Fatal("missing policy accepted")
	}
}

func TestRunRejectsTooWideJob(t *testing.T) {
	tr := &swf.Trace{Header: swf.Header{MaxProcs: 100}}
	tr.Jobs = append(tr.Jobs, swf.Job{JobNumber: 1, RunTime: 10, RequestedProcs: 4, RequestedTime: 20, UserID: 1})
	w, err := trace.FromSWF("x", tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	w.MaxProcs = 2 // sabotage after cleaning
	if _, err := Run(w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()}); err == nil {
		t.Fatal("too-wide job accepted")
	}
}

func TestQuickAllPoliciesProduceValidSchedules(t *testing.T) {
	policies := []sched.Policy{
		sched.NewFCFS(),
		sched.NewEASY(sched.FCFSOrder),
		sched.NewEASY(sched.SJBFOrder),
		sched.NewConservative(),
	}
	f := func(seed uint64) bool {
		cfg, _ := workload.Scaled("SDSC-SP2", 150)
		cfg.Seed = seed
		w, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		for _, p := range policies {
			res, err := Run(w, Config{
				Policy:    p,
				Predictor: predict.NewUserAverage(2),
				Corrector: correct.Incremental{},
			})
			if err != nil {
				return false
			}
			if len(ValidateResult(res)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
