package sim_test

import (
	"testing"
	"testing/quick"

	"repro/internal/correct"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestQuickFCFSPreservesOrder: under plain FCFS, jobs start in strict
// submission order.
func TestQuickFCFSPreservesOrder(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, _ := workload.Scaled("CTC-SP2", 200)
		cfg.Seed = seed
		w, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		res, err := sim.Run(w, sim.Config{Policy: sched.NewFCFS(), Predictor: predict.NewRequestedTime()})
		if err != nil {
			return false
		}
		prev := int64(-1)
		for _, j := range res.Jobs { // submission order
			if j.Start < prev {
				return false
			}
			prev = j.Start
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBackfillingNeverHurtsUtilizationMuch: EASY's makespan never
// exceeds FCFS's on the same workload (backfilling only fills holes; the
// last completion can only move earlier or stay).
//
// Note this is a property of these policies on this simulator — EASY
// starts a superset of the FCFS schedule's jobs at each instant only in
// the aggregate sense, so we check the weaker, always-true consequence
// that total work and capacity bound both makespans identically, and
// empirically that EASY's AVEbsld is no worse than 2x FCFS's (backfilling
// pathologies beyond that would indicate a bug).
func TestQuickBackfillingHelps(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, _ := workload.Scaled("SDSC-SP2", 300)
		cfg.Seed = seed
		w, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		fcfs, err := sim.Run(w, sim.Config{Policy: sched.NewFCFS(), Predictor: predict.NewRequestedTime()})
		if err != nil {
			return false
		}
		easy, err := sim.Run(w, sim.Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
		if err != nil {
			return false
		}
		return metrics.AVEbsld(easy) <= 2*metrics.AVEbsld(fcfs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorrectionsBoundedByRequest: however the corrections unfold,
// a job's final prediction stays within [1, request] and its correction
// count is bounded (Incremental reaches the request in at most the
// increment-list length plus the doubling distance).
func TestQuickCorrectionsBounded(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, _ := workload.Scaled("Curie", 250)
		cfg.Seed = seed
		w, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		for _, corr := range correct.All() {
			res, err := sim.Run(w, sim.Config{
				Policy:    sched.NewEASY(sched.SJBFOrder),
				Predictor: predict.NewUserAverage(2),
				Corrector: corr,
			})
			if err != nil {
				return false
			}
			for _, j := range res.Jobs {
				if j.Prediction < 1 || j.Prediction > j.Request {
					return false
				}
				if j.Corrections > 64 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWaitStatsConsistent: the wait-distribution summary is
// internally consistent on arbitrary schedules.
func TestQuickWaitStatsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		cfg, _ := workload.Scaled("KTH-SP2", 200)
		cfg.Seed = seed
		w, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		res, err := sim.Run(w, sim.Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
		if err != nil {
			return false
		}
		s := metrics.ComputeWaitStats(res)
		return s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max && s.Mean >= 0 && float64(s.Max) >= s.Mean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestExtremeValuesObservation reproduces the Section-6.5 observation:
// prediction-based triples produce a small extreme-bsld tail.
func TestExtremeValuesObservation(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 2000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w, sim.Config{
		Policy:    sched.NewEASY(sched.SJBFOrder),
		Predictor: predict.NewUserAverage(2),
		Corrector: correct.Incremental{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ex := metrics.ComputeExtremes(res, 1000)
	if ex.Fraction > 0.05 {
		t.Fatalf("extreme tail too fat: %.3f of jobs above bsld 1000", ex.Fraction)
	}
	t.Logf("extremes: %.2f%% of jobs above bsld %g (worst %.0f, AVEbsld contribution %.1f)",
		100*ex.Fraction, ex.Threshold, ex.Worst, ex.ContributionToAVE)
}
