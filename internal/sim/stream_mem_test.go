package sim_test

import (
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// peakSink samples the heap every sampleEvery retirements and tracks the
// worst HeapAlloc observed, wrapping the real collector.
type peakSink struct {
	inner       sim.JobSink
	sampleEvery int
	seen        int
	peak        uint64
}

func (p *peakSink) Observe(j *job.Job) {
	p.inner.Observe(j)
	p.seen++
	if p.seen%p.sampleEvery == 0 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > p.peak {
			p.peak = ms.HeapAlloc
		}
	}
}

// TestStreamMemorySmoke is the always-on scaled-down form of the guard:
// a 20k-job stream completes with every job finishing. (No heap
// assertion here — the shared test binary's allocations make small
// thresholds flaky; the long-mode test below pins the envelope.)
func TestStreamMemorySmoke(t *testing.T) {
	cfg, err := workload.Scaled("huge-synthetic", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	scfg := core.EASYPlusPlus().Config()
	scfg.Sink = col
	res, err := sim.RunStream(cfg.Name, cfg.MaxProcs, g, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != cfg.Jobs || col.Finished() != cfg.Jobs {
		t.Fatalf("finished %d/%d jobs, want %d", res.Finished, col.Finished(), cfg.Jobs)
	}
	if res.Jobs != nil {
		t.Fatal("streamed result retained jobs")
	}
	if col.AVEbsld() < 1 {
		t.Fatalf("AVEbsld %v below 1 — bounded slowdown cannot be", col.AVEbsld())
	}
}

// TestStreamHugeSyntheticBoundedMemory is the acceptance guard for the
// streaming path: the full 1M-job huge-synthetic preset must complete
// with peak heap bounded by the live-job window, far below what the
// preloading path would need (>400 MB of retained jobs and events before
// GC headroom). It takes several seconds, so it only runs when asked:
//
//	SIM_LONG=1 go test ./internal/sim -run TestStreamHugeSynthetic -v -timeout 30m
func TestStreamHugeSyntheticBoundedMemory(t *testing.T) {
	if os.Getenv("SIM_LONG") == "" {
		t.Skip("set SIM_LONG=1 to run the million-job bounded-memory guard")
	}
	cfg, err := workload.Preset("huge-synthetic")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &peakSink{inner: metrics.NewCollector(), sampleEvery: 20_000}
	scfg := core.EASYPlusPlus().Config()
	scfg.Sink = sink
	res, err := sim.RunStream(cfg.Name, cfg.MaxProcs, g, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != cfg.Jobs {
		t.Fatalf("finished %d jobs, want %d", res.Finished, cfg.Jobs)
	}
	// Measured ~28 MiB at introduction; the budget leaves generous
	// GC/platform headroom while staying far below the >400 MB the
	// preloading path retains for the same trace.
	const heapBudget = 256 << 20
	if sink.peak > heapBudget {
		t.Fatalf("peak heap %d MiB exceeds the %d MiB streaming budget", sink.peak>>20, heapBudget>>20)
	}
	t.Logf("1M jobs: peak heap %d MiB, %d events, %v wall",
		sink.peak>>20, res.Perf.Events, res.Perf.Wall())
}
