package sim

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// FederatedConfig describes a federated run: a platform of independent
// clusters, a routing policy in front of them, and a factory producing
// one fresh heuristic-triple session per cluster. Each cluster runs its
// own policy and predictor instance — scheduling state, backfilling
// reservations and learned per-user history never cross clusters; only
// the router sees the whole platform.
type FederatedConfig struct {
	// Clusters describes the platform. Normalized (named, validated)
	// internally; at least one cluster is required.
	Clusters []platform.Cluster
	// Router picks the destination cluster at submit time. Nil defaults
	// to round-robin.
	Router sched.Router
	// Session returns the heuristic triple for one cluster. It is called
	// once per cluster, so stateful policies and predictors get
	// independent sessions. The returned Config's Script and Sink must
	// be nil: disruptions and observation are per-run, not per-cluster
	// (use FederatedConfig.Script and Sink). The corrector of the first
	// session is used for the whole run.
	Session func() Config
	// Script optionally injects timed disruptions. Drains and restores
	// target the cluster named by their Cluster field (empty means the
	// first cluster); cancellations find their job wherever it is.
	Script *scenario.Script
	// Sink, when non-nil, observes every finished job exactly once, in
	// event order (see Config.Sink). Jobs carry their destination in
	// Job.Cluster, which is how metrics.Federated splits them.
	Sink JobSink
	// Tracer and Profile enable the flight recorder and the per-stage
	// latency histograms for the whole run (see Config.Tracer and
	// Config.Profile). Like Script and Sink, they are run-wide: the
	// per-cluster session Configs must leave them unset.
	Tracer  obs.Tracer
	Profile bool
	// Shards selects the parallel sharded driver for RunFederatedStream:
	// 0 (the default) runs the classic sequential event loop; N >= 1
	// spreads the clusters over min(N, len(Clusters)) worker goroutines,
	// each running its own event loop, with the router acting as the
	// sequencing boundary (see parallel.go). The parallel path produces
	// byte-identical Results and per-cluster observation sequences for
	// every shard count; Shards == 1 additionally reproduces the
	// sequential driver's global trace and sink order byte for byte.
	// With Shards >= 2 a non-nil Sink must implement ClusterSink, and
	// Profile is unsupported (stage timings of concurrent loops would
	// not be comparable). RunFederated ignores Shards.
	Shards int
}

// ClusterSink is the shard-safe flavor of JobSink a parallel federated
// run needs when more than one worker retires jobs concurrently:
// instead of one global observer, the sink hands out one independent
// observer per cluster, and each worker feeds only the observers of the
// clusters it owns. ClusterObserver's result must implement JobSink
// (checked at setup); it is called once per cluster before the run
// starts. metrics.Federated is the canonical implementation.
type ClusterSink interface {
	JobSink
	// ClusterObserver returns the observer for one cluster (platform
	// order index). The returned value must implement JobSink.
	ClusterObserver(cluster int) any
}

// setup validates the config and builds the N-cluster engine. maxTotal
// is the widest single cluster — the admission bound for any job.
func (fed FederatedConfig) setup() (e *engine, res *Result, maxTotal int64, err error) {
	clusters, err := platform.Normalize(fed.Clusters)
	if err != nil {
		return nil, nil, 0, err
	}
	if fed.Session == nil {
		return nil, nil, 0, fmt.Errorf("sim: federated run needs a Session factory")
	}
	router := fed.Router
	if router == nil {
		router = &sched.RoundRobin{}
	}
	res = &Result{
		MaxProcs: platform.ClustersTotal(clusters),
		Routing:  router.Name(),
		Clusters: make([]ClusterResult, len(clusters)),
	}
	e = &engine{
		router: router,
		views:  make([]sched.ClusterState, len(clusters)),
		sink:   fed.Sink,
		res:    res,
	}
	e.instrument(fed.Tracer, fed.Profile)
	for i, c := range clusters {
		cfg := fed.Session()
		corrector, err := checkConfig(cfg)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("sim: cluster %s session: %w", c.Name, err)
		}
		if cfg.Script != nil || cfg.Sink != nil || cfg.Tracer != nil || cfg.Profile {
			return nil, nil, 0, fmt.Errorf("sim: cluster %s session: Script, Sink, Tracer and Profile belong on FederatedConfig, not the per-cluster Config", c.Name)
		}
		if i == 0 {
			res.Triple = cfg.Name()
			e.corrector = corrector
		}
		res.Clusters[i] = ClusterResult{Name: c.Name, MaxProcs: c.Procs, Speed: c.SpeedFactor()}
		e.clusters = append(e.clusters, &clusterState{
			name:      c.Name,
			speed:     c.SpeedFactor(),
			machine:   platform.New(c.Procs),
			queue:     make([]*job.Job, 0, 64),
			policy:    cfg.Policy,
			predictor: cfg.Predictor,
			sub:       &res.Clusters[i],
		})
		if c.Procs > maxTotal {
			maxTotal = c.Procs
		}
	}
	return e, res, maxTotal, nil
}

// clusterIndex resolves a scenario event's cluster name against the
// engine's platform. Empty names mean the first cluster, so
// single-machine scripts replay unchanged on a federation's head.
func (e *engine) clusterIndex(name string) (int, error) {
	if name == "" {
		return 0, nil
	}
	for i, c := range e.clusters {
		if c.name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sim: scenario targets unknown cluster %q", name)
}

// pushScript seeds the event queue with the scenario's disruptions,
// resolving cluster names. Cancellations resolve through byID on
// preloading runs; a nil byID means a streaming run, where they are
// tracked by ID in the engine's target map instead.
func (e *engine) pushScript(script *scenario.Script, byID map[int64]*job.Job) error {
	if script.Empty() {
		return nil
	}
	e.res.Scenario = script.Name
	for _, ev := range script.Events {
		switch {
		case ev.Time < 0:
			return fmt.Errorf("sim: scenario event at negative instant %d", ev.Time)
		case ev.Action == scenario.Drain && ev.Procs > 0:
			ci, err := e.clusterIndex(ev.Cluster)
			if err != nil {
				return err
			}
			e.q.Push(ev.Time, eventq.Drain, payload{procs: ev.Procs, cluster: ci})
		case ev.Action == scenario.Restore && ev.Procs > 0:
			ci, err := e.clusterIndex(ev.Cluster)
			if err != nil {
				return err
			}
			e.q.Push(ev.Time, eventq.Restore, payload{procs: ev.Procs, cluster: ci})
		case ev.Action == scenario.Cancel:
			if byID == nil {
				if e.targets == nil {
					e.targets = make(map[int64]*cancelTarget)
				}
				if e.targets[ev.JobID] == nil {
					e.targets[ev.JobID] = &cancelTarget{}
				}
				e.q.Push(ev.Time, eventq.Cancel, payload{id: ev.JobID})
			} else if j := byID[ev.JobID]; j != nil {
				e.q.Push(ev.Time, eventq.Cancel, payload{j: j})
			}
			// Unknown IDs on the preloading path are ignored: scripts
			// derived from a raw log may name jobs the cleaning dropped.
		default:
			return fmt.Errorf("sim: scenario %s event with %d processors", ev.Action, ev.Procs)
		}
	}
	return nil
}

// finishFederated runs the shared post-loop bookkeeping: a
// single-cluster federation surfaces its sole capacity timeline at the
// Result level, exactly where a single-machine run records it.
func (e *engine) finishFederated(wallStart time.Time) {
	res := e.res
	if len(res.Clusters) == 1 && len(res.Clusters[0].CapacitySteps) > 0 {
		res.CapacitySteps = append([]CapacityStep(nil), res.Clusters[0].CapacitySteps...)
	}
	e.finishProfile()
	res.Perf.WallNanos = time.Since(wallStart).Nanoseconds()
}

// RunFederated simulates the workload over a federated platform,
// preloading every job and retaining the full realized schedule, the
// per-cluster counters and the per-cluster capacity timelines on the
// Result. A one-cluster federation with a unit speed factor reproduces
// Run byte for byte — the identity federated_diff_test.go enforces.
func RunFederated(w *trace.Workload, fed FederatedConfig) (*Result, error) {
	wallStart := time.Now()
	e, res, maxTotal, err := fed.setup()
	if err != nil {
		return nil, err
	}
	res.Workload = w.Name

	slab := make([]job.Job, len(w.Jobs))
	jobs := make([]*job.Job, len(w.Jobs))
	byID := make(map[int64]*job.Job, len(w.Jobs))
	res.Jobs = jobs
	e.q.Reserve(len(w.Jobs) + 64)
	for i := range w.Jobs {
		r := &w.Jobs[i]
		if r.Procs() > maxTotal {
			return nil, fmt.Errorf("sim: job %d wider (%d) than every cluster (widest %d)", r.JobNumber, r.Procs(), maxTotal)
		}
		j := &slab[i]
		job.FromSWFInto(j, r)
		jobs[i] = j
		byID[j.ID] = j
		e.q.Push(j.Submit, eventq.Submit, payload{j: j})
	}
	if err := e.pushScript(fed.Script, byID); err != nil {
		return nil, err
	}

	for {
		ev, ok := e.pop()
		if !ok {
			break
		}
		res.Perf.Events++
		e.handle(ev)
	}

	if n, first := e.queuedJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the scenario restore its drains?", n, first.ID)
	}
	for _, j := range jobs {
		if !j.Finished && !j.Canceled {
			return nil, fmt.Errorf("sim: job %d never finished", j.ID)
		}
	}
	e.finishFederated(wallStart)
	return res, nil
}

// RunFederatedStream is the bounded-memory federated driver: it pulls
// submissions lazily from src and retires finished jobs into fed.Sink,
// like RunStream, while routing each submission across the federation
// like RunFederated. Peak memory is O(live jobs + window) summed over
// the clusters. A one-cluster unit-speed federation reproduces
// RunStream byte for byte.
func RunFederatedStream(name string, src workload.Source, fed FederatedConfig) (*Result, error) {
	if fed.Shards != 0 {
		return runFederatedStreamSharded(name, src, fed)
	}
	wallStart := time.Now()
	e, res, maxTotal, err := fed.setup()
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("sim: stream %q: nil source", name)
	}
	res.Workload = name
	res.Streamed = true
	e.arena = new(job.Arena)
	if err := e.pushScript(fed.Script, nil); err != nil {
		return nil, err
	}

	lastSubmit := int64(-1 << 62)
	admit := func(rec swf.Job) error {
		if rec.Procs() > maxTotal {
			return fmt.Errorf("sim: job %d wider (%d) than every cluster (widest %d)", rec.JobNumber, rec.Procs(), maxTotal)
		}
		if rec.SubmitTime < lastSubmit {
			return fmt.Errorf("sim: stream %q not submit-ordered: job %d at %d after %d", name, rec.JobNumber, rec.SubmitTime, lastSubmit)
		}
		lastSubmit = rec.SubmitTime
		j := e.arena.New(&rec)
		if tgt := e.target(j.ID); tgt != nil {
			if tgt.bound {
				return fmt.Errorf("sim: stream %q: duplicate job id %d targeted by a cancellation", name, j.ID)
			}
			tgt.bound = true
			if tgt.canceled {
				j.Canceled = true
				res.Canceled++
			} else {
				tgt.j = j
			}
		}
		e.q.Push(j.Submit, eventq.Submit, payload{j: j})
		return nil
	}

	var pending swf.Job
	havePending, exhausted := false, false
	for {
		for !exhausted {
			if !havePending {
				rec, err := src.NextJob()
				if err == io.EOF {
					exhausted = true
					break
				}
				if err != nil {
					return nil, fmt.Errorf("sim: stream %q: %w", name, err)
				}
				pending, havePending = rec, true
			}
			if t, ok := e.q.PeekTime(); ok && pending.SubmitTime > t {
				break
			}
			if err := admit(pending); err != nil {
				return nil, err
			}
			havePending = false
		}

		ev, ok := e.pop()
		if !ok {
			break
		}
		res.Perf.Events++
		e.handle(ev)
	}

	if n, first := e.queuedJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the scenario restore its drains?", n, first.ID)
	}
	if n := e.runningJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs still running after the event queue drained", n)
	}
	e.finishFederated(wallStart)
	return res, nil
}
