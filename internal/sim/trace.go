package sim

import (
	"time"

	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/sched"
)

// This file is the engine's flight-recorder surface: every emission is
// behind a nil check at the call site, so an untraced, unprofiled run
// takes one predictable branch per decision and allocates nothing —
// the guarantee the zero-alloc Pick baselines in BENCH_baseline.json
// pin. Emissions construct the obs.Event locally and hand a pointer to
// the tracer, which must not retain it.

// instrument wires the optional tracer and stage profile into the
// engine. timed gates every clock read: an engine with neither tracer
// nor profile never calls time.Now inside the event loop.
func (e *engine) instrument(tracer obs.Tracer, profile bool) {
	e.tracer = tracer
	if profile {
		e.prof = obs.NewStageProfile()
	}
	e.timed = e.tracer != nil || e.prof != nil
}

// pop wraps the event-queue pop with optional stage timing.
func (e *engine) pop() (eventq.Event[payload], bool) {
	if e.prof == nil {
		return e.q.Pop()
	}
	t0 := time.Now()
	ev, ok := e.q.Pop()
	if ok {
		e.prof.Observe(obs.StagePop, time.Since(t0).Nanoseconds())
	}
	return ev, ok
}

// finishProfile folds the stage histograms into the run's Perf.
func (e *engine) finishProfile() {
	if e.prof != nil {
		e.res.Perf.Stages = e.prof.Summaries()
	}
}

// observeFinish times the predictor's profile update at job finish (the
// learning hot path) when profiling is on.
func (e *engine) observeFinish(c *clusterState, j *job.Job, now int64) {
	if e.prof == nil {
		c.predictor.OnFinish(j, now)
		return
	}
	t0 := time.Now()
	c.predictor.OnFinish(j, now)
	e.prof.Observe(obs.StageProfileUpdate, time.Since(t0).Nanoseconds())
}

// traceRoute stamps a routing decision with the same candidate set the
// router chose from (sched.Eligible over the snapshot the router saw).
// Both scratch buffers live on the engine, so traced routes allocate
// only when the platform outgrows them.
func (e *engine) traceRoute(c *clusterState, j *job.Job, now int64) {
	e.eligIdx = sched.Eligible(e.eligIdx, j, e.views)
	e.elig = e.elig[:0]
	for _, i := range e.eligIdx {
		e.elig = append(e.elig, e.clusters[i].name)
	}
	ev := obs.Event{
		T: now, Kind: obs.KindRoute, Job: j.ID, Procs: j.Procs,
		Router: e.router.Name(), Eligible: e.elig, Cluster: c.name,
	}
	e.tracer.Trace(&ev)
}

func (e *engine) traceSubmit(c *clusterState, j *job.Job, now int64) {
	ev := obs.Event{
		T: now, Kind: obs.KindSubmit, Job: j.ID, Cluster: c.name,
		Procs: j.Procs, Request: j.Request, Prediction: j.Prediction,
	}
	e.tracer.Trace(&ev)
}

func (e *engine) tracePick(c *clusterState, now int64, picked *job.Job, queueLen int, nanos int64) {
	ev := obs.Event{
		T: now, Kind: obs.KindPick, Policy: c.policy.Name(), Cluster: c.name,
		QueueLen: queueLen, Free: c.machine.Free(), Eventual: c.machine.EventualCapacity(),
		Nanos: nanos,
	}
	if picked != nil {
		ev.Picked = picked.ID
	}
	e.tracer.Trace(&ev)
}

func (e *engine) traceStart(c *clusterState, j *job.Job, now int64) {
	ev := obs.Event{
		T: now, Kind: obs.KindStart, Job: j.ID, Cluster: c.name,
		Procs: j.Procs, Wait: j.Wait(),
	}
	e.tracer.Trace(&ev)
}

func (e *engine) traceFinish(c *clusterState, j *job.Job, now int64) {
	wait := j.Wait()
	ev := obs.Event{
		T: now, Kind: obs.KindFinish, Job: j.ID, Cluster: c.name,
		Runtime: j.Runtime, Predicted: j.SubmitPrediction,
		PredErr: j.SubmitPrediction - j.Runtime,
		Wait:    wait, Bsld: obs.Bsld(wait, j.Runtime),
		Corrections: j.Corrections,
	}
	e.tracer.Trace(&ev)
}

func (e *engine) traceCancel(c *clusterState, j *job.Job, now int64) {
	ev := obs.Event{
		T: now, Kind: obs.KindCancel, Job: j.ID, Started: j.Started,
	}
	if c != nil {
		ev.Cluster = c.name
	}
	e.tracer.Trace(&ev)
}

// traceCapacity records a capacity change: procs is the drained or
// restored processor count for scenario events, 0 when a job release
// was absorbed by a pending drain.
func (e *engine) traceCapacity(c *clusterState, now, procs int64) {
	ev := obs.Event{
		T: now, Kind: obs.KindCapacity, Cluster: c.name, Procs: procs,
		Capacity: c.machine.Capacity(), Eventual: c.machine.EventualCapacity(),
	}
	e.tracer.Trace(&ev)
}

func (e *engine) traceCorrect(c *clusterState, j *job.Job, now int64) {
	ev := obs.Event{
		T: now, Kind: obs.KindCorrect, Job: j.ID, Cluster: c.name,
		Prediction: j.Prediction, Corrections: j.Corrections,
	}
	e.tracer.Trace(&ev)
}
