package sim_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The flight recorder's differential layer: a traced, profiled run must
// be pure observation. Every preset, policy triple and disruption
// intensity is replayed twice — once bare, once with a Tracer and stage
// profiling — and the two runs must agree on every deterministic
// observable: the retirement sequence, all Result counters, per-cluster
// counters, and the capacity timelines. On top of identity, the emitted
// event stream itself is checked against the schema and the run's own
// counters (one pick event per Pick call, one finish per retirement).

// assertUnperturbed compares a bare and a traced run of the same driver
// on every deterministic observable. Perf.Stages and WallNanos are the
// only allowed differences.
func assertUnperturbed(t *testing.T, label string, bare, traced *sim.Result, bareSink, tracedSink *recordingSink) {
	t.Helper()
	if len(bareSink.seq) != len(tracedSink.seq) {
		t.Fatalf("%s: retirement counts differ: %d vs %d", label, len(bareSink.seq), len(tracedSink.seq))
	}
	for i := range bareSink.seq {
		if bareSink.seq[i] != tracedSink.seq[i] {
			t.Fatalf("%s: retirement %d differs:\n bare:   %+v\n traced: %+v", label, i, bareSink.seq[i], tracedSink.seq[i])
		}
	}
	if bare.Makespan != traced.Makespan || bare.Corrections != traced.Corrections ||
		bare.Canceled != traced.Canceled || bare.Finished != traced.Finished {
		t.Fatalf("%s: counters differ: makespan %d/%d corrections %d/%d canceled %d/%d finished %d/%d",
			label, bare.Makespan, traced.Makespan, bare.Corrections, traced.Corrections,
			bare.Canceled, traced.Canceled, bare.Finished, traced.Finished)
	}
	if bare.Perf.Events != traced.Perf.Events || bare.Perf.PickCalls != traced.Perf.PickCalls {
		t.Fatalf("%s: perf counters differ: events %d/%d picks %d/%d",
			label, bare.Perf.Events, traced.Perf.Events, bare.Perf.PickCalls, traced.Perf.PickCalls)
	}
	if len(bare.CapacitySteps) != len(traced.CapacitySteps) {
		t.Fatalf("%s: capacity timelines differ in length: %d vs %d", label, len(bare.CapacitySteps), len(traced.CapacitySteps))
	}
	for i := range bare.CapacitySteps {
		if bare.CapacitySteps[i] != traced.CapacitySteps[i] {
			t.Fatalf("%s: capacity step %d differs: %+v vs %+v", label, i, bare.CapacitySteps[i], traced.CapacitySteps[i])
		}
	}
	if len(bare.Clusters) != len(traced.Clusters) {
		t.Fatalf("%s: cluster counts differ: %d vs %d", label, len(bare.Clusters), len(traced.Clusters))
	}
	for i := range bare.Clusters {
		b, tr := bare.Clusters[i], traced.Clusters[i]
		if b.Routed != tr.Routed || b.Finished != tr.Finished || b.Canceled != tr.Canceled ||
			b.Corrections != tr.Corrections || b.Makespan != tr.Makespan ||
			b.Events != tr.Events || b.PickCalls != tr.PickCalls {
			t.Fatalf("%s: cluster %s counters differ:\n bare:   %+v\n traced: %+v", label, b.Name, b, tr)
		}
		if len(b.CapacitySteps) != len(tr.CapacitySteps) {
			t.Fatalf("%s: cluster %s capacity timelines differ in length", label, b.Name)
		}
		for k := range b.CapacitySteps {
			if b.CapacitySteps[k] != tr.CapacitySteps[k] {
				t.Fatalf("%s: cluster %s capacity step %d differs", label, b.Name, k)
			}
		}
	}
	mc, sc := bareSink.col, tracedSink.col
	if mc.AVEbsld() != sc.AVEbsld() || mc.MaxBsld() != sc.MaxBsld() ||
		mc.MeanWait() != sc.MeanWait() || mc.MAE() != sc.MAE() || mc.MeanELoss() != sc.MeanELoss() {
		t.Fatalf("%s: metric collectors diverged under tracing", label)
	}
	if bare.Perf.Stages != nil {
		t.Fatalf("%s: unprofiled run grew stage histograms", label)
	}
}

// checkTraceInvariants validates every emitted event against the schema
// and ties the stream to the run's own counters.
func checkTraceInvariants(t *testing.T, label string, events []obs.Event, res *sim.Result) {
	t.Helper()
	var picks, finishes, submits, routes int64
	for i := range events {
		ev := &events[i]
		if err := obs.ValidateEvent(ev); err != nil {
			t.Fatalf("%s: event %d invalid: %v (%+v)", label, i, err, *ev)
		}
		switch ev.Kind {
		case obs.KindPick:
			picks++
		case obs.KindFinish:
			finishes++
		case obs.KindSubmit:
			submits++
		case obs.KindRoute:
			routes++
		}
	}
	if picks != res.Perf.PickCalls {
		t.Fatalf("%s: %d pick events for %d Pick calls", label, picks, res.Perf.PickCalls)
	}
	if finishes != int64(res.Finished) {
		t.Fatalf("%s: %d finish events for %d finished jobs", label, finishes, res.Finished)
	}
	if res.Routing != "" && routes != submits {
		t.Fatalf("%s: %d route events for %d submissions", label, routes, submits)
	}
	// Stage histograms must account for exactly the loop's work.
	var stages = map[string]int64{}
	for _, sp := range res.Perf.Stages {
		stages[sp.Stage] = sp.Count
	}
	if stages["eventq-pop"] != res.Perf.Events {
		t.Fatalf("%s: pop histogram holds %d samples for %d events", label, stages["eventq-pop"], res.Perf.Events)
	}
	if stages["pick"] != res.Perf.PickCalls {
		t.Fatalf("%s: pick histogram holds %d samples for %d Pick calls", label, stages["pick"], res.Perf.PickCalls)
	}
	if stages["profile-update"] != int64(res.Finished) {
		t.Fatalf("%s: profile-update histogram holds %d samples for %d finishes", label, stages["profile-update"], res.Finished)
	}
}

// runTracedPair runs one preloading config bare and traced+profiled.
func runTracedPair(t *testing.T, w *trace.Workload, tr core.Triple, script *scenario.Script) (bare, traced *sim.Result, bareSink, tracedSink *recordingSink, events []obs.Event) {
	t.Helper()
	bareSink = newRecordingSink()
	cfg := tr.Config()
	cfg.Script = script
	cfg.Sink = bareSink
	bare, err := sim.Run(w, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", tr.Name(), err)
	}

	col := &obs.Collector{}
	tracedSink = newRecordingSink()
	cfg = tr.Config()
	cfg.Script = script
	cfg.Sink = tracedSink
	cfg.Tracer = col
	cfg.Profile = true
	traced, err = sim.Run(w, cfg)
	if err != nil {
		t.Fatalf("traced Run(%s): %v", tr.Name(), err)
	}
	return bare, traced, bareSink, tracedSink, col.Events()
}

// TestTracedIdenticalAcrossPresets sweeps every preset across the full
// differential triple grid: tracing and profiling must not move a
// single decision, and the event stream must satisfy its invariants.
func TestTracedIdenticalAcrossPresets(t *testing.T) {
	triples := diffConfigs()
	for _, preset := range workload.PresetNames() {
		cfg, err := workload.Scaled(preset, 220)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range triples {
			label := fmt.Sprintf("%s/%s", preset, tr.Name())
			bare, traced, bs, ts, events := runTracedPair(t, w, tr, nil)
			assertUnperturbed(t, label, bare, traced, bs, ts)
			checkTraceInvariants(t, label, events, traced)
		}
	}
}

// TestTracedIdenticalUnderDisruption replays generated disruption
// scripts at every intensity through bare and traced runs, on both the
// preloading and the streaming driver.
func TestTracedIdenticalUnderDisruption(t *testing.T) {
	cfg, err := workload.Scaled("SDSC-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	triples := []core.Triple{core.EASYPlusPlus(), core.ConservativeBF()}
	src := rng.New(0x0b5)
	for _, in := range scenario.Intensities {
		seed := src.Uint64()
		script := scenario.Generate(w, in, seed)
		for _, tr := range triples {
			label := fmt.Sprintf("%s/%s", in.Name, tr.Name())
			bare, traced, bs, ts, events := runTracedPair(t, w, tr, script)
			assertUnperturbed(t, label, bare, traced, bs, ts)
			checkTraceInvariants(t, label, events, traced)

			// Streaming driver: same comparison, fresh sessions.
			sBare := newRecordingSink()
			c := tr.Config()
			c.Script = script
			c.Sink = sBare
			strBare, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), c)
			if err != nil {
				t.Fatalf("RunStream(%s): %v", label, err)
			}
			col := &obs.Collector{}
			sTraced := newRecordingSink()
			c = tr.Config()
			c.Script = script
			c.Sink = sTraced
			c.Tracer = col
			c.Profile = true
			strTraced, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), c)
			if err != nil {
				t.Fatalf("traced RunStream(%s): %v", label, err)
			}
			assertUnperturbed(t, label+"/stream", strBare, strTraced, sBare, sTraced)
			checkTraceInvariants(t, label+"/stream", col.Events(), strTraced)
		}
	}
}

// TestTracedFederatedIdentical drives both federated drivers bare and
// traced over a heterogeneous platform, checking the per-cluster
// counters stay identical and route events carry coherent candidate
// sets.
func TestTracedFederatedIdentical(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 260)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := []platform.Cluster{
		{Name: "big", Procs: w.MaxProcs},
		{Name: "slow", Procs: w.MaxProcs / 2, Speed: 0.5},
	}
	script := &scenario.Script{Name: "drain-big", Events: []scenario.Event{
		{Time: 2000, Action: scenario.Drain, Procs: w.MaxProcs / 4, Cluster: "big"},
		{Time: 9000, Action: scenario.Restore, Procs: w.MaxProcs / 4, Cluster: "big"},
	}}
	for _, routing := range []string{"round-robin", "least-loaded"} {
		for _, stream := range []bool{false, true} {
			label := fmt.Sprintf("%s/stream=%v", routing, stream)
			tr := core.EASYPlusPlus()

			run := func(tracer obs.Tracer, profile bool, sink *recordingSink) *sim.Result {
				router, err := sched.NewRouter(routing)
				if err != nil {
					t.Fatal(err)
				}
				fc := sim.FederatedConfig{
					Clusters: clusters,
					Router:   router,
					Session:  tr.Config,
					Script:   script,
					Sink:     sink,
					Tracer:   tracer,
					Profile:  profile,
				}
				var res *sim.Result
				if stream {
					res, err = sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fc)
				} else {
					res, err = sim.RunFederated(w, fc)
				}
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return res
			}

			bareSink := newRecordingSink()
			bare := run(nil, false, bareSink)
			col := &obs.Collector{}
			tracedSink := newRecordingSink()
			traced := run(col, true, tracedSink)

			assertUnperturbed(t, label, bare, traced, bareSink, tracedSink)
			checkTraceInvariants(t, label, col.Events(), traced)

			names := map[string]bool{"big": true, "slow": true}
			for _, ev := range col.Events() {
				if ev.Kind != obs.KindRoute {
					continue
				}
				if !names[ev.Cluster] {
					t.Fatalf("%s: route event names unknown cluster %q", label, ev.Cluster)
				}
				if len(ev.Eligible) == 0 {
					t.Fatalf("%s: route event for job %d has no candidate set", label, ev.Job)
				}
				for _, c := range ev.Eligible {
					if !names[c] {
						t.Fatalf("%s: candidate set names unknown cluster %q", label, c)
					}
				}
			}
		}
	}
}

// TestTraceJSONLEndToEnd traces a run through the real file tracer and
// reads the trace back strictly: every line decodes, validates, carries
// its Tagged context, and the per-kind totals match the run.
func TestTraceJSONLEndToEnd(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 200)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	jl, err := obs.OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}

	tr := core.PaperBest()
	sink := newRecordingSink()
	c := tr.Config()
	c.Sink = sink
	c.Tracer = obs.Tagged{Tracer: jl, Workload: w.Name, Triple: tr.Name()}
	c.Profile = true
	res, err := sim.Run(w, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatalf("close trace: %v", err)
	}

	var picks, finishes int64
	err = obs.ReadFile(path, func(line int, ev obs.Event) error {
		if verr := obs.ValidateEvent(&ev); verr != nil {
			return fmt.Errorf("line %d: %w", line, verr)
		}
		if ev.Workload != w.Name || ev.Triple != tr.Name() {
			return fmt.Errorf("line %d: lost its tag: %+v", line, ev)
		}
		switch ev.Kind {
		case obs.KindPick:
			picks++
		case obs.KindFinish:
			finishes++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if picks != res.Perf.PickCalls || finishes != int64(res.Finished) {
		t.Fatalf("trace file totals: %d picks / %d finishes, run had %d / %d",
			picks, finishes, res.Perf.PickCalls, res.Finished)
	}
}
