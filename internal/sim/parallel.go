package sim

// This file is the parallel sharded federated streaming driver: the
// Shards >= 1 path of RunFederatedStream. The design is conservative
// parallel discrete-event simulation with the router as the single
// sequencing boundary:
//
//   - Each worker goroutine ("shard") owns a disjoint subset of the
//     clusters (cluster i belongs to shard i mod W) and runs its own
//     event loop over a shard-local queue. Local queues only ever hold
//     cluster-local kinds — Finish and Expiry — which never cross
//     clusters.
//   - The router goroutine owns the global kinds — Submit, Cancel,
//     Drain, Restore — in its own queue, pops them in exactly the
//     deterministic (time, kind, sequence) order the sequential driver
//     uses, and turns each into a command on the owning shard's FIFO
//     channel. A command carries its global cutoff key: the shard first
//     advances its local queue past every event ordered before the
//     cutoff, then applies the command. Shards never advance
//     spontaneously, so between commands a shard is quiescent and (after
//     an ack) its state may be read race-free by the router.
//   - Before every routing decision the router barriers: shards whose
//     local horizon might precede the submission's cutoff process their
//     backlog — concurrently with each other — and ack. The router then
//     snapshots all cluster views and routes exactly as the sequential
//     engine would. The ack also reports the shard's next local event
//     key, so an idle shard with nothing before the next cutoff is not
//     synced again (the sync-skip that keeps router round trips off the
//     common path).
//
// Determinism: on traced runs every shard records, per event it
// handles, the trace events it emitted and the keys of the local events
// its handling pushed. After the run the merge replays the sequential
// driver's global queue over those records (replayMergedTrace): the
// router's pops seed the virtual queue in their deterministic order,
// children enter it exactly when their parent pops, and the queue's own
// push-sequence tie-break reproduces the sequential same-instant order.
// The merged stream is therefore byte-identical to the sequential
// trace — not merely a permutation of it — for every shard count.
// Result counters are summed (or maxed) over shards and are likewise
// byte-identical to the sequential driver — the properties
// parallel_diff_test.go enforces.

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/swf"
	"repro/internal/workload"
)

// shardCmdKind enumerates the commands a router sends to a shard.
type shardCmdKind uint8

const (
	// shardSync advances the shard to the cutoff and acks its horizon.
	shardSync shardCmdKind = iota
	// shardSubmit delivers a routed submission (record + destination).
	shardSubmit
	// shardCancel delivers a cancellation of a job routed to this shard.
	shardCancel
	// shardDrain and shardRestore deliver capacity disruptions.
	shardDrain
	shardRestore
	// shardPass runs a scheduling pass with no state change — the
	// sequential engine's behavior for cancellations of jobs that were
	// never routed (the pass runs on cluster 0).
	shardPass
	// shardFinish drains the local queue to empty, acks, and exits.
	shardFinish
)

// shardCmd is one router->shard message. time/cut form the global
// ordering key the shard advances to before applying the command.
type shardCmd struct {
	kind    shardCmdKind
	time    int64
	cut     eventq.Kind
	rec     swf.Job // shardSubmit: the job record, copied by value
	cluster int     // destination cluster (submit/drain/restore/pass)
	procs   int64   // drain/restore width
	id      int64   // shardCancel: target job ID
	tracked bool    // shardSubmit: register cancel bookkeeping
	// trace, when non-nil, is an event the router computed at its
	// sequencing point (a routing decision, or a cancellation of an
	// unrouted job) but that must appear in trace order at the shard's
	// position; the shard emits it before applying the command.
	trace *obs.Event
}

// shardAck reports a quiescent shard's next local event key to the
// router (empty when the local queue is drained). Receiving it is the
// happens-before edge that lets the router read the shard's clusters.
type shardAck struct {
	t     int64
	k     eventq.Kind
	empty bool
}

// childKey is the ordering key of a local event pushed while handling
// a step — the replay's record of push parentage.
type childKey struct {
	t int64
	k eventq.Kind
}

// replayStep records everything the trace replay needs about one event
// a shard handled: the popped event's ordering key (checked against the
// replay for divergence), the trace events emitted while handling it,
// and the keys of the local events its handling pushed, in push order.
type replayStep struct {
	t        int64
	k        eventq.Kind
	events   []obs.Event
	children []childKey
}

// rootRec is one router-queue pop, in pop order — the seed of the trace
// replay. shard is the dispatch target, -1 when the pop had no
// observable effect (a canceled submission, a stale cancel) and
// therefore no shard-side step.
type rootRec struct {
	t     int64
	k     eventq.Kind
	shard int
}

// stepTracer appends emitted trace events to the shard's current step.
// Eligible slices are deep-copied because the emitting engine reuses
// its scratch buffer.
type stepTracer struct{ sh *shard }

func (t stepTracer) Trace(ev *obs.Event) {
	cp := *ev
	if len(cp.Eligible) > 0 {
		cp.Eligible = append([]string(nil), cp.Eligible...)
	}
	st := &t.sh.steps[len(t.sh.steps)-1]
	st.events = append(st.events, cp)
}

// clusterSinks dispatches retirements to per-cluster observers — the
// shard-side face of a ClusterSink.
type clusterSinks []JobSink

func (s clusterSinks) Observe(j *job.Job) {
	if o := s[j.Cluster]; o != nil {
		o.Observe(j)
	}
}

// shard is one worker: a private engine (own event queue, arena, cancel
// bookkeeping and result scratch) over the shared cluster slice, driven
// by the router's command FIFO. The engine's cluster slice is the
// run-global one, but a shard only ever touches the clusters it owns.
type shard struct {
	eng     engine
	cmds    chan shardCmd
	acks    chan shardAck
	tracing bool         // buffer replay steps (traced runs only)
	steps   []replayStep // one per handled event, in processing order
}

// begin opens a replay step for the event about to be handled. No-op on
// untraced runs.
func (s *shard) begin(t int64, k eventq.Kind) {
	if s.tracing {
		s.steps = append(s.steps, replayStep{t: t, k: k})
	}
}

// advance pops and handles every local event strictly ordered before
// the cutoff key.
func (s *shard) advance(cutT int64, cutK eventq.Kind) {
	e := &s.eng
	for {
		t, k, ok := e.q.Peek()
		if !ok || t > cutT || (t == cutT && k >= cutK) {
			return
		}
		ev, _ := e.q.Pop()
		e.res.Perf.Events++
		s.begin(ev.Time, ev.Kind)
		e.handle(ev)
	}
}

// submit applies a routed submission: the shard-side half of the
// sequential engine's Submit case, with the routing decision already
// made. The ordering of effects mirrors engine.handle/route exactly.
func (s *shard) submit(cmd *shardCmd) {
	e := &s.eng
	now := cmd.time
	j := e.arena.New(&cmd.rec)
	c := e.clusters[cmd.cluster]
	j.Cluster = cmd.cluster
	if cmd.tracked {
		if e.targets == nil {
			e.targets = make(map[int64]*cancelTarget)
		}
		e.targets[j.ID] = &cancelTarget{j: j, bound: true}
	}
	c.sub.Routed++
	if e.tracer != nil && cmd.trace != nil {
		e.tracer.Trace(cmd.trace)
	}
	if c.speed != 1 {
		j.Runtime = scaleTime(j.Runtime, c.speed)
		j.Request = scaleTime(j.Request, c.speed)
	}
	j.Prediction = j.ClampPrediction(c.predictor.Predict(j, now))
	j.SubmitPrediction = j.Prediction
	c.predictor.OnSubmit(j, now)
	c.queue = append(c.queue, j)
	c.policy.OnSubmit(j, now)
	if e.tracer != nil {
		e.traceSubmit(c, j, now)
	}
	c.sub.Events++
	e.schedulePass(c, now)
}

// run is the shard's goroutine body: apply commands in FIFO order until
// the channel closes or a shardFinish arrives.
func (s *shard) run() {
	e := &s.eng
	for cmd := range s.cmds {
		switch cmd.kind {
		case shardSync:
			s.advance(cmd.time, cmd.cut)
			s.ack()
		case shardSubmit:
			s.advance(cmd.time, eventq.Submit)
			s.begin(cmd.time, eventq.Submit)
			s.submit(&cmd)
		case shardCancel:
			s.advance(cmd.time, eventq.Cancel)
			s.begin(cmd.time, eventq.Cancel)
			e.handle(eventq.Event[payload]{Time: cmd.time, Kind: eventq.Cancel, Payload: payload{id: cmd.id}})
		case shardDrain:
			s.advance(cmd.time, eventq.Drain)
			s.begin(cmd.time, eventq.Drain)
			e.handle(eventq.Event[payload]{Time: cmd.time, Kind: eventq.Drain, Payload: payload{procs: cmd.procs, cluster: cmd.cluster}})
		case shardRestore:
			s.advance(cmd.time, eventq.Restore)
			s.begin(cmd.time, eventq.Restore)
			e.handle(eventq.Event[payload]{Time: cmd.time, Kind: eventq.Restore, Payload: payload{procs: cmd.procs, cluster: cmd.cluster}})
		case shardPass:
			s.advance(cmd.time, eventq.Cancel)
			s.begin(cmd.time, eventq.Cancel)
			if e.tracer != nil && cmd.trace != nil {
				e.tracer.Trace(cmd.trace)
			}
			c := e.clusters[cmd.cluster]
			c.sub.Events++
			e.schedulePass(c, cmd.time)
		case shardFinish:
			for {
				ev, ok := e.q.Pop()
				if !ok {
					break
				}
				e.res.Perf.Events++
				s.begin(ev.Time, ev.Kind)
				e.handle(ev)
			}
			s.ack()
			return
		}
	}
}

// ack reports the shard's post-advance horizon.
func (s *shard) ack() {
	t, k, ok := s.eng.q.Peek()
	s.acks <- shardAck{t: t, k: k, empty: !ok}
}

// routerTarget is the router-side cancel bookkeeping: one entry per job
// ID named by a scenario cancellation, mirroring cancelTarget but
// tracking routing instead of liveness (liveness is the owning shard's
// business once a job is routed).
type routerTarget struct {
	bound    bool // the source delivered the submission
	routed   bool // the Submit event was popped and dispatched
	canceled bool
	cluster  int // destination, valid once routed
}

// routerEvent is the router queue's payload: the global event kinds and
// their arguments.
type routerEvent struct {
	rec     swf.Job
	procs   int64
	id      int64
	cluster int
}

// runFederatedStreamSharded is the Shards >= 1 implementation of
// RunFederatedStream. See the file comment for the design and
// FederatedConfig.Shards for the contract.
func runFederatedStreamSharded(name string, src workload.Source, fed FederatedConfig) (*Result, error) {
	wallStart := time.Now()
	if fed.Shards < 0 {
		return nil, fmt.Errorf("sim: stream %q: negative shard count %d", name, fed.Shards)
	}
	if fed.Profile {
		return nil, fmt.Errorf("sim: stream %q: stage profiling requires the sequential driver (Shards = 0)", name)
	}
	e, res, maxTotal, err := fed.setup()
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("sim: stream %q: nil source", name)
	}
	res.Workload = name
	res.Streamed = true

	nw := fed.Shards
	if nw > len(e.clusters) {
		nw = len(e.clusters)
	}
	var perCluster clusterSinks
	if fed.Sink != nil && nw > 1 {
		cs, ok := fed.Sink.(ClusterSink)
		if !ok {
			return nil, fmt.Errorf("sim: stream %q: Shards = %d needs a ClusterSink (got %T); use Shards <= 1 or a sharded sink like metrics.Federated", name, fed.Shards, fed.Sink)
		}
		perCluster = make(clusterSinks, len(e.clusters))
		for i := range e.clusters {
			o, ok := cs.ClusterObserver(i).(JobSink)
			if !ok {
				return nil, fmt.Errorf("sim: stream %q: ClusterObserver(%d) of %T does not implement JobSink", name, i, fed.Sink)
			}
			perCluster[i] = o
		}
	}

	// The router queue holds the global event kinds. Scenario events are
	// seeded up front exactly like the sequential drivers, so same-kind
	// same-instant ties keep script order.
	var rq eventq.Queue[routerEvent]
	rtargets := make(map[int64]*routerTarget)
	if !fed.Script.Empty() {
		res.Scenario = fed.Script.Name
		for _, ev := range fed.Script.Events {
			switch {
			case ev.Time < 0:
				return nil, fmt.Errorf("sim: scenario event at negative instant %d", ev.Time)
			case ev.Action == scenario.Drain && ev.Procs > 0:
				ci, err := e.clusterIndex(ev.Cluster)
				if err != nil {
					return nil, err
				}
				rq.Push(ev.Time, eventq.Drain, routerEvent{procs: ev.Procs, cluster: ci})
			case ev.Action == scenario.Restore && ev.Procs > 0:
				ci, err := e.clusterIndex(ev.Cluster)
				if err != nil {
					return nil, err
				}
				rq.Push(ev.Time, eventq.Restore, routerEvent{procs: ev.Procs, cluster: ci})
			case ev.Action == scenario.Cancel:
				if rtargets[ev.JobID] == nil {
					rtargets[ev.JobID] = &routerTarget{}
				}
				rq.Push(ev.Time, eventq.Cancel, routerEvent{id: ev.JobID})
			default:
				return nil, fmt.Errorf("sim: scenario %s event with %d processors", ev.Action, ev.Procs)
			}
		}
	}

	// Spawn the workers. Each shard's engine shares the cluster slice
	// (global indices) but owns a disjoint subset of it, plus its own
	// queue, arena, cancel map and counter scratch.
	shards := make([]*shard, nw)
	var wg sync.WaitGroup
	for i := range shards {
		sh := &shard{
			cmds: make(chan shardCmd, 256),
			acks: make(chan shardAck, 1),
		}
		sh.eng = engine{
			corrector: e.corrector,
			clusters:  e.clusters,
			res:       &Result{},
			arena:     new(job.Arena),
		}
		sh.eng.q.Reserve(256)
		if fed.Sink != nil {
			if nw == 1 {
				sh.eng.sink = fed.Sink
			} else {
				sh.eng.sink = perCluster
			}
		}
		if fed.Tracer != nil {
			sh.tracing = true
			sh.eng.instrument(stepTracer{sh}, false)
			sh.eng.onPush = func(t int64, k eventq.Kind) {
				st := &sh.steps[len(sh.steps)-1]
				st.children = append(st.children, childKey{t: t, k: k})
			}
		}
		shards[i] = sh
	}
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.run()
		}(sh)
	}
	stopped := false
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		for _, sh := range shards {
			close(sh.cmds)
		}
		wg.Wait()
	}
	defer stop()

	// Router-side dispatch and barrier state. synced/horizon implement
	// the sync-skip: a shard that acked since its last command and whose
	// next local event is not before the cutoff has nothing to do and is
	// not synced again.
	synced := make([]bool, nw)
	horizon := make([]shardAck, nw)
	waiting := make([]bool, nw)
	send := func(si int, cmd shardCmd) {
		synced[si] = false
		shards[si].cmds <- cmd
	}

	// roots logs every router-queue pop in pop order (traced runs only):
	// the seed of the trace replay.
	var roots []rootRec
	traced := fed.Tracer != nil
	dispatched := func(si int) {
		if traced {
			roots[len(roots)-1].shard = si
		}
	}
	horizonBefore := func(h shardAck, t int64, k eventq.Kind) bool {
		if h.empty {
			return false
		}
		return h.t < t || (h.t == t && h.k < k)
	}
	barrier := func(t int64, k eventq.Kind) {
		for i := range shards {
			waiting[i] = false
			if synced[i] && !horizonBefore(horizon[i], t, k) {
				continue
			}
			send(i, shardCmd{kind: shardSync, time: t, cut: k})
			waiting[i] = true
		}
		for i := range shards {
			if !waiting[i] {
				continue
			}
			horizon[i] = <-shards[i].acks
			synced[i] = true
		}
	}

	lastSubmit := int64(-1 << 62)
	admit := func(rec swf.Job) error {
		if rec.Procs() > maxTotal {
			return fmt.Errorf("sim: job %d wider (%d) than every cluster (widest %d)", rec.JobNumber, rec.Procs(), maxTotal)
		}
		if rec.SubmitTime < lastSubmit {
			return fmt.Errorf("sim: stream %q not submit-ordered: job %d at %d after %d", name, rec.JobNumber, rec.SubmitTime, lastSubmit)
		}
		lastSubmit = rec.SubmitTime
		if tgt := rtargets[rec.JobNumber]; tgt != nil {
			if tgt.bound {
				return fmt.Errorf("sim: stream %q: duplicate job id %d targeted by a cancellation", name, rec.JobNumber)
			}
			tgt.bound = true
			if tgt.canceled {
				// Canceled before submission: counted now, dropped when
				// its Submit event pops — the sequential semantics.
				res.Canceled++
			}
		}
		rq.Push(rec.SubmitTime, eventq.Submit, routerEvent{rec: rec})
		return nil
	}

	var pending swf.Job
	havePending, exhausted := false, false
	for {
		// Top up arrivals against the router queue's clock. Local
		// finish/expiry events never order submissions among themselves,
		// so pacing against the global kinds alone preserves the
		// sequential push (and therefore tie-break) order.
		for !exhausted {
			if !havePending {
				rec, err := src.NextJob()
				if err == io.EOF {
					exhausted = true
					break
				}
				if err != nil {
					return nil, fmt.Errorf("sim: stream %q: %w", name, err)
				}
				pending, havePending = rec, true
			}
			if t, ok := rq.PeekTime(); ok && pending.SubmitTime > t {
				break
			}
			if err := admit(pending); err != nil {
				return nil, err
			}
			havePending = false
		}

		ev, ok := rq.Pop()
		if !ok {
			break
		}
		res.Perf.Events++
		now := ev.Time
		if traced {
			roots = append(roots, rootRec{t: now, k: ev.Kind, shard: -1})
		}
		switch ev.Kind {
		case eventq.Submit:
			rec := ev.Payload.rec
			tgt := rtargets[rec.JobNumber]
			if tgt != nil && tgt.canceled {
				break // canceled before submission: never enters the system
			}
			// Sequencing point: every shard state ordered before this
			// submission must be realized before the router looks.
			barrier(now, eventq.Submit)
			var tmp job.Job
			job.FromSWFInto(&tmp, &rec)
			for i, cs := range e.clusters {
				e.views[i] = sched.ClusterState{Name: cs.name, Machine: cs.machine, QueueLen: len(cs.queue)}
			}
			pick := e.router.Route(&tmp, now, e.views)
			if pick < 0 || pick >= len(e.clusters) || e.clusters[pick].machine.Total() < tmp.Procs {
				panic(fmt.Sprintf("sim: router %s sent job %d (%d procs) to invalid cluster %d",
					e.router.Name(), tmp.ID, tmp.Procs, pick))
			}
			if tgt != nil {
				tgt.routed, tgt.cluster = true, pick
			}
			cmd := shardCmd{kind: shardSubmit, time: now, rec: rec, cluster: pick, tracked: tgt != nil}
			if fed.Tracer != nil {
				cmd.trace = e.routeEventFor(&tmp, pick, now)
			}
			dispatched(pick % nw)
			send(pick%nw, cmd)
		case eventq.Cancel:
			tgt := rtargets[ev.Payload.id]
			if tgt.canceled {
				break // double cancellation: stale, like the sequential path
			}
			switch {
			case tgt.routed:
				// The owning shard resolves liveness (finished/killed/
				// queued) with its local state, exactly as handleCancel
				// does sequentially.
				dispatched(tgt.cluster % nw)
				send(tgt.cluster%nw, shardCmd{kind: shardCancel, time: now, id: ev.Payload.id})
			case tgt.bound:
				// Admitted but its Submit not yet popped (same-instant
				// cancellation): drop it before it enters the system and
				// run the no-op pass on cluster 0, like the sequential
				// "not yet submitted" branch.
				tgt.canceled = true
				res.Canceled++
				cmd := shardCmd{kind: shardPass, time: now, cluster: 0}
				if fed.Tracer != nil {
					cmd.trace = &obs.Event{T: now, Kind: obs.KindCancel, Job: ev.Payload.id}
				}
				dispatched(0)
				send(0, cmd)
			default:
				// Not delivered by the source yet (or ever): mark so a
				// later submission is dropped on arrival.
				tgt.canceled = true
				dispatched(0)
				send(0, shardCmd{kind: shardPass, time: now, cluster: 0})
			}
		case eventq.Drain:
			dispatched(ev.Payload.cluster % nw)
			send(ev.Payload.cluster%nw, shardCmd{kind: shardDrain, time: now, cluster: ev.Payload.cluster, procs: ev.Payload.procs})
		case eventq.Restore:
			dispatched(ev.Payload.cluster % nw)
			send(ev.Payload.cluster%nw, shardCmd{kind: shardRestore, time: now, cluster: ev.Payload.cluster, procs: ev.Payload.procs})
		}
	}

	// Drain every shard to empty, concurrently, then collect the acks —
	// after which all shard state is quiescent and visible.
	for i := range shards {
		send(i, shardCmd{kind: shardFinish})
	}
	for i := range shards {
		<-shards[i].acks
	}
	stop()

	if n, first := e.queuedJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the scenario restore its drains?", n, first.ID)
	}
	if n := e.runningJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs still running after the event queue drained", n)
	}
	for _, sh := range shards {
		sr := sh.eng.res
		res.Finished += sr.Finished
		res.Corrections += sr.Corrections
		res.Canceled += sr.Canceled
		res.Perf.Events += sr.Perf.Events
		res.Perf.PickCalls += sr.Perf.PickCalls
		if sr.Makespan > res.Makespan {
			res.Makespan = sr.Makespan
		}
	}
	if fed.Tracer != nil {
		if err := replayMergedTrace(fed.Tracer, roots, shards); err != nil {
			return nil, err
		}
	}
	e.finishFederated(wallStart)
	return res, nil
}

// replayMergedTrace emits the buffered shard traces in the exact order
// the sequential driver would have emitted them, by replaying its
// global event queue: the router's pops seed a virtual queue in their
// deterministic order, and each popped step's recorded children enter
// the queue at the moment their parent pops — so the queue's
// push-sequence tie-break reproduces the sequential same-instant order
// exactly. The per-shard step logs are consumed sequentially: a shard
// processes its events in the global order restricted to that shard,
// which is the same invariant the simulation itself relies on. Any
// key mismatch or leftover step means that invariant broke, and is
// reported rather than traced around.
func replayMergedTrace(tr obs.Tracer, roots []rootRec, shards []*shard) error {
	var vq eventq.Queue[int]
	vq.Reserve(len(roots))
	for _, r := range roots {
		vq.Push(r.t, r.k, r.shard)
	}
	next := make([]int, len(shards))
	for {
		ev, ok := vq.Pop()
		if !ok {
			break
		}
		si := ev.Payload
		if si < 0 {
			continue // a root with no observable effect anywhere
		}
		sh := shards[si]
		if next[si] >= len(sh.steps) {
			return fmt.Errorf("sim: trace replay overran shard %d after %d steps", si, len(sh.steps))
		}
		st := &sh.steps[next[si]]
		next[si]++
		if st.t != ev.Time || st.k != ev.Kind {
			return fmt.Errorf("sim: trace replay diverged on shard %d: replayed (%d, %v), shard handled (%d, %v)",
				si, ev.Time, ev.Kind, st.t, st.k)
		}
		for i := range st.events {
			tr.Trace(&st.events[i])
		}
		for _, c := range st.children {
			vq.Push(c.t, c.k, si)
		}
	}
	for si, sh := range shards {
		if next[si] != len(sh.steps) {
			return fmt.Errorf("sim: trace replay left %d of shard %d's %d steps unconsumed",
				len(sh.steps)-next[si], si, len(sh.steps))
		}
	}
	return nil
}

// routeEventFor builds the flight-recorder routing event at the
// router's sequencing point, with its own copy of the eligible set
// (the event outlives the router's scratch: it is emitted later, in
// trace position, by the owning shard).
func (e *engine) routeEventFor(j *job.Job, pick int, now int64) *obs.Event {
	e.eligIdx = sched.Eligible(e.eligIdx, j, e.views)
	elig := make([]string, 0, len(e.eligIdx))
	for _, i := range e.eligIdx {
		elig = append(elig, e.clusters[i].name)
	}
	return &obs.Event{
		T: now, Kind: obs.KindRoute, Job: j.ID, Procs: j.Procs,
		Router: e.router.Name(), Eligible: elig, Cluster: e.clusters[pick].name,
	}
}
