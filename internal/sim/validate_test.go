package sim

import (
	"testing"

	"repro/internal/job"
)

// vjob builds a completed job for hand-crafted validation schedules.
func vjob(id, procs, start, end int64) *job.Job {
	return &job.Job{
		ID: id, Procs: procs, Submit: 0,
		Runtime: end - start, Request: end - start, Prediction: end - start,
		Started: true, Finished: true, Start: start, End: end,
	}
}

// TestValidateDrainAbsorbsReleaseAtStartInstant pins the same-instant
// semantics of the capacity walk: when a pending drain absorbs releases,
// the recorded (collapsed, final) capacity at that instant only binds
// after every release at the instant has been counted. Here three jobs
// finish at t=10 on a 4-processor machine while a pending 2-processor
// drain absorbs their releases; the capacity step at t=10 reads 2, but
// the machine was never overbooked: usage was 4 under capacity 4 before
// the instant and 2 under capacity 2 after it. The old walk applied the
// step before the releases and reported "3 > 2" on the first one.
func TestValidateDrainAbsorbsReleaseAtStartInstant(t *testing.T) {
	res := &Result{
		MaxProcs: 4,
		Jobs: []*job.Job{
			vjob(1, 1, 0, 10),
			vjob(2, 1, 0, 10),
			vjob(3, 2, 0, 10),
			vjob(4, 2, 10, 20), // starts into the shrunken machine
		},
		CapacitySteps: []CapacityStep{{At: 10, Capacity: 2}},
		Makespan:      20,
	}
	if errs := ValidateResult(res); len(errs) != 0 {
		t.Fatalf("valid schedule rejected: %v", errs)
	}
}

// TestValidateCapacityStillBindsAllocations makes sure the relaxed walk
// has not gone soft: an allocation that genuinely exceeds the capacity
// in force at its instant must still be reported.
func TestValidateCapacityStillBindsAllocations(t *testing.T) {
	res := &Result{
		MaxProcs: 4,
		Jobs: []*job.Job{
			vjob(1, 2, 0, 10),
			vjob(2, 3, 10, 20), // 3 procs into a machine shrunk to 2
		},
		CapacitySteps: []CapacityStep{{At: 10, Capacity: 2}},
		Makespan:      20,
	}
	errs := ValidateResult(res)
	if len(errs) == 0 {
		t.Fatal("overbooked allocation not reported")
	}
}

// TestValidateOverbookedReleaseInstant: releases at an instant are
// checked against the capacity in force before the instant, so a
// schedule that was overbooked before the step must still fail — on the
// delta that created the overbooking, at its own instant.
func TestValidateOverbookedBeforeStep(t *testing.T) {
	res := &Result{
		MaxProcs: 4,
		Jobs: []*job.Job{
			vjob(1, 3, 0, 10),
			vjob(2, 3, 5, 10), // 6 > 4 from t=5
		},
		CapacitySteps: []CapacityStep{{At: 10, Capacity: 2}},
		Makespan:      10,
	}
	errs := ValidateResult(res)
	if len(errs) == 0 {
		t.Fatal("overbooked schedule not reported")
	}
}
