package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The multi-client analogue of the stream differential layer: a
// degenerate clients block must be invisible to the engine (identical
// decisions, metrics and counters to the single-population generator),
// and a real decomposition must drive both streaming drivers with its
// per-client accounting intact.

func multiClients() []workload.Client {
	return []workload.Client{
		{Name: "steady", Fraction: 0.6},
		{Name: "bursty", Fraction: 0.3, Arrival: "gamma", Shape: 0.5},
		{Name: "tidal", Fraction: 0.1, Arrival: "weibull",
			Envelope: []float64{1, 0.25}, EnvelopePeriod: 6 * 3600},
	}
}

// TestStreamSingleClientIdenticalToGenSource is the acceptance
// differential: one all-default client through the full streaming
// engine produces the exact retirement sequence, Result counters and
// metric collector sums of the plain generator.
func TestStreamSingleClientIdenticalToGenSource(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 500)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.EASYPlusPlus()

	gen, err := workload.NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	genSink := newRecordingSink()
	gcfg := tr.Config()
	gcfg.Sink = genSink
	gres, err := sim.RunStream(cfg.Name, cfg.MaxProcs, gen, gcfg)
	if err != nil {
		t.Fatal(err)
	}

	multi, err := workload.NewMultiSource(cfg, []workload.Client{{Name: "all", Fraction: 1}})
	if err != nil {
		t.Fatal(err)
	}
	multiSink := newRecordingSink()
	mcfg := tr.Config()
	mcfg.Sink = multiSink
	mres, err := sim.RunStream(cfg.Name, cfg.MaxProcs, multi, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "single-client", gres, mres, genSink, multiSink)
}

// TestStreamMultiClientPerClientAccounting runs a real three-client
// decomposition through RunStream with the per-client sink: the client
// collectors must partition the overall population exactly, matching
// the generator's apportionment (no disruptions, so every job
// finishes).
func TestStreamMultiClientPerClientAccounting(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 600)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewMultiSource(cfg, multiClients())
	if err != nil {
		t.Fatal(err)
	}
	counts := src.Counts()
	pc := metrics.NewPerClient(src.ClientNames())
	scfg := core.EASYPlusPlus().Config()
	scfg.Sink = pc
	res, err := sim.RunStream(cfg.Name, cfg.MaxProcs, src, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != cfg.Jobs {
		t.Fatalf("finished %d of %d jobs", res.Finished, cfg.Jobs)
	}
	if pc.Overall().Finished() != cfg.Jobs {
		t.Fatalf("overall collector saw %d jobs, want %d", pc.Overall().Finished(), cfg.Jobs)
	}
	sum := 0
	for i, name := range pc.Names() {
		got := pc.Client(i).Finished()
		if got != counts[i] {
			t.Fatalf("client %s finished %d jobs, apportionment says %d", name, got, counts[i])
		}
		sum += got
	}
	if sum != pc.Overall().Finished() {
		t.Fatalf("per-client finishes sum to %d, overall %d", sum, pc.Overall().Finished())
	}
	// The per-client AVEbsld values must average (weighted by finish
	// counts) back to the overall objective — the decomposition is a
	// partition, not a resampling.
	var weighted float64
	for i := range pc.Names() {
		c := pc.Client(i)
		weighted += c.AVEbsld() * float64(c.Finished())
	}
	weighted /= float64(pc.Overall().Finished())
	overall := pc.Overall().AVEbsld()
	if diff := weighted - overall; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("weighted per-client AVEbsld %.12f != overall %.12f", weighted, overall)
	}
}

// TestFederatedStreamAcceptsMultiSource pins drop-in compatibility with
// the federated streaming driver: a multi-client stream routes across
// clusters and every job finishes.
func TestFederatedStreamAcceptsMultiSource(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 400)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewMultiSource(cfg, multiClients())
	if err != nil {
		t.Fatal(err)
	}
	// The widest cluster must fit the widest generated job (up to the
	// base machine's 32 procs).
	clusters, err := platform.ParseClusters("32,16x1.5")
	if err != nil {
		t.Fatal(err)
	}
	router, err := sched.NewRouter("least-loaded")
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewFederated(len(clusters))
	fed := sim.FederatedConfig{
		Clusters: clusters,
		Router:   router,
		Sink:     col,
		Session:  func() sim.Config { return core.EASYPlusPlus().Config() },
	}
	res, err := sim.RunFederatedStream(cfg.Name, src, fed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != cfg.Jobs {
		t.Fatalf("finished %d of %d jobs", res.Finished, cfg.Jobs)
	}
	routed := 0
	for i := range res.Clusters {
		routed += res.Clusters[i].Routed
	}
	if routed != cfg.Jobs {
		t.Fatalf("routed %d of %d jobs", routed, cfg.Jobs)
	}
}
