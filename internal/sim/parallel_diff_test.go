package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The differential layer of the parallel sharded driver: for every shard
// count, runFederatedStreamSharded must reproduce the sequential
// RunFederatedStream byte for byte — the same Result counters, the same
// per-cluster counters and capacity timelines, and the same per-cluster
// retirement sequences (with one shard, the same *global* retirement and
// trace sequences). Anything less means the router stopped being a true
// sequencing boundary.

// shardedRecorder is a ClusterSink of recordingSinks: it works on both
// the sequential driver (plain Observe) and the parallel one
// (per-cluster observers), yielding comparable per-cluster retirement
// sequences either way.
type shardedRecorder struct {
	per []*recordingSink
}

func newShardedRecorder(n int) *shardedRecorder {
	s := &shardedRecorder{per: make([]*recordingSink, n)}
	for i := range s.per {
		s.per[i] = newRecordingSink()
	}
	return s
}

func (s *shardedRecorder) Observe(j *job.Job)         { s.per[j.Cluster].Observe(j) }
func (s *shardedRecorder) ClusterObserver(ci int) any { return s.per[ci] }

// parallelPlatform is the heterogeneous testbed platform: mixed widths
// and speeds so routing, speed scaling and backfilling all differ per
// cluster.
func parallelPlatform(maxProcs int64) []platform.Cluster {
	return []platform.Cluster{
		{Name: "big", Procs: maxProcs},
		{Name: "mid", Procs: maxProcs / 2, Speed: 1.5},
		{Name: "slow", Procs: maxProcs, Speed: 0.5},
		{Name: "aux", Procs: maxProcs / 2, Speed: 0.75},
	}
}

// runShardedPair runs the sequential federated stream and the sharded
// one over the same source, returning results and per-cluster sinks.
func runShardedPair(t *testing.T, w *trace.Workload, tr core.Triple, clusters []platform.Cluster, router sched.Router, script *scenario.Script, shards int) (seqRes, parRes *sim.Result, seqSink, parSink *shardedRecorder) {
	t.Helper()
	seqSink = newShardedRecorder(len(clusters))
	seqRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
		Clusters: clusters,
		Router:   router,
		Session:  func() sim.Config { return tr.Config() },
		Script:   script,
		Sink:     seqSink,
	})
	if err != nil {
		t.Fatalf("RunFederatedStream(%s): %v", tr.Name(), err)
	}
	parSink = newShardedRecorder(len(clusters))
	parRes, err = sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
		Clusters: clusters,
		Router:   router,
		Session:  func() sim.Config { return tr.Config() },
		Script:   script,
		Sink:     parSink,
		Shards:   shards,
	})
	if err != nil {
		t.Fatalf("sharded RunFederatedStream(%s, shards=%d): %v", tr.Name(), shards, err)
	}
	return seqRes, parRes, seqSink, parSink
}

// assertShardedIdentical holds a sharded run to the sequential one on
// every deterministic observable.
func assertShardedIdentical(t *testing.T, label string, seqRes, parRes *sim.Result, seqSink, parSink *shardedRecorder) {
	t.Helper()
	if seqRes.Makespan != parRes.Makespan || seqRes.Corrections != parRes.Corrections ||
		seqRes.Canceled != parRes.Canceled || seqRes.Finished != parRes.Finished {
		t.Fatalf("%s: counters differ: makespan %d/%d corrections %d/%d canceled %d/%d finished %d/%d",
			label, seqRes.Makespan, parRes.Makespan, seqRes.Corrections, parRes.Corrections,
			seqRes.Canceled, parRes.Canceled, seqRes.Finished, parRes.Finished)
	}
	if seqRes.Perf.Events != parRes.Perf.Events || seqRes.Perf.PickCalls != parRes.Perf.PickCalls {
		t.Fatalf("%s: perf counters differ: events %d/%d picks %d/%d",
			label, seqRes.Perf.Events, parRes.Perf.Events, seqRes.Perf.PickCalls, parRes.Perf.PickCalls)
	}
	if len(seqRes.CapacitySteps) != len(parRes.CapacitySteps) {
		t.Fatalf("%s: capacity timelines differ in length: %d vs %d", label, len(seqRes.CapacitySteps), len(parRes.CapacitySteps))
	}
	for i := range seqRes.CapacitySteps {
		if seqRes.CapacitySteps[i] != parRes.CapacitySteps[i] {
			t.Fatalf("%s: capacity step %d differs", label, i)
		}
	}
	if len(seqRes.Clusters) != len(parRes.Clusters) {
		t.Fatalf("%s: cluster counts differ", label)
	}
	for ci := range seqRes.Clusters {
		a, b := seqRes.Clusters[ci], parRes.Clusters[ci]
		if a.Routed != b.Routed || a.Finished != b.Finished || a.Canceled != b.Canceled ||
			a.Corrections != b.Corrections || a.Makespan != b.Makespan ||
			a.Events != b.Events || a.PickCalls != b.PickCalls {
			t.Fatalf("%s: cluster %s counters differ:\n seq: %+v\n par: %+v", label, a.Name, a, b)
		}
		if len(a.CapacitySteps) != len(b.CapacitySteps) {
			t.Fatalf("%s: cluster %s capacity timelines differ in length", label, a.Name)
		}
		for k := range a.CapacitySteps {
			if a.CapacitySteps[k] != b.CapacitySteps[k] {
				t.Fatalf("%s: cluster %s capacity step %d differs", label, a.Name, k)
			}
		}
		as, bs := seqSink.per[ci], parSink.per[ci]
		if len(as.seq) != len(bs.seq) {
			t.Fatalf("%s: cluster %s retirement counts differ: %d vs %d", label, a.Name, len(as.seq), len(bs.seq))
		}
		for i := range as.seq {
			if as.seq[i] != bs.seq[i] {
				t.Fatalf("%s: cluster %s retirement %d differs:\n seq: %+v\n par: %+v",
					label, a.Name, i, as.seq[i], bs.seq[i])
			}
		}
		// Identical per-cluster observation sequences imply bit-identical
		// collector sums; check anyway so a sink-wiring bug cannot hide.
		ac, bc := as.col, bs.col
		if ac.AVEbsld() != bc.AVEbsld() || ac.MaxBsld() != bc.MaxBsld() ||
			ac.MeanWait() != bc.MeanWait() || ac.MAE() != bc.MAE() || ac.MeanELoss() != bc.MeanELoss() {
			t.Fatalf("%s: cluster %s collectors diverged", label, a.Name)
		}
	}
}

// TestParallelOneShardByteIdentical pins the strongest identity: with
// Shards = 1 the parallel machinery (router queue, command channel,
// shard loop) is exercised, but the single worker must reproduce the
// sequential driver's *global* retirement order byte for byte — not
// just the per-cluster projections — across the full differential
// triple grid.
func TestParallelOneShardByteIdentical(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 220)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := parallelPlatform(w.MaxProcs)
	for _, tr := range diffConfigs() {
		label := tr.Name()
		seqSink := newRecordingSink()
		seqRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
			Clusters: clusters,
			Session:  func() sim.Config { return tr.Config() },
			Sink:     seqSink,
		})
		if err != nil {
			t.Fatalf("RunFederatedStream(%s): %v", label, err)
		}
		parSink := newRecordingSink()
		parRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
			Clusters: clusters,
			Session:  func() sim.Config { return tr.Config() },
			Sink:     parSink,
			Shards:   1,
		})
		if err != nil {
			t.Fatalf("sharded RunFederatedStream(%s): %v", label, err)
		}
		if len(seqSink.seq) != len(parSink.seq) {
			t.Fatalf("%s: retirement counts differ: %d vs %d", label, len(seqSink.seq), len(parSink.seq))
		}
		for i := range seqSink.seq {
			if seqSink.seq[i] != parSink.seq[i] {
				t.Fatalf("%s: global retirement %d differs:\n seq: %+v\n par: %+v",
					label, i, seqSink.seq[i], parSink.seq[i])
			}
		}
		if seqRes.Makespan != parRes.Makespan || seqRes.Finished != parRes.Finished ||
			seqRes.Perf.Events != parRes.Perf.Events || seqRes.Perf.PickCalls != parRes.Perf.PickCalls {
			t.Fatalf("%s: counters differ: %+v vs %+v", label, seqRes.Perf, parRes.Perf)
		}
	}
}

// TestParallelShardedIdenticalAcrossShardCounts sweeps shard counts
// (including more shards than clusters) and routers: every combination
// must match the sequential driver exactly.
func TestParallelShardedIdenticalAcrossShardCounts(t *testing.T) {
	cfg, err := workload.Scaled("SDSC-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := parallelPlatform(w.MaxProcs)
	triples := []core.Triple{core.EASYPlusPlus(), core.ConservativeBF(), core.PaperBest()}
	for _, routerName := range []string{"round-robin", "least-loaded", "queue-depth", "spillover"} {
		for _, tr := range triples {
			for _, shards := range []int{1, 2, 3, 8} {
				label := fmt.Sprintf("%s/%s/shards=%d", routerName, tr.Name(), shards)
				router, err := sched.NewRouter(routerName)
				if err != nil {
					t.Fatal(err)
				}
				router2, err := sched.NewRouter(routerName)
				if err != nil {
					t.Fatal(err)
				}
				seqSink := newShardedRecorder(len(clusters))
				seqRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
					Clusters: clusters, Router: router,
					Session: func() sim.Config { return tr.Config() },
					Sink:    seqSink,
				})
				if err != nil {
					t.Fatalf("RunFederatedStream(%s): %v", label, err)
				}
				parSink := newShardedRecorder(len(clusters))
				parRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
					Clusters: clusters, Router: router2,
					Session: func() sim.Config { return tr.Config() },
					Sink:    parSink,
					Shards:  shards,
				})
				if err != nil {
					t.Fatalf("sharded RunFederatedStream(%s): %v", label, err)
				}
				assertShardedIdentical(t, label, seqRes, parRes, seqSink, parSink)
			}
		}
	}
}

// TestParallelShardedIdenticalUnderDisruption replays generated
// disruption scripts (drains, maintenance windows, cancellations) plus
// hand-built edge cases — a cluster-targeted drain, a ghost cancel of a
// job that never arrives, and a cancel at a job's exact submit instant —
// through both drivers at several shard counts.
func TestParallelShardedIdenticalUnderDisruption(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := parallelPlatform(w.MaxProcs)
	edge := &scenario.Script{Name: "edges", Events: []scenario.Event{
		{Time: 10, Action: scenario.Cancel, JobID: 1 << 40}, // ghost: never delivered
		{Time: w.Jobs[5].SubmitTime, Action: scenario.Cancel, JobID: w.Jobs[5].JobNumber},
		{Time: 1000, Action: scenario.Drain, Procs: clusters[1].Procs / 2, Cluster: "mid"},
		{Time: 50000, Action: scenario.Restore, Procs: clusters[1].Procs / 2, Cluster: "mid"},
		{Time: 2000, Action: scenario.Cancel, JobID: w.Jobs[40].JobNumber},
		{Time: 2000, Action: scenario.Cancel, JobID: w.Jobs[40].JobNumber}, // double cancel: stale
	}}
	src := rng.New(0x5a4d)
	scripts := []*scenario.Script{edge}
	for _, in := range scenario.Intensities {
		if in.Name == "none" {
			continue
		}
		scripts = append(scripts, scenario.Generate(w, in, src.Uint64()))
	}
	triples := []core.Triple{core.EASYPlusPlus(), core.ConservativeBF()}
	for _, script := range scripts {
		for _, tr := range triples {
			for _, shards := range []int{1, 3} {
				label := fmt.Sprintf("%s/%s/shards=%d", script.Name, tr.Name(), shards)
				seqRes, parRes, seqSink, parSink := runShardedPair(t, w, tr, clusters, nil, script, shards)
				assertShardedIdentical(t, label, seqRes, parRes, seqSink, parSink)
			}
		}
	}
}

// checkTraceEvents is checkTraceInvariants minus the stage-histogram
// ties: the sharded driver does not support profiling, so only the
// schema and the event/counter correspondences apply.
func checkTraceEvents(t *testing.T, label string, events []obs.Event, res *sim.Result) {
	t.Helper()
	var picks, finishes, submits, routes int64
	for i := range events {
		ev := &events[i]
		if err := obs.ValidateEvent(ev); err != nil {
			t.Fatalf("%s: event %d invalid: %v (%+v)", label, i, err, *ev)
		}
		switch ev.Kind {
		case obs.KindPick:
			picks++
		case obs.KindFinish:
			finishes++
		case obs.KindSubmit:
			submits++
		case obs.KindRoute:
			routes++
		}
	}
	if picks != res.Perf.PickCalls {
		t.Fatalf("%s: %d pick events for %d Pick calls", label, picks, res.Perf.PickCalls)
	}
	if finishes != int64(res.Finished) {
		t.Fatalf("%s: %d finish events for %d finished jobs", label, finishes, res.Finished)
	}
	if routes != submits {
		t.Fatalf("%s: %d route events for %d submissions", label, routes, submits)
	}
}

// stripNanos zeroes the wall-clock field, the one legitimately
// nondeterministic part of a trace event.
func stripNanos(events []obs.Event) []obs.Event {
	out := append([]obs.Event(nil), events...)
	for i := range out {
		out[i].Nanos = 0
	}
	return out
}

// eventKey is a total order on stripped events for multiset comparison.
func eventKey(e *obs.Event) string {
	return fmt.Sprintf("%d/%s/%d/%s/%d/%d/%d/%d/%d/%d/%v/%d/%d/%v",
		e.T, e.Kind, e.Job, e.Cluster, e.Procs, e.Request, e.Prediction,
		e.Picked, e.QueueLen, e.Free, e.Started, e.Wait, e.Corrections, e.Eligible)
}

// TestParallelTracedDeterministic holds the traced parallel path to
// its contract: for every shard count the merged stream equals the
// sequential stream event for event (the replay merge reconstructs the
// sequential queue's emission order exactly — not merely a
// deterministic permutation), and tracing stays pure observation
// (counters match the untraced run).
func TestParallelTracedDeterministic(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 260)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := parallelPlatform(w.MaxProcs)
	script := scenario.Generate(w, scenario.Intensities[1], 0x7ace)
	tr := core.EASYPlusPlus()

	run := func(shards int, tracer obs.Tracer) (*sim.Result, *shardedRecorder) {
		sink := newShardedRecorder(len(clusters))
		res, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
			Clusters: clusters,
			Session:  func() sim.Config { return tr.Config() },
			Script:   script,
			Sink:     sink,
			Tracer:   tracer,
			Shards:   shards,
		})
		if err != nil {
			t.Fatalf("RunFederatedStream(shards=%d): %v", shards, err)
		}
		return res, sink
	}

	seqCol := &obs.Collector{}
	seqRes, seqSink := run(0, seqCol)
	seqEvents := stripNanos(seqCol.Events())

	for _, shardCount := range []int{1, 2, 3} {
		label := fmt.Sprintf("traced/shards=%d", shardCount)
		col := &obs.Collector{}
		res, sink := run(shardCount, col)
		events := stripNanos(col.Events())
		assertShardedIdentical(t, label, seqRes, res, seqSink, sink)
		checkTraceEvents(t, label, col.Events(), res)
		if len(seqEvents) != len(events) {
			t.Fatalf("%s: event counts differ: %d vs %d", label, len(seqEvents), len(events))
		}
		for i := range seqEvents {
			if eventKey(&seqEvents[i]) != eventKey(&events[i]) {
				t.Fatalf("%s: event %d differs:\n seq: %+v\n par: %+v", label, i, seqEvents[i], events[i])
			}
		}
	}
}

// TestParallelConfigErrors pins the sharded driver's contract checks.
func TestParallelConfigErrors(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 60)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := parallelPlatform(w.MaxProcs)
	base := func() sim.FederatedConfig {
		return sim.FederatedConfig{
			Clusters: clusters,
			Session:  func() sim.Config { return core.EASYPlusPlus().Config() },
		}
	}
	fed := base()
	fed.Shards = -1
	if _, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fed); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
	fed = base()
	fed.Shards = 2
	fed.Profile = true
	if _, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fed); err == nil {
		t.Fatal("profiling a sharded run must be rejected")
	}
	fed = base()
	fed.Shards = 2
	fed.Sink = newRecordingSink() // not a ClusterSink
	if _, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fed); err == nil {
		t.Fatal("a plain sink on a multi-worker run must be rejected")
	}
	// One worker is allowed to keep a plain sink: observation order is
	// sequential by construction.
	fed = base()
	fed.Shards = 1
	fed.Sink = newRecordingSink()
	if _, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fed); err != nil {
		t.Fatalf("single-worker run with a plain sink failed: %v", err)
	}
}
