package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The differential-testing layer of the federated engine: a one-cluster
// federation (unit speed) must reproduce the single-machine engines byte
// for byte — same retirement sequence, same counters, same capacity
// timeline, same deterministic Perf counters, same metric sums — under
// every policy triple, preset and disruption script. Multi-cluster runs
// are then held to the physical invariants per cluster.

// fedOf wraps a triple as a one-session-per-cluster federated config.
func fedOf(tr core.Triple, clusters []platform.Cluster, router sched.Router, script *scenario.Script, sink sim.JobSink) sim.FederatedConfig {
	return sim.FederatedConfig{
		Clusters: clusters,
		Router:   router,
		Session:  func() sim.Config { return tr.Config() },
		Script:   script,
		Sink:     sink,
	}
}

// assertSameSchedule is assertIdentical for two preloading results: the
// same strict comparison minus the streamed-shape check (both sides
// retain their jobs here).
func assertSameSchedule(t *testing.T, label string, mem, fed *sim.Result, memSink, fedSink *recordingSink) {
	t.Helper()
	if len(memSink.seq) != len(fedSink.seq) {
		t.Fatalf("%s: retirement counts differ: %d vs %d", label, len(memSink.seq), len(fedSink.seq))
	}
	for i := range memSink.seq {
		if memSink.seq[i] != fedSink.seq[i] {
			t.Fatalf("%s: retirement %d differs:\n mem: %+v\n fed: %+v", label, i, memSink.seq[i], fedSink.seq[i])
		}
	}
	if mem.Makespan != fed.Makespan || mem.Corrections != fed.Corrections ||
		mem.Canceled != fed.Canceled || mem.Finished != fed.Finished {
		t.Fatalf("%s: counters differ: makespan %d/%d corrections %d/%d canceled %d/%d finished %d/%d",
			label, mem.Makespan, fed.Makespan, mem.Corrections, fed.Corrections,
			mem.Canceled, fed.Canceled, mem.Finished, fed.Finished)
	}
	if len(mem.CapacitySteps) != len(fed.CapacitySteps) {
		t.Fatalf("%s: capacity timelines differ in length: %d vs %d", label, len(mem.CapacitySteps), len(fed.CapacitySteps))
	}
	for i := range mem.CapacitySteps {
		if mem.CapacitySteps[i] != fed.CapacitySteps[i] {
			t.Fatalf("%s: capacity step %d differs: %+v vs %+v", label, i, mem.CapacitySteps[i], fed.CapacitySteps[i])
		}
	}
	if mem.Perf.Events != fed.Perf.Events || mem.Perf.PickCalls != fed.Perf.PickCalls {
		t.Fatalf("%s: perf counters differ: events %d/%d picks %d/%d",
			label, mem.Perf.Events, fed.Perf.Events, mem.Perf.PickCalls, fed.Perf.PickCalls)
	}
	mc, fc := memSink.col, fedSink.col
	if mc.AVEbsld() != fc.AVEbsld() || mc.MaxBsld() != fc.MaxBsld() ||
		mc.MeanWait() != fc.MeanWait() || mc.MAE() != fc.MAE() || mc.MeanELoss() != fc.MeanELoss() ||
		mc.Utilization(mem.Makespan, mem.MaxProcs) != fc.Utilization(fed.Makespan, fed.MaxProcs) {
		t.Fatalf("%s: streaming metric collectors diverged", label)
	}
}

// runLegacyAndFederated runs the single-machine preloading engine and a
// one-cluster federation over the same workload.
func runLegacyAndFederated(t *testing.T, w *trace.Workload, tr core.Triple, router sched.Router, script *scenario.Script) (mem, fed *sim.Result, memSink, fedSink *recordingSink) {
	t.Helper()
	memSink = newRecordingSink()
	cfg := tr.Config()
	cfg.Script = script
	cfg.Sink = memSink
	mem, err := sim.Run(w, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", tr.Name(), err)
	}

	fedSink = newRecordingSink()
	one := []platform.Cluster{{Name: "only", Procs: w.MaxProcs}}
	fed, err = sim.RunFederated(w, fedOf(tr, one, router, script, fedSink))
	if err != nil {
		t.Fatalf("RunFederated(%s): %v", tr.Name(), err)
	}
	return mem, fed, memSink, fedSink
}

// assertFederatedShape checks the federated-only observables: routing
// name set, per-cluster counters summing to the global ones, and the
// per-cluster physical invariants.
func assertFederatedShape(t *testing.T, label string, res *sim.Result) {
	t.Helper()
	if res.Routing == "" {
		t.Fatalf("%s: federated result has no routing name", label)
	}
	if len(res.Clusters) == 0 {
		t.Fatalf("%s: federated result has no cluster results", label)
	}
	var finished, corrections, routed int
	for _, cr := range res.Clusters {
		finished += cr.Finished
		corrections += cr.Corrections
		routed += cr.Routed
		if cr.Makespan > res.Makespan {
			t.Fatalf("%s: cluster %s makespan %d exceeds global %d", label, cr.Name, cr.Makespan, res.Makespan)
		}
	}
	if finished != res.Finished || corrections != res.Corrections {
		t.Fatalf("%s: per-cluster sums diverge from global: finished %d/%d corrections %d/%d",
			label, finished, res.Finished, corrections, res.Corrections)
	}
	if routed < res.Finished {
		t.Fatalf("%s: %d routed jobs cannot finish %d", label, routed, res.Finished)
	}
	if !res.Streamed {
		if errs := sim.ValidateResult(res); len(errs) != 0 {
			t.Fatalf("%s: federated schedule invalid: %v", label, errs[0])
		}
	}
}

// TestFederatedOneClusterIdentical sweeps every preset across the full
// policy-triple grid: a one-cluster round-robin federation must be
// byte-identical to Run.
func TestFederatedOneClusterIdentical(t *testing.T) {
	triples := diffConfigs()
	for _, preset := range workload.PresetNames() {
		cfg, err := workload.Scaled(preset, 220)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range triples {
			label := fmt.Sprintf("%s/%s", preset, tr.Name())
			mem, fed, ms, fs := runLegacyAndFederated(t, w, tr, &sched.RoundRobin{}, nil)
			assertSameSchedule(t, label, mem, fed, ms, fs)
			assertFederatedShape(t, label, fed)
		}
	}
}

// TestFederatedOneClusterIdenticalPerRouter holds the identity for every
// routing policy: with one cluster there is only one destination, so the
// router must be invisible.
func TestFederatedOneClusterIdenticalPerRouter(t *testing.T) {
	cfg, err := workload.Scaled("SDSC-SP2", 250)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.EASYPlusPlus()
	for _, name := range []string{"round-robin", "least-loaded", "queue-depth", "spillover"} {
		router, err := sched.NewRouter(name)
		if err != nil {
			t.Fatal(err)
		}
		mem, fed, ms, fs := runLegacyAndFederated(t, w, tr, router, nil)
		assertSameSchedule(t, name, mem, fed, ms, fs)
		if fed.Routing != name {
			t.Fatalf("routing recorded as %q, want %q", fed.Routing, name)
		}
	}
}

// TestFederatedOneClusterIdenticalUnderDisruption replays randomized
// disruption scripts through both engines. Script events carry no
// cluster name, which on a federation means its first cluster — the
// sole one here.
func TestFederatedOneClusterIdenticalUnderDisruption(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	triples := []core.Triple{core.EASY(), core.EASYPlusPlus(), core.ConservativeBF()}
	src := rng.New(0xfed)
	for _, in := range scenario.Intensities {
		if in.Name == "none" {
			continue
		}
		seed := src.Uint64()
		script := scenario.Generate(w, in, seed)
		for _, tr := range triples {
			label := fmt.Sprintf("%s/seed%x/%s", in.Name, seed, tr.Name())
			mem, fed, ms, fs := runLegacyAndFederated(t, w, tr, nil, script)
			assertSameSchedule(t, label, mem, fed, ms, fs)
			assertFederatedShape(t, label, fed)
		}
	}
}

// TestFederatedStreamOneClusterIdentical holds RunFederatedStream to
// RunStream on the same lazily pulled workload, with and without a
// disruption script.
func TestFederatedStreamOneClusterIdentical(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	script := scenario.Generate(w, scenario.Intensities[1], 0xabc)
	for _, tr := range []core.Triple{core.EASYPlusPlus(), core.PaperBest()} {
		for _, sc := range []*scenario.Script{nil, script} {
			label := tr.Name()
			if sc != nil {
				label += "/disrupted"
			}
			strSink := newRecordingSink()
			scfg := tr.Config()
			scfg.Script = sc
			scfg.Sink = strSink
			str, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), scfg)
			if err != nil {
				t.Fatalf("RunStream(%s): %v", label, err)
			}

			fedSink := newRecordingSink()
			one := []platform.Cluster{{Procs: w.MaxProcs}}
			fed, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fedOf(tr, one, nil, sc, fedSink))
			if err != nil {
				t.Fatalf("RunFederatedStream(%s): %v", label, err)
			}
			assertIdentical(t, label, str, fed, strSink, fedSink)
			assertFederatedShape(t, label, fed)
		}
	}
}

// TestFederatedMultiClusterValid runs real multi-cluster federations —
// heterogeneous sizes and speeds, every router — and holds each cluster
// to the physical scheduling invariants, with the federated metrics sink
// splitting cleanly by destination.
func TestFederatedMultiClusterValid(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 400)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := []platform.Cluster{
		{Name: "big", Procs: w.MaxProcs},
		{Name: "mid", Procs: w.MaxProcs / 2, Speed: 1.5},
		{Name: "slow", Procs: w.MaxProcs, Speed: 0.5},
	}
	for _, name := range []string{"round-robin", "least-loaded", "queue-depth", "spillover"} {
		for _, tr := range []core.Triple{core.EASY(), core.EASYPlusPlus()} {
			label := name + "/" + tr.Name()
			router, err := sched.NewRouter(name)
			if err != nil {
				t.Fatal(err)
			}
			col := metrics.NewFederated(len(clusters))
			res, err := sim.RunFederated(w, fedOf(tr, clusters, router, nil, col))
			if err != nil {
				t.Fatalf("RunFederated(%s): %v", label, err)
			}
			assertFederatedShape(t, label, res)
			if res.Finished != len(w.Jobs) {
				t.Fatalf("%s: finished %d of %d jobs", label, res.Finished, len(w.Jobs))
			}
			total := 0
			for ci, c := range col.Clusters {
				if c.Finished() != res.Clusters[ci].Finished {
					t.Fatalf("%s: cluster %d sink saw %d jobs, result says %d",
						label, ci, c.Finished(), res.Clusters[ci].Finished)
				}
				total += c.Finished()
			}
			if total != col.Global().Finished() {
				t.Fatalf("%s: cluster sinks saw %d jobs, global saw %d", label, total, col.Global().Finished())
			}
		}
	}
}

// TestFederatedSpeedScaling pins the speed semantics: on a federation
// whose single cluster runs at speed s, every job's realized runtime is
// ceil of the reference runtime over s.
func TestFederatedSpeedScaling(t *testing.T) {
	cfg, err := workload.Scaled("SDSC-SP2", 150)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[int64]int64, len(w.Jobs))
	for i := range w.Jobs {
		ref[w.Jobs[i].JobNumber] = w.Jobs[i].RunTime
	}
	res, err := sim.RunFederated(w, fedOf(core.EASY(), []platform.Cluster{{Procs: w.MaxProcs, Speed: 2}}, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		r := ref[j.ID]
		want := (r + 1) / 2 // ceil(r/2)
		if r > 0 && want < 1 {
			want = 1
		}
		if j.Runtime != want {
			t.Fatalf("job %d runtime %d, want ceil(%d/2)=%d", j.ID, j.Runtime, r, want)
		}
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		t.Fatalf("scaled schedule invalid: %v", errs[0])
	}
}

// TestFederatedClusterTargetedScript pins cluster-targeted drains: a
// drain aimed at one cluster must only dent that cluster's capacity
// timeline.
func TestFederatedClusterTargetedScript(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 200)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := []platform.Cluster{
		{Name: "a", Procs: w.MaxProcs},
		{Name: "b", Procs: w.MaxProcs},
	}
	script := scenario.NewBuilder("dent-b").
		DrainOn("b", 1000, w.MaxProcs/2).
		RestoreOn("b", 100000, w.MaxProcs/2).
		MustBuild()
	res, err := sim.RunFederated(w, fedOf(core.EASY(), clusters, nil, script, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters[0].CapacitySteps) != 0 {
		t.Fatalf("cluster a capacity changed: %+v", res.Clusters[0].CapacitySteps)
	}
	if len(res.Clusters[1].CapacitySteps) == 0 {
		t.Fatal("cluster b capacity never changed despite the drain")
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		t.Fatalf("schedule invalid: %v", errs[0])
	}
	// An unknown cluster name is a setup error, not a silent no-op.
	bad := scenario.NewBuilder("ghost").DrainOn("nope", 10, 4).MustBuild()
	if _, err := sim.RunFederated(w, fedOf(core.EASY(), clusters, nil, bad, nil)); err == nil {
		t.Fatal("unknown script cluster must be rejected")
	}
}

// TestFederatedRejectsTooWideJob pins the admission bound: a job wider
// than every cluster is an input error on both federated drivers.
func TestFederatedRejectsTooWideJob(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 60)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := []platform.Cluster{{Procs: 2}, {Procs: 3}}
	if _, err := sim.RunFederated(w, fedOf(core.EASY(), small, nil, nil, nil)); err == nil {
		t.Fatal("preloading federated run accepted an over-wide job")
	}
	if _, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), fedOf(core.EASY(), small, nil, nil, nil)); err == nil {
		t.Fatal("streaming federated run accepted an over-wide job")
	}
}
