package sim_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The differential layer of the live driver: RunLive over a command
// stream derived from (trace, script) must be decision- and
// metrics-identical to RunStream over the same trace — the schedd
// daemon's correctness argument reduces to this file plus the
// sequencer's ordering guarantee (internal/schedd/replay_diff_test.go
// re-proves the same identity across a real concurrency boundary).

// commandRank orders commands within one instant: submissions first,
// so a same-instant cancel binds the job it targets exactly as
// RunStream's admit-before-pop discipline does, then the remaining
// kinds in their event-queue order.
func commandRank(k sim.CommandKind) int {
	switch k {
	case sim.CmdSubmit:
		return 0
	case sim.CmdCancel:
		return 1
	case sim.CmdDrain:
		return 2
	case sim.CmdRestore:
		return 3
	}
	return 4
}

// traceCommands lowers a preloaded workload plus an optional script
// into the equivalent ordered command stream. The sort is stable, so
// same-instant same-kind commands keep trace/script order — the
// insertion order RunStream's setup produces.
func traceCommands(w *trace.Workload, script *scenario.Script) []sim.Command {
	var cmds []sim.Command
	for i := range w.Jobs {
		cmds = append(cmds, sim.SubmitCommand(w.Jobs[i]))
	}
	if script != nil {
		for _, ev := range script.Events {
			switch ev.Action {
			case scenario.Drain:
				cmds = append(cmds, sim.DrainCommand(ev.Time, ev.Procs))
			case scenario.Restore:
				cmds = append(cmds, sim.RestoreCommand(ev.Time, ev.Procs))
			case scenario.Cancel:
				cmds = append(cmds, sim.CancelCommand(ev.Time, ev.JobID))
			}
		}
	}
	sort.SliceStable(cmds, func(i, j int) bool {
		if cmds[i].Time != cmds[j].Time {
			return cmds[i].Time < cmds[j].Time
		}
		return commandRank(cmds[i].Kind) < commandRank(cmds[j].Kind)
	})
	return cmds
}

// runLiveCommands drives RunLive over a fixed command slice under fresh
// triple state.
func runLiveCommands(t *testing.T, name string, maxProcs int64, cmds []sim.Command, tr core.Triple) (*sim.Result, *recordingSink) {
	t.Helper()
	sink := newRecordingSink()
	cfg := tr.Config()
	cfg.Sink = sink
	res, err := sim.RunLive(name, maxProcs, sim.NewSliceCommands(cmds), cfg)
	if err != nil {
		t.Fatalf("RunLive(%s): %v", tr.Name(), err)
	}
	return res, sink
}

// runStreamRef is the reference run the live driver is held to.
func runStreamRef(t *testing.T, w *trace.Workload, tr core.Triple, script *scenario.Script) (*sim.Result, *recordingSink) {
	t.Helper()
	sink := newRecordingSink()
	cfg := tr.Config()
	cfg.Script = script
	cfg.Sink = sink
	res, err := sim.RunStream(w.Name, w.MaxProcs, workload.FromWorkload(w), cfg)
	if err != nil {
		t.Fatalf("RunStream(%s): %v", tr.Name(), err)
	}
	return res, sink
}

// TestLiveIdenticalAcrossPresets sweeps every preset across the full
// policy-triple grid: the command-driven loop must reproduce the
// streaming driver exactly, Perf counters included.
func TestLiveIdenticalAcrossPresets(t *testing.T) {
	triples := diffConfigs()
	for _, preset := range workload.PresetNames() {
		cfg, err := workload.Scaled(preset, 200)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cmds := traceCommands(w, nil)
		for _, tr := range triples {
			label := fmt.Sprintf("%s/%s", preset, tr.Name())
			ref, refSink := runStreamRef(t, w, tr, nil)
			liv, livSink := runLiveCommands(t, w.Name, w.MaxProcs, cmds, tr)
			assertIdentical(t, label, ref, liv, refSink, livSink)
		}
	}
}

// TestLiveIdenticalUnderCapacityCommands replays generated disruption
// scripts with their cancellations stripped (capacity changes only —
// cancel timing equivalence has its own tests below) as drain/restore
// commands, across intensities and seeds.
func TestLiveIdenticalUnderCapacityCommands(t *testing.T) {
	cfg, err := workload.Scaled("SDSC-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	triples := []core.Triple{core.EASYPlusPlus(), core.ClairvoyantSJBF(), core.ConservativeBF()}
	src := rng.New(0x11fe)
	for _, in := range scenario.Intensities {
		if in.Name == "none" {
			continue
		}
		seed := src.Uint64()
		script := scenario.Generate(w, in, seed)
		capOnly := &scenario.Script{Name: script.Name}
		for _, ev := range script.Events {
			if ev.Action != scenario.Cancel {
				capOnly.Events = append(capOnly.Events, ev)
			}
		}
		cmds := traceCommands(w, capOnly)
		for _, tr := range triples {
			label := fmt.Sprintf("%s/seed%x/%s", in.Name, seed, tr.Name())
			ref, refSink := runStreamRef(t, w, tr, capOnly)
			liv, livSink := runLiveCommands(t, w.Name, w.MaxProcs, cmds, tr)
			assertIdentical(t, label, ref, liv, refSink, livSink)
		}
	}
}

// TestLiveCancelCommandsIdentical pins the three cancellation paths a
// live client can hit — cancel before submission, cancel at the submit
// instant, cancel of a job that is queued or running — against the
// streaming engine's script semantics. Targets are long jobs canceled
// right after submission, so no tested policy can retire one before
// its cancel fires (the one case the drivers are documented to
// diverge on; see TestLiveRetiredCancelIsBenign).
func TestLiveCancelCommandsIdentical(t *testing.T) {
	cfg, err := workload.Scaled("CTC-SP2", 250)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var events []scenario.Event
	long := 0
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if j.RunTime < 1000 {
			continue
		}
		switch long % 3 {
		case 0: // before submission
			tc := j.SubmitTime - 5
			if tc < 0 {
				tc = 0
			}
			events = append(events, scenario.Event{Time: tc, Action: scenario.Cancel, JobID: j.JobNumber})
		case 1: // at the submit instant
			events = append(events, scenario.Event{Time: j.SubmitTime, Action: scenario.Cancel, JobID: j.JobNumber})
		case 2: // queued or running, long before it can finish
			events = append(events, scenario.Event{Time: j.SubmitTime + 1, Action: scenario.Cancel, JobID: j.JobNumber})
		}
		long++
		if long == 30 {
			break
		}
	}
	if long < 10 {
		t.Fatalf("workload too short on long jobs: %d", long)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	script := &scenario.Script{Name: "live-cancels", Events: events}
	cmds := traceCommands(w, script)
	for _, tr := range diffConfigs() {
		label := "cancels/" + tr.Name()
		ref, refSink := runStreamRef(t, w, tr, script)
		liv, livSink := runLiveCommands(t, w.Name, w.MaxProcs, cmds, tr)
		assertIdentical(t, label, ref, liv, refSink, livSink)
		if ref.Canceled == 0 {
			t.Fatalf("%s: script canceled nothing", label)
		}
	}
}

// TestLiveAdvanceIsPureLiveness interleaves advance promises through
// the command stream — one per submission, plus a far-future promise
// after the last — and requires byte-identical results: advances let
// the loop retire events early but must never change a decision.
func TestLiveAdvanceIsPureLiveness(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 300)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := traceCommands(w, nil)
	var paced []sim.Command
	for _, c := range plain {
		paced = append(paced, sim.AdvanceCommand(c.Time), c)
	}
	paced = append(paced, sim.AdvanceCommand(1<<40))
	for _, tr := range []core.Triple{core.EASYPlusPlus(), core.ConservativeBF(), core.PaperBest()} {
		ref, refSink := runStreamRef(t, w, tr, nil)
		liv, livSink := runLiveCommands(t, w.Name, w.MaxProcs, paced, tr)
		assertIdentical(t, "paced/"+tr.Name(), ref, liv, refSink, livSink)
	}
}

// TestLiveRetiredCancelIsBenign pins the documented divergence: a
// cancel command naming an already-retired job pops as a
// cancel-before-submission — one benign extra scheduling pass against
// unchanged state — so only PickCalls may exceed the reference.
func TestLiveRetiredCancelIsBenign(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 150)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.EASYPlusPlus()
	ref, refSink := runStreamRef(t, w, tr, nil)

	// Cancel the first job long after the whole trace has drained.
	cmds := traceCommands(w, nil)
	cmds = append(cmds, sim.CancelCommand(ref.Makespan+1000, w.Jobs[0].JobNumber))
	liv, livSink := runLiveCommands(t, w.Name, w.MaxProcs, cmds, tr)

	if len(refSink.seq) != len(livSink.seq) {
		t.Fatalf("retirement counts differ: %d vs %d", len(refSink.seq), len(livSink.seq))
	}
	for i := range refSink.seq {
		if refSink.seq[i] != livSink.seq[i] {
			t.Fatalf("retirement %d differs: %+v vs %+v", i, refSink.seq[i], livSink.seq[i])
		}
	}
	if liv.Canceled != ref.Canceled || liv.Finished != ref.Finished || liv.Makespan != ref.Makespan {
		t.Fatalf("counters diverged: %+v vs %+v", liv, ref)
	}
	if liv.Perf.Events != ref.Perf.Events+1 {
		t.Fatalf("expected exactly one extra pop, got %d vs %d", liv.Perf.Events, ref.Perf.Events)
	}
	if liv.Perf.PickCalls <= ref.Perf.PickCalls {
		t.Fatalf("expected the benign extra pass to call Pick, got %d vs %d", liv.Perf.PickCalls, ref.Perf.PickCalls)
	}
}

// TestLiveRejects pins the live loop's input validation.
func TestLiveRejects(t *testing.T) {
	rec := func(id, submit, run, procs int64) swf.Job {
		return swf.Job{JobNumber: id, SubmitTime: submit, RunTime: run, RequestedProcs: procs, RequestedTime: run * 2}
	}
	cases := []struct {
		name string
		cmds []sim.Command
		want string
	}{
		{"unordered", []sim.Command{sim.SubmitCommand(rec(1, 100, 10, 1)), sim.SubmitCommand(rec(2, 50, 10, 1))}, "not time-ordered"},
		{"advance-regression", []sim.Command{sim.AdvanceCommand(100), sim.CancelCommand(50, 1)}, "not time-ordered"},
		{"wide", []sim.Command{sim.SubmitCommand(rec(1, 0, 10, 64))}, "wider"},
		{"mismatched-submit", []sim.Command{{Kind: sim.CmdSubmit, Time: 5, Job: rec(1, 9, 10, 1)}}, "submitting at"},
		{"zero-drain", []sim.Command{sim.DrainCommand(10, 0)}, "drain of"},
		{"zero-restore", []sim.Command{sim.RestoreCommand(10, 0)}, "restore of"},
		{"unknown-kind", []sim.Command{{Kind: sim.CommandKind(99), Time: 1}}, "unknown command kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.EASY().Config()
			_, err := sim.RunLive(tc.name, 4, sim.NewSliceCommands(tc.cmds), cfg)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}

	t.Run("script", func(t *testing.T) {
		cfg := core.EASY().Config()
		cfg.Script = &scenario.Script{Name: "s", Events: []scenario.Event{{Time: 1, Action: scenario.Drain, Procs: 1}}}
		if _, err := sim.RunLive("script", 4, sim.NewSliceCommands(nil), cfg); err == nil {
			t.Fatal("a live run with a Script must be rejected")
		}
	})
	t.Run("nil-source", func(t *testing.T) {
		cfg := core.EASY().Config()
		if _, err := sim.RunLive("nil", 4, nil, cfg); err == nil {
			t.Fatal("a nil source must be rejected")
		}
	})
	t.Run("unrestored-drain", func(t *testing.T) {
		cfg := core.EASY().Config()
		cmds := []sim.Command{
			sim.DrainCommand(0, 4),
			sim.SubmitCommand(rec(1, 1, 10, 1)),
		}
		if _, err := sim.RunLive("stranded", 4, sim.NewSliceCommands(cmds), cfg); err == nil {
			t.Fatal("a drained-out run with stranded jobs must error")
		}
	})
}
