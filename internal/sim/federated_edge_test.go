package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Routing edge cases: clusters drained to zero capacity, every cluster
// saturated under spillover, and clusters draining in the middle of a
// submission burst. Every test wraps the router under test in a checker
// that fails the test the moment a job is placed on a cluster whose
// eventual capacity cannot fit it while a fitting cluster existed — the
// invariant the routers' eligibility pass is supposed to maintain.

// checkingRouter asserts placement validity on every Route call.
type checkingRouter struct {
	inner  sched.Router
	t      *testing.T
	routes int
}

func (c *checkingRouter) Name() string { return c.inner.Name() }

func (c *checkingRouter) Route(j *job.Job, now int64, clusters []sched.ClusterState) int {
	c.t.Helper()
	pick := c.inner.Route(j, now, clusters)
	c.routes++
	if pick < 0 || pick >= len(clusters) {
		return pick // the engine panics on this; nothing to check
	}
	fits := false
	for _, cs := range clusters {
		if cs.Machine.EventualCapacity() >= j.Procs {
			fits = true
			break
		}
	}
	if fits && clusters[pick].Machine.EventualCapacity() < j.Procs {
		c.t.Errorf("%s routed job %d (%d procs) at t=%d to %s (eventual capacity %d) while a fitting cluster existed",
			c.inner.Name(), j.ID, j.Procs, now, clusters[pick].Name, clusters[pick].Machine.EventualCapacity())
	}
	return pick
}

func allRouters(t *testing.T) []sched.Router {
	routers := make([]sched.Router, 0, 4)
	for _, name := range []string{"round-robin", "least-loaded", "queue-depth", "spillover"} {
		r, err := sched.NewRouter(name)
		if err != nil {
			t.Fatal(err)
		}
		routers = append(routers, r)
	}
	return routers
}

func edgeWorkload(t *testing.T, preset string, jobs int) *trace.Workload {
	t.Helper()
	cfg, err := workload.Scaled(preset, jobs)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// span returns the workload's submission window.
func span(w *trace.Workload) (first, last int64) {
	first = w.Jobs[0].SubmitTime
	last = w.Jobs[len(w.Jobs)-1].SubmitTime
	return
}

// TestRouterAvoidsZeroCapacityCluster drains one cluster to zero before
// any job arrives and restores it only after the last submission: no
// router may place anything there while it is dead.
func TestRouterAvoidsZeroCapacityCluster(t *testing.T) {
	w := edgeWorkload(t, "KTH-SP2", 250)
	first, last := span(w)
	for _, router := range allRouters(t) {
		t.Run(router.Name(), func(t *testing.T) {
			clusters := []platform.Cluster{
				{Name: "live", Procs: w.MaxProcs},
				{Name: "dead", Procs: w.MaxProcs},
			}
			b := scenario.NewBuilder("blackout")
			b.DrainOn("dead", first-1, w.MaxProcs)
			b.RestoreOn("dead", last+1<<20, w.MaxProcs)
			script, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			check := &checkingRouter{inner: router, t: t}
			res, err := sim.RunFederated(w, fedOf(core.EASYPlusPlus(), clusters, check, script, nil))
			if err != nil {
				t.Fatal(err)
			}
			if errs := sim.ValidateResult(res); len(errs) != 0 {
				t.Fatalf("invalid schedule: %v", errs[0])
			}
			if res.Clusters[1].Routed != 0 {
				t.Errorf("%s routed %d jobs to the zero-capacity cluster", router.Name(), res.Clusters[1].Routed)
			}
			if res.Clusters[0].Routed != len(w.Jobs) || res.Finished != len(w.Jobs) {
				t.Errorf("live cluster got %d/%d jobs, finished %d", res.Clusters[0].Routed, len(w.Jobs), res.Finished)
			}
			if check.routes != len(w.Jobs) {
				t.Errorf("router consulted %d times, want once per job (%d)", check.routes, len(w.Jobs))
			}
		})
	}
}

// TestSpilloverAllSaturated: when every cluster is busy, spillover's
// free-capacity preference finds nothing and it must still place the
// job on an eligible cluster (first by index) rather than dropping it.
// Tiny clusters against a full-size workload keep everything saturated
// for most of the run.
func TestSpilloverAllSaturated(t *testing.T) {
	w := edgeWorkload(t, "KTH-SP2", 300)
	clusters := []platform.Cluster{
		{Name: "a", Procs: w.MaxProcs},
		{Name: "b", Procs: w.MaxProcs / 2},
		{Name: "c", Procs: w.MaxProcs / 2},
	}
	router, err := sched.NewRouter("spillover")
	if err != nil {
		t.Fatal(err)
	}
	check := &checkingRouter{inner: router, t: t}
	res, err := sim.RunFederated(w, fedOf(core.EASY(), clusters, check, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		t.Fatalf("invalid schedule: %v", errs[0])
	}
	if res.Finished != len(w.Jobs) {
		t.Fatalf("finished %d of %d jobs", res.Finished, len(w.Jobs))
	}
	var routed int
	for _, cr := range res.Clusters {
		routed += cr.Routed
	}
	if routed != len(w.Jobs) {
		t.Fatalf("routed %d of %d jobs", routed, len(w.Jobs))
	}
	// Saturation must actually have spilled work off the first cluster;
	// otherwise this test exercises nothing.
	if res.Clusters[1].Routed == 0 && res.Clusters[2].Routed == 0 {
		t.Fatalf("nothing spilled: %+v", res.Clusters)
	}
}

// TestRouterUnderMidBurstDrain drains half of each smaller cluster in
// the middle of the submission window and restores it before the end:
// routers see capacities shrink and recover mid-burst, and may never
// place a job on a cluster that cannot eventually fit it.
func TestRouterUnderMidBurstDrain(t *testing.T) {
	w := edgeWorkload(t, "SDSC-SP2", 250)
	first, last := span(w)
	mid := first + (last-first)/2
	for _, router := range allRouters(t) {
		t.Run(router.Name(), func(t *testing.T) {
			clusters := []platform.Cluster{
				{Name: "big", Procs: w.MaxProcs},
				{Name: "small", Procs: w.MaxProcs / 2},
			}
			b := scenario.NewBuilder("mid-burst")
			// The small cluster loses almost everything mid-burst: wide
			// jobs must stop routing there until the restore.
			b.DrainOn("small", mid, clusters[1].Procs-1)
			b.RestoreOn("small", mid+(last-mid)/2, clusters[1].Procs-1)
			script, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			check := &checkingRouter{inner: router, t: t}
			res, err := sim.RunFederated(w, fedOf(core.EASYPlusPlus(), clusters, check, script, nil))
			if err != nil {
				t.Fatal(err)
			}
			if errs := sim.ValidateResult(res); len(errs) != 0 {
				t.Fatalf("invalid schedule: %v", errs[0])
			}
			if res.Finished != len(w.Jobs) {
				t.Fatalf("finished %d of %d jobs", res.Finished, len(w.Jobs))
			}
			assertFederatedShape(t, fmt.Sprintf("mid-burst/%s", router.Name()), res)
		})
	}
}
