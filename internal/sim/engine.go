package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/correct"
	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/sched"
)

// payload is the event-queue payload: a job for job events, a processor
// count for capacity events. Streaming cancellations carry the target's
// job ID instead of a pointer (the job may not have been pulled from the
// source yet); the handler resolves it through the engine's target map.
// cluster aims a Drain or Restore at one member of a federated platform
// (always 0 on single-machine runs).
type payload struct {
	j       *job.Job
	procs   int64
	id      int64
	cluster int
}

// cancelTarget is the bounded bookkeeping a streaming run keeps for each
// job named by the scenario's cancellation events — the only jobs whose
// identity must be tracked across the whole run. The map is sized by the
// script, not the trace, so it is part of the O(window) envelope.
type cancelTarget struct {
	// j is the live job once submitted, nil before submission and after
	// the job leaves the system (so retired jobs stay collectable).
	j *job.Job
	// bound marks that the stream delivered the job.
	bound bool
	// canceled / finished mirror the job's terminal state.
	canceled bool
	finished bool
}

// clusterState is the live state of one member of the platform: its
// machine, its waiting queue, and its own policy/predictor session. A
// classic single-machine run is exactly one clusterState — no name, no
// speed scaling, no per-cluster result slot — which is how the federated
// engine stays byte-identical to the historical single-machine one.
type clusterState struct {
	name  string
	speed float64

	machine   *platform.Machine
	queue     []*job.Job
	policy    sched.Policy
	predictor predict.Predictor

	// sub points at this cluster's slot on Result.Clusters, nil on
	// single-machine runs (whose counters live on the Result alone).
	sub *ClusterResult
}

// engine is the shared event core all drivers run: Run/RunFederated
// (preloading) and RunStream/RunFederatedStream (bounded memory)
// construct one, seed its event queue, and feed popped events to handle.
// All scheduling semantics live here so the paths cannot drift. The
// engine drives one event loop over N independent cluster states; every
// event affects exactly one cluster, and only that cluster's policy is
// offered start decisions at the event's instant.
type engine struct {
	corrector correct.Corrector
	clusters  []*clusterState
	// router picks the destination cluster at submit time. Non-nil only
	// on federated runs; single-machine runs dispatch every job to
	// clusters[0] without consulting anything.
	router sched.Router
	// views is the router's reusable read-only snapshot of the clusters.
	views []sched.ClusterState
	q     eventq.Queue[payload]
	sink  JobSink
	res   *Result
	// targets is non-nil only on streaming runs with a cancellation
	// script; see cancelTarget.
	targets map[int64]*cancelTarget
	// arena, when non-nil (streaming runs), recycles a job's slot after
	// its natural completion retires it. Only the Finish path recycles:
	// a killed job may still have its original Finish event (and stale
	// expiries) queued, so its slot must stay untouched until the run
	// ends. A naturally finished job has no queued events left — every
	// expiry instant is strictly before the completion instant — and by
	// the JobSink contract no observer retains the pointer.
	arena *job.Arena

	// Flight-recorder state (trace.go). tracer and prof are nil on
	// unobserved runs; timed caches whether either is live so the hot
	// loop pays one branch, no clock reads and no allocations when off.
	tracer  obs.Tracer
	prof    *obs.StageProfile
	timed   bool
	eligIdx []int
	elig    []string

	// onPush, when non-nil, observes every cluster-local event (Finish,
	// Expiry) the engine schedules. The traced sharded driver uses it to
	// record push parentage for the deterministic trace replay
	// (parallel.go); every other run leaves it nil.
	onPush func(t int64, k eventq.Kind)
}

// push schedules a cluster-local event, notifying the push observer on
// instrumented sharded runs. Every Finish/Expiry push goes through
// here; the global kinds are pushed by the drivers directly.
func (e *engine) push(t int64, k eventq.Kind, p payload) {
	e.q.Push(t, k, p)
	if e.onPush != nil {
		e.onPush(t, k)
	}
}

// scaleTime converts a reference-speed duration to a cluster running at
// the given speed factor: ceil(x/speed), never rounding a positive
// duration down to zero.
func scaleTime(x int64, speed float64) int64 {
	if x <= 0 {
		return x
	}
	s := int64(math.Ceil(float64(x) / speed))
	if s < 1 {
		s = 1
	}
	return s
}

// recordCapacity appends to the cluster's realized capacity timeline,
// collapsing multiple changes at one instant into the last. Federated
// runs record onto the per-cluster result; single-machine runs onto the
// Result's own timeline, as they always have.
func (e *engine) recordCapacity(c *clusterState, now int64) {
	steps := &e.res.CapacitySteps
	if c.sub != nil {
		steps = &c.sub.CapacitySteps
	}
	cp := c.machine.Capacity()
	if n := len(*steps); n > 0 && (*steps)[n-1].At == now {
		(*steps)[n-1].Capacity = cp
		return
	}
	*steps = append(*steps, CapacityStep{At: now, Capacity: cp})
}

// route picks the destination cluster for a submission. Single-machine
// runs (nil router) dispatch to the sole cluster with the job untouched
// — the identity the differential tests pin. Federated runs consult the
// router over a fresh snapshot, stamp the job with its destination, and
// scale its runtime and kill bound by the cluster's speed factor.
func (e *engine) route(j *job.Job, now int64) *clusterState {
	if e.router == nil {
		return e.clusters[0]
	}
	for i, cs := range e.clusters {
		e.views[i] = sched.ClusterState{Name: cs.name, Machine: cs.machine, QueueLen: len(cs.queue)}
	}
	pick := e.router.Route(j, now, e.views)
	if pick < 0 || pick >= len(e.clusters) || e.clusters[pick].machine.Total() < j.Procs {
		panic(fmt.Sprintf("sim: router %s sent job %d (%d procs) to invalid cluster %d",
			e.router.Name(), j.ID, j.Procs, pick))
	}
	c := e.clusters[pick]
	j.Cluster = pick
	if c.sub != nil {
		c.sub.Routed++
	}
	if e.tracer != nil {
		e.traceRoute(c, j, now)
	}
	if c.speed != 1 {
		j.Runtime = scaleTime(j.Runtime, c.speed)
		j.Request = scaleTime(j.Request, c.speed)
	}
	return c
}

func (e *engine) startJob(c *clusterState, j *job.Job, now int64) {
	j.Started = true
	j.Start = now
	c.machine.Start(j)
	c.predictor.OnStart(j, now)
	c.policy.OnStart(j, now)
	if e.tracer != nil {
		e.traceStart(c, j, now)
	}
	e.push(now+j.Runtime, eventq.Finish, payload{j: j})
	if j.Prediction < j.Runtime {
		e.push(now+j.Prediction, eventq.Expiry, payload{j: j})
	}
}

func (e *engine) schedulePass(c *clusterState, now int64) {
	for {
		e.res.Perf.PickCalls++
		if c.sub != nil {
			c.sub.PickCalls++
		}
		var next *job.Job
		if !e.timed {
			next = c.policy.Pick(now, c.machine, c.queue)
		} else {
			t0 := time.Now()
			next = c.policy.Pick(now, c.machine, c.queue)
			ns := time.Since(t0).Nanoseconds()
			if e.prof != nil {
				e.prof.Observe(obs.StagePick, ns)
			}
			if e.tracer != nil {
				e.tracePick(c, now, next, len(c.queue), ns)
			}
		}
		if next == nil {
			return
		}
		removed := false
		for i, qj := range c.queue {
			if qj == next {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			panic(fmt.Sprintf("sim: policy %s picked job %d not in queue", c.policy.Name(), next.ID))
		}
		e.startJob(c, next, now)
	}
}

// release frees a running job's processors and reports whether a
// pending drain absorbed part of the release (a capacity change).
func (e *engine) release(c *clusterState, j *job.Job) (capacityChanged bool) {
	before := c.machine.Capacity()
	c.machine.Finish(j)
	return c.machine.Capacity() != before
}

// target returns the streaming cancel bookkeeping for a job ID, nil when
// not tracked (preloading runs, or jobs no script event names).
func (e *engine) target(id int64) *cancelTarget {
	if e.targets == nil {
		return nil
	}
	return e.targets[id]
}

// noteEnd folds a job's completion instant into the global and
// per-cluster makespans.
func (e *engine) noteEnd(c *clusterState, end int64) {
	if end > e.res.Makespan {
		e.res.Makespan = end
	}
	if c.sub != nil && end > c.sub.Makespan {
		c.sub.Makespan = end
	}
}

// retire marks a job's exit from the system: it is counted, its cancel
// bookkeeping (if any) is closed so the pointer can be collected, and
// the sink observes its realized schedule.
func (e *engine) retire(c *clusterState, j *job.Job) {
	e.res.Finished++
	if c.sub != nil {
		c.sub.Finished++
	}
	if tgt := e.target(j.ID); tgt != nil {
		tgt.finished = true
		tgt.j = nil
	}
	if e.sink != nil {
		e.sink.Observe(j)
	}
}

// handle processes one popped event and, unless the event was stale,
// runs the affected cluster's scheduling pass at its instant. The branch
// structure mirrors the paper's same-instant semantics; see the package
// comment.
func (e *engine) handle(ev eventq.Event[payload]) {
	now := ev.Time
	var c *clusterState
	switch ev.Kind {
	case eventq.Submit:
		j := ev.Payload.j
		if j.Canceled {
			return // canceled before submission: never enters the system
		}
		c = e.route(j, now)
		j.Prediction = j.ClampPrediction(c.predictor.Predict(j, now))
		j.SubmitPrediction = j.Prediction
		c.predictor.OnSubmit(j, now)
		c.queue = append(c.queue, j)
		c.policy.OnSubmit(j, now)
		if e.tracer != nil {
			e.traceSubmit(c, j, now)
		}
	case eventq.Finish:
		j := ev.Payload.j
		if j.Finished {
			return // stale: the job was killed by a cancellation
		}
		c = e.clusters[j.Cluster]
		changed := e.release(c, j)
		j.Finished = true
		j.End = now
		e.noteEnd(c, j.End)
		e.observeFinish(c, j, now)
		c.policy.OnFinish(j, now)
		if e.tracer != nil {
			e.traceFinish(c, j, now)
		}
		if changed {
			e.recordCapacity(c, now)
			if e.tracer != nil {
				e.traceCapacity(c, now, 0)
			}
			c.policy.OnCapacityChange(now, c.machine)
		}
		e.retire(c, j)
		if e.arena != nil {
			e.arena.Recycle(j)
		}
	case eventq.Cancel:
		var runPass bool
		c, runPass = e.handleCancel(ev.Payload, now)
		if !runPass {
			return
		}
	case eventq.Drain:
		c = e.clusters[ev.Payload.cluster]
		before := c.machine.Capacity()
		c.machine.Drain(ev.Payload.procs)
		if c.machine.Capacity() != before {
			e.recordCapacity(c, now)
		}
		if e.tracer != nil {
			// Traced even when fully pending: the eventual capacity
			// changed, which is what planning views react to.
			e.traceCapacity(c, now, -ev.Payload.procs)
		}
		// Even a fully pending drain changes the eventual capacity
		// every availability view plans against.
		c.policy.OnCapacityChange(now, c.machine)
	case eventq.Restore:
		c = e.clusters[ev.Payload.cluster]
		before := c.machine.Capacity()
		c.machine.Restore(ev.Payload.procs)
		if c.machine.Capacity() != before {
			e.recordCapacity(c, now)
		}
		if e.tracer != nil {
			e.traceCapacity(c, now, ev.Payload.procs)
		}
		c.policy.OnCapacityChange(now, c.machine)
	case eventq.Expiry:
		j := ev.Payload.j
		if j.Finished || !j.Started {
			return // stale: the job completed at this same instant or earlier
		}
		if j.PredictedEnd() > now {
			return // stale: a correction already extended the prediction
		}
		c = e.clusters[j.Cluster]
		elapsed := now - j.Start
		next := e.corrector.Correct(elapsed, j.Request, j.Corrections)
		next = j.ClampPrediction(next)
		if next <= elapsed {
			// Progress guard: a correction that does not extend the
			// prediction would loop; push it just past the present.
			next = elapsed + 1
			if next > j.Request {
				next = j.Request
			}
		}
		j.Prediction = next
		j.Corrections++
		e.res.Corrections++
		if c.sub != nil {
			c.sub.Corrections++
		}
		c.policy.OnExpiry(j, now)
		if e.tracer != nil {
			e.traceCorrect(c, j, now)
		}
		if j.PredictedEnd() < j.Start+j.Runtime {
			e.push(j.PredictedEnd(), eventq.Expiry, payload{j: j})
		}
	}
	if c.sub != nil {
		c.sub.Events++
	}
	e.schedulePass(c, now)
}

// handleCancel removes a job from the system — before submission, from
// its cluster's queue, or killing it mid-run — and reports the affected
// cluster and whether the scheduling pass should run (false only for
// stale cancellations).
func (e *engine) handleCancel(p payload, now int64) (c *clusterState, runPass bool) {
	j := p.j
	if j == nil {
		// Streaming: resolve the target by ID. An unbound entry is a job
		// the source has not delivered yet (or never will): mark it so a
		// later submission is dropped on arrival — the preloading path's
		// "canceled before submission".
		tgt := e.target(p.id)
		if tgt == nil || tgt.finished || tgt.canceled {
			return nil, false
		}
		if tgt.j == nil {
			tgt.canceled = true
			// The job was never routed, so no cluster state changed; the
			// pass runs where a single-machine run would run it.
			return e.clusters[0], true
		}
		j = tgt.j
	}
	if j.Finished || j.Canceled {
		return nil, false // stale: already completed or already canceled
	}
	j.Canceled = true
	e.res.Canceled++
	if tgt := e.target(j.ID); tgt != nil {
		tgt.canceled = true
	}
	c = e.clusters[j.Cluster]
	if e.tracer != nil && j.Started {
		e.traceCancel(c, j, now)
	}
	if j.Started {
		// Kill the running job: it occupied the machine for exactly
		// now-Start seconds, which becomes its realized runtime.
		if c.sub != nil {
			c.sub.Canceled++
		}
		changed := e.release(c, j)
		j.Finished = true
		j.End = now
		j.Runtime = now - j.Start
		e.noteEnd(c, j.End)
		e.observeFinish(c, j, now)
		c.policy.OnCancel(j, now)
		if e.tracer != nil {
			// A killed job still retires with a realized schedule; the
			// finish event carries it, like the sink observation does.
			e.traceFinish(c, j, now)
		}
		if changed {
			e.recordCapacity(c, now)
			if e.tracer != nil {
				e.traceCapacity(c, now, 0)
			}
			c.policy.OnCapacityChange(now, c.machine)
		}
		e.retire(c, j)
		return c, true
	}
	// Still waiting (or, if absent from the queue, not yet submitted —
	// the Submit event will observe Canceled). A queued job was routed,
	// so its cluster index is authoritative; an unrouted one leaves no
	// per-cluster trace.
	removed := false
	for i, qj := range c.queue {
		if qj == j {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			c.policy.OnCancel(j, now)
			if c.sub != nil {
				c.sub.Canceled++
			}
			removed = true
			break
		}
	}
	if e.tracer != nil {
		// A queued job's cluster is authoritative; an unsubmitted one
		// belongs to none yet.
		if removed {
			e.traceCancel(c, j, now)
		} else {
			e.traceCancel(nil, j, now)
		}
	}
	if tgt := e.target(j.ID); tgt != nil {
		tgt.j = nil // never runs; release the pointer
	}
	return c, true
}

// queuedJobs counts waiting jobs across every cluster, returning one of
// them for error reporting.
func (e *engine) queuedJobs() (n int, first *job.Job) {
	for _, c := range e.clusters {
		n += len(c.queue)
		if first == nil && len(c.queue) > 0 {
			first = c.queue[0]
		}
	}
	return n, first
}

// runningJobs counts running jobs across every cluster.
func (e *engine) runningJobs() int {
	n := 0
	for _, c := range e.clusters {
		n += c.machine.RunningCount()
	}
	return n
}
