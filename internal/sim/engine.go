package sim

import (
	"fmt"

	"repro/internal/correct"
	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/platform"
)

// payload is the event-queue payload: a job for job events, a processor
// count for capacity events. Streaming cancellations carry the target's
// job ID instead of a pointer (the job may not have been pulled from the
// source yet); the handler resolves it through the engine's target map.
type payload struct {
	j     *job.Job
	procs int64
	id    int64
}

// cancelTarget is the bounded bookkeeping a streaming run keeps for each
// job named by the scenario's cancellation events — the only jobs whose
// identity must be tracked across the whole run. The map is sized by the
// script, not the trace, so it is part of the O(window) envelope.
type cancelTarget struct {
	// j is the live job once submitted, nil before submission and after
	// the job leaves the system (so retired jobs stay collectable).
	j *job.Job
	// bound marks that the stream delivered the job.
	bound bool
	// canceled / finished mirror the job's terminal state.
	canceled bool
	finished bool
}

// engine is the shared event core both drivers run: Run (preloading) and
// RunStream (bounded memory) construct one, seed its event queue, and
// feed popped events to handle. All scheduling semantics live here so
// the two paths cannot drift.
type engine struct {
	cfg       Config
	corrector correct.Corrector
	machine   *platform.Machine
	queue     []*job.Job
	q         eventq.Queue[payload]
	sink      JobSink
	res       *Result
	// targets is non-nil only on streaming runs with a cancellation
	// script; see cancelTarget.
	targets map[int64]*cancelTarget
}

// recordCapacity appends to the realized capacity timeline, collapsing
// multiple changes at one instant into the last.
func (e *engine) recordCapacity(now int64) {
	c := e.machine.Capacity()
	if n := len(e.res.CapacitySteps); n > 0 && e.res.CapacitySteps[n-1].At == now {
		e.res.CapacitySteps[n-1].Capacity = c
		return
	}
	e.res.CapacitySteps = append(e.res.CapacitySteps, CapacityStep{At: now, Capacity: c})
}

func (e *engine) startJob(j *job.Job, now int64) {
	j.Started = true
	j.Start = now
	e.machine.Start(j)
	e.cfg.Predictor.OnStart(j, now)
	e.cfg.Policy.OnStart(j, now)
	e.q.Push(now+j.Runtime, eventq.Finish, payload{j: j})
	if j.Prediction < j.Runtime {
		e.q.Push(now+j.Prediction, eventq.Expiry, payload{j: j})
	}
}

func (e *engine) schedulePass(now int64) {
	for {
		e.res.Perf.PickCalls++
		next := e.cfg.Policy.Pick(now, e.machine, e.queue)
		if next == nil {
			return
		}
		removed := false
		for i, qj := range e.queue {
			if qj == next {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				removed = true
				break
			}
		}
		if !removed {
			panic(fmt.Sprintf("sim: policy %s picked job %d not in queue", e.cfg.Policy.Name(), next.ID))
		}
		e.startJob(next, now)
	}
}

// release frees a running job's processors and reports whether a
// pending drain absorbed part of the release (a capacity change).
func (e *engine) release(j *job.Job) (capacityChanged bool) {
	before := e.machine.Capacity()
	e.machine.Finish(j)
	return e.machine.Capacity() != before
}

// target returns the streaming cancel bookkeeping for a job ID, nil when
// not tracked (preloading runs, or jobs no script event names).
func (e *engine) target(id int64) *cancelTarget {
	if e.targets == nil {
		return nil
	}
	return e.targets[id]
}

// retire marks a job's exit from the system: it is counted, its cancel
// bookkeeping (if any) is closed so the pointer can be collected, and
// the sink observes its realized schedule.
func (e *engine) retire(j *job.Job) {
	e.res.Finished++
	if tgt := e.target(j.ID); tgt != nil {
		tgt.finished = true
		tgt.j = nil
	}
	if e.sink != nil {
		e.sink.Observe(j)
	}
}

// handle processes one popped event and, unless the event was stale,
// runs the scheduling pass at its instant. The branch structure mirrors
// the paper's same-instant semantics; see the package comment.
func (e *engine) handle(ev eventq.Event[payload]) {
	now := ev.Time
	switch ev.Kind {
	case eventq.Submit:
		j := ev.Payload.j
		if j.Canceled {
			return // canceled before submission: never enters the system
		}
		j.Prediction = j.ClampPrediction(e.cfg.Predictor.Predict(j, now))
		j.SubmitPrediction = j.Prediction
		e.cfg.Predictor.OnSubmit(j, now)
		e.queue = append(e.queue, j)
		e.cfg.Policy.OnSubmit(j, now)
	case eventq.Finish:
		j := ev.Payload.j
		if j.Finished {
			return // stale: the job was killed by a cancellation
		}
		changed := e.release(j)
		j.Finished = true
		j.End = now
		if j.End > e.res.Makespan {
			e.res.Makespan = j.End
		}
		e.cfg.Predictor.OnFinish(j, now)
		e.cfg.Policy.OnFinish(j, now)
		if changed {
			e.recordCapacity(now)
			e.cfg.Policy.OnCapacityChange(now, e.machine)
		}
		e.retire(j)
	case eventq.Cancel:
		if !e.handleCancel(ev.Payload, now) {
			return
		}
	case eventq.Drain:
		before := e.machine.Capacity()
		e.machine.Drain(ev.Payload.procs)
		if e.machine.Capacity() != before {
			e.recordCapacity(now)
		}
		// Even a fully pending drain changes the eventual capacity
		// every availability view plans against.
		e.cfg.Policy.OnCapacityChange(now, e.machine)
	case eventq.Restore:
		before := e.machine.Capacity()
		e.machine.Restore(ev.Payload.procs)
		if e.machine.Capacity() != before {
			e.recordCapacity(now)
		}
		e.cfg.Policy.OnCapacityChange(now, e.machine)
	case eventq.Expiry:
		j := ev.Payload.j
		if j.Finished || !j.Started {
			return // stale: the job completed at this same instant or earlier
		}
		if j.PredictedEnd() > now {
			return // stale: a correction already extended the prediction
		}
		elapsed := now - j.Start
		next := e.corrector.Correct(elapsed, j.Request, j.Corrections)
		next = j.ClampPrediction(next)
		if next <= elapsed {
			// Progress guard: a correction that does not extend the
			// prediction would loop; push it just past the present.
			next = elapsed + 1
			if next > j.Request {
				next = j.Request
			}
		}
		j.Prediction = next
		j.Corrections++
		e.res.Corrections++
		e.cfg.Policy.OnExpiry(j, now)
		if j.PredictedEnd() < j.Start+j.Runtime {
			e.q.Push(j.PredictedEnd(), eventq.Expiry, payload{j: j})
		}
	}
	e.schedulePass(now)
}

// handleCancel removes a job from the system — before submission, from
// the queue, or killing it mid-run — and reports whether the scheduling
// pass should run (false only for stale cancellations).
func (e *engine) handleCancel(p payload, now int64) (runPass bool) {
	j := p.j
	if j == nil {
		// Streaming: resolve the target by ID. An unbound entry is a job
		// the source has not delivered yet (or never will): mark it so a
		// later submission is dropped on arrival — the preloading path's
		// "canceled before submission".
		tgt := e.target(p.id)
		if tgt == nil || tgt.finished || tgt.canceled {
			return false
		}
		if tgt.j == nil {
			tgt.canceled = true
			return true
		}
		j = tgt.j
	}
	if j.Finished || j.Canceled {
		return false // stale: already completed or already canceled
	}
	j.Canceled = true
	e.res.Canceled++
	if tgt := e.target(j.ID); tgt != nil {
		tgt.canceled = true
	}
	if j.Started {
		// Kill the running job: it occupied the machine for exactly
		// now-Start seconds, which becomes its realized runtime.
		changed := e.release(j)
		j.Finished = true
		j.End = now
		j.Runtime = now - j.Start
		if j.End > e.res.Makespan {
			e.res.Makespan = j.End
		}
		e.cfg.Predictor.OnFinish(j, now)
		e.cfg.Policy.OnCancel(j, now)
		if changed {
			e.recordCapacity(now)
			e.cfg.Policy.OnCapacityChange(now, e.machine)
		}
		e.retire(j)
		return true
	}
	// Still waiting (or, if absent from the queue, not yet submitted —
	// the Submit event will observe Canceled).
	for i, qj := range e.queue {
		if qj == j {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			e.cfg.Policy.OnCancel(j, now)
			break
		}
	}
	if tgt := e.target(j.ID); tgt != nil {
		tgt.j = nil // never runs; release the pointer
	}
	return true
}
