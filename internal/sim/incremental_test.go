package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/correct"
	"repro/internal/predict"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The incremental policies (persistent profile, SJBF index, decision
// caches) must be pure accelerations: decision-for-decision identical to
// the from-scratch reference formulations in sched/reference.go. These
// property tests replay random workloads (seeded via internal/rng, so
// failures reproduce exactly) through both and compare the realized
// schedules job by job.

// randomWorkload builds a random scheduling problem: bursty arrivals
// (many jobs share a submission instant), heavy width variation, and
// requested times that overestimate runtimes by a varying factor, so AVE2
// predictions undershoot and exercise the expiry/correction paths.
func randomWorkload(seed uint64) *trace.Workload {
	src := rng.New(seed)
	maxProcs := int64(8 + src.Intn(120))
	n := 150 + src.Intn(250)
	jobs := make([]swf.Job, n)
	var submit int64
	for i := range jobs {
		if !src.Bernoulli(0.3) { // 30% of jobs arrive at the same instant as the previous one
			submit += src.Int63n(120)
		}
		run := 1 + src.Int63n(600)
		procs := 1 + src.Int63n(maxProcs)
		jobs[i] = swf.Job{
			JobNumber:      int64(i + 1),
			SubmitTime:     submit,
			RunTime:        run,
			AllocatedProcs: procs,
			RequestedProcs: procs,
			RequestedTime:  run + src.Int63n(3*run),
			UserID:         int64(src.Intn(12)),
			Status:         1,
		}
	}
	return &trace.Workload{Name: fmt.Sprintf("rand-%d", seed), MaxProcs: maxProcs, Jobs: jobs}
}

// assertIdenticalSchedules runs the workload under both configurations
// and fails on the first divergent scheduling decision.
func assertIdenticalSchedules(t *testing.T, w *trace.Workload, label string, inc, ref sim.Config) {
	t.Helper()
	a, err := sim.Run(w, inc)
	if err != nil {
		t.Fatalf("%s: incremental run: %v", label, err)
	}
	b, err := sim.Run(w, ref)
	if err != nil {
		t.Fatalf("%s: reference run: %v", label, err)
	}
	if errs := sim.ValidateResult(a); len(errs) != 0 {
		t.Fatalf("%s: incremental schedule invalid: %v", label, errs[0])
	}
	if a.Corrections != b.Corrections {
		t.Errorf("%s: corrections diverged: incremental %d, reference %d", label, a.Corrections, b.Corrections)
	}
	for i := range a.Jobs {
		ja, jb := a.Jobs[i], b.Jobs[i]
		if ja.ID != jb.ID {
			t.Fatalf("%s: job order diverged at %d: %d vs %d", label, i, ja.ID, jb.ID)
		}
		if ja.Start != jb.Start || ja.End != jb.End {
			t.Fatalf("%s: job %d diverged: incremental [%d,%d), reference [%d,%d)",
				label, ja.ID, ja.Start, ja.End, jb.Start, jb.End)
		}
	}
}

// predictorConfigs enumerates the prediction regimes the comparison runs
// under: exact predictions (no expiries), overestimates that complete
// early (exercising Profile.Release compression), and user-history
// underestimates with corrections (exercising OnExpiry extension).
func predictorConfigs() []struct {
	name string
	mk   func() predict.Predictor
	corr correct.Corrector
} {
	return []struct {
		name string
		mk   func() predict.Predictor
		corr correct.Corrector
	}{
		{"clairvoyant", func() predict.Predictor { return predict.NewClairvoyant() }, correct.RequestedTime{}},
		{"requested", func() predict.Predictor { return predict.NewRequestedTime() }, correct.RequestedTime{}},
		{"ave2-incremental", func() predict.Predictor { return predict.NewUserAverage(2) }, correct.Incremental{}},
		{"ave2-doubling", func() predict.Predictor { return predict.NewUserAverage(2) }, correct.RecursiveDoubling{}},
	}
}

func TestIncrementalEASYMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		w := randomWorkload(seed)
		for _, order := range []sched.Order{sched.FCFSOrder, sched.SJBFOrder} {
			for _, pc := range predictorConfigs() {
				label := fmt.Sprintf("seed=%d order=%s pred=%s", seed, order, pc.name)
				assertIdenticalSchedules(t, w, label,
					sim.Config{Policy: sched.NewEASY(order), Predictor: pc.mk(), Corrector: pc.corr},
					sim.Config{Policy: sched.ReferenceEASY{Backfill: order}, Predictor: pc.mk(), Corrector: pc.corr},
				)
			}
		}
	}
}

func TestIncrementalConservativeMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		w := randomWorkload(seed)
		for _, pc := range predictorConfigs() {
			label := fmt.Sprintf("seed=%d pred=%s", seed, pc.name)
			assertIdenticalSchedules(t, w, label,
				sim.Config{Policy: sched.NewConservative(), Predictor: pc.mk(), Corrector: pc.corr},
				sim.Config{Policy: sched.ReferenceConservative{}, Predictor: pc.mk(), Corrector: pc.corr},
			)
		}
	}
}

// TestIncrementalMatchesReferenceOnPresets repeats the comparison on the
// realistic preset workloads the paper's evaluation uses.
func TestIncrementalMatchesReferenceOnPresets(t *testing.T) {
	for _, preset := range []string{"KTH-SP2", "Curie"} {
		cfg, err := workload.Scaled(preset, 400)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, pc := range predictorConfigs() {
			label := fmt.Sprintf("%s pred=%s sjbf", preset, pc.name)
			assertIdenticalSchedules(t, w, label,
				sim.Config{Policy: sched.NewEASY(sched.SJBFOrder), Predictor: pc.mk(), Corrector: pc.corr},
				sim.Config{Policy: sched.ReferenceEASY{Backfill: sched.SJBFOrder}, Predictor: pc.mk(), Corrector: pc.corr},
			)
			label = fmt.Sprintf("%s pred=%s conservative", preset, pc.name)
			assertIdenticalSchedules(t, w, label,
				sim.Config{Policy: sched.NewConservative(), Predictor: pc.mk(), Corrector: pc.corr},
				sim.Config{Policy: sched.ReferenceConservative{}, Predictor: pc.mk(), Corrector: pc.corr},
			)
		}
	}
}

// TestPolicyReuseAcrossRuns: reusing one policy instance for a second
// simulation must behave exactly like a fresh instance (the policy
// detects the machine swap and resets its incremental state).
func TestPolicyReuseAcrossRuns(t *testing.T) {
	w1, w2 := randomWorkload(101), randomWorkload(202)
	for _, mk := range []func() sched.Policy{
		func() sched.Policy { return sched.NewEASY(sched.SJBFOrder) },
		func() sched.Policy { return sched.NewConservative() },
	} {
		reused := mk()
		for _, w := range []*trace.Workload{w1, w2} {
			got, err := sim.Run(w, sim.Config{Policy: reused, Predictor: predict.NewUserAverage(2), Corrector: correct.Incremental{}})
			if err != nil {
				t.Fatalf("%s reused: %v", reused.Name(), err)
			}
			want, err := sim.Run(w, sim.Config{Policy: mk(), Predictor: predict.NewUserAverage(2), Corrector: correct.Incremental{}})
			if err != nil {
				t.Fatalf("%s fresh: %v", reused.Name(), err)
			}
			for i := range got.Jobs {
				if got.Jobs[i].Start != want.Jobs[i].Start {
					t.Fatalf("%s on %s: job %d start %d, fresh policy says %d",
						reused.Name(), w.Name, got.Jobs[i].ID, got.Jobs[i].Start, want.Jobs[i].Start)
				}
			}
		}
	}
}
