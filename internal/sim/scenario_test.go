package sim_test

import (
	"fmt"
	"testing"

	"repro/internal/correct"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/trace"
)

// The dynamic-events subsystem must be a pure extension: an empty
// scenario reproduces the static engine decision for decision, and under
// randomized disruption scripts the incremental policies still match the
// from-scratch references while no schedule ever exceeds the
// instantaneous (realized) capacity.

func allPolicies() []struct {
	name string
	mk   func() sched.Policy
} {
	return []struct {
		name string
		mk   func() sched.Policy
	}{
		{"fcfs", func() sched.Policy { return sched.NewFCFS() }},
		{"easy", func() sched.Policy { return sched.NewEASY(sched.FCFSOrder) }},
		{"easy-sjbf", func() sched.Policy { return sched.NewEASY(sched.SJBFOrder) }},
		{"conservative", func() sched.Policy { return sched.NewConservative() }},
		{"ref-easy", func() sched.Policy { return sched.ReferenceEASY{Backfill: sched.FCFSOrder} }},
		{"ref-easy-sjbf", func() sched.Policy { return sched.ReferenceEASY{Backfill: sched.SJBFOrder} }},
		{"ref-conservative", func() sched.Policy { return sched.ReferenceConservative{} }},
	}
}

// TestEmptyScenarioIsIdentity: with an empty (or nil) script, every
// policy — incremental and reference — produces exactly the schedule the
// static engine produces.
func TestEmptyScenarioIsIdentity(t *testing.T) {
	empty := scenario.NewBuilder("empty").MustBuild()
	for seed := uint64(1); seed <= 4; seed++ {
		w := randomWorkload(seed)
		for _, p := range allPolicies() {
			label := fmt.Sprintf("seed=%d policy=%s", seed, p.name)
			assertIdenticalSchedules(t, w, label,
				sim.Config{Policy: p.mk(), Predictor: predict.NewUserAverage(2), Corrector: correct.Incremental{}, Script: empty},
				sim.Config{Policy: p.mk(), Predictor: predict.NewUserAverage(2), Corrector: correct.Incremental{}},
			)
		}
	}
}

// disruptedConfigs pairs each incremental policy with its reference
// under one shared script.
func disruptedConfigs(script *scenario.Script) []struct {
	name     string
	inc, ref sim.Config
} {
	mkPred := func() predict.Predictor { return predict.NewUserAverage(2) }
	return []struct {
		name     string
		inc, ref sim.Config
	}{
		{
			"easy",
			sim.Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: mkPred(), Corrector: correct.Incremental{}, Script: script},
			sim.Config{Policy: sched.ReferenceEASY{Backfill: sched.FCFSOrder}, Predictor: mkPred(), Corrector: correct.Incremental{}, Script: script},
		},
		{
			"easy-sjbf",
			sim.Config{Policy: sched.NewEASY(sched.SJBFOrder), Predictor: mkPred(), Corrector: correct.Incremental{}, Script: script},
			sim.Config{Policy: sched.ReferenceEASY{Backfill: sched.SJBFOrder}, Predictor: mkPred(), Corrector: correct.Incremental{}, Script: script},
		},
		{
			"conservative",
			sim.Config{Policy: sched.NewConservative(), Predictor: mkPred(), Corrector: correct.Incremental{}, Script: script},
			sim.Config{Policy: sched.ReferenceConservative{}, Predictor: mkPred(), Corrector: correct.Incremental{}, Script: script},
		},
	}
}

// TestDisruptedIncrementalMatchesReference: under randomized disruption
// scripts (maintenance windows, drains, cancellations at every
// intensity), the incremental policies remain decision-for-decision
// identical to the references, and both schedules validate against the
// realized capacity timeline.
func TestDisruptedIncrementalMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		w := randomWorkload(seed)
		for _, in := range scenario.Intensities[1:] { // skip "none": covered by the identity test
			script := scenario.Generate(w, in, seed*1000+7)
			for _, c := range disruptedConfigs(script) {
				label := fmt.Sprintf("seed=%d intensity=%s policy=%s", seed, in.Name, c.name)
				assertIdenticalSchedules(t, w, label, c.inc, c.ref)
			}
		}
	}
}

// scriptedWorkload builds a fixed 8-processor scheduling problem used by
// the cancel and capacity tests below.
func scriptedWorkload(jobs ...swf.Job) *trace.Workload {
	return &trace.Workload{Name: "scripted", MaxProcs: 8, Jobs: jobs}
}

func mkSWF(id, submit, run, procs, req int64) swf.Job {
	return swf.Job{JobNumber: id, SubmitTime: submit, RunTime: run,
		AllocatedProcs: procs, RequestedProcs: procs, RequestedTime: req, Status: 1}
}

func runScripted(t *testing.T, w *trace.Workload, script *scenario.Script, policy sched.Policy) *sim.Result {
	t.Helper()
	res, err := sim.Run(w, sim.Config{
		Policy:    policy,
		Predictor: predict.NewRequestedTime(),
		Script:    script,
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs := sim.ValidateResult(res); len(errs) != 0 {
		t.Fatalf("invalid schedule: %v", errs[0])
	}
	return res
}

// TestCancelStateMachine drives one job through each cancellation state:
// before submission, while queued, while running, and after completion
// (stale).
func TestCancelStateMachine(t *testing.T) {
	w := scriptedWorkload(
		mkSWF(1, 0, 100, 8, 200), // runs [0,100) on the whole machine
		mkSWF(2, 0, 50, 8, 100),  // queued behind job 1, canceled at t=10
		mkSWF(3, 5, 50, 4, 100),  // canceled at t=2, before submission
		mkSWF(4, 0, 400, 4, 500), // starts at 100, killed at 130 after 30s
		mkSWF(5, 0, 10, 4, 20),   // starts at 100, finishes 110; stale cancel at 150
		mkSWF(6, 100, 10, 8, 20), // keeps the machine drained of idle time
	)
	script := scenario.NewBuilder("cancels").
		Cancel(2, 3).   // pre-submission
		Cancel(10, 2).  // queued
		Cancel(130, 4). // running
		Cancel(150, 5). // after completion: stale
		MustBuild()
	res := runScripted(t, w, script, sched.NewEASY(sched.SJBFOrder))

	if res.Canceled != 3 {
		t.Fatalf("canceled = %d, want 3 (the stale cancel is a no-op)", res.Canceled)
	}
	byID := map[int64]int{}
	for i, j := range res.Jobs {
		byID[j.ID] = i
	}
	j3 := res.Jobs[byID[3]]
	if !j3.Canceled || j3.Started || j3.Finished {
		t.Fatalf("pre-submit cancel: %+v", j3)
	}
	j2 := res.Jobs[byID[2]]
	if !j2.Canceled || j2.Started {
		t.Fatalf("queued cancel: %+v", j2)
	}
	j4 := res.Jobs[byID[4]]
	if !j4.Canceled || !j4.Started || !j4.Finished {
		t.Fatalf("running cancel: %+v", j4)
	}
	if j4.End != 130 || j4.Runtime != j4.End-j4.Start {
		t.Fatalf("killed job end=%d runtime=%d start=%d", j4.End, j4.Runtime, j4.Start)
	}
	j5 := res.Jobs[byID[5]]
	if j5.Canceled || !j5.Finished || j5.Runtime != 10 {
		t.Fatalf("stale cancel must not touch a completed job: %+v", j5)
	}
}

// TestMaintenanceWindowDelaysWideJob: during a maintenance window the
// machine cannot host a job wider than the remaining capacity; the job
// starts once the window ends and the capacity timeline records the
// steps.
func TestMaintenanceWindowDelaysWideJob(t *testing.T) {
	w := scriptedWorkload(
		mkSWF(1, 0, 10, 2, 20),  // warm-up job
		mkSWF(2, 30, 40, 7, 80), // wider than the 8-6=2 procs left in the window
	)
	script := scenario.NewBuilder("mw").Maintenance(20, 100, 6).MustBuild()
	for _, p := range allPolicies() {
		res := runScripted(t, w, script, p.mk())
		j2 := res.Jobs[1]
		if j2.Start != 100 {
			t.Fatalf("%s: wide job started at %d, want 100 (window end)", p.name, j2.Start)
		}
		if len(res.CapacitySteps) == 0 {
			t.Fatalf("%s: no capacity steps recorded", p.name)
		}
		first := res.CapacitySteps[0]
		if first.At != 20 || first.Capacity != 2 {
			t.Fatalf("%s: first capacity step %+v, want {20 2}", p.name, first)
		}
		last := res.CapacitySteps[len(res.CapacitySteps)-1]
		if last.Capacity != 8 {
			t.Fatalf("%s: final capacity %d, want 8 (restored)", p.name, last.Capacity)
		}
	}
}

// TestGracefulDrainWaitsForRunningJob: a drain wider than the idle pool
// goes pending and absorbs the running job's processors when it
// completes; nothing can start in between even though predictions say
// processors will free up.
func TestGracefulDrainWaitsForRunningJob(t *testing.T) {
	w := scriptedWorkload(
		mkSWF(1, 0, 60, 6, 100), // runs [0,60)
		mkSWF(2, 10, 10, 4, 20), // wants 4 procs; eventual capacity is 2 until restore
	)
	script := scenario.NewBuilder("drain").Drain(5, 6).Restore(200, 6).MustBuild()
	for _, p := range allPolicies() {
		res := runScripted(t, w, script, p.mk())
		j2 := res.Jobs[1]
		if j2.Start != 200 {
			t.Fatalf("%s: job 2 started at %d, want 200 (after restore)", p.name, j2.Start)
		}
	}
}

// TestFullDrainParksTheMachine: draining everything stalls all starts;
// the restore revives the queue. Exercises the zero-eventual-capacity
// profile path.
func TestFullDrainParksTheMachine(t *testing.T) {
	w := scriptedWorkload(
		mkSWF(1, 10, 20, 4, 40),
		mkSWF(2, 12, 20, 8, 40),
		mkSWF(3, 14, 20, 1, 40),
	)
	script := scenario.NewBuilder("blackout").Drain(0, 8).Restore(500, 8).MustBuild()
	for _, p := range allPolicies() {
		res := runScripted(t, w, script, p.mk())
		for _, j := range res.Jobs {
			if j.Start < 500 {
				t.Fatalf("%s: job %d started at %d during the blackout", p.name, j.ID, j.Start)
			}
		}
	}
}

// TestCancelFreesCapacityForBackfill: killing a running job releases its
// processors to waiting work immediately.
func TestCancelFreesCapacityForBackfill(t *testing.T) {
	w := scriptedWorkload(
		mkSWF(1, 0, 300, 8, 400), // hogs the machine until killed at t=50
		mkSWF(2, 10, 30, 8, 60),
	)
	script := scenario.NewBuilder("kill").Cancel(50, 1).MustBuild()
	for _, p := range allPolicies() {
		res := runScripted(t, w, script, p.mk())
		j2 := res.Jobs[1]
		if j2.Start != 50 {
			t.Fatalf("%s: job 2 started at %d, want 50 (right after the kill)", p.name, j2.Start)
		}
	}
}
