package sim

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/swf"
)

// CommandKind enumerates the operations a live command stream can
// carry into RunLive. The zero value is CmdSubmit, so a Command built
// from a bare submission record is a submission.
type CommandKind uint8

const (
	// CmdSubmit submits one job; Command.Job holds the record and
	// Command.Time must equal its SubmitTime.
	CmdSubmit CommandKind = iota
	// CmdCancel removes the job with Command.ID from the system at
	// Command.Time — before submission, from the queue, or killing it
	// mid-run — with exactly the scenario-cancellation semantics.
	CmdCancel
	// CmdDrain gracefully takes Command.Procs processors out of
	// service at Command.Time.
	CmdDrain
	// CmdRestore returns Command.Procs processors to service at
	// Command.Time.
	CmdRestore
	// CmdAdvance carries no operation; it is the source's promise that
	// no later command will carry a Time below Command.Time, which
	// lets the loop process queued events strictly before that instant
	// without blocking for the next command. Real-time daemons emit
	// these as the wall clock advances.
	CmdAdvance
)

// String names the command kind for errors and logs.
func (k CommandKind) String() string {
	switch k {
	case CmdSubmit:
		return "submit"
	case CmdCancel:
		return "cancel"
	case CmdDrain:
		return "drain"
	case CmdRestore:
		return "restore"
	case CmdAdvance:
		return "advance"
	}
	return fmt.Sprintf("commandkind(%d)", uint8(k))
}

// Command is one timed operation of a live run: the union of a job
// submission, a cancellation, a capacity change, and a clock promise.
// Use the constructors; they keep the per-kind field invariants.
type Command struct {
	Kind CommandKind
	// Time is the virtual instant the command takes effect. A
	// CommandSource must yield commands in nondecreasing Time order.
	Time int64
	// Job is the submission record (CmdSubmit only).
	Job swf.Job
	// ID is the cancellation target (CmdCancel only).
	ID int64
	// Procs is the capacity delta (CmdDrain/CmdRestore only).
	Procs int64
}

// SubmitCommand submits rec at its own SubmitTime.
func SubmitCommand(rec swf.Job) Command {
	return Command{Kind: CmdSubmit, Time: rec.SubmitTime, Job: rec}
}

// CancelCommand removes job id at instant t.
func CancelCommand(t, id int64) Command {
	return Command{Kind: CmdCancel, Time: t, ID: id}
}

// DrainCommand takes procs processors out of service at instant t.
func DrainCommand(t, procs int64) Command {
	return Command{Kind: CmdDrain, Time: t, Procs: procs}
}

// RestoreCommand returns procs processors to service at instant t.
func RestoreCommand(t, procs int64) Command {
	return Command{Kind: CmdRestore, Time: t, Procs: procs}
}

// AdvanceCommand promises that no later command carries a Time below t.
func AdvanceCommand(t int64) Command {
	return Command{Kind: CmdAdvance, Time: t}
}

// CommandSource feeds a live run. NextCommand blocks until the next
// command is available and returns io.EOF to close the intake — the
// run then drains every queued event to completion and returns. The
// channel-backed sequencer in internal/schedd is the production
// implementation; SliceCommands replays a recorded log.
type CommandSource interface {
	NextCommand() (Command, error)
}

// SliceCommands is a CommandSource over a fixed, already-ordered
// command slice: the replay path what-if projections and the
// differential tests run through.
type SliceCommands struct {
	cmds []Command
	i    int
}

// NewSliceCommands wraps cmds (not copied; the caller must not mutate).
func NewSliceCommands(cmds []Command) *SliceCommands {
	return &SliceCommands{cmds: cmds}
}

// NextCommand implements CommandSource.
func (s *SliceCommands) NextCommand() (Command, error) {
	if s.i >= len(s.cmds) {
		return Command{}, io.EOF
	}
	c := s.cmds[s.i]
	s.i++
	return c, nil
}

// liveTracker is RunLive's sink shim: it forgets a job's identity the
// moment the engine retires it, so the live-job index stays O(live
// jobs), and forwards the observation unchanged (same order, same
// pointer) to the configured sink.
type liveTracker struct {
	live map[int64]*job.Job
	next JobSink
}

func (t *liveTracker) Observe(j *job.Job) {
	delete(t.live, j.ID)
	if t.next != nil {
		t.next.Observe(j)
	}
}

// RunLive is the fifth driver: it advances the shared event core under
// an open-ended, externally produced command stream instead of a
// preloaded script and a submission source. It exists for the
// scheduler-as-a-service daemon (internal/schedd): submissions,
// cancellations and capacity changes arrive as timed commands from
// concurrent clients (already sequenced into one nondecreasing-time
// stream), and CmdAdvance promises let the loop retire queued events
// between arrivals without blocking on the next command.
//
// The discipline mirrors RunStream exactly: every command with a Time
// at or before the next event's instant is applied (its event pushed)
// before that event pops, so eventq's same-instant kind order
// serializes each instant identically, and a command sequence derived
// from (trace, script) produces byte-identical decisions, counters and
// sink observations to RunStream over the same trace — the property
// live_diff_test.go and internal/schedd's replay_diff_test.go enforce.
// When the source returns io.EOF the intake closes and the queue
// drains to completion (the daemon's graceful shutdown).
//
// Cancellation semantics are RunStream's: a cancel command for a job
// already admitted binds its live pointer; one for a job not yet
// submitted marks the ID so the later submission is dropped on
// arrival. The sole divergence, the live analogue of RunStream's
// absent-ID exception: a cancel naming a job that already retired
// (or that never arrives) cannot be distinguished from a
// cancel-before-submission, so it pops as one — a benign extra
// scheduling pass against unchanged state; decisions and metrics are
// unaffected. Memory is O(live jobs + cancellations): canceled IDs
// keep a small bookkeeping entry for the rest of the run.
func RunLive(name string, maxProcs int64, src CommandSource, cfg Config) (*Result, error) {
	wallStart := time.Now()
	corrector, err := checkConfig(cfg)
	if err != nil {
		return nil, err
	}
	if maxProcs <= 0 {
		return nil, fmt.Errorf("sim: live %q: machine size %d must be positive", name, maxProcs)
	}
	if src == nil {
		return nil, fmt.Errorf("sim: live %q: nil command source", name)
	}
	if !cfg.Script.Empty() {
		return nil, fmt.Errorf("sim: live %q: disruptions arrive as commands, not a Script", name)
	}

	res := &Result{Triple: cfg.Name(), Workload: name, MaxProcs: maxProcs, Streamed: true}
	live := make(map[int64]*job.Job)
	e := &engine{
		corrector: corrector,
		clusters: []*clusterState{{
			speed:     1,
			machine:   platform.New(maxProcs),
			queue:     make([]*job.Job, 0, 64),
			policy:    cfg.Policy,
			predictor: cfg.Predictor,
		}},
		sink:    &liveTracker{live: live, next: cfg.Sink},
		res:     res,
		targets: make(map[int64]*cancelTarget),
		arena:   new(job.Arena),
	}
	e.instrument(cfg.Tracer, cfg.Profile)

	// admit is RunStream's admission, verbatim plus the live index: it
	// runs when the event clock is about to reach the record's submit
	// instant, so every pushed event is in the future.
	lastSubmit := int64(math.MinInt64)
	admit := func(rec swf.Job) error {
		if rec.Procs() > maxProcs {
			return fmt.Errorf("sim: job %d wider (%d) than machine (%d)", rec.JobNumber, rec.Procs(), maxProcs)
		}
		if rec.SubmitTime < lastSubmit {
			return fmt.Errorf("sim: live %q not submit-ordered: job %d at %d after %d", name, rec.JobNumber, rec.SubmitTime, lastSubmit)
		}
		lastSubmit = rec.SubmitTime
		j := e.arena.New(&rec)
		if tgt := e.target(j.ID); tgt != nil {
			if tgt.bound {
				return fmt.Errorf("sim: live %q: duplicate job id %d targeted by a cancellation", name, j.ID)
			}
			tgt.bound = true
			if tgt.canceled {
				j.Canceled = true
				res.Canceled++
			} else {
				tgt.j = j
			}
		}
		if !j.Canceled {
			live[j.ID] = j
		}
		e.q.Push(j.Submit, eventq.Submit, payload{j: j})
		return nil
	}

	// cutoff is the advance promise: no future command's Time is below
	// it, so queued events strictly before it are safe to pop without
	// blocking for the next command. (Strictly: a future cancel at
	// exactly the cutoff instant would still pop before a queued
	// expiry there, so the boundary instant must wait.)
	cutoff := int64(math.MinInt64)
	lastTime := int64(math.MinInt64)
	apply := func(cmd Command) error {
		if cmd.Time < lastTime {
			return fmt.Errorf("sim: live %q not time-ordered: %s command at %d after %d", name, cmd.Kind, cmd.Time, lastTime)
		}
		lastTime = cmd.Time
		switch cmd.Kind {
		case CmdSubmit:
			if cmd.Job.SubmitTime != cmd.Time {
				return fmt.Errorf("sim: live %q: submit command at %d carries job %d submitting at %d", name, cmd.Time, cmd.Job.JobNumber, cmd.Job.SubmitTime)
			}
			return admit(cmd.Job)
		case CmdCancel:
			if tgt := e.targets[cmd.ID]; tgt == nil {
				tgt = &cancelTarget{}
				if j := live[cmd.ID]; j != nil {
					tgt.j, tgt.bound = j, true
				}
				e.targets[cmd.ID] = tgt
			}
			e.q.Push(cmd.Time, eventq.Cancel, payload{id: cmd.ID})
		case CmdDrain:
			if cmd.Procs <= 0 {
				return fmt.Errorf("sim: live %q: drain of %d processors", name, cmd.Procs)
			}
			e.q.Push(cmd.Time, eventq.Drain, payload{procs: cmd.Procs})
		case CmdRestore:
			if cmd.Procs <= 0 {
				return fmt.Errorf("sim: live %q: restore of %d processors", name, cmd.Procs)
			}
			e.q.Push(cmd.Time, eventq.Restore, payload{procs: cmd.Procs})
		case CmdAdvance:
			if cmd.Time > cutoff {
				cutoff = cmd.Time
			}
		default:
			return fmt.Errorf("sim: live %q: unknown command kind %d", name, cmd.Kind)
		}
		return nil
	}

	var pending Command
	havePending, exhausted := false, false
	for {
		// Top up commands: everything taking effect at or before the
		// next event's instant must have pushed its event before that
		// event pops (the kind order then serializes the instant
		// correctly). Block for the next command only when the queue
		// cannot safely progress without it — the head sits at or past
		// the advance cutoff.
		for !exhausted {
			if !havePending {
				if t, ok := e.q.PeekTime(); ok && t < cutoff {
					break
				}
				cmd, err := src.NextCommand()
				if err == io.EOF {
					exhausted = true
					break
				}
				if err != nil {
					return nil, fmt.Errorf("sim: live %q: %w", name, err)
				}
				pending, havePending = cmd, true
			}
			if t, ok := e.q.PeekTime(); ok && pending.Time > t {
				break
			}
			if err := apply(pending); err != nil {
				return nil, err
			}
			havePending = false
		}

		ev, ok := e.pop()
		if !ok {
			if exhausted && !havePending {
				break
			}
			continue
		}
		res.Perf.Events++
		e.handle(ev)
	}

	if n, first := e.queuedJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the commands restore their drains?", n, first.ID)
	}
	if n := e.runningJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs still running after the event queue drained", n)
	}
	e.finishProfile()
	res.Perf.WallNanos = time.Since(wallStart).Nanoseconds()
	return res, nil
}
