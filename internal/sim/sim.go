// Package sim is the discrete-event scheduling simulator (the Go
// equivalent of the pyss fork the paper used). It replays a workload
// through a scheduling policy wired to a prediction technique and a
// correction mechanism — one "heuristic triple" — and records the
// realized schedule for metric computation.
//
// Event semantics follow Section 5: predictions are made once at
// submission; when a running job outlives its prediction, an expiry
// event fires and the correction mechanism supplies a new total-runtime
// estimate (bounded by the requested time); completions, disruptions,
// expiries and submissions at the same instant are processed in that
// order; after every event the policy is offered start decisions until
// it declines. The policy is driven through its lifecycle hooks
// (OnSubmit/OnStart/OnFinish/OnExpiry/OnCancel/OnCapacityChange) in
// lockstep with the machine so stateful policies can maintain
// incremental acceleration structures across decisions.
//
// Beyond the paper's static testbed, a Config may carry a
// scenario.Script of timed disruptions: node drains and restores make
// the available capacity a step function of time (drains are graceful —
// running jobs are never killed by a capacity change), and cancellations
// remove jobs wherever they are — before submission, in the queue, or
// running. The realized capacity timeline is recorded on the Result so
// validation can check the schedule against it.
package sim

import (
	"fmt"
	"time"

	"repro/internal/correct"
	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config is one heuristic triple plus the workload-independent knobs.
type Config struct {
	// Policy is the backfilling variant.
	Policy sched.Policy
	// Predictor is the running-time prediction technique.
	Predictor predict.Predictor
	// Corrector handles expired predictions. Nil defaults to
	// correct.RequestedTime (fall back to the user estimate).
	Corrector correct.Corrector
	// Script optionally injects timed disruptions (node drains and
	// restores, job cancellations) into the event loop. Nil or empty
	// reproduces the static machine exactly.
	Script *scenario.Script
}

// Name renders the triple as "policy/predictor/corrector".
func (c Config) Name() string {
	corr := c.Corrector
	if corr == nil {
		corr = correct.RequestedTime{}
	}
	return c.Policy.Name() + "/" + c.Predictor.Name() + "/" + corr.Name()
}

// CapacityStep is one breakpoint of the realized capacity timeline: the
// in-service processor count from At onward.
type CapacityStep struct {
	At       int64
	Capacity int64
}

// Perf aggregates cheap per-run performance counters. They cost two
// increments per event on the hot loop and one clock read per run, and
// they turn every campaign into a performance record: carried through
// campaign.RunResult into the result journal, they give CI and
// operators a per-cell view of how much work the engine did and how
// fast. Events and PickCalls are deterministic for a given (workload,
// config); WallNanos is wall-clock and varies run to run.
type Perf struct {
	// Events is the number of events popped from the event queue.
	Events int64 `json:"events"`
	// PickCalls is the number of policy Pick invocations (the
	// scheduler hot path).
	PickCalls int64 `json:"pick_calls"`
	// WallNanos is the wall-clock duration of the simulation in
	// nanoseconds.
	WallNanos int64 `json:"wall_nanos"`
}

// Wall returns the simulation wall time as a Duration.
func (p Perf) Wall() time.Duration { return time.Duration(p.WallNanos) }

// Result is the realized schedule of one simulation.
type Result struct {
	// Triple names the heuristic triple that produced the schedule.
	Triple string
	// Workload names the input workload.
	Workload string
	// Scenario names the disruption script, if any.
	Scenario string
	// MaxProcs is the nominal machine size.
	MaxProcs int64
	// Jobs holds every job with Start/End/Prediction state filled in,
	// in submission order. Canceled jobs that never ran keep
	// Started == false.
	Jobs []*job.Job
	// Corrections is the total number of prediction-expiry corrections.
	Corrections int
	// Canceled is the number of jobs removed by scenario cancellations.
	Canceled int
	// CapacitySteps records the realized capacity step function: one
	// entry per instant the in-service processor count changed. Empty
	// means the capacity stayed at MaxProcs throughout.
	CapacitySteps []CapacityStep
	// Makespan is the completion time of the last job.
	Makespan int64
	// Perf holds the run's performance counters.
	Perf Perf
}

// payload is the event-queue payload: a job for job events, a processor
// count for capacity events.
type payload struct {
	j     *job.Job
	procs int64
}

// Run simulates the workload under the given configuration. It returns
// an error only for structurally impossible inputs; scheduling-logic
// violations (overbooking, double starts) panic, since they are bugs.
func Run(w *trace.Workload, cfg Config) (*Result, error) {
	wallStart := time.Now()
	if cfg.Policy == nil || cfg.Predictor == nil {
		return nil, fmt.Errorf("sim: policy and predictor are required")
	}
	corrector := cfg.Corrector
	if corrector == nil {
		corrector = correct.RequestedTime{}
	}

	jobs := make([]*job.Job, len(w.Jobs))
	byID := make(map[int64]*job.Job, len(w.Jobs))
	var q eventq.Queue[payload]
	for i := range w.Jobs {
		r := &w.Jobs[i]
		if r.Procs() > w.MaxProcs {
			return nil, fmt.Errorf("sim: job %d wider (%d) than machine (%d)", r.JobNumber, r.Procs(), w.MaxProcs)
		}
		j := job.FromSWF(r)
		jobs[i] = j
		byID[j.ID] = j
		q.Push(j.Submit, eventq.Submit, payload{j: j})
	}

	res := &Result{Triple: cfg.Name(), Workload: w.Name, MaxProcs: w.MaxProcs, Jobs: jobs}
	if !cfg.Script.Empty() {
		res.Scenario = cfg.Script.Name
		for _, ev := range cfg.Script.Events {
			switch {
			case ev.Time < 0:
				return nil, fmt.Errorf("sim: scenario event at negative instant %d", ev.Time)
			case ev.Action == scenario.Drain && ev.Procs > 0:
				q.Push(ev.Time, eventq.Drain, payload{procs: ev.Procs})
			case ev.Action == scenario.Restore && ev.Procs > 0:
				q.Push(ev.Time, eventq.Restore, payload{procs: ev.Procs})
			case ev.Action == scenario.Cancel:
				if j := byID[ev.JobID]; j != nil {
					q.Push(ev.Time, eventq.Cancel, payload{j: j})
				}
				// Unknown IDs are ignored: scripts derived from a raw
				// log may name jobs the workload cleaning dropped.
			default:
				return nil, fmt.Errorf("sim: scenario %s event with %d processors", ev.Action, ev.Procs)
			}
		}
	}

	machine := platform.New(w.MaxProcs)
	queue := make([]*job.Job, 0, 64)

	// recordCapacity appends to the realized capacity timeline,
	// collapsing multiple changes at one instant into the last.
	recordCapacity := func(now int64) {
		c := machine.Capacity()
		if n := len(res.CapacitySteps); n > 0 && res.CapacitySteps[n-1].At == now {
			res.CapacitySteps[n-1].Capacity = c
			return
		}
		res.CapacitySteps = append(res.CapacitySteps, CapacityStep{At: now, Capacity: c})
	}

	startJob := func(j *job.Job, now int64) {
		j.Started = true
		j.Start = now
		machine.Start(j)
		cfg.Predictor.OnStart(j, now)
		cfg.Policy.OnStart(j, now)
		q.Push(now+j.Runtime, eventq.Finish, payload{j: j})
		if j.Prediction < j.Runtime {
			q.Push(now+j.Prediction, eventq.Expiry, payload{j: j})
		}
	}

	schedulePass := func(now int64) {
		for {
			res.Perf.PickCalls++
			next := cfg.Policy.Pick(now, machine, queue)
			if next == nil {
				return
			}
			removed := false
			for i, qj := range queue {
				if qj == next {
					queue = append(queue[:i], queue[i+1:]...)
					removed = true
					break
				}
			}
			if !removed {
				panic(fmt.Sprintf("sim: policy %s picked job %d not in queue", cfg.Policy.Name(), next.ID))
			}
			startJob(next, now)
		}
	}

	// release frees a running job's processors and reports whether a
	// pending drain absorbed part of the release (a capacity change).
	release := func(j *job.Job) (capacityChanged bool) {
		before := machine.Capacity()
		machine.Finish(j)
		return machine.Capacity() != before
	}

	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		res.Perf.Events++
		now := ev.Time
		j := ev.Payload.j
		switch ev.Kind {
		case eventq.Submit:
			if j.Canceled {
				continue // canceled before submission: never enters the system
			}
			j.Prediction = j.ClampPrediction(cfg.Predictor.Predict(j, now))
			j.SubmitPrediction = j.Prediction
			cfg.Predictor.OnSubmit(j, now)
			queue = append(queue, j)
			cfg.Policy.OnSubmit(j, now)
		case eventq.Finish:
			if j.Finished {
				continue // stale: the job was killed by a cancellation
			}
			changed := release(j)
			j.Finished = true
			j.End = now
			if j.End > res.Makespan {
				res.Makespan = j.End
			}
			cfg.Predictor.OnFinish(j, now)
			cfg.Policy.OnFinish(j, now)
			if changed {
				recordCapacity(now)
				cfg.Policy.OnCapacityChange(now, machine)
			}
		case eventq.Cancel:
			if j.Finished || j.Canceled {
				continue // stale: already completed or already canceled
			}
			j.Canceled = true
			res.Canceled++
			if j.Started {
				// Kill the running job: it occupied the machine for
				// exactly now-Start seconds, which becomes its realized
				// runtime.
				changed := release(j)
				j.Finished = true
				j.End = now
				j.Runtime = now - j.Start
				if j.End > res.Makespan {
					res.Makespan = j.End
				}
				cfg.Predictor.OnFinish(j, now)
				cfg.Policy.OnCancel(j, now)
				if changed {
					recordCapacity(now)
					cfg.Policy.OnCapacityChange(now, machine)
				}
				break
			}
			// Still waiting (or, if absent from the queue, not yet
			// submitted — the Submit event will observe Canceled).
			for i, qj := range queue {
				if qj == j {
					queue = append(queue[:i], queue[i+1:]...)
					cfg.Policy.OnCancel(j, now)
					break
				}
			}
		case eventq.Drain:
			before := machine.Capacity()
			machine.Drain(ev.Payload.procs)
			if machine.Capacity() != before {
				recordCapacity(now)
			}
			// Even a fully pending drain changes the eventual capacity
			// every availability view plans against.
			cfg.Policy.OnCapacityChange(now, machine)
		case eventq.Restore:
			before := machine.Capacity()
			machine.Restore(ev.Payload.procs)
			if machine.Capacity() != before {
				recordCapacity(now)
			}
			cfg.Policy.OnCapacityChange(now, machine)
		case eventq.Expiry:
			if j.Finished || !j.Started {
				continue // stale: the job completed at this same instant or earlier
			}
			if j.PredictedEnd() > now {
				continue // stale: a correction already extended the prediction
			}
			elapsed := now - j.Start
			next := corrector.Correct(elapsed, j.Request, j.Corrections)
			next = j.ClampPrediction(next)
			if next <= elapsed {
				// Progress guard: a correction that does not extend the
				// prediction would loop; push it just past the present.
				next = elapsed + 1
				if next > j.Request {
					next = j.Request
				}
			}
			j.Prediction = next
			j.Corrections++
			res.Corrections++
			cfg.Policy.OnExpiry(j, now)
			if j.PredictedEnd() < j.Start+j.Runtime {
				q.Push(j.PredictedEnd(), eventq.Expiry, payload{j: j})
			}
		}
		schedulePass(now)
	}

	if len(queue) != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the scenario restore its drains?", len(queue), queue[0].ID)
	}
	for _, j := range jobs {
		if !j.Finished && !j.Canceled {
			return nil, fmt.Errorf("sim: job %d never finished", j.ID)
		}
	}
	res.Perf.WallNanos = time.Since(wallStart).Nanoseconds()
	return res, nil
}
