// Package sim is the discrete-event scheduling simulator (the Go
// equivalent of the pyss fork the paper used). It replays a workload
// through a scheduling policy wired to a prediction technique and a
// correction mechanism — one "heuristic triple" — and records the
// realized schedule for metric computation.
//
// Event semantics follow Section 5: predictions are made once at
// submission; when a running job outlives its prediction, an expiry
// event fires and the correction mechanism supplies a new total-runtime
// estimate (bounded by the requested time); completions, disruptions,
// expiries and submissions at the same instant are processed in that
// order; after every event the policy is offered start decisions until
// it declines. The policy is driven through its lifecycle hooks
// (OnSubmit/OnStart/OnFinish/OnExpiry/OnCancel/OnCapacityChange) in
// lockstep with the machine so stateful policies can maintain
// incremental acceleration structures across decisions.
//
// Beyond the paper's static testbed, a Config may carry a
// scenario.Script of timed disruptions: node drains and restores make
// the available capacity a step function of time (drains are graceful —
// running jobs are never killed by a capacity change), and cancellations
// remove jobs wherever they are — before submission, in the queue, or
// running. The realized capacity timeline is recorded on the Result so
// validation can check the schedule against it.
//
// The engine has five drivers over one shared event core (engine.go):
// Run preloads a trace.Workload and retains every job on the Result —
// the validating, table-producing path — while RunStream (stream.go)
// pulls submissions lazily from a workload.Source and retires finished
// jobs into a JobSink, keeping peak memory O(live jobs + window)
// regardless of trace length; RunFederated and RunFederatedStream
// (federated.go) drive N per-cluster states behind a sched.Router
// consulted once per job at submission, with the single-machine drivers
// being the 1-cluster special case; and RunLive (live.go) advances the
// core under an externally produced command stream — submissions,
// cancellations and capacity changes from live clients, sequenced by
// internal/schedd — with advance promises standing in for the script's
// complete knowledge of the future. A differential test harness
// (stream_diff_test.go, federated_diff_test.go, live_diff_test.go)
// holds every driver to decision-identical schedules.
//
// # Determinism invariants
//
// Every driver is deterministic given (workload, config, script): no
// map iteration order, goroutine schedule or wall clock leaks into a
// decision. The invariants that guarantee it:
//
//   - Same-instant ordering. Events at one instant are processed in
//     eventq's fixed kind order (completions, cancellations, capacity
//     changes, expiries, submissions) and, within a kind, insertion
//     order — see the eventq package comment.
//   - Canonical tie-breaks. Wherever the engine or a policy must order
//     jobs, ties fall back to the unique job ID (e.g. the machine's
//     predicted-release order is (instant, ID)), so no two orderings
//     are ever "equal".
//   - Router sequencing. Federated drivers consult the router once per
//     job in trace submission order, against cluster states that have
//     advanced exactly to that job's submission instant. The parallel
//     sharded driver (parallel.go, FederatedConfig.Shards) keeps the
//     router as this global sequencing boundary — shards quiesce up to
//     each routing instant before the router reads their state — so
//     every routing decision, and therefore every schedule, is
//     byte-identical to the sequential driver's for every shard count
//     (proven by parallel_diff_test.go, including trace capture, whose
//     merge replays the sequential queue's exact emission order).
package sim

import (
	"fmt"
	"time"

	"repro/internal/correct"
	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config is one heuristic triple plus the workload-independent knobs.
type Config struct {
	// Policy is the backfilling variant.
	Policy sched.Policy
	// Predictor is the running-time prediction technique.
	Predictor predict.Predictor
	// Corrector handles expired predictions. Nil defaults to
	// correct.RequestedTime (fall back to the user estimate).
	Corrector correct.Corrector
	// Script optionally injects timed disruptions (node drains and
	// restores, job cancellations) into the event loop. Nil or empty
	// reproduces the static machine exactly.
	Script *scenario.Script
	// Sink, when non-nil, observes every job that finishes (normally or
	// killed by a cancellation), exactly once, in event order, with its
	// realized schedule filled in. It is how streaming runs compute
	// metrics without retaining jobs; the preloading driver honors it
	// too, so the two paths feed identical observation sequences.
	Sink JobSink
	// Tracer, when non-nil, receives a structured flight-recorder event
	// for every scheduling decision (see internal/obs). Tracing is pure
	// observation: a traced run makes byte-identical decisions to an
	// untraced one (trace_diff_test.go), and a nil Tracer costs nothing
	// on the hot path.
	Tracer obs.Tracer
	// Profile, when true, collects per-stage latency histograms (event
	// pop, policy Pick, predictor profile update) into
	// Result.Perf.Stages using bounded quantile sketches.
	Profile bool
}

// JobSink receives finished jobs as the simulation retires them. Jobs a
// scenario canceled before they ever ran are not observed (they have no
// realized schedule), matching the population the batch metrics use.
type JobSink interface {
	Observe(j *job.Job)
}

// Name renders the triple as "policy/predictor/corrector".
func (c Config) Name() string {
	corr := c.Corrector
	if corr == nil {
		corr = correct.RequestedTime{}
	}
	return c.Policy.Name() + "/" + c.Predictor.Name() + "/" + corr.Name()
}

// CapacityStep is one breakpoint of the realized capacity timeline: the
// in-service processor count from At onward.
type CapacityStep struct {
	At       int64
	Capacity int64
}

// Perf aggregates cheap per-run performance counters. They cost two
// increments per event on the hot loop and one clock read per run, and
// they turn every campaign into a performance record: carried through
// campaign.RunResult into the result journal, they give CI and
// operators a per-cell view of how much work the engine did and how
// fast. Events and PickCalls are deterministic for a given (workload,
// config); WallNanos is wall-clock and varies run to run.
type Perf struct {
	// Events is the number of events popped from the event queue.
	Events int64 `json:"events"`
	// PickCalls is the number of policy Pick invocations (the
	// scheduler hot path).
	PickCalls int64 `json:"pick_calls"`
	// WallNanos is the wall-clock duration of the simulation in
	// nanoseconds.
	WallNanos int64 `json:"wall_nanos"`
	// Stages holds per-stage latency summaries when profiling was
	// enabled (Config.Profile), nil otherwise — so journals from
	// unprofiled runs are byte-for-byte what they always were.
	Stages []obs.StagePerf `json:"stages,omitempty"`
}

// Wall returns the simulation wall time as a Duration.
func (p Perf) Wall() time.Duration { return time.Duration(p.WallNanos) }

// Result is the realized schedule of one simulation.
type Result struct {
	// Triple names the heuristic triple that produced the schedule.
	Triple string
	// Workload names the input workload.
	Workload string
	// Scenario names the disruption script, if any.
	Scenario string
	// MaxProcs is the nominal machine size.
	MaxProcs int64
	// Jobs holds every job with Start/End/Prediction state filled in,
	// in submission order. Canceled jobs that never ran keep
	// Started == false. Nil on a streamed run (Streamed is true):
	// bounded-memory runs observe jobs through Config.Sink instead of
	// retaining them.
	Jobs []*job.Job
	// Streamed marks a bounded-memory RunStream result: Jobs is nil and
	// per-job analyses must come from the Config.Sink observer.
	Streamed bool
	// Finished counts the jobs that completed (including jobs killed
	// mid-run by a cancellation).
	Finished int
	// Corrections is the total number of prediction-expiry corrections.
	Corrections int
	// Canceled is the number of jobs removed by scenario cancellations.
	Canceled int
	// CapacitySteps records the realized capacity step function: one
	// entry per instant the in-service processor count changed. Empty
	// means the capacity stayed at MaxProcs throughout. On a federated
	// run this is set only for single-cluster platforms (where it equals
	// the sole cluster's timeline); multi-cluster timelines live on
	// Clusters.
	CapacitySteps []CapacityStep
	// Makespan is the completion time of the last job.
	Makespan int64
	// Routing names the routing policy of a federated run, "" on classic
	// single-machine runs.
	Routing string
	// Clusters holds the per-cluster results of a federated run in
	// platform order, nil on classic single-machine runs. MaxProcs is
	// then the federation's total processor count.
	Clusters []ClusterResult
	// Perf holds the run's performance counters.
	Perf Perf
}

// ClusterResult is one cluster's slice of a federated Result: the
// counters and capacity timeline of the jobs routed to it.
type ClusterResult struct {
	// Name labels the cluster (platform.Cluster.Name).
	Name string
	// MaxProcs is the cluster's nominal processor count.
	MaxProcs int64
	// Speed is the cluster's resolved speed factor.
	Speed float64
	// Routed counts the jobs the router dispatched to this cluster.
	Routed int
	// Finished counts the routed jobs that completed (including jobs
	// killed mid-run by a cancellation).
	Finished int
	// Canceled counts scenario cancellations of jobs routed here (jobs
	// canceled before routing belong to no cluster).
	Canceled int
	// Corrections is the number of prediction-expiry corrections on
	// this cluster.
	Corrections int
	// Events counts the handled events that ran this cluster's
	// scheduling pass (deterministic, like Perf.Events).
	Events int64
	// PickCalls counts policy Pick invocations on this cluster — the
	// per-cluster slice of Perf.PickCalls.
	PickCalls int64
	// CapacitySteps is the cluster's realized capacity step function.
	CapacitySteps []CapacityStep
	// Makespan is the completion time of the cluster's last job.
	Makespan int64
}

// Run simulates the workload under the given configuration, preloading
// every job and retaining the full realized schedule on the Result. It
// returns an error only for structurally impossible inputs;
// scheduling-logic violations (overbooking, double starts) panic, since
// they are bugs. For bounded-memory replay of huge traces see RunStream.
func Run(w *trace.Workload, cfg Config) (*Result, error) {
	wallStart := time.Now()
	corrector, err := checkConfig(cfg)
	if err != nil {
		return nil, err
	}

	// One slab holds every runtime job: the preloading path retains them
	// all on the Result anyway, so allocating them individually only
	// fragments the heap and costs one allocation per job.
	slab := make([]job.Job, len(w.Jobs))
	jobs := make([]*job.Job, len(w.Jobs))
	byID := make(map[int64]*job.Job, len(w.Jobs))
	res := &Result{Triple: cfg.Name(), Workload: w.Name, MaxProcs: w.MaxProcs, Jobs: jobs}
	e := &engine{
		corrector: corrector,
		clusters: []*clusterState{{
			speed:     1,
			machine:   platform.New(w.MaxProcs),
			queue:     make([]*job.Job, 0, 64),
			policy:    cfg.Policy,
			predictor: cfg.Predictor,
		}},
		sink: cfg.Sink,
		res:  res,
	}
	e.instrument(cfg.Tracer, cfg.Profile)
	// The queue holds all n submissions up front plus the live jobs'
	// finish/expiry events; reserving once avoids every growth copy.
	e.q.Reserve(len(w.Jobs) + 64)
	for i := range w.Jobs {
		r := &w.Jobs[i]
		if r.Procs() > w.MaxProcs {
			return nil, fmt.Errorf("sim: job %d wider (%d) than machine (%d)", r.JobNumber, r.Procs(), w.MaxProcs)
		}
		j := &slab[i]
		job.FromSWFInto(j, r)
		jobs[i] = j
		byID[j.ID] = j
		e.q.Push(j.Submit, eventq.Submit, payload{j: j})
	}

	if !cfg.Script.Empty() {
		res.Scenario = cfg.Script.Name
		for _, ev := range cfg.Script.Events {
			switch {
			case ev.Time < 0:
				return nil, fmt.Errorf("sim: scenario event at negative instant %d", ev.Time)
			case ev.Cluster != "":
				return nil, fmt.Errorf("sim: scenario targets cluster %q but the run is single-machine (use RunFederated)", ev.Cluster)
			case ev.Action == scenario.Drain && ev.Procs > 0:
				e.q.Push(ev.Time, eventq.Drain, payload{procs: ev.Procs})
			case ev.Action == scenario.Restore && ev.Procs > 0:
				e.q.Push(ev.Time, eventq.Restore, payload{procs: ev.Procs})
			case ev.Action == scenario.Cancel:
				if j := byID[ev.JobID]; j != nil {
					e.q.Push(ev.Time, eventq.Cancel, payload{j: j})
				}
				// Unknown IDs are ignored: scripts derived from a raw
				// log may name jobs the workload cleaning dropped.
			default:
				return nil, fmt.Errorf("sim: scenario %s event with %d processors", ev.Action, ev.Procs)
			}
		}
	}

	for {
		ev, ok := e.pop()
		if !ok {
			break
		}
		res.Perf.Events++
		e.handle(ev)
	}

	if n, first := e.queuedJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the scenario restore its drains?", n, first.ID)
	}
	for _, j := range jobs {
		if !j.Finished && !j.Canceled {
			return nil, fmt.Errorf("sim: job %d never finished", j.ID)
		}
	}
	e.finishProfile()
	res.Perf.WallNanos = time.Since(wallStart).Nanoseconds()
	return res, nil
}

// checkConfig validates the triple and resolves the default corrector.
func checkConfig(cfg Config) (correct.Corrector, error) {
	if cfg.Policy == nil || cfg.Predictor == nil {
		return nil, fmt.Errorf("sim: policy and predictor are required")
	}
	if cfg.Corrector == nil {
		return correct.RequestedTime{}, nil
	}
	return cfg.Corrector, nil
}
