// Package sim is the discrete-event scheduling simulator (the Go
// equivalent of the pyss fork the paper used). It replays a workload
// through a scheduling policy wired to a prediction technique and a
// correction mechanism — one "heuristic triple" — and records the
// realized schedule for metric computation.
//
// Event semantics follow Section 5: predictions are made once at
// submission; when a running job outlives its prediction, an expiry
// event fires and the correction mechanism supplies a new total-runtime
// estimate (bounded by the requested time); completions, expiries and
// submissions at the same instant are processed in that order; after
// every event the policy is offered start decisions until it declines.
// The policy is driven through its lifecycle hooks (OnSubmit/OnStart/
// OnFinish/OnExpiry) in lockstep with the machine so stateful policies
// can maintain incremental acceleration structures across decisions.
package sim

import (
	"fmt"

	"repro/internal/correct"
	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Config is one heuristic triple plus the workload-independent knobs.
type Config struct {
	// Policy is the backfilling variant.
	Policy sched.Policy
	// Predictor is the running-time prediction technique.
	Predictor predict.Predictor
	// Corrector handles expired predictions. Nil defaults to
	// correct.RequestedTime (fall back to the user estimate).
	Corrector correct.Corrector
}

// Name renders the triple as "policy/predictor/corrector".
func (c Config) Name() string {
	corr := c.Corrector
	if corr == nil {
		corr = correct.RequestedTime{}
	}
	return c.Policy.Name() + "/" + c.Predictor.Name() + "/" + corr.Name()
}

// Result is the realized schedule of one simulation.
type Result struct {
	// Triple names the heuristic triple that produced the schedule.
	Triple string
	// Workload names the input workload.
	Workload string
	// MaxProcs is the machine size.
	MaxProcs int64
	// Jobs holds every job with Start/End/Prediction state filled in,
	// in submission order.
	Jobs []*job.Job
	// Corrections is the total number of prediction-expiry corrections.
	Corrections int
	// Makespan is the completion time of the last job.
	Makespan int64
}

// Run simulates the workload under the given configuration. It returns
// an error only for structurally impossible inputs; scheduling-logic
// violations (overbooking, double starts) panic, since they are bugs.
func Run(w *trace.Workload, cfg Config) (*Result, error) {
	if cfg.Policy == nil || cfg.Predictor == nil {
		return nil, fmt.Errorf("sim: policy and predictor are required")
	}
	corrector := cfg.Corrector
	if corrector == nil {
		corrector = correct.RequestedTime{}
	}

	jobs := make([]*job.Job, len(w.Jobs))
	var q eventq.Queue[*job.Job]
	for i := range w.Jobs {
		r := &w.Jobs[i]
		if r.Procs() > w.MaxProcs {
			return nil, fmt.Errorf("sim: job %d wider (%d) than machine (%d)", r.JobNumber, r.Procs(), w.MaxProcs)
		}
		j := job.FromSWF(r)
		jobs[i] = j
		q.Push(j.Submit, eventq.Submit, j)
	}

	machine := platform.New(w.MaxProcs)
	queue := make([]*job.Job, 0, 64)
	res := &Result{Triple: cfg.Name(), Workload: w.Name, MaxProcs: w.MaxProcs, Jobs: jobs}

	startJob := func(j *job.Job, now int64) {
		j.Started = true
		j.Start = now
		machine.Start(j)
		cfg.Predictor.OnStart(j, now)
		cfg.Policy.OnStart(j, now)
		q.Push(now+j.Runtime, eventq.Finish, j)
		if j.Prediction < j.Runtime {
			q.Push(now+j.Prediction, eventq.Expiry, j)
		}
	}

	schedulePass := func(now int64) {
		for {
			next := cfg.Policy.Pick(now, machine, queue)
			if next == nil {
				return
			}
			removed := false
			for i, qj := range queue {
				if qj == next {
					queue = append(queue[:i], queue[i+1:]...)
					removed = true
					break
				}
			}
			if !removed {
				panic(fmt.Sprintf("sim: policy %s picked job %d not in queue", cfg.Policy.Name(), next.ID))
			}
			startJob(next, now)
		}
	}

	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		now := ev.Time
		j := ev.Payload
		switch ev.Kind {
		case eventq.Submit:
			j.Prediction = j.ClampPrediction(cfg.Predictor.Predict(j, now))
			j.SubmitPrediction = j.Prediction
			cfg.Predictor.OnSubmit(j, now)
			queue = append(queue, j)
			cfg.Policy.OnSubmit(j, now)
		case eventq.Finish:
			machine.Finish(j)
			j.Finished = true
			j.End = now
			if j.End > res.Makespan {
				res.Makespan = j.End
			}
			cfg.Predictor.OnFinish(j, now)
			cfg.Policy.OnFinish(j, now)
		case eventq.Expiry:
			if j.Finished || !j.Started {
				continue // stale: the job completed at this same instant or earlier
			}
			if j.PredictedEnd() > now {
				continue // stale: a correction already extended the prediction
			}
			elapsed := now - j.Start
			next := corrector.Correct(elapsed, j.Request, j.Corrections)
			next = j.ClampPrediction(next)
			if next <= elapsed {
				// Progress guard: a correction that does not extend the
				// prediction would loop; push it just past the present.
				next = elapsed + 1
				if next > j.Request {
					next = j.Request
				}
			}
			j.Prediction = next
			j.Corrections++
			res.Corrections++
			cfg.Policy.OnExpiry(j, now)
			if j.PredictedEnd() < j.Start+j.Runtime {
				q.Push(j.PredictedEnd(), eventq.Expiry, j)
			}
		}
		schedulePass(now)
	}

	if len(queue) != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d)", len(queue), queue[0].ID)
	}
	for _, j := range jobs {
		if !j.Finished {
			return nil, fmt.Errorf("sim: job %d never finished", j.ID)
		}
	}
	return res, nil
}
