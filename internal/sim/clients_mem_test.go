package sim_test

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// hugeClientsWorkload mirrors the huge-clients entry of
// specs/clients.yaml: the huge-synthetic operating point decomposed
// into three clients whose user bases total users (200k at full
// scale), apportioned 15:4:1.
func hugeClientsWorkload(jobs, users int) (workload.Config, []workload.Client, error) {
	cfg, err := workload.Preset("huge-synthetic")
	if err != nil {
		return workload.Config{}, nil, err
	}
	cfg.Name = "huge-clients"
	cfg.Jobs = jobs
	cfg.Seed = 0xc11e
	clients := []workload.Client{
		{Name: "bulk", Fraction: 0.75, Users: users * 15 / 20},
		{Name: "campaigns", Fraction: 0.20, Arrival: "gamma", Shape: 0.5, Users: users * 4 / 20},
		{Name: "interactive", Fraction: 0.05, Arrival: "poisson",
			Envelope: []float64{1, 0.3}, EnvelopePeriod: 43200, Users: users / 20},
	}
	return cfg, clients, nil
}

// TestMultiClientStreamSmoke is the always-on scaled-down form of the
// multi-client memory guard: a 20k-job three-client stream completes
// on the streaming engine with every client's apportioned share
// finishing.
func TestMultiClientStreamSmoke(t *testing.T) {
	cfg, clients, err := hugeClientsWorkload(20_000, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewMultiSource(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	counts := src.Counts()
	pc := metrics.NewPerClient(src.ClientNames())
	scfg := core.EASYPlusPlus().Config()
	scfg.Sink = pc
	res, err := sim.RunStream(cfg.Name, cfg.MaxProcs, src, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != cfg.Jobs {
		t.Fatalf("finished %d jobs, want %d", res.Finished, cfg.Jobs)
	}
	for i, name := range pc.Names() {
		if pc.Client(i).Finished() != counts[i] {
			t.Fatalf("client %s finished %d jobs, apportionment says %d", name, pc.Client(i).Finished(), counts[i])
		}
	}
}

// TestMultiClientHugeBoundedMemory is the acceptance guard for
// million-job multi-client streaming: the full huge-clients workload —
// 1M jobs from 200k users across three clients — must complete with
// peak heap within 2x of the single-population huge-synthetic budget
// (the populations dominate: three user bases instead of one). Opt-in
// like its single-population sibling:
//
//	SIM_LONG=1 go test ./internal/sim -run TestMultiClientHuge -v -timeout 30m
func TestMultiClientHugeBoundedMemory(t *testing.T) {
	if os.Getenv("SIM_LONG") == "" {
		t.Skip("set SIM_LONG=1 to run the million-job multi-client memory guard")
	}
	cfg, clients, err := hugeClientsWorkload(1_000_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewMultiSource(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	sink := &peakSink{inner: metrics.NewPerClient(src.ClientNames()), sampleEvery: 20_000}
	scfg := core.EASYPlusPlus().Config()
	scfg.Sink = sink
	res, err := sim.RunStream(cfg.Name, cfg.MaxProcs, src, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != cfg.Jobs {
		t.Fatalf("finished %d jobs, want %d", res.Finished, cfg.Jobs)
	}
	// 2x the single-population streaming budget: the extra headroom is
	// the 200k-user populations (the single-population preset carries
	// 1200 users), not the job count, which stays O(live window).
	const heapBudget = 512 << 20
	if sink.peak > heapBudget {
		t.Fatalf("peak heap %d MiB exceeds the %d MiB multi-client budget", sink.peak>>20, heapBudget>>20)
	}
	t.Logf("1M jobs, 3 clients: peak heap %d MiB, %d events, %v wall",
		sink.peak>>20, res.Perf.Events, res.Perf.Wall())
}
