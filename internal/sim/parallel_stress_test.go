package sim_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestParallelStressGOMAXPROCS runs the sharded driver across a
// GOMAXPROCS matrix: 1 forces full goroutine interleaving on a single
// OS thread (every handoff is a context switch), 2 pits the router
// against one shard at a time, and 8 lets all shards run truly
// concurrently. The results must match the sequential reference exactly
// in every configuration — determinism of the parallel path cannot
// depend on how the runtime schedules the shard goroutines. Under
// `go test -race` (the CI race job) this doubles as the data-race
// stress for the router/shard channel protocol.
func TestParallelStressGOMAXPROCS(t *testing.T) {
	cfg, err := workload.Scaled("KTH-SP2", 600)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := parallelPlatform(w.MaxProcs)
	tr := core.EASYPlusPlus()

	seqSink := newShardedRecorder(len(clusters))
	seqRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
		Clusters: clusters,
		Router:   &sched.LeastLoaded{},
		Session:  func() sim.Config { return tr.Config() },
		Sink:     seqSink,
	})
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("gomaxprocs-%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			for _, shards := range []int{1, 2, 4} {
				label := fmt.Sprintf("gomaxprocs=%d shards=%d", procs, shards)
				parSink := newShardedRecorder(len(clusters))
				parRes, err := sim.RunFederatedStream(w.Name, workload.FromWorkload(w), sim.FederatedConfig{
					Clusters: clusters,
					Router:   &sched.LeastLoaded{},
					Session:  func() sim.Config { return tr.Config() },
					Sink:     parSink,
					Shards:   shards,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				assertShardedIdentical(t, label, seqRes, parRes, seqSink, parSink)
			}
		})
	}
}
