package sim

import (
	"testing"

	"repro/internal/predict"
	"repro/internal/sched"
)

// TestSimultaneousSubmissions: many jobs submitted at the same instant
// are processed in job-number order and scheduled consistently.
func TestSimultaneousSubmissions(t *testing.T) {
	w := wl(4,
		[5]int64{1, 0, 100, 2, 100},
		[5]int64{2, 0, 100, 2, 100},
		[5]int64{3, 0, 100, 2, 100},
		[5]int64{4, 0, 100, 2, 100},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	// Machine holds two 2-proc jobs at once: jobs 1,2 at t=0; 3,4 at t=100.
	if jobByID(res, 1).start(t) != 0 || jobByID(res, 2).start(t) != 0 {
		t.Error("first two simultaneous jobs should start immediately")
	}
	if jobByID(res, 3).start(t) != 100 || jobByID(res, 4).start(t) != 100 {
		t.Error("next two should start at the first completions")
	}
}

// TestFinishAndSubmitSameInstant: a submission at the exact moment other
// jobs complete sees the freed processors.
func TestFinishAndSubmitSameInstant(t *testing.T) {
	w := wl(4,
		[5]int64{1, 0, 50, 4, 50},
		[5]int64{2, 50, 10, 4, 10},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	if got := jobByID(res, 2).start(t); got != 50 {
		t.Fatalf("job 2 should start at 50 (finish processed before submit), got %d", got)
	}
}

// TestOneSecondJobs: minimal runtimes flow through prediction clamping,
// bsld bounding and the event loop without corner-case failures.
func TestOneSecondJobs(t *testing.T) {
	w := wl(2,
		[5]int64{1, 0, 1, 1, 1},
		[5]int64{2, 0, 1, 2, 1},
		[5]int64{3, 1, 1, 2, 1},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.SJBFOrder), Predictor: predict.NewClairvoyant()})
	for _, j := range res.Jobs {
		if !j.Finished {
			t.Fatalf("job %d unfinished", j.ID)
		}
	}
}

// TestFullMachineJob: a job as wide as the machine serializes everything.
func TestFullMachineJob(t *testing.T) {
	w := wl(8,
		[5]int64{1, 0, 100, 8, 100},
		[5]int64{2, 10, 10, 1, 10},
		[5]int64{3, 20, 100, 8, 100},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	if got := jobByID(res, 2).start(t); got != 100 {
		t.Fatalf("job 2 should backfill at 100 (ends before job 3's shadow), got %d", got)
	}
	if got := jobByID(res, 3).start(t); got != 110 {
		t.Fatalf("full-width job 3 should start at 110, got %d", got)
	}
}

// TestZeroWaitWorkload: an empty machine with spaced arrivals gives
// every job zero wait and AVEbsld exactly 1.
func TestZeroWaitWorkload(t *testing.T) {
	w := wl(16,
		[5]int64{1, 0, 10, 1, 10},
		[5]int64{2, 1000, 10, 1, 10},
		[5]int64{3, 2000, 10, 1, 10},
	)
	res := mustRun(t, w, Config{Policy: sched.NewFCFS(), Predictor: predict.NewRequestedTime()})
	for _, j := range res.Jobs {
		if j.Wait() != 0 {
			t.Fatalf("job %d waited %d on an empty machine", j.ID, j.Wait())
		}
	}
}

// TestMakespanRecorded: makespan equals the last completion.
func TestMakespanRecorded(t *testing.T) {
	w := wl(4,
		[5]int64{1, 0, 100, 4, 100},
		[5]int64{2, 5, 30, 4, 30},
	)
	res := mustRun(t, w, Config{Policy: sched.NewEASY(sched.FCFSOrder), Predictor: predict.NewRequestedTime()})
	if res.Makespan != 130 {
		t.Fatalf("makespan = %d, want 130", res.Makespan)
	}
}

// TestCorrectionCountsPerJob: per-job and total correction counters agree.
func TestCorrectionCountTotals(t *testing.T) {
	w := wl(4,
		[5]int64{1, 0, 10, 1, 100000},
		[5]int64{2, 0, 10, 1, 100000},
		[5]int64{3, 100, 50000, 1, 100000},
		[5]int64{4, 200, 30000, 1, 100000},
	)
	res := mustRun(t, w, Config{
		Policy:    sched.NewEASY(sched.FCFSOrder),
		Predictor: predict.NewUserAverage(2),
		Corrector: nil, // defaults to RequestedTime correction
	})
	sum := 0
	for _, j := range res.Jobs {
		sum += j.Corrections
	}
	if sum != res.Corrections {
		t.Fatalf("per-job corrections %d != total %d", sum, res.Corrections)
	}
	if sum == 0 {
		t.Fatal("expected corrections for the under-predicted long jobs")
	}
}
