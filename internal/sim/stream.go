package sim

import (
	"fmt"
	"io"
	"time"

	"repro/internal/eventq"
	"repro/internal/job"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/swf"
	"repro/internal/workload"
)

// RunStream simulates a lazily pulled workload in bounded memory: peak
// heap is O(live jobs + window) — queued and running jobs, their pending
// events, the scenario script and per-user predictor state — instead of
// O(trace). Submissions are pulled from src exactly when the event clock
// reaches them, and finished jobs are handed to cfg.Sink and forgotten,
// so Result.Jobs stays nil (Result.Streamed is set).
//
// The source must yield jobs in nondecreasing SubmitTime order (all
// workload.Source implementations do); an out-of-order record is an
// error. Decisions, metrics observations and the Result counters are
// identical to Run on the same job sequence — the property
// stream_diff_test.go enforces across presets, policies and disruption
// scripts. One deliberate exception: a script cancellation naming a job
// the source never delivers (possible for scripts derived from a raw
// log) still pops here — the stream cannot know the ID is absent, while
// Run drops it at setup — so Perf.Events/PickCalls may exceed Run's by
// those benign pops; decisions and metrics are unaffected (the extra
// scheduling pass sees unchanged state and starts nothing).
func RunStream(name string, maxProcs int64, src workload.Source, cfg Config) (*Result, error) {
	wallStart := time.Now()
	corrector, err := checkConfig(cfg)
	if err != nil {
		return nil, err
	}
	if maxProcs <= 0 {
		return nil, fmt.Errorf("sim: stream %q: machine size %d must be positive", name, maxProcs)
	}
	if src == nil {
		return nil, fmt.Errorf("sim: stream %q: nil source", name)
	}

	res := &Result{Triple: cfg.Name(), Workload: name, MaxProcs: maxProcs, Streamed: true}
	e := &engine{
		corrector: corrector,
		clusters: []*clusterState{{
			speed:     1,
			machine:   platform.New(maxProcs),
			queue:     make([]*job.Job, 0, 64),
			policy:    cfg.Policy,
			predictor: cfg.Predictor,
		}},
		sink:  cfg.Sink,
		res:   res,
		arena: new(job.Arena),
	}
	e.instrument(cfg.Tracer, cfg.Profile)

	// Scenario events enter the queue up front, exactly as on the
	// preloading path — same-instant ordering between same-kind events
	// is script order either way. Cancellations are keyed by job ID and
	// resolved against the bounded target map when they fire.
	if !cfg.Script.Empty() {
		res.Scenario = cfg.Script.Name
		e.targets = make(map[int64]*cancelTarget)
		for _, ev := range cfg.Script.Events {
			switch {
			case ev.Time < 0:
				return nil, fmt.Errorf("sim: scenario event at negative instant %d", ev.Time)
			case ev.Cluster != "":
				return nil, fmt.Errorf("sim: scenario targets cluster %q but the run is single-machine (use RunFederatedStream)", ev.Cluster)
			case ev.Action == scenario.Drain && ev.Procs > 0:
				e.q.Push(ev.Time, eventq.Drain, payload{procs: ev.Procs})
			case ev.Action == scenario.Restore && ev.Procs > 0:
				e.q.Push(ev.Time, eventq.Restore, payload{procs: ev.Procs})
			case ev.Action == scenario.Cancel:
				if e.targets[ev.JobID] == nil {
					e.targets[ev.JobID] = &cancelTarget{}
				}
				e.q.Push(ev.Time, eventq.Cancel, payload{id: ev.JobID})
			default:
				return nil, fmt.Errorf("sim: scenario %s event with %d processors", ev.Action, ev.Procs)
			}
		}
	}

	// admit turns the next source record into a live job and schedules
	// its submission. It runs when the event clock is about to reach the
	// record's submit instant, so every pushed event is in the future.
	lastSubmit := int64(-1 << 62)
	admit := func(rec swf.Job) error {
		if rec.Procs() > maxProcs {
			return fmt.Errorf("sim: job %d wider (%d) than machine (%d)", rec.JobNumber, rec.Procs(), maxProcs)
		}
		if rec.SubmitTime < lastSubmit {
			return fmt.Errorf("sim: stream %q not submit-ordered: job %d at %d after %d", name, rec.JobNumber, rec.SubmitTime, lastSubmit)
		}
		lastSubmit = rec.SubmitTime
		// The arena copies the record into the job's slot; the slot is
		// recycled when the job retires, so a steady-state stream
		// allocates nothing per admission.
		j := e.arena.New(&rec)
		if tgt := e.target(j.ID); tgt != nil {
			if tgt.bound {
				return fmt.Errorf("sim: stream %q: duplicate job id %d targeted by a cancellation", name, j.ID)
			}
			tgt.bound = true
			if tgt.canceled {
				// Canceled before submission: count it now (the cancel
				// event fired before the job existed) and let the Submit
				// event drop it, as the preloading path does.
				j.Canceled = true
				res.Canceled++
			} else {
				tgt.j = j
			}
		}
		e.q.Push(j.Submit, eventq.Submit, payload{j: j})
		return nil
	}

	var pending swf.Job
	havePending, exhausted := false, false
	for {
		// Top up arrivals: everything submitting at or before the next
		// event's instant must be in the queue before that event pops
		// (the kind order then serializes the instant correctly).
		for !exhausted {
			if !havePending {
				rec, err := src.NextJob()
				if err == io.EOF {
					exhausted = true
					break
				}
				if err != nil {
					return nil, fmt.Errorf("sim: stream %q: %w", name, err)
				}
				pending, havePending = rec, true
			}
			if t, ok := e.q.PeekTime(); ok && pending.SubmitTime > t {
				break
			}
			if err := admit(pending); err != nil {
				return nil, err
			}
			havePending = false
		}

		ev, ok := e.pop()
		if !ok {
			break
		}
		res.Perf.Events++
		e.handle(ev)
	}

	if n, first := e.queuedJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs never started (first: %d) — did the scenario restore its drains?", n, first.ID)
	}
	if n := e.runningJobs(); n != 0 {
		return nil, fmt.Errorf("sim: %d jobs still running after the event queue drained", n)
	}
	e.finishProfile()
	res.Perf.WallNanos = time.Since(wallStart).Nanoseconds()
	return res, nil
}
