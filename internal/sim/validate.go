package sim

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// ValidateResult checks the physical invariants of a realized schedule:
// every job started at or after its submission, ran for exactly its
// actual running time, and the in-service capacity was never exceeded —
// against the realized capacity step function when the simulation ran a
// disruption scenario, or the constant machine size otherwise. Jobs a
// scenario canceled before they ever ran are exempt from the
// completeness checks; killed jobs are validated like completions (their
// Runtime is the time actually executed).
//
// A federated result is validated cluster by cluster: each cluster's
// routed jobs are checked against that cluster's size and capacity
// timeline, with violations prefixed by the cluster name. Placement
// itself is part of the check — a job routed to a cluster smaller than
// its width shows up as a capacity violation there.
//
// It returns every violation found (empty means the schedule is valid).
func ValidateResult(res *Result) []error {
	if len(res.Clusters) == 0 {
		return validateSchedule(res.Jobs, res.MaxProcs, res.CapacitySteps, "")
	}
	var errs []error
	perCluster := make([][]*job.Job, len(res.Clusters))
	for _, j := range res.Jobs {
		if j.Cluster < 0 || j.Cluster >= len(res.Clusters) {
			errs = append(errs, fmt.Errorf("job %d routed to nonexistent cluster %d", j.ID, j.Cluster))
			continue
		}
		perCluster[j.Cluster] = append(perCluster[j.Cluster], j)
	}
	for ci := range res.Clusters {
		cr := &res.Clusters[ci]
		errs = append(errs, validateSchedule(perCluster[ci], cr.MaxProcs, cr.CapacitySteps, cr.Name+": ")...)
	}
	return errs
}

// validateSchedule checks one machine's jobs against its nominal size
// and realized capacity timeline, prefixing every violation.
func validateSchedule(jobs []*job.Job, maxProcs int64, steps []CapacityStep, prefix string) []error {
	var errs []error
	fail := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(prefix+format, args...))
	}
	type delta struct {
		at    int64
		procs int64
		isEnd bool
		id    int64
	}
	deltas := make([]delta, 0, 2*len(jobs))
	for _, j := range jobs {
		if j.Canceled && !j.Started {
			continue // removed before it ever ran: nothing physical to check
		}
		if !j.Started || !j.Finished {
			fail("job %d incomplete (started=%v finished=%v)", j.ID, j.Started, j.Finished)
			continue
		}
		if j.Start < j.Submit {
			fail("job %d started at %d before submission %d", j.ID, j.Start, j.Submit)
		}
		if j.End-j.Start != j.Runtime {
			fail("job %d ran %d, actual runtime %d", j.ID, j.End-j.Start, j.Runtime)
		}
		if j.Prediction < 1 || j.Prediction > j.Request {
			fail("job %d final prediction %d outside [1,%d]", j.ID, j.Prediction, j.Request)
		}
		deltas = append(deltas,
			delta{at: j.Start, procs: j.Procs, id: j.ID},
			delta{at: j.End, procs: -j.Procs, isEnd: true, id: j.ID})
	}
	sort.Slice(deltas, func(a, b int) bool {
		if deltas[a].at != deltas[b].at {
			return deltas[a].at < deltas[b].at
		}
		// Releases before allocations at the same instant.
		if deltas[a].isEnd != deltas[b].isEnd {
			return deltas[a].isEnd
		}
		return deltas[a].id < deltas[b].id
	})
	// Walk the usage deltas against the realized capacity timeline.
	// Capacity changes at an instant apply after its releases and before
	// its allocations: a pending drain shrinks capacity by absorbing a
	// release, so at the instant several jobs finish together the
	// recorded (collapsed, final) capacity only holds once every release
	// at that instant has been counted — checking the releases themselves
	// against the pre-instant capacity. Drains only ever claim idle
	// processors, so usage must fit the new capacity by the time anything
	// starts at that instant.
	capacity := maxProcs
	step := 0
	var used int64
	for _, d := range deltas {
		for step < len(steps) {
			s := steps[step]
			if s.At > d.at || (s.At == d.at && d.isEnd) {
				break
			}
			capacity = s.Capacity
			step++
		}
		used += d.procs
		if used > capacity {
			fail("capacity exceeded at t=%d: %d > %d", d.at, used, capacity)
			break
		}
	}
	return errs
}
