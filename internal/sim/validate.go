package sim

import (
	"fmt"
	"sort"
)

// ValidateResult checks the physical invariants of a realized schedule:
// every job started at or after its submission, ran for exactly its
// actual running time, and the in-service capacity was never exceeded —
// against the realized capacity step function when the simulation ran a
// disruption scenario, or the constant machine size otherwise. Jobs a
// scenario canceled before they ever ran are exempt from the
// completeness checks; killed jobs are validated like completions (their
// Runtime is the time actually executed).
// It returns every violation found (empty means the schedule is valid).
func ValidateResult(res *Result) []error {
	var errs []error
	type delta struct {
		at    int64
		procs int64
		isEnd bool
		id    int64
	}
	deltas := make([]delta, 0, 2*len(res.Jobs))
	for _, j := range res.Jobs {
		if j.Canceled && !j.Started {
			continue // removed before it ever ran: nothing physical to check
		}
		if !j.Started || !j.Finished {
			errs = append(errs, fmt.Errorf("job %d incomplete (started=%v finished=%v)", j.ID, j.Started, j.Finished))
			continue
		}
		if j.Start < j.Submit {
			errs = append(errs, fmt.Errorf("job %d started at %d before submission %d", j.ID, j.Start, j.Submit))
		}
		if j.End-j.Start != j.Runtime {
			errs = append(errs, fmt.Errorf("job %d ran %d, actual runtime %d", j.ID, j.End-j.Start, j.Runtime))
		}
		if j.Prediction < 1 || j.Prediction > j.Request {
			errs = append(errs, fmt.Errorf("job %d final prediction %d outside [1,%d]", j.ID, j.Prediction, j.Request))
		}
		deltas = append(deltas,
			delta{at: j.Start, procs: j.Procs, id: j.ID},
			delta{at: j.End, procs: -j.Procs, isEnd: true, id: j.ID})
	}
	sort.Slice(deltas, func(a, b int) bool {
		if deltas[a].at != deltas[b].at {
			return deltas[a].at < deltas[b].at
		}
		// Releases before allocations at the same instant.
		if deltas[a].isEnd != deltas[b].isEnd {
			return deltas[a].isEnd
		}
		return deltas[a].id < deltas[b].id
	})
	// Walk the usage deltas against the realized capacity timeline.
	// Capacity changes at an instant apply after its releases and before
	// its allocations: a pending drain shrinks capacity by absorbing a
	// release, so at the instant several jobs finish together the
	// recorded (collapsed, final) capacity only holds once every release
	// at that instant has been counted — checking the releases themselves
	// against the pre-instant capacity. Drains only ever claim idle
	// processors, so usage must fit the new capacity by the time anything
	// starts at that instant.
	capacity := res.MaxProcs
	step := 0
	var used int64
	for _, d := range deltas {
		for step < len(res.CapacitySteps) {
			s := res.CapacitySteps[step]
			if s.At > d.at || (s.At == d.at && d.isEnd) {
				break
			}
			capacity = s.Capacity
			step++
		}
		used += d.procs
		if used > capacity {
			errs = append(errs, fmt.Errorf("capacity exceeded at t=%d: %d > %d", d.at, used, capacity))
			break
		}
	}
	return errs
}
