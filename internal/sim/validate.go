package sim

import (
	"fmt"
	"sort"
)

// ValidateResult checks the physical invariants of a realized schedule:
// every job started at or after its submission, ran for exactly its
// actual running time, and the machine capacity was never exceeded.
// It returns every violation found (empty means the schedule is valid).
func ValidateResult(res *Result) []error {
	var errs []error
	type delta struct {
		at    int64
		procs int64
		isEnd bool
		id    int64
	}
	deltas := make([]delta, 0, 2*len(res.Jobs))
	for _, j := range res.Jobs {
		if !j.Started || !j.Finished {
			errs = append(errs, fmt.Errorf("job %d incomplete (started=%v finished=%v)", j.ID, j.Started, j.Finished))
			continue
		}
		if j.Start < j.Submit {
			errs = append(errs, fmt.Errorf("job %d started at %d before submission %d", j.ID, j.Start, j.Submit))
		}
		if j.End-j.Start != j.Runtime {
			errs = append(errs, fmt.Errorf("job %d ran %d, actual runtime %d", j.ID, j.End-j.Start, j.Runtime))
		}
		if j.Prediction < 1 || j.Prediction > j.Request {
			errs = append(errs, fmt.Errorf("job %d final prediction %d outside [1,%d]", j.ID, j.Prediction, j.Request))
		}
		deltas = append(deltas,
			delta{at: j.Start, procs: j.Procs, id: j.ID},
			delta{at: j.End, procs: -j.Procs, isEnd: true, id: j.ID})
	}
	sort.Slice(deltas, func(a, b int) bool {
		if deltas[a].at != deltas[b].at {
			return deltas[a].at < deltas[b].at
		}
		// Releases before allocations at the same instant.
		if deltas[a].isEnd != deltas[b].isEnd {
			return deltas[a].isEnd
		}
		return deltas[a].id < deltas[b].id
	})
	var used int64
	for _, d := range deltas {
		used += d.procs
		if used > res.MaxProcs {
			errs = append(errs, fmt.Errorf("capacity exceeded at t=%d: %d > %d", d.at, used, res.MaxProcs))
			break
		}
	}
	return errs
}
