// Package eventq implements the discrete-event core of the simulator: a
// binary-heap priority queue of timestamped events with fully
// deterministic ordering. Events at equal timestamps are ordered by kind
// (completions, then cancellations and capacity changes, then prediction
// expiries, then submissions — so that freed resources, disruptions and
// corrected predictions are all visible to scheduling decisions made at
// the same instant) and then by insertion sequence.
package eventq

// Kind classifies simulation events. The numeric order is the processing
// order at equal timestamps.
type Kind int

const (
	// Finish is a job completion. It precedes Cancel so that a
	// cancellation landing on the job's completion instant is stale.
	Finish Kind = iota
	// Cancel removes a job from the system (scenario disruption). It
	// precedes Submit so that a cancellation at the submission instant
	// drops the job before it ever queues.
	Cancel
	// Drain takes processors out of service (scenario disruption).
	Drain
	// Restore returns drained processors to service (scenario
	// disruption).
	Restore
	// Expiry fires when a running job outlives its predicted running time.
	Expiry
	// Submit is a job arrival.
	Submit
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Finish:
		return "finish"
	case Cancel:
		return "cancel"
	case Drain:
		return "drain"
	case Restore:
		return "restore"
	case Expiry:
		return "expiry"
	case Submit:
		return "submit"
	}
	return "unknown"
}

// Event is one scheduled occurrence carrying an opaque payload.
type Event[T any] struct {
	Time    int64
	Kind    Kind
	seq     uint64
	Payload T
}

// Queue is a min-heap of events. The zero value is ready to use.
type Queue[T any] struct {
	items   []Event[T]
	nextSeq uint64
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules an event.
func (q *Queue[T]) Push(time int64, kind Kind, payload T) {
	q.items = append(q.items, Event[T]{Time: time, Kind: kind, seq: q.nextSeq, Payload: payload})
	q.nextSeq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the earliest event. The second return value is
// false when the queue is empty.
func (q *Queue[T]) Pop() (Event[T], bool) {
	if len(q.items) == 0 {
		var zero Event[T]
		return zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// PeekTime returns the timestamp of the earliest event without removing
// it. The second return value is false when the queue is empty.
func (q *Queue[T]) PeekTime() (int64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Time, true
}

func (q *Queue[T]) less(a, b int) bool {
	ea, eb := &q.items[a], &q.items[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Kind != eb.Kind {
		return ea.Kind < eb.Kind
	}
	return ea.seq < eb.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
