// Package eventq implements the discrete-event core of the simulator: a
// binary-heap priority queue of timestamped events with fully
// deterministic ordering. Events at equal timestamps are ordered by kind
// (completions, then cancellations and capacity changes, then prediction
// expiries, then submissions — so that freed resources, disruptions and
// corrected predictions are all visible to scheduling decisions made at
// the same instant) and then by insertion sequence.
//
// # Determinism invariants
//
// (time, kind, sequence) is a total order — the sequence counter makes
// every event unique — so the pop order is one canonical permutation of
// the pushed events regardless of heap internals, backing-array
// capacity, or how the queue was grown. Reserve and Reset let the
// simulation drivers pool the backing array across runs without
// touching that order: a reused queue is allocation-free on the hot
// path and still pops the exact sequence a fresh queue would. Each
// per-cluster event loop in the sharded federated driver owns its own
// Queue, so cross-shard concurrency never reorders same-instant events
// within a cluster.
package eventq

// Kind classifies simulation events. The numeric order is the processing
// order at equal timestamps.
type Kind int

const (
	// Finish is a job completion. It precedes Cancel so that a
	// cancellation landing on the job's completion instant is stale.
	Finish Kind = iota
	// Cancel removes a job from the system (scenario disruption). It
	// precedes Submit so that a cancellation at the submission instant
	// drops the job before it ever queues.
	Cancel
	// Drain takes processors out of service (scenario disruption).
	Drain
	// Restore returns drained processors to service (scenario
	// disruption).
	Restore
	// Expiry fires when a running job outlives its predicted running time.
	Expiry
	// Submit is a job arrival.
	Submit
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Finish:
		return "finish"
	case Cancel:
		return "cancel"
	case Drain:
		return "drain"
	case Restore:
		return "restore"
	case Expiry:
		return "expiry"
	case Submit:
		return "submit"
	}
	return "unknown"
}

// Event is one scheduled occurrence carrying an opaque payload.
type Event[T any] struct {
	Time    int64
	Kind    Kind
	seq     uint64
	Payload T
}

// Queue is a min-heap of events. The zero value is ready to use.
type Queue[T any] struct {
	items   []Event[T]
	nextSeq uint64
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Reserve grows the queue's backing array so it can hold at least n
// events without reallocating — the drivers' event-node pool. A
// preloading run reserves its whole trace up front; a streaming run's
// queue stays at the live-event watermark, so after warm-up no push
// allocates.
func (q *Queue[T]) Reserve(n int) {
	if cap(q.items) >= n {
		return
	}
	items := make([]Event[T], len(q.items), n)
	copy(items, q.items)
	q.items = items
}

// Reset empties the queue but keeps its backing array and its sequence
// counter, so a reused queue stays allocation-free and later pushes
// still order after everything that came before.
func (q *Queue[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
}

// Push schedules an event.
func (q *Queue[T]) Push(time int64, kind Kind, payload T) {
	q.items = append(q.items, Event[T]{Time: time, Kind: kind, seq: q.nextSeq, Payload: payload})
	q.nextSeq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the earliest event. The second return value is
// false when the queue is empty.
func (q *Queue[T]) Pop() (Event[T], bool) {
	if len(q.items) == 0 {
		var zero Event[T]
		return zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

// Peek returns the ordering key — timestamp and kind — of the earliest
// event without removing it. The third return value is false when the
// queue is empty. The sharded federated driver uses it to advance a
// shard-local queue exactly up to a sequencing cutoff.
func (q *Queue[T]) Peek() (int64, Kind, bool) {
	if len(q.items) == 0 {
		return 0, 0, false
	}
	return q.items[0].Time, q.items[0].Kind, true
}

// PeekTime returns the timestamp of the earliest event without removing
// it. The second return value is false when the queue is empty.
func (q *Queue[T]) PeekTime() (int64, bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Time, true
}

func (q *Queue[T]) less(a, b int) bool {
	ea, eb := &q.items[a], &q.items[b]
	if ea.Time != eb.Time {
		return ea.Time < eb.Time
	}
	if ea.Kind != eb.Kind {
		return ea.Kind < eb.Kind
	}
	return ea.seq < eb.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
