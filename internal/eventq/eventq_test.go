package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Fatal("empty queue has non-zero length")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue returned ok")
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue[int]
	times := []int64{50, 10, 30, 20, 40}
	for i, tm := range times {
		q.Push(tm, Submit, i)
	}
	var got []int64
	for q.Len() > 0 {
		e, _ := q.Pop()
		got = append(got, e.Time)
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatalf("events not in time order: %v", got)
	}
}

func TestKindOrderingAtSameTime(t *testing.T) {
	var q Queue[string]
	q.Push(100, Submit, "submit")
	q.Push(100, Finish, "finish")
	q.Push(100, Expiry, "expiry")
	want := []string{"finish", "expiry", "submit"}
	for _, w := range want {
		e, ok := q.Pop()
		if !ok || e.Payload != w {
			t.Fatalf("got %q, want %q", e.Payload, w)
		}
	}
}

func TestFIFOWithinSameTimeAndKind(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(5, Submit, i)
	}
	for i := 0; i < 10; i++ {
		e, _ := q.Pop()
		if e.Payload != i {
			t.Fatalf("insertion order broken: got %d at position %d", e.Payload, i)
		}
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue[int]
	q.Push(42, Submit, 0)
	q.Push(7, Finish, 1)
	if tm, ok := q.PeekTime(); !ok || tm != 7 {
		t.Fatalf("PeekTime = %d, want 7", tm)
	}
	if q.Len() != 2 {
		t.Fatal("PeekTime must not remove events")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int64]
	r := rand.New(rand.NewSource(1))
	var lastPopped int64 = -1 << 62
	pending := 0
	for i := 0; i < 10000; i++ {
		if pending == 0 || r.Intn(2) == 0 {
			// Pushing a time in the past relative to popped events would be
			// a simulation bug; only push >= lastPopped to model reality.
			tm := lastPopped + r.Int63n(100)
			if tm < 0 {
				tm = 0
			}
			q.Push(tm, Submit, tm)
			pending++
		} else {
			e, ok := q.Pop()
			if !ok {
				t.Fatal("Pop failed with pending events")
			}
			if e.Time < lastPopped {
				t.Fatalf("time went backwards: %d after %d", e.Time, lastPopped)
			}
			lastPopped = e.Time
			pending--
		}
	}
}

func TestKindString(t *testing.T) {
	if Finish.String() != "finish" || Expiry.String() != "expiry" || Submit.String() != "submit" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind should stringify as unknown")
	}
}

func TestQuickHeapProperty(t *testing.T) {
	f := func(times []int64) bool {
		var q Queue[int]
		for i, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			q.Push(tm, Submit, i)
		}
		prev := int64(-1)
		for q.Len() > 0 {
			e, _ := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	r := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		q.Push(r.Int63n(1<<40), Submit, i)
		if q.Len() > 1024 {
			q.Pop()
		}
	}
}

// TestAllKindsOrderingAtSameInstant pins the complete same-instant kind
// order — Finish < Cancel < Drain < Restore < Expiry < Submit — from
// every insertion order, not just one lucky permutation. This is the
// contract the engine's decision ordering (and the flight-recorder
// traces built on it) depends on: freed resources, disruptions and
// corrected predictions are all visible before same-instant arrivals.
func TestAllKindsOrderingAtSameInstant(t *testing.T) {
	kinds := []Kind{Finish, Cancel, Drain, Restore, Expiry, Submit}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(len(kinds))
		var q Queue[Kind]
		for _, i := range perm {
			q.Push(1000, kinds[i], kinds[i])
		}
		for _, want := range kinds {
			e, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d (perm %v): queue ran dry before %v", trial, perm, want)
			}
			if e.Kind != want || e.Payload != want {
				t.Fatalf("trial %d (perm %v): popped %v, want %v", trial, perm, e.Kind, want)
			}
		}
	}
}

// TestFIFOWithinEveryKind extends the FIFO guarantee beyond Submit: at
// one instant, ties inside each kind break by insertion sequence even
// when the kinds are interleaved on the way in.
func TestFIFOWithinEveryKind(t *testing.T) {
	kinds := []Kind{Finish, Cancel, Drain, Restore, Expiry, Submit}
	var q Queue[int]
	// Interleave: kind k gets payloads k*100+0..4, pushed round-robin.
	for rep := 0; rep < 5; rep++ {
		for _, k := range kinds {
			q.Push(42, k, int(k)*100+rep)
		}
	}
	for _, k := range kinds {
		for rep := 0; rep < 5; rep++ {
			e, ok := q.Pop()
			if !ok {
				t.Fatalf("queue ran dry at kind %v rep %d", k, rep)
			}
			if e.Kind != k || e.Payload != int(k)*100+rep {
				t.Fatalf("got kind %v payload %d, want kind %v payload %d",
					e.Kind, e.Payload, k, int(k)*100+rep)
			}
		}
	}
}

// TestRandomizedVsStableSort drains a queue of random (time, kind)
// events — times drawn from a tiny range so collisions are the norm —
// and compares against the reference model: a stable sort by (time,
// kind), which preserves insertion order exactly where the queue's seq
// tiebreak must.
func TestRandomizedVsStableSort(t *testing.T) {
	type ref struct {
		time int64
		kind Kind
		id   int
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 200 + r.Intn(300)
		events := make([]ref, n)
		var q Queue[int]
		for i := range events {
			events[i] = ref{time: r.Int63n(10), kind: Kind(r.Intn(6)), id: i}
			q.Push(events[i].time, events[i].kind, i)
		}
		want := append([]ref(nil), events...)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].time != want[b].time {
				return want[a].time < want[b].time
			}
			return want[a].kind < want[b].kind
		})
		for i, w := range want {
			e, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d: queue ran dry at %d/%d", trial, i, n)
			}
			if e.Time != w.time || e.Kind != w.kind || e.Payload != w.id {
				t.Fatalf("trial %d pos %d: popped (t=%d k=%v id=%d), want (t=%d k=%v id=%d)",
					trial, i, e.Time, e.Kind, e.Payload, w.time, w.kind, w.id)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("trial %d: %d events left over", trial, q.Len())
		}
	}
}

func TestReserveAndResetKeepPoolAndOrder(t *testing.T) {
	var q Queue[int]
	q.Reserve(64)
	if got := cap(q.items); got < 64 {
		t.Fatalf("cap after Reserve(64) = %d", got)
	}
	base := allocsPerPush(&q, 64)
	if base != 0 {
		t.Fatalf("pushes into reserved capacity allocated %v times", base)
	}
	// Reserve below current capacity is a no-op.
	before := cap(q.items)
	q.Reserve(8)
	if cap(q.items) != before {
		t.Fatalf("shrinking Reserve changed capacity %d -> %d", before, cap(q.items))
	}

	// Reset keeps the backing array and the sequence counter: a pushed
	// event after Reset must order after pre-Reset pushes would have.
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	if cap(q.items) != before {
		t.Fatalf("Reset dropped the backing array: cap %d -> %d", before, cap(q.items))
	}
	q.Push(5, Submit, 1)
	q.Push(5, Submit, 2)
	e1, _ := q.Pop()
	e2, _ := q.Pop()
	if e1.Payload != 1 || e2.Payload != 2 {
		t.Fatalf("same-instant order after Reset: got %d then %d", e1.Payload, e2.Payload)
	}
}

func allocsPerPush(q *Queue[int], n int) float64 {
	return testing.AllocsPerRun(1, func() {
		q.Reset()
		for i := 0; i < n; i++ {
			q.Push(int64(i), Submit, i)
		}
	})
}

func TestPeekMatchesPop(t *testing.T) {
	var q Queue[string]
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek on an empty queue reported an event")
	}
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on an empty queue reported an event")
	}
	q.Push(9, Submit, "later")
	q.Push(3, Finish, "first")
	at, kind, ok := q.Peek()
	if !ok || at != 3 || kind != Finish {
		t.Fatalf("Peek = (%d, %v, %v), want (3, finish, true)", at, kind, ok)
	}
	if tt, ok := q.PeekTime(); !ok || tt != 3 {
		t.Fatalf("PeekTime = (%d, %v), want (3, true)", tt, ok)
	}
	e, _ := q.Pop()
	if e.Time != at || e.Kind != kind || e.Payload != "first" {
		t.Fatalf("Pop %+v does not match the preceding Peek (%d, %v)", e, at, kind)
	}
}
