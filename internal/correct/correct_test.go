package correct

import (
	"testing"
	"testing/quick"
)

func TestRequestedTimeCorrection(t *testing.T) {
	c := RequestedTime{}
	if got := c.Correct(500, 10000, 0); got != 10000 {
		t.Fatalf("Correct = %d, want request", got)
	}
}

func TestIncrementalSchedule(t *testing.T) {
	c := Incremental{}
	// First correction adds 1 minute, second 5, third 15...
	cases := []struct {
		elapsed     int64
		corrections int
		want        int64
	}{
		{100, 0, 160},
		{160, 1, 460},
		{460, 2, 1360},
		{1000, 3, 2800},
		{1000, 4, 4600},
		{1000, 10, 1000 + 100*3600},
		{1000, 99, 1000 + 100*3600}, // clamps to the last increment
	}
	for _, tc := range cases {
		if got := c.Correct(tc.elapsed, 1<<40, tc.corrections); got != tc.want {
			t.Errorf("Correct(%d,·,%d) = %d, want %d", tc.elapsed, tc.corrections, got, tc.want)
		}
	}
}

func TestIncrementalCapsAtRequest(t *testing.T) {
	c := Incremental{}
	if got := c.Correct(95, 100, 0); got != 100 {
		t.Fatalf("Correct = %d, want capped at request 100", got)
	}
}

func TestRecursiveDoubling(t *testing.T) {
	c := RecursiveDoubling{}
	if got := c.Correct(100, 1<<40, 0); got != 200 {
		t.Fatalf("Correct = %d, want 200", got)
	}
	if got := c.Correct(100, 150, 0); got != 150 {
		t.Fatalf("Correct = %d, want capped 150", got)
	}
	// Zero elapsed must still make progress.
	if got := c.Correct(0, 100, 0); got <= 0 {
		t.Fatalf("Correct(0) = %d, want positive", got)
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("All() = %d mechanisms, want 3", len(all))
	}
	names := map[string]bool{}
	for _, c := range all {
		names[c.Name()] = true
	}
	for _, want := range []string{"RequestedTime", "Incremental", "RecursiveDoubling"} {
		if !names[want] {
			t.Errorf("missing corrector %s", want)
		}
	}
}

func TestQuickCorrectionsNeverExceedRequest(t *testing.T) {
	f := func(elapsedRaw, requestRaw uint32, corrections uint8) bool {
		elapsed := int64(elapsedRaw % 1000000)
		request := elapsed + 1 + int64(requestRaw%1000000)
		for _, c := range All() {
			got := c.Correct(elapsed, request, int(corrections%16))
			if got > request {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIncrementalMonotoneInCorrections(t *testing.T) {
	c := Incremental{}
	f := func(elapsedRaw uint32, k uint8) bool {
		elapsed := int64(elapsedRaw % 1000000)
		n := int(k % 10)
		return c.Correct(elapsed, 1<<40, n+1) >= c.Correct(elapsed, 1<<40, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
