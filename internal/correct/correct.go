// Package correct implements the correction mechanisms of Section 5.2:
// when a running job outlives its predicted running time, the scheduler
// needs a new estimate of the total running time. All corrected values
// are capped by the caller at the requested time p̃j (the job would be
// killed there anyway) and must strictly exceed the elapsed time so the
// simulation always makes progress.
package correct

// Corrector produces a new total-running-time prediction for a job that
// has already run `elapsed` seconds, given its requested time `request`
// and how many corrections happened before (`corrections`, starting at 0
// for the first expiry).
type Corrector interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Correct returns the new predicted total running time.
	Correct(elapsed, request int64, corrections int) int64
}

// RequestedTime resets the prediction to the user's requested time: the
// single most conservative correction, equivalent to falling back on
// plain EASY behaviour after the first mis-prediction.
type RequestedTime struct{}

// Name implements Corrector.
func (RequestedTime) Name() string { return "RequestedTime" }

// Correct implements Corrector.
func (RequestedTime) Correct(_, request int64, _ int) int64 { return request }

// increments is the fixed list of Tsafrir et al. [24] used by EASY++:
// each successive under-estimation extends the prediction by the next
// amount (1min, 5min, 15min, 30min, 1h, 2h, 5h, 10h, 20h, 50h, 100h).
var increments = []int64{
	60, 5 * 60, 15 * 60, 30 * 60,
	3600, 2 * 3600, 5 * 3600, 10 * 3600, 20 * 3600, 50 * 3600, 100 * 3600,
}

// Incremental adds a growing fixed amount to the elapsed time at each
// correction, per Tsafrir's technique.
type Incremental struct{}

// Name implements Corrector.
func (Incremental) Name() string { return "Incremental" }

// Correct implements Corrector.
func (Incremental) Correct(elapsed, request int64, corrections int) int64 {
	idx := corrections
	if idx >= len(increments) {
		idx = len(increments) - 1
	}
	if idx < 0 {
		idx = 0
	}
	next := elapsed + increments[idx]
	if next > request {
		next = request
	}
	return next
}

// RecursiveDoubling predicts double the elapsed running time.
type RecursiveDoubling struct{}

// Name implements Corrector.
func (RecursiveDoubling) Name() string { return "RecursiveDoubling" }

// Correct implements Corrector.
func (RecursiveDoubling) Correct(elapsed, request int64, _ int) int64 {
	next := elapsed * 2
	if next <= elapsed {
		next = elapsed + 1
	}
	if next > request {
		next = request
	}
	return next
}

// All returns the three mechanisms in the paper's order.
func All() []Corrector {
	return []Corrector{RequestedTime{}, Incremental{}, RecursiveDoubling{}}
}
