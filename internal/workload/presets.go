package workload

import (
	"fmt"
	"sort"
)

// presets maps the six paper logs (Table 4) to generator configurations.
// Machine sizes and full job counts come straight from Table 4; the
// calibration rationale behind every qualitative knob is documented in
// docs/WORKLOADS.md ("Preset catalogue").
var presets = map[string]Config{
	"KTH-SP2": {
		Name: "KTH-SP2", MaxProcs: 100, Jobs: 28000, Users: 214,
		UserZipfExponent: 1.1, ClassesPerUser: 4,
		RuntimeLogMean: 8.1, RuntimeLogSigma: 1.7, ClassSigma: 0.45,
		MaxRuntime: 4 * 3600 * 24, SerialFraction: 0.30, MaxJobProcsFraction: 1.0,
		TargetLoad: 0.99, DefaultWalltime: 4 * 3600, DefaultWalltimeFrac: 0.12,
		OverestimateShape: 2.6, MinRequest: 3600, KillFraction: 0.08, CrashFraction: 0.04,
		SessionStickiness: 0.42, ClassStickiness: 0.68, BurstFraction: 0.50, Seed: 0x17a1,
	},
	"CTC-SP2": {
		Name: "CTC-SP2", MaxProcs: 338, Jobs: 77000, Users: 679,
		UserZipfExponent: 1.15, ClassesPerUser: 4,
		RuntimeLogMean: 8.4, RuntimeLogSigma: 1.6, ClassSigma: 0.40,
		MaxRuntime: 18 * 3600, SerialFraction: 0.35, MaxJobProcsFraction: 0.9,
		TargetLoad: 0.93, DefaultWalltime: 18 * 3600, DefaultWalltimeFrac: 0.10,
		OverestimateShape: 2.4, MinRequest: 3600, KillFraction: 0.07, CrashFraction: 0.04,
		SessionStickiness: 0.40, ClassStickiness: 0.66, BurstFraction: 0.45, Seed: 0xc7c2,
	},
	"SDSC-SP2": {
		Name: "SDSC-SP2", MaxProcs: 128, Jobs: 59000, Users: 437,
		UserZipfExponent: 1.2, ClassesPerUser: 5,
		RuntimeLogMean: 8.3, RuntimeLogSigma: 1.8, ClassSigma: 0.50,
		MaxRuntime: 2 * 3600 * 24, SerialFraction: 0.28, MaxJobProcsFraction: 1.0,
		TargetLoad: 1.16, DefaultWalltime: 12 * 3600, DefaultWalltimeFrac: 0.14,
		OverestimateShape: 2.6, MinRequest: 3600, KillFraction: 0.09, CrashFraction: 0.05,
		SessionStickiness: 0.42, ClassStickiness: 0.64, BurstFraction: 0.50, Seed: 0x5d5c,
	},
	"SDSC-BLUE": {
		Name: "SDSC-BLUE", MaxProcs: 1152, Jobs: 243000, Users: 468,
		UserZipfExponent: 1.1, ClassesPerUser: 4,
		RuntimeLogMean: 7.9, RuntimeLogSigma: 1.5, ClassSigma: 0.35,
		MaxRuntime: 36 * 3600, SerialFraction: 0.10, MaxJobProcsFraction: 0.9,
		TargetLoad: 0.80, DefaultWalltime: 2 * 3600, DefaultWalltimeFrac: 0.08,
		OverestimateShape: 1.6, MinRequest: 1800, KillFraction: 0.06, CrashFraction: 0.03,
		SessionStickiness: 0.45, ClassStickiness: 0.72, BurstFraction: 0.42, Seed: 0xb1ce,
	},
	"Curie": {
		Name: "Curie", MaxProcs: 80640, Jobs: 312000, Users: 722,
		UserZipfExponent: 1.25, ClassesPerUser: 5,
		RuntimeLogMean: 6.9, RuntimeLogSigma: 1.9, ClassSigma: 0.55,
		MaxRuntime: 3600 * 24 * 3, SerialFraction: 0.10, MaxJobProcsFraction: 0.60,
		TargetLoad: 3.20, DefaultWalltime: 24 * 3600, DefaultWalltimeFrac: 0.55,
		OverestimateShape: 3.6, MinRequest: 7200, KillFraction: 0.05, CrashFraction: 0.07,
		SessionStickiness: 0.48, ClassStickiness: 0.66, BurstFraction: 0.65, Seed: 0xc0e1,
	},
	"Metacentrum": {
		Name: "Metacentrum", MaxProcs: 3356, Jobs: 495000, Users: 900,
		UserZipfExponent: 1.2, ClassesPerUser: 5,
		RuntimeLogMean: 7.6, RuntimeLogSigma: 1.7, ClassSigma: 0.38,
		MaxRuntime: 3600 * 24 * 2, SerialFraction: 0.45, MaxJobProcsFraction: 0.25,
		TargetLoad: 1.06, DefaultWalltime: 24 * 3600, DefaultWalltimeFrac: 0.06,
		OverestimateShape: 1.4, MinRequest: 1800, KillFraction: 0.05, CrashFraction: 0.04,
		SessionStickiness: 0.44, ClassStickiness: 0.70, BurstFraction: 0.50, Seed: 0x3e7a,
	},
}

// extraPresets holds benchmark presets that are addressable by name but
// deliberately excluded from PresetNames, so campaigns over "all presets"
// stay the six-log Table-4 grid.
var extraPresets = map[string]Config{
	// huge-synthetic is the million-job streaming benchmark; its operating
	// point is explained in docs/WORKLOADS.md ("Preset catalogue").
	"huge-synthetic": {
		Name: "huge-synthetic", MaxProcs: 1024, Jobs: 1_000_000, Users: 1200,
		UserZipfExponent: 1.15, ClassesPerUser: 4,
		RuntimeLogMean: 7.0, RuntimeLogSigma: 1.5, ClassSigma: 0.40,
		MaxRuntime: 12 * 3600, SerialFraction: 0.35, MaxJobProcsFraction: 0.20,
		TargetLoad: 0.85, DefaultWalltime: 6 * 3600, DefaultWalltimeFrac: 0.10,
		OverestimateShape: 2.2, MinRequest: 1800, KillFraction: 0.06, CrashFraction: 0.04,
		SessionStickiness: 0.44, ClassStickiness: 0.68, BurstFraction: 0.50, Seed: 0x1e65,
	},
}

// Preset returns the generator configuration for one of the paper's logs
// or one of the extra benchmark presets (currently huge-synthetic).
func Preset(name string) (Config, error) {
	if cfg, ok := presets[name]; ok {
		return cfg, nil
	}
	if cfg, ok := extraPresets[name]; ok {
		return cfg, nil
	}
	return Config{}, fmt.Errorf("workload: unknown preset %q (have %v and huge-synthetic)", name, PresetNames())
}

// PresetNames lists the available presets in the paper's Table 4 order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool { return presetOrder(names[a]) < presetOrder(names[b]) })
	return names
}

func presetOrder(name string) int {
	switch name {
	case "KTH-SP2":
		return 0
	case "CTC-SP2":
		return 1
	case "SDSC-SP2":
		return 2
	case "SDSC-BLUE":
		return 3
	case "Curie":
		return 4
	case "Metacentrum":
		return 5
	}
	return 6
}

// Scaled returns the preset with the job count reduced to n and the user
// population and machine size scaled proportionally (floored at 20 users
// and 32 processors), so that experiments and benchmarks run at laptop
// scale while preserving the jobs-per-processor pressure that drives
// queueing. Job widths are drawn relative to the machine size, so the
// width distribution scales consistently. Scaling the machine alongside
// the job count is essential: 3 000 jobs cannot saturate Curie's 80 640
// processors, and an unsaturated machine exhibits no backfilling dynamics
// at all.
func Scaled(name string, n int) (Config, error) {
	cfg, err := Preset(name)
	if err != nil {
		return Config{}, err
	}
	if n <= 0 || n >= cfg.Jobs {
		return cfg, nil
	}
	frac := float64(n) / float64(cfg.Jobs)
	cfg.Jobs = n
	users := int(float64(cfg.Users) * frac)
	if users < 20 {
		users = 20
	}
	cfg.Users = users
	procs := int64(float64(cfg.MaxProcs) * frac)
	if procs < 32 {
		procs = 32
	}
	cfg.MaxProcs = procs
	return cfg, nil
}
