// Package workload generates synthetic SWF workloads calibrated to the
// six production logs of the paper's testbed (Table 4). The real logs
// cannot ship with this repository, so the generator reproduces the
// statistical structure the paper's result depends on:
//
//   - a Zipf-distributed user population submitting in sessions, so that
//     a user's recent history predicts their next job (the locality that
//     AVE2 and the learned model exploit);
//   - per-user "job classes" (applications) with low within-class runtime
//     variance and distinct processor requirements;
//   - heavily over-estimated requested times following Tsafrir's user
//     model: round values, site default walltimes, and per-user habits;
//   - daily and weekly arrival cycles at a target offered load high
//     enough to stress backfilling;
//   - a noise floor of erratic jobs (crashes, kills at the walltime).
//
// Each preset fixes the machine size and job count from Table 4 and the
// qualitative knobs (estimate quality, load) from the paper's per-log
// results: Curie's requested times are near-useless (65 % clairvoyant
// gain), Metacentrum's comparatively decent (16 %). The full model —
// preset calibration rationale, the two-pass streaming design, and the
// multi-client decomposition — is documented in docs/WORKLOADS.md.
//
// # Determinism invariants
//
// Every generator in this package is a pure function of its Config (and,
// for multi-client workloads, the clients block): same inputs, same job
// sequence, byte for byte, on every run and platform. Three rules keep
// that true:
//
//   - All randomness flows through rng.Stream(cfg.Seed, label) child
//     streams with the named stream* labels below; no generator may draw
//     from an unlabeled or shared source, and the preloading and
//     streaming paths must consume identical (seed, label) sequences.
//   - Multi-client sub-streams are seeded with
//     rng.DeriveSeed(cfg.Seed, streamClients, clientIndex), so adding,
//     removing or reordering one client never perturbs another client's
//     draws.
//   - The k-way merge in MultiSource orders jobs by (submit time, client
//     index) — a total order over heads of monotone sub-streams — so the
//     merged stream is submit-ordered and reproducible without buffering.
//
// Iteration-order sources that Go randomizes (maps) are never used in
// job generation. The differential tests in clients_test.go and
// internal/sim pin the single-population equivalence: one all-default
// client is byte-identical to GenSource.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/swf"
	"repro/internal/trace"
)

// Config controls the generator. Construct via Preset and adjust, or
// fill manually for custom experiments.
type Config struct {
	// Name labels the generated workload.
	Name string
	// MaxProcs is the machine size m.
	MaxProcs int64
	// Jobs is the number of jobs to generate.
	Jobs int
	// Users is the size of the user population.
	Users int
	// UserZipfExponent skews submission activity across users (>0).
	UserZipfExponent float64
	// ClassesPerUser is the number of distinct applications per user.
	ClassesPerUser int
	// RuntimeLogMean and RuntimeLogSigma parameterize the lognormal
	// distribution of class median running times (seconds).
	RuntimeLogMean  float64
	RuntimeLogSigma float64
	// ClassSigma is the within-class lognormal spread; small values mean
	// strong per-user runtime locality.
	ClassSigma float64
	// MaxRuntime caps running times (site walltime limit, seconds).
	MaxRuntime int64
	// SerialFraction is the probability a class is single-processor.
	SerialFraction float64
	// MaxJobProcsFraction bounds a job's width as a fraction of the machine.
	MaxJobProcsFraction float64
	// TargetLoad is the offered load (total work / capacity) to calibrate
	// the arrival rate against.
	TargetLoad float64
	// DefaultWalltime is the site default requested time; DefaultWalltimeFrac
	// is the probability that a class always requests it (Curie-style).
	DefaultWalltime     int64
	DefaultWalltimeFrac float64
	// OverestimateShape controls how loose "round value" requests are:
	// the multiplicative padding factor is 1 + Gamma(1, OverestimateShape).
	OverestimateShape float64
	// MinRequest floors every requested time (seconds). Real users almost
	// never request less than tens of minutes even for minute-long jobs,
	// which makes short jobs disproportionately over-estimated — the
	// effect that blocks them from backfilling under EASY and that
	// accurate predictions unlock (Table 1 of the paper).
	MinRequest int64
	// KillFraction is the probability that a job runs into its requested
	// time and is killed there (runtime == request).
	KillFraction float64
	// CrashFraction is the probability that a job crashes early,
	// producing a short erratic runtime the learner must tolerate.
	CrashFraction float64
	// SessionStickiness is the probability the next submission comes from
	// the same user as the previous one (session behaviour).
	SessionStickiness float64
	// BurstFraction is the probability that a submission arrives in a
	// burst right after the previous one (within BurstGap seconds) instead
	// of at an independently sampled instant. Bursts create the queue
	// spikes that drive bounded slowdown in production logs.
	BurstFraction float64
	// BurstGap is the maximum spacing inside a burst, in seconds
	// (defaults to 120 when zero).
	BurstGap int64
	// ClassStickiness is the probability a user resubmits the same class
	// as their previous job.
	ClassStickiness float64
	// Seed makes the workload fully deterministic.
	Seed uint64
}

// Validate reports configuration errors before generation.
func (c *Config) Validate() error {
	switch {
	case c.MaxProcs <= 0:
		return fmt.Errorf("workload: %s: MaxProcs must be positive", c.Name)
	case c.Jobs <= 0:
		return fmt.Errorf("workload: %s: Jobs must be positive", c.Name)
	case c.Users <= 0:
		return fmt.Errorf("workload: %s: Users must be positive", c.Name)
	case c.TargetLoad <= 0 || c.TargetLoad > 4:
		return fmt.Errorf("workload: %s: TargetLoad %v out of (0,4]", c.Name, c.TargetLoad)
	case c.MaxRuntime <= 0:
		return fmt.Errorf("workload: %s: MaxRuntime must be positive", c.Name)
	case c.ClassesPerUser <= 0:
		return fmt.Errorf("workload: %s: ClassesPerUser must be positive", c.Name)
	}
	return nil
}

// roundValues are the "round" requested times users pick from, following
// the observation in Tsafrir et al. that estimates cluster on a small set
// of human-friendly values.
var roundValues = []int64{
	5 * 60, 10 * 60, 15 * 60, 20 * 60, 30 * 60, 45 * 60,
	3600, 2 * 3600, 3 * 3600, 4 * 3600, 6 * 3600, 8 * 3600,
	12 * 3600, 18 * 3600, 24 * 3600, 36 * 3600, 48 * 3600,
	72 * 3600, 100 * 3600, 120 * 3600,
}

// roundUp returns the smallest round value >= v, or v itself when it
// exceeds the largest round value.
func roundUp(v int64) int64 {
	for _, r := range roundValues {
		if r >= v {
			return r
		}
	}
	return v
}

// requestHabit describes how a class's owner estimates running times.
type requestHabit int

const (
	habitRound   requestHabit = iota // padded then rounded up
	habitDefault                     // always the site default walltime
	habitTight                       // smallest round value above the runtime
)

// jobClass is one application a user repeatedly submits.
type jobClass struct {
	id        int64
	median    float64 // median running time, seconds
	procs     int64
	habit     requestHabit
	padShape  float64 // per-class over-estimation severity
	fixedWall int64   // request used by habitDefault
}

type user struct {
	id        int64
	classes   []jobClass
	lastClass int
}

// protoJob is one drawn job before its arrival instant is assigned.
type protoJob struct {
	user    *user
	class   *jobClass
	runtime int64
	request int64
	procs   int64
}

// protoStream draws the deterministic sequence of proto jobs for a
// config. The sequence is a pure function of cfg.Seed, so rebuilding a
// stream replays exactly the same jobs — the property the bounded-memory
// generator (stream.go) relies on for its two-pass calibration.
type protoStream struct {
	cfg      Config
	users    []*user
	zipf     *rng.Zipf
	jobSrc   *rng.Source
	prevUser *user
}

// The generator's child-stream labels (see rng.Stream). Both workload
// generators — the preloading Generate and the bounded-memory GenSource —
// must derive each draw sequence from the same (config seed, label)
// stream: the user population and the arrival process are shared
// structure, and an inline magic label drifting between the two paths
// would silently decorrelate them.
const (
	streamUsers    = 1  // user population and per-user class draws
	streamJobs     = 2  // per-job size/runtime/request draws
	streamZipf     = 99 // user-activity Zipf sampler (child of the user stream)
	streamArrivals = 3  // arrival-time scatter over the calibrated duration
	streamClients  = 4  // per-client child seeds of a multi-client decomposition
)

// newProtoStream builds the user population and draw state from scratch.
func newProtoStream(cfg Config) *protoStream {
	userSrc := rng.Stream(cfg.Seed, streamUsers)
	jobSrc := rng.Stream(cfg.Seed, streamJobs)
	users := buildUsers(cfg, userSrc)
	zipf := rng.NewZipf(userSrc.Split(streamZipf), len(users), cfg.UserZipfExponent)
	return &protoStream{cfg: cfg, users: users, zipf: zipf, jobSrc: jobSrc}
}

// next draws the following proto job (session/class stickiness included).
func (ps *protoStream) next() protoJob {
	cfg := &ps.cfg
	u := ps.prevUser
	if u == nil || !ps.jobSrc.Bernoulli(cfg.SessionStickiness) {
		u = ps.users[ps.zipf.Draw()-1]
	}
	ps.prevUser = u
	ci := u.lastClass
	if !ps.jobSrc.Bernoulli(cfg.ClassStickiness) {
		ci = ps.jobSrc.Intn(len(u.classes))
	}
	u.lastClass = ci
	cl := &u.classes[ci]
	runtime, request := drawTimes(ps.cfg, ps.jobSrc, cl)
	return protoJob{user: u, class: cl, runtime: runtime, request: request, procs: cl.procs}
}

// toSWF renders the proto as the SWF record with the given identity.
func (p *protoJob) toSWF(jobNumber, submit int64) swf.Job {
	j := swf.Job{
		JobNumber:       jobNumber,
		SubmitTime:      submit,
		WaitTime:        -1,
		RunTime:         p.runtime,
		AllocatedProcs:  p.procs,
		AvgCPUTime:      -1,
		UsedMemory:      -1,
		RequestedProcs:  p.procs,
		RequestedTime:   p.request,
		RequestedMemory: -1,
		Status:          1,
		UserID:          p.user.id,
		GroupID:         1,
		Executable:      p.class.id,
		Queue:           1,
		Partition:       1,
		PrecedingJob:    -1,
		ThinkTime:       -1,
	}
	if p.runtime == p.request {
		j.Status = 0 // killed at the walltime
	}
	return j
}

// calibratedDuration sizes the log so the offered load hits the target.
func calibratedDuration(cfg *Config, totalWork float64) float64 {
	duration := totalWork / (float64(cfg.MaxProcs) * cfg.TargetLoad)
	if duration < 3600 {
		duration = 3600
	}
	return duration
}

// Generate produces a deterministic synthetic workload from the config.
func Generate(cfg Config) (*trace.Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ps := newProtoStream(cfg)
	arrivalSrc := rng.Stream(cfg.Seed, streamArrivals)

	protos := make([]protoJob, cfg.Jobs)
	var totalWork float64
	for i := range protos {
		protos[i] = ps.next()
		totalWork += float64(protos[i].runtime) * float64(protos[i].procs)
	}

	// Calibrate the log duration so that offered load hits the target,
	// then scatter arrivals over it with daily/weekly modulation.
	duration := calibratedDuration(&cfg, totalWork)
	arrivals := sampleArrivals(arrivalSrc, cfg.Jobs, duration, cfg.BurstFraction, cfg.BurstGap)

	jobs := make([]swf.Job, cfg.Jobs)
	for i := range protos {
		jobs[i] = protos[i].toSWF(int64(i+1), arrivals[i])
	}

	tr := &swf.Trace{
		Header: swf.Header{
			MaxProcs: cfg.MaxProcs,
			MaxJobs:  int64(cfg.Jobs),
			Fields: []swf.HeaderField{
				{Key: "Version", Value: "2.2"},
				{Key: "Computer", Value: "synthetic " + cfg.Name},
				{Key: "MaxProcs", Value: fmt.Sprint(cfg.MaxProcs)},
				{Key: "MaxJobs", Value: fmt.Sprint(cfg.Jobs)},
				{Key: "Note", Value: "generated by repro/internal/workload"},
			},
		},
		Jobs: jobs,
	}
	return trace.FromSWF(cfg.Name, tr, cfg.MaxProcs)
}

// buildUsers creates the user population with their job classes.
func buildUsers(cfg Config, src *rng.Source) []*user {
	users := make([]*user, cfg.Users)
	classID := int64(1)
	for i := range users {
		u := &user{id: int64(i + 1)}
		nc := 1 + src.Intn(cfg.ClassesPerUser)
		for c := 0; c < nc; c++ {
			median := src.LogNormal(cfg.RuntimeLogMean, cfg.RuntimeLogSigma)
			if median < 30 {
				median = 30
			}
			if median > float64(cfg.MaxRuntime) {
				median = float64(cfg.MaxRuntime)
			}
			cl := jobClass{
				id:       classID,
				median:   median,
				procs:    drawProcs(cfg, src),
				padShape: cfg.OverestimateShape * (0.5 + src.Float64()),
			}
			switch {
			case src.Bernoulli(cfg.DefaultWalltimeFrac):
				cl.habit = habitDefault
				cl.fixedWall = cfg.DefaultWalltime
			case src.Bernoulli(0.15):
				cl.habit = habitTight
			default:
				cl.habit = habitRound
			}
			classID++
			u.classes = append(u.classes, cl)
		}
		users[i] = u
	}
	return users
}

// drawProcs samples a processor requirement: power-of-two biased, with
// serial jobs common and very wide jobs rare.
func drawProcs(cfg Config, src *rng.Source) int64 {
	if src.Bernoulli(cfg.SerialFraction) {
		return 1
	}
	maxProcs := int64(float64(cfg.MaxProcs) * cfg.MaxJobProcsFraction)
	if maxProcs < 2 {
		maxProcs = 2
	}
	maxExp := int(math.Log2(float64(maxProcs)))
	// Geometric-ish preference for small powers of two.
	exp := 1
	for exp < maxExp && src.Bernoulli(0.55) {
		exp++
	}
	p := int64(1) << uint(exp)
	// Occasionally perturb off the power of two, as real logs do.
	if src.Bernoulli(0.2) {
		p += src.Int63n(p/2 + 1)
	}
	if p > maxProcs {
		p = maxProcs
	}
	if p > cfg.MaxProcs {
		p = cfg.MaxProcs
	}
	return p
}

// drawTimes samples the actual and requested running time for one job of
// the given class, honoring runtime <= request.
func drawTimes(cfg Config, src *rng.Source, cl *jobClass) (runtime, request int64) {
	rt := cl.median * math.Exp(cfg.ClassSigma*src.Norm())
	if src.Bernoulli(cfg.CrashFraction) {
		// Crash: short erratic runtime unrelated to the class median.
		rt = 1 + 300*src.Float64()
	}
	if rt < 1 {
		rt = 1
	}
	if rt > float64(cfg.MaxRuntime) {
		rt = float64(cfg.MaxRuntime)
	}
	runtime = int64(rt)

	switch cl.habit {
	case habitDefault:
		request = cl.fixedWall
	case habitTight:
		request = roundUp(runtime)
	default:
		pad := 1 + src.Gamma(1, cl.padShape)
		request = roundUp(int64(float64(runtime) * pad))
	}
	if cl.habit != habitTight && request < cfg.MinRequest {
		request = roundUp(cfg.MinRequest)
	}
	if request > cfg.MaxRuntime {
		request = cfg.MaxRuntime
	}
	if request < runtime {
		// The system kills jobs at the estimate; cap the runtime.
		runtime = request
	}
	if src.Bernoulli(cfg.KillFraction) {
		runtime = request
	}
	if runtime < 1 {
		runtime = 1
	}
	return runtime, request
}

// sampleArrivals draws n submission instants over [0, duration) following
// a piecewise-constant intensity with daily and weekly cycles. A
// burstFraction of the submissions clump within burstGap seconds of the
// previous draw, producing the bursty queues of production systems. The
// result is sorted.
func sampleArrivals(src *rng.Source, n int, duration float64, burstFraction float64, burstGap int64) []int64 {
	if burstGap <= 0 {
		burstGap = 120
	}
	const hour = 3600.0
	cum := hourlyCum(duration)
	hours := len(cum)
	arrivals := make([]int64, n)
	var prev int64
	for i := range arrivals {
		if i > 0 && src.Bernoulli(burstFraction) {
			t := prev + src.Int63n(burstGap+1)
			if float64(t) >= duration {
				t = int64(duration) - 1
			}
			arrivals[i] = t
			prev = t
			continue
		}
		u := src.Float64()
		h := sort.SearchFloat64s(cum, u)
		if h >= hours {
			h = hours - 1
		}
		t := (float64(h) + src.Float64()) * hour
		if t >= duration {
			t = duration - 1
		}
		arrivals[i] = int64(t)
		prev = int64(t)
	}
	sort.Slice(arrivals, func(a, b int) bool { return arrivals[a] < arrivals[b] })
	return arrivals
}

// hourlyCum returns the cumulative distribution of arrival mass over the
// log's hours, following the daily/weekly intensity cycles. Its size is
// one entry per trace hour — the "window" part of the streaming
// generator's memory envelope.
func hourlyCum(duration float64) []float64 {
	const hour = 3600.0
	hours := int(duration/hour) + 1
	weights := make([]float64, hours)
	var total float64
	for h := 0; h < hours; h++ {
		hourOfDay := h % 24
		dayOfWeek := (h / 24) % 7
		w := 0.35 + 0.65*dayWeight(hourOfDay)
		if dayOfWeek >= 5 {
			w *= 0.45 // weekend dip
		}
		weights[h] = w
		total += w
	}
	cum := make([]float64, hours)
	acc := 0.0
	for h, w := range weights {
		acc += w
		cum[h] = acc / total
	}
	return cum
}

// dayWeight peaks during working hours and bottoms out at night.
func dayWeight(hourOfDay int) float64 {
	// Cosine bump centered at 14:00.
	return 0.5 * (1 + math.Cos(2*math.Pi*float64(hourOfDay-14)/24))
}
