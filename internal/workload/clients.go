package workload

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/swf"
	"repro/internal/trace"
)

// Client describes one traffic source of a multi-client workload. A
// slice of Clients decomposes a base Config's job budget into
// heterogeneous sub-populations — skewed rate shares, distinct arrival
// processes, per-client size/runtime overrides — the shape of
// production traffic that a single homogeneous population cannot
// express. See docs/WORKLOADS.md for the model and the spec schema.
type Client struct {
	// Name labels the client in reports, journals and SWF headers.
	// Empty names default to "c<index>".
	Name string
	// Fraction is the client's share of the total job count. Shares are
	// normalized over all clients, so they need not sum to 1; a zero
	// fraction is allowed and yields an empty stream for that client.
	Fraction float64
	// Arrival selects the client's arrival process: "profile" (default,
	// empty string — the daily/weekly intensity of the single-population
	// generator), "poisson" (flat rate), "gamma" (bursty renewal), or
	// "weibull" (heavy-tailed renewal).
	Arrival string
	// Shape parameterizes the gamma/weibull renewal processes; zero
	// picks the default (0.5 for gamma, 0.7 for weibull). Shapes below 1
	// make inter-arrivals bursty. Setting Shape with any other arrival
	// process is a validation error.
	Shape float64
	// Envelope is an optional cyclic rate envelope: relative weights
	// applied over consecutive windows of EnvelopePeriod seconds,
	// repeating for the whole trace. It multiplies the arrival-process
	// intensity, so e.g. [1, 0] with a 12-hour period makes the client
	// submit only every other half-day.
	Envelope []float64
	// EnvelopePeriod is the width of one envelope window in seconds.
	// Required with Envelope, rejected without it.
	EnvelopePeriod int64
	// Users overrides this client's user-population size; zero
	// apportions the base Config's population by Fraction.
	Users int
	// Per-client distribution overrides. Nil inherits the base Config;
	// pointers distinguish "unset" from a meaningful zero.
	RuntimeLogMean      *float64
	RuntimeLogSigma     *float64
	ClassSigma          *float64
	SerialFraction      *float64
	MaxJobProcsFraction *float64
}

// arrivalKind is the parsed form of Client.Arrival.
type arrivalKind int

const (
	arrivalProfile arrivalKind = iota
	arrivalPoisson
	arrivalGamma
	arrivalWeibull
)

func parseArrival(s string) (arrivalKind, error) {
	switch s {
	case "", "profile":
		return arrivalProfile, nil
	case "poisson":
		return arrivalPoisson, nil
	case "gamma":
		return arrivalGamma, nil
	case "weibull":
		return arrivalWeibull, nil
	}
	return 0, fmt.Errorf("unknown arrival process %q (have profile, poisson, gamma, weibull)", s)
}

func (k arrivalKind) String() string {
	switch k {
	case arrivalPoisson:
		return "poisson"
	case arrivalGamma:
		return "gamma"
	case arrivalWeibull:
		return "weibull"
	}
	return "profile"
}

// clientName returns the effective (defaulted) name of clients[i].
func clientName(c *Client, i int) string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("c%d", i)
}

// ValidateClients reports configuration errors in a clients block:
// duplicate names, negative or all-zero fractions, unknown arrival
// vocabulary, shapes on non-renewal processes, malformed envelopes, and
// out-of-range distribution overrides.
func ValidateClients(clients []Client) error {
	if len(clients) == 0 {
		return fmt.Errorf("clients: need at least one client")
	}
	seen := make(map[string]bool, len(clients))
	var sum float64
	for i := range clients {
		c := &clients[i]
		name := clientName(c, i)
		bad := func(format string, args ...any) error {
			return fmt.Errorf("clients[%d] (%s): %s", i, name, fmt.Sprintf(format, args...))
		}
		if seen[name] {
			return bad("duplicate client name")
		}
		seen[name] = true
		if c.Fraction < 0 || math.IsInf(c.Fraction, 0) || math.IsNaN(c.Fraction) {
			return bad("fraction %v must be finite and >= 0", c.Fraction)
		}
		sum += c.Fraction
		kind, err := parseArrival(c.Arrival)
		if err != nil {
			return bad("%v", err)
		}
		if c.Shape < 0 || math.IsInf(c.Shape, 0) || math.IsNaN(c.Shape) {
			return bad("shape %v must be finite and >= 0", c.Shape)
		}
		if c.Shape != 0 && kind != arrivalGamma && kind != arrivalWeibull {
			return bad("shape only applies to gamma/weibull arrivals, not %q", kind)
		}
		if len(c.Envelope) > 0 {
			if c.EnvelopePeriod <= 0 {
				return bad("envelope needs a positive envelope_period")
			}
			var esum float64
			for _, w := range c.Envelope {
				if w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
					return bad("envelope weight %v must be finite and >= 0", w)
				}
				esum += w
			}
			if esum <= 0 {
				return bad("envelope weights must not all be zero")
			}
		} else if c.EnvelopePeriod != 0 {
			return bad("envelope_period without an envelope")
		}
		if c.Users < 0 {
			return bad("users must be >= 0")
		}
		if c.RuntimeLogSigma != nil && *c.RuntimeLogSigma < 0 {
			return bad("runtime_log_sigma must be >= 0")
		}
		if c.ClassSigma != nil && *c.ClassSigma < 0 {
			return bad("class_sigma must be >= 0")
		}
		if c.SerialFraction != nil && (*c.SerialFraction < 0 || *c.SerialFraction > 1) {
			return bad("serial_fraction must be in [0,1]")
		}
		if c.MaxJobProcsFraction != nil && (*c.MaxJobProcsFraction <= 0 || *c.MaxJobProcsFraction > 1) {
			return bad("max_job_procs_fraction must be in (0,1]")
		}
	}
	if sum <= 0 {
		return fmt.Errorf("clients: fractions sum to %v; at least one must be positive", sum)
	}
	return nil
}

// defaultPopulation reports whether the client carries no overrides at
// all, so its stream is definitionally the base single-population one.
func defaultPopulation(c *Client) bool {
	return c.Arrival == "" && c.Shape == 0 && len(c.Envelope) == 0 &&
		c.EnvelopePeriod == 0 && c.Users == 0 &&
		c.RuntimeLogMean == nil && c.RuntimeLogSigma == nil &&
		c.ClassSigma == nil && c.SerialFraction == nil &&
		c.MaxJobProcsFraction == nil
}

// apportion splits total jobs across clients by largest-remainder
// apportionment of the (normalized) fractions. Ties go to the lower
// index, and a zero-fraction client never receives a leftover, so a
// rate share of 0 really does mean an empty stream.
func apportion(total int, fractions []float64) []int {
	var sum float64
	for _, f := range fractions {
		sum += f
	}
	counts := make([]int, len(fractions))
	type rem struct {
		frac float64
		idx  int
	}
	var rems []rem
	assigned := 0
	for i, f := range fractions {
		if f <= 0 {
			continue
		}
		exact := float64(total) * f / sum
		counts[i] = int(exact)
		assigned += counts[i]
		rems = append(rems, rem{frac: exact - float64(counts[i]), idx: i})
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; assigned < total; k++ {
		counts[rems[k%len(rems)].idx]++
		assigned++
	}
	return counts
}

// rateWalker inverts the cumulative arrival intensity Λ(t) one segment
// at a time. The intensity is piecewise constant — the product of the
// hourly daily/weekly profile (for "profile" arrivals) and the client's
// cyclic envelope — scaled so Λ(duration) equals the client's job
// count. Queries arrive with nondecreasing operational time, so the
// walker advances monotonically: a whole stream inverts in
// O(total segments) work and O(1) memory.
type rateWalker struct {
	duration  float64
	diurnal   bool
	env       []float64
	envPeriod float64
	scale     float64 // converts raw weight to arrivals per second

	segStart float64
	segEnd   float64
	rate     float64 // scaled rate over [segStart, segEnd)
	cum      float64 // Λ(segStart)
}

// weightAt returns the unscaled intensity weight at instant t.
func (w *rateWalker) weightAt(t float64) float64 {
	v := 1.0
	if w.diurnal {
		h := int(t / 3600)
		v = 0.35 + 0.65*dayWeight(h%24)
		if (h/24)%7 >= 5 {
			v *= 0.45 // weekend dip, as in hourlyCum
		}
	}
	if len(w.env) > 0 {
		v *= w.env[int(t/w.envPeriod)%len(w.env)]
	}
	return v
}

// boundaryAfter returns the next segment boundary strictly after t,
// capped at the trace duration.
func (w *rateWalker) boundaryAfter(t float64) float64 {
	next := w.duration
	if w.diurnal {
		if b := (math.Floor(t/3600) + 1) * 3600; b < next {
			next = b
		}
	}
	if len(w.env) > 0 {
		if b := (math.Floor(t/w.envPeriod) + 1) * w.envPeriod; b < next {
			next = b
		}
	}
	if next <= t {
		next = w.duration // FP guard: never stall
	}
	return next
}

func newRateWalker(diurnal bool, env []float64, envPeriod, duration, jobs float64) (*rateWalker, error) {
	w := &rateWalker{duration: duration, diurnal: diurnal, env: env, envPeriod: envPeriod}
	var total float64
	for t := 0.0; t < duration; {
		b := w.boundaryAfter(t)
		total += w.weightAt(t) * (b - t)
		t = b
	}
	if total <= 0 {
		return nil, fmt.Errorf("arrival intensity is zero over the whole %gs trace (every envelope window that fits is zero-weight)", duration)
	}
	w.scale = jobs / total
	w.segEnd = w.boundaryAfter(0)
	w.rate = w.weightAt(0) * w.scale
	return w, nil
}

// invert returns the instant t with Λ(t) = opTime, clamped to the
// duration. opTime must be nondecreasing across calls.
func (w *rateWalker) invert(opTime float64) float64 {
	for {
		segMass := w.rate * (w.segEnd - w.segStart)
		if w.rate > 0 && w.cum+segMass >= opTime {
			return w.segStart + (opTime-w.cum)/w.rate
		}
		if w.segEnd >= w.duration {
			return w.duration // caller clamps into range
		}
		w.cum += segMass
		w.segStart = w.segEnd
		w.segEnd = w.boundaryAfter(w.segStart)
		w.rate = w.weightAt(w.segStart) * w.scale
	}
}

// clientStream generates one client's sub-stream: the same proto-job
// machinery as GenSource (seeded with this client's derived child seed)
// with arrivals drawn by time-rescaling — unit-mean renewal increments
// accumulated in operational time and pushed through the inverse of the
// client's cumulative intensity. Memory is O(client users + 1 walker).
type clientStream struct {
	protos *protoStream
	arr    *rng.Source
	kind   arrivalKind
	shape  float64
	walk   *rateWalker

	jobs          int
	emitted       int
	burstFraction float64
	burstGap      int64
	duration      float64
	prev          int64
	opTime        float64
}

func newClientStream(sub Config, c *Client, duration float64) (*clientStream, error) {
	kind, err := parseArrival(c.Arrival)
	if err != nil {
		return nil, err
	}
	shape := c.Shape
	if shape == 0 {
		switch kind {
		case arrivalGamma:
			shape = 0.5
		case arrivalWeibull:
			shape = 0.7
		}
	}
	burstGap := sub.BurstGap
	if burstGap <= 0 {
		burstGap = 120
	}
	walk, err := newRateWalker(kind == arrivalProfile, c.Envelope,
		float64(c.EnvelopePeriod), duration, float64(sub.Jobs))
	if err != nil {
		return nil, err
	}
	return &clientStream{
		protos:        newProtoStream(sub),
		arr:           rng.Stream(sub.Seed, streamArrivals),
		kind:          kind,
		shape:         shape,
		walk:          walk,
		jobs:          sub.Jobs,
		burstFraction: sub.BurstFraction,
		burstGap:      burstGap,
		duration:      duration,
	}, nil
}

// nextArrival draws the next submission instant, nondecreasing by
// construction: bursts clump within burstGap of the previous arrival
// exactly as in GenSource, and base-process draws add a unit-mean
// operational-time increment and invert the intensity.
func (cs *clientStream) nextArrival() int64 {
	if cs.emitted > 0 && cs.arr.Bernoulli(cs.burstFraction) {
		t := cs.prev + cs.arr.Int63n(cs.burstGap+1)
		if float64(t) >= cs.duration {
			t = int64(cs.duration) - 1
		}
		if t < cs.prev {
			t = cs.prev
		}
		cs.prev = t
		return t
	}
	var x float64
	switch cs.kind {
	case arrivalGamma:
		x = cs.arr.Gamma(cs.shape, 1/cs.shape)
	case arrivalWeibull:
		x = cs.arr.Weibull(cs.shape, 1/math.Gamma(1+1/cs.shape))
	default: // profile and poisson: Poisson process in operational time
		x = cs.arr.Exponential(1)
	}
	cs.opTime += x
	t := cs.walk.invert(cs.opTime)
	it := int64(t)
	if float64(it) >= cs.duration {
		it = int64(cs.duration) - 1
	}
	if it < cs.prev {
		it = cs.prev
	}
	cs.prev = it
	return it
}

// next draws the client's following job. Callers must not pull past the
// client's job count (MultiSource tracks that via done).
func (cs *clientStream) next() swf.Job {
	p := cs.protos.next()
	t := cs.nextArrival()
	cs.emitted++
	return p.toSWF(int64(cs.emitted), t)
}

func (cs *clientStream) done() bool { return cs.emitted >= cs.jobs }

// MultiSource is the multi-client form of GenSource: a deterministic
// k-way merge of per-client streams, each seeded with an rng.DeriveSeed
// child of the base seed, ordered by (submit time, client index). Peak
// memory is O(sum of per-client user populations + k), independent of
// the job count, so it is drop-in compatible with sim.RunStream and
// sim.RunFederatedStream at million-job scale.
//
// Emitted jobs renumber globally in merge order; the SWF Partition
// field carries 1 + the client index (the hook job.FromSWFInto turns
// back into job.Job.Client), and user/class identifiers are offset per
// client so the merged population stays disjoint. A single all-default
// client delegates wholesale to GenSource, which makes the degenerate
// configuration byte-identical to the single-population stream.
type MultiSource struct {
	cfg      Config
	names    []string
	arrivals []string
	counts   []int

	single *GenSource // set iff one all-default client

	subs     []*clientStream
	heads    []swf.Job
	live     []bool
	userOff  []int64
	classOff []int64
	emitted  int
}

// NewMultiSource validates the base config and the clients block,
// apportions the job budget, calibrates a shared trace duration from
// every client's measured work, and returns the ready-to-pull merged
// source.
func NewMultiSource(cfg Config, clients []Client) (*MultiSource, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateClients(clients); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", cfg.Name, err)
	}

	m := &MultiSource{
		cfg:      cfg,
		names:    make([]string, len(clients)),
		arrivals: make([]string, len(clients)),
	}
	var fracSum float64
	for i := range clients {
		m.names[i] = clientName(&clients[i], i)
		kind, _ := parseArrival(clients[i].Arrival)
		m.arrivals[i] = kind.String()
		fracSum += clients[i].Fraction
	}

	if len(clients) == 1 && defaultPopulation(&clients[0]) {
		g, err := NewGenSource(cfg)
		if err != nil {
			return nil, err
		}
		m.single = g
		m.counts = []int{cfg.Jobs}
		return m, nil
	}

	fractions := make([]float64, len(clients))
	for i := range clients {
		fractions[i] = clients[i].Fraction
	}
	m.counts = apportion(cfg.Jobs, fractions)

	// Per-client sub-configurations: derived child seed, apportioned (or
	// overridden) user population, distribution overrides.
	subCfgs := make([]Config, len(clients))
	m.userOff = make([]int64, len(clients))
	m.classOff = make([]int64, len(clients))
	var userBase, classBase int64
	for i := range clients {
		c := &clients[i]
		sub := cfg
		sub.Name = cfg.Name + "/" + m.names[i]
		sub.Jobs = m.counts[i]
		sub.Seed = rng.DeriveSeed(cfg.Seed, streamClients, uint64(i))
		users := c.Users
		if users == 0 {
			users = int(math.Round(float64(cfg.Users) * c.Fraction / fracSum))
		}
		if users < 1 {
			users = 1
		}
		sub.Users = users
		if c.RuntimeLogMean != nil {
			sub.RuntimeLogMean = *c.RuntimeLogMean
		}
		if c.RuntimeLogSigma != nil {
			sub.RuntimeLogSigma = *c.RuntimeLogSigma
		}
		if c.ClassSigma != nil {
			sub.ClassSigma = *c.ClassSigma
		}
		if c.SerialFraction != nil {
			sub.SerialFraction = *c.SerialFraction
		}
		if c.MaxJobProcsFraction != nil {
			sub.MaxJobProcsFraction = *c.MaxJobProcsFraction
		}
		subCfgs[i] = sub
		m.userOff[i] = userBase
		m.classOff[i] = classBase
		userBase += int64(users)
		classBase += int64(users) * int64(cfg.ClassesPerUser)
	}

	// Measure pass: replay every active client's proto stream once to
	// sum total work, then calibrate one shared duration against the
	// base machine — the merged stream, not each client alone, must hit
	// the target offered load.
	var totalWork float64
	for i := range subCfgs {
		if m.counts[i] == 0 {
			continue
		}
		if err := subCfgs[i].Validate(); err != nil {
			return nil, err
		}
		measure := newProtoStream(subCfgs[i])
		for k := 0; k < m.counts[i]; k++ {
			p := measure.next()
			totalWork += float64(p.runtime) * float64(p.procs)
		}
	}
	duration := calibratedDuration(&cfg, totalWork)

	m.subs = make([]*clientStream, len(clients))
	m.heads = make([]swf.Job, len(clients))
	m.live = make([]bool, len(clients))
	for i := range clients {
		if m.counts[i] == 0 {
			continue
		}
		cs, err := newClientStream(subCfgs[i], &clients[i], duration)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: clients[%d] (%s): %w", cfg.Name, i, m.names[i], err)
		}
		m.subs[i] = cs
		m.heads[i] = cs.next()
		m.live[i] = true
	}
	return m, nil
}

// MaxProcs returns the machine size of the generated workload.
func (m *MultiSource) MaxProcs() int64 { return m.cfg.MaxProcs }

// Name returns the workload's name.
func (m *MultiSource) Name() string { return m.cfg.Name }

// Jobs returns the total number of jobs the merged stream will emit.
func (m *MultiSource) Jobs() int { return m.cfg.Jobs }

// ClientNames returns the effective (defaulted) client names in index
// order.
func (m *MultiSource) ClientNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// Counts returns the per-client job apportionment in index order.
func (m *MultiSource) Counts() []int {
	out := make([]int, len(m.counts))
	copy(out, m.counts)
	return out
}

// Header returns an SWF header describing the stream, with one
// Partition comment per client (name, job count, realized rate share,
// arrival process) so written traces are self-describing.
func (m *MultiSource) Header() swf.Header {
	fields := []swf.HeaderField{
		{Key: "Version", Value: "2.2"},
		{Key: "Computer", Value: "synthetic " + m.cfg.Name},
		{Key: "MaxProcs", Value: fmt.Sprint(m.cfg.MaxProcs)},
		{Key: "MaxJobs", Value: fmt.Sprint(m.cfg.Jobs)},
	}
	for i, name := range m.names {
		share := 0.0
		if m.cfg.Jobs > 0 {
			share = 100 * float64(m.counts[i]) / float64(m.cfg.Jobs)
		}
		fields = append(fields, swf.HeaderField{
			Key: "Partition",
			Value: fmt.Sprintf("%d: client %s (%d jobs, %.1f%% of the stream, %s arrivals)",
				i+1, name, m.counts[i], share, m.arrivals[i]),
		})
	}
	fields = append(fields, swf.HeaderField{
		Key: "Note", Value: "generated by repro/internal/workload (multi-client)",
	})
	return swf.Header{
		MaxProcs: m.cfg.MaxProcs,
		MaxJobs:  int64(m.cfg.Jobs),
		Fields:   fields,
	}
}

// NextJob implements Source: the smallest live head by (submit time,
// client index) is emitted, renumbered globally, stamped with its
// client's partition and identifier offsets, and replaced from its
// sub-stream.
func (m *MultiSource) NextJob() (swf.Job, error) {
	if m.single != nil {
		return m.single.NextJob()
	}
	best := -1
	for i := range m.heads {
		if !m.live[i] {
			continue
		}
		if best < 0 || m.heads[i].SubmitTime < m.heads[best].SubmitTime {
			best = i
		}
	}
	if best < 0 {
		return swf.Job{}, io.EOF
	}
	j := m.heads[best]
	if m.subs[best].done() {
		m.live[best] = false
	} else {
		m.heads[best] = m.subs[best].next()
	}
	m.emitted++
	j.JobNumber = int64(m.emitted)
	j.Partition = int64(best + 1)
	j.UserID += m.userOff[best]
	j.Executable += m.classOff[best]
	return j, nil
}

// GenerateMulti is the preloading form of NewMultiSource: it collects
// the merged stream into a trace.Workload with the client names
// attached. There is no separate batch generator for multi-client
// workloads — the stream is the definition — so preloaded and streamed
// runs see identical jobs by construction.
func GenerateMulti(cfg Config, clients []Client) (*trace.Workload, error) {
	m, err := NewMultiSource(cfg, clients)
	if err != nil {
		return nil, err
	}
	jobs, err := Collect(m)
	if err != nil {
		return nil, err
	}
	tr := &swf.Trace{Header: m.Header(), Jobs: jobs}
	w, err := trace.FromSWF(cfg.Name, tr, cfg.MaxProcs)
	if err != nil {
		return nil, err
	}
	w.Clients = m.ClientNames()
	return w, nil
}
