package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	cfg, err := Scaled("KTH-SP2", 2000)
	if err != nil {
		panic(err)
	}
	return cfg
}

func TestGenerateBasics(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2000 {
		t.Fatalf("got %d jobs, want 2000", len(w.Jobs))
	}
	if w.MaxProcs != 32 {
		// 2000/28000 of 100 processors, floored at 32.
		t.Fatalf("MaxProcs = %d, want scaled floor 32", w.MaxProcs)
	}
	if issues := w.Validate(); len(issues) != 0 {
		t.Fatalf("generated workload invalid: %v", issues[:min(len(issues), 5)])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cfg := smallConfig()
	a, _ := Generate(cfg)
	cfg.Seed++
	b, _ := Generate(cfg)
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].RunTime == b.Jobs[i].RunTime {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Fatal("different seeds produced identical runtimes")
	}
}

func TestGenerateInvariants(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if j.RunTime <= 0 {
			t.Fatalf("job %d has runtime %d", j.JobNumber, j.RunTime)
		}
		if j.RunTime > j.RequestedTime {
			t.Fatalf("job %d runtime %d > request %d", j.JobNumber, j.RunTime, j.RequestedTime)
		}
		if j.Procs() <= 0 || j.Procs() > w.MaxProcs {
			t.Fatalf("job %d procs %d out of range", j.JobNumber, j.Procs())
		}
		if j.SubmitTime < prev {
			t.Fatalf("job %d submits at %d before previous %d", j.JobNumber, j.SubmitTime, prev)
		}
		prev = j.SubmitTime
		if j.UserID <= 0 {
			t.Fatalf("job %d has user %d", j.JobNumber, j.UserID)
		}
	}
}

func TestGenerateLoadCalibration(t *testing.T) {
	cfg := smallConfig()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	load := w.OfferedLoad()
	if load < cfg.TargetLoad*0.5 || load > cfg.TargetLoad*1.3 {
		t.Fatalf("offered load %v too far from target %v", load, cfg.TargetLoad)
	}
}

func TestGenerateOverestimation(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sumRatio float64
	for i := range w.Jobs {
		j := &w.Jobs[i]
		sumRatio += float64(j.RequestedTime) / float64(j.RunTime)
	}
	mean := sumRatio / float64(len(w.Jobs))
	if mean < 1.5 {
		t.Fatalf("mean over-estimation ratio %v too small — requested times should be loose", mean)
	}
}

func TestGenerateUserLocality(t *testing.T) {
	// A user's consecutive runtimes should correlate far better than
	// random pairs: that's the locality AVE2 exploits.
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int64]int64)
	var sumAbsUser, sumAbsRand float64
	var nUser int
	var prevAny int64 = -1
	for i := range w.Jobs {
		j := &w.Jobs[i]
		if p, ok := last[j.UserID]; ok {
			sumAbsUser += math.Abs(logRatio(j.RunTime, p))
			nUser++
		}
		last[j.UserID] = j.RunTime
		if prevAny > 0 {
			sumAbsRand += math.Abs(logRatio(j.RunTime, prevAny))
		}
		prevAny = j.RunTime
	}
	if nUser < 100 {
		t.Fatalf("too few repeat users: %d", nUser)
	}
	userErr := sumAbsUser / float64(nUser)
	randErr := sumAbsRand / float64(len(w.Jobs)-1)
	if userErr >= randErr {
		t.Fatalf("no per-user locality: same-user log err %v >= cross-user %v", userErr, randErr)
	}
}

func logRatio(a, b int64) float64 { return math.Log(float64(a)) - math.Log(float64(b)) }

func TestPresetsExist(t *testing.T) {
	names := PresetNames()
	want := []string{"KTH-SP2", "CTC-SP2", "SDSC-SP2", "SDSC-BLUE", "Curie", "Metacentrum"}
	if len(names) != len(want) {
		t.Fatalf("presets = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("preset order: got %s at %d, want %s", names[i], i, n)
		}
		cfg, err := Preset(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", n, err)
		}
	}
}

func TestPresetTable4Sizes(t *testing.T) {
	// Machine sizes and job counts must match Table 4 of the paper.
	table4 := map[string]struct {
		procs int64
		jobs  int
	}{
		"KTH-SP2":     {100, 28000},
		"CTC-SP2":     {338, 77000},
		"SDSC-SP2":    {128, 59000},
		"SDSC-BLUE":   {1152, 243000},
		"Curie":       {80640, 312000},
		"Metacentrum": {3356, 495000},
	}
	for name, want := range table4 {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.MaxProcs != want.procs {
			t.Errorf("%s: MaxProcs = %d, want %d", name, cfg.MaxProcs, want.procs)
		}
		if cfg.Jobs != want.jobs {
			t.Errorf("%s: Jobs = %d, want %d", name, cfg.Jobs, want.jobs)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestScaled(t *testing.T) {
	cfg, err := Scaled("Curie", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Jobs != 5000 {
		t.Errorf("Jobs = %d", cfg.Jobs)
	}
	if cfg.Users < 20 {
		t.Errorf("Users = %d, want >= 20", cfg.Users)
	}
	if cfg.MaxProcs >= 80640 || cfg.MaxProcs < 32 {
		t.Errorf("scaled machine size %d should shrink proportionally (floor 32)", cfg.MaxProcs)
	}
	// Scaling above the full size is a no-op.
	cfg, _ = Scaled("KTH-SP2", 10_000_000)
	if cfg.Jobs != 28000 {
		t.Errorf("oversize scale changed job count to %d", cfg.Jobs)
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	bad := []func(*Config){
		func(c *Config) { c.MaxProcs = 0 },
		func(c *Config) { c.Jobs = 0 },
		func(c *Config) { c.Users = -1 },
		func(c *Config) { c.TargetLoad = 0 },
		func(c *Config) { c.TargetLoad = 5 },
		func(c *Config) { c.MaxRuntime = 0 },
		func(c *Config) { c.ClassesPerUser = 0 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestRoundUp(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{1, 300}, {300, 300}, {301, 600}, {3600, 3600}, {3601, 7200},
		{100 * 3600, 100 * 3600}, {121 * 3600, 121 * 3600},
	}
	for _, c := range cases {
		if got := roundUp(c.in); got != c.want {
			t.Errorf("roundUp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuickGeneratedJobsRespectBounds(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := smallConfig()
		cfg.Jobs = 200
		cfg.Users = 20
		cfg.Seed = seed
		w, err := Generate(cfg)
		if err != nil {
			return false
		}
		for i := range w.Jobs {
			j := &w.Jobs[i]
			if j.RunTime <= 0 || j.RunTime > j.RequestedTime || j.Procs() > cfg.MaxProcs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
