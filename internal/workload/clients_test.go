package workload

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

func fptr(v float64) *float64 { return &v }

// TestMultiSourceSingleClientByteIdentity: the degenerate decomposition
// — one client, no overrides — must be byte-for-byte the
// single-population stream, so turning a spec multi-client changes
// nothing until a second client appears.
func TestMultiSourceSingleClientByteIdentity(t *testing.T) {
	cfg := streamCfg(500)
	m, err := NewMultiSource(cfg, []Client{{Name: "all", Fraction: 1}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jm, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	jg, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jm, jg) {
		t.Fatal("single-default-client MultiSource diverged from GenSource")
	}
	if got := m.Counts(); len(got) != 1 || got[0] != cfg.Jobs {
		t.Fatalf("counts %v, want [%d]", got, cfg.Jobs)
	}
}

// TestMultiSourceZeroFraction: a zero rate share is an empty stream —
// no jobs, no leftover from the largest-remainder rounding.
func TestMultiSourceZeroFraction(t *testing.T) {
	cfg := streamCfg(401)
	m, err := NewMultiSource(cfg, []Client{
		{Name: "on", Fraction: 1, Arrival: "poisson"},
		{Name: "off", Fraction: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counts(); got[0] != cfg.Jobs || got[1] != 0 {
		t.Fatalf("counts %v, want [%d 0]", got, cfg.Jobs)
	}
	n := 0
	for {
		j, err := m.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if j.Partition != 1 {
			t.Fatalf("job %d carries partition %d; the zero-fraction client must stay silent", j.JobNumber, j.Partition)
		}
	}
	if n != cfg.Jobs {
		t.Fatalf("stream emitted %d jobs, want %d", n, cfg.Jobs)
	}
}

// TestMultiSourceIdenticalClients: k identically-configured clients are
// deterministic (two sources agree byte-for-byte) and the merge
// respects every structural invariant — apportioned counts, global
// renumbering, nondecreasing submit times, in-range partitions, and
// disjoint per-client user populations.
func TestMultiSourceIdenticalClients(t *testing.T) {
	cfg := streamCfg(1000)
	clients := []Client{
		{Name: "a", Fraction: 1, Arrival: "profile"},
		{Name: "b", Fraction: 1, Arrival: "profile"},
		{Name: "c", Fraction: 1, Arrival: "profile"},
	}
	m1, err := NewMultiSource(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMultiSource(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := Collect(m1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := Collect(m2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j1, j2) {
		t.Fatal("same clients block produced different merged streams")
	}
	if got := m1.Counts(); got[0] != 334 || got[1] != 333 || got[2] != 333 {
		t.Fatalf("apportionment %v, want [334 333 333]", got)
	}
	var prev int64
	perPart := map[int64]int{}
	minUID := map[int64]int64{}
	maxUID := map[int64]int64{}
	for i, j := range j1 {
		if j.JobNumber != int64(i+1) {
			t.Fatalf("job %d renumbered as %d", i+1, j.JobNumber)
		}
		if j.SubmitTime < prev {
			t.Fatalf("job %d: submit %d before previous %d", j.JobNumber, j.SubmitTime, prev)
		}
		prev = j.SubmitTime
		if j.Partition < 1 || j.Partition > 3 {
			t.Fatalf("job %d: partition %d outside [1,3]", j.JobNumber, j.Partition)
		}
		perPart[j.Partition]++
		if _, ok := minUID[j.Partition]; !ok || j.UserID < minUID[j.Partition] {
			minUID[j.Partition] = j.UserID
		}
		if j.UserID > maxUID[j.Partition] {
			maxUID[j.Partition] = j.UserID
		}
	}
	for p, want := range map[int64]int{1: 334, 2: 333, 3: 333} {
		if perPart[p] != want {
			t.Fatalf("partition %d emitted %d jobs, want %d", p, perPart[p], want)
		}
	}
	// Client user populations are offset to stay disjoint, in index order.
	for p := int64(1); p < 3; p++ {
		if maxUID[p] >= minUID[p+1] {
			t.Fatalf("user IDs overlap: client %d ends at %d, client %d starts at %d",
				p, maxUID[p], p+1, minUID[p+1])
		}
	}
}

// TestMultiSourceShortEnvelopePeriod: an envelope whose window is far
// shorter than the mean interarrival must still complete (the walker
// crosses many zero-weight windows per arrival), keep the stream
// ordered, and concentrate arrivals in the live windows.
func TestMultiSourceShortEnvelopePeriod(t *testing.T) {
	cfg := streamCfg(300)
	cfg.BurstFraction = 0 // bursts bypass the envelope; isolate the base process
	m, err := NewMultiSource(cfg, []Client{
		{Name: "gated", Fraction: 1, Arrival: "poisson", Envelope: []float64{1, 0}, EnvelopePeriod: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != cfg.Jobs {
		t.Fatalf("emitted %d jobs, want %d", len(jobs), cfg.Jobs)
	}
	inWindow := 0
	var prev int64
	for _, j := range jobs {
		if j.SubmitTime < prev {
			t.Fatalf("job %d: submit %d before previous %d", j.JobNumber, j.SubmitTime, prev)
		}
		prev = j.SubmitTime
		if (j.SubmitTime/60)%2 == 0 {
			inWindow++
		}
	}
	// Window-boundary rounding can land a handful of arrivals on the
	// first instant of a zero-weight window; the mass must still be
	// overwhelmingly in the live windows.
	if frac := float64(inWindow) / float64(len(jobs)); frac < 0.95 {
		t.Fatalf("only %.0f%% of arrivals landed in live envelope windows", 100*frac)
	}
}

// TestMultiSourceZeroIntensityEnvelope: an envelope whose only nonzero
// window never fits inside the trace is a construction-time error, not
// a hang.
func TestMultiSourceZeroIntensityEnvelope(t *testing.T) {
	cfg := streamCfg(200)
	_, err := NewMultiSource(cfg, []Client{
		{Name: "never", Fraction: 1, Arrival: "poisson",
			Envelope: []float64{0, 1}, EnvelopePeriod: 1 << 40},
	})
	if err == nil {
		t.Fatal("zero-intensity envelope must fail construction")
	}
	if !strings.Contains(err.Error(), "intensity is zero") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestMultiSourceOverrides: per-client distribution overrides apply —
// a client with a shifted runtime distribution emits a different job
// mix than the inherited one.
func TestMultiSourceOverrides(t *testing.T) {
	cfg := streamCfg(400)
	base := []Client{
		{Name: "a", Fraction: 1, Arrival: "gamma", Shape: 0.5},
		{Name: "b", Fraction: 1, Arrival: "weibull"},
	}
	overridden := []Client{
		{Name: "a", Fraction: 1, Arrival: "gamma", Shape: 0.5,
			RuntimeLogMean: fptr(9.0), RuntimeLogSigma: fptr(0.5),
			ClassSigma: fptr(0.1), SerialFraction: fptr(1.0), MaxJobProcsFraction: fptr(1.0)},
		{Name: "b", Fraction: 1, Arrival: "weibull", Users: 3},
	}
	mb, err := NewMultiSource(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := NewMultiSource(cfg, overridden)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := Collect(mb)
	if err != nil {
		t.Fatal(err)
	}
	jo, err := Collect(mo)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(jb, jo) {
		t.Fatal("distribution overrides had no effect on the stream")
	}
	for _, j := range jo {
		if j.Partition == 1 && j.Procs() != 1 {
			t.Fatalf("client a is all-serial by override, yet job %d has width %d", j.JobNumber, j.Procs())
		}
	}
}

// TestValidateClients: the validation vocabulary, one rejection per
// rule, and a fully-loaded valid block.
func TestValidateClients(t *testing.T) {
	valid := []Client{
		{Name: "x", Fraction: 0.7},
		{Fraction: 0.3, Arrival: "gamma", Shape: 0.4,
			Envelope: []float64{1, 0.5}, EnvelopePeriod: 3600, Users: 5,
			RuntimeLogMean: fptr(7), RuntimeLogSigma: fptr(1),
			ClassSigma: fptr(0.2), SerialFraction: fptr(0.5), MaxJobProcsFraction: fptr(0.5)},
	}
	if err := ValidateClients(valid); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	cases := []struct {
		name    string
		clients []Client
		want    string
	}{
		{"empty", nil, "at least one client"},
		{"dup names", []Client{{Name: "x", Fraction: 1}, {Name: "x", Fraction: 1}}, "duplicate"},
		{"dup default names", []Client{{Fraction: 1, Name: "c1"}, {Fraction: 1}}, "duplicate"},
		{"negative fraction", []Client{{Fraction: -0.1}}, "fraction"},
		{"all-zero fractions", []Client{{Fraction: 0}, {Name: "y", Fraction: 0}}, "sum"},
		{"bad arrival", []Client{{Fraction: 1, Arrival: "lognormal"}}, "arrival"},
		{"shape on poisson", []Client{{Fraction: 1, Arrival: "poisson", Shape: 2}}, "shape"},
		{"negative shape", []Client{{Fraction: 1, Arrival: "gamma", Shape: -1}}, "shape"},
		{"envelope no period", []Client{{Fraction: 1, Envelope: []float64{1}}}, "envelope_period"},
		{"period no envelope", []Client{{Fraction: 1, EnvelopePeriod: 60}}, "envelope_period without"},
		{"negative weight", []Client{{Fraction: 1, Envelope: []float64{-1}, EnvelopePeriod: 60}}, "weight"},
		{"zero weights", []Client{{Fraction: 1, Envelope: []float64{0, 0}, EnvelopePeriod: 60}}, "not all be zero"},
		{"negative users", []Client{{Fraction: 1, Users: -1}}, "users"},
		{"bad sigma", []Client{{Fraction: 1, RuntimeLogSigma: fptr(-1)}}, "runtime_log_sigma"},
		{"bad class sigma", []Client{{Fraction: 1, ClassSigma: fptr(-1)}}, "class_sigma"},
		{"bad serial", []Client{{Fraction: 1, SerialFraction: fptr(1.5)}}, "serial_fraction"},
		{"bad width cap", []Client{{Fraction: 1, MaxJobProcsFraction: fptr(0)}}, "max_job_procs_fraction"},
	}
	for _, tc := range cases {
		err := ValidateClients(tc.clients)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestApportion: largest-remainder splitting — exact totals, ties to
// the lower index, zero fractions excluded even from leftovers.
func TestApportion(t *testing.T) {
	cases := []struct {
		total int
		fracs []float64
		want  []int
	}{
		{10, []float64{1, 1, 1}, []int{4, 3, 3}},
		{7, []float64{0.5, 0.5}, []int{4, 3}},
		{5, []float64{1, 0, 1}, []int{3, 0, 2}},
		{1, []float64{0.2, 0.3}, []int{0, 1}},
		{0, []float64{1, 1}, []int{0, 0}},
		{2, []float64{0, 1, 0}, []int{0, 2, 0}},
	}
	for _, tc := range cases {
		got := apportion(tc.total, tc.fracs)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("apportion(%d, %v) = %v, want %v", tc.total, tc.fracs, got, tc.want)
		}
		sum := 0
		for _, c := range got {
			sum += c
		}
		if sum != tc.total {
			t.Errorf("apportion(%d, %v) sums to %d", tc.total, tc.fracs, sum)
		}
	}
}

// TestMultiSourceHeader: the written header names every client with its
// partition, share and arrival process.
func TestMultiSourceHeader(t *testing.T) {
	cfg := streamCfg(200)
	m, err := NewMultiSource(cfg, []Client{
		{Name: "web", Fraction: 3, Arrival: "poisson"},
		{Name: "batch", Fraction: 1, Arrival: "gamma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := m.Header()
	if h.MaxProcs != cfg.MaxProcs || h.MaxJobs != int64(cfg.Jobs) {
		t.Fatalf("header %+v does not describe the stream", h)
	}
	var partitions []string
	for _, f := range h.Fields {
		if f.Key == "Partition" {
			partitions = append(partitions, f.Value)
		}
	}
	if len(partitions) != 2 {
		t.Fatalf("header has %d Partition fields, want 2: %v", len(partitions), h.Fields)
	}
	if !strings.Contains(partitions[0], "client web") || !strings.Contains(partitions[0], "poisson") {
		t.Fatalf("partition 1 field %q misses the client description", partitions[0])
	}
	if !strings.Contains(partitions[1], "client batch") || !strings.Contains(partitions[1], "25.0%") {
		t.Fatalf("partition 2 field %q misses the realized share", partitions[1])
	}
}

// TestGenerateMulti: the preloading wrapper attaches the client names
// and produces exactly the merged stream's jobs with client indices
// recovered from the Partition field.
func TestGenerateMulti(t *testing.T) {
	cfg := streamCfg(300)
	clients := []Client{
		{Name: "a", Fraction: 2},
		{Name: "b", Fraction: 1, Arrival: "gamma"},
	}
	w, err := GenerateMulti(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Clients, []string{"a", "b"}) {
		t.Fatalf("workload clients %v, want [a b]", w.Clients)
	}
	if len(w.Jobs) != cfg.Jobs {
		t.Fatalf("generated %d jobs, want %d", len(w.Jobs), cfg.Jobs)
	}
	seen := map[int64]int{}
	for _, j := range w.Jobs {
		if j.Partition < 1 || j.Partition > 2 {
			t.Fatalf("job %d: partition %d outside [1,2]", j.JobNumber, j.Partition)
		}
		seen[j.Partition]++
	}
	if seen[1] != 200 || seen[2] != 100 {
		t.Fatalf("client job counts %v, want 200/100", seen)
	}
}
