package workload

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/swf"
	"repro/internal/trace"
)

// Source is a lazily pulled stream of job submissions, the bounded-memory
// counterpart of trace.Workload. NextJob returns records in nondecreasing
// SubmitTime order and io.EOF after the last one; any other error is
// fatal to the consuming simulation. Implementations exist for in-memory
// slices (SliceSource), SWF files read incrementally (ScanSource, usually
// wrapped in CleanSource/StatusSource), and the streaming synthetic
// generators (GenSource, stream.go; MultiSource, clients.go). Every
// implementation documents its memory bound — the property that makes
// million-job runs affordable.
type Source interface {
	NextJob() (swf.Job, error)
}

// SliceSource streams an in-memory job slice. It is how a preloaded
// trace.Workload is fed to the streaming engine — memory is O(len(jobs)),
// already spent by the caller, but the engine still avoids retaining
// per-job runtime state.
type SliceSource struct {
	jobs []swf.Job
	next int
}

// NewSliceSource returns a Source over jobs (not copied; callers must
// not mutate it while streaming).
func NewSliceSource(jobs []swf.Job) *SliceSource {
	return &SliceSource{jobs: jobs}
}

// FromWorkload streams a preloaded workload's jobs.
func FromWorkload(w *trace.Workload) *SliceSource {
	return NewSliceSource(w.Jobs)
}

// NextJob implements Source.
func (s *SliceSource) NextJob() (swf.Job, error) {
	if s.next >= len(s.jobs) {
		return swf.Job{}, io.EOF
	}
	j := s.jobs[s.next]
	s.next++
	return j, nil
}

// ScanSource adapts an swf.Scanner to the Source interface. The raw
// records are passed through untouched: archive logs should normally be
// wrapped in StatusSource and/or CleanSource before simulation, exactly
// as the preloading path applies swf.ApplyStatus and swf.Clean. Memory
// is O(1) beyond the scanner's line buffer.
type ScanSource struct {
	sc *swf.Scanner
}

// NewScanSource wraps a streaming SWF reader.
func NewScanSource(sc *swf.Scanner) *ScanSource { return &ScanSource{sc: sc} }

// NextJob implements Source.
func (s *ScanSource) NextJob() (swf.Job, error) { return s.sc.Next() }

// CleanSource applies swf.Clean's per-job rules on the fly (shared via
// swf.CleanJob so the paths can never drift): jobs with non-positive
// runtime, processor count or submit time are dropped, jobs wider than
// the machine are dropped, runtimes are capped at the requested time
// and missing requested times default to the runtime. swf.Clean also
// sorts; a stream cannot, but the only silent case — several jobs
// sharing one submit instant, written out of job-number order — is
// reproduced exactly by buffering each instant's run of jobs and
// emitting it in Clean's (SubmitTime, JobNumber) order. Memory is
// bounded by the busiest single submit instant. A genuinely unsorted
// log still fails loudly in the engine's order check and must take the
// preloading path.
type CleanSource struct {
	src      Source
	maxProcs int64
	instant  []swf.Job // cleaned jobs sharing the current submit instant
	next     int
	pending  *swf.Job // first cleaned job of the following instant
	done     bool
}

// NewCleanSource wraps src with the per-job cleaning rules for a machine
// of maxProcs processors (<= 0 skips the capacity check, as in swf.Clean).
func NewCleanSource(src Source, maxProcs int64) *CleanSource {
	return &CleanSource{src: src, maxProcs: maxProcs}
}

// NextJob implements Source.
func (c *CleanSource) NextJob() (swf.Job, error) {
	if c.next >= len(c.instant) {
		if err := c.fill(); err != nil {
			return swf.Job{}, err
		}
	}
	j := c.instant[c.next]
	c.next++
	return j, nil
}

// fill buffers the next submit instant's cleaned jobs, sorted the way
// swf.Clean sorts ties.
func (c *CleanSource) fill() error {
	c.instant = c.instant[:0]
	c.next = 0
	if c.pending != nil {
		c.instant = append(c.instant, *c.pending)
		c.pending = nil
	}
	for !c.done {
		raw, err := c.src.NextJob()
		if err == io.EOF {
			c.done = true
			break
		}
		if err != nil {
			return err
		}
		keep, j := swf.CleanJob(&raw, c.maxProcs)
		if !keep {
			continue
		}
		if len(c.instant) > 0 && j.SubmitTime != c.instant[0].SubmitTime {
			c.pending = &j
			break
		}
		c.instant = append(c.instant, j)
	}
	if len(c.instant) == 0 {
		return io.EOF
	}
	sort.SliceStable(c.instant, func(a, b int) bool {
		return c.instant[a].JobNumber < c.instant[b].JobNumber
	})
	return nil
}

// StatusSource applies an swf.StatusMode on the fly. Keep, skip and
// truncate are per-job decisions and stream exactly as swf.ApplyStatus
// in O(1) memory; replay is rejected because deriving the cancellation
// script needs the whole log (use the preloading path for replay).
type StatusSource struct {
	src  Source
	mode swf.StatusMode
}

// NewStatusSource wraps src with the status policy.
func NewStatusSource(src Source, mode swf.StatusMode) (*StatusSource, error) {
	if mode == swf.StatusReplay {
		return nil, fmt.Errorf("workload: status mode replay needs the whole log (use the preloading path)")
	}
	return &StatusSource{src: src, mode: mode}, nil
}

// NextJob implements Source.
func (s *StatusSource) NextJob() (swf.Job, error) {
	for {
		j, err := s.src.NextJob()
		if err != nil {
			return swf.Job{}, err
		}
		if keep, out := swf.ApplyStatusJob(&j, s.mode); keep {
			return out, nil
		}
	}
}

// prependSource yields buffered records before draining the tail.
type prependSource struct {
	head []swf.Job
	next int
	tail Source
}

// Prepend returns a Source yielding the given records first, then
// everything from src. It is how a consumer that had to peek (e.g. to
// read an SWF header before choosing a machine size) puts the peeked
// records back. Memory is O(len(head)).
func Prepend(head []swf.Job, src Source) Source {
	return &prependSource{head: head, tail: src}
}

// NextJob implements Source.
func (p *prependSource) NextJob() (swf.Job, error) {
	if p.next < len(p.head) {
		j := p.head[p.next]
		p.next++
		return j, nil
	}
	return p.tail.NextJob()
}

// Collect drains a source into a slice — the bridge back to the
// preloading world, used by tests and by differential harnesses that
// need the same stream twice.
func Collect(src Source) ([]swf.Job, error) {
	var jobs []swf.Job
	for {
		j, err := src.NextJob()
		if err == io.EOF {
			return jobs, nil
		}
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
}
