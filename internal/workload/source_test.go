package workload

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/swf"
	"repro/internal/trace"
)

func TestSliceSourceDrains(t *testing.T) {
	jobs := []swf.Job{{JobNumber: 1}, {JobNumber: 2}}
	got, err := Collect(NewSliceSource(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jobs) {
		t.Fatalf("collected %v, want %v", got, jobs)
	}
	src := NewSliceSource(jobs)
	for range jobs {
		if _, err := src.NextJob(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.NextJob(); err != io.EOF {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}

// TestCleanSourceMatchesClean holds the streaming cleaner to swf.Clean's
// per-job rules on a trace that exercises every rule (already sorted, so
// Clean's sort is a no-op and outputs are comparable).
func TestCleanSourceMatchesClean(t *testing.T) {
	jobs := []swf.Job{
		{JobNumber: 1, SubmitTime: 0, RunTime: 100, RequestedProcs: 4, RequestedTime: 50}, // runtime capped at request
		{JobNumber: 2, SubmitTime: 1, RunTime: 0, RequestedProcs: 1, RequestedTime: 10},   // dropped: no runtime
		{JobNumber: 3, SubmitTime: 2, RunTime: 10, RequestedProcs: 0},                     // dropped: no procs
		{JobNumber: 4, SubmitTime: 3, RunTime: 10, RequestedProcs: 99, RequestedTime: 20}, // dropped: wider than machine
		{JobNumber: 5, SubmitTime: 4, RunTime: 10, RequestedProcs: 2},                     // request defaults to runtime
		{JobNumber: 6, SubmitTime: -1, RunTime: 10, RequestedProcs: 1, RequestedTime: 20}, // dropped: negative submit
		{JobNumber: 7, SubmitTime: 5, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},  // kept as-is
	}
	tr := &swf.Trace{Jobs: jobs}
	want := swf.Clean(tr, 16).Jobs

	got, err := Collect(NewCleanSource(NewSliceSource(jobs), 16))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming clean differs:\n%v\nvs swf.Clean:\n%v", got, want)
	}
}

// TestStatusSourceMatchesApplyStatus checks every streamable mode against
// swf.ApplyStatus and that replay is rejected.
func TestStatusSourceMatchesApplyStatus(t *testing.T) {
	jobs := []swf.Job{
		{JobNumber: 1, RunTime: 10, RequestedProcs: 1, Status: swf.StatusCompleted},
		{JobNumber: 2, RunTime: 5, RequestedProcs: 1, Status: swf.StatusCancelled},
		{JobNumber: 3, RunTime: 0, RequestedProcs: 1, Status: swf.StatusCancelled, RequestedTime: 30},
		{JobNumber: 4, RunTime: 7, RequestedProcs: 1, Status: swf.StatusFailed},
	}
	for _, mode := range []swf.StatusMode{swf.StatusKeep, swf.StatusSkip, swf.StatusTruncate} {
		want := swf.ApplyStatus(&swf.Trace{Jobs: jobs}, mode).Jobs
		src, err := NewStatusSource(NewSliceSource(jobs), mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: streaming %v != ApplyStatus %v", mode, got, want)
		}
	}
	if _, err := NewStatusSource(NewSliceSource(jobs), swf.StatusReplay); err == nil {
		t.Fatal("replay mode should be rejected on the streaming path")
	}
}

// TestCleanSourceSortsSubmitTies pins the tie semantics: several jobs
// sharing one submit instant but written out of job-number order must
// come out in swf.Clean's (SubmitTime, JobNumber) order, so the
// streamed and preloaded replays of such a log schedule identically.
func TestCleanSourceSortsSubmitTies(t *testing.T) {
	jobs := []swf.Job{
		{JobNumber: 3, SubmitTime: 0, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
		{JobNumber: 1, SubmitTime: 0, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
		{JobNumber: 2, SubmitTime: 0, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
		{JobNumber: 6, SubmitTime: 5, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
		{JobNumber: 5, SubmitTime: 5, RunTime: 0, RequestedProcs: 1, RequestedTime: 20}, // dropped mid-tie
		{JobNumber: 4, SubmitTime: 5, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
		{JobNumber: 7, SubmitTime: 9, RunTime: 10, RequestedProcs: 1, RequestedTime: 20},
	}
	want := swf.Clean(&swf.Trace{Jobs: jobs}, 16).Jobs
	got, err := Collect(NewCleanSource(NewSliceSource(jobs), 16))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie order differs from swf.Clean:\n stream: %v\n clean:  %v", ids(got), ids(want))
	}
}

func ids(jobs []swf.Job) []int64 {
	out := make([]int64, len(jobs))
	for i := range jobs {
		out[i] = jobs[i].JobNumber
	}
	return out
}

func TestPrependAndFromWorkload(t *testing.T) {
	tail := []swf.Job{{JobNumber: 3}, {JobNumber: 4}}
	src := Prepend([]swf.Job{{JobNumber: 1}, {JobNumber: 2}}, NewSliceSource(tail))
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range got {
		if j.JobNumber != int64(i+1) {
			t.Fatalf("prepend order wrong: %v", got)
		}
	}
	w := &trace.Workload{Name: "w", MaxProcs: 8, Jobs: tail}
	got, err = Collect(FromWorkload(w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("FromWorkload yielded %v, want %v", got, tail)
	}
}

// TestScanSourceStreamsFile pulls jobs straight from SWF text.
func TestScanSourceStreamsFile(t *testing.T) {
	const text = "; MaxProcs: 8\n1 0 -1 10 2 -1 -1 2 20 -1 1 1 1 1 1 1 -1 -1\n2 3 -1 5 1 -1 -1 1 9 -1 1 1 1 1 1 1 -1 -1\n"
	sc := swf.NewScanner(strings.NewReader(text))
	got, err := Collect(NewScanSource(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].JobNumber != 1 || got[1].JobNumber != 2 {
		t.Fatalf("unexpected jobs: %v", got)
	}
	if sc.Header().MaxProcs != 8 {
		t.Fatalf("header MaxProcs = %d, want 8", sc.Header().MaxProcs)
	}
}
