package workload

import (
	"io"
	"reflect"
	"testing"
)

// streamCfg is a small config exercising every generator feature.
func streamCfg(jobs int) Config {
	cfg, err := Scaled("KTH-SP2", jobs)
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestGenSourceDeterministic: two streams from the same config are
// identical, and a reseeded one is not.
func TestGenSourceDeterministic(t *testing.T) {
	cfg := streamCfg(400)
	a, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := Collect(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := Collect(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ja, jb) {
		t.Fatal("same config produced different streams")
	}
	cfg.Seed++
	c, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jc, err := Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ja, jc) {
		t.Fatal("reseeded config produced the same stream")
	}
}

// TestGenSourceInvariants: the stream is submit-ordered, sized exactly,
// and every record respects the structural invariants the simulator
// relies on (positive runtime <= request, width within the machine).
func TestGenSourceInvariants(t *testing.T) {
	cfg := streamCfg(600)
	g, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxProcs() != cfg.MaxProcs || g.Jobs() != cfg.Jobs || g.Name() != cfg.Name {
		t.Fatalf("accessor mismatch: %d/%d/%s", g.MaxProcs(), g.Jobs(), g.Name())
	}
	var prev int64
	n := 0
	for {
		j, err := g.NextJob()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if j.SubmitTime < prev {
			t.Fatalf("job %d: submit %d before previous %d", j.JobNumber, j.SubmitTime, prev)
		}
		prev = j.SubmitTime
		if j.RunTime <= 0 || j.RunTime > j.Request() {
			t.Fatalf("job %d: runtime %d outside (0, %d]", j.JobNumber, j.RunTime, j.Request())
		}
		if j.Procs() <= 0 || j.Procs() > cfg.MaxProcs {
			t.Fatalf("job %d: width %d outside machine %d", j.JobNumber, j.Procs(), cfg.MaxProcs)
		}
		if j.JobNumber != int64(n) {
			t.Fatalf("job numbers not sequential: %d at position %d", j.JobNumber, n)
		}
	}
	if n != cfg.Jobs {
		t.Fatalf("stream emitted %d jobs, want %d", n, cfg.Jobs)
	}
	if _, err := g.NextJob(); err != io.EOF {
		t.Fatalf("exhausted stream returned %v, want io.EOF", err)
	}
}

// TestGenSourceLoadMatchesGenerate: the streaming arrival process must
// land the offered load in the same regime as Generate (same proto jobs,
// same calibrated duration, different arrival draws).
func TestGenSourceLoadMatchesGenerate(t *testing.T) {
	cfg := streamCfg(1500)
	g, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamWork, memWork int64
	for i := range jobs {
		streamWork += jobs[i].RunTime * jobs[i].Procs()
	}
	for i := range w.Jobs {
		memWork += w.Jobs[i].RunTime * w.Jobs[i].Procs()
	}
	if streamWork != memWork {
		t.Fatalf("proto streams diverged: stream work %d, Generate work %d", streamWork, memWork)
	}
	span := jobs[len(jobs)-1].SubmitTime - jobs[0].SubmitTime
	memSpan := w.Jobs[len(w.Jobs)-1].SubmitTime - w.Jobs[0].SubmitTime
	if span <= 0 || memSpan <= 0 {
		t.Fatalf("degenerate spans: %d vs %d", span, memSpan)
	}
	ratio := float64(span) / float64(memSpan)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("arrival span diverged: stream %d vs Generate %d (ratio %.2f)", span, memSpan, ratio)
	}
}

func TestGenSourceHeader(t *testing.T) {
	cfg := streamCfg(100)
	g, err := NewGenSource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := g.Header()
	if h.MaxProcs != cfg.MaxProcs || h.MaxJobs != int64(cfg.Jobs) {
		t.Fatalf("header %+v does not describe the stream", h)
	}
	if len(h.Fields) == 0 {
		t.Fatal("header should carry descriptive directives")
	}
}

// TestHugeSyntheticPresetResolvable: the benchmark preset is addressable
// but stays out of the Table-4 campaign set.
func TestHugeSyntheticPresetResolvable(t *testing.T) {
	cfg, err := Preset("huge-synthetic")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Jobs != 1_000_000 {
		t.Fatalf("huge-synthetic has %d jobs, want 1M", cfg.Jobs)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, n := range PresetNames() {
		if n == "huge-synthetic" {
			t.Fatal("huge-synthetic must not join the Table-4 preset list")
		}
	}
	scaled, err := Scaled("huge-synthetic", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Jobs != 2000 {
		t.Fatalf("Scaled kept %d jobs, want 2000", scaled.Jobs)
	}
}
