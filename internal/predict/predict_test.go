package predict

import (
	"testing"

	"repro/internal/job"
	"repro/internal/ml"
)

func j(id, user, procs, runtime, request int64) *job.Job {
	return &job.Job{ID: id, User: user, Procs: procs, Runtime: runtime, Request: request}
}

func TestClairvoyant(t *testing.T) {
	p := NewClairvoyant()
	if p.Name() != "Clairvoyant" {
		t.Fatal("name")
	}
	if got := p.Predict(j(1, 1, 1, 1234, 9999), 0); got != 1234 {
		t.Fatalf("Predict = %d, want actual runtime", got)
	}
}

func TestRequestedTime(t *testing.T) {
	p := NewRequestedTime()
	if p.Name() != "RequestedTime" {
		t.Fatal("name")
	}
	if got := p.Predict(j(1, 1, 1, 1234, 9999), 0); got != 9999 {
		t.Fatalf("Predict = %d, want request", got)
	}
}

func TestUserAverageFallsBackToRequest(t *testing.T) {
	p := NewUserAverage(2)
	if got := p.Predict(j(1, 7, 1, 100, 5000), 0); got != 5000 {
		t.Fatalf("no-history prediction = %d, want request 5000", got)
	}
}

func TestUserAverageAveragesLastTwo(t *testing.T) {
	p := NewUserAverage(2)
	p.OnFinish(j(1, 7, 1, 100, 5000), 10)
	if got := p.Predict(j(2, 7, 1, 0, 5000), 0); got != 100 {
		t.Fatalf("single-history prediction = %d, want 100", got)
	}
	p.OnFinish(j(2, 7, 1, 300, 5000), 20)
	if got := p.Predict(j(3, 7, 1, 0, 5000), 0); got != 200 {
		t.Fatalf("prediction = %d, want (100+300)/2", got)
	}
	// A third completion evicts the oldest.
	p.OnFinish(j(3, 7, 1, 500, 5000), 30)
	if got := p.Predict(j(4, 7, 1, 0, 5000), 0); got != 400 {
		t.Fatalf("prediction = %d, want (300+500)/2", got)
	}
}

func TestUserAverageIsolatesUsers(t *testing.T) {
	p := NewUserAverage(2)
	p.OnFinish(j(1, 7, 1, 100, 5000), 10)
	if got := p.Predict(j(2, 8, 1, 0, 7777), 0); got != 7777 {
		t.Fatalf("user 8 saw user 7's history: %d", got)
	}
}

func TestUserAverageName(t *testing.T) {
	if NewUserAverage(2).Name() != "AVE2" || NewUserAverage(3).Name() != "AVE3" {
		t.Fatal("names")
	}
}

func TestUserAverageInvalidK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewUserAverage(0)
}

func TestLearningLifecycle(t *testing.T) {
	p := NewLearning(ml.SquaredLoss)
	if p.Name() == "" {
		t.Fatal("empty name")
	}
	user := int64(3)
	// Train on a stable pattern: runtime always 600, request always 7200.
	for i := 0; i < 300; i++ {
		jj := j(int64(i+1), user, 4, 600, 7200)
		p.Predict(jj, int64(i*100))
		p.OnSubmit(jj, int64(i*100))
		p.OnStart(jj, int64(i*100))
		p.OnFinish(jj, int64(i*100+600))
	}
	probe := j(1000, user, 4, 600, 7200)
	got := p.Predict(probe, 100000)
	if got < 200 || got > 1800 {
		t.Fatalf("after 300 identical jobs, prediction = %d, want near 600", got)
	}
}

func TestLearningFeatureMapCleanup(t *testing.T) {
	p := NewLearning(ml.ELoss)
	jj := j(1, 1, 2, 60, 600)
	p.Predict(jj, 0)
	if len(p.features) != 1 {
		t.Fatalf("feature map size %d after predict", len(p.features))
	}
	p.OnFinish(jj, 100)
	if len(p.features) != 0 {
		t.Fatal("features not released after finish")
	}
}

func TestLearningFinishWithoutPredict(t *testing.T) {
	// A finish without a remembered prediction (defensive path) must not
	// panic and must still update the tracker.
	p := NewLearning(ml.ELoss)
	p.OnFinish(j(1, 1, 2, 60, 600), 100)
}
