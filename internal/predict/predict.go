// Package predict defines the running-time prediction techniques the
// paper evaluates: the Clairvoyant and Requested Time bounds, Tsafrir's
// AVE2 user-history average, and the machine-learning model of Section 4
// wrapped behind the same interface. A Predictor is driven by the
// simulator through lifecycle hooks so it sees exactly the information a
// real job management system would have at each instant.
package predict

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/ml"
)

// Predictor estimates job running times on-line.
//
// The simulator calls Predict exactly once per job at its submission
// instant (before OnSubmit), then OnSubmit, then OnStart when the job
// begins execution and OnFinish when it completes. Predictions returned
// are clamped by the caller into [1, p̃j].
type Predictor interface {
	// Name identifies the technique in reports.
	Name() string
	// Predict returns the predicted running time (seconds) for a job
	// being submitted at instant now.
	Predict(j *job.Job, now int64) int64
	// OnSubmit tells the predictor the job entered the system.
	OnSubmit(j *job.Job, now int64)
	// OnStart tells the predictor the job began execution.
	OnStart(j *job.Job, now int64)
	// OnFinish tells the predictor the job completed; j.Runtime is now
	// observable and may be learned from.
	OnFinish(j *job.Job, now int64)
}

// noopHooks provides empty lifecycle hooks for stateless predictors.
type noopHooks struct{}

func (noopHooks) OnSubmit(*job.Job, int64) {}
func (noopHooks) OnStart(*job.Job, int64)  {}
func (noopHooks) OnFinish(*job.Job, int64) {}

// Clairvoyant predicts the actual running time — the upper bound on what
// any technique can achieve (Table 1's EASY-Clairvoyant).
type Clairvoyant struct{ noopHooks }

// NewClairvoyant returns the clairvoyant predictor.
func NewClairvoyant() *Clairvoyant { return &Clairvoyant{} }

// Name implements Predictor.
func (*Clairvoyant) Name() string { return "Clairvoyant" }

// Predict implements Predictor.
func (*Clairvoyant) Predict(j *job.Job, _ int64) int64 { return j.Runtime }

// RequestedTime predicts the user's requested running time — what plain
// EASY uses.
type RequestedTime struct{ noopHooks }

// NewRequestedTime returns the requested-time predictor.
func NewRequestedTime() *RequestedTime { return &RequestedTime{} }

// Name implements Predictor.
func (*RequestedTime) Name() string { return "RequestedTime" }

// Predict implements Predictor.
func (*RequestedTime) Predict(j *job.Job, _ int64) int64 { return j.Request }

// UserAverage predicts the average of the user's K most recent actual
// running times (AVE2 for K=2, the technique of Tsafrir et al. used by
// EASY++), falling back to the requested time while the user has no
// history.
type UserAverage struct {
	k       int
	history map[int64][]int64 // user -> most recent runtimes, newest first
}

// NewUserAverage returns an AVE(k) predictor; k must be positive.
func NewUserAverage(k int) *UserAverage {
	if k <= 0 {
		panic(fmt.Sprintf("predict: UserAverage with k=%d", k))
	}
	return &UserAverage{k: k, history: make(map[int64][]int64)}
}

// Name implements Predictor.
func (p *UserAverage) Name() string { return fmt.Sprintf("AVE%d", p.k) }

// Predict implements Predictor.
func (p *UserAverage) Predict(j *job.Job, _ int64) int64 {
	h := p.history[j.User]
	if len(h) == 0 {
		return j.Request
	}
	var sum int64
	for _, r := range h {
		sum += r
	}
	return sum / int64(len(h))
}

// OnSubmit implements Predictor.
func (*UserAverage) OnSubmit(*job.Job, int64) {}

// OnStart implements Predictor.
func (*UserAverage) OnStart(*job.Job, int64) {}

// OnFinish implements Predictor. The newest runtime is shifted into the
// user's window in place: once a user's window reaches k entries it is
// never reallocated, so the learning hot path stops allocating entirely
// (this is the predictor update inside every job completion).
func (p *UserAverage) OnFinish(j *job.Job, _ int64) {
	h := p.history[j.User]
	if len(h) < p.k {
		h = append(h, 0)
	}
	copy(h[1:], h)
	h[0] = j.Runtime
	p.history[j.User] = h
}

// Learning wraps the ml regression model behind the Predictor interface:
// features are extracted at submission from the tracker state, remembered
// until the job completes, and then used for one on-line training step.
type Learning struct {
	model    *ml.Model
	tracker  *ml.Tracker
	features map[int64][]float64 // job ID -> raw features at submission
	name     string
}

// NewLearning builds an ML predictor training under the given loss with
// default hyper-parameters.
func NewLearning(loss ml.Loss) *Learning {
	return NewLearningConfig(ml.DefaultConfig(loss))
}

// NewLearningConfig builds an ML predictor with explicit configuration.
func NewLearningConfig(cfg ml.Config) *Learning {
	return &Learning{
		model:    ml.NewModel(cfg),
		tracker:  ml.NewTracker(),
		features: make(map[int64][]float64),
		name:     "ML[" + cfg.Loss.Name() + "]",
	}
}

// Name implements Predictor.
func (p *Learning) Name() string { return p.name }

// Model exposes the underlying regression model (for analysis).
func (p *Learning) Model() *ml.Model { return p.model }

// Predict implements Predictor.
func (p *Learning) Predict(j *job.Job, now int64) int64 {
	x := p.tracker.Features(j, now)
	p.features[j.ID] = x
	return int64(p.model.Predict(x))
}

// OnSubmit implements Predictor.
func (p *Learning) OnSubmit(j *job.Job, _ int64) { p.tracker.OnSubmit(j) }

// OnStart implements Predictor.
func (p *Learning) OnStart(j *job.Job, _ int64) { p.tracker.OnStart(j) }

// OnFinish implements Predictor.
func (p *Learning) OnFinish(j *job.Job, now int64) {
	if x, ok := p.features[j.ID]; ok {
		p.model.Observe(x, float64(j.Runtime), float64(j.Procs))
		delete(p.features, j.ID)
	}
	p.tracker.OnFinish(j, now)
}
