package sched

// This file is the routing stage of the federated platform: a Router
// picks which cluster a submitted job is dispatched to, in front of the
// per-cluster policy sessions. Routing is a submit-time decision — once
// a job is routed its queueing, backfilling and corrections all happen
// inside one cluster's scheduling session — so the Router sees the
// machines and queue depths, not the policies.
//
// Every implementation shares one hard rule, enforced by eligible():
// a job is never placed on a cluster whose eventual capacity (nominal
// minus pending drains) cannot fit it while any cluster that can fit it
// exists. If drains have taken every fitting cluster below the job's
// width, the routers fall back to the clusters whose nominal size fits —
// the job waits there for a restore, exactly as a single-machine run
// waits out a drain. A job wider than every cluster's nominal size is
// rejected by the engine before routing, so Route always has a
// candidate.

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/platform"
)

// ClusterState is the router's read-only view of one cluster at the
// instant a job is routed.
type ClusterState struct {
	// Name labels the cluster.
	Name string
	// Machine is the cluster's live machine state (capacity, free
	// processors, pending drains).
	Machine *platform.Machine
	// QueueLen is the cluster's current waiting-queue length.
	QueueLen int
}

// Router picks the destination cluster for a job at submit time.
type Router interface {
	// Name identifies the routing policy in reports and journal keys.
	Name() string
	// Route returns the index into clusters the job is dispatched to.
	// Implementations must return an eligible index (see eligible); the
	// engine panics on an out-of-range or too-small destination, since
	// that is a router bug, not an input error.
	Route(j *job.Job, now int64, clusters []ClusterState) int
}

// RouterNames lists the built-in routing policies in NewRouter's
// vocabulary, for flag/spec error messages.
const RouterNames = "round-robin, least-loaded, queue-depth, spillover"

// NewRouter constructs a fresh routing session by name. Stateful
// routers (round-robin) must not be shared across concurrent runs.
func NewRouter(name string) (Router, error) {
	switch name {
	case "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return &LeastLoaded{}, nil
	case "queue-depth":
		return &QueueDepth{}, nil
	case "spillover":
		return &Spillover{}, nil
	}
	return nil, fmt.Errorf("sched: unknown router %q (have %s)", name, RouterNames)
}

// Eligible appends to dst the indices of the clusters the job may be
// routed to — the candidate set every built-in router chooses from. It
// is exported for the flight recorder, which stamps route events with
// the same candidate set the router saw; policy implementations should
// keep using it through the Route entry points.
func Eligible(dst []int, j *job.Job, clusters []ClusterState) []int {
	return eligible(dst, j, clusters)
}

// eligible appends to dst the indices of the clusters the job may be
// routed to: those whose eventual capacity fits it, or — when drains
// have taken every fitting cluster below the job's width — those whose
// nominal size fits, where the job can wait for a restore. The result
// is empty only for a job wider than every cluster, which the engine
// rejects before routing.
func eligible(dst []int, j *job.Job, clusters []ClusterState) []int {
	dst = dst[:0]
	for i, c := range clusters {
		if c.Machine.EventualCapacity() >= j.Procs {
			dst = append(dst, i)
		}
	}
	if len(dst) > 0 {
		return dst
	}
	for i, c := range clusters {
		if c.Machine.Total() >= j.Procs {
			dst = append(dst, i)
		}
	}
	return dst
}

// busyFraction is the load measure LeastLoaded minimizes: occupied over
// in-service processors. A fully drained cluster counts as fully busy.
func busyFraction(m *platform.Machine) float64 {
	cap := m.Capacity()
	if cap <= 0 {
		return 1
	}
	return float64(cap-m.Free()) / float64(cap)
}

// RoundRobin rotates over the eligible clusters: the k-th routed job
// goes to the k-th eligible candidate (mod their count). With
// homogeneous always-eligible clusters this is the textbook cycle; when
// eligibility shifts (drains, wide jobs) the rotation continues over
// whatever is currently eligible, so no routed job is ever skipped or
// starved. The rotation counter is the only state.
type RoundRobin struct {
	next int
	idx  []int
}

// Name implements Router.
func (*RoundRobin) Name() string { return "round-robin" }

// Route implements Router.
func (r *RoundRobin) Route(j *job.Job, now int64, clusters []ClusterState) int {
	r.idx = eligible(r.idx, j, clusters)
	if len(r.idx) == 0 {
		return -1
	}
	pick := r.idx[r.next%len(r.idx)]
	r.next++
	return pick
}

// LeastLoaded routes to the eligible cluster with the lowest occupied
// fraction of in-service processors, ties broken by lower index. It is
// stateless: the load signal is entirely in the machines.
type LeastLoaded struct{ idx []int }

// Name implements Router.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Route implements Router.
func (l *LeastLoaded) Route(j *job.Job, now int64, clusters []ClusterState) int {
	l.idx = eligible(l.idx, j, clusters)
	idx := l.idx
	if len(idx) == 0 {
		return -1
	}
	best, bestFrac := idx[0], busyFraction(clusters[idx[0]].Machine)
	for _, i := range idx[1:] {
		if f := busyFraction(clusters[i].Machine); f < bestFrac {
			best, bestFrac = i, f
		}
	}
	return best
}

// QueueDepth scores eligible clusters by waiting-queue length per
// eventually-available processor — the backlog each new job joins,
// normalized so a deep queue on a big cluster beats a shallow queue on
// a drained one. Ties break toward more free processors, then lower
// index.
type QueueDepth struct{ idx []int }

// Name implements Router.
func (*QueueDepth) Name() string { return "queue-depth" }

// Route implements Router.
func (q *QueueDepth) Route(j *job.Job, now int64, clusters []ClusterState) int {
	q.idx = eligible(q.idx, j, clusters)
	idx := q.idx
	if len(idx) == 0 {
		return -1
	}
	score := func(i int) float64 {
		ec := clusters[i].Machine.EventualCapacity()
		if ec <= 0 {
			// Fallback candidates (everything fitting is fully drained):
			// rank by raw backlog against the nominal size instead.
			ec = clusters[i].Machine.Total()
		}
		return float64(clusters[i].QueueLen) / float64(ec)
	}
	best, bestScore := idx[0], score(idx[0])
	for _, i := range idx[1:] {
		s := score(i)
		switch {
		case s < bestScore:
			best, bestScore = i, s
		case s == bestScore && clusters[i].Machine.Free() > clusters[best].Machine.Free():
			best = i
		}
	}
	return best
}

// Spillover prefers the first eligible cluster with enough free
// processors to start the job immediately; when every eligible cluster
// is saturated it falls back to the first eligible one — a primary
// cluster with overflow targets, in list order.
type Spillover struct{ idx []int }

// Name implements Router.
func (*Spillover) Name() string { return "spillover" }

// Route implements Router.
func (s *Spillover) Route(j *job.Job, now int64, clusters []ClusterState) int {
	s.idx = eligible(s.idx, j, clusters)
	idx := s.idx
	if len(idx) == 0 {
		return -1
	}
	for _, i := range idx {
		if clusters[i].Machine.Free() >= j.Procs {
			return i
		}
	}
	return idx[0]
}
