package sched

import (
	"sort"

	"repro/internal/job"
	"repro/internal/platform"
)

// This file keeps the original from-scratch formulations of the EASY and
// conservative policies: every Pick recomputes the availability state of
// the world (EASY's shadow reservation, conservative's full profile and
// queue reservations) with no memory between calls. They are the
// executable specification the incremental policies in sched.go are
// checked against — property tests assert decision-for-decision
// identical schedules — and the baseline the BenchmarkSchedPick
// micro-benchmarks measure the incremental speedup from.

// ReferenceEASY is the from-scratch EASY/EASY-SJBF specification: the
// shadow reservation is recomputed and the SJBF candidate order re-sorted
// on every Pick.
type ReferenceEASY struct {
	noHooks
	// Backfill is the candidate scan order.
	Backfill Order
}

// Name implements Policy.
func (e ReferenceEASY) Name() string {
	if e.Backfill == SJBFOrder {
		return "EASY-SJBF"
	}
	return "EASY"
}

// Pick implements Policy.
func (e ReferenceEASY) Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if len(queue) == 0 {
		return nil
	}
	head := queue[0]
	free := m.Free()
	if head.Procs <= free {
		return head
	}
	if len(queue) == 1 {
		return nil
	}
	shadow, extra := m.Reservation(now, head.Procs)
	candidates := queue[1:]
	if e.Backfill == SJBFOrder {
		candidates = append([]*job.Job(nil), candidates...)
		sort.SliceStable(candidates, func(a, b int) bool {
			return predLess(candidates[a], candidates[b])
		})
	}
	for _, c := range candidates {
		if c.Procs > free {
			continue
		}
		if now+c.Prediction <= shadow || c.Procs <= extra {
			return c
		}
	}
	return nil
}

// ReferenceConservative is the from-scratch conservative backfilling
// specification: every Pick rebuilds the availability profile from the
// machine's running jobs and recomputes every queued job's reservation
// in arrival order.
type ReferenceConservative struct{ noHooks }

// Name implements Policy.
func (ReferenceConservative) Name() string { return "Conservative" }

// Pick implements Policy.
func (ReferenceConservative) Pick(now int64, m *platform.Machine, queue []*job.Job) *job.Job {
	if len(queue) == 0 {
		return nil
	}
	profile := platform.ProfileFromMachine(m, now)
	for _, c := range queue {
		duration := c.Prediction
		if duration < 1 {
			duration = 1
		}
		start := profile.FindStart(now, duration, c.Procs)
		if start == now {
			return c
		}
		if start < platform.InfiniteTime {
			profile.Reserve(start, start+duration, c.Procs)
		}
	}
	return nil
}
