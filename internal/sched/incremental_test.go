package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/platform"
)

// The tests here target the incremental machinery directly: hook-driven
// state maintenance, the fallback rebuilds when Pick is called without
// hooks, and the per-instant decision caches. The end-to-end guarantee —
// schedules identical to the reference policies — lives in the sim
// package's property tests.

// TestEASYPickWithoutHooksMatchesReference: a hook-less Pick must fall
// back to rebuilding the SJBF index from the queue and agree with the
// from-scratch reference.
func TestEASYPickWithoutHooksMatchesReference(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	q := []*job.Job{waiting(1, 8, 10, 1000), waiting(2, 4, 20, 60), waiting(3, 4, 21, 10)}
	got := NewEASY(SJBFOrder).Pick(25, m, q)
	want := (ReferenceEASY{Backfill: SJBFOrder}).Pick(25, m, q)
	if got != want {
		t.Fatalf("fallback Pick = %v, reference = %v", got, want)
	}
	if got == nil || got.ID != 3 {
		t.Fatalf("SJBF should pick the shortest prediction, got %v", got)
	}
}

// TestEASYIndexMaintainedByHooks drives the SJBF index purely through
// OnSubmit/OnStart and checks scan order follows predictions.
func TestEASYIndexMaintainedByHooks(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	e := NewEASY(SJBFOrder)
	head := waiting(1, 8, 10, 1000)
	a := waiting(2, 2, 20, 60)
	b := waiting(3, 2, 21, 10)
	// Prime the machine association, then submit via hooks.
	if got := e.Pick(10, m, []*job.Job{head}); got != nil {
		t.Fatalf("head should not fit, got %v", got)
	}
	e.OnSubmit(head, 10)
	e.OnSubmit(a, 20)
	e.OnSubmit(b, 21)
	q := []*job.Job{head, a, b}
	if got := e.Pick(25, m, q); got == nil || got.ID != 3 {
		t.Fatalf("hook-maintained index should pick job 3, got %v", got)
	}
	// Start the picked job: it leaves the index, the next scan picks a.
	e.OnStart(b, 25)
	m.Start(&job.Job{ID: b.ID, Procs: b.Procs, Start: 25, Prediction: b.Prediction, Started: true})
	if got := e.Pick(25, m, []*job.Job{head, a}); got == nil || got.ID != 2 {
		t.Fatalf("after start, index should pick job 2, got %v", got)
	}
}

// TestEASYExtraConsumedIncrementally: a backfill start that outlives the
// shadow must shrink the cached extra processors so a second candidate of
// the same width is rejected within the same instant — exactly what the
// from-scratch recomputation would decide.
func TestEASYExtraConsumedIncrementally(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	e := NewEASY(FCFSOrder)
	head := waiting(1, 8, 10, 1000)
	// Two narrow long jobs: each fits the extra (10-8=2) alone, but only
	// one may start — the second would steal the head's processors.
	n1 := waiting(2, 2, 20, 100000)
	n2 := waiting(3, 2, 21, 100000)
	q := []*job.Job{head, n1, n2}
	got := e.Pick(25, m, q)
	if got == nil || got.ID != 2 {
		t.Fatalf("first narrow job should backfill, got %v", got)
	}
	started := &job.Job{ID: n1.ID, Procs: n1.Procs, Start: 25, Prediction: n1.Prediction, Started: true}
	m.Start(started)
	e.OnStart(started, 25)
	if got := e.Pick(25, m, []*job.Job{head, n2}); got != nil {
		t.Fatalf("second narrow job must not also backfill, got job %d", got.ID)
	}
	// The reference agrees.
	if got := (ReferenceEASY{}).Pick(25, m, []*job.Job{head, n2}); got != nil {
		t.Fatalf("reference disagrees: job %d", got.ID)
	}
}

// TestConservativePickWithoutHooksMatchesReference: with no hook driving,
// Pick resyncs from the machine and must agree with the reference.
func TestConservativePickWithoutHooksMatchesReference(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	short := waiting(2, 4, 20, 50)
	long := waiting(3, 4, 20, 200)
	for _, q := range [][]*job.Job{
		{head, short},
		{head, long},
		{head, long, short},
	} {
		got := NewConservative().Pick(20, m, q)
		want := (ReferenceConservative{}).Pick(20, m, q)
		if got != want {
			t.Fatalf("queue %v: incremental %v, reference %v", q, got, want)
		}
	}
}

// TestConservativeDecisionCache: within one instant the scan runs once;
// repeated Picks pop cached decisions as the engine starts each job.
func TestConservativeDecisionCache(t *testing.T) {
	m := platform.New(10)
	c := NewConservative()
	a := waiting(1, 4, 0, 100)
	b := waiting(2, 4, 0, 100)
	wide := waiting(3, 8, 0, 100)
	q := []*job.Job{a, b, wide}
	got := c.Pick(0, m, q)
	if got == nil || got.ID != 1 {
		t.Fatalf("first pick should be job 1, got %v", got)
	}
	sa := &job.Job{ID: a.ID, Procs: a.Procs, Start: 0, Prediction: a.Prediction, Started: true}
	m.Start(sa)
	c.OnStart(sa, 0)
	got = c.Pick(0, m, []*job.Job{b, wide})
	if got == nil || got.ID != 2 {
		t.Fatalf("second pick should be job 2, got %v", got)
	}
	sb := &job.Job{ID: b.ID, Procs: b.Procs, Start: 0, Prediction: b.Prediction, Started: true}
	m.Start(sb)
	c.OnStart(sb, 0)
	if got = c.Pick(0, m, []*job.Job{wide}); got != nil {
		t.Fatalf("wide job cannot start now, got job %d", got.ID)
	}
}

// TestConservativeEarlyFinishCompressesProfile: a completion before its
// predicted end must make the freed window usable immediately (the
// Profile.Release path), matching the reference rebuild.
func TestConservativeEarlyFinishCompressesProfile(t *testing.T) {
	m := platform.New(10)
	c := NewConservative()
	long := &job.Job{ID: 99, Procs: 6, Start: 0, Prediction: 1000, Started: true}
	m.Start(long)
	head := waiting(1, 8, 0, 500)
	if got := c.Pick(0, m, []*job.Job{head}); got != nil {
		t.Fatalf("head cannot start while the long job runs, got %v", got)
	}
	// The first Pick already tracked the running job via resync, so this
	// out-of-step OnStart must trigger the duplicate guard (desync and
	// rebuild at the next Pick) instead of double-reserving.
	c.OnStart(long, 0)
	// The long job finishes at t=10, far before its predicted end 1000.
	m.Finish(long)
	c.OnFinish(long, 10)
	got := c.Pick(10, m, []*job.Job{head})
	want := (ReferenceConservative{}).Pick(10, m, []*job.Job{head})
	if want == nil || want.ID != head.ID {
		t.Fatalf("reference should start the head after the early finish, got %v", want)
	}
	if got != want {
		t.Fatalf("incremental %v, reference %v after early finish", got, want)
	}
}

// TestConservativeExpiryExtendsProfile: a corrected prediction must push
// the job's reservation out so a queued job no longer fits before it.
func TestConservativeExpiryExtendsProfile(t *testing.T) {
	m := platform.New(10)
	c := NewConservative()
	runner := &job.Job{ID: 99, Procs: 6, Start: 0, Prediction: 50, Started: true}
	m.Start(runner)
	c.OnStart(runner, 0)
	// A 4-wide job predicted for 40s fits in the hole before t=50.
	fits := waiting(1, 8, 0, 500)
	filler := waiting(2, 4, 0, 40)
	got := c.Pick(0, m, []*job.Job{fits, filler})
	if got == nil || got.ID != 2 {
		t.Fatalf("filler should fit before the predicted release, got %v", got)
	}
	// Instead, at t=50 the runner outlives its prediction; the
	// correction extends it to 200. The filler no longer fits... but
	// conservative may still start it at t=50: only 6 procs are busy.
	runner.Prediction = 200
	c.OnExpiry(runner, 50)
	got = c.Pick(50, m, []*job.Job{fits, filler})
	want := (ReferenceConservative{}).Pick(50, m, []*job.Job{fits, filler})
	if got != want {
		t.Fatalf("after expiry: incremental %v, reference %v", got, want)
	}
}

// TestPolicyHooksAreNoOpsForStateless: FCFS and the reference policies
// accept hook calls without effect (they satisfy the Policy interface).
func TestPolicyHooksAreNoOpsForStateless(t *testing.T) {
	j := waiting(1, 2, 0, 10)
	for _, p := range []Policy{NewFCFS(), ReferenceEASY{}, ReferenceConservative{}} {
		p.OnSubmit(j, 0)
		p.OnStart(j, 0)
		p.OnFinish(j, 5)
		p.OnExpiry(j, 5)
	}
}

// TestReferenceNames: the reference policies report the same names as
// the incremental ones so result tables line up.
func TestReferenceNames(t *testing.T) {
	if (ReferenceEASY{}).Name() != "EASY" || (ReferenceEASY{Backfill: SJBFOrder}).Name() != "EASY-SJBF" {
		t.Fatal("reference EASY names")
	}
	if (ReferenceConservative{}).Name() != "Conservative" {
		t.Fatal("reference conservative name")
	}
}
