package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/platform"
)

// routerState builds a ClusterState over a fresh machine of the given
// size with busy processors occupied by one synthetic running job.
func routerState(t *testing.T, name string, id, size, busy int64, queueLen int) ClusterState {
	t.Helper()
	m := platform.New(size)
	if busy > 0 {
		m.Start(&job.Job{ID: id, Procs: busy})
	}
	return ClusterState{Name: name, Machine: m, QueueLen: queueLen}
}

func TestNewRouterVocabulary(t *testing.T) {
	for _, name := range []string{"round-robin", "least-loaded", "queue-depth", "spillover"} {
		r, err := NewRouter(name)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("NewRouter(%q).Name() = %q", name, r.Name())
		}
	}
	if _, err := NewRouter("random"); err == nil {
		t.Fatal("NewRouter accepted an unknown policy")
	}
}

func TestEligibleFallsBackToNominalFit(t *testing.T) {
	small := routerState(t, "small", 1, 8, 0, 0)
	big := routerState(t, "big", 2, 64, 0, 0)
	j := &job.Job{ID: 10, Procs: 16}

	got := Eligible(nil, j, []ClusterState{small, big})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("eligible = %v, want [1] (only the 64-wide cluster fits 16 procs)", got)
	}

	// Drain the fitting cluster below the job's width: eligibility must
	// fall back to nominal fit so the job can wait for a restore.
	big.Machine.Drain(60)
	got = Eligible(got, j, []ClusterState{small, big})
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("eligible after drain = %v, want [1] (nominal-size fallback)", got)
	}

	// A job wider than every nominal size has no candidates at all.
	wide := &job.Job{ID: 11, Procs: 1000}
	if got = Eligible(got, wide, []ClusterState{small, big}); len(got) != 0 {
		t.Fatalf("eligible for an unroutable job = %v, want empty", got)
	}
}

func TestRoundRobinRotatesOverEligible(t *testing.T) {
	clusters := []ClusterState{
		routerState(t, "a", 1, 32, 0, 0),
		routerState(t, "b", 2, 8, 0, 0),
		routerState(t, "c", 3, 32, 0, 0),
	}
	r := &RoundRobin{}
	narrow := &job.Job{ID: 20, Procs: 1}
	wide := &job.Job{ID: 21, Procs: 16}

	if got := r.Route(narrow, 0, clusters); got != 0 {
		t.Fatalf("first narrow route = %d, want 0", got)
	}
	if got := r.Route(narrow, 0, clusters); got != 1 {
		t.Fatalf("second narrow route = %d, want 1", got)
	}
	// The wide job's candidate set is {0, 2}; the rotation counter is at
	// 2, so it lands on the counter-mod-candidates pick, cluster 0 — the
	// rotation continues over whatever is currently eligible.
	if got := r.Route(wide, 0, clusters); got != 0 {
		t.Fatalf("wide route = %d, want 0", got)
	}
	if got := r.Route(wide, 0, []ClusterState{routerState(t, "tiny", 4, 2, 0, 0)}); got != -1 {
		t.Fatalf("route with no candidates = %d, want -1", got)
	}
}

func TestLeastLoadedPicksLowestBusyFraction(t *testing.T) {
	clusters := []ClusterState{
		routerState(t, "busy", 1, 32, 24, 0), // 75% busy
		routerState(t, "idle", 2, 32, 8, 0),  // 25% busy
		routerState(t, "mid", 3, 32, 16, 0),  // 50% busy
	}
	l := &LeastLoaded{}
	if got := l.Route(&job.Job{ID: 30, Procs: 4}, 0, clusters); got != 1 {
		t.Fatalf("least-loaded route = %d, want 1", got)
	}

	// A fully drained cluster counts as fully busy, not division-by-zero
	// attractive.
	drained := routerState(t, "drained", 4, 16, 0, 0)
	drained.Machine.Drain(16)
	if f := busyFraction(drained.Machine); f != 1 {
		t.Fatalf("busyFraction of a fully drained machine = %v, want 1", f)
	}
}

func TestQueueDepthNormalizesAndBreaksTies(t *testing.T) {
	big := routerState(t, "big", 1, 64, 0, 4)    // backlog 4/64
	small := routerState(t, "small", 2, 8, 0, 1) // backlog 1/8 — worse
	q := &QueueDepth{}
	if got := q.Route(&job.Job{ID: 40, Procs: 2}, 0, []ClusterState{small, big}); got != 1 {
		t.Fatalf("queue-depth route = %d, want 1 (deep queue on a big cluster beats shallow on a small one)", got)
	}

	// Equal scores: the tie breaks toward more free processors.
	freer := routerState(t, "freer", 3, 16, 2, 1)
	tighter := routerState(t, "tighter", 4, 16, 10, 1)
	if got := q.Route(&job.Job{ID: 41, Procs: 2}, 0, []ClusterState{tighter, freer}); got != 1 {
		t.Fatalf("queue-depth tie-break = %d, want 1 (more free processors)", got)
	}
}

func TestSpilloverPrefersImmediateStart(t *testing.T) {
	full := routerState(t, "full", 1, 16, 16, 0)
	open := routerState(t, "open", 2, 16, 4, 0)
	s := &Spillover{}
	if got := s.Route(&job.Job{ID: 50, Procs: 8}, 0, []ClusterState{full, open}); got != 1 {
		t.Fatalf("spillover route = %d, want 1 (first cluster with free procs)", got)
	}
	// Everything saturated: fall back to the first eligible cluster.
	busy := routerState(t, "busy", 3, 16, 12, 0)
	if got := s.Route(&job.Job{ID: 51, Procs: 8}, 0, []ClusterState{full, busy}); got != 0 {
		t.Fatalf("saturated spillover route = %d, want 0", got)
	}
}
