package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/platform"
)

func running(m *platform.Machine, id, procs, start, pred int64) *job.Job {
	j := &job.Job{ID: id, Procs: procs, Start: start, Prediction: pred, Started: true}
	m.Start(j)
	return j
}

func waiting(id, procs, submit, pred int64) *job.Job {
	return &job.Job{ID: id, Procs: procs, Submit: submit, Prediction: pred, Request: pred * 2}
}

func TestFCFSStartsHead(t *testing.T) {
	m := platform.New(10)
	q := []*job.Job{waiting(1, 4, 0, 100), waiting(2, 2, 1, 100)}
	got := NewFCFS().Pick(0, m, q)
	if got == nil || got.ID != 1 {
		t.Fatalf("FCFS should start the head, got %v", got)
	}
}

func TestFCFSNeverOvertakes(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 8, 0, 100)
	// Head needs 4 (doesn't fit), second needs 1 (fits) — FCFS must refuse.
	q := []*job.Job{waiting(1, 4, 0, 100), waiting(2, 1, 1, 10)}
	if got := NewFCFS().Pick(0, m, q); got != nil {
		t.Fatalf("FCFS backfilled job %d", got.ID)
	}
}

func TestFCFSEmptyQueue(t *testing.T) {
	m := platform.New(10)
	if got := NewFCFS().Pick(0, m, nil); got != nil {
		t.Fatal("empty queue should pick nothing")
	}
}

func TestEASYStartsHeadWhenFits(t *testing.T) {
	m := platform.New(10)
	q := []*job.Job{waiting(1, 10, 0, 100)}
	got := NewEASY(FCFSOrder).Pick(0, m, q)
	if got == nil || got.ID != 1 {
		t.Fatal("EASY should start a fitting head")
	}
}

func TestEASYBackfillBeforeShadow(t *testing.T) {
	// Figure-2 style scenario: job 99 runs (6 procs until t=100); head
	// needs 8 and must wait; a 4-proc candidate predicted to end before
	// the shadow time backfills.
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	short := waiting(2, 4, 20, 50) // 20+50=70 <= shadow 100
	got := NewEASY(FCFSOrder).Pick(20, m, []*job.Job{head, short})
	if got == nil || got.ID != 2 {
		t.Fatalf("EASY should backfill job 2, got %v", got)
	}
}

func TestEASYRejectsBackfillDelayingHead(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	// Candidate ends at 20+200=220 > shadow 100 and needs 4 > extra 2.
	long := waiting(2, 4, 20, 200)
	if got := NewEASY(FCFSOrder).Pick(20, m, []*job.Job{head, long}); got != nil {
		t.Fatalf("EASY backfilled a head-delaying job %d", got.ID)
	}
}

func TestEASYBackfillOnExtraProcs(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	// Candidate ends past the shadow but fits in the extra processors:
	// at shadow t=100 there are 10 free, head takes 8, extra = 2.
	narrow := waiting(2, 2, 20, 100000)
	narrow.Request = 200000
	got := NewEASY(FCFSOrder).Pick(20, m, []*job.Job{head, narrow})
	if got == nil || got.ID != 2 {
		t.Fatalf("EASY should backfill into extra processors, got %v", got)
	}
}

func TestEASYFCFSOrderPrefersEarlierCandidate(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	a := waiting(2, 4, 20, 60) // arrived first, longer
	b := waiting(3, 4, 21, 10) // arrived later, shorter
	got := NewEASY(FCFSOrder).Pick(25, m, []*job.Job{head, a, b})
	if got == nil || got.ID != 2 {
		t.Fatalf("plain EASY must scan in FCFS order, got %v", got)
	}
}

func TestEASYSJBFOrderPrefersShorterCandidate(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	a := waiting(2, 4, 20, 60)
	b := waiting(3, 4, 21, 10)
	got := NewEASY(SJBFOrder).Pick(25, m, []*job.Job{head, a, b})
	if got == nil || got.ID != 3 {
		t.Fatalf("EASY-SJBF must pick the shortest prediction, got %v", got)
	}
}

func TestEASYSJBFTieBreaksBySubmit(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000)
	a := waiting(2, 4, 21, 10)
	b := waiting(3, 4, 20, 10)
	got := NewEASY(SJBFOrder).Pick(25, m, []*job.Job{head, a, b})
	if got == nil || got.ID != 3 {
		t.Fatalf("SJBF tie must break by submit time, got %v", got)
	}
}

func TestEASYQueueNotMutated(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	q := []*job.Job{waiting(1, 8, 10, 1000), waiting(2, 4, 20, 500), waiting(3, 4, 21, 10)}
	ids := []int64{q[0].ID, q[1].ID, q[2].ID}
	NewEASY(SJBFOrder).Pick(25, m, q)
	for i, j := range q {
		if j.ID != ids[i] {
			t.Fatal("Pick mutated the caller's queue order")
		}
	}
}

func TestEASYHeadTooWideForever(t *testing.T) {
	m := platform.New(10)
	// Queue head wider than the machine cannot be scheduled; EASY still
	// must not crash and must refuse (the simulator rejects such jobs).
	head := waiting(1, 11, 0, 100)
	if got := NewEASY(FCFSOrder).Pick(0, m, []*job.Job{head}); got != nil {
		t.Fatal("impossible head was started")
	}
}

func TestConservativeStartsWhenProfileAllows(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000) // reserved at t=100
	short := waiting(2, 4, 20, 50)  // hole [now,100) is 80s >= 50s
	got := NewConservative().Pick(20, m, []*job.Job{head, short})
	if got == nil || got.ID != 2 {
		t.Fatalf("conservative should start the hole-filling job, got %v", got)
	}
}

func TestConservativeRespectsEarlierReservations(t *testing.T) {
	m := platform.New(10)
	running(m, 99, 6, 0, 100)
	head := waiting(1, 8, 10, 1000) // reserved [100, 1100) on 8 procs
	// 4-proc job predicted 200s: hole before 100 too short; after the
	// head's reservation only 2 procs free until 1100.
	long := waiting(2, 4, 20, 200)
	if got := NewConservative().Pick(20, m, []*job.Job{head, long}); got != nil {
		t.Fatalf("conservative violated the head reservation with job %d", got.ID)
	}
	// A 2-proc job runs beside the head's reservation.
	narrow := waiting(3, 2, 20, 100000)
	narrow.Request = 200000
	got := NewConservative().Pick(20, m, []*job.Job{head, narrow})
	if got == nil || got.ID != 3 {
		t.Fatalf("conservative should start the narrow job, got %v", got)
	}
}

func TestConservativeHeadStartsImmediately(t *testing.T) {
	m := platform.New(10)
	q := []*job.Job{waiting(1, 10, 0, 100)}
	got := NewConservative().Pick(0, m, q)
	if got == nil || got.ID != 1 {
		t.Fatal("conservative should start a fitting head")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewFCFS().Name() != "FCFS" {
		t.Fatal("FCFS name")
	}
	if NewEASY(FCFSOrder).Name() != "EASY" {
		t.Fatal("EASY name")
	}
	if NewEASY(SJBFOrder).Name() != "EASY-SJBF" {
		t.Fatal("EASY-SJBF name")
	}
	if NewConservative().Name() != "Conservative" {
		t.Fatal("Conservative name")
	}
	if FCFSOrder.String() != "FCFS" || SJBFOrder.String() != "SJBF" {
		t.Fatal("order names")
	}
}
